// Package iotscope reproduces the measurement system of "Inferring,
// Characterizing, and Investigating Internet-Scale Malicious IoT Device
// Activities: A Network Telescope Perspective" (Torabi et al., DSN 2018).
//
// The repository is organized as a set of substrates under internal/
// (flowtuple codec, network telescope, synthetic Internet registry, IoT
// inventory, workload generator, threat-intelligence and malware databases)
// topped by the paper's analysis pipeline in internal/core. See DESIGN.md
// for the full system inventory and EXPERIMENTS.md for the per-table and
// per-figure reproduction record.
package iotscope

// Version is the library version stamped into command-line tools.
const Version = "1.0.0"
