GO ?= go

# Packages whose concurrency is exercised under the race detector: the
# worker-pool correlator, the incremental watcher, the HTTP server (and
# its admission-control layer), the serving lifecycle binary, the staged
# pipeline engine with its parallel composite, the cmd wiring that drives
# it, the atomic file writer raced against readers, the result store
# codec behind checkpoint/resume, and the notification pipeline (outbound
# queue drain, contact resolver shared across stages), and the streaming
# collector (tailer goroutine, bounded event channel, alert hub fan-out).
RACE_PKGS = ./internal/correlate ./internal/flowtuple ./internal/apiserve \
	./internal/resilience ./internal/pipeline ./internal/core \
	./internal/resultstore ./internal/faultfs \
	./internal/outqueue ./internal/abusecontact ./internal/stream \
	./cmd/iotwatch ./cmd/iotserve ./cmd/iotinfer ./cmd/iotreport \
	./cmd/iotnotify

.PHONY: check build test vet race fuzz scenarios bench benchall benchdiff chaos

# The full gate: tier-1 build/test plus vet and the race suite.
check: vet build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# go vet plus the repo's own context-hygiene check: every exported
# function below the serving layer that spawns goroutines must accept a
# context.Context (see tools/ctxvet).
vet:
	$(GO) vet ./...
	$(GO) run ./tools/ctxvet ./internal/... ./cmd/...

race:
	$(GO) test -race $(RACE_PKGS)

# Bounded local fuzz budget for the binary decoders and the resolution
# chain: the flowtuple reader, the result store codec, the outbound-queue
# segment codec, the contact-resolver fault matrix, the registry's
# prefix-lookup boundaries, and the scenario config codec (JSON + TOML).
fuzz:
	$(GO) test -fuzz=FuzzReader -fuzztime=30s ./internal/flowtuple
	$(GO) test -fuzz=FuzzResultStore -fuzztime=30s ./internal/resultstore
	$(GO) test -fuzz=FuzzOutQueue -fuzztime=30s ./internal/outqueue
	$(GO) test -fuzz=FuzzResolve -fuzztime=15s ./internal/abusecontact
	$(GO) test -fuzz=FuzzLookup -fuzztime=15s ./internal/geo
	$(GO) test -fuzz=FuzzScenarioDecode -fuzztime=30s ./internal/wgen

# Regenerate the bundled scenario files from their programmatic
# definitions (TestBundledFilesAreCanonical pins the output).
scenarios:
	$(GO) run ./tools/scenariogen

# Serving chaos suite: signal-driven lifecycle (SIGHUP reload under load,
# corrupt-dataset reload, SIGTERM drain) plus HTTP admission-control and
# slow-client shedding, plus the streaming collector killed mid-seal and
# restarted (byte-identical checkpoint, exactly-once alerts), all
# race-detector clean.
chaos:
	$(GO) test -race -run 'TestChaos' ./cmd/iotserve ./internal/apiserve ./internal/stream

# Hot-path acceptance benchmarks, recorded as a committed benchstat-
# comparable JSON file (see docs/PERFORMANCE.md). Compare two runs with:
#   go run ./tools/bench2json -extract BENCH_<old>.json > old.txt
#   go run ./tools/bench2json -extract BENCH_<new>.json > new.txt
#   benchstat old.txt new.txt
BENCH_DATE ?= $(shell date +%F)
BENCH_TAG ?= dev
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineCorrelate$$|BenchmarkPipelineCorrelateSharded$$|BenchmarkPipelineStaged$$|BenchmarkIncrementalIngest$$|BenchmarkStreamIngest$$|BenchmarkSnapshotSave$$|BenchmarkSnapshotLoad$$|BenchmarkSnapshotAnalyze$$|BenchmarkServeSummary$$|BenchmarkServeSummaryLegacy$$|BenchmarkServeDevicesFilter$$|BenchmarkServeDevicesFilterLegacy$$|BenchmarkServeHTTPLoad$$|BenchmarkGenerate$$' \
		-benchmem -benchtime 2s -count 3 . ./internal/apiserve \
		| $(GO) run ./tools/bench2json -date $(BENCH_DATE) -tag $(BENCH_TAG) > BENCH_$(BENCH_DATE)-$(BENCH_TAG).json
	$(GO) run ./tools/bench2json -extract BENCH_$(BENCH_DATE)-$(BENCH_TAG).json

# Regression gate against the newest committed BENCH_*.json: >25% median
# regression of the correlation hot path or the HTTP serve hot paths
# fails; cross-machine baselines are skipped with a warning (see
# tools/benchdiff).
benchdiff:
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineCorrelate$$|BenchmarkServeSummary$$|BenchmarkServeDevicesFilter$$|BenchmarkGenerate$$' -benchmem -count 5 . ./internal/apiserve \
		| $(GO) run ./tools/bench2json -date $(BENCH_DATE) -tag gate > /tmp/bench-gate.json
	$(GO) run ./tools/benchdiff -new /tmp/bench-gate.json -dir . -bench PipelineCorrelate,ServeSummary,ServeDevicesFilter,Generate -threshold 25

# Every benchmark in the repo, text output only.
benchall:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
