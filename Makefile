GO ?= go

# Packages whose concurrency is exercised under the race detector: the
# worker-pool correlator, the incremental watcher, the HTTP server, and the
# atomic file writer raced against readers.
RACE_PKGS = ./internal/correlate ./internal/flowtuple ./internal/apiserve ./cmd/iotwatch

.PHONY: check build test vet race fuzz bench

# The full gate: tier-1 build/test plus vet and the race suite.
check: vet build test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Bounded local fuzz budget for the flowtuple reader (see FuzzReader).
fuzz:
	$(GO) test -fuzz=FuzzReader -fuzztime=30s ./internal/flowtuple

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
