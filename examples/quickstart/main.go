// Quickstart: generate a small synthetic telescope dataset, run the
// paper's inference pipeline, and print the headline results — the
// minimal end-to-end use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"iotscope/internal/core"
	"iotscope/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "iotscope-quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// 1. Synthesize the world and the telescope capture. Scale 0.005 keeps
	//    this under a few seconds; raise it toward 1.0 for paper-magnitude
	//    populations.
	cfg := core.DefaultConfig(0.005, 1)
	cfg.Hours = 48 // two days instead of the full 143-hour window
	fmt.Println("generating synthetic darknet dataset ...")
	ds, err := core.Generate(cfg, dir)
	if err != nil {
		return err
	}
	fmt.Printf("  %d inventory devices, %d packets captured over %d hours\n\n",
		ds.Inventory.Len(), ds.GenStats.Collector.PacketsObserved, cfg.Hours)

	// 2. Run the inference + characterization + investigation pipeline.
	fmt.Println("running inference pipeline ...")
	res, err := ds.Analyze(cfg)
	if err != nil {
		return err
	}

	// 3. Report.
	if err := report.Headline(os.Stdout, res); err != nil {
		return err
	}
	if err := report.Fig1b(os.Stdout, res.Analyzer); err != nil {
		return err
	}

	// 4. Validate against the planted ground truth (the pipeline never
	//    reads it; we can, to show the inference is faithful).
	recovered := 0
	for _, id := range ds.Truth.Compromised {
		if _, ok := res.Correlate.Devices[id]; ok {
			recovered++
		}
	}
	inWindow := 0
	for _, id := range ds.Truth.Compromised {
		if ds.Truth.OnsetHour[id] < cfg.Hours {
			inWindow++
		}
	}
	fmt.Printf("ground truth check: recovered %d/%d devices active within the window\n",
		recovered, inWindow)
	return nil
}
