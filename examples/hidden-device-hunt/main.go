// Hidden-device hunt: the paper's Discussion proposes identifying IoT
// devices that the inventory (Shodan) never indexed by fuzzy-matching their
// darknet behaviour against the devices already inferred. This example
// hides half of the inventory from the pipeline, trains a behavioural
// fingerprint model on the devices inferred from the visible half, hunts
// for the hidden devices among all unattributed darknet sources, and scores
// the hunt against the ground truth.
//
//	go run ./examples/hidden-device-hunt
package main

import (
	"fmt"
	"log"
	"os"

	"iotscope/internal/core"
	"iotscope/internal/fingerprint"
	"iotscope/internal/netx"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "iotscope-hunt-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cfg := core.DefaultConfig(0.01, 17)
	cfg.Hours = 72
	fmt.Println("generating dataset ...")
	ds, err := core.Generate(cfg, dir)
	if err != nil {
		return err
	}

	// Pretend the inventory only covered the even-ID compromised devices;
	// the odd-ID ones are "not indexed by Shodan".
	visible := make(map[netx.Addr]bool)
	hidden := make(map[netx.Addr]bool)
	for _, id := range ds.Truth.Compromised {
		addr := ds.Inventory.At(id).IP
		if id%2 == 0 {
			visible[addr] = true
		} else {
			hidden[addr] = true
		}
	}
	fmt.Printf("world: %d compromised devices; %d visible to the inventory, %d hidden\n\n",
		len(ds.Truth.Compromised), len(visible), len(hidden))

	// 1. Profile every darknet source.
	fmt.Println("extracting behavioural profiles for every darknet source ...")
	ex := fingerprint.NewExtractor(20)
	if err := ex.ProcessDataset(dir); err != nil {
		return err
	}
	profiles := ex.Profiles()
	fmt.Printf("  %d sources profiled (>= 20 packets)\n\n", len(profiles))

	// 2. Train on the visible (inferred) devices' behaviour.
	var train []*fingerprint.Profile
	for addr := range visible {
		if p, ok := profiles[addr]; ok {
			train = append(train, p)
		}
	}
	model, err := fingerprint.Train(train, fingerprint.TrainConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("trained one-class kNN on %d known-IoT profiles (radius %.2f)\n\n",
		len(train), model.Threshold())

	// 3. Hunt among every source the inventory cannot attribute.
	candidates := make(map[netx.Addr]*fingerprint.Profile)
	for addr, p := range profiles {
		if !visible[addr] {
			candidates[addr] = p
		}
	}
	findings := model.Classify(candidates)
	flagged := 0
	correct := 0
	fmt.Println("top 10 most IoT-like unattributed sources:")
	for i, f := range findings {
		if f.IoTLike {
			flagged++
			if hidden[f.Addr] {
				correct++
			}
		}
		if i < 10 {
			verdict := "background"
			if hidden[f.Addr] {
				verdict = "HIDDEN IoT DEVICE"
			}
			p := candidates[f.Addr]
			fmt.Printf("  %-16v score=%.2f  top ports %v  -> %s\n",
				f.Addr, f.Score, p.TopPorts(3), verdict)
		}
	}

	// 4. Score the hunt.
	ev := model.Evaluate(candidates, func(a netx.Addr) bool { return hidden[a] })
	base := float64(len(hidden)) / float64(len(candidates))
	fmt.Printf("\nhunt results over %d candidates (%.1f%% are hidden IoT):\n",
		len(candidates), 100*base)
	fmt.Printf("  flagged %d sources, %d correctly\n", flagged, correct)
	fmt.Printf("  precision %.2f  recall %.2f  F1 %.2f  (random flagging would score %.2f precision)\n",
		ev.Precision(), ev.Recall(), ev.F1(), base)
	return nil
}
