// Scan campaign characterization: reproduce the paper's Sec. IV-C deep
// dive into scanning behaviour — the Telnet-dominated port mix (Table V),
// the scripted SSH surges at intervals 32/69, the single BACnet device
// sweeping BackroomNet from interval 113, and the Dominican IP camera that
// swept 10,249 ports in one hour.
//
//	go run ./examples/scan-campaign
package main

import (
	"fmt"
	"log"
	"os"

	"iotscope/internal/analysis"
	"iotscope/internal/core"
	"iotscope/internal/devicedb"
	"iotscope/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "iotscope-scan-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Full window so every scripted scanning event is in frame.
	cfg := core.DefaultConfig(0.006, 99)
	fmt.Println("generating 143-hour dataset ...")
	ds, err := core.Generate(cfg, dir)
	if err != nil {
		return err
	}
	fmt.Println("analyzing ...")
	res, err := ds.Analyze(cfg)
	if err != nil {
		return err
	}
	an := res.Analyzer

	// Table V: what the compromised devices scan.
	if err := report.Table5(os.Stdout, an); err != nil {
		return err
	}

	// Fig. 9: scanning surfaces per realm.
	for _, cat := range []devicedb.Category{devicedb.CPS, devicedb.Consumer} {
		s := an.ScanSurface(cat)
		report.Series(os.Stdout, fmt.Sprintf("%s scan packets", cat), s.Packets, 72)
		report.Series(os.Stdout, fmt.Sprintf("%s scanned ports", cat), s.DstPorts, 72)
	}
	fmt.Println()

	// Fig. 10: the five headline services over time.
	if err := report.Fig10(os.Stdout, an); err != nil {
		return err
	}

	// Investigation 1: the SSH surges. Which hours stand out?
	var ssh analysis.ScanServiceDef
	for _, def := range analysis.DefaultScanServices() {
		if def.Name == "SSH" {
			ssh = def
		}
	}
	series := an.ServiceHourlySeries(ssh)
	mean := 0.0
	for _, v := range series {
		mean += v
	}
	mean /= float64(len(series))
	fmt.Println("SSH surge hours (>3x mean):")
	for h, v := range series {
		if v > 3*mean {
			fmt.Printf("  hour %3d: %s packets (mean %s) — paper scripts surges at 32 and 69\n",
				h, report.Comma(uint64(v)), report.Comma(uint64(mean)))
		}
	}
	fmt.Println()

	// Investigation 2: BackroomNet onset.
	var backroom analysis.ScanServiceDef
	for _, def := range analysis.DefaultScanServices() {
		if def.Name == "BackroomNet" {
			backroom = def
		}
	}
	br := an.ServiceHourlySeries(backroom)
	onset := -1
	for h, v := range br {
		if v > 0 {
			onset = h
			break
		}
	}
	rows := an.TopScanServices(analysis.DefaultScanServices())
	for _, r := range rows {
		if r.Service == "BackroomNet" {
			fmt.Printf("BackroomNet: onset at hour %d (paper: 113), %d CPS device(s), %s packets\n",
				onset, r.CPSDevices, report.Comma(r.Packets))
		}
	}

	// Investigation 3: the widest single-hour port sweep.
	if f, ok := an.WidestPortSweep(); ok {
		d := ds.Inventory.At(f.Device)
		fmt.Printf("widest port sweep: device %d (%s, %s) swept %s ports over %s "+
			"destinations at hour %d\n  (paper: an IP camera in the Dominican Republic, "+
			"10,249 ports on 55 destinations at interval 119)\n",
			f.Device, d.Type, d.Country,
			report.CommaInt(f.Ports), report.CommaInt(f.Dests), f.Hour)
	}

	// Cross-check the devices-vs-packets decoupling the paper reports
	// (Pearson r ~ 0): many devices scan, few generate the volume.
	fmt.Printf("\nPearson scanners-vs-packets: r=%.3f p=%.2g (paper: r~0, p>0.05)\n",
		res.StatTests.ScannersVsScanPackets.R, res.StatTests.ScannersVsScanPackets.P)
	return nil
}
