// DDoS forensics: reproduce the paper's Sec. IV-B investigation — isolate
// backscatter traffic, detect the DoS episodes, and attribute each to the
// single victim device that dominates it, down to the exposed service port
// (the paper identified Ethernet/IP 44818 Rockwell PLCs under attack).
//
//	go run ./examples/ddos-forensics
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"iotscope/internal/classify"
	"iotscope/internal/core"
	"iotscope/internal/devicedb"
	"iotscope/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "iotscope-ddos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Full 143-hour window: the scripted attacks land at intervals 6-8,
	// 49, 53-56, 81, 94, 99, and 127.
	cfg := core.DefaultConfig(0.006, 7)
	fmt.Println("generating 143-hour dataset ...")
	ds, err := core.Generate(cfg, dir)
	if err != nil {
		return err
	}
	fmt.Println("analyzing ...")
	res, err := ds.Analyze(cfg)
	if err != nil {
		return err
	}
	an := res.Analyzer

	// Hourly backscatter per realm (Fig. 7's series).
	cps := res.Correlate.HourlyClassSeries(classify.Backscatter, devicedb.CPS)
	cons := res.Correlate.HourlyClassSeries(classify.Backscatter, devicedb.Consumer)
	report.Series(os.Stdout, "CPS backscatter", cps, 72)
	report.Series(os.Stdout, "consumer backscatter", cons, 72)
	fmt.Println()

	// Episode detection and single-victim attribution.
	spikes := an.DetectDoSSpikes(8)
	fmt.Printf("detected %d DoS episodes:\n", len(spikes))
	for _, sp := range spikes {
		d := ds.Inventory.At(sp.TopDevice)
		svc := "-"
		if len(d.Services) > 0 {
			svc = d.Services[0]
		}
		fmt.Printf("  hours %3d-%3d: %9s backscatter pkts, %3.0f%% from device %d "+
			"(%s %s in %s, service %s)\n",
			sp.StartHour, sp.EndHour, report.Comma(sp.Packets), 100*sp.TopShare,
			sp.TopDevice, d.Category, d.Type, d.Country, svc)
	}
	fmt.Println()

	// Victim census (Fig. 8a) and intensity ranking.
	summary := an.Backscatter()
	fmt.Printf("victim census: %d devices (%d consumer / %d CPS); "+
		"%s backscatter pkts, %.0f%% from CPS\n",
		summary.Victims, summary.ConsumerVictims, summary.CPSVictims,
		report.Comma(summary.Packets), summary.CPSPacketShare)
	if err := report.Fig8(os.Stdout, an); err != nil {
		return err
	}

	// Top individual victims with their exposed ports — the paper traced
	// the big ones to Ethernet/IP (44818) PLCs.
	type victim struct {
		id   int
		pkts uint64
	}
	var victims []victim
	for id, dstats := range res.Correlate.Devices {
		if bs := dstats.Packets[classify.Backscatter.Index()]; bs > 0 {
			victims = append(victims, victim{id, bs})
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].pkts > victims[j].pkts })
	fmt.Println("top 5 victims by backscatter volume:")
	for i, v := range victims {
		if i == 5 {
			break
		}
		d := ds.Inventory.At(v.id)
		fmt.Printf("  device %5d  %8s pkts  %-8s %-12s %s  services=%v\n",
			v.id, report.Comma(v.pkts), d.Country, d.Category, d.Type, d.Services)
	}

	// Cross-check against the planted DoS events.
	fmt.Println("\nplanted event check:")
	for name, id := range ds.Truth.EventVictims {
		_, seen := res.Correlate.Devices[id]
		fmt.Printf("  %-12s -> device %5d recovered=%v\n", name, id, seen)
	}
	return nil
}
