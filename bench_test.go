// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations for the design choices called out in DESIGN.md. Each
// BenchmarkFigN / BenchmarkTableN measures recomputing that artifact from a
// shared correlated dataset (generated once per process at scale 0.01).
package iotscope_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"iotscope/internal/analysis"
	"iotscope/internal/campaign"
	"iotscope/internal/core"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
	"iotscope/internal/fingerprint"
	"iotscope/internal/flowtuple"
	"iotscope/internal/netx"
	"iotscope/internal/pipeline"
	"iotscope/internal/report"
	"iotscope/internal/rng"
	"iotscope/internal/sketch"
	"iotscope/internal/stats"
	"iotscope/internal/stream"
	"iotscope/internal/threatintel"
	"iotscope/internal/wgen"
)

const (
	benchScale = 0.01
	benchSeed  = 1
)

var (
	benchOnce sync.Once
	benchErr  error
	benchDir  string
	benchDS   *core.Dataset
	benchRes  *core.Results
)

func TestMain(m *testing.M) {
	code := m.Run()
	if benchDir != "" {
		os.RemoveAll(benchDir)
	}
	os.Exit(code)
}

// benchFixture generates and analyzes the shared dataset once.
func benchFixture(b *testing.B) (*core.Dataset, *core.Results) {
	b.Helper()
	benchOnce.Do(func() {
		benchDir, benchErr = os.MkdirTemp("", "iotscope-bench-*")
		if benchErr != nil {
			return
		}
		cfg := core.DefaultConfig(benchScale, benchSeed)
		benchDS, benchErr = core.Generate(cfg, benchDir)
		if benchErr != nil {
			return
		}
		benchRes, benchErr = benchDS.Analyze(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS, benchRes
}

// renderBench measures one artifact renderer.
func renderBench(b *testing.B, fn func(io.Writer) error) {
	b.Helper()
	_, _ = benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			b.Fatal(err)
		}
		if buf.Len() == 0 {
			b.Fatal("empty artifact")
		}
	}
}

// --- Section III: inference (Figs. 1-3, Tables I-III).

func BenchmarkFig1a(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Fig1a(w, res.Analyzer) })
}

func BenchmarkFig1b(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Fig1b(w, res.Analyzer) })
}

func BenchmarkFig2(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Fig2(w, res.Analyzer) })
}

func BenchmarkFig3(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Fig3(w, res.Analyzer) })
}

func BenchmarkTable1(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Table1(w, res.Analyzer) })
}

func BenchmarkTable2(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Table2(w, res.Analyzer) })
}

func BenchmarkTable3(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Table3(w, res.Analyzer) })
}

// --- Section IV: characterization (Figs. 4-10, Tables IV-V).

func BenchmarkFig4(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Fig4(w, res.Analyzer) })
}

func BenchmarkFig5(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Fig5(w, res.Analyzer) })
}

func BenchmarkTable4(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Table4(w, res.Analyzer) })
}

func BenchmarkFig6(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Fig6(w, res.Analyzer) })
}

func BenchmarkFig7(b *testing.B) {
	ds, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Fig7(w, res, ds) })
}

func BenchmarkFig8(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Fig8(w, res.Analyzer) })
}

func BenchmarkFig9(b *testing.B) {
	ds, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Fig9(w, res, ds) })
}

func BenchmarkTable5(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Table5(w, res.Analyzer) })
}

func BenchmarkFig10(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Fig10(w, res.Analyzer) })
}

// --- Section V: investigation (Fig. 11, Tables VI-VII).

func BenchmarkFig11(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Fig11(w, res) })
}

func BenchmarkTable6(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Table6(w, res) })
}

func BenchmarkTable7(b *testing.B) {
	_, res := benchFixture(b)
	renderBench(b, func(w io.Writer) error { return report.Table7(w, res) })
}

// BenchmarkStatTests measures the Sec. IV statistical battery.
func BenchmarkStatTests(b *testing.B) {
	_, res := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Analyzer.RunStatTests(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- End-to-end phases.

// BenchmarkPipelineCorrelate measures the full streaming correlation over
// the 143 hourly files.
func BenchmarkPipelineCorrelate(b *testing.B) {
	ds, _ := benchFixture(b)
	c := correlate.New(ds.Inventory, correlate.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ProcessDataset(context.Background(), ds.Dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineCorrelateSharded sweeps the prefix-partitioned
// correlation across shard counts. shards-1 delegates to the single-merger
// path (the free-abstraction check: it must sit within noise of
// BenchmarkPipelineCorrelate); higher counts expose the scaling curve
// recorded in docs/PERFORMANCE.md — on a single-core runner the curve is
// flat and the interesting number is the merge-plane overhead.
func BenchmarkPipelineCorrelateSharded(b *testing.B) {
	ds, _ := benchFixture(b)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			c := correlate.New(ds.Inventory, correlate.Options{Shards: shards})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.ProcessDatasetSharded(context.Background(), ds.Dir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineStaged measures the same correlation workload driven
// through the staged engine (instrumented stage, report bookkeeping,
// context plumbing). Compared against BenchmarkPipelineCorrelate it bounds
// the engine's per-run overhead — the acceptance gate is <2 % on the
// median.
func BenchmarkPipelineStaged(b *testing.B) {
	ds, _ := benchFixture(b)
	c := correlate.New(ds.Inventory, correlate.Options{})
	stage := pipeline.Func("correlate", func(ctx context.Context, st *pipeline.State) error {
		res, err := c.ProcessDataset(ctx, ds.Dir)
		if err != nil {
			return err
		}
		m := pipeline.Meter(ctx)
		m.RecordsIn = res.Background.Records
		m.RecordsOut = uint64(len(res.Devices))
		return nil
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.New("bench", stage).Run(context.Background(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineFullReport measures rendering the entire reproduction.
func BenchmarkPipelineFullReport(b *testing.B) {
	ds, res := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := report.WriteAll(&buf, res, ds); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md Sec. 5).

// BenchmarkAblationCorrelateStreaming compares the hour-streaming correlator
// (constant memory) against batch-loading every record before processing.
func BenchmarkAblationCorrelateStreaming(b *testing.B) {
	ds, _ := benchFixture(b)
	b.Run("streaming", func(b *testing.B) {
		c := correlate.New(ds.Inventory, correlate.Options{Workers: 1})
		for i := 0; i < b.N; i++ {
			if _, err := c.ProcessDataset(context.Background(), ds.Dir); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch-load", func(b *testing.B) {
		hours, err := flowtuple.DatasetHours(ds.Dir)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			// Load everything first (the non-streaming design), then scan.
			var all []flowtuple.Record
			for _, h := range hours {
				err := flowtuple.WalkHour(ds.Dir, h, func(rec flowtuple.Record) error {
					all = append(all, rec)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			var iot uint64
			for _, rec := range all {
				if _, ok := ds.Inventory.LookupIP(netx.Addr(rec.SrcIP)); ok {
					iot += uint64(rec.Packets)
				}
			}
			if iot == 0 {
				b.Fatal("no packets")
			}
		}
	})
}

// BenchmarkAblationLPM compares the radix-trie registry lookup against a
// linear prefix scan.
func BenchmarkAblationLPM(b *testing.B) {
	ds, _ := benchFixture(b)
	reg := ds.Registry
	type entry struct {
		p netx.Prefix
		c string
	}
	var entries []entry
	for i := range reg.ISPs {
		for _, p := range reg.Prefixes(i) {
			entries = append(entries, entry{p, reg.ISPs[i].Country})
		}
	}
	r := rng.New(1)
	addrs := make([]netx.Addr, 4096)
	for i := range addrs {
		addrs[i] = reg.RandomAddr(r, r.Intn(len(reg.ISPs)))
	}
	b.Run("trie", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if _, ok := reg.Lookup(addrs[i&4095]); ok {
				hits++
			}
		}
		if hits == 0 {
			b.Fatal("no hits")
		}
	})
	b.Run("linear", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			a := addrs[i&4095]
			for _, e := range entries {
				if e.p.Contains(a) {
					hits++
					break
				}
			}
		}
		if hits == 0 {
			b.Fatal("no hits")
		}
	})
}

// BenchmarkAblationCodec compares the fixed binary flowtuple codec against
// JSON encoding.
func BenchmarkAblationCodec(b *testing.B) {
	rec := flowtuple.Record{
		SrcIP: 0x01020304, DstIP: 0x2c010203, SrcPort: 40000, DstPort: 23,
		Protocol: flowtuple.ProtoTCP, TCPFlags: flowtuple.FlagSYN,
		TTL: 64, IPLen: 40, Packets: 3,
	}
	b.Run("binary", func(b *testing.B) {
		buf := make([]byte, 0, flowtuple.RecordSize)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = flowtuple.AppendRecord(buf[:0], rec)
			back, err := flowtuple.DecodeRecord(buf)
			if err != nil || back != rec {
				b.Fatal("round trip failed")
			}
		}
	})
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := json.Marshal(rec)
			if err != nil {
				b.Fatal(err)
			}
			var back flowtuple.Record
			if err := json.Unmarshal(data, &back); err != nil || back != rec {
				b.Fatal("round trip failed")
			}
		}
	})
}

// BenchmarkAblationTopK compares the bounded min-heap port ranking against
// sorting the full port table.
func BenchmarkAblationTopK(b *testing.B) {
	ds, res := benchFixture(b)
	_ = ds
	ports := res.Correlate.TCPScanPorts
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tk := stats.NewTopK(14)
			for port, agg := range ports {
				tk.Offer(portKey(port), float64(agg.Packets))
			}
			if len(tk.Items()) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			type row struct {
				key  string
				pkts uint64
			}
			rows := make([]row, 0, len(ports))
			for port, agg := range ports {
				rows = append(rows, row{portKey(port), agg.Packets})
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].pkts > rows[j].pkts })
			if len(rows) == 0 {
				b.Fatal("empty")
			}
		}
	})
}

func portKey(p uint16) string {
	var buf [5]byte
	n := 0
	if p == 0 {
		return "0"
	}
	for v := p; v > 0; v /= 10 {
		buf[n] = byte('0' + v%10)
		n++
	}
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return string(buf[:n])
}

// BenchmarkAblationSketch compares exact unique-destination counting
// against HyperLogLog during correlation.
func BenchmarkAblationSketch(b *testing.B) {
	ds, _ := benchFixture(b)
	b.Run("exact-sets", func(b *testing.B) {
		c := correlate.New(ds.Inventory, correlate.Options{Workers: 1})
		for i := 0; i < b.N; i++ {
			if _, err := c.ProcessDataset(context.Background(), ds.Dir); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hyperloglog", func(b *testing.B) {
		c := correlate.New(ds.Inventory, correlate.Options{Workers: 1, UseSketches: true})
		for i := 0; i < b.N; i++ {
			if _, err := c.ProcessDataset(context.Background(), ds.Dir); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hll-standalone", func(b *testing.B) {
		h, err := sketch.NewHLL(14)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			h.AddAddr(uint32(i))
		}
	})
}

// BenchmarkGenerateHour measures dataset synthesis itself (per hour).
func BenchmarkGenerateHour(b *testing.B) {
	sc := wgen.Default(benchScale, benchSeed)
	g, err := wgen.New(sc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.EmitHour(i%sc.Hours, func(flowtuple.Record) {}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalysisSummary measures the headline aggregation.
func BenchmarkAnalysisSummary(b *testing.B) {
	_, res := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := res.Analyzer.Summary()
		if s.Total == 0 {
			b.Fatal("empty summary")
		}
	}
}

// BenchmarkDiscoveryTimeline measures Fig. 2's aggregation path separate
// from rendering.
func BenchmarkDiscoveryTimeline(b *testing.B) {
	_, res := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tl := res.Analyzer.DiscoveryTimeline(); len(tl) == 0 {
			b.Fatal("empty timeline")
		}
	}
}

// BenchmarkCDFs measures the Fig. 6 CDF computation.
func BenchmarkCDFs(b *testing.B) {
	_, res := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := analysis.CDF(res.Analyzer.ScannerTotals())
		if h.Total() == 0 {
			b.Fatal("empty CDF")
		}
	}
}

// BenchmarkInvestigate measures the Sec. V-A threat correlation.
func BenchmarkInvestigate(b *testing.B) {
	ds, res := benchFixture(b)
	cfg := threatintel.InvestigateConfig{TopPerCategory: 40}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inv, err := threatintel.Investigate(context.Background(), cfg, res.Correlate, ds.Inventory, ds.Threat)
		if err != nil {
			b.Fatal(err)
		}
		if inv.Explored == 0 {
			b.Fatal("empty investigation")
		}
	}
}

// BenchmarkMalwareCorrelate measures the Sec. V-B correlation.
func BenchmarkMalwareCorrelate(b *testing.B) {
	ds, res := benchFixture(b)
	ips := make(map[int]netx.Addr, len(res.Correlate.Devices))
	for id := range res.Correlate.Devices {
		ips[id] = ds.Inventory.At(id).IP
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corr, err := ds.Malware.Correlate(context.Background(), ips, ds.Catalog)
		if err != nil {
			b.Fatal(err)
		}
		if len(corr.Hashes) == 0 {
			b.Fatal("empty correlation")
		}
	}
}

// BenchmarkDeviceLookup measures the per-tuple hot path: inventory join.
func BenchmarkDeviceLookup(b *testing.B) {
	ds, _ := benchFixture(b)
	r := rng.New(3)
	addrs := make([]netx.Addr, 4096)
	for i := range addrs {
		if r.Bool(0.5) {
			addrs[i] = ds.Inventory.At(r.Intn(ds.Inventory.Len())).IP
		} else {
			addrs[i] = netx.Addr(r.Uint32())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.Inventory.LookupIP(addrs[i&4095])
	}
}

var _ = devicedb.Consumer // exercised indirectly through core types

// --- Extension features (the paper's Discussion / future work).

// BenchmarkCampaignDetect measures botnet-campaign clustering over the
// correlated dataset.
func BenchmarkCampaignDetect(b *testing.B) {
	_, res := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		campaigns, err := campaign.Detect(res.Correlate, campaign.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(campaigns) == 0 {
			b.Fatal("no campaigns")
		}
	}
}

// BenchmarkFingerprintPipeline measures profile extraction plus one-class
// model training over the shared dataset.
func BenchmarkFingerprintPipeline(b *testing.B) {
	ds, res := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := fingerprint.NewExtractor(20)
		if err := ex.ProcessDataset(ds.Dir); err != nil {
			b.Fatal(err)
		}
		profiles := ex.Profiles()
		var train []*fingerprint.Profile
		for id := range res.Correlate.Devices {
			if p, ok := profiles[ds.Inventory.At(id).IP]; ok {
				train = append(train, p)
			}
		}
		if _, err := fingerprint.Train(train, fingerprint.TrainConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalIngest measures the near-real-time per-hour path.
func BenchmarkIncrementalIngest(b *testing.B) {
	ds, _ := benchFixture(b)
	c := correlate.New(ds.Inventory, correlate.Options{})
	hours, err := flowtuple.DatasetHours(ds.Dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(hours) == 0 {
			b.StopTimer()
			var err error
			benchInc, err = c.NewIncremental(len(hours))
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if _, err := benchInc.Ingest(context.Background(), ds.Dir, hours[i%len(hours)]); err != nil {
			b.Fatal(err)
		}
	}
}

var benchInc *correlate.Incremental

// BenchmarkStreamIngest measures the live streaming path end to end: the
// collector drains the shared dataset through the tailer, event-time
// windows, watermark-driven seals, alert derivation (including the
// per-window campaign pass), and the in-memory alert journal.
func BenchmarkStreamIngest(b *testing.B) {
	ds, _ := benchFixture(b)
	cfg := core.DefaultConfig(benchScale, benchSeed)
	cfg.Lenient = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := stream.New(stream.Config{
			Dir:       ds.Dir,
			Poll:      time.Millisecond,
			Drain:     true,
			Campaigns: true,
		}, func() (*correlate.Incremental, error) {
			return ds.NewIncremental(cfg)
		}, stream.NewHub(nil))
		if err != nil {
			b.Fatal(err)
		}
		if err := col.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		if st := col.Stats(); st.WindowsSealed == 0 || st.AlertsEmitted == 0 {
			b.Fatalf("drain sealed %d windows, emitted %d alerts", st.WindowsSealed, st.AlertsEmitted)
		}
	}
}

// --- Snapshot result store (docs/SNAPSHOTS.md).

// BenchmarkSnapshotSave measures persisting the analyzed correlation state
// as a result store artifact — the iotinfer -save stage.
func BenchmarkSnapshotSave(b *testing.B) {
	_, res := benchFixture(b)
	path := filepath.Join(b.TempDir(), "snapshot.irs")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.SaveSnapshot(path, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad measures restoring analyzed correlation state from
// a result store artifact, validated against the dataset — the iotserve
// -snapshot cold-start path. The acceptance gate is a ≥10x win over
// BenchmarkSnapshotAnalyze, the re-analysis a valid store replaces.
func BenchmarkSnapshotLoad(b *testing.B) {
	ds, res := benchFixture(b)
	path := filepath.Join(b.TempDir(), "snapshot.irs")
	if err := core.SaveSnapshot(path, res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := ds.OpenSnapshot(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(loaded.Devices) != len(res.Correlate.Devices) {
			b.Fatal("short load")
		}
	}
}

// BenchmarkSnapshotAnalyze is the baseline a valid store short-circuits
// in core.LoadSnapshotOpts: verifying every raw hour file and re-deriving
// the correlation state from them (the verify and correlate stages both
// skip when a store loads).
func BenchmarkSnapshotAnalyze(b *testing.B) {
	ds, _ := benchFixture(b)
	c := correlate.New(ds.Inventory, correlate.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ds.VerifyHours(context.Background()); err != nil {
			b.Fatal(err)
		}
		if _, err := c.ProcessDataset(context.Background(), ds.Dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateScale sweeps dataset synthesis throughput across scales
// (records generated per rendered hour grow linearly with scale).
func BenchmarkGenerateScale(b *testing.B) {
	for _, scale := range []float64{0.002, 0.005, 0.01} {
		b.Run(fmt.Sprintf("scale-%v", scale), func(b *testing.B) {
			sc := wgen.Default(scale, 1)
			g, err := wgen.New(sc)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.EmitHour(i%sc.Hours, func(flowtuple.Record) {}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerate is the scenario-registry acceptance path: resolve the
// bundled paper-default scenario, render a short window, and stamp the
// dataset with its provenance files.
func BenchmarkGenerate(b *testing.B) {
	root := b.TempDir()
	cfg := core.DefaultConfig(0.002, 1)
	cfg.Hours = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := filepath.Join(root, fmt.Sprintf("run-%d", i))
		if _, err := core.Generate(cfg, dir); err != nil {
			b.Fatal(err)
		}
		if err := os.RemoveAll(dir); err != nil {
			b.Fatal(err)
		}
	}
}
