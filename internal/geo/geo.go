// Package geo provides the synthetic Internet registry that substitutes for
// the geolocation and WHOIS metadata the paper obtains alongside Shodan
// records: a deterministic allocation of IPv4 prefixes to (country, ISP)
// pairs and a longest-prefix-match lookup from any address to its operator.
//
// The country set and the named ISPs mirror the ones appearing in the
// paper's tables (JSC ER-Telecom, Rostelecom, Korea Telecom, PT Telkom,
// PLDT, TOT, Turk Telekom, HiNet, ...); the remaining ISPs are synthetic.
// Prefixes are carved from the public IPv4 space minus the telescope's /8
// and reserved ranges, so no simulated device can ever sit inside the
// darknet.
package geo

import (
	"fmt"

	"iotscope/internal/netx"
	"iotscope/internal/rng"
)

// Country identifies one country in the registry.
type Country struct {
	Code string // ISO-3166-ish code; synthetic fillers use X00..X99 style
	Name string
}

// ISP is one operator within a country.
type ISP struct {
	Name    string
	Country string // country code
	ASN     uint32
}

// Info is the registry answer for one address.
type Info struct {
	Country string // country code
	ISP     int    // index into Registry.ISPs
}

// Config controls registry construction.
type Config struct {
	// DarkPrefix is excluded from all allocations (the telescope space).
	DarkPrefix netx.Prefix
	// FillerCountries adds synthetic countries beyond the named set so the
	// simulation can spread devices over the paper's "161 countries".
	FillerCountries int
	// ISPsPerCountryMin/Max bound how many operators each country gets
	// (named ISPs are always included for their countries).
	ISPsPerCountryMin int
	ISPsPerCountryMax int
	// PrefixBits is the size of each allocated block (default /16).
	PrefixBits int
	// PrefixesPerISP is how many blocks each operator receives.
	PrefixesPerISP int
}

// DefaultConfig returns the configuration used by the experiments: a
// 44.0.0.0/8 telescope, 130 filler countries (31 named + 130 ≈ the paper's
// 161), and /16 blocks.
func DefaultConfig() Config {
	return Config{
		DarkPrefix:        netx.MustParsePrefix("44.0.0.0/8"),
		FillerCountries:   130,
		ISPsPerCountryMin: 3,
		ISPsPerCountryMax: 9,
		PrefixBits:        16,
		PrefixesPerISP:    2,
	}
}

// namedCountries are the countries appearing in the paper's figures and
// tables, with codes used throughout the scenario configuration.
var namedCountries = []Country{
	{"US", "United States"},
	{"GB", "United Kingdom"},
	{"RU", "Russian Federation"},
	{"CN", "China"},
	{"KR", "Republic of Korea"},
	{"FR", "France"},
	{"IT", "Italy"},
	{"DE", "Germany"},
	{"CA", "Canada"},
	{"AU", "Australia"},
	{"VN", "Vietnam"},
	{"TW", "Taiwan"},
	{"BR", "Brazil"},
	{"ES", "Spain"},
	{"MX", "Mexico"},
	{"TH", "Thailand"},
	{"ID", "Indonesia"},
	{"SG", "Singapore"},
	{"TR", "Turkey"},
	{"UA", "Ukraine"},
	{"IN", "India"},
	{"PH", "Philippines"},
	{"NL", "Netherlands"},
	{"CH", "Switzerland"},
	{"AR", "Argentina"},
	{"JP", "Japan"},
	{"DO", "Dominican Republic"},
	{"ZA", "South Africa"},
	{"MY", "Malaysia"},
	{"PL", "Poland"},
	{"SE", "Sweden"},
}

// namedISPs places the paper's table ISPs in their countries. They are
// inserted first so scenario weights can reference them by name.
var namedISPs = map[string][]string{
	"RU": {"JSC ER-Telecom", "Rostelecom"},
	"ID": {"PT Telkom"},
	"KR": {"Korea Telecom"},
	"PH": {"PLDT"},
	"TH": {"TOT"},
	"TR": {"Turk Telekom"},
	"TW": {"HiNet"},
}

// Registry maps addresses to operators and operators to address space.
type Registry struct {
	Countries []Country
	ISPs      []ISP

	trie        *netx.Trie[Info]
	ispPrefixes [][]netx.Prefix // per ISP
	byCountry   map[string][]int
}

// Build constructs a registry deterministically from seed.
func Build(cfg Config, seed uint64) (*Registry, error) {
	if cfg.PrefixBits < 8 || cfg.PrefixBits > 24 {
		return nil, fmt.Errorf("geo: prefix bits %d out of [8, 24]", cfg.PrefixBits)
	}
	if cfg.ISPsPerCountryMin < 1 || cfg.ISPsPerCountryMax < cfg.ISPsPerCountryMin {
		return nil, fmt.Errorf("geo: invalid ISPs-per-country range [%d, %d]",
			cfg.ISPsPerCountryMin, cfg.ISPsPerCountryMax)
	}
	if cfg.PrefixesPerISP < 1 {
		return nil, fmt.Errorf("geo: prefixes per ISP must be >= 1")
	}
	r := rng.New(seed).Derive("geo")

	reg := &Registry{
		Countries: append([]Country(nil), namedCountries...),
		trie:      netx.NewTrie[Info](),
		byCountry: make(map[string][]int),
	}
	for i := 0; i < cfg.FillerCountries; i++ {
		code := fmt.Sprintf("X%02d", i)
		reg.Countries = append(reg.Countries, Country{Code: code, Name: "Synthetic " + code})
	}

	alloc, err := newAllocator(cfg.DarkPrefix, cfg.PrefixBits, r.Derive("alloc"))
	if err != nil {
		return nil, err
	}

	asn := uint32(64512) // start in the private-use range to signal synthesis
	for _, c := range reg.Countries {
		n := cfg.ISPsPerCountryMin
		if cfg.ISPsPerCountryMax > cfg.ISPsPerCountryMin {
			n += r.Intn(cfg.ISPsPerCountryMax - cfg.ISPsPerCountryMin + 1)
		}
		names := namedISPs[c.Code]
		if n < len(names) {
			n = len(names)
		}
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("%s-Net-%d", c.Code, i+1)
			if i < len(names) {
				name = names[i]
			}
			idx := len(reg.ISPs)
			reg.ISPs = append(reg.ISPs, ISP{Name: name, Country: c.Code, ASN: asn})
			asn++
			prefixes := make([]netx.Prefix, 0, cfg.PrefixesPerISP)
			for j := 0; j < cfg.PrefixesPerISP; j++ {
				p, err := alloc.next()
				if err != nil {
					return nil, err
				}
				prefixes = append(prefixes, p)
				reg.trie.Insert(p, Info{Country: c.Code, ISP: idx})
			}
			reg.ispPrefixes = append(reg.ispPrefixes, prefixes)
			reg.byCountry[c.Code] = append(reg.byCountry[c.Code], idx)
		}
	}
	return reg, nil
}

// Lookup resolves an address to its operator.
func (g *Registry) Lookup(a netx.Addr) (Info, bool) {
	return g.trie.Lookup(a)
}

// ISPsIn returns the ISP indices registered in a country.
func (g *Registry) ISPsIn(countryCode string) []int {
	return g.byCountry[countryCode]
}

// Prefixes returns the blocks allocated to ISP i.
func (g *Registry) Prefixes(i int) []netx.Prefix {
	return g.ispPrefixes[i]
}

// RandomAddr draws a uniform address from ISP i's space.
func (g *Registry) RandomAddr(r *rng.Source, i int) netx.Addr {
	prefixes := g.ispPrefixes[i]
	p := prefixes[r.Intn(len(prefixes))]
	return p.Nth(r.Uint64n(p.NumAddrs()))
}

// allocator hands out non-overlapping blocks from public space, skipping
// the darknet and reserved /8s, in a seed-shuffled order so adjacent ISPs
// do not get adjacent space.
type allocator struct {
	blocks []netx.Prefix
	cursor int
}

func newAllocator(dark netx.Prefix, bits int, r *rng.Source) (*allocator, error) {
	var blocks []netx.Prefix
	perSlash8 := 1 << uint(bits-8)
	for first := 1; first < 224; first++ {
		if first == 10 || first == 127 || first == 169 || first == 172 || first == 192 {
			continue // reserved-ish space, kept out for realism
		}
		slash8 := netx.NewPrefix(netx.Addr(uint32(first)<<24), 8)
		if slash8.Overlaps(dark) {
			continue
		}
		for i := 0; i < perSlash8; i++ {
			blocks = append(blocks, netx.NewPrefix(slash8.Nth(uint64(i)<<uint(32-bits)), bits))
		}
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("geo: no allocatable space outside %v", dark)
	}
	r.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	return &allocator{blocks: blocks}, nil
}

func (a *allocator) next() (netx.Prefix, error) {
	if a.cursor >= len(a.blocks) {
		return netx.Prefix{}, fmt.Errorf("geo: address space exhausted after %d blocks", a.cursor)
	}
	p := a.blocks[a.cursor]
	a.cursor++
	return p, nil
}

// CountryName returns the display name for a code, or the code itself.
func (g *Registry) CountryName(code string) string {
	for _, c := range g.Countries {
		if c.Code == code {
			return c.Name
		}
	}
	return code
}

// NamedCountryCodes returns the codes of the paper's named countries in
// table order (US first).
func NamedCountryCodes() []string {
	out := make([]string, len(namedCountries))
	for i, c := range namedCountries {
		out[i] = c.Code
	}
	return out
}

// FindISP returns the index of the first ISP with the given name, or -1.
func (g *Registry) FindISP(name string) int {
	for i, isp := range g.ISPs {
		if isp.Name == name {
			return i
		}
	}
	return -1
}
