package geo_test

import (
	"reflect"
	"testing"

	"iotscope/internal/abusecontact"
	"iotscope/internal/geo"
	"iotscope/internal/netx"
)

func buildTwice(t *testing.T, seed uint64) (*geo.Registry, *geo.Registry) {
	t.Helper()
	cfg := geo.Config{
		DarkPrefix:        netx.MustParsePrefix("44.0.0.0/8"),
		FillerCountries:   8,
		ISPsPerCountryMin: 2,
		ISPsPerCountryMax: 4,
		PrefixBits:        16,
		PrefixesPerISP:    2,
	}
	a, err := geo.Build(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := geo.Build(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// Same seed → identical ISP and prefix allocation across two independent
// builds, and identical derived abuse-contact resolution for every
// operator. The notification pipeline leans on this: a contact resolved at
// enqueue time must be the contact a restarted process would resolve.
func TestRegistryAndContactDeterminism(t *testing.T) {
	a, b := buildTwice(t, 99)
	if !reflect.DeepEqual(a.ISPs, b.ISPs) {
		t.Fatal("ISP allocation diverged across identical builds")
	}
	if !reflect.DeepEqual(a.Countries, b.Countries) {
		t.Fatal("country set diverged across identical builds")
	}
	for i := range a.ISPs {
		if !reflect.DeepEqual(a.Prefixes(i), b.Prefixes(i)) {
			t.Fatalf("ISP %d prefix allocation diverged: %v vs %v",
				i, a.Prefixes(i), b.Prefixes(i))
		}
	}

	ra := abusecontact.NewResolver(abusecontact.Derive(a, 99))
	rb := abusecontact.NewResolver(abusecontact.Derive(b, 99))
	for i := range a.ISPs {
		ca, errA := ra.Resolve(i)
		cb, errB := rb.Resolve(i)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("ISP %d resolution outcome diverged: %v vs %v", i, errA, errB)
		}
		if ca != cb {
			t.Fatalf("ISP %d contact diverged: %+v vs %+v", i, ca, cb)
		}
	}

	// A different seed reallocates.
	c, err := geo.Build(geo.Config{
		DarkPrefix:        netx.MustParsePrefix("44.0.0.0/8"),
		FillerCountries:   8,
		ISPsPerCountryMin: 2,
		ISPsPerCountryMax: 4,
		PrefixBits:        16,
		PrefixesPerISP:    2,
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := len(c.ISPs) == len(a.ISPs)
	if same {
		for i := range a.ISPs {
			if !reflect.DeepEqual(a.Prefixes(i), c.Prefixes(i)) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seed produced an identical allocation")
	}
}

// Prefix-boundary exactness: the first and last address of every allocated
// block resolve to its owner, and the addresses one step outside either
// resolve to a different owner or to nothing.
func TestLookupPrefixBoundaries(t *testing.T) {
	g, _ := buildTwice(t, 31)
	for i := range g.ISPs {
		for _, p := range g.Prefixes(i) {
			first := p.Nth(0)
			last := p.Nth(p.NumAddrs() - 1)
			for _, a := range []netx.Addr{first, last} {
				info, ok := g.Lookup(a)
				if !ok || info.ISP != i {
					t.Fatalf("addr %v inside %v resolves to %+v (ok=%v), want ISP %d",
						a, p, info, ok, i)
				}
			}
			if before := first - 1; before < first {
				if info, ok := g.Lookup(before); ok && info.ISP == i && !contains(g.Prefixes(i), before) {
					t.Fatalf("addr %v before %v leaked into ISP %d", before, p, i)
				}
			}
			if after := last + 1; after > last {
				if info, ok := g.Lookup(after); ok && info.ISP == i && !contains(g.Prefixes(i), after) {
					t.Fatalf("addr %v after %v leaked into ISP %d", after, p, i)
				}
			}
		}
	}
}

func contains(ps []netx.Prefix, a netx.Addr) bool {
	for _, p := range ps {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// FuzzLookup drives arbitrary addresses through the registry trie: every
// hit must be consistent with the ISP's allocated prefixes, hits must agree
// across two identically seeded builds, and the dark prefix never resolves.
func FuzzLookup(f *testing.F) {
	cfg := geo.Config{
		DarkPrefix:        netx.MustParsePrefix("44.0.0.0/8"),
		FillerCountries:   4,
		ISPsPerCountryMin: 1,
		ISPsPerCountryMax: 3,
		PrefixBits:        16,
		PrefixesPerISP:    2,
	}
	a, err := geo.Build(cfg, 7)
	if err != nil {
		f.Fatal(err)
	}
	b, err := geo.Build(cfg, 7)
	if err != nil {
		f.Fatal(err)
	}
	// Seed with prefix boundaries — the off-by-one surface of a trie.
	for i := 0; i < len(a.ISPs) && i < 4; i++ {
		for _, p := range a.Prefixes(i) {
			f.Add(uint32(p.Nth(0)))
			f.Add(uint32(p.Nth(p.NumAddrs() - 1)))
			f.Add(uint32(p.Nth(0)) - 1)
			f.Add(uint32(p.Nth(p.NumAddrs()-1)) + 1)
		}
	}
	f.Add(uint32(0))
	f.Add(uint32(0x2c000001)) // inside the 44/8 darknet

	f.Fuzz(func(t *testing.T, raw uint32) {
		addr := netx.Addr(raw)
		infoA, okA := a.Lookup(addr)
		infoB, okB := b.Lookup(addr)
		if okA != okB || (okA && infoA != infoB) {
			t.Fatalf("lookup %v diverged across identical builds", addr)
		}
		if !okA {
			return
		}
		if infoA.ISP < 0 || infoA.ISP >= len(a.ISPs) {
			t.Fatalf("lookup %v returned ISP %d of %d", addr, infoA.ISP, len(a.ISPs))
		}
		if !contains(a.Prefixes(infoA.ISP), addr) {
			t.Fatalf("lookup %v claims ISP %d, but no allocated prefix contains it",
				addr, infoA.ISP)
		}
		if a.ISPs[infoA.ISP].Country != infoA.Country {
			t.Fatalf("lookup %v country %q contradicts ISP record %q",
				addr, infoA.Country, a.ISPs[infoA.ISP].Country)
		}
		if cfg.DarkPrefix.Contains(addr) {
			t.Fatalf("dark address %v resolved to an operator", addr)
		}
	})
}
