package geo

import (
	"testing"

	"iotscope/internal/netx"
	"iotscope/internal/rng"
)

func build(t *testing.T, seed uint64) *Registry {
	t.Helper()
	g, err := Build(DefaultConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildDeterministic(t *testing.T) {
	a := build(t, 42)
	b := build(t, 42)
	if len(a.ISPs) != len(b.ISPs) {
		t.Fatalf("ISP counts differ: %d vs %d", len(a.ISPs), len(b.ISPs))
	}
	for i := range a.ISPs {
		if a.ISPs[i] != b.ISPs[i] {
			t.Fatalf("ISP %d differs: %+v vs %+v", i, a.ISPs[i], b.ISPs[i])
		}
		ap, bp := a.Prefixes(i), b.Prefixes(i)
		for j := range ap {
			if ap[j] != bp[j] {
				t.Fatalf("prefix %d/%d differs", i, j)
			}
		}
	}
}

func TestBuildSeedsDiffer(t *testing.T) {
	a := build(t, 1)
	b := build(t, 2)
	same := 0
	n := len(a.ISPs)
	if len(b.ISPs) < n {
		n = len(b.ISPs)
	}
	for i := 0; i < n; i++ {
		if len(a.Prefixes(i)) > 0 && len(b.Prefixes(i)) > 0 && a.Prefixes(i)[0] == b.Prefixes(i)[0] {
			same++
		}
	}
	if same > n/10 {
		t.Fatalf("%d/%d first prefixes identical across seeds", same, n)
	}
}

func TestNamedISPsPresent(t *testing.T) {
	g := build(t, 7)
	for country, names := range namedISPs {
		for _, name := range names {
			idx := g.FindISP(name)
			if idx < 0 {
				t.Errorf("named ISP %q missing", name)
				continue
			}
			if g.ISPs[idx].Country != country {
				t.Errorf("ISP %q in country %q, want %q", name, g.ISPs[idx].Country, country)
			}
		}
	}
}

func TestCountryCount(t *testing.T) {
	g := build(t, 7)
	want := len(namedCountries) + DefaultConfig().FillerCountries
	if len(g.Countries) != want {
		t.Fatalf("countries %d want %d", len(g.Countries), want)
	}
}

func TestLookupConsistency(t *testing.T) {
	g := build(t, 11)
	r := rng.New(5)
	for i := range g.ISPs {
		for trial := 0; trial < 3; trial++ {
			a := g.RandomAddr(r, i)
			info, ok := g.Lookup(a)
			if !ok {
				t.Fatalf("address %v from ISP %d not found", a, i)
			}
			if info.ISP != i {
				t.Fatalf("address %v resolved to ISP %d want %d", a, info.ISP, i)
			}
			if info.Country != g.ISPs[i].Country {
				t.Fatalf("address %v resolved to country %q want %q",
					a, info.Country, g.ISPs[i].Country)
			}
		}
	}
}

func TestDarknetExcluded(t *testing.T) {
	g := build(t, 13)
	dark := DefaultConfig().DarkPrefix
	for i := range g.ISPs {
		for _, p := range g.Prefixes(i) {
			if p.Overlaps(dark) {
				t.Fatalf("ISP %d prefix %v overlaps darknet %v", i, p, dark)
			}
		}
	}
	if _, ok := g.Lookup(netx.MustParseAddr("44.1.2.3")); ok {
		t.Fatal("darknet address resolved to an operator")
	}
}

func TestPrefixesDisjoint(t *testing.T) {
	g := build(t, 17)
	seen := make(map[netx.Prefix]int)
	for i := range g.ISPs {
		for _, p := range g.Prefixes(i) {
			if prev, dup := seen[p]; dup {
				t.Fatalf("prefix %v allocated to ISPs %d and %d", p, prev, i)
			}
			seen[p] = i
		}
	}
}

func TestISPsIn(t *testing.T) {
	g := build(t, 19)
	for _, code := range []string{"US", "RU", "CN"} {
		isps := g.ISPsIn(code)
		if len(isps) < DefaultConfig().ISPsPerCountryMin {
			t.Errorf("country %s has %d ISPs", code, len(isps))
		}
		for _, i := range isps {
			if g.ISPs[i].Country != code {
				t.Errorf("ISPsIn(%s) returned ISP of %s", code, g.ISPs[i].Country)
			}
		}
	}
	if got := g.ISPsIn("ZZ"); got != nil {
		t.Errorf("unknown country returned %v", got)
	}
}

func TestCountryName(t *testing.T) {
	g := build(t, 23)
	if got := g.CountryName("US"); got != "United States" {
		t.Errorf("CountryName(US) = %q", got)
	}
	if got := g.CountryName("??"); got != "??" {
		t.Errorf("unknown code = %q", got)
	}
}

func TestNamedCountryCodes(t *testing.T) {
	codes := NamedCountryCodes()
	if len(codes) != len(namedCountries) || codes[0] != "US" {
		t.Fatalf("codes %v", codes)
	}
}

func TestBuildValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.PrefixBits = 30
	if _, err := Build(bad, 1); err == nil {
		t.Error("prefix bits 30 accepted")
	}
	bad = DefaultConfig()
	bad.ISPsPerCountryMin = 0
	if _, err := Build(bad, 1); err == nil {
		t.Error("min 0 accepted")
	}
	bad = DefaultConfig()
	bad.PrefixesPerISP = 0
	if _, err := Build(bad, 1); err == nil {
		t.Error("0 prefixes per ISP accepted")
	}
}

func TestASNsUnique(t *testing.T) {
	g := build(t, 29)
	seen := make(map[uint32]bool)
	for _, isp := range g.ISPs {
		if seen[isp.ASN] {
			t.Fatalf("duplicate ASN %d", isp.ASN)
		}
		seen[isp.ASN] = true
	}
}

func BenchmarkLookup(b *testing.B) {
	g, err := Build(DefaultConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	addrs := make([]netx.Addr, 1024)
	for i := range addrs {
		addrs[i] = g.RandomAddr(r, r.Intn(len(g.ISPs)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Lookup(addrs[i&1023])
	}
}
