// Package scenario is the registry of declarative workload scenarios: a
// bundled, versioned library embedded in the binary, loaders for external
// scenario files, and the run manifest that stamps every generated dataset
// with its exact provenance — scenario name and version, resolved seed and
// scale, canonical config hash, and the generator versions that rendered
// it. Given a manifest and this package, any dataset can be regenerated
// byte for byte.
package scenario

import (
	"embed"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"iotscope/internal/wgen"
)

// DefaultName is the scenario every unpinned run resolves: the bundled
// paper calibration, byte-identical to wgen.Default().
const DefaultName = "paper-default"

//go:embed scenarios/*.json scenarios/*.toml
var bundled embed.FS

// Meta describes one bundled scenario.
type Meta struct {
	Name        string
	Version     int
	Description string
	Hours       int
	// Kinds are the actor kinds the scenario composes, in file order.
	Kinds []string
	// File is the bundled file name.
	File string
}

// Ref renders the pinned "name@version" reference.
func (m Meta) Ref() string { return fmt.Sprintf("%s@%d", m.Name, m.Version) }

// List enumerates the bundled scenario library, sorted by name then
// version. It panics only if the embedded bundle itself is broken, which
// TestBundledScenariosDecode pins at build time.
func List() []Meta {
	entries, err := bundled.ReadDir("scenarios")
	if err != nil {
		panic("scenario: broken bundle: " + err.Error())
	}
	out := make([]Meta, 0, len(entries))
	for _, e := range entries {
		cfg, err := loadBundledFile(e.Name())
		if err != nil {
			panic("scenario: broken bundled file " + e.Name() + ": " + err.Error())
		}
		m := Meta{
			Name:        cfg.Name,
			Version:     cfg.Version,
			Description: cfg.Description,
			Hours:       cfg.Hours,
			File:        e.Name(),
		}
		for _, a := range cfg.Actors {
			m.Kinds = append(m.Kinds, a.Kind)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}

func loadBundledFile(name string) (*wgen.Config, error) {
	data, err := bundled.ReadFile("scenarios/" + name)
	if err != nil {
		return nil, err
	}
	return wgen.DecodeConfig(data)
}

// Load resolves a bundled scenario by "name" (highest version) or
// "name@version" and returns its decoded, validated config.
func Load(ref string) (*wgen.Config, error) {
	name, version, err := splitRef(ref)
	if err != nil {
		return nil, err
	}
	var (
		best     *wgen.Config
		bestVer  int
		anyName  bool
		allNames []string
	)
	for _, m := range List() {
		allNames = append(allNames, m.Ref())
		if m.Name != name {
			continue
		}
		anyName = true
		if version != 0 && m.Version != version {
			continue
		}
		if m.Version >= bestVer {
			cfg, err := loadBundledFile(m.File)
			if err != nil {
				return nil, err
			}
			best, bestVer = cfg, m.Version
		}
	}
	if best == nil {
		if anyName {
			return nil, fmt.Errorf("scenario: no bundled version %d of %q", version, name)
		}
		return nil, fmt.Errorf("scenario: no bundled scenario %q (have: %s)",
			name, strings.Join(allNames, ", "))
	}
	return best, nil
}

func splitRef(ref string) (name string, version int, err error) {
	name = ref
	if at := strings.LastIndexByte(ref, '@'); at >= 0 {
		name = ref[:at]
		version, err = strconv.Atoi(ref[at+1:])
		if err != nil || version < 1 {
			return "", 0, fmt.Errorf("scenario: bad version in ref %q", ref)
		}
	}
	if name == "" {
		return "", 0, fmt.Errorf("scenario: empty scenario name in ref %q", ref)
	}
	return name, version, nil
}

// LoadFile decodes and validates a scenario config from an external file
// (JSON or TOML, sniffed by content).
func LoadFile(path string) (*wgen.Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := wgen.DecodeConfig(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return cfg, nil
}

// Options are the run-time inputs a config is resolved with. They are
// deliberately outside the config (and inside the run manifest): one
// scenario reproduces at any scale.
type Options struct {
	// Scale multiplies populations and aggregate volumes, in (0, 1].
	Scale float64
	// Seed drives every stochastic choice.
	Seed uint64
	// Hours overrides the config's capture window when positive.
	Hours int
}

// Resolved is a scenario ready to generate: the source config plus the
// concrete Scenario it resolves to at the chosen scale and seed.
type Resolved struct {
	// Source records where the config came from: "bundled:name@version"
	// or "file:<base name>". Deliberately machine-independent so datasets
	// generated from the same file anywhere carry identical manifests.
	Source string
	Config *wgen.Config
	// ConfigHash is the canonical hash of Config.
	ConfigHash string
	// Scenario is the runnable resolution of Config at Options.
	Scenario wgen.Scenario
}

// Resolve turns a scenario reference into a Resolved scenario. The
// reference is a bundled name ("paper-default", "mirai-wave@1") unless it
// looks like a path (contains a separator or a .json/.toml suffix), in
// which case the file is loaded.
func Resolve(ref string, opts Options) (*Resolved, error) {
	var (
		cfg    *wgen.Config
		source string
		err    error
	)
	if isFileRef(ref) {
		cfg, err = LoadFile(ref)
		source = "file:" + filepath.Base(ref)
	} else {
		cfg, err = Load(ref)
		if err == nil {
			source = fmt.Sprintf("bundled:%s@%d", cfg.Name, cfg.Version)
		}
	}
	if err != nil {
		return nil, err
	}
	return resolve(cfg, source, opts)
}

// ResolveConfig resolves an already decoded config (e.g. one constructed
// programmatically). Source is recorded as "config:<name>@<version>".
func ResolveConfig(cfg *wgen.Config, opts Options) (*Resolved, error) {
	return resolve(cfg, fmt.Sprintf("config:%s@%d", cfg.Name, cfg.Version), opts)
}

func resolve(cfg *wgen.Config, source string, opts Options) (*Resolved, error) {
	sc, err := cfg.Scenario(opts.Scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	if opts.Hours > 0 {
		sc.Hours = opts.Hours
	}
	hash, err := cfg.Hash()
	if err != nil {
		return nil, err
	}
	return &Resolved{
		Source:     source,
		Config:     cfg,
		ConfigHash: hash,
		Scenario:   sc,
	}, nil
}

// Default resolves the bundled paper-default scenario — the library
// equivalent of wgen.Default(scale, seed), proven byte-identical to it by
// TestPaperDefaultMatchesWgenDefault.
func Default(scale float64, seed uint64) (*Resolved, error) {
	return Resolve(DefaultName, Options{Scale: scale, Seed: seed})
}

func isFileRef(ref string) bool {
	return strings.ContainsRune(ref, os.PathSeparator) || strings.ContainsRune(ref, '/') ||
		strings.HasSuffix(ref, ".json") || strings.HasSuffix(ref, ".toml")
}
