package scenario

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iotscope/internal/faultfs"
)

func stampedDir(t *testing.T) (string, *Resolved) {
	t.Helper()
	rs, err := Resolve("stealth-scan@1", Options{Scale: 0.002, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteRunFiles(dir, rs); err != nil {
		t.Fatal(err)
	}
	return dir, rs
}

func TestWriteVerifyRoundTrip(t *testing.T) {
	dir, rs := stampedDir(t)
	m, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.ConfigHash != rs.ConfigHash {
		t.Fatalf("verified hash %s, resolved %s", m.ConfigHash, rs.ConfigHash)
	}
	if m.Scenario != "stealth-scan" || m.Version != 1 {
		t.Fatalf("manifest names %s@%d", m.Scenario, m.Version)
	}
	if m.Source != "bundled:stealth-scan@1" {
		t.Fatalf("source %q", m.Source)
	}
	// No temp files left behind by the atomic writes.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

// A directory with no manifest is a legacy dataset, reported as
// fs.ErrNotExist so callers can fall back rather than fail.
func TestVerifyDirLegacy(t *testing.T) {
	if _, err := VerifyDir(t.TempDir()); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("expected fs.ErrNotExist for a bare directory, got %v", err)
	}
}

// Provenance corruption table: every tampering mode must fail verification
// with ErrManifestMismatch — never pass, never misclassify as legacy.
func TestVerifyDirCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
	}{
		{"config bit flip", func(t *testing.T, dir string) {
			if err := faultfs.BitFlip(filepath.Join(dir, ConfigFile), 300, 0x40); err != nil {
				t.Fatal(err)
			}
		}},
		{"config truncated", func(t *testing.T, dir string) {
			if err := faultfs.TruncateTail(filepath.Join(dir, ConfigFile), 120); err != nil {
				t.Fatal(err)
			}
		}},
		{"config trailing garbage", func(t *testing.T, dir string) {
			if err := faultfs.AppendTail(filepath.Join(dir, ConfigFile), []byte("{}")); err != nil {
				t.Fatal(err)
			}
		}},
		{"config swapped for another scenario", func(t *testing.T, dir string) {
			other, err := Load("mirai-wave")
			if err != nil {
				t.Fatal(err)
			}
			canon, err := other.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, ConfigFile), canon, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"config missing", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, ConfigFile)); err != nil {
				t.Fatal(err)
			}
		}},
		{"manifest unreadable", func(t *testing.T, dir string) {
			if err := faultfs.Overwrite(filepath.Join(dir, ManifestFile), 0, []byte("!!")); err != nil {
				t.Fatal(err)
			}
		}},
		{"manifest hash forged", func(t *testing.T, dir string) {
			path := filepath.Join(dir, ManifestFile)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			forged := strings.Replace(string(data), "sha256:", "sha256:0000", 1)
			if err := os.WriteFile(path, []byte(forged), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"manifest implausible scale", func(t *testing.T, dir string) {
			path := filepath.Join(dir, ManifestFile)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			forged := strings.Replace(string(data), `"Scale": 0.002`, `"Scale": 40`, 1)
			if forged == string(data) {
				t.Fatal("scale field not found to forge")
			}
			if err := os.WriteFile(path, []byte(forged), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, _ := stampedDir(t)
			tc.corrupt(t, dir)
			_, err := VerifyDir(dir)
			if err == nil {
				t.Fatal("tampered dataset verified")
			}
			if errors.Is(err, fs.ErrNotExist) && tc.name != "manifest missing" {
				if tc.name != "config missing" {
					t.Fatalf("tampering misreported as legacy: %v", err)
				}
			}
			if !errors.Is(err, ErrManifestMismatch) {
				t.Fatalf("error %v does not wrap ErrManifestMismatch", err)
			}
		})
	}
}

// A manifest alone (config deleted after a partial copy) must not verify,
// and a config alone must read as legacy — run.json is the commit record.
func TestVerifyDirPartialCopies(t *testing.T) {
	dir, rs := stampedDir(t)
	configOnly := t.TempDir()
	data, err := os.ReadFile(filepath.Join(dir, ConfigFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(configOnly, ConfigFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(configOnly); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("config-only dir should read as legacy, got %v", err)
	}
	_ = rs
}
