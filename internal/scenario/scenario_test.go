package scenario

import (
	"bytes"
	"crypto/sha256"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"iotscope/internal/wgen"
)

// Every bundled scenario decodes, validates, and resolves at a tiny scale.
// List() panics on a broken bundle, so this test is the build-time pin that
// it never does.
func TestBundledScenariosDecode(t *testing.T) {
	metas := List()
	if len(metas) < 8 {
		t.Fatalf("bundled library shrank: %d scenarios", len(metas))
	}
	seen := map[string]bool{}
	for _, m := range metas {
		if seen[m.Ref()] {
			t.Errorf("duplicate bundled ref %s", m.Ref())
		}
		seen[m.Ref()] = true
		if m.Description == "" || m.Hours <= 0 || len(m.Kinds) == 0 {
			t.Errorf("%s: incomplete metadata %+v", m.Ref(), m)
		}
		rs, err := Resolve(m.Ref(), Options{Scale: 0.001, Seed: 7})
		if err != nil {
			t.Errorf("%s does not resolve: %v", m.Ref(), err)
			continue
		}
		if rs.Source != "bundled:"+m.Ref() {
			t.Errorf("%s: source %q", m.Ref(), rs.Source)
		}
		if !strings.HasPrefix(rs.ConfigHash, "sha256:") {
			t.Errorf("%s: bad config hash %q", m.Ref(), rs.ConfigHash)
		}
	}
	for _, want := range []string{
		"paper-default@1", "mirai-wave@1", "udp-amplification@1",
		"stealth-scan@1", "cps-campaign@1", "smart-home-diurnal@1",
		"telescope-16@1", "telescope-24@1",
	} {
		if !seen[want] {
			t.Errorf("bundled library missing %s", want)
		}
	}
}

// The headline acceptance pin: the bundled paper-default scenario resolves
// to exactly wgen.Default(), and renders a byte-identical dataset.
func TestPaperDefaultMatchesWgenDefault(t *testing.T) {
	rs, err := Default(0.002, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := wgen.Default(0.002, 42)
	if !reflect.DeepEqual(rs.Scenario, want) {
		t.Fatal("resolved paper-default scenario differs from wgen.Default()")
	}

	// Render both over a short window and compare hour files byte for byte.
	render := func(sc wgen.Scenario) [32]byte {
		sc.Hours = 6
		g, err := wgen.New(sc)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if _, err := g.Run(dir); err != nil {
			t.Fatal(err)
		}
		return hashDir(t, dir)
	}
	a, b := render(rs.Scenario), render(want)
	if !bytes.Equal(a[:], b[:]) {
		t.Fatal("paper-default renders different bytes than wgen.Default()")
	}
}

// The committed JSON files are exactly what tools/scenariogen writes: the
// canonical encoding of what they decode to. Regenerate with
// `go run ./tools/scenariogen` if a definition changes.
func TestBundledFilesAreCanonical(t *testing.T) {
	entries, err := bundled.ReadDir("scenarios")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := bundled.ReadFile("scenarios/" + e.Name())
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := wgen.DecodeConfig(data)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		canon, err := cfg.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, canon) {
			t.Errorf("%s is not canonical; regenerate with `go run ./tools/scenariogen`", e.Name())
		}
		if want := cfg.Name + "@" + "1" + ".json"; cfg.Version == 1 && e.Name() != want {
			t.Errorf("%s: file name does not match %s@%d", e.Name(), cfg.Name, cfg.Version)
		}
	}
}

func TestLoadRefForms(t *testing.T) {
	byName, err := Load("paper-default")
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := Load("paper-default@1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byName, pinned) {
		t.Fatal("unpinned load does not pick the highest version")
	}
	if _, err := Load("no-such"); err == nil || !strings.Contains(err.Error(), "paper-default@1") {
		t.Fatalf("unknown name error does not list available scenarios: %v", err)
	}
	if _, err := Load("paper-default@9"); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := Load("paper-default@x"); err == nil {
		t.Fatal("malformed version accepted")
	}
	if _, err := Load("@1"); err == nil {
		t.Fatal("empty name accepted")
	}
}

// A scenario file outside the bundle resolves with a file: source, and both
// codecs are accepted.
func TestResolveFileRef(t *testing.T) {
	cfg, err := Load("stealth-scan")
	if err != nil {
		t.Fatal(err)
	}
	canon, err := cfg.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "my-scan.json")
	if err := os.WriteFile(path, canon, 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := Resolve(path, Options{Scale: 0.001, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Source != "file:my-scan.json" {
		t.Fatalf("source = %q", rs.Source)
	}
	bundledRS, err := Resolve("stealth-scan", Options{Scale: 0.001, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.ConfigHash != bundledRS.ConfigHash {
		t.Fatal("same config hashes differently from file vs bundle")
	}
	if _, err := Resolve(filepath.Join(dir, "absent.json"), Options{Scale: 0.001, Seed: 1}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Hours in Options override the config's window; Scale/Seed land in the
// resolved scenario and the manifest.
func TestResolveOptions(t *testing.T) {
	rs, err := Resolve("mirai-wave", Options{Scale: 0.004, Seed: 9, Hours: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Scenario.Hours != 10 {
		t.Fatalf("hours override ignored: %d", rs.Scenario.Hours)
	}
	m := rs.Manifest()
	if m.Scenario != "mirai-wave" || m.Version != 1 || m.Seed != 9 || m.Scale != 0.004 || m.Hours != 10 {
		t.Fatalf("manifest fields wrong: %+v", m)
	}
	if m.Generators["mirai-wave"] != 1 || m.Generators["tcp-scan"] != 1 {
		t.Fatalf("generator versions missing: %v", m.Generators)
	}
}

// hashDir hashes every file in a directory, in name order.
func hashDir(t *testing.T, dir string) [32]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		io.WriteString(h, e.Name())
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(h, f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
