package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"iotscope/internal/wgen"
)

// Dataset provenance files. Every generated dataset carries both: the
// canonical config it was resolved from, and the manifest binding that
// config (by hash) to the run inputs. Neither contains a timestamp — a
// dataset regenerated from its manifest is byte-identical, manifest
// included.
const (
	// ConfigFile is the canonical JSON encoding of the resolved config.
	ConfigFile = "scenario-config.json"
	// ManifestFile is the run manifest. It is written last, atomically:
	// its presence marks a complete, provenance-stamped dataset.
	ManifestFile = "run.json"
)

// ErrManifestMismatch is wrapped by every provenance-verification failure:
// a manifest whose config hash does not match the persisted config, or
// whose fields disagree with the dataset.
var ErrManifestMismatch = errors.New("run manifest does not match dataset")

// RunManifest records exactly which scenario, at which inputs, produced a
// dataset. {Source, Seed, Scale, Hours} + the config file reproduce the
// run; ConfigHash and Generators detect config tampering and generator
// drift respectively.
type RunManifest struct {
	// Scenario and Version name the config; Source records where it came
	// from (bundled:, file:, config:).
	Scenario string
	Version  int
	Source   string
	// Resolved run inputs.
	Seed  uint64
	Scale float64
	Hours int
	// ConfigHash is the canonical hash of the config that generated the
	// dataset; it must round-trip through the persisted config file.
	ConfigHash string
	// Generators maps each actor kind the config uses to the registered
	// generator version that rendered it.
	Generators map[string]int
}

// Manifest builds the run manifest for a resolved scenario.
func (r *Resolved) Manifest() *RunManifest {
	return &RunManifest{
		Scenario:   r.Config.Name,
		Version:    r.Config.Version,
		Source:     r.Source,
		Seed:       r.Scenario.Seed,
		Scale:      r.Scenario.Scale,
		Hours:      r.Scenario.Hours,
		ConfigHash: r.ConfigHash,
		Generators: wgen.GeneratorVersions(r.Config),
	}
}

// WriteRunFiles stamps dir with the resolved scenario's provenance: the
// canonical config, then the manifest. Both are written atomically
// (tmp + rename), manifest last, so a crash mid-write never leaves a
// dataset that claims provenance it does not have.
func WriteRunFiles(dir string, r *Resolved) error {
	canon, err := r.Config.CanonicalJSON()
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, ConfigFile), canon); err != nil {
		return err
	}
	mdata, err := json.MarshalIndent(r.Manifest(), "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, ManifestFile), append(mdata, '\n'))
}

// ReadManifest reads a dataset's run manifest. A dataset predating the
// registry has none; callers distinguish that with errors.Is(err,
// fs.ErrNotExist).
func ReadManifest(dir string) (*RunManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, err
	}
	var m RunManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: unreadable manifest: %v", ErrManifestMismatch, err)
	}
	return &m, nil
}

// VerifyDir checks a dataset directory's provenance chain: the manifest
// exists, the persisted config decodes and validates, and its canonical
// hash round-trips to the manifest's ConfigHash. Returns the verified
// manifest. Missing files surface as fs.ErrNotExist (legacy dataset);
// everything else wraps ErrManifestMismatch.
func VerifyDir(dir string) (*RunManifest, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, ConfigFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: manifest present but %s missing", ErrManifestMismatch, ConfigFile)
		}
		return nil, err
	}
	cfg, err := wgen.DecodeConfig(data)
	if err != nil {
		return nil, fmt.Errorf("%w: persisted config: %v", ErrManifestMismatch, err)
	}
	hash, err := cfg.Hash()
	if err != nil {
		return nil, err
	}
	if hash != m.ConfigHash {
		return nil, fmt.Errorf("%w: config hash %s, manifest claims %s", ErrManifestMismatch, hash, m.ConfigHash)
	}
	if cfg.Name != m.Scenario || cfg.Version != m.Version {
		return nil, fmt.Errorf("%w: config is %s@%d, manifest claims %s@%d",
			ErrManifestMismatch, cfg.Name, cfg.Version, m.Scenario, m.Version)
	}
	if m.Scale <= 0 || m.Scale > 1 || m.Hours <= 0 {
		return nil, fmt.Errorf("%w: implausible run inputs scale=%v hours=%d", ErrManifestMismatch, m.Scale, m.Hours)
	}
	return m, nil
}

// writeFileAtomic publishes data at path via a same-directory temp file,
// fsync, and rename, so readers never observe a partial file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
