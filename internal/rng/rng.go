// Package rng provides a deterministic, seedable pseudo-random number
// generator with stable stream derivation.
//
// Every stochastic component in the simulator (actor behaviours, inventory
// generation, threat-event placement) draws from a Source derived from a
// scenario master seed, so an identical seed reproduces a byte-identical
// dataset across runs and platforms. The core generator is xoshiro256**,
// seeded through splitmix64; substreams are derived by hashing string labels
// into the seed, which keeps independent components decoupled: adding draws
// to one actor never perturbs another.
package rng

import "math"

// Source is a deterministic pseudo-random number generator (xoshiro256**).
// It is not safe for concurrent use; derive one Source per goroutine.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the source to the stream identified by seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// splitmix64 advances the splitmix64 state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Derive returns a new Source whose stream is a deterministic function of
// this source's seed material and the given labels. Deriving with the same
// labels always yields the same stream; distinct labels yield decorrelated
// streams.
func (r *Source) Derive(labels ...string) *Source {
	h := r.s[0] ^ rotl(r.s[2], 17)
	for _, label := range labels {
		h = hashLabel(h, label)
	}
	return New(h)
}

// DeriveN returns a substream keyed by an integer, convenient for per-actor
// or per-index streams.
func (r *Source) DeriveN(label string, n uint64) *Source {
	h := hashLabel(r.s[0]^rotl(r.s[2], 17), label)
	_, h2 := splitmix64(h ^ (n * 0x9e3779b97f4a7c15))
	return New(h2)
}

// hashLabel folds a string into h with an FNV-1a style mix hardened by
// splitmix finalization.
func hashLabel(h uint64, label string) uint64 {
	const prime = 1099511628211
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	_, out := splitmix64(h)
	return out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Source) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := r.Uint64()
		lo, hi := bits128(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// bits128 computes the 128-bit product v*n and returns (low64, high64).
func bits128(v, n uint64) (lo, hi uint64) {
	const mask32 = 1<<32 - 1
	vl, vh := v&mask32, v>>32
	nl, nh := n&mask32, n>>32

	ll := vl * nl
	lh := vl * nh
	hl := vh * nl
	hh := vh * nh

	mid := lh + hl
	carry := uint64(0)
	if mid < lh {
		carry = 1 << 32
	}
	lo = ll + mid<<32
	if lo < ll {
		hh++
	}
	hi = hh + mid>>32 + carry
	return lo, hi
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	default:
		return r.Float64() < p
	}
}

// Range returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *Source) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, via the Box-Muller transform.
func (r *Source) NormFloat64() float64 {
	// Draw u1 in (0, 1] to keep Log finite.
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *Source) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
