package rng

import (
	"math"
	"sort"
)

// Categorical samples indices proportionally to a fixed weight vector. It is
// the workhorse for drawing countries, ISPs, device types, and port mixes
// that must match the paper's published marginal distributions.
type Categorical struct {
	cum []float64 // cumulative weights, strictly increasing
}

// NewCategorical builds a categorical distribution over len(weights)
// outcomes. Negative weights are treated as zero. It panics if the total
// weight is not positive.
func NewCategorical(weights []float64) *Categorical {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	if total <= 0 {
		panic("rng: categorical distribution needs positive total weight")
	}
	return &Categorical{cum: cum}
}

// Sample draws an outcome index in [0, len(weights)).
func (c *Categorical) Sample(r *Source) int {
	total := c.cum[len(c.cum)-1]
	u := r.Float64() * total
	return sort.SearchFloat64s(c.cum, math.Nextafter(u, math.Inf(1)))
}

// N returns the number of outcomes.
func (c *Categorical) N() int { return len(c.cum) }

// Zipf samples ranks 1..n with probability proportional to 1/rank^s.
// Port and destination popularity in darknet traffic is heavy-tailed; Zipf
// reproduces the "top 10 ports get ~10 % of packets, the rest spread over
// 60 000 ports" shape reported in the paper.
type Zipf struct {
	cum []float64
}

// NewZipf builds a Zipf distribution over ranks 1..n with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf needs n > 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	return &Zipf{cum: cum}
}

// Sample draws a rank in [1, n].
func (z *Zipf) Sample(r *Source) int {
	total := z.cum[len(z.cum)-1]
	u := r.Float64() * total
	return sort.SearchFloat64s(z.cum, math.Nextafter(u, math.Inf(1))) + 1
}

// Pareto returns a Pareto(xm, alpha) variate: heavy-tailed volumes such as
// per-device packet counts (a few devices emit millions of packets, half
// emit fewer than 170 — Fig. 6).
func (r *Source) Pareto(xm, alpha float64) float64 {
	u := 1 - r.Float64() // (0, 1]
	return xm / math.Pow(u, 1/alpha)
}

// LogNormal returns an exp(Normal(mu, sigma)) variate.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Poisson returns a Poisson(lambda) variate. Knuth's method is used for
// small lambda and a normal approximation beyond, which is ample for
// traffic-arrival counts.
func (r *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := lambda + math.Sqrt(lambda)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Binomial returns a Binomial(n, p) variate by direct simulation for small n
// and a normal approximation for large n.
func (r *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n > 128 {
		mean := float64(n) * p
		sd := math.Sqrt(float64(n) * p * (1 - p))
		v := int(mean + sd*r.NormFloat64() + 0.5)
		if v < 0 {
			return 0
		}
		if v > n {
			return n
		}
		return v
	}
	k := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}

// SampleK draws k distinct ints from [0, n) without replacement using a
// partial Fisher-Yates over a dense range (k close to n) or rejection over a
// set (k << n).
func (r *Source) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleK requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	// Rejection sampling is cheaper when the sample is sparse.
	if n > 4*k {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := r.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k:k]
}
