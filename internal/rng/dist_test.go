package rng

import (
	"math"
	"testing"
)

func TestCategoricalMatchesWeights(t *testing.T) {
	r := New(101)
	weights := []float64{1, 2, 3, 4}
	c := NewCategorical(weights)
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	const draws = 200000
	counts := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		counts[c.Sample(r)]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		got := counts[i] / draws
		want := w / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d: frequency %v want %v", i, got, want)
		}
	}
}

func TestCategoricalZeroWeightNeverSampled(t *testing.T) {
	r := New(103)
	c := NewCategorical([]float64{0, 1, 0, 2, 0})
	for i := 0; i < 50000; i++ {
		switch c.Sample(r) {
		case 1, 3:
		default:
			t.Fatal("sampled a zero-weight outcome")
		}
	}
}

func TestCategoricalNegativeTreatedAsZero(t *testing.T) {
	r := New(107)
	c := NewCategorical([]float64{-5, 1})
	for i := 0; i < 10000; i++ {
		if c.Sample(r) != 1 {
			t.Fatal("sampled a negative-weight outcome")
		}
	}
}

func TestCategoricalPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for all-zero weights")
		}
	}()
	NewCategorical([]float64{0, 0})
}

func TestZipfRankOrdering(t *testing.T) {
	r := New(109)
	z := NewZipf(100, 1.0)
	const draws = 200000
	counts := make([]int, 101)
	for i := 0; i < draws; i++ {
		rank := z.Sample(r)
		if rank < 1 || rank > 100 {
			t.Fatalf("rank %d out of bounds", rank)
		}
		counts[rank]++
	}
	if !(counts[1] > counts[2] && counts[2] > counts[5] && counts[5] > counts[50]) {
		t.Fatalf("Zipf counts not decreasing: c1=%d c2=%d c5=%d c50=%d",
			counts[1], counts[2], counts[5], counts[50])
	}
	// For s=1, P(1)/P(2) = 2.
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("P(1)/P(2) = %v, want ~2", ratio)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(113)
	const draws = 100000
	exceed := 0
	for i := 0; i < draws; i++ {
		v := r.Pareto(1, 1.2)
		if v < 1 {
			t.Fatalf("Pareto below scale: %v", v)
		}
		if v > 10 {
			exceed++
		}
	}
	// P(X > 10) = 10^-1.2 ~= 0.063.
	p := float64(exceed) / draws
	if math.Abs(p-math.Pow(10, -1.2)) > 0.01 {
		t.Errorf("tail probability %v", p)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(127)
	const draws = 100000
	below := 0
	mu := 3.0
	for i := 0; i < draws; i++ {
		if r.LogNormal(mu, 1.5) < math.Exp(mu) {
			below++
		}
	}
	p := float64(below) / draws
	if math.Abs(p-0.5) > 0.01 {
		t.Errorf("median split %v, want 0.5", p)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(131)
	for _, lambda := range []float64{0.5, 4, 30, 200} {
		const draws = 50000
		sum := 0
		for i := 0; i < draws; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / draws
		if math.Abs(mean-lambda) > 4*math.Sqrt(lambda/draws)+0.6 {
			t.Errorf("lambda %v: mean %v", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive lambda must be 0")
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(137)
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.3}, {100, 0.5}, {5000, 0.01}} {
		const draws = 20000
		sum := 0
		for i := 0; i < draws; i++ {
			v := r.Binomial(tc.n, tc.p)
			if v < 0 || v > tc.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, v)
			}
			sum += v
		}
		mean := float64(sum) / draws
		want := float64(tc.n) * tc.p
		if math.Abs(mean-want) > 0.05*want+0.5 {
			t.Errorf("Binomial(%d,%v): mean %v want %v", tc.n, tc.p, mean, want)
		}
	}
	if r.Binomial(10, 0) != 0 || r.Binomial(10, 1) != 10 || r.Binomial(0, 0.5) != 0 {
		t.Error("Binomial edge cases wrong")
	}
}

func TestSampleKDistinct(t *testing.T) {
	r := New(139)
	for _, tc := range []struct{ n, k int }{{10, 10}, {10, 3}, {1000, 10}, {100, 99}, {5, 0}} {
		s := r.SampleK(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("SampleK(%d,%d) len %d", tc.n, tc.k, len(s))
		}
		seen := make(map[int]bool, tc.k)
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("SampleK(%d,%d) = %v invalid", tc.n, tc.k, s)
			}
			seen[v] = true
		}
	}
}

func TestSampleKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleK(3, 4) did not panic")
		}
	}()
	New(1).SampleK(3, 4)
}

func TestSampleKCoversRange(t *testing.T) {
	r := New(149)
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		for _, v := range r.SampleK(20, 5) {
			seen[v] = true
		}
	}
	if len(seen) != 20 {
		t.Fatalf("SampleK never produced %d/20 values", 20-len(seen))
	}
}

func BenchmarkCategoricalSample(b *testing.B) {
	r := New(1)
	weights := make([]float64, 200)
	for i := range weights {
		weights[i] = float64(i + 1)
	}
	c := NewCategorical(weights)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Sample(r)
	}
}

func BenchmarkZipfSample(b *testing.B) {
	r := New(1)
	z := NewZipf(65536, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample(r)
	}
}
