package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from distinct seeds collided %d/100 times", same)
	}
}

func TestZeroSeedIsUsable(t *testing.T) {
	r := New(0)
	var allZero = true
	for i := 0; i < 16; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("seed 0 produced a degenerate all-zero stream")
	}
}

func TestDeriveStableAndIndependent(t *testing.T) {
	root := New(7)
	a1 := root.Derive("scanner")
	a2 := New(7).Derive("scanner")
	b := New(7).Derive("prober")
	for i := 0; i < 100; i++ {
		va1, va2, vb := a1.Uint64(), a2.Uint64(), b.Uint64()
		if va1 != va2 {
			t.Fatalf("derive not stable at draw %d", i)
		}
		if va1 == vb {
			t.Fatalf("derived streams for distinct labels collided at draw %d", i)
		}
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Derive("x", "y")
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Derive mutated parent stream")
		}
	}
}

func TestDeriveNDistinct(t *testing.T) {
	root := New(5)
	seen := make(map[uint64]uint64)
	for n := uint64(0); n < 500; n++ {
		v := root.DeriveN("actor", n).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("DeriveN(%d) first draw collided with DeriveN(%d)", n, prev)
		}
		seen[v] = n
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expectation %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(19)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		sum += r.Float64()
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(23)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", p)
	}
}

func TestRangeInclusive(t *testing.T) {
	r := New(31)
	sawLo, sawHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.Range(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("Range(3,5) = %d", v)
		}
		sawLo = sawLo || v == 3
		sawHi = sawHi || v == 5
	}
	if !sawLo || !sawHi {
		t.Fatal("Range(3,5) never produced an endpoint")
	}
	if got := r.Range(4, 4); got != 4 {
		t.Fatalf("Range(4,4) = %d", got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(37)
	const draws = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(41)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(43)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(47)
	data := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range data {
		sum += v
	}
	r.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	got := 0
	for _, v := range data {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", data)
	}
}

// Property: Uint64n(n) < n for all n > 0.
func TestUint64nBoundProperty(t *testing.T) {
	r := New(53)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: bits128 agrees with big-integer multiplication on the high word.
func TestBits128Property(t *testing.T) {
	f := func(v, n uint64) bool {
		lo, hi := bits128(v, n)
		// Verify via math/bits-free decomposition: reconstruct mod 2^64.
		if lo != v*n {
			return false
		}
		// High word check against 32-bit schoolbook recomputation.
		const mask = 1<<32 - 1
		vl, vh := v&mask, v>>32
		nl, nh := n&mask, n>>32
		carry := (vl*nl)>>32 + (vl*nh)&mask + (vh*nl)&mask
		wantHi := vh*nh + (vl*nh)>>32 + (vh*nl)>>32 + carry>>32
		return hi == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
