package fingerprint

import (
	"math"
	"os"
	"sync"
	"testing"

	"iotscope/internal/flowtuple"
	"iotscope/internal/netx"
	"iotscope/internal/rng"
	"iotscope/internal/wgen"
)

func rec(src netx.Addr, port uint16, proto, flags, ttl uint8, pkts uint32) flowtuple.Record {
	return flowtuple.Record{
		SrcIP: uint32(src), DstIP: 1, DstPort: port,
		Protocol: proto, TCPFlags: flags, TTL: ttl, IPLen: 44, Packets: pkts,
	}
}

func TestProfileAccumulation(t *testing.T) {
	p := NewProfile(1)
	p.Observe(rec(1, 23, flowtuple.ProtoTCP, flowtuple.FlagSYN, 64, 2), 0)
	p.Observe(rec(1, 23, flowtuple.ProtoTCP, flowtuple.FlagSYN, 64, 3), 0)
	p.Observe(rec(1, 80, flowtuple.ProtoTCP, flowtuple.FlagSYN, 64, 5), 2)

	if p.Packets != 10 || p.Records != 3 {
		t.Fatalf("packets=%d records=%d", p.Packets, p.Records)
	}
	if p.HoursSeen != 2 {
		t.Fatalf("hours seen %d", p.HoursSeen)
	}
	if p.distinctPorts != 2 {
		t.Fatalf("distinct ports %d", p.distinctPorts)
	}
	v := p.Vector()
	if v[0] != 1.0 { // all scan-tcp
		t.Fatalf("scan fraction %v", v[0])
	}
	if math.Abs(v[6]-0.5) > 1e-9 { // top port share 5/10
		t.Fatalf("top port share %v", v[6])
	}
	if math.Abs(v[8]-64.0/255) > 1e-9 {
		t.Fatalf("mean TTL %v", v[8])
	}
	if v[9] != 0 { // constant TTL
		t.Fatalf("TTL std %v", v[9])
	}
}

func TestProfilePortCap(t *testing.T) {
	p := NewProfile(1)
	for i := 0; i < maxTrackedPorts+50; i++ {
		p.Observe(rec(1, uint16(i+1), flowtuple.ProtoTCP, flowtuple.FlagSYN, 64, 1), 0)
	}
	if len(p.portPkts) != maxTrackedPorts {
		t.Fatalf("tracked ports %d", len(p.portPkts))
	}
	if p.distinctPorts != maxTrackedPorts+50 {
		t.Fatalf("distinct ports %d", p.distinctPorts)
	}
}

func TestProfileEmptyVector(t *testing.T) {
	p := NewProfile(1)
	v := p.Vector()
	for i, x := range v {
		if x != 0 {
			t.Fatalf("dim %d non-zero for empty profile", i)
		}
	}
}

func TestTopPorts(t *testing.T) {
	p := NewProfile(1)
	p.Observe(rec(1, 23, flowtuple.ProtoTCP, flowtuple.FlagSYN, 64, 10), 0)
	p.Observe(rec(1, 80, flowtuple.ProtoTCP, flowtuple.FlagSYN, 64, 5), 0)
	p.Observe(rec(1, 22, flowtuple.ProtoTCP, flowtuple.FlagSYN, 64, 1), 0)
	top := p.TopPorts(2)
	if len(top) != 2 || top[0] != 23 || top[1] != 80 {
		t.Fatalf("top ports %v", top)
	}
}

// Synthetic two-population sanity check: stable scanners vs chaotic noise.
func TestModelSeparatesSyntheticPopulations(t *testing.T) {
	r := rng.New(7)
	var iot []*Profile
	makeIoT := func(addr netx.Addr) *Profile {
		p := NewProfile(addr)
		ttl := uint8(60 + r.Intn(4))
		for h := 0; h < 30; h++ {
			for i := 0; i < 20; i++ {
				p.Observe(rec(addr, 23, flowtuple.ProtoTCP, flowtuple.FlagSYN, ttl, 1), h)
			}
		}
		return p
	}
	for i := 0; i < 40; i++ {
		iot = append(iot, makeIoT(netx.Addr(100+i)))
	}
	model, err := Train(iot, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}

	candidates := make(map[netx.Addr]*Profile)
	for i := 0; i < 20; i++ {
		candidates[netx.Addr(100+i)] = iot[i] // known IoT-like
	}
	for i := 0; i < 20; i++ {
		addr := netx.Addr(5000 + i)
		p := NewProfile(addr)
		// Chaotic: random class mix, random ports, random TTLs.
		for j := 0; j < 200; j++ {
			var flags uint8
			proto := flowtuple.ProtoTCP
			switch r.Intn(3) {
			case 0:
				flags = flowtuple.FlagSYN
			case 1:
				flags = flowtuple.FlagSYN | flowtuple.FlagACK
			default:
				proto = flowtuple.ProtoUDP
			}
			p.Observe(rec(addr, uint16(1+r.Intn(65000)), proto, flags,
				uint8(30+r.Intn(120)), 1), r.Intn(143))
		}
		candidates[addr] = p
	}
	ev := model.Evaluate(candidates, func(a netx.Addr) bool { return a < 1000 })
	if ev.Recall() < 0.9 {
		t.Errorf("recall %v on training-like population", ev.Recall())
	}
	if ev.Precision() < 0.8 {
		t.Errorf("precision %v: chaotic sources accepted: %+v", ev.Precision(), ev)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	ps := []*Profile{NewProfile(1), NewProfile(2)}
	if _, err := Train(ps, TrainConfig{K: 3}); err == nil {
		t.Fatal("too-small training set accepted")
	}
}

func TestClassifySorted(t *testing.T) {
	var train []*Profile
	for i := 0; i < 10; i++ {
		p := NewProfile(netx.Addr(i))
		p.Observe(rec(netx.Addr(i), 23, flowtuple.ProtoTCP, flowtuple.FlagSYN, 64, 10), 0)
		train = append(train, p)
	}
	m, err := Train(train, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cands := map[netx.Addr]*Profile{100: train[0], 101: train[1]}
	findings := m.Classify(cands)
	if len(findings) != 2 {
		t.Fatalf("findings %d", len(findings))
	}
	if findings[0].Score > findings[1].Score {
		t.Fatal("not sorted by score")
	}
}

func TestEvaluationMetrics(t *testing.T) {
	ev := Evaluation{TruePositives: 8, FalsePositives: 2, FalseNegatives: 2, TrueNegatives: 88}
	if math.Abs(ev.Precision()-0.8) > 1e-9 {
		t.Errorf("precision %v", ev.Precision())
	}
	if math.Abs(ev.Recall()-0.8) > 1e-9 {
		t.Errorf("recall %v", ev.Recall())
	}
	if math.Abs(ev.F1()-0.8) > 1e-9 {
		t.Errorf("f1 %v", ev.F1())
	}
	var zero Evaluation
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero evaluation not zero")
	}
}

// End-to-end: train on half the inferred devices, hunt in the other half +
// background; the hidden IoT devices must be recovered well above chance.
var (
	e2eOnce sync.Once
	e2eErr  error
	e2eGen  *wgen.Generator
	e2eProf map[netx.Addr]*Profile
)

func loadE2E(t *testing.T) (*wgen.Generator, map[netx.Addr]*Profile) {
	t.Helper()
	e2eOnce.Do(func() {
		dir, err := os.MkdirTemp("", "fp-e2e-*")
		if err != nil {
			e2eErr = err
			return
		}
		defer os.RemoveAll(dir)
		sc := wgen.Default(0.01, 606)
		sc.Hours = 72
		e2eGen, e2eErr = wgen.New(sc)
		if e2eErr != nil {
			return
		}
		if _, e2eErr = e2eGen.Run(dir); e2eErr != nil {
			return
		}
		ex := NewExtractor(20)
		if e2eErr = ex.ProcessDataset(dir); e2eErr != nil {
			return
		}
		e2eProf = ex.Profiles()
	})
	if e2eErr != nil {
		t.Fatal(e2eErr)
	}
	return e2eGen, e2eProf
}

func TestHuntHiddenIoTDevices(t *testing.T) {
	g, profiles := loadE2E(t)
	inv := g.Inventory()

	// Split the inferred devices: even IDs train, odd IDs are "hidden"
	// (pretend Shodan never indexed them).
	var train []*Profile
	hidden := make(map[netx.Addr]bool)
	for _, id := range g.Truth().Compromised {
		addr := inv.At(id).IP
		p, seen := profiles[addr]
		if !seen {
			continue
		}
		if id%2 == 0 {
			train = append(train, p)
		} else {
			hidden[addr] = true
		}
	}
	if len(train) < 10 {
		t.Fatalf("only %d training profiles", len(train))
	}
	model, err := Train(train, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Candidate pool: everything that is not a training device.
	trainSet := make(map[netx.Addr]bool, len(train))
	for _, p := range train {
		trainSet[p.Addr] = true
	}
	candidates := make(map[netx.Addr]*Profile)
	for addr, p := range profiles {
		if !trainSet[addr] {
			candidates[addr] = p
		}
	}
	nonIoT := 0
	for addr := range candidates {
		if !hidden[addr] {
			nonIoT++
		}
	}
	if nonIoT < 50 {
		t.Fatalf("only %d background candidates", nonIoT)
	}

	ev := model.Evaluate(candidates, func(a netx.Addr) bool { return hidden[a] })
	baseRate := float64(len(hidden)) / float64(len(candidates))
	t.Logf("hunt: %d candidates (%d hidden IoT), precision=%.2f recall=%.2f (base rate %.2f)",
		len(candidates), len(hidden), ev.Precision(), ev.Recall(), baseRate)
	if ev.Recall() < 0.45 {
		t.Errorf("recall %.2f: hidden IoT devices not recovered", ev.Recall())
	}
	if ev.Precision() < 2*baseRate {
		t.Errorf("precision %.2f not above 2x base rate %.2f", ev.Precision(), baseRate)
	}
}

func BenchmarkExtract(b *testing.B) {
	dir, err := os.MkdirTemp("", "fp-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sc := wgen.Default(0.005, 1)
	sc.Hours = 5
	g, err := wgen.New(sc)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := g.Run(dir); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := NewExtractor(1)
		if err := ex.ProcessDataset(dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScore(b *testing.B) {
	r := rng.New(1)
	var train []*Profile
	for i := 0; i < 500; i++ {
		p := NewProfile(netx.Addr(i))
		for j := 0; j < 50; j++ {
			p.Observe(rec(netx.Addr(i), uint16(23+r.Intn(5)),
				flowtuple.ProtoTCP, flowtuple.FlagSYN, 64, 1), j%24)
		}
		train = append(train, p)
	}
	m, err := Train(train, TrainConfig{})
	if err != nil {
		b.Fatal(err)
	}
	probe := train[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Score(probe)
	}
}
