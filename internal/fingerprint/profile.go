// Package fingerprint implements the forward-looking capability the paper
// sketches in its Discussion (Sec. VI): identifying IoT devices *not*
// indexed by the inventory through fuzzy behavioural matching against the
// darknet traffic of previously inferred devices.
//
// Every darknet source — inventoried or not — is distilled into a
// fixed-width behavioural profile (traffic-class mix, port concentration,
// TTL stability, activity shape). A one-class nearest-neighbour model is
// trained on the profiles of the devices the correlation step already
// inferred, and any unknown source whose profile sits within the learned
// similarity radius is flagged as IoT-like. Precision/recall can be
// validated against the generator's ground truth.
package fingerprint

import (
	"io"
	"math"
	"sort"

	"iotscope/internal/classify"
	"iotscope/internal/flowtuple"
	"iotscope/internal/netx"
)

// maxTrackedPorts bounds per-source port maps; beyond it only the counter
// advances, which preserves the concentration features.
const maxTrackedPorts = 256

// Profile accumulates one source's observable darknet behaviour.
type Profile struct {
	Addr    netx.Addr
	Packets uint64
	Records uint64
	Class   [classify.NumClasses]uint64

	HoursSeen int

	ttlSum   float64
	ttlSqSum float64
	lenSum   float64

	portPkts      map[uint16]uint64
	iotPortPkts   uint64
	distinctPorts int
	lastHour      int
	sawHour       bool
}

// NewProfile returns an empty profile for addr.
func NewProfile(addr netx.Addr) *Profile {
	return &Profile{Addr: addr, portPkts: make(map[uint16]uint64, 8), lastHour: -1}
}

// Observe folds one record seen at the given hour into the profile.
func (p *Profile) Observe(rec flowtuple.Record, hour int) {
	pkts := uint64(rec.Packets)
	p.Packets += pkts
	p.Records++
	p.Class[classify.Record(rec).Index()] += pkts
	p.ttlSum += float64(rec.TTL) * float64(pkts)
	p.ttlSqSum += float64(rec.TTL) * float64(rec.TTL) * float64(pkts)
	p.lenSum += float64(rec.IPLen) * float64(pkts)

	if !p.sawHour || hour != p.lastHour {
		p.HoursSeen++
		p.lastHour = hour
		p.sawHour = true
	}
	if iotPorts[rec.DstPort] {
		p.iotPortPkts += pkts
	}
	if _, known := p.portPkts[rec.DstPort]; known {
		p.portPkts[rec.DstPort] += pkts
	} else if len(p.portPkts) < maxTrackedPorts {
		p.portPkts[rec.DstPort] = pkts
		p.distinctPorts++
	} else {
		// Untracked port: counted distinct, packets folded into overflow.
		p.distinctPorts++
	}
}

// NumFeatures is the fixed dimensionality of Vector.
const NumFeatures = 15

// iotPorts are destination ports characteristic of IoT-targeting traffic,
// drawn from the paper's Tables IV and V — the "signatures from previously
// inferred devices" its Discussion proposes.
var iotPorts = map[uint16]bool{
	23: true, 2323: true, 23231: true, 80: true, 8080: true, 81: true,
	22: true, 7547: true, 5358: true, 1433: true, 88: true, 445: true,
	2222: true, 8000: true, 21677: true, 3389: true, 21: true, 3387: true,
	37547: true, 137: true, 53413: true, 32124: true, 28183: true,
	5353: true, 4605: true, 53: true, 3544: true, 1194: true,
}

// Vector renders the profile as a fixed-width feature vector:
//
//	0-4  traffic-class packet fractions (scan-tcp, scan-icmp, backscatter,
//	     udp, other)
//	5    log1p(total packets)
//	6    top destination-port packet share (campaign focus)
//	7    log1p(distinct destination ports)
//	8    mean TTL
//	9    TTL standard deviation (device stacks emit stable TTLs)
//	10   mean IP length
//	11   log1p(hours seen)
//	12   log1p(packets per seen hour)
//	13   traffic-class entropy (devices act in one or two roles; generic
//	     noise sources mix everything)
//	14   share of packets on known IoT-campaign ports (Tables IV/V)
func (p *Profile) Vector() [NumFeatures]float64 {
	var v [NumFeatures]float64
	if p.Packets == 0 {
		return v
	}
	total := float64(p.Packets)
	for i := 0; i < classify.NumClasses; i++ {
		v[i] = float64(p.Class[i]) / total
	}
	v[5] = math.Log1p(total)

	var top uint64
	for _, c := range p.portPkts {
		if c > top {
			top = c
		}
	}
	v[6] = float64(top) / total
	v[7] = math.Log1p(float64(p.distinctPorts))
	meanTTL := p.ttlSum / total
	v[8] = meanTTL / 255
	varTTL := p.ttlSqSum/total - meanTTL*meanTTL
	if varTTL < 0 {
		varTTL = 0
	}
	v[9] = math.Sqrt(varTTL) / 255
	v[10] = p.lenSum / total / 1500
	v[11] = math.Log1p(float64(p.HoursSeen))
	v[12] = math.Log1p(total / float64(p.HoursSeen))
	entropy := 0.0
	for i := 0; i < classify.NumClasses; i++ {
		if f := v[i]; f > 0 {
			entropy -= f * math.Log2(f)
		}
	}
	v[13] = entropy
	v[14] = float64(p.iotPortPkts) / total
	return v
}

// TopPorts returns the source's heaviest destination ports (diagnostics).
func (p *Profile) TopPorts(n int) []uint16 {
	type pc struct {
		port uint16
		pkts uint64
	}
	list := make([]pc, 0, len(p.portPkts))
	for port, pkts := range p.portPkts {
		list = append(list, pc{port, pkts})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].pkts != list[j].pkts {
			return list[i].pkts > list[j].pkts
		}
		return list[i].port < list[j].port
	})
	if n > len(list) {
		n = len(list)
	}
	out := make([]uint16, n)
	for i := 0; i < n; i++ {
		out[i] = list[i].port
	}
	return out
}

// Extractor streams a dataset into per-source profiles.
type Extractor struct {
	profiles map[netx.Addr]*Profile
	// MinPackets drops sources below a floor at Finalize (single-packet
	// sources carry no behavioural signal).
	MinPackets uint64
}

// NewExtractor returns an extractor with the given per-source packet floor.
func NewExtractor(minPackets uint64) *Extractor {
	return &Extractor{
		profiles:   make(map[netx.Addr]*Profile, 1<<12),
		MinPackets: minPackets,
	}
}

// ProcessHour folds one hourly file into the profiles.
func (e *Extractor) ProcessHour(dir string, hour int) error {
	rd, err := flowtuple.Open(flowtuple.HourPath(dir, hour))
	if err != nil {
		return err
	}
	defer rd.Close()
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		addr := netx.Addr(rec.SrcIP)
		p := e.profiles[addr]
		if p == nil {
			p = NewProfile(addr)
			e.profiles[addr] = p
		}
		p.Observe(rec, hour)
	}
}

// ProcessDataset folds every hourly file in dir.
func (e *Extractor) ProcessDataset(dir string) error {
	hours, err := flowtuple.DatasetHours(dir)
	if err != nil {
		return err
	}
	for _, h := range hours {
		if err := e.ProcessHour(dir, h); err != nil {
			return err
		}
	}
	return nil
}

// Profiles returns the accumulated profiles at or above the packet floor.
func (e *Extractor) Profiles() map[netx.Addr]*Profile {
	out := make(map[netx.Addr]*Profile, len(e.profiles))
	for addr, p := range e.profiles {
		if p.Packets >= e.MinPackets {
			out[addr] = p
		}
	}
	return out
}
