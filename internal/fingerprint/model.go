package fingerprint

import (
	"fmt"
	"math"
	"sort"

	"iotscope/internal/netx"
)

// Model is a one-class k-nearest-neighbour matcher over standardized
// behavioural vectors of known-IoT sources. A candidate is IoT-like when
// its mean distance to its k nearest training profiles falls inside the
// radius learned from the training set itself (leave-one-out quantile).
type Model struct {
	mean      [NumFeatures]float64
	std       [NumFeatures]float64
	train     [][NumFeatures]float64
	k         int
	threshold float64
}

// TrainConfig tunes model fitting.
type TrainConfig struct {
	// K is the neighbour count (default 3).
	K int
	// Quantile of leave-one-out training scores used as the acceptance
	// radius (default 0.80: accept what resembles the bulk of known IoT; the
	// tail of eccentric devices is sacrificed for precision).
	Quantile float64
}

// Train fits a model on the profiles of inferred IoT devices.
func Train(profiles []*Profile, cfg TrainConfig) (*Model, error) {
	if cfg.K <= 0 {
		cfg.K = 3
	}
	if cfg.Quantile <= 0 || cfg.Quantile > 1 {
		cfg.Quantile = 0.80
	}
	if len(profiles) < cfg.K+1 {
		return nil, fmt.Errorf("fingerprint: need at least %d training profiles, got %d",
			cfg.K+1, len(profiles))
	}
	m := &Model{k: cfg.K}
	m.train = make([][NumFeatures]float64, len(profiles))
	for i, p := range profiles {
		m.train[i] = p.Vector()
	}
	// Standardization statistics.
	n := float64(len(m.train))
	for d := 0; d < NumFeatures; d++ {
		var sum, sq float64
		for _, v := range m.train {
			sum += v[d]
			sq += v[d] * v[d]
		}
		mu := sum / n
		variance := sq/n - mu*mu
		if variance < 1e-12 {
			variance = 1e-12
		}
		m.mean[d] = mu
		m.std[d] = math.Sqrt(variance)
	}
	for i := range m.train {
		m.train[i] = m.standardize(m.train[i])
	}
	// Leave-one-out calibration: each training vector scored against the
	// rest; the configured quantile becomes the acceptance radius.
	scores := make([]float64, len(m.train))
	for i := range m.train {
		scores[i] = m.knnScore(m.train[i], i)
	}
	sort.Float64s(scores)
	idx := int(cfg.Quantile * float64(len(scores)-1))
	m.threshold = scores[idx]
	return m, nil
}

func (m *Model) standardize(v [NumFeatures]float64) [NumFeatures]float64 {
	var out [NumFeatures]float64
	for d := 0; d < NumFeatures; d++ {
		out[d] = (v[d] - m.mean[d]) / m.std[d]
	}
	return out
}

// knnScore is the mean Euclidean distance to the k nearest training
// vectors, skipping index skip (-1 for none).
func (m *Model) knnScore(v [NumFeatures]float64, skip int) float64 {
	// Bounded insertion keeps the k smallest distances.
	best := make([]float64, 0, m.k)
	worst := math.Inf(1)
	for i, t := range m.train {
		if i == skip {
			continue
		}
		var d2 float64
		for d := 0; d < NumFeatures; d++ {
			diff := v[d] - t[d]
			d2 += diff * diff
			if d2 >= worst && len(best) == m.k {
				break
			}
		}
		if len(best) < m.k {
			best = append(best, d2)
			if len(best) == m.k {
				sort.Float64s(best)
				worst = best[m.k-1]
			}
			continue
		}
		if d2 < worst {
			// Replace the current worst and re-establish order.
			best[m.k-1] = d2
			for j := m.k - 1; j > 0 && best[j] < best[j-1]; j-- {
				best[j], best[j-1] = best[j-1], best[j]
			}
			worst = best[m.k-1]
		}
	}
	var sum float64
	for _, d2 := range best {
		sum += math.Sqrt(d2)
	}
	return sum / float64(len(best))
}

// Score returns the candidate's distance score (lower = more IoT-like).
func (m *Model) Score(p *Profile) float64 {
	return m.knnScore(m.standardize(p.Vector()), -1)
}

// Threshold returns the calibrated acceptance radius.
func (m *Model) Threshold() float64 { return m.threshold }

// IsIoTLike reports whether the profile falls inside the learned radius.
func (m *Model) IsIoTLike(p *Profile) bool {
	return m.Score(p) <= m.threshold
}

// Finding is one candidate classified by the model.
type Finding struct {
	Addr    netx.Addr
	Score   float64
	IoTLike bool
}

// Classify scores every candidate profile, returning findings sorted by
// ascending score (most IoT-like first).
func (m *Model) Classify(candidates map[netx.Addr]*Profile) []Finding {
	out := make([]Finding, 0, len(candidates))
	for addr, p := range candidates {
		s := m.Score(p)
		out = append(out, Finding{Addr: addr, Score: s, IoTLike: s <= m.threshold})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Evaluation summarizes classification against ground truth.
type Evaluation struct {
	TruePositives  int
	FalsePositives int
	TrueNegatives  int
	FalseNegatives int
}

// Precision returns TP / (TP + FP).
func (e Evaluation) Precision() float64 {
	if e.TruePositives+e.FalsePositives == 0 {
		return 0
	}
	return float64(e.TruePositives) / float64(e.TruePositives+e.FalsePositives)
}

// Recall returns TP / (TP + FN).
func (e Evaluation) Recall() float64 {
	if e.TruePositives+e.FalseNegatives == 0 {
		return 0
	}
	return float64(e.TruePositives) / float64(e.TruePositives+e.FalseNegatives)
}

// F1 returns the harmonic mean of precision and recall.
func (e Evaluation) F1() float64 {
	p, r := e.Precision(), e.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Evaluate classifies candidates and scores the outcome against isIoT.
func (m *Model) Evaluate(candidates map[netx.Addr]*Profile, isIoT func(netx.Addr) bool) Evaluation {
	var ev Evaluation
	for addr, p := range candidates {
		predicted := m.IsIoTLike(p)
		actual := isIoT(addr)
		switch {
		case predicted && actual:
			ev.TruePositives++
		case predicted && !actual:
			ev.FalsePositives++
		case !predicted && actual:
			ev.FalseNegatives++
		default:
			ev.TrueNegatives++
		}
	}
	return ev
}
