package outqueue

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"iotscope/internal/faultfs"
)

// seedQueueDir builds a queue with a few segments (enqueue, suppress, and
// state records) and returns its directory plus the path of the last
// segment — the one each corruption case damages.
func seedQueueDir(t *testing.T) (dir, lastSeg string) {
	t.Helper()
	dir = t.TempDir()
	q, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, q, note("as64512", 0), note("as64513", 1))
	mustEnqueue(t, q, note("as64512", 3)) // suppressed
	if err := q.MarkSent(1, 1); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, segName(3))
}

// The corruption table: every faultfs damage shape maps onto the
// retryable/permanent taxonomy. Truncation anywhere is retryable (a
// non-atomic transport may still be writing); structural damage — mangled
// magic, bad version, reserved bits, flipped payload bytes, trailing junk,
// a missing segment in the run — is permanent.
func TestCorruptionTable(t *testing.T) {
	cases := []struct {
		name      string
		damage    func(t *testing.T, dir, seg string)
		retryable bool
	}{
		{"truncate-footer", func(t *testing.T, _, seg string) {
			mustFault(t, faultfs.TruncateTail(seg, 4))
		}, true},
		{"truncate-into-record", func(t *testing.T, _, seg string) {
			mustFault(t, faultfs.TruncateTail(seg, 20))
		}, true},
		{"truncate-into-header", func(t *testing.T, _, seg string) {
			info, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			mustFault(t, faultfs.TruncateTail(seg, info.Size()-6))
		}, true},
		// An empty segment mid-run is a hole under committed successors —
		// permanent, unlike the tolerated empty *trailing* segment (a lost
		// commit; see emptyseg_test.go).
		{"truncate-to-empty-mid-run", func(t *testing.T, dir, _ string) {
			mustFault(t, os.Truncate(filepath.Join(dir, segName(2)), 0))
		}, false},
		{"bitflip-payload", func(t *testing.T, _, seg string) {
			mustFault(t, faultfs.BitFlip(seg, int64(headerLen+12), 0x10))
		}, false},
		{"bitflip-footer-digest", func(t *testing.T, _, seg string) {
			mustFault(t, faultfs.BitFlip(seg, -1, 0x01))
		}, false},
		{"mangled-magic", func(t *testing.T, _, seg string) {
			mustFault(t, faultfs.Overwrite(seg, 0, []byte("JUNK")))
		}, false},
		{"bad-version", func(t *testing.T, _, seg string) {
			mustFault(t, faultfs.Overwrite(seg, 4, []byte{99}))
		}, false},
		{"zero-version", func(t *testing.T, _, seg string) {
			mustFault(t, faultfs.Overwrite(seg, 4, []byte{0}))
		}, false},
		{"reserved-bits-set", func(t *testing.T, _, seg string) {
			mustFault(t, faultfs.Overwrite(seg, 5, []byte{1}))
		}, false},
		{"seq-mismatch", func(t *testing.T, _, seg string) {
			mustFault(t, faultfs.Overwrite(seg, 8, []byte{0x7f}))
		}, false},
		{"trailing-junk", func(t *testing.T, _, seg string) {
			mustFault(t, faultfs.AppendTail(seg, []byte{0xde, 0xad}))
		}, false},
		{"segment-gap", func(t *testing.T, dir, _ string) {
			mustFault(t, os.Remove(filepath.Join(dir, segName(2))))
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, seg := seedQueueDir(t)
			tc.damage(t, dir, seg)
			_, err := Open(dir)
			if err == nil {
				t.Fatal("damaged queue opened cleanly")
			}
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("error outside taxonomy: %v", err)
			}
			if got := IsRetryable(err); got != tc.retryable {
				t.Fatalf("IsRetryable = %v, want %v (err: %v)", got, tc.retryable, err)
			}
			if truncated := errors.Is(err, ErrTruncated); truncated != tc.retryable {
				t.Fatalf("ErrTruncated = %v, want %v (err: %v)", truncated, tc.retryable, err)
			}
		})
	}
}

func mustFault(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// Records that pass CRC but violate replay invariants are structural
// damage: out-of-order IDs, state transitions from terminal states,
// suppress records with no prior report.
func TestReplayInvariantViolations(t *testing.T) {
	build := func(t *testing.T, recs ...record) error {
		dir := t.TempDir()
		data := encodeSegment(1, recs)
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir)
		return err
	}
	item := func(id uint64, key string) Item {
		return Item{ID: id, Notification: Notification{DedupKey: key, EventHour: 1}}
	}

	cases := []struct {
		name string
		recs []record
	}{
		{"id-out-of-order", []record{{kind: recEnqueue, item: item(2, "k")}}},
		{"duplicate-id", []record{
			{kind: recEnqueue, item: item(1, "k")},
			{kind: recEnqueue, item: item(1, "k2")},
		}},
		{"empty-dedup-key", []record{{kind: recEnqueue, item: item(1, "")}}},
		{"suppress-without-report", []record{{kind: recSuppress, item: item(1, "k")}}},
		{"state-for-unknown-item", []record{{kind: recState, item: Item{ID: 5, State: StateSent}}}},
		{"state-to-pending", []record{
			{kind: recEnqueue, item: item(1, "k")},
			{kind: recState, item: Item{ID: 1, State: StatePending}},
		}},
		{"double-transition", []record{
			{kind: recEnqueue, item: item(1, "k")},
			{kind: recState, item: Item{ID: 1, State: StateSent}},
			{kind: recState, item: Item{ID: 1, State: StateFailed}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := build(t, tc.recs...)
			if !errors.Is(err, ErrBadFormat) || errors.Is(err, ErrTruncated) {
				t.Fatalf("want permanent ErrBadFormat, got %v", err)
			}
		})
	}
}
