package outqueue

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzOutQueue throws arbitrary bytes at the segment decoder via Open: it
// must never panic, every failure must sit inside the taxonomy, and any
// accepted segment must re-encode to the same bytes and replay to the same
// state.
func FuzzOutQueue(f *testing.F) {
	// Seed the corpus with real segments of each record mix, plus damaged
	// variants so the fuzzer starts near the interesting boundaries.
	seedDir := f.TempDir()
	q, err := Open(seedDir)
	if err != nil {
		f.Fatal(err)
	}
	if _, _, err := q.Enqueue(note("as64512", 0), note("as64513", 2)); err != nil {
		f.Fatal(err)
	}
	if _, _, err := q.Enqueue(note("as64512", 1)); err != nil { // suppressed
		f.Fatal(err)
	}
	if err := q.MarkSent(1, 2); err != nil {
		f.Fatal(err)
	}
	if err := q.MarkFailed(2, 3, "bounced"); err != nil {
		f.Fatal(err)
	}
	for seq := uint32(1); seq <= 4; seq++ {
		data, err := os.ReadFile(filepath.Join(seedDir, segName(seq)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		if len(data) > 10 {
			f.Add(data[:len(data)-7]) // truncated
			mangled := append([]byte(nil), data...)
			mangled[len(mangled)/2] ^= 0x40 // flipped
			f.Add(mangled)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("IOQS"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		q, err := Open(dir)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("error outside taxonomy: %v", err)
			}
			if errors.Is(err, ErrTruncated) != IsRetryable(err) {
				t.Fatalf("taxonomy split inconsistent: %v", err)
			}
			return
		}
		if len(data) == 0 {
			// A zero-length trailing (here: only) segment is a tolerated
			// lost commit: the queue opens empty and reuses the sequence.
			if len(q.Items()) != 0 || q.nextSeq != 1 {
				t.Fatalf("empty segment replayed state: %d items, nextSeq %d",
					len(q.Items()), q.nextSeq)
			}
		} else {
			// Accepted input: decoding again must agree, and the canonical
			// re-encoding of its records must reproduce the file exactly —
			// the codec admits no non-canonical encodings.
			recs, err := decodeSegment(data, 1)
			if err != nil {
				t.Fatalf("Open accepted what decodeSegment rejects: %v", err)
			}
			if reenc := encodeSegment(1, recs); string(reenc) != string(data) {
				t.Fatalf("accepted segment is not canonical:\n in: %x\nout: %x", data, reenc)
			}
		}
		// And the replayed state must itself survive a reopen.
		q2, err := Open(dir)
		if err != nil {
			t.Fatalf("second open failed: %v", err)
		}
		if string(q.Fingerprint()) != string(q2.Fingerprint()) {
			t.Fatal("replay not deterministic")
		}
	})
}
