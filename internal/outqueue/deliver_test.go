package outqueue

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"iotscope/internal/pipeline"
	"iotscope/internal/resilience"
)

func retryPolicy(n int) pipeline.RetryPolicy {
	return pipeline.RetryPolicy{MaxRetries: n, BaseBackoff: time.Microsecond}
}

func TestDrainDeliversPendingInOrder(t *testing.T) {
	q, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, q, note("a", 0), note("b", 0), note("c", 0))
	sink := &FlakySink{}
	st, err := q.Drain(context.Background(), sink, DrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 3 || st.Failed != 0 || st.Remaining != 0 || st.Attempts != 3 {
		t.Fatalf("stats %+v", st)
	}
	for i, id := range sink.Delivered {
		if id != uint64(i+1) {
			t.Fatalf("delivery order %v", sink.Delivered)
		}
	}
	if qs := q.Stats(); qs.Sent != 3 || qs.Pending != 0 {
		t.Fatalf("queue stats %+v", qs)
	}
}

func TestDrainRetriesTransientFailures(t *testing.T) {
	q, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, q, note("a", 0), note("b", 0))
	sink := &FlakySink{FailFirst: 2}
	st, err := q.Drain(context.Background(), sink, DrainOptions{Policy: retryPolicy(3)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 2 || st.Attempts != 6 {
		t.Fatalf("stats %+v", st)
	}
	items := q.Items()
	if items[0].Attempts != 3 || items[0].State != StateSent {
		t.Fatalf("item attempts not recorded: %+v", items[0])
	}
}

func TestDrainExhaustsRetryBudget(t *testing.T) {
	q, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, q, note("a", 0))
	sink := &FlakySink{FailFirst: 10}
	st, err := q.Drain(context.Background(), sink, DrainOptions{Policy: retryPolicy(2)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed != 1 || st.Delivered != 0 || st.Attempts != 3 {
		t.Fatalf("stats %+v", st)
	}
	it := q.Items()[0]
	if it.State != StateFailed || !strings.Contains(it.Detail, "transient failure") {
		t.Fatalf("failed item %+v", it)
	}
}

func TestDrainPermanentErrorSkipsRetries(t *testing.T) {
	q, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, q, note("bad-operator", 0), note("good", 0))
	sink := &FlakySink{PermanentKey: "bad"}
	st, err := q.Drain(context.Background(), sink, DrainOptions{Policy: retryPolicy(5)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed != 1 || st.Delivered != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The permanent failure burned exactly one attempt.
	if st.Attempts != 2 {
		t.Fatalf("permanent error was retried: %d attempts", st.Attempts)
	}
	if it := q.Items()[0]; it.State != StateFailed {
		t.Fatalf("item %+v", it)
	}
}

func TestPermanentClassification(t *testing.T) {
	base := errors.New("boom")
	if IsPermanent(base) || !IsPermanent(Permanent(base)) {
		t.Fatal("Permanent/IsPermanent broken")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	wrapped := fmt.Errorf("delivering: %w", Permanent(base))
	if !IsPermanent(wrapped) {
		t.Fatal("IsPermanent must see through wrapping")
	}
	if RetryableDelivery(wrapped) || !RetryableDelivery(base) || RetryableDelivery(nil) {
		t.Fatal("RetryableDelivery misclassifies")
	}
	if !errors.Is(Permanent(base), base) {
		t.Fatal("Permanent must preserve the error chain")
	}
}

// Cancellation stops the drain between attempts; delivered items stay sent,
// the in-flight item stays pending.
func TestDrainGracefulCancel(t *testing.T) {
	q, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, q, note("a", 0), note("b", 0), note("c", 0))
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int32
	sink := sinkFunc(func(ctx context.Context, item Item) error {
		if n.Add(1) == 2 {
			cancel() // SIGTERM arrives while item 2 is in flight
			return ctx.Err()
		}
		return nil
	})
	st, err := q.Drain(ctx, sink, DrainOptions{Policy: retryPolicy(3)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("drain error %v", err)
	}
	if st.Delivered != 1 {
		t.Fatalf("stats %+v", st)
	}
	qs := q.Stats()
	if qs.Sent != 1 || qs.Pending != 2 {
		t.Fatalf("queue stats after cancel %+v", qs)
	}
	// A fresh drain finishes the job.
	st, err = q.Drain(context.Background(), &FlakySink{}, DrainOptions{})
	if err != nil || st.Delivered != 2 {
		t.Fatalf("resumed drain: %+v %v", st, err)
	}
}

type sinkFunc func(ctx context.Context, item Item) error

func (f sinkFunc) Deliver(ctx context.Context, item Item) error { return f(ctx, item) }

func TestDrainRateLimited(t *testing.T) {
	q, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, q, note("a", 0), note("b", 0), note("c", 0), note("d", 0))
	// Burst of 1 and 50 deliveries/s: 4 items need ≥3 refill waits of 20ms.
	lim, err := resilience.NewRateLimiter(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	st, err := q.Drain(context.Background(), &FlakySink{}, DrainOptions{Limiter: lim})
	if err != nil || st.Delivered != 4 {
		t.Fatalf("%+v %v", st, err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("drain finished in %v: rate limiter not applied", elapsed)
	}
}

func TestRateLimiterWaitCancels(t *testing.T) {
	lim, err := resilience.NewRateLimiter(0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := lim.Wait(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := lim.Wait(ctx, "k"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait under exhausted bucket returned %v", err)
	}
}

// FileSink absorbs redeliveries: the crash window between sink write and
// MarkSent turns into exactly-once output.
func TestFileSinkIdempotent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "delivered.txt")
	q, err := Open(filepath.Join(dir, "q"))
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, q, note("a", 0), note("b", 0))

	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	items := q.Pending()
	// Deliver item 1 but "crash" before MarkSent.
	if err := sink.Deliver(context.Background(), items[0]); err != nil {
		t.Fatal(err)
	}
	sink.Close()

	// Restart: new sink over the same file, full drain redelivers item 1.
	sink2, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sink2.Close()
	if sink2.Delivered() != 1 {
		t.Fatalf("reopened sink found %d delivered", sink2.Delivered())
	}
	st, err := q.Drain(context.Background(), sink2, DrainOptions{})
	if err != nil || st.Delivered != 2 {
		t.Fatalf("%+v %v", st, err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint64{1, 2} {
		marker := fmt.Sprintf("=== end report id=%d\n", id)
		if got := bytes.Count(data, []byte(marker)); got != 1 {
			t.Fatalf("item %d delivered %d times", id, got)
		}
	}
}

func TestWriterSinkRendersReport(t *testing.T) {
	var buf bytes.Buffer
	sink := &WriterSink{W: &buf}
	n := note("as64512", 7)
	item := Item{ID: 9, Notification: n, State: StatePending}
	if err := sink.Deliver(context.Background(), item); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"id=9", "key=as64512", n.Contact, n.Subject, n.Body, "=== end report id=9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
}
