package outqueue

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"iotscope/internal/pipeline"
	"iotscope/internal/resilience"
)

// Sink is the pluggable delivery backend — the stand-in for an SMTP
// submission or an abuse-desk API. Deliver must honor ctx; an error wrapped
// by Permanent is never retried, anything else is classified by the drain's
// retry policy.
type Sink interface {
	Deliver(ctx context.Context, item Item) error
}

// permanentErr marks a delivery failure that retrying cannot fix (a
// rejected recipient, a malformed report).
type permanentErr struct{ err error }

func (e permanentErr) Error() string { return e.err.Error() }
func (e permanentErr) Unwrap() error { return e.err }

// Permanent wraps err so IsPermanent(err) holds: the drain fails the item
// immediately instead of burning its retry budget.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentErr{err}
}

// IsPermanent reports whether a sink error was marked Permanent.
func IsPermanent(err error) bool {
	var p permanentErr
	return errors.As(err, &p)
}

// RetryableDelivery is the default retryable-classifier for drain policies:
// everything except Permanent-marked errors is worth another attempt.
func RetryableDelivery(err error) bool { return err != nil && !IsPermanent(err) }

// WriterSink delivers by rendering each notification to an io.Writer —
// the stdout sink of iotnotify. Not idempotent; use FileSink for durable
// delivery records.
type WriterSink struct {
	mu sync.Mutex
	W  io.Writer
}

// Deliver renders the item to the writer.
func (s *WriterSink) Deliver(ctx context.Context, item Item) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := io.WriteString(s.W, renderEntry(item))
	return err
}

// renderEntry frames one delivered notification. The header line carries
// the item identity, so a delivery log can be audited for duplicates and a
// FileSink can recognize redeliveries.
func renderEntry(item Item) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== report id=%d key=%s contact=%s tier=%s eventHour=%d\n",
		item.ID, item.DedupKey, item.Contact, item.Tier, item.EventHour)
	fmt.Fprintf(&b, "Subject: %s\n\n", item.Subject)
	b.WriteString(item.Body)
	if !strings.HasSuffix(item.Body, "\n") {
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "=== end report id=%d\n", item.ID)
	return b.String()
}

// FileSink appends delivered notifications to a file, one fsync'd write per
// delivery. It is idempotent under redelivery: on open it scans the file
// for already-delivered item IDs and silently acknowledges repeats, so the
// queue's at-least-once drain (a crash between sink write and state commit
// redelivers one item) still yields an exactly-once delivery log.
type FileSink struct {
	mu        sync.Mutex
	f         *os.File
	delivered map[uint64]bool
}

// NewFileSink opens (or creates) the delivery log at path.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	s := &FileSink{f: f, delivered: make(map[uint64]bool)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		var id uint64
		if _, err := fmt.Sscanf(sc.Text(), "=== end report id=%d", &id); err == nil {
			s.delivered[id] = true
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Deliver appends the item unless its ID is already on file.
func (s *FileSink) Deliver(ctx context.Context, item Item) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.delivered[item.ID] {
		return nil
	}
	if _, err := s.f.WriteString(renderEntry(item)); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.delivered[item.ID] = true
	return nil
}

// Delivered reports how many distinct items the log holds.
func (s *FileSink) Delivered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.delivered)
}

// Close closes the underlying file.
func (s *FileSink) Close() error { return s.f.Close() }

// FlakySink is the chaos sink for tests: each item fails its first
// FailFirst attempts with a retryable error, and items whose dedup key
// contains PermanentKey fail permanently. Delivered records successes in
// order.
type FlakySink struct {
	FailFirst    int
	PermanentKey string

	mu        sync.Mutex
	attempts  map[uint64]int
	Delivered []uint64
}

// Deliver implements the flaky behavior.
func (s *FlakySink) Deliver(ctx context.Context, item Item) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attempts == nil {
		s.attempts = make(map[uint64]int)
	}
	if s.PermanentKey != "" && strings.Contains(item.DedupKey, s.PermanentKey) {
		return Permanent(fmt.Errorf("flaky sink: recipient %s rejected", item.DedupKey))
	}
	s.attempts[item.ID]++
	if s.attempts[item.ID] <= s.FailFirst {
		return fmt.Errorf("flaky sink: transient failure %d for item %d", s.attempts[item.ID], item.ID)
	}
	s.Delivered = append(s.Delivered, item.ID)
	return nil
}

// DrainOptions tunes a drain pass.
type DrainOptions struct {
	// Policy bounds per-item retries; a zero policy never retries. Leave
	// Retryable nil to use RetryableDelivery.
	Policy pipeline.RetryPolicy
	// Limiter paces deliveries when set (one shared token bucket).
	Limiter *resilience.RateLimiter
}

// rateKey is the single token-bucket key a drain paces itself under.
const rateKey = "outqueue-drain"

// DrainStats summarizes one drain pass.
type DrainStats struct {
	Delivered int `json:"delivered"`
	Failed    int `json:"failed"`
	Attempts  int `json:"attempts"`
	Remaining int `json:"remaining"`
}

// Drain delivers every pending item in ID order: rate-limited by the
// options' token bucket, retried per the policy with context-aware backoff,
// and with each outcome durably committed before the next item starts — a
// crash loses at most the in-flight item, which a restarted drain picks up
// again. Cancellation (the SIGTERM graceful-drain path) stops cleanly
// between attempts and returns ctx.Err(); everything already delivered
// stays marked sent.
func (q *Queue) Drain(ctx context.Context, sink Sink, opts DrainOptions) (DrainStats, error) {
	if opts.Policy.Retryable == nil {
		opts.Policy.Retryable = RetryableDelivery
	}
	var st DrainStats
	pending := q.Pending()
	st.Remaining = len(pending)
	for _, it := range pending {
		if opts.Limiter != nil {
			if err := opts.Limiter.Wait(ctx, rateKey); err != nil {
				return st, err
			}
		}
		attempts := 0
		for {
			if err := ctx.Err(); err != nil {
				return st, err
			}
			attempts++
			st.Attempts++
			err := sink.Deliver(ctx, it)
			if err == nil {
				if err := q.MarkSent(it.ID, attempts); err != nil {
					return st, err
				}
				st.Delivered++
				st.Remaining--
				break
			}
			if ctx.Err() != nil {
				// Cancelled mid-attempt: leave the item pending for the
				// next drain rather than misclassifying the abort.
				return st, ctx.Err()
			}
			if opts.Policy.ShouldRetry(err, attempts-1) {
				if serr := pipeline.Sleep(ctx, opts.Policy.JitteredDelay(attempts)); serr != nil {
					return st, serr
				}
				continue
			}
			if err := q.MarkFailed(it.ID, attempts, err.Error()); err != nil {
				return st, err
			}
			st.Failed++
			st.Remaining--
			break
		}
	}
	return st, nil
}
