package outqueue

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func note(key string, hour int) Notification {
	return Notification{
		DedupKey:  key,
		Contact:   "abuse@" + key + ".example.net",
		Tier:      "registry",
		Subject:   "Compromised IoT devices in " + key,
		Body:      "Dear abuse team of " + key + ",\n\nplease investigate.\n",
		EventHour: hour,
		Devices:   3,
		Packets:   1234,
	}
}

func mustEnqueue(t *testing.T, q *Queue, ns ...Notification) []Disposition {
	t.Helper()
	ds, _, err := q.Enqueue(ns...)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestEnqueueRoundtrip(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds := mustEnqueue(t, q, note("as64512", 0), note("as64513", 5))
	if ds[0] != Enqueued || ds[1] != Enqueued {
		t.Fatalf("dispositions %v", ds)
	}
	if err := q.MarkSent(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := q.MarkFailed(2, 4, "mailbox rejected"); err != nil {
		t.Fatal(err)
	}

	// Reopen and compare full state byte for byte.
	q2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Fingerprint(), q2.Fingerprint()) {
		t.Fatal("reopened queue state diverges from live state")
	}
	items := q2.Items()
	if len(items) != 2 {
		t.Fatalf("%d items after reopen", len(items))
	}
	if items[0].State != StateSent || items[0].Attempts != 2 {
		t.Fatalf("item 1: %+v", items[0])
	}
	if items[1].State != StateFailed || items[1].Detail != "mailbox rejected" {
		t.Fatalf("item 2: %+v", items[1])
	}
	if items[0].Body != note("as64512", 0).Body {
		t.Fatalf("body mangled: %q", items[0].Body)
	}
	st := q2.Stats()
	if st.Sent != 1 || st.Failed != 1 || st.Pending != 0 || st.Segments != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEnqueueValidation(t *testing.T) {
	q, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Enqueue(Notification{EventHour: 1}); err == nil {
		t.Fatal("empty dedup key accepted")
	}
	if _, _, err := q.Enqueue(Notification{DedupKey: "k", EventHour: -1}); err == nil {
		t.Fatal("negative event hour accepted")
	}
	// Failed validation must leave no state behind.
	if st := q.Stats(); st.Items != 0 || st.Segments != 0 {
		t.Fatalf("rejected enqueue left state: %+v", st)
	}
	if err := q.MarkSent(1, 1); err == nil {
		t.Fatal("MarkSent on empty queue succeeded")
	}
}

// The escalating suppression window: the first accepted report suppresses
// repeats for 24 event-hours, each further accepted report doubles the
// window.
func TestSuppressionWindowDoubling(t *testing.T) {
	q, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "as64512"

	// Hour 0: first report accepted; window becomes 24 h.
	if ds := mustEnqueue(t, q, note(key, 0)); ds[0] != Enqueued {
		t.Fatal("first report suppressed")
	}
	// Hour 23: inside the window → suppressed.
	if ds := mustEnqueue(t, q, note(key, 23)); ds[0] != Suppressed {
		t.Fatal("repeat inside 24h window not suppressed")
	}
	// Hour 24: window expired → accepted, window doubles to 48 h from now.
	if ds := mustEnqueue(t, q, note(key, 24)); ds[0] != Enqueued {
		t.Fatal("report after window close suppressed")
	}
	ks, ok := q.Key(key)
	if !ok || ks.WindowHours != 48 || ks.LastHour != 24 {
		t.Fatalf("key state %+v", ks)
	}
	// Hour 71: inside [24, 24+48) → suppressed.
	if ds := mustEnqueue(t, q, note(key, 71)); ds[0] != Suppressed {
		t.Fatal("repeat inside doubled window not suppressed")
	}
	// Hour 72: accepted again; window doubles to 96 h.
	if ds := mustEnqueue(t, q, note(key, 72)); ds[0] != Enqueued {
		t.Fatal("report at doubled-window close suppressed")
	}
	ks, _ = q.Key(key)
	if ks.WindowHours != 96 || ks.Reports != 3 || ks.Suppressed != 2 {
		t.Fatalf("key state %+v", ks)
	}

	// Other keys are independent.
	if ds := mustEnqueue(t, q, note("as64513", 72)); ds[0] != Enqueued {
		t.Fatal("unrelated key suppressed")
	}

	// Suppressed repeats are visible as queue items but never pending.
	st := q.Stats()
	if st.Suppressed != 2 || st.Pending != 4 {
		t.Fatalf("stats %+v", st)
	}
	for _, it := range q.Items() {
		if it.State == StateSuppressed && it.Subject != "" {
			t.Fatal("suppressed item stored a rendered body")
		}
	}
}

// Dedup also applies within one batch, so a caller can throw the whole
// bundle set at Enqueue without pre-filtering.
func TestEnqueueDedupsWithinBatch(t *testing.T) {
	q, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ds, st, err := q.Enqueue(note("k", 3), note("k", 3), note("k", 10))
	if err != nil {
		t.Fatal(err)
	}
	want := []Disposition{Enqueued, Suppressed, Suppressed}
	for i, d := range ds {
		if d != want[i] {
			t.Fatalf("disposition[%d] = %v, want %v", i, d, want[i])
		}
	}
	if st.Enqueued != 1 || st.Suppressed != 2 {
		t.Fatalf("stats %+v", st)
	}
	// One batch → exactly one segment, replayable.
	if qs := q.Stats(); qs.Segments != 1 {
		t.Fatalf("batch wrote %d segments", qs.Segments)
	}
	if _, err := Open(q.Dir()); err != nil {
		t.Fatal(err)
	}
}

// Enqueue is idempotent across restart: replaying the same notifications
// against a reopened queue suppresses all of them.
func TestEnqueueIdempotentAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	batch := []Notification{note("as64512", 10), note("as64513", 10)}
	mustEnqueue(t, q, batch...)

	q2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, st, err := q2.Enqueue(batch...)
	if err != nil {
		t.Fatal(err)
	}
	if st.Enqueued != 0 || st.Suppressed != 2 {
		t.Fatalf("replayed batch not fully suppressed: %v %+v", ds, st)
	}
}

// Kill-and-restart at every mutation boundary: abandon the queue object
// (no shutdown path exists to call — that is the point) and verify each
// reopen reconstructs byte-identical state.
func TestKillRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()

	step := func(f func(q *Queue)) []byte {
		q, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		f(q)
		fp := q.Fingerprint()
		// q abandoned here: simulated SIGKILL.
		q2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got := q2.Fingerprint(); !bytes.Equal(fp, got) {
			t.Fatalf("restart state diverged after step")
		}
		return fp
	}

	step(func(q *Queue) { mustEnqueue(t, q, note("a", 0), note("b", 0)) })
	step(func(q *Queue) { mustEnqueue(t, q, note("a", 5), note("c", 2)) }) // a suppressed
	step(func(q *Queue) {
		if err := q.MarkSent(1, 1); err != nil {
			t.Fatal(err)
		}
	})
	step(func(q *Queue) {
		if err := q.MarkFailed(2, 3, "bounced"); err != nil {
			t.Fatal(err)
		}
	})
	fp := step(func(q *Queue) {
		if err := q.MarkSent(4, 2); err != nil {
			t.Fatal(err)
		}
	})
	if len(fp) == 0 {
		t.Fatal("empty fingerprint")
	}
}

// A leftover .tmp from a writer killed before rename is not part of the
// queue: reopen discards it and the committed state is unaffected.
func TestOpenDiscardsTmpLeftovers(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, q, note("a", 0))
	fp := q.Fingerprint()

	tmp := filepath.Join(dir, segName(2)+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	q2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fp, q2.Fingerprint()) {
		t.Fatal("tmp leftover changed queue state")
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("tmp leftover not removed")
	}
	// The discarded .tmp must not shadow the next committed segment.
	mustEnqueue(t, q2, note("b", 0))
	if st := q2.Stats(); st.Segments != 2 {
		t.Fatalf("segments %d after post-cleanup enqueue", st.Segments)
	}
}

// Foreign files in the queue directory are ignored, not deleted.
func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	foreign := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(foreign, []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, q, note("a", 0))
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("foreign file removed")
	}
}

// A gap in the segment run means lost mutations: permanent damage.
func TestOpenRejectsSegmentGap(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, q, note("a", 0))
	mustEnqueue(t, q, note("b", 0))
	if err := os.Remove(filepath.Join(dir, segName(1))); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	if !errors.Is(err, ErrBadFormat) || errors.Is(err, ErrTruncated) {
		t.Fatalf("gap error %v", err)
	}
	if IsRetryable(err) {
		t.Fatal("segment gap must be permanent")
	}
}

// Large bodies and many keys survive the codec unchanged.
func TestLargePayloadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ns []Notification
	for i := 0; i < 64; i++ {
		n := note(fmt.Sprintf("as%d", 64512+i), i%30)
		n.Body = string(bytes.Repeat([]byte("evidence line\n"), 200))
		ns = append(ns, n)
	}
	mustEnqueue(t, q, ns...)
	q2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Fingerprint(), q2.Fingerprint()) {
		t.Fatal("large payload state diverged")
	}
}
