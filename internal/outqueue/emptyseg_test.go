package outqueue

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestOpenToleratesEmptyTrailingSegment models the crash window between a
// segment file's creation and its first written byte (or a non-atomic
// transport that materialized the name before the data): the mutation was
// never committed, so replay must skip the empty file, reuse its sequence
// number, and leave the queue byte-identical to one that never saw the
// phantom segment.
func TestOpenToleratesEmptyTrailingSegment(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, q, note("as64512", 0), note("as64513", 2))
	if err := q.MarkSent(1, 1); err != nil {
		t.Fatal(err)
	}
	fp := q.Fingerprint()
	segs := int(q.nextSeq) - 1

	// Crash: the next segment's file exists but holds nothing.
	if err := os.WriteFile(filepath.Join(dir, segName(uint32(segs+1))), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	q2, err := Open(dir)
	if err != nil {
		t.Fatalf("replay with empty trailing segment failed: %v", err)
	}
	if !bytes.Equal(fp, q2.Fingerprint()) {
		t.Fatal("empty trailing segment changed replayed state")
	}
	if got := q2.Stats().Segments; got != segs {
		t.Fatalf("stats count %d segments, want %d (phantom not part of history)", got, segs)
	}

	// The reused sequence number must commit cleanly over the empty file,
	// and the queue must then replay a third time with the new mutation.
	mustEnqueue(t, q2, note("as64999", 7))
	q3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q2.Fingerprint(), q3.Fingerprint()) {
		t.Fatal("post-recovery enqueue not replayable")
	}
	if len(q3.Items()) != 3 {
		t.Fatalf("%d items after recovery enqueue", len(q3.Items()))
	}
}

// TestOpenRejectsEmptyMidRunSegment pins the other side of the contract:
// an empty segment with committed successors is a hole in history —
// permanent damage, same class as a missing file.
func TestOpenRejectsEmptyMidRunSegment(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEnqueue(t, q, note("as64512", 0))
	mustEnqueue(t, q, note("as64513", 1))
	if err := os.Truncate(filepath.Join(dir, segName(1)), 0); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	if err == nil {
		t.Fatal("empty mid-run segment accepted")
	}
	if !errors.Is(err, ErrBadFormat) || errors.Is(err, ErrTruncated) {
		t.Fatalf("want permanent ErrBadFormat (not truncated), got %v", err)
	}
}
