// Package outqueue is the persistent outbound queue behind the abuse
// notification pipeline: rendered complaints are enqueued durably, deduped
// per operator under escalating suppression windows, and drained to a
// delivery sink with their state (pending/sent/failed/suppressed) surviving
// any crash.
//
// Durability follows the resultstore discipline. The queue directory holds
// a contiguous run of immutable segment files, seg-00000001.oq onward; each
// mutation batch (an enqueue call, a single delivery-state transition)
// becomes one new segment written atomically (`.tmp` + fsync + rename), so
// a reader never observes a half-written segment and a killed process
// loses at most the mutation it had not yet committed. Re-opening the
// directory replays the segments in order through the same apply path the
// live queue uses, reconstructing byte-identical state.
//
// Segment layout (all integers little-endian):
//
//	header  "IOQS" | version u8 | reserved u8 | reserved u16=0 | seq u32
//	record  kind u8 | payloadLen u32 | crc32(payload) u32 | payload
//	footer  kind 0 | recordCount u32 | crc32(concatenated record CRCs) u32
//
// followed by mandatory EOF. The fault taxonomy mirrors resultstore's:
// ErrTruncated (the segment ends early — retryable) wraps ErrBadFormat
// (structural corruption — permanent), and fs.ErrNotExist passes through.
//
// Deduplication is event-time based: the first accepted report for a dedup
// key suppresses repeats for 24 hours of event time, and every further
// accepted report doubles the window — the escalating ban-window scheme
// production abuse desks run so a noisy device does not flood its
// operator's mailbox.
package outqueue

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	magic = "IOQS"
	// Version is the current segment codec version.
	Version = 1
	// InitialWindowHours is the suppression window after a key's first
	// accepted report; each further accepted report doubles it.
	InitialWindowHours = 24
	// maxWindowHours caps the doubling so the window arithmetic can never
	// overflow event-hour offsets.
	maxWindowHours = 1 << 20
)

const headerLen = 4 + 1 + 1 + 2 + 4

// Record kinds.
const (
	recFooter   = 0
	recEnqueue  = 1
	recState    = 2
	recSuppress = 3
)

// ErrBadFormat indicates a corrupt or foreign segment file, or a replay
// that contradicts the queue's invariants. Permanent.
var ErrBadFormat = errors.New("outqueue: bad segment format")

// ErrTruncated indicates a segment that ends before its footer: intact as
// far as it goes but incomplete. It wraps ErrBadFormat.
var ErrTruncated = fmt.Errorf("outqueue: truncated: %w", ErrBadFormat)

// IsRetryable reports whether an Open failure may resolve on its own: a
// truncated segment (a producer may still be writing on a non-atomic
// transport) or a directory that does not exist yet. Structural corruption
// is permanent.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrTruncated) || errors.Is(err, fs.ErrNotExist)
}

func badf(format string, args ...any) error {
	return fmt.Errorf("outqueue: "+format+": %w", append(args, ErrBadFormat)...)
}

// State is an item's delivery state.
type State uint8

const (
	// StatePending awaits delivery.
	StatePending State = 1
	// StateSent was delivered to the sink.
	StateSent State = 2
	// StateFailed was abandoned after a permanent sink error or an
	// exhausted retry budget.
	StateFailed State = 3
	// StateSuppressed was deduplicated on enqueue: a repeat report inside
	// its key's suppression window. Never delivered.
	StateSuppressed State = 4
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateSent:
		return "sent"
	case StateFailed:
		return "failed"
	case StateSuppressed:
		return "suppressed"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Notification is one rendered abuse report bound for a contact.
type Notification struct {
	// DedupKey identifies the notification target for suppression —
	// typically one key per operator (e.g. "as64512").
	DedupKey string
	// Contact is the resolved abuse mailbox.
	Contact string
	// Tier records which resolution tier produced the contact.
	Tier string
	// Subject and Body are the rendered complaint.
	Subject string
	Body    string
	// EventHour is the report's event time in dataset hours; suppression
	// windows are measured against it, not wall time.
	EventHour int
	// Devices and Packets summarize the evidence for stats.
	Devices int
	Packets uint64
}

// Item is one queued notification with its delivery state.
type Item struct {
	ID uint64
	Notification
	State    State
	Attempts int
	// Detail carries the failure reason for StateFailed.
	Detail string
}

// KeyState is the suppression bookkeeping for one dedup key.
type KeyState struct {
	// Reports counts accepted (non-suppressed) reports.
	Reports int
	// Suppressed counts deduplicated repeats.
	Suppressed int
	// LastHour is the event hour of the last accepted report.
	LastHour int
	// WindowHours is the suppression window now in force: repeats with
	// EventHour < LastHour+WindowHours are suppressed.
	WindowHours int
}

// Stats summarizes queue state.
type Stats struct {
	Items      int `json:"items"`
	Pending    int `json:"pending"`
	Sent       int `json:"sent"`
	Failed     int `json:"failed"`
	Suppressed int `json:"suppressed"`
	Keys       int `json:"keys"`
	Segments   int `json:"segments"`
}

// Queue is the persistent outbound queue over one directory. All methods
// are safe for concurrent use; durability is committed before any mutation
// becomes visible in memory.
type Queue struct {
	dir string

	mu      sync.Mutex
	items   []*Item // items[i].ID == i+1
	keys    map[string]*KeyState
	nextSeq uint32
}

// Open loads (or initializes) the queue at dir, replaying every segment.
// The segment run must be contiguous from 1: a gap means lost mutations
// and is permanent damage. Leftover .tmp files from a killed writer are
// removed — their rename never happened, so they were never part of the
// queue. A zero-length trailing segment (crash between create and first
// write) is tolerated as a lost commit: it is skipped and its sequence
// number reused.
func Open(dir string) (*Queue, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(name, "seg-%d.oq", &seq); err != nil || segName(uint32(seq)) != name {
			continue // foreign file; leave it alone
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	q := &Queue{dir: dir, keys: make(map[string]*KeyState), nextSeq: 1}
	for i, seq := range seqs {
		if seq != i+1 {
			return nil, badf("segment run has a gap: want seg %d, found %d", i+1, seq)
		}
		data, err := os.ReadFile(filepath.Join(dir, segName(uint32(seq))))
		if err != nil {
			return nil, err
		}
		// A zero-length *trailing* segment is a lost commit, not damage: a
		// crash (or a non-atomic transport) created the file before any
		// byte of the mutation reached it, so the mutation was never
		// committed and the file was never part of history. Skip it and
		// reuse its sequence — the next commit atomically overwrites it.
		// Mid-run, the same emptiness means later mutations were applied
		// on top of a hole, which is permanent damage like any gap.
		if len(data) == 0 {
			if i == len(seqs)-1 {
				q.nextSeq = uint32(seq)
				break
			}
			return nil, badf("segment %d is empty mid-run", seq)
		}
		recs, err := decodeSegment(data, uint32(seq))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", segName(uint32(seq)), err)
		}
		for _, r := range recs {
			if err := q.apply(r); err != nil {
				return nil, fmt.Errorf("%s: %w", segName(uint32(seq)), err)
			}
		}
		q.nextSeq = uint32(seq) + 1
	}
	return q, nil
}

func segName(seq uint32) string { return fmt.Sprintf("seg-%08d.oq", seq) }

// Dir returns the queue directory.
func (q *Queue) Dir() string { return q.dir }

// Disposition is the outcome of enqueueing one notification.
type Disposition uint8

const (
	// Enqueued entered the queue as a pending item.
	Enqueued Disposition = iota
	// Suppressed was deduplicated inside its key's suppression window.
	Suppressed
)

// EnqueueStats summarizes one Enqueue call.
type EnqueueStats struct {
	Enqueued   int
	Suppressed int
}

// Enqueue appends the notifications as one atomic segment, deduplicating
// each against its key's suppression window (duplicates within the batch
// dedup too — enqueue is idempotent). The per-notification dispositions
// are returned in input order. Nothing is visible in memory until the
// segment has been durably committed.
func (q *Queue) Enqueue(ns ...Notification) ([]Disposition, EnqueueStats, error) {
	var stats EnqueueStats
	if len(ns) == 0 {
		return nil, stats, nil
	}
	for i, n := range ns {
		if n.DedupKey == "" {
			return nil, stats, fmt.Errorf("outqueue: notification %d has no dedup key", i)
		}
		if n.EventHour < 0 {
			return nil, stats, fmt.Errorf("outqueue: notification %d has negative event hour", i)
		}
	}

	q.mu.Lock()
	defer q.mu.Unlock()

	// Stage the records, tracking window state against a shadow copy so a
	// failed commit leaves the live state untouched.
	shadow := make(map[string]KeyState, len(ns))
	keyState := func(key string) KeyState {
		if ks, ok := shadow[key]; ok {
			return ks
		}
		if ks, ok := q.keys[key]; ok {
			return *ks
		}
		return KeyState{}
	}
	dispositions := make([]Disposition, len(ns))
	var recs []record
	nextID := uint64(len(q.items)) + 1
	for i, n := range ns {
		ks := keyState(n.DedupKey)
		if ks.Reports > 0 && n.EventHour < ks.LastHour+ks.WindowHours {
			dispositions[i] = Suppressed
			stats.Suppressed++
			ks.Suppressed++
			shadow[n.DedupKey] = ks
			recs = append(recs, record{kind: recSuppress, item: Item{
				ID: nextID,
				Notification: Notification{
					DedupKey:  n.DedupKey,
					EventHour: n.EventHour,
				},
				State: StateSuppressed,
			}})
			nextID++
			continue
		}
		dispositions[i] = Enqueued
		stats.Enqueued++
		ks.Reports++
		ks.LastHour = n.EventHour
		if ks.WindowHours == 0 {
			ks.WindowHours = InitialWindowHours
		} else if ks.WindowHours < maxWindowHours {
			ks.WindowHours *= 2
		}
		shadow[n.DedupKey] = ks
		recs = append(recs, record{kind: recEnqueue, item: Item{
			ID:           nextID,
			Notification: n,
			State:        StatePending,
		}})
		nextID++
	}

	if err := q.commit(recs); err != nil {
		return nil, EnqueueStats{}, err
	}
	return dispositions, stats, nil
}

// MarkSent durably transitions a pending item to sent.
func (q *Queue) MarkSent(id uint64, attempts int) error {
	return q.markState(id, StateSent, attempts, "")
}

// MarkFailed durably transitions a pending item to failed with the reason.
func (q *Queue) MarkFailed(id uint64, attempts int, detail string) error {
	return q.markState(id, StateFailed, attempts, detail)
}

func (q *Queue) markState(id uint64, s State, attempts int, detail string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if id < 1 || id > uint64(len(q.items)) {
		return fmt.Errorf("outqueue: no item %d", id)
	}
	if cur := q.items[id-1].State; cur != StatePending {
		return fmt.Errorf("outqueue: item %d is %s, not pending", id, cur)
	}
	return q.commit([]record{{kind: recState, item: Item{
		ID: id, State: s, Attempts: attempts, Detail: detail,
	}}})
}

// commit encodes recs into the next segment, writes it atomically, and —
// only then — applies them to the in-memory state through the same replay
// path Open uses, so live state and restart state cannot diverge.
// Callers hold q.mu.
func (q *Queue) commit(recs []record) error {
	data := encodeSegment(q.nextSeq, recs)
	path := filepath.Join(q.dir, segName(q.nextSeq))
	if err := writeAtomic(path, data); err != nil {
		return err
	}
	q.nextSeq++
	for _, r := range recs {
		if err := q.apply(r); err != nil {
			// The segment is durable but contradicts live state: a Queue
			// invariant is broken. Surface loudly; this is a bug, not an
			// I/O condition.
			return fmt.Errorf("outqueue: committed segment rejected by apply: %w", err)
		}
	}
	return nil
}

// apply folds one replayed record into queue state. It is the single
// mutation path shared by live commits and Open replay; violations of the
// queue invariants (non-monotonic IDs, state transitions from terminal
// states, suppress records for unknown keys) are ErrBadFormat.
func (q *Queue) apply(r record) error {
	switch r.kind {
	case recEnqueue, recSuppress:
		if want := uint64(len(q.items)) + 1; r.item.ID != want {
			return badf("record ID %d out of order, want %d", r.item.ID, want)
		}
		if r.item.DedupKey == "" {
			return badf("record %d has empty dedup key", r.item.ID)
		}
		it := r.item // copy
		ks := q.keys[it.DedupKey]
		if ks == nil {
			ks = &KeyState{}
			q.keys[it.DedupKey] = ks
		}
		if r.kind == recSuppress {
			if ks.Reports == 0 {
				return badf("suppress record %d for key %q with no prior report", it.ID, it.DedupKey)
			}
			it.State = StateSuppressed
			ks.Suppressed++
		} else {
			it.State = StatePending
			ks.Reports++
			ks.LastHour = it.EventHour
			if ks.WindowHours == 0 {
				ks.WindowHours = InitialWindowHours
			} else if ks.WindowHours < maxWindowHours {
				ks.WindowHours *= 2
			}
		}
		q.items = append(q.items, &it)
		return nil
	case recState:
		if r.item.ID < 1 || r.item.ID > uint64(len(q.items)) {
			return badf("state record for unknown item %d", r.item.ID)
		}
		if r.item.State != StateSent && r.item.State != StateFailed {
			return badf("state record moves item %d to %s", r.item.ID, r.item.State)
		}
		it := q.items[r.item.ID-1]
		if it.State != StatePending {
			return badf("state record for item %d already %s", r.item.ID, it.State)
		}
		it.State = r.item.State
		it.Attempts = r.item.Attempts
		it.Detail = r.item.Detail
		return nil
	}
	return badf("unknown record kind %d", r.kind)
}

// Items returns a copy of every queue item in ID order.
func (q *Queue) Items() []Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Item, len(q.items))
	for i, it := range q.items {
		out[i] = *it
	}
	return out
}

// Pending returns copies of the items still awaiting delivery, in ID order.
func (q *Queue) Pending() []Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []Item
	for _, it := range q.items {
		if it.State == StatePending {
			out = append(out, *it)
		}
	}
	return out
}

// Key returns the suppression state for a dedup key.
func (q *Queue) Key(key string) (KeyState, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	ks, ok := q.keys[key]
	if !ok {
		return KeyState{}, false
	}
	return *ks, true
}

// Stats summarizes the queue.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Stats{Items: len(q.items), Keys: len(q.keys), Segments: int(q.nextSeq) - 1}
	for _, it := range q.items {
		switch it.State {
		case StatePending:
			st.Pending++
		case StateSent:
			st.Sent++
		case StateFailed:
			st.Failed++
		case StateSuppressed:
			st.Suppressed++
		}
	}
	return st
}

// Fingerprint returns a canonical encoding of the entire queue state —
// every item field plus every key's suppression window — so tests can
// assert that a kill-and-restart reconstructs byte-identical state.
func (q *Queue) Fingerprint() []byte {
	q.mu.Lock()
	defer q.mu.Unlock()
	var e enc
	e.u32(uint32(len(q.items)))
	for _, it := range q.items {
		e.u64(it.ID)
		e.u8(uint8(it.State))
		e.u32(uint32(it.Attempts))
		e.str(it.Detail)
		e.str(it.DedupKey)
		e.str(it.Contact)
		e.str(it.Tier)
		e.str(it.Subject)
		e.str(it.Body)
		e.u32(uint32(it.EventHour))
		e.u32(uint32(it.Devices))
		e.u64(it.Packets)
	}
	keys := make([]string, 0, len(q.keys))
	for k := range q.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u32(uint32(len(keys)))
	for _, k := range keys {
		ks := q.keys[k]
		e.str(k)
		e.u32(uint32(ks.Reports))
		e.u32(uint32(ks.Suppressed))
		e.u32(uint32(ks.LastHour))
		e.u32(uint32(ks.WindowHours))
	}
	return e.b
}

// ---- codec ----

// record is the decoded form of one segment record.
type record struct {
	kind uint8
	item Item
}

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) str(s string) { e.u32(uint32(len(s))); e.b = append(e.b, s...) }

func encodeSegment(seq uint32, recs []record) []byte {
	var out enc
	out.b = append(out.b, magic...)
	out.u8(Version)
	out.u8(0)
	out.u16(0)
	out.u32(seq)

	var crcs []byte
	for _, r := range recs {
		var p enc
		switch r.kind {
		case recEnqueue:
			p.u64(r.item.ID)
			p.u32(uint32(r.item.EventHour))
			p.u32(uint32(r.item.Devices))
			p.u64(r.item.Packets)
			p.str(r.item.DedupKey)
			p.str(r.item.Contact)
			p.str(r.item.Tier)
			p.str(r.item.Subject)
			p.str(r.item.Body)
		case recSuppress:
			p.u64(r.item.ID)
			p.u32(uint32(r.item.EventHour))
			p.str(r.item.DedupKey)
		case recState:
			p.u64(r.item.ID)
			p.u8(uint8(r.item.State))
			p.u32(uint32(r.item.Attempts))
			p.str(r.item.Detail)
		}
		sum := crc32.ChecksumIEEE(p.b)
		out.u8(r.kind)
		out.u32(uint32(len(p.b)))
		out.u32(sum)
		out.b = append(out.b, p.b...)
		crcs = binary.LittleEndian.AppendUint32(crcs, sum)
	}
	out.u8(recFooter)
	out.u32(uint32(len(recs)))
	out.u32(crc32.ChecksumIEEE(crcs))
	return out.b
}

// decodeSegment parses and fully validates one segment image. Every CRC,
// the footer count and digest, and the trailing-EOF rule are checked before
// any record is returned.
func decodeSegment(data []byte, wantSeq uint32) ([]record, error) {
	if len(data) < len(magic) {
		return nil, fmt.Errorf("%w: short header", ErrTruncated)
	}
	if string(data[:len(magic)]) != magic {
		return nil, badf("bad magic %q", data[:len(magic)])
	}
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: short header", ErrTruncated)
	}
	version := data[4]
	if version == 0 || int(version) > Version {
		return nil, badf("unsupported version %d", version)
	}
	if data[5] != 0 || binary.LittleEndian.Uint16(data[6:]) != 0 {
		return nil, badf("reserved header bits set")
	}
	seq := binary.LittleEndian.Uint32(data[8:])
	if wantSeq != 0 && seq != wantSeq {
		return nil, badf("segment claims seq %d, file name says %d", seq, wantSeq)
	}

	var (
		recs []record
		crcs []byte
		off  = headerLen
	)
	for {
		if off >= len(data) {
			return nil, fmt.Errorf("%w: missing footer", ErrTruncated)
		}
		kind := data[off]
		off++
		if kind == recFooter {
			if len(data)-off < 8 {
				return nil, fmt.Errorf("%w: short footer", ErrTruncated)
			}
			count := binary.LittleEndian.Uint32(data[off:])
			digest := binary.LittleEndian.Uint32(data[off+4:])
			off += 8
			if int(count) != len(recs) {
				return nil, badf("footer counts %d records, read %d", count, len(recs))
			}
			if digest != crc32.ChecksumIEEE(crcs) {
				return nil, badf("footer digest mismatch")
			}
			if off != len(data) {
				return nil, badf("%d trailing bytes after footer", len(data)-off)
			}
			return recs, nil
		}
		if kind > recSuppress {
			return nil, badf("unknown record kind %d", kind)
		}
		if len(data)-off < 8 {
			return nil, fmt.Errorf("%w: short record header", ErrTruncated)
		}
		plen := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		off += 8
		if len(data)-off < int(plen) {
			return nil, fmt.Errorf("%w: record body cut short", ErrTruncated)
		}
		payload := data[off : off+int(plen)]
		off += int(plen)
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, badf("record checksum mismatch")
		}
		r, err := parseRecord(kind, payload)
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
		crcs = binary.LittleEndian.AppendUint32(crcs, sum)
	}
}

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.b)-d.off < n {
		d.err = errors.New("short record")
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) str() string {
	n := int(d.u32())
	if !d.need(n) {
		return ""
	}
	v := string(d.b[d.off : d.off+n])
	d.off += n
	return v
}

// finish validates exact consumption: a CRC-valid record that underflows or
// leaves bytes behind is structurally damaged, never truncation.
func (d *dec) finish(what string) error {
	if d.err != nil {
		return badf("%s record underflows", what)
	}
	if d.off != len(d.b) {
		return badf("%s record has %d leftover bytes", what, len(d.b)-d.off)
	}
	return nil
}

func parseRecord(kind uint8, payload []byte) (record, error) {
	d := &dec{b: payload}
	r := record{kind: kind}
	switch kind {
	case recEnqueue:
		r.item.ID = d.u64()
		r.item.EventHour = int(d.u32())
		r.item.Devices = int(d.u32())
		r.item.Packets = d.u64()
		r.item.DedupKey = d.str()
		r.item.Contact = d.str()
		r.item.Tier = d.str()
		r.item.Subject = d.str()
		r.item.Body = d.str()
		if err := d.finish("enqueue"); err != nil {
			return record{}, err
		}
	case recSuppress:
		r.item.ID = d.u64()
		r.item.EventHour = int(d.u32())
		r.item.DedupKey = d.str()
		if err := d.finish("suppress"); err != nil {
			return record{}, err
		}
	case recState:
		r.item.ID = d.u64()
		r.item.State = State(d.u8())
		r.item.Attempts = int(d.u32())
		r.item.Detail = d.str()
		if err := d.finish("state"); err != nil {
			return record{}, err
		}
	}
	return r, nil
}

func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
