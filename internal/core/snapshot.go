package core

import (
	"context"
	"errors"
	"fmt"

	"iotscope/internal/correlate"
	"iotscope/internal/pipeline"
	"iotscope/internal/resultstore"
)

// ErrSnapshotMismatch marks a store file that decoded cleanly but does not
// belong to the dataset being served: wrong hour span or device indices
// outside the inventory. Staleness is permanent — retrying the same pair
// cannot fix it — so it is never retryable.
var ErrSnapshotMismatch = errors.New("core: snapshot does not match dataset")

// Provenance records where a served snapshot's analyzed state came from:
// straight from a result store artifact, or re-derived by raw analysis
// (the fallback). Fallback carries the reason a configured store was
// passed over, and is the health signal iotserve degrades on.
type Provenance struct {
	// Source is "store" when the correlation was loaded from a result
	// store, "analyze" when it was recomputed from raw hour files.
	Source string `json:"source"`
	// StorePath is the store artifact actually loaded (empty for analyze).
	StorePath string `json:"store,omitempty"`
	// CodecVersion is the resultstore codec version of the loaded artifact.
	CodecVersion int `json:"codecVersion,omitempty"`
	// Fallback explains why a configured store was not used (empty when no
	// store was configured, or when the store loaded cleanly).
	Fallback string `json:"storeFallback,omitempty"`
}

// SaveSnapshot persists the analysis' correlation state as a result store
// artifact at path (atomic write). Everything downstream of correlation is
// cheap to recompute, so the correlate.Result is the unit of persistence.
func SaveSnapshot(path string, res *Results) error {
	if res == nil || res.Correlate == nil {
		return errors.New("core: no correlation result to save")
	}
	return resultstore.WriteResult(path, res.Correlate)
}

// SaveSnapshotStage wraps SaveSnapshot as a named pipeline stage, so
// iotinfer -save reports the write alongside the analysis stages.
func SaveSnapshotStage(path string, out *Results) pipeline.Stage {
	return pipeline.Func(StageSaveStore, func(ctx context.Context, st *pipeline.State) error {
		if err := SaveSnapshot(path, out); err != nil {
			return fmt.Errorf("core: save store: %w", err)
		}
		m := pipeline.Meter(ctx)
		m.RecordsOut = uint64(len(out.Correlate.Devices))
		m.Note = "saved " + path
		return nil
	})
}

// OpenSnapshot loads a result store artifact and validates it against this
// dataset: the hour span must match the scenario and every device index
// must exist in the inventory. A decode failure keeps the resultstore
// taxonomy (ErrTruncated retryable, ErrBadFormat permanent); a mismatch
// wraps ErrSnapshotMismatch.
func (ds *Dataset) OpenSnapshot(path string) (*correlate.Result, error) {
	res, err := resultstore.ReadResult(path)
	if err != nil {
		return nil, err
	}
	if res.Hours != ds.Scenario.Hours {
		return nil, fmt.Errorf("%w: store spans %d hours, dataset %d",
			ErrSnapshotMismatch, res.Hours, ds.Scenario.Hours)
	}
	for id := range res.Devices {
		if id < 0 || id >= ds.Inventory.Len() {
			return nil, fmt.Errorf("%w: store device %d outside inventory of %d",
				ErrSnapshotMismatch, id, ds.Inventory.Len())
		}
	}
	return res, nil
}

// RestoreIncremental rebuilds a checkpointed incremental correlator
// against this dataset, validating the checkpoint's hour span against the
// scenario before handing it to the correlate-level restore.
func (ds *Dataset) RestoreIncremental(cfg Config, cp *correlate.CheckpointExport) (*correlate.Incremental, error) {
	if cp != nil && ds.Scenario.Hours > 0 && cp.MaxHours != ds.Scenario.Hours {
		return nil, fmt.Errorf("%w: checkpoint spans %d hours, dataset %d",
			ErrSnapshotMismatch, cp.MaxHours, ds.Scenario.Hours)
	}
	return correlate.New(ds.Inventory, cfg.CorrelatorOptions()).RestoreIncremental(cp)
}

// LoadOptions tunes LoadSnapshotOpts.
type LoadOptions struct {
	// Store is the result store artifact to prefer over raw analysis
	// (empty: always analyze).
	Store string
	// RequireStore makes a store failure fatal instead of falling back to
	// raw analysis — the hot-reload mode, where a bad artifact must keep
	// the currently served snapshot rather than silently pay a full
	// re-analysis inside the reload deadline.
	RequireStore bool
}

// storeErrClass buckets a store-load failure for the stage report.
func storeErrClass(err error) string {
	switch {
	case resultstore.IsRetryable(err):
		return "retryable"
	case errors.Is(err, ErrSnapshotMismatch):
		return "stale"
	case errors.Is(err, resultstore.ErrBadFormat):
		return "corrupt"
	}
	return ""
}

// LoadSnapshotOpts opens the dataset at dir and produces a complete,
// servable (Dataset, Results) pair as stages of one pipeline:
//
//	open → load-store → verify → analyze
//
// With a store configured and valid, load-store installs its correlation
// result, verify is skipped (the codec already replayed every checksum),
// and analyze runs only the downstream stages. Without a store — or when
// the configured one is corrupt, truncated, or stale and RequireStore is
// false — load-store skips with the reason in its stage note, raw hours
// are verified, and the full analysis runs. Either way the returned
// Provenance says which path produced the state, so servers can surface
// the fallback as degraded health. The report is returned even on failure
// and records which stage stopped the load.
func LoadSnapshotOpts(ctx context.Context, dir string, opts LoadOptions) (*Dataset, *Results, Provenance, *pipeline.Report, error) {
	var ds *Dataset
	res := &Results{}
	prov := Provenance{Source: "analyze"}
	rep, err := pipeline.New("load-snapshot",
		pipeline.Func(StageOpen, func(ctx context.Context, st *pipeline.State) error {
			var err error
			ds, err = Open(dir)
			return err
		}),
		pipeline.Func(StageLoadStore, func(ctx context.Context, st *pipeline.State) error {
			m := pipeline.Meter(ctx)
			if opts.Store == "" {
				m.Note = "no store configured"
				return pipeline.ErrSkipped
			}
			loaded, err := ds.OpenSnapshot(opts.Store)
			if err != nil {
				m.ErrorClass = storeErrClass(err)
				if opts.RequireStore {
					return fmt.Errorf("core: load store: %w", err)
				}
				prov.Fallback = err.Error()
				m.Note = "store unusable, falling back to analysis: " + err.Error()
				return pipeline.ErrSkipped
			}
			res.Correlate = loaded
			prov = Provenance{Source: "store", StorePath: opts.Store, CodecVersion: resultstore.Version}
			m.RecordsOut = uint64(len(loaded.Devices))
			m.Note = "loaded " + opts.Store
			return nil
		}),
		pipeline.Func(StageVerify, func(ctx context.Context, st *pipeline.State) error {
			m := pipeline.Meter(ctx)
			if prov.Source == "store" {
				m.Note = "store CRCs already replayed; raw hours not re-verified"
				return pipeline.ErrSkipped
			}
			m.RecordsIn = uint64(ds.Scenario.Hours)
			err := ds.VerifyHours(ctx)
			classifyIngestErr(m, err)
			return err
		}),
		// The analysis sequence is composed at run time: the dataset (and
		// with it the stage closures) only exists once "open" has run, and
		// which stages run depends on whether load-store succeeded.
		pipeline.Func(StageLoad, func(ctx context.Context, st *pipeline.State) error {
			cfg := DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
			stages := ds.AnalysisStages(cfg, res)
			if prov.Source == "store" {
				stages = ds.DownstreamStages(cfg, res)
			}
			return pipeline.Sequence("analysis", stages...).Run(ctx, st)
		}),
	).Run(ctx, nil)
	if err != nil {
		return nil, nil, prov, rep, err
	}
	return ds, res, prov, rep, nil
}
