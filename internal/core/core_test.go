package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"iotscope/internal/devicedb"
)

// Shared end-to-end fixture: generate once, analyze once.
var (
	e2eOnce sync.Once
	e2eErr  error
	e2eDir  string
	e2eDS   *Dataset
	e2eRes  *Results
)

func loadE2E(t *testing.T) (*Dataset, *Results) {
	t.Helper()
	e2eOnce.Do(func() {
		e2eDir, e2eErr = os.MkdirTemp("", "core-e2e-*")
		if e2eErr != nil {
			return
		}
		cfg := DefaultConfig(0.004, 808)
		cfg.Hours = 60
		e2eDS, e2eErr = Generate(cfg, e2eDir)
		if e2eErr != nil {
			return
		}
		e2eRes, e2eErr = e2eDS.Analyze(cfg)
	})
	if e2eErr != nil {
		t.Fatal(e2eErr)
	}
	return e2eDS, e2eRes
}

func TestGenerateWritesAllArtifacts(t *testing.T) {
	ds, _ := loadE2E(t)
	for _, name := range []string{
		ScenarioFile, InventoryFile, ThreatFile,
		MalwareReportsFile, MalwareCatalogFile, TruthFile,
		"hour-000.ft.gz", "hour-059.ft.gz",
	} {
		if _, err := os.Stat(filepath.Join(ds.Dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
	if ds.GenStats.Collector.PacketsObserved == 0 {
		t.Error("no packets generated")
	}
	if ds.GenStats.Collector.PacketsDropped != 0 {
		t.Error("packets leaked outside the telescope")
	}
}

func TestAnalyzeRecoversPopulation(t *testing.T) {
	ds, res := loadE2E(t)
	// All devices with onsets inside the shortened window are recovered.
	expected := 0
	for _, id := range ds.Truth.Compromised {
		if ds.Truth.OnsetHour[id] < ds.Scenario.Hours {
			expected++
		}
	}
	if res.Summary.Total != expected {
		t.Fatalf("inferred %d devices, expected %d", res.Summary.Total, expected)
	}
	if res.Summary.PacketsTotal == 0 {
		t.Fatal("no IoT packets")
	}
	// Background exists and was excluded.
	if res.Correlate.Background.Packets == 0 {
		t.Error("no background traffic generated")
	}
}

func TestAnalyzeSectionV(t *testing.T) {
	_, res := loadE2E(t)
	if res.Threat.Explored == 0 {
		t.Fatal("nothing explored")
	}
	if len(res.Threat.Flagged) == 0 {
		t.Error("no threat-flagged devices")
	}
	if len(res.Malware.Hashes) == 0 || len(res.Malware.Families) == 0 {
		t.Errorf("malware correlation empty: %d hashes %d families",
			len(res.Malware.Hashes), len(res.Malware.Families))
	}
	if len(res.Malware.Families) > 11 {
		t.Errorf("families %d > 11", len(res.Malware.Families))
	}
}

func TestOpenRoundTrip(t *testing.T) {
	ds, res := loadE2E(t)
	reopened, err := Open(ds.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Inventory.Len() != ds.Inventory.Len() {
		t.Fatalf("inventory %d want %d", reopened.Inventory.Len(), ds.Inventory.Len())
	}
	if reopened.Threat.Len() != ds.Threat.Len() {
		t.Fatalf("threat events %d want %d", reopened.Threat.Len(), ds.Threat.Len())
	}
	if reopened.Malware.Len() != ds.Malware.Len() {
		t.Fatalf("malware reports %d want %d", reopened.Malware.Len(), ds.Malware.Len())
	}
	if len(reopened.Truth.Compromised) != len(ds.Truth.Compromised) {
		t.Fatal("truth diverged")
	}
	// Registry rebuild gives identical ISP metadata.
	if len(reopened.Registry.ISPs) != len(ds.Registry.ISPs) {
		t.Fatal("registry diverged")
	}

	// Re-analysis of the reopened dataset matches.
	cfg := DefaultConfig(reopened.Scenario.Scale, reopened.Scenario.Seed)
	res2, err := reopened.Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Summary.Total != res.Summary.Total ||
		res2.Summary.PacketsTotal != res.Summary.PacketsTotal {
		t.Fatalf("re-analysis diverged: %+v vs %+v", res2.Summary, res.Summary)
	}
	if len(res2.Malware.Hashes) != len(res.Malware.Hashes) {
		t.Fatal("malware correlation diverged")
	}
}

func TestSketchModeAgreesOnTotals(t *testing.T) {
	ds, res := loadE2E(t)
	cfg := DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
	cfg.UseSketches = true
	approx, err := ds.Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Packet totals are exact in both modes; only unique-destination
	// counters are approximated.
	if approx.Summary.PacketsTotal != res.Summary.PacketsTotal {
		t.Fatalf("sketch mode changed packet totals: %d vs %d",
			approx.Summary.PacketsTotal, res.Summary.PacketsTotal)
	}
	if approx.Summary.Total != res.Summary.Total {
		t.Fatal("sketch mode changed device inference")
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("opened empty dir")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	ds, _ := loadE2E(t)
	// The persisted scenario must preserve the dark prefix and events.
	reopened, err := Open(ds.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Scenario.Geo.DarkPrefix != ds.Scenario.Geo.DarkPrefix {
		t.Fatalf("dark prefix %v want %v",
			reopened.Scenario.Geo.DarkPrefix, ds.Scenario.Geo.DarkPrefix)
	}
	if len(reopened.Scenario.Backscatter.Events) != len(ds.Scenario.Backscatter.Events) {
		t.Fatal("events lost in persistence")
	}
	if reopened.Scenario.Backscatter.Events[0].Category != devicedb.CPS {
		t.Fatal("event category mangled")
	}
}

func TestResultsBufferRenderable(t *testing.T) {
	// Smoke: Results feed the report package without panics (full render
	// tested in internal/report).
	_, res := loadE2E(t)
	var buf bytes.Buffer
	for _, r := range res.Threat.ByCategory {
		buf.WriteString(r.Category.String())
	}
	if buf.Len() == 0 {
		t.Fatal("no categories")
	}
}

// Sharded analysis is a drop-in: same correlation export as the unsharded
// run, with one attached metrics record per shard in the stage report.
func TestShardedAnalyzeMatches(t *testing.T) {
	ds, res := loadE2E(t)
	cfg := DefaultConfig(0.004, 808)
	cfg.Hours = 60
	cfg.Shards = 4
	sharded, rep, err := ds.AnalyzeStaged(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Correlate.Export(), sharded.Correlate.Export()) {
		t.Fatal("sharded correlation export diverged from unsharded analysis")
	}
	if res.Summary.Total != sharded.Summary.Total {
		t.Fatalf("summary total %d != %d", sharded.Summary.Total, res.Summary.Total)
	}
	devs := 0
	for k := 0; k < 4; k++ {
		m := rep.Stage(fmt.Sprintf("correlate/shard-%d", k))
		if m == nil {
			t.Fatalf("report missing correlate/shard-%d", k)
		}
		devs += int(m.RecordsOut)
	}
	if devs != len(sharded.Correlate.Devices) {
		t.Fatalf("shard records count %d devices, result has %d", devs, len(sharded.Correlate.Devices))
	}
}
