package core

import (
	"math"
	"os"
	"testing"

	"iotscope/internal/analysis"
	"iotscope/internal/devicedb"
)

// shapeMetrics are the scale-invariant quantities EXPERIMENTS.md compares.
type shapeMetrics struct {
	consumerShare float64 // of compromised devices
	ruShare       float64 // of compromised devices
	telnetPct     float64 // of TCP scan packets
	udpShare      float64 // of IoT packets
	bsShare       float64 // backscatter share of IoT packets
}

func measure(t *testing.T, scale float64, hours int) shapeMetrics {
	t.Helper()
	dir, err := os.MkdirTemp("", "scale-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := DefaultConfig(scale, 12321)
	cfg.Hours = hours
	ds, err := Generate(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var m shapeMetrics
	m.consumerShare = float64(res.Summary.Consumer) / float64(res.Summary.Total)
	for _, row := range res.Analyzer.CompromisedByCountry(3) {
		if row.Code == "RU" {
			m.ruShare = float64(row.Total()) / float64(res.Summary.Total)
		}
	}
	for _, row := range res.Analyzer.TopScanServices(analysis.DefaultScanServices()) {
		if row.Service == "Telnet" {
			m.telnetPct = row.Pct
		}
	}
	mix := res.Analyzer.ProtocolBreakdown()
	m.udpShare = mix.UDPCPS + mix.UDPConsumer
	m.bsShare = res.Analyzer.Backscatter().PctOfIoTTraffic
	_ = devicedb.Consumer
	return m
}

// The design's central scaling claim: shape metrics are stable across
// scales because populations and volumes scale together while per-device
// behaviour is fixed.
func TestShapeStableAcrossScales(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scale generation is slow")
	}
	small := measure(t, 0.004, 72)
	large := measure(t, 0.012, 72)

	check := func(name string, a, b, tol float64) {
		if math.Abs(a-b) > tol {
			t.Errorf("%s drifted across scales: %.3f vs %.3f (tol %.3f)", name, a, b, tol)
		}
	}
	check("consumer share", small.consumerShare, large.consumerShare, 0.06)
	check("RU share", small.ruShare, large.ruShare, 0.08)
	check("Telnet pct", small.telnetPct, large.telnetPct, 15)
	check("UDP share", small.udpShare, large.udpShare, 5)
	check("backscatter share", small.bsShare, large.bsShare, 6)
}
