package core

import (
	"bytes"
	"crypto/sha256"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"iotscope/internal/scenario"
)

// hashDatasetDir hashes every file of a dataset directory, in name order —
// the whole-dataset digest, provenance files included.
func hashDatasetDir(t *testing.T, dir string) [32]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		io.WriteString(h, e.Name())
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(h, f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// The provenance contract behind run.json: the same scenario file at the
// same seed yields a byte-identical dataset — across repeated runs and
// across GOMAXPROCS settings, manifest and config files included.
func TestScenarioDatasetByteIdentical(t *testing.T) {
	render := func(procs int) [32]byte {
		if procs > 0 {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
		}
		rs, err := scenario.Resolve("stealth-scan@1", scenario.Options{Scale: 0.002, Seed: 77, Hours: 6})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(0.002, 77)
		cfg.Hours = 6
		dir := t.TempDir()
		if _, err := GenerateScenario(cfg, rs, dir); err != nil {
			t.Fatal(err)
		}
		return hashDatasetDir(t, dir)
	}
	base := render(0)
	if again := render(0); !bytes.Equal(base[:], again[:]) {
		t.Fatal("repeated runs differ")
	}
	if one := render(1); !bytes.Equal(base[:], one[:]) {
		t.Fatal("GOMAXPROCS=1 produces different bytes")
	}
	if eight := render(8); !bytes.Equal(base[:], eight[:]) {
		t.Fatal("GOMAXPROCS=8 produces different bytes")
	}
}

// A dataset generated from an external scenario file is byte-identical to
// one generated from the equivalent bundled scenario, except for the
// manifest's Source line — and the manifest records exactly that.
func TestScenarioFileMatchesBundled(t *testing.T) {
	cfg0, err := scenario.Load("stealth-scan@1")
	if err != nil {
		t.Fatal(err)
	}
	canon, err := cfg0.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	ext := filepath.Join(t.TempDir(), "stealth-scan.json")
	if err := os.WriteFile(ext, canon, 0o644); err != nil {
		t.Fatal(err)
	}

	render := func(ref string) (string, [32]byte) {
		rs, err := scenario.Resolve(ref, scenario.Options{Scale: 0.002, Seed: 3, Hours: 4})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(0.002, 3)
		cfg.Hours = 4
		dir := t.TempDir()
		if _, err := GenerateScenario(cfg, rs, dir); err != nil {
			t.Fatal(err)
		}
		// Drop the manifest from the digest; its Source field legitimately
		// differs between the two provenances.
		if err := os.Remove(filepath.Join(dir, scenario.ManifestFile)); err != nil {
			t.Fatal(err)
		}
		return dir, hashDatasetDir(t, dir)
	}
	_, fromBundle := render("stealth-scan@1")
	_, fromFile := render(ext)
	if !bytes.Equal(fromBundle[:], fromFile[:]) {
		t.Fatal("external scenario file renders different bytes than the bundled scenario")
	}
}
