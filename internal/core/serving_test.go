package core

import (
	"context"
	"errors"
	"os"
	"testing"

	"iotscope/internal/flowtuple"
)

// copyHours clones a dataset directory so corruption stays local.
func copyDataset(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(src + "/" + e.Name())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst+"/"+e.Name(), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestLoadSnapshotCleanDataset(t *testing.T) {
	ds, res := loadE2E(t)
	ds2, res2, rep, err := LoadSnapshot(context.Background(), ds.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Scenario.Hours != ds.Scenario.Hours {
		t.Fatalf("hours %d != %d", ds2.Scenario.Hours, ds.Scenario.Hours)
	}
	if res2.Summary.Total != res.Summary.Total {
		t.Fatalf("snapshot load diverged: %d devices != %d",
			res2.Summary.Total, res.Summary.Total)
	}
	if res2.Correlate.Ingest.HoursOK != ds.Scenario.Hours {
		t.Fatalf("ingest hoursOk %d, want %d",
			res2.Correlate.Ingest.HoursOK, ds.Scenario.Hours)
	}
	// The load report covers the whole pipeline: open/verify/analyze plus
	// the five expanded analysis stages, all ok.
	for _, name := range []string{StageOpen, StageVerify, StageLoad,
		StageCorrelate, StageCharacterize, StageStatTests, StageThreatIntel, StageMalware} {
		m := rep.Stage(name)
		if m == nil || m.Status != "ok" {
			t.Fatalf("load report stage %q = %+v, want ok", name, m)
		}
	}
}

func TestLoadSnapshotRejectsCorruptHour(t *testing.T) {
	ds, _ := loadE2E(t)
	dir := copyDataset(t, ds.Dir)
	path := flowtuple.HourPath(dir, 2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(raw) / 2; i < len(raw)/2+8 && i < len(raw); i++ {
		raw[i] ^= 0xff
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadSnapshot(context.Background(), dir); err == nil {
		t.Fatal("corrupt hour accepted")
	} else if !errors.Is(err, flowtuple.ErrBadFormat) {
		t.Fatalf("corrupt hour error %v does not wrap ErrBadFormat", err)
	}

	// A missing hour is rejected too: serving never starts from a gap.
	dir2 := copyDataset(t, ds.Dir)
	if err := os.Remove(flowtuple.HourPath(dir2, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadSnapshot(context.Background(), dir2); err == nil {
		t.Fatal("missing hour accepted")
	}
}
