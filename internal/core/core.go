// Package core is the library's public surface: it wires the substrates
// into the paper's end-to-end pipeline.
//
//	cfg := core.DefaultConfig(0.02, 42)   // scale, seed
//	ds, _ := core.Generate(cfg, dir)       // synthesize the world + telescope capture
//	res, _ := ds.Analyze(cfg)              // infer, characterize, investigate
//
// Generate builds the synthetic Internet (registry, inventory), renders the
// 143-hour telescope capture, and plants the threat-intelligence and
// malware databases. Analyze replays the paper's methodology over the
// dataset: correlation-based inference of compromised IoT devices
// (Sec. III), traffic characterization (Sec. IV), and maliciousness
// investigation (Sec. V). Every table and figure of the evaluation is
// reachable from the returned Results.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"iotscope/internal/analysis"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
	"iotscope/internal/flowtuple"
	"iotscope/internal/geo"
	"iotscope/internal/malwaredb"
	"iotscope/internal/matview"
	"iotscope/internal/netx"
	"iotscope/internal/pipeline"
	"iotscope/internal/rng"
	"iotscope/internal/scenario"
	"iotscope/internal/threatintel"
	"iotscope/internal/wgen"
)

// Dataset file names.
const (
	ScenarioFile       = "scenario.json"
	InventoryFile      = "inventory.jsonl"
	ThreatFile         = "threat-events.jsonl"
	MalwareReportsFile = "malware-reports.xml"
	MalwareCatalogFile = "malware-catalog.jsonl"
	TruthFile          = "truth.json"
)

// Config tunes generation and analysis.
type Config struct {
	// Scale multiplies populations and aggregate volumes (1.0 = paper
	// magnitudes; experiments default to 0.02).
	Scale float64
	// Seed drives every stochastic choice; identical seeds reproduce
	// byte-identical datasets.
	Seed uint64
	// Hours overrides the 143-hour window (0 keeps it).
	Hours int
	// Workers bounds concurrent hour-file processing during analysis.
	Workers int
	// UseSketches switches per-hour unique-destination counting to
	// HyperLogLog (the telescope-scale mode).
	UseSketches bool
	// ExploreTopPerCategory is the full-scale Sec. V-A explored-device cut
	// (scaled like everything else; the paper used 4,000 per realm).
	ExploreTopPerCategory int
	// Lenient selects the lenient ingestion fault policy: unreadable hour
	// files are quarantined and the rest of the dataset still analyzed.
	// This is the shared knob batch (iotinfer) and watch (iotwatch) modes
	// both derive their correlator from, so the policies cannot drift.
	Lenient bool
	// Shards partitions correlation by source-IP prefix into this many
	// independent shards (power of two; 0 or 1 keeps the single-merger
	// path). The result is byte-identical either way.
	Shards int
	// ShardMemoryBudget bounds one shard's estimated resident bytes during
	// correlation; an over-budget run fails fast (no spill). 0 = unlimited.
	ShardMemoryBudget uint64
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig(scale float64, seed uint64) Config {
	return Config{
		Scale:                 scale,
		Seed:                  seed,
		ExploreTopPerCategory: 4000,
	}
}

// Dataset is a generated (or opened) on-disk world.
type Dataset struct {
	Dir       string
	Scenario  wgen.Scenario
	Inventory *devicedb.Inventory
	Registry  *geo.Registry
	Threat    *threatintel.Repository
	Malware   *malwaredb.DB
	Catalog   *malwaredb.Catalog

	// Truth is the planted ground truth; the analysis never reads it, it
	// exists for validation tooling and the examples.
	Truth wgen.GroundTruth

	// GenStats is populated by Generate (zero when Opened).
	GenStats wgen.RunStats

	// Manifest is the dataset's run provenance (scenario name and version,
	// resolved seed/scale/hours, config hash, generator versions), verified
	// on Open. Nil only for legacy datasets predating provenance stamping.
	Manifest *scenario.RunManifest
}

// Generate synthesizes a complete dataset into dir from the bundled
// paper-default scenario — the library form of the paper's evaluation run.
func Generate(cfg Config, dir string) (*Dataset, error) {
	rs, err := scenario.Resolve(scenario.DefaultName, scenario.Options{
		Scale: cfg.Scale,
		Seed:  cfg.Seed,
		Hours: cfg.Hours,
	})
	if err != nil {
		return nil, err
	}
	return GenerateScenario(cfg, rs, dir)
}

// GenerateScenario synthesizes a complete dataset into dir from a resolved
// scenario, stamping it with the provenance files (scenario-config.json and
// run.json) that Open verifies.
func GenerateScenario(cfg Config, rs *scenario.Resolved, dir string) (*Dataset, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sc := rs.Scenario
	gen, err := wgen.New(sc)
	if err != nil {
		return nil, err
	}
	stats, err := gen.Run(dir)
	if err != nil {
		return nil, fmt.Errorf("core: render traffic: %w", err)
	}

	ds := &Dataset{
		Dir:       dir,
		Scenario:  sc,
		Inventory: gen.Inventory(),
		Registry:  gen.Registry(),
		Truth:     gen.Truth(),
		GenStats:  stats,
		Manifest:  rs.Manifest(),
	}

	// Threat intelligence and malware corpora, biased by ground truth.
	noise := noisePool(gen.Registry(), gen.Inventory(), cfg.Seed, 4096)
	ds.Threat, err = threatintel.Generate(
		threatintel.DefaultGenConfig(), gen.Truth(), gen.Inventory(), noise, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var hashes []string
	ds.Malware, ds.Catalog, hashes, err = malwaredb.Generate(
		malwaredb.DefaultGenConfig(), gen.Truth(), gen.Inventory(), noise, cfg.Seed)
	if err != nil {
		return nil, err
	}
	_ = hashes

	if err := ds.persist(); err != nil {
		return nil, err
	}
	// Provenance goes last: run.json is the commit record, so a dataset
	// carrying it is complete.
	if err := scenario.WriteRunFiles(dir, rs); err != nil {
		return nil, fmt.Errorf("core: stamp provenance: %w", err)
	}
	return ds, nil
}

// noisePool draws deterministic non-inventory addresses for the intel and
// malware generators.
func noisePool(reg *geo.Registry, inv *devicedb.Inventory, seed uint64, n int) []netx.Addr {
	r := rng.New(seed).Derive("core-noise")
	pool := make([]netx.Addr, 0, n)
	nISPs := len(reg.ISPs)
	for len(pool) < n {
		a := reg.RandomAddr(r, r.Intn(nISPs))
		if _, isIoT := inv.LookupIP(a); isIoT {
			continue
		}
		pool = append(pool, a)
	}
	return pool
}

func (ds *Dataset) persist() error {
	scPath := filepath.Join(ds.Dir, ScenarioFile)
	if err := writeJSON(scPath, ds.Scenario); err != nil {
		return err
	}
	if err := ds.Inventory.SaveFile(filepath.Join(ds.Dir, InventoryFile)); err != nil {
		return err
	}
	if err := ds.Threat.SaveFile(filepath.Join(ds.Dir, ThreatFile)); err != nil {
		return err
	}
	if err := ds.Malware.SaveReportsFile(filepath.Join(ds.Dir, MalwareReportsFile)); err != nil {
		return err
	}
	if err := ds.Catalog.SaveFile(filepath.Join(ds.Dir, MalwareCatalogFile)); err != nil {
		return err
	}
	return writeJSON(filepath.Join(ds.Dir, TruthFile), ds.Truth)
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewDecoder(f).Decode(v)
}

// Open loads a previously generated dataset.
func Open(dir string) (*Dataset, error) {
	ds := &Dataset{Dir: dir}
	if err := readJSON(filepath.Join(dir, ScenarioFile), &ds.Scenario); err != nil {
		return nil, fmt.Errorf("core: read scenario: %w", err)
	}
	var err error
	ds.Registry, err = geo.Build(ds.Scenario.Geo, ds.Scenario.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: rebuild registry: %w", err)
	}
	ds.Inventory, err = devicedb.LoadFile(filepath.Join(dir, InventoryFile))
	if err != nil {
		return nil, fmt.Errorf("core: load inventory: %w", err)
	}
	ds.Threat, err = threatintel.LoadFile(filepath.Join(dir, ThreatFile))
	if err != nil {
		return nil, fmt.Errorf("core: load threat repo: %w", err)
	}
	ds.Malware, err = malwaredb.LoadReportsFile(filepath.Join(dir, MalwareReportsFile))
	if err != nil {
		return nil, fmt.Errorf("core: load malware reports: %w", err)
	}
	ds.Catalog, err = malwaredb.LoadCatalogFile(filepath.Join(dir, MalwareCatalogFile))
	if err != nil {
		return nil, fmt.Errorf("core: load malware catalog: %w", err)
	}
	if err := readJSON(filepath.Join(dir, TruthFile), &ds.Truth); err != nil {
		return nil, fmt.Errorf("core: load truth: %w", err)
	}
	m, err := scenario.VerifyDir(dir)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Legacy dataset from before provenance stamping: usable, unstamped.
	case err != nil:
		return nil, fmt.Errorf("core: verify provenance: %w", err)
	default:
		// The manifest must also agree with the dataset it travels with.
		if m.Seed != ds.Scenario.Seed || m.Scale != ds.Scenario.Scale || m.Hours != ds.Scenario.Hours {
			return nil, fmt.Errorf("core: verify provenance: %w: manifest run inputs (seed=%d scale=%v hours=%d) disagree with scenario (seed=%d scale=%v hours=%d)",
				scenario.ErrManifestMismatch, m.Seed, m.Scale, m.Hours,
				ds.Scenario.Seed, ds.Scenario.Scale, ds.Scenario.Hours)
		}
		ds.Manifest = m
	}
	return ds, nil
}

// Results bundles the full analysis output. The Analyzer gives access to
// every per-table/per-figure method; the investigation fields cover Sec. V.
type Results struct {
	Analyzer  *analysis.Analyzer
	Correlate *correlate.Result
	Summary   analysis.CompromisedSummary
	StatTests analysis.StatTests
	Threat    threatintel.Investigation
	Malware   malwaredb.Correlation

	// Views is the materialized read side built by the materialize stage:
	// every aggregate the serving layer answers from, precomputed once per
	// analysis. Excluded from JSON because it is derived state — two
	// Results are equivalent iff the fields above are.
	Views *matview.Views `json:"-"`
}

// Stage names of the analysis pipeline, in run order. Every tool that
// drives the engine reports these names in its -stage-report output.
const (
	StageCorrelate    = "correlate"
	StageCharacterize = "characterize"
	StageStatTests    = "stat-tests"
	StageThreatIntel  = "threat-intel"
	StageMalware      = "malware"
	StageMaterialize  = "materialize"
)

// Stage names of the snapshot-load pipeline (see LoadSnapshot), plus the
// store stages iotinfer -save and -snapshot loading add around it.
const (
	StageOpen      = "open"
	StageLoadStore = "load-store"
	StageVerify    = "verify"
	StageLoad      = "analyze"
	StageSaveStore = "save-store"
)

// CorrelatorOptions derives the correlate.Options for this configuration —
// the single place batch, watch, and serving modes get their correlator
// wiring from.
func (cfg Config) CorrelatorOptions() correlate.Options {
	opts := correlate.Options{
		Workers:           cfg.Workers,
		UseSketches:       cfg.UseSketches,
		Shards:            cfg.Shards,
		ShardMemoryBudget: cfg.ShardMemoryBudget,
	}
	if cfg.Lenient {
		opts.FaultPolicy = correlate.Lenient
	}
	return opts
}

// NewIncremental returns an incremental correlator over the dataset's
// inventory, sized for the scenario's hour window and configured exactly
// like batch analysis (see Config.CorrelatorOptions).
func (ds *Dataset) NewIncremental(cfg Config) (*correlate.Incremental, error) {
	maxHours := ds.Scenario.Hours
	if maxHours <= 0 {
		maxHours = 24 * 365
	}
	return correlate.New(ds.Inventory, cfg.CorrelatorOptions()).NewIncremental(maxHours)
}

// classifyIngestErr refines the stage's error class with the correlate
// fault taxonomy; context errors keep the engine's own classification.
func classifyIngestErr(m *pipeline.StageMetrics, err error) {
	switch {
	case err == nil, errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
	case correlate.IsRetryable(err):
		m.ErrorClass = "retryable"
	case errors.Is(err, flowtuple.ErrBadFormat):
		m.ErrorClass = "corrupt"
	}
}

// AnalysisStages returns the paper's pipeline as named stages — correlate
// → characterize → stat-tests → threat-intel → malware — writing into out
// as they run. Every cmd and LoadSnapshot composes these same stages, so
// there is exactly one wiring of the analysis path.
func (ds *Dataset) AnalysisStages(cfg Config, out *Results) []pipeline.Stage {
	return append([]pipeline.Stage{ds.correlateStage(cfg, out)}, ds.DownstreamStages(cfg, out)...)
}

// correlateStage is the inference stage proper: stream the dataset's hour
// files through the correlator into out.Correlate. With Shards > 1 the run
// goes through the prefix-partitioned path and every shard attaches its own
// metrics record (correlate/shard-K) under the stage's row.
func (ds *Dataset) correlateStage(cfg Config, out *Results) pipeline.Stage {
	return pipeline.Func(StageCorrelate, func(ctx context.Context, st *pipeline.State) error {
		corr := correlate.New(ds.Inventory, cfg.CorrelatorOptions())
		var (
			res *correlate.Result
			err error
		)
		if cfg.Shards > 1 {
			var reports []correlate.ShardReport
			res, reports, err = corr.ProcessDatasetSharded(ctx, ds.Dir)
			for _, r := range reports {
				sm := pipeline.Attach(ctx, fmt.Sprintf("%s/shard-%d", StageCorrelate, r.Shard))
				sm.RecordsIn = r.Records
				sm.RecordsOut = uint64(r.Devices)
				sm.Note = fmt.Sprintf("iot=%d retained=%dB", r.RecordsIoT, r.RetainedBytes)
			}
		} else {
			res, err = corr.ProcessDataset(ctx, ds.Dir)
		}
		if err != nil {
			classifyIngestErr(pipeline.Meter(ctx), err)
			return fmt.Errorf("core: correlate: %w", err)
		}
		m := pipeline.Meter(ctx)
		var iot uint64
		for i := range res.Hourly {
			iot += res.Hourly[i].RecordsIoT
		}
		m.RecordsIn = res.Background.Records + iot
		m.RecordsOut = uint64(len(res.Devices))
		m.Retries = res.Ingest.HoursRetried
		m.QuarantinedHours = res.Ingest.HoursQuarantined
		out.Correlate = res
		return nil
	})
}

// DownstreamStages returns the analysis stages that consume an already
// materialized correlation result (out.Correlate must be set before they
// run) — characterize → stat-tests → threat-intel → malware. The
// store-loading path composes these without the correlate stage: a loaded
// snapshot replaces the inference, not the investigation.
func (ds *Dataset) DownstreamStages(cfg Config, out *Results) []pipeline.Stage {
	return []pipeline.Stage{
		pipeline.Func(StageCharacterize, func(ctx context.Context, st *pipeline.State) error {
			an := analysis.New(out.Correlate, ds.Inventory, ds.Registry)
			out.Analyzer = an
			out.Summary = an.Summary()
			m := pipeline.Meter(ctx)
			m.RecordsIn = uint64(len(out.Correlate.Devices))
			m.RecordsOut = uint64(out.Summary.Total)
			return nil
		}),
		pipeline.Func(StageStatTests, func(ctx context.Context, st *pipeline.State) error {
			var err error
			out.StatTests, err = out.Analyzer.RunStatTests(ctx)
			if err != nil {
				return fmt.Errorf("core: stat tests: %w", err)
			}
			return nil
		}),
		pipeline.Func(StageThreatIntel, func(ctx context.Context, st *pipeline.State) error {
			// Sec. V-A: threat-repository correlation, cut scaled like the
			// paper.
			topCut := cfg.ExploreTopPerCategory
			if topCut <= 0 {
				topCut = 4000
			}
			scaled := int(float64(topCut)*ds.Scenario.Scale + 0.5)
			if scaled < 10 {
				scaled = 10
			}
			var err error
			out.Threat, err = threatintel.Investigate(ctx,
				threatintel.InvestigateConfig{TopPerCategory: scaled},
				out.Correlate, ds.Inventory, ds.Threat)
			if err != nil {
				return fmt.Errorf("core: threat intel: %w", err)
			}
			m := pipeline.Meter(ctx)
			m.RecordsIn = uint64(out.Threat.Explored)
			m.RecordsOut = uint64(len(out.Threat.Flagged))
			return nil
		}),
		pipeline.Func(StageMalware, func(ctx context.Context, st *pipeline.State) error {
			// Sec. V-B: malware-database correlation over every inferred
			// device.
			ips := make(map[int]netx.Addr, len(out.Correlate.Devices))
			for id := range out.Correlate.Devices {
				ips[id] = ds.Inventory.At(id).IP
			}
			var err error
			out.Malware, err = ds.Malware.Correlate(ctx, ips, ds.Catalog)
			if err != nil {
				return fmt.Errorf("core: malware correlate: %w", err)
			}
			m := pipeline.Meter(ctx)
			m.RecordsIn = uint64(len(ips))
			m.RecordsOut = uint64(len(out.Malware.MatchedDevices))
			return nil
		}),
		pipeline.Func(StageMaterialize, func(ctx context.Context, st *pipeline.State) error {
			// Read-side materialization: precompute every aggregate the
			// serving layer answers from, so request cost is O(answer)
			// regardless of dataset size (see internal/matview).
			v, err := matview.Build(matview.Sources{
				Result:    out.Correlate,
				Analyzer:  out.Analyzer,
				Summary:   out.Summary,
				StatTests: out.StatTests,
				Malware:   out.Malware,
				Inventory: ds.Inventory,
				Registry:  ds.Registry,
				Threat:    ds.Threat,
			})
			if err != nil {
				return fmt.Errorf("core: materialize: %w", err)
			}
			out.Views = v
			vs := v.Stats()
			m := pipeline.Meter(ctx)
			m.RecordsIn = uint64(len(out.Correlate.Devices))
			m.RecordsOut = uint64(v.NumDevices())
			m.Note = fmt.Sprintf("digest=%s static=%dB build=%.1fms",
				vs.Digest, vs.StaticBytes, vs.BuildMillis)
			return nil
		}),
	}
}

// AnalyzeStaged runs the paper's pipeline over the dataset through the
// staged engine, returning the per-stage report alongside the results. The
// report is returned even on failure — it records which stage stopped the
// run and why.
func (ds *Dataset) AnalyzeStaged(ctx context.Context, cfg Config) (*Results, *pipeline.Report, error) {
	out := &Results{}
	rep, err := pipeline.New("analyze", ds.AnalysisStages(cfg, out)...).Run(ctx, nil)
	if err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}

// Analyze runs the paper's pipeline over the dataset. It is the
// non-cancellable convenience form of AnalyzeStaged.
func (ds *Dataset) Analyze(cfg Config) (*Results, error) {
	res, _, err := ds.AnalyzeStaged(context.Background(), cfg)
	return res, err
}
