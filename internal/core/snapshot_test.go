package core

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"iotscope/internal/faultfs"
	"iotscope/internal/pipeline"
	"iotscope/internal/resultstore"
)

// saveE2ESnapshot persists the shared fixture's correlation state and
// returns the store path.
func saveE2ESnapshot(t *testing.T, res *Results) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snapshot.irs")
	if err := SaveSnapshot(path, res); err != nil {
		t.Fatal(err)
	}
	return path
}

// A valid store short-circuits inference: the loaded pair is byte-identical
// to the analyzed one, the verify and correlate stages are skipped/absent,
// and provenance names the store.
func TestLoadSnapshotFromStore(t *testing.T) {
	ds, res := loadE2E(t)
	store := saveE2ESnapshot(t, res)

	ds2, res2, prov, rep, err := LoadSnapshotOpts(context.Background(), ds.Dir, LoadOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if prov.Source != "store" || prov.StorePath != store || prov.CodecVersion != resultstore.Version {
		t.Fatalf("provenance = %+v, want store provenance", prov)
	}
	if prov.Fallback != "" {
		t.Fatalf("unexpected fallback: %q", prov.Fallback)
	}
	if ds2.Scenario.Hours != ds.Scenario.Hours {
		t.Fatalf("hours %d != %d", ds2.Scenario.Hours, ds.Scenario.Hours)
	}
	if !reflect.DeepEqual(res.Correlate, res2.Correlate) {
		t.Fatal("store-loaded correlation differs from the analyzed original")
	}
	if res2.Summary.Total != res.Summary.Total {
		t.Fatalf("summary diverged: %d != %d", res2.Summary.Total, res.Summary.Total)
	}
	if m := rep.Stage(StageLoadStore); m == nil || m.Status != pipeline.StatusOK {
		t.Fatalf("load-store stage = %+v, want ok", m)
	}
	if m := rep.Stage(StageVerify); m == nil || m.Status != pipeline.StatusSkipped {
		t.Fatalf("verify stage = %+v, want skipped", m)
	}
	if m := rep.Stage(StageCorrelate); m != nil {
		t.Fatalf("correlate ran despite store load: %+v", m)
	}
	for _, name := range []string{StageCharacterize, StageStatTests, StageThreatIntel, StageMalware} {
		if m := rep.Stage(name); m == nil || m.Status != pipeline.StatusOK {
			t.Fatalf("stage %q = %+v, want ok", name, m)
		}
	}
}

// A corrupt store must never take the load down: it falls back to raw
// analysis with the choice surfaced in provenance and the stage report.
func TestLoadSnapshotStoreFallback(t *testing.T) {
	ds, res := loadE2E(t)
	store := saveE2ESnapshot(t, res)
	if err := faultfs.BitFlip(store, 40, 0x20); err != nil {
		t.Fatal(err)
	}

	_, res2, prov, rep, err := LoadSnapshotOpts(context.Background(), ds.Dir, LoadOptions{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if prov.Source != "analyze" || prov.Fallback == "" {
		t.Fatalf("provenance = %+v, want analyze with fallback reason", prov)
	}
	if m := rep.Stage(StageLoadStore); m == nil || m.Status != pipeline.StatusSkipped {
		t.Fatalf("load-store stage = %+v, want skipped", m)
	} else if m.ErrorClass != "corrupt" {
		t.Fatalf("load-store errorClass = %q, want corrupt", m.ErrorClass)
	}
	for _, name := range []string{StageVerify, StageCorrelate} {
		if m := rep.Stage(name); m == nil || m.Status != pipeline.StatusOK {
			t.Fatalf("stage %q = %+v, want ok (full analysis fallback)", name, m)
		}
	}
	if !reflect.DeepEqual(res.Correlate, res2.Correlate) {
		t.Fatal("fallback analysis diverged from original")
	}
}

// RequireStore turns the fallback into a failure — the hot-reload
// contract: a bad artifact keeps the old snapshot, it never triggers a
// surprise full re-analysis inside the reload deadline.
func TestLoadSnapshotRequireStore(t *testing.T) {
	ds, res := loadE2E(t)
	store := saveE2ESnapshot(t, res)
	if err := faultfs.TruncateTail(store, 30); err != nil {
		t.Fatal(err)
	}
	_, _, _, rep, err := LoadSnapshotOpts(context.Background(), ds.Dir,
		LoadOptions{Store: store, RequireStore: true})
	if err == nil {
		t.Fatal("truncated store accepted under RequireStore")
	}
	if !errors.Is(err, resultstore.ErrTruncated) {
		t.Fatalf("error %v does not wrap resultstore.ErrTruncated", err)
	}
	if m := rep.Stage(StageLoadStore); m == nil || m.Status != pipeline.StatusFailed {
		t.Fatalf("load-store stage = %+v, want failed", m)
	} else if m.ErrorClass != "retryable" {
		t.Fatalf("load-store errorClass = %q, want retryable", m.ErrorClass)
	}
}

// A store that decodes cleanly but belongs to a different world is stale,
// and staleness is permanent.
func TestOpenSnapshotStale(t *testing.T) {
	ds, res := loadE2E(t)
	store := saveE2ESnapshot(t, res)

	other := *ds
	other.Scenario.Hours = ds.Scenario.Hours + 1
	_, err := other.OpenSnapshot(store)
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("hour-span mismatch error = %v, want ErrSnapshotMismatch", err)
	}
	if resultstore.IsRetryable(err) {
		t.Fatal("stale snapshot classified retryable")
	}
	if got := storeErrClass(err); got != "stale" {
		t.Fatalf("storeErrClass = %q, want stale", got)
	}
}
