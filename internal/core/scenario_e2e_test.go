package core

import (
	"math/bits"
	"testing"

	"iotscope/internal/classify"
	"iotscope/internal/correlate"
	"iotscope/internal/netx"
	"iotscope/internal/notify"
	"iotscope/internal/scenario"
)

// genScenario renders a bundled scenario at test scale and runs the full
// analysis pipeline over it.
func genScenario(t *testing.T, ref string, scale float64, seed uint64, hours int) (*Dataset, *Results) {
	t.Helper()
	rs, err := scenario.Resolve(ref, scenario.Options{Scale: scale, Seed: seed, Hours: hours})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(scale, seed)
	cfg.Hours = hours
	ds, err := GenerateScenario(cfg, rs, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Manifest == nil || ds.Manifest.ConfigHash != rs.ConfigHash {
		t.Fatalf("dataset manifest not stamped: %+v", ds.Manifest)
	}
	res, err := ds.Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds, res
}

// cohort returns the planted member IDs for an extension kind.
func cohort(t *testing.T, ds *Dataset, kind string) []int {
	t.Helper()
	ids := ds.Truth.Cohorts[kind]
	if len(ids) == 0 {
		t.Fatalf("scenario planted no %q cohort", kind)
	}
	return ids
}

// detectedFrac returns the fraction of ids the correlator inferred.
func detectedFrac(res *correlate.Result, ids []int) float64 {
	hit := 0
	for _, id := range ids {
		if _, ok := res.Devices[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(ids))
}

// The Mirai-style wave: the cohort is recovered scanning telnet, infections
// spread over the ramp instead of arriving at once, and early bots churn
// out before the window ends.
func TestScenarioMiraiWave(t *testing.T) {
	ds, res := genScenario(t, "mirai-wave", 0.004, 11, 48)
	bots := cohort(t, ds, "mirai-wave")
	if f := detectedFrac(res.Correlate, bots); f < 0.8 {
		t.Fatalf("only %.0f%% of the wave detected", 100*f)
	}
	agg := res.Correlate.TCPScanPorts[23]
	if agg == nil || agg.Packets == 0 {
		t.Fatal("no telnet scanning recovered")
	}
	first, last := 1<<30, -1
	churned := 0
	for _, id := range bots {
		d, ok := res.Correlate.Devices[id]
		if !ok {
			continue
		}
		if d.Packets[classify.ScanTCP.Index()] == 0 {
			t.Fatalf("bot %d detected without TCP scanning", id)
		}
		if d.FirstSeen < first {
			first = d.FirstSeen
		}
		if d.FirstSeen > last {
			last = d.FirstSeen
		}
		// A bot inactive on the second day churned out of the botnet.
		if d.DayMask == 1 {
			churned++
		}
	}
	if last-first < 10 {
		t.Fatalf("infections not spread over the ramp: first seen %d..%d", first, last)
	}
	if churned == 0 {
		t.Fatal("no bot churned out before the window ended")
	}
}

// UDP amplification: reflectors are recovered as UDP-only sources — they
// reflect, they do not scan.
func TestScenarioUDPAmplification(t *testing.T) {
	ds, res := genScenario(t, "udp-amplification", 0.004, 11, 24)
	refl := cohort(t, ds, "udp-amplification")
	if f := detectedFrac(res.Correlate, refl); f < 0.8 {
		t.Fatalf("only %.0f%% of reflectors detected", 100*f)
	}
	for _, id := range refl {
		d, ok := res.Correlate.Devices[id]
		if !ok {
			continue
		}
		if d.Packets[classify.UDP.Index()] == 0 {
			t.Fatalf("reflector %d detected without UDP traffic", id)
		}
		if d.Packets[classify.ScanTCP.Index()] != 0 {
			t.Fatalf("reflector %d attributed TCP scanning", id)
		}
	}
}

// The stealth scan: detection must see the cohort, notification must not
// page on it — sub-threshold devices stay out of every abuse bundle while
// the loud baseline still produces reports.
func TestScenarioStealthScan(t *testing.T) {
	ds, res := genScenario(t, "stealth-scan", 0.004, 11, 24)
	scanners := cohort(t, ds, "stealth-scan")
	if f := detectedFrac(res.Correlate, scanners); f < 0.8 {
		t.Fatalf("only %.0f%% of stealth scanners detected", 100*f)
	}
	agg := res.Correlate.TCPScanPorts[8291]
	if agg == nil || agg.Packets == 0 {
		t.Fatal("no Winbox probing recovered")
	}
	inCohort := make(map[int]bool, len(scanners))
	var maxCohortPackets uint64
	for _, id := range scanners {
		inCohort[id] = true
		if d, ok := res.Correlate.Devices[id]; ok && d.TotalPackets() > maxCohortPackets {
			maxCohortPackets = d.TotalPackets()
		}
	}
	floor := uint64(500)
	if maxCohortPackets >= floor {
		t.Fatalf("cohort not sub-threshold: loudest emits %d >= floor %d", maxCohortPackets, floor)
	}
	bundles := notify.Build(res.Correlate, ds.Inventory, ds.Registry, nil,
		notify.Config{MinDevices: 1, MinPackets: floor})
	if len(bundles) == 0 {
		t.Fatal("noise floor silenced the loud baseline too")
	}
	for _, b := range bundles {
		for _, d := range b.Devices {
			if inCohort[d.Device] {
				t.Fatalf("stealth scanner %d paged to %s despite the %d-packet floor", d.Device, b.ISP, floor)
			}
		}
	}
}

// The CPS campaign: industrial ports are scanned by CPS devices, inside the
// configured window and not before it.
func TestScenarioCPSCampaign(t *testing.T) {
	ds, res := genScenario(t, "cps-campaign", 0.004, 11, 48)
	devs := cohort(t, ds, "cps-campaign")
	if f := detectedFrac(res.Correlate, devs); f < 0.8 {
		t.Fatalf("only %.0f%% of the campaign detected", 100*f)
	}
	for _, port := range []uint16{502, 47808} {
		agg := res.Correlate.TCPScanPorts[port]
		if agg == nil || agg.Packets == 0 {
			t.Fatalf("no scanning recovered on industrial port %d", port)
		}
		if len(agg.DevicesCPS) == 0 {
			t.Fatalf("port %d scanning not attributed to CPS devices", port)
		}
		var before, during uint64
		for ph, n := range res.Correlate.TCPPortHour {
			if ph.Port != port {
				continue
			}
			if int(ph.Hour) < 30 {
				before += n
			} else {
				during += n
			}
		}
		if during == 0 {
			t.Fatalf("port %d carries no packets inside the campaign window", port)
		}
		if before > during/10 {
			t.Fatalf("port %d not window-bound: %d packets before hour 30, %d after", port, before, during)
		}
	}
}

// Smart-home diurnal chatter is pure background: it raises the discarded
// background volume and changes nothing about the inferred device set.
func TestScenarioSmartHomeDiurnal(t *testing.T) {
	ds, res := genScenario(t, "smart-home-diurnal", 0.002, 11, 24)
	truth := make(map[int]bool, len(ds.Truth.Compromised))
	for _, id := range ds.Truth.Compromised {
		truth[id] = true
	}
	for id := range res.Correlate.Devices {
		if !truth[id] {
			t.Fatalf("diurnal noise inferred as device %d", id)
		}
	}

	// The same scenario with the diurnal block stripped: the inferred set
	// must be identical, the background strictly smaller.
	cfg, err := scenario.Load("smart-home-diurnal")
	if err != nil {
		t.Fatal(err)
	}
	var kept []int
	for i, a := range cfg.Actors {
		if a.Kind != "diurnal-background" {
			kept = append(kept, i)
		}
	}
	if len(kept) == len(cfg.Actors) {
		t.Fatal("scenario carries no diurnal block to strip")
	}
	stripped := *cfg
	stripped.Actors = nil
	for _, i := range kept {
		stripped.Actors = append(stripped.Actors, cfg.Actors[i])
	}
	rs, err := scenario.ResolveConfig(&stripped, scenario.Options{Scale: 0.002, Seed: 11, Hours: 24})
	if err != nil {
		t.Fatal(err)
	}
	flatCfg := DefaultConfig(0.002, 11)
	flatCfg.Hours = 24
	flatDS, err := GenerateScenario(flatCfg, rs, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	flatRes, err := flatDS.Analyze(flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correlate.Background.Records <= flatRes.Correlate.Background.Records {
		t.Fatalf("diurnal chatter did not raise background volume: %d vs %d",
			res.Correlate.Background.Records, flatRes.Correlate.Background.Records)
	}
	if len(res.Correlate.Devices) != len(flatRes.Correlate.Devices) {
		t.Fatalf("diurnal noise changed the inferred device count: %d vs %d",
			len(res.Correlate.Devices), len(flatRes.Correlate.Devices))
	}
	for id := range flatRes.Correlate.Devices {
		if _, ok := res.Correlate.Devices[id]; !ok {
			t.Fatalf("device %d lost under diurnal noise", id)
		}
	}
}

// Sub-telescope variants: the full paper workload stays recoverable from a
// /16 and a /24 vantage — including the planted DoS victims.
func TestScenarioSubTelescopes(t *testing.T) {
	cases := []struct {
		ref    string
		prefix string
	}{
		{"telescope-16", "44.0.0.0/16"},
		{"telescope-24", "44.0.0.0/24"},
	}
	for _, tc := range cases {
		t.Run(tc.ref, func(t *testing.T) {
			ds, res := genScenario(t, tc.ref, 0.004, 11, 12)
			if got := ds.Scenario.Geo.DarkPrefix; got != netx.MustParsePrefix(tc.prefix) {
				t.Fatalf("telescope is %v, want %s", got, tc.prefix)
			}
			if len(res.Correlate.Devices) == 0 {
				t.Fatal("nothing inferred through the sub-telescope")
			}
			// cn-ethip-1 floods during hours 6-8 of the window.
			victim, ok := ds.Truth.EventVictims["cn-ethip-1"]
			if !ok {
				t.Fatal("truth lost the cn-ethip-1 victim")
			}
			d, ok := res.Correlate.Devices[victim]
			if !ok {
				t.Fatalf("DoS victim %d not recovered", victim)
			}
			bs := d.Packets[classify.Backscatter.Index()]
			if bs == 0 {
				t.Fatalf("victim %d carries no backscatter", victim)
			}
			var inEvent uint64
			for h, n := range d.BackscatterHourly {
				if h >= 6 && h <= 8 {
					inEvent += n
				}
			}
			if inEvent == 0 {
				t.Fatal("victim backscatter not attributed to the event hours")
			}
			// The victim must appear on multiple days only if the window has
			// them; a 12-hour run is a single day.
			if bits.OnesCount64(d.DayMask) != 1 {
				t.Fatalf("unexpected day mask %b for a 12-hour window", d.DayMask)
			}
		})
	}
}
