package core

import (
	"context"
	"fmt"

	"iotscope/internal/flowtuple"
	"iotscope/internal/pipeline"
)

// VerifyHours replays every hour file of the dataset end to end with
// flowtuple.Verify (header, framing, footer count, gzip checksum) and
// returns the first failure, wrapped with its hour. This is the
// validation gate hot reload runs before committing to a snapshot: a
// dataset that fails verification must never replace one that serves.
// Cancellation is checked between hour files.
func (ds *Dataset) VerifyHours(ctx context.Context) error {
	for h := 0; h < ds.Scenario.Hours; h++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := flowtuple.Verify(flowtuple.HourPath(ds.Dir, h)); err != nil {
			return fmt.Errorf("core: verify hour %d: %w", h, err)
		}
	}
	return nil
}

// LoadSnapshot opens the dataset at dir, verifies every hour file, and
// runs the full analysis with the dataset's own scale/seed configuration —
// all as stages of a "load-snapshot" pipeline. It is the no-store
// convenience form of LoadSnapshotOpts: nothing is returned unless the
// whole dataset read cleanly and analyzed, so a caller can atomically swap
// the pair in without ever serving a half-loaded world; iotserve runs this
// under its reload deadline, and a deadline hit surfaces as ctx.Err(). The
// report is returned even on failure and records which stage stopped the
// load.
func LoadSnapshot(ctx context.Context, dir string) (*Dataset, *Results, *pipeline.Report, error) {
	ds, res, _, rep, err := LoadSnapshotOpts(ctx, dir, LoadOptions{})
	return ds, res, rep, err
}
