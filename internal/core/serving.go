package core

import (
	"fmt"

	"iotscope/internal/flowtuple"
)

// VerifyHours replays every hour file of the dataset end to end with
// flowtuple.Verify (header, framing, footer count, gzip checksum) and
// returns the first failure, wrapped with its hour. This is the
// validation gate hot reload runs before committing to a snapshot: a
// dataset that fails verification must never replace one that serves.
func (ds *Dataset) VerifyHours() error {
	for h := 0; h < ds.Scenario.Hours; h++ {
		if _, err := flowtuple.Verify(flowtuple.HourPath(ds.Dir, h)); err != nil {
			return fmt.Errorf("core: verify hour %d: %w", h, err)
		}
	}
	return nil
}

// LoadSnapshot opens the dataset at dir, verifies every hour file, and
// runs the full analysis with the dataset's own scale/seed configuration.
// It is the one-call snapshot loader for serving: nothing is returned
// unless the whole dataset read cleanly and analyzed, so a caller can
// atomically swap the pair in without ever serving a half-loaded world.
func LoadSnapshot(dir string) (*Dataset, *Results, error) {
	ds, err := Open(dir)
	if err != nil {
		return nil, nil, err
	}
	if err := ds.VerifyHours(); err != nil {
		return nil, nil, err
	}
	cfg := DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
	res, err := ds.Analyze(cfg)
	if err != nil {
		return nil, nil, err
	}
	return ds, res, nil
}
