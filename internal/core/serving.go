package core

import (
	"context"
	"fmt"

	"iotscope/internal/flowtuple"
	"iotscope/internal/pipeline"
)

// VerifyHours replays every hour file of the dataset end to end with
// flowtuple.Verify (header, framing, footer count, gzip checksum) and
// returns the first failure, wrapped with its hour. This is the
// validation gate hot reload runs before committing to a snapshot: a
// dataset that fails verification must never replace one that serves.
// Cancellation is checked between hour files.
func (ds *Dataset) VerifyHours(ctx context.Context) error {
	for h := 0; h < ds.Scenario.Hours; h++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := flowtuple.Verify(flowtuple.HourPath(ds.Dir, h)); err != nil {
			return fmt.Errorf("core: verify hour %d: %w", h, err)
		}
	}
	return nil
}

// LoadSnapshot opens the dataset at dir, verifies every hour file, and
// runs the full analysis with the dataset's own scale/seed configuration —
// all as stages of a "load-snapshot" pipeline (open → verify → analyze,
// the last expanding into the AnalysisStages). Nothing is returned unless
// the whole dataset read cleanly and analyzed, so a caller can atomically
// swap the pair in without ever serving a half-loaded world; iotserve runs
// this under its reload deadline, and a deadline hit surfaces as
// ctx.Err(). The report is returned even on failure and records which
// stage stopped the load.
func LoadSnapshot(ctx context.Context, dir string) (*Dataset, *Results, *pipeline.Report, error) {
	var ds *Dataset
	res := &Results{}
	rep, err := pipeline.New("load-snapshot",
		pipeline.Func(StageOpen, func(ctx context.Context, st *pipeline.State) error {
			var err error
			ds, err = Open(dir)
			return err
		}),
		pipeline.Func(StageVerify, func(ctx context.Context, st *pipeline.State) error {
			m := pipeline.Meter(ctx)
			m.RecordsIn = uint64(ds.Scenario.Hours)
			err := ds.VerifyHours(ctx)
			classifyIngestErr(m, err)
			return err
		}),
		// The analysis sequence is composed at run time: the dataset (and
		// with it the stage closures) only exists once "open" has run.
		pipeline.Func(StageLoad, func(ctx context.Context, st *pipeline.State) error {
			cfg := DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
			return pipeline.Sequence("analysis", ds.AnalysisStages(cfg, res)...).Run(ctx, st)
		}),
	).Run(ctx, nil)
	if err != nil {
		return nil, nil, rep, err
	}
	return ds, res, rep, nil
}
