package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"iotscope/internal/analysis"
	"iotscope/internal/correlate"
	"iotscope/internal/netx"
	"iotscope/internal/threatintel"
)

// analyzeUnstaged is the pre-refactor Analyze body, preserved verbatim
// (modulo the context parameters the substrates now require) as the golden
// oracle: the staged engine must produce byte-identical Results.
func analyzeUnstaged(ds *Dataset, cfg Config) (*Results, error) {
	corr := correlate.New(ds.Inventory, cfg.CorrelatorOptions())
	res, err := corr.ProcessDataset(context.Background(), ds.Dir)
	if err != nil {
		return nil, fmt.Errorf("core: correlate: %w", err)
	}
	an := analysis.New(res, ds.Inventory, ds.Registry)

	out := &Results{
		Analyzer:  an,
		Correlate: res,
		Summary:   an.Summary(),
	}
	out.StatTests, err = an.RunStatTests(context.Background())
	if err != nil {
		return nil, fmt.Errorf("core: stat tests: %w", err)
	}

	topCut := cfg.ExploreTopPerCategory
	if topCut <= 0 {
		topCut = 4000
	}
	scaled := int(float64(topCut)*ds.Scenario.Scale + 0.5)
	if scaled < 10 {
		scaled = 10
	}
	out.Threat, err = threatintel.Investigate(context.Background(),
		threatintel.InvestigateConfig{TopPerCategory: scaled},
		res, ds.Inventory, ds.Threat)
	if err != nil {
		return nil, fmt.Errorf("core: threat intel: %w", err)
	}

	ips := make(map[int]netx.Addr, len(res.Devices))
	for id := range res.Devices {
		ips[id] = ds.Inventory.At(id).IP
	}
	out.Malware, err = ds.Malware.Correlate(context.Background(), ips, ds.Catalog)
	if err != nil {
		return nil, fmt.Errorf("core: malware correlate: %w", err)
	}
	return out, nil
}

// TestStagedAnalyzeEquivalence proves the staged pipeline refactor changed
// no numbers: across fault policies and worker counts, the engine's
// Results marshal to the same bytes as the pre-refactor monolith's.
func TestStagedAnalyzeEquivalence(t *testing.T) {
	dir := t.TempDir()
	gen := DefaultConfig(0.005, 42)
	ds, err := Generate(gen, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, lenient := range []bool{false, true} {
		for _, workers := range []int{1, 8} {
			name := fmt.Sprintf("lenient=%v/workers=%d", lenient, workers)
			t.Run(name, func(t *testing.T) {
				cfg := DefaultConfig(0.005, 42)
				cfg.Lenient = lenient
				cfg.Workers = workers

				want, err := analyzeUnstaged(ds, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, rep, err := ds.AnalyzeStaged(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}

				wantJSON, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				gotJSON, err := json.Marshal(got)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wantJSON, gotJSON) {
					t.Fatalf("staged Results differ from pre-refactor oracle\nstaged:  %d bytes\noracle:  %d bytes\nfirst divergence at byte %d",
						len(gotJSON), len(wantJSON), firstDiff(wantJSON, gotJSON))
				}

				// The report must name the five analysis stages, all ok.
				for _, stage := range []string{StageCorrelate, StageCharacterize,
					StageStatTests, StageThreatIntel, StageMalware} {
					m := rep.Stage(stage)
					if m == nil || m.Status != "ok" {
						t.Fatalf("stage %q = %+v, want ok", stage, m)
					}
				}
			})
		}
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
