// Package resultstore persists analyzed correlation state as a versioned,
// CRC-guarded binary artifact — the durable form of a correlate.Result
// (snapshot) or a correlate.CheckpointExport (incremental checkpoint).
//
// The format mirrors the flowtuple hour-file discipline: a magic/version
// header, per-section framing with independent CRC32 guards, a footer that
// commits the section count and a digest over the section checksums, and
// atomic `.tmp`+rename writes so a reader never observes a half-written
// store. The fault taxonomy mirrors flowtuple's too: ErrTruncated (the file
// ends early — possibly still being written, retryable) wraps ErrBadFormat
// (structural corruption, permanent), and fs.ErrNotExist passes through,
// so one IsRetryable covers the producer-not-done-yet cases.
//
// File layout (all integers little-endian):
//
//	header   "IRST" | version u8 | kind u8 | reserved u16=0 | hours u32 | reserved u32=0
//	section  tag u8 | payloadLen u32 | crc32(payload) u32 | payload
//	footer   tag 0 | sectionCount u32 | crc32(concatenated section CRCs) u32
//
// followed by mandatory EOF. Unknown tags, duplicate sections, CRC or
// count mismatches, reserved bits set, and trailing bytes are all
// ErrBadFormat; a clean end-of-data inside a frame is ErrTruncated.
package resultstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"

	"iotscope/internal/classify"
	"iotscope/internal/correlate"
)

const (
	magic = "IRST"
	// Version is the current codec version. Readers reject anything newer;
	// older versions would be migrated here when the format evolves.
	Version = 1
)

// Kind distinguishes the two artifact flavors sharing the container.
type Kind uint8

const (
	// KindResult is a finalized batch snapshot (iotinfer -save).
	KindResult Kind = 1
	// KindCheckpoint is a resumable incremental state (iotwatch).
	KindCheckpoint Kind = 2
)

func (k Kind) String() string {
	switch k {
	case KindResult:
		return "result"
	case KindCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrBadFormat indicates a corrupt, truncated, or foreign store file.
var ErrBadFormat = errors.New("resultstore: bad store format")

// ErrTruncated indicates a file that ends before its footer: intact as far
// as it goes but incomplete — against a non-atomic producer, the signature
// of a store still being written. It wraps ErrBadFormat, so
// errors.Is(err, ErrBadFormat) still holds.
var ErrTruncated = fmt.Errorf("resultstore: truncated: %w", ErrBadFormat)

// IsRetryable reports whether a load failure may resolve on its own: the
// store ends early (a producer may still be writing it) or does not exist
// yet. Structural corruption is permanent.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrTruncated) || errors.Is(err, fs.ErrNotExist)
}

func badf(format string, args ...any) error {
	return fmt.Errorf("resultstore: "+format+": %w", append(args, ErrBadFormat)...)
}

// Section tags.
const (
	secFooter     = 0
	secMeta       = 1
	secHourly     = 2
	secDevices    = 3
	secUDP        = 4
	secTCP        = 5
	secPortHour   = 6
	secFaults     = 7
	secCheckpoint = 8
)

const headerLen = 4 + 1 + 1 + 2 + 4 + 4

// Info summarizes a verified store file.
type Info struct {
	Kind     Kind
	Version  int
	Hours    int
	Sections int
	Size     int64
}

// WriteResult encodes the finalized Result as a KindResult store at path,
// atomically (written to path+".tmp", synced, then renamed).
func WriteResult(path string, res *correlate.Result) error {
	if res == nil {
		return errors.New("resultstore: nil result")
	}
	return writeAtomic(path, encode(KindResult, res.Export(), nil))
}

// ReadResult decodes a KindResult store and rebuilds the live Result.
// Every guard is checked before anything is returned; a failure is
// classified by the package taxonomy (ErrTruncated retryable,
// ErrBadFormat permanent, fs.ErrNotExist passed through).
func ReadResult(path string) (*correlate.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	re, _, _, err := decode(data, KindResult)
	if err != nil {
		return nil, err
	}
	res, err := re.Result()
	if err != nil {
		return nil, badf("invalid result payload: %v", err)
	}
	return res, nil
}

// WriteCheckpoint encodes an incremental checkpoint as a KindCheckpoint
// store at path, atomically.
func WriteCheckpoint(path string, cp *correlate.CheckpointExport) error {
	if cp == nil || cp.Result == nil {
		return errors.New("resultstore: nil checkpoint")
	}
	return writeAtomic(path, encode(KindCheckpoint, cp.Result, cp))
}

// ReadCheckpoint decodes a KindCheckpoint store. The returned export is
// structurally sound at the codec level; semantic restoration (inventory
// bounds, sketch precision) happens in Correlator.RestoreIncremental.
func ReadCheckpoint(path string) (*correlate.CheckpointExport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	_, cp, _, err := decode(data, KindCheckpoint)
	if err != nil {
		return nil, err
	}
	return cp, nil
}

// DigestResult computes the content digest of a Result without touching
// disk: the CRC32 of the exact bytes WriteResult would persist. Two results
// that encode identically — the codec's byte-identity guarantee — share a
// digest, so it is a stable content address for a served snapshot (the
// read-side materialization layer derives HTTP ETags from it: same analyzed
// state across restarts keeps validating cached responses).
func DigestResult(res *correlate.Result) (uint32, error) {
	if res == nil {
		return 0, errors.New("resultstore: nil result")
	}
	return crc32.ChecksumIEEE(encode(KindResult, res.Export(), nil)), nil
}

// Verify replays the whole store — header, every section CRC, footer count
// and digest, full payload parse — without building a live Result, and
// returns its summary. This is the gate a server runs before committing to
// a snapshot swap.
func Verify(path string) (Info, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Info{}, err
	}
	_, _, info, err := decode(data, 0)
	return info, err
}

func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ---- encoding ----

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) raw(p []byte) { e.b = append(e.b, p...) }
func (e *enc) str(s string) { e.u32(uint32(len(s))); e.b = append(e.b, s...) }

func encode(kind Kind, re *correlate.ResultExport, cp *correlate.CheckpointExport) []byte {
	var out enc
	out.raw([]byte(magic))
	out.u8(Version)
	out.u8(uint8(kind))
	out.u16(0)
	out.u32(uint32(re.Hours))
	out.u32(0)

	var crcs []byte
	sections := 0
	section := func(tag uint8, fill func(p *enc)) {
		var p enc
		fill(&p)
		sum := crc32.ChecksumIEEE(p.b)
		out.u8(tag)
		out.u32(uint32(len(p.b)))
		out.u32(sum)
		out.raw(p.b)
		crcs = binary.LittleEndian.AppendUint32(crcs, sum)
		sections++
	}

	section(secMeta, func(p *enc) {
		p.u32(uint32(re.Hours))
		p.u8(uint8(classify.NumClasses))
		p.u64(re.Background.Records)
		p.u64(re.Background.Packets)
		p.u64(re.Background.Sources)
		p.u32(uint32(re.IngestOK))
		p.u32(uint32(re.IngestRetried))
		p.u32(uint32(re.IngestQuarantined))
	})
	section(secHourly, func(p *enc) {
		p.u32(uint32(len(re.Hourly)))
		for i := range re.Hourly {
			h := &re.Hourly[i]
			p.u32(uint32(h.Hour))
			p.u64(h.RecordsIoT)
			for ci := range h.PerCat {
				c := &h.PerCat[ci]
				for _, v := range c.Packets {
					p.u64(v)
				}
				p.u32(uint32(c.ActiveDevices))
				p.u64(c.UDPDstIPs)
				p.u64(c.UDPDstPorts)
				p.u32(uint32(c.UDPDevices))
				p.u64(c.ScanDstIPs)
				p.u64(c.ScanDstPorts)
				p.u32(uint32(c.ScanDevices))
			}
		}
	})
	section(secDevices, func(p *enc) {
		p.u32(uint32(len(re.Devices)))
		for i := range re.Devices {
			d := &re.Devices[i]
			p.u32(uint32(d.ID))
			p.u32(uint32(d.FirstSeen))
			p.u64(d.Records)
			for _, v := range d.Packets {
				p.u64(v)
			}
			p.u64(d.DayMask)
			p.u32(uint32(d.MaxScanPorts))
			p.u32(uint32(d.MaxScanPortsHour))
			p.u32(uint32(d.MaxScanDests))
			p.u32(uint32(len(d.Backscatter)))
			for _, hc := range d.Backscatter {
				p.u32(uint32(hc.Hour))
				p.u64(hc.Count)
			}
		}
	})
	section(secUDP, func(p *enc) {
		p.u32(uint32(len(re.UDPPorts)))
		for i := range re.UDPPorts {
			a := &re.UDPPorts[i]
			p.u16(a.Port)
			p.u64(a.Packets)
			p.u32(uint32(len(a.Devices)))
			for _, id := range a.Devices {
				p.u32(uint32(id))
			}
		}
	})
	section(secTCP, func(p *enc) {
		p.u32(uint32(len(re.TCPScanPorts)))
		for i := range re.TCPScanPorts {
			a := &re.TCPScanPorts[i]
			p.u16(a.Port)
			p.u64(a.Packets)
			p.u64(a.PacketsConsumer)
			p.u32(uint32(len(a.DevicesConsumer)))
			for _, id := range a.DevicesConsumer {
				p.u32(uint32(id))
			}
			p.u32(uint32(len(a.DevicesCPS)))
			for _, id := range a.DevicesCPS {
				p.u32(uint32(id))
			}
		}
	})
	section(secPortHour, func(p *enc) {
		p.u32(uint32(len(re.TCPPortHour)))
		for _, ph := range re.TCPPortHour {
			p.u16(ph.Port)
			p.u16(ph.Hour)
			p.u64(ph.Packets)
		}
	})
	section(secFaults, func(p *enc) {
		p.u32(uint32(len(re.Faults)))
		for i := range re.Faults {
			f := &re.Faults[i]
			p.u32(uint32(f.Hour))
			p.u32(uint32(f.Attempts))
			var flags uint8
			if f.Retryable {
				flags |= 1
			}
			if f.Truncated {
				flags |= 2
			}
			if f.BadFormat {
				flags |= 4
			}
			if f.NotExist {
				flags |= 8
			}
			p.u8(flags)
			p.str(f.Message)
		}
	})
	if kind == KindCheckpoint {
		section(secCheckpoint, func(p *enc) {
			p.u32(uint32(cp.MaxHours))
			p.u32(uint32(len(cp.IngestedHours)))
			for _, h := range cp.IngestedHours {
				p.u32(uint32(h))
			}
			p.u32(uint32(len(cp.QuarantinedHours)))
			for _, h := range cp.QuarantinedHours {
				p.u32(uint32(h))
			}
			p.u8(cp.BGPrecision)
			p.u32(uint32(len(cp.BGRegisters)))
			p.raw(cp.BGRegisters)
		})
	}

	out.u8(secFooter)
	out.u32(uint32(sections))
	out.u32(crc32.ChecksumIEEE(crcs))
	return out.b
}

// ---- decoding ----

// errShort marks an out-of-data read inside a CRC-validated section; since
// the payload arrived whole, underflow there is structural, not truncation.
var errShort = errors.New("short section")

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.b)-d.off < n {
		d.err = errShort
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) bytes(n int) []byte {
	if !d.need(n) {
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

// finish validates that the section was consumed exactly.
func (d *dec) finish(what string) error {
	if d.err != nil {
		return badf("%s section underflows", what)
	}
	if d.off != len(d.b) {
		return badf("%s section has %d leftover bytes", what, len(d.b)-d.off)
	}
	return nil
}

// decode parses and fully validates a store image. wantKind 0 accepts any
// kind (Verify); otherwise a kind mismatch is ErrBadFormat — asking a
// result loader to swallow a checkpoint is a caller wiring error, never a
// retry candidate.
func decode(data []byte, wantKind Kind) (*correlate.ResultExport, *correlate.CheckpointExport, Info, error) {
	var info Info
	info.Size = int64(len(data))
	if len(data) < len(magic) {
		return nil, nil, info, fmt.Errorf("%w: short header", ErrTruncated)
	}
	if string(data[:len(magic)]) != magic {
		return nil, nil, info, badf("bad magic %q", data[:len(magic)])
	}
	if len(data) < headerLen {
		return nil, nil, info, fmt.Errorf("%w: short header", ErrTruncated)
	}
	version := data[4]
	kind := Kind(data[5])
	if version == 0 || int(version) > Version {
		return nil, nil, info, badf("unsupported version %d", version)
	}
	if kind != KindResult && kind != KindCheckpoint {
		return nil, nil, info, badf("unknown kind %d", uint8(kind))
	}
	if binary.LittleEndian.Uint16(data[6:]) != 0 || binary.LittleEndian.Uint32(data[12:]) != 0 {
		return nil, nil, info, badf("reserved header bits set")
	}
	hours := binary.LittleEndian.Uint32(data[8:])
	if hours == 0 {
		return nil, nil, info, badf("zero hours")
	}
	info.Kind = kind
	info.Version = int(version)
	info.Hours = int(hours)
	if wantKind != 0 && kind != wantKind {
		return nil, nil, info, badf("store is a %s, want %s", kind, wantKind)
	}

	// Walk the frames.
	payloads := map[uint8][]byte{}
	var crcs []byte
	off := headerLen
	sawFooter := false
	for !sawFooter {
		if off >= len(data) {
			return nil, nil, info, fmt.Errorf("%w: missing footer", ErrTruncated)
		}
		tag := data[off]
		off++
		if tag == secFooter {
			if len(data)-off < 8 {
				return nil, nil, info, fmt.Errorf("%w: short footer", ErrTruncated)
			}
			count := binary.LittleEndian.Uint32(data[off:])
			digest := binary.LittleEndian.Uint32(data[off+4:])
			off += 8
			if int(count) != len(payloads) {
				return nil, nil, info, badf("footer counts %d sections, read %d", count, len(payloads))
			}
			if digest != crc32.ChecksumIEEE(crcs) {
				return nil, nil, info, badf("footer digest mismatch")
			}
			if off != len(data) {
				return nil, nil, info, badf("%d trailing bytes after footer", len(data)-off)
			}
			sawFooter = true
			continue
		}
		maxTag := uint8(secFaults)
		if kind == KindCheckpoint {
			maxTag = secCheckpoint
		}
		if tag > maxTag {
			return nil, nil, info, badf("unknown section tag %d", tag)
		}
		if _, dup := payloads[tag]; dup {
			return nil, nil, info, badf("duplicate section tag %d", tag)
		}
		if len(data)-off < 8 {
			return nil, nil, info, fmt.Errorf("%w: short section header", ErrTruncated)
		}
		plen := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		off += 8
		if len(data)-off < int(plen) {
			return nil, nil, info, fmt.Errorf("%w: section %d body cut short", ErrTruncated, tag)
		}
		payload := data[off : off+int(plen)]
		off += int(plen)
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, nil, info, badf("section %d checksum mismatch", tag)
		}
		payloads[tag] = payload
		crcs = binary.LittleEndian.AppendUint32(crcs, sum)
	}
	info.Sections = len(payloads)

	required := []uint8{secMeta, secHourly, secDevices, secUDP, secTCP, secPortHour, secFaults}
	if kind == KindCheckpoint {
		required = append(required, secCheckpoint)
	}
	for _, tag := range required {
		if _, ok := payloads[tag]; !ok {
			return nil, nil, info, badf("missing section %d", tag)
		}
	}

	re, err := parseResultSections(payloads, int(hours))
	if err != nil {
		return nil, nil, info, err
	}
	if kind == KindResult {
		return re, nil, info, nil
	}
	cp, err := parseCheckpoint(payloads[secCheckpoint], int(hours))
	if err != nil {
		return nil, nil, info, err
	}
	cp.Result = re
	return re, cp, info, nil
}

func parseResultSections(payloads map[uint8][]byte, hours int) (*correlate.ResultExport, error) {
	re := &correlate.ResultExport{Hours: hours}

	d := &dec{b: payloads[secMeta]}
	if int(d.u32()) != hours {
		if d.err == nil {
			return nil, badf("meta hours disagree with header")
		}
	}
	numClasses := int(d.u8())
	re.Background.Records = d.u64()
	re.Background.Packets = d.u64()
	re.Background.Sources = d.u64()
	re.IngestOK = int(d.u32())
	re.IngestRetried = int(d.u32())
	re.IngestQuarantined = int(d.u32())
	if err := d.finish("meta"); err != nil {
		return nil, err
	}
	if numClasses != classify.NumClasses {
		return nil, badf("store built with %d traffic classes, this build has %d",
			numClasses, classify.NumClasses)
	}

	d = &dec{b: payloads[secHourly]}
	n := int(d.u32())
	if n != hours {
		return nil, badf("hourly section counts %d rows, header says %d", n, hours)
	}
	re.Hourly = make([]correlate.HourStats, 0, min(n, 1<<16))
	for i := 0; i < n && d.err == nil; i++ {
		var h correlate.HourStats
		h.Hour = int(d.u32())
		h.RecordsIoT = d.u64()
		for ci := range h.PerCat {
			c := &h.PerCat[ci]
			for k := range c.Packets {
				c.Packets[k] = d.u64()
			}
			c.ActiveDevices = int(d.u32())
			c.UDPDstIPs = d.u64()
			c.UDPDstPorts = d.u64()
			c.UDPDevices = int(d.u32())
			c.ScanDstIPs = d.u64()
			c.ScanDstPorts = d.u64()
			c.ScanDevices = int(d.u32())
		}
		re.Hourly = append(re.Hourly, h)
	}
	if err := d.finish("hourly"); err != nil {
		return nil, err
	}

	d = &dec{b: payloads[secDevices]}
	n = int(d.u32())
	re.Devices = make([]correlate.DeviceExport, 0, min(n, 1<<16))
	for i := 0; i < n && d.err == nil; i++ {
		var de correlate.DeviceExport
		de.ID = int32(d.u32())
		de.FirstSeen = int32(d.u32())
		de.Records = d.u64()
		for k := range de.Packets {
			de.Packets[k] = d.u64()
		}
		de.DayMask = d.u64()
		de.MaxScanPorts = int32(d.u32())
		de.MaxScanPortsHour = int32(d.u32())
		de.MaxScanDests = int32(d.u32())
		bn := int(d.u32())
		for j := 0; j < bn && d.err == nil; j++ {
			de.Backscatter = append(de.Backscatter, correlate.HourCount{
				Hour:  int32(d.u32()),
				Count: d.u64(),
			})
		}
		re.Devices = append(re.Devices, de)
	}
	if err := d.finish("devices"); err != nil {
		return nil, err
	}

	d = &dec{b: payloads[secUDP]}
	n = int(d.u32())
	re.UDPPorts = make([]correlate.PortExport, 0, min(n, 1<<16))
	for i := 0; i < n && d.err == nil; i++ {
		var pe correlate.PortExport
		pe.Port = d.u16()
		pe.Packets = d.u64()
		pe.Devices = readDeviceList(d)
		re.UDPPorts = append(re.UDPPorts, pe)
	}
	if err := d.finish("udp"); err != nil {
		return nil, err
	}

	d = &dec{b: payloads[secTCP]}
	n = int(d.u32())
	re.TCPScanPorts = make([]correlate.TCPPortExport, 0, min(n, 1<<16))
	for i := 0; i < n && d.err == nil; i++ {
		var pe correlate.TCPPortExport
		pe.Port = d.u16()
		pe.Packets = d.u64()
		pe.PacketsConsumer = d.u64()
		pe.DevicesConsumer = readDeviceList(d)
		pe.DevicesCPS = readDeviceList(d)
		re.TCPScanPorts = append(re.TCPScanPorts, pe)
	}
	if err := d.finish("tcp"); err != nil {
		return nil, err
	}

	d = &dec{b: payloads[secPortHour]}
	n = int(d.u32())
	re.TCPPortHour = make([]correlate.PortHourExport, 0, min(n, 1<<16))
	for i := 0; i < n && d.err == nil; i++ {
		re.TCPPortHour = append(re.TCPPortHour, correlate.PortHourExport{
			Port:    d.u16(),
			Hour:    d.u16(),
			Packets: d.u64(),
		})
	}
	if err := d.finish("port-hour"); err != nil {
		return nil, err
	}

	d = &dec{b: payloads[secFaults]}
	n = int(d.u32())
	for i := 0; i < n && d.err == nil; i++ {
		var fe correlate.FaultExport
		fe.Hour = int32(d.u32())
		fe.Attempts = int32(d.u32())
		flags := d.u8()
		fe.Retryable = flags&1 != 0
		fe.Truncated = flags&2 != 0
		fe.BadFormat = flags&4 != 0
		fe.NotExist = flags&8 != 0
		if flags&^uint8(15) != 0 {
			return nil, badf("fault %d has unknown flag bits %#x", i, flags)
		}
		ml := int(d.u32())
		fe.Message = string(d.bytes(ml))
		re.Faults = append(re.Faults, fe)
	}
	if err := d.finish("faults"); err != nil {
		return nil, err
	}
	return re, nil
}

func readDeviceList(d *dec) []int32 {
	n := int(d.u32())
	if n == 0 || !d.need(n*4) {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.u32())
	}
	return out
}

func parseCheckpoint(payload []byte, hours int) (*correlate.CheckpointExport, error) {
	d := &dec{b: payload}
	cp := &correlate.CheckpointExport{MaxHours: int(d.u32())}
	if d.err == nil && cp.MaxHours != hours {
		return nil, badf("checkpoint spans %d hours, header says %d", cp.MaxHours, hours)
	}
	cp.IngestedHours = readHourList(d)
	cp.QuarantinedHours = readHourList(d)
	cp.BGPrecision = d.u8()
	rn := int(d.u32())
	cp.BGRegisters = append([]uint8(nil), d.bytes(rn)...)
	if err := d.finish("checkpoint"); err != nil {
		return nil, err
	}
	if cp.BGPrecision < 4 || cp.BGPrecision > 18 || rn != 1<<cp.BGPrecision {
		return nil, badf("checkpoint sketch precision %d with %d registers", cp.BGPrecision, rn)
	}
	return cp, nil
}

func readHourList(d *dec) []int32 {
	n := int(d.u32())
	if n == 0 || !d.need(n*4) {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.u32())
	}
	return out
}
