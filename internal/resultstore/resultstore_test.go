package resultstore

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"iotscope/internal/correlate"
	"iotscope/internal/faultfs"
	"iotscope/internal/flowtuple"
	"iotscope/internal/wgen"
)

// makeDataset generates a small clean dataset and its generator.
func makeDataset(t *testing.T, seed uint64, hours int) (string, *wgen.Generator) {
	t.Helper()
	sc := wgen.Default(0.002, seed)
	sc.Hours = hours
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	return dir, g
}

// The acceptance bar for the store: Analyze → save → load is
// byte-identical (reflect.DeepEqual, the same oracle comparison the dense
// path is held to) at one and eight workers, strict and lenient, batch
// and incremental.
func TestResultRoundTrip(t *testing.T) {
	dir, g := makeDataset(t, 61, 6)
	for _, workers := range []int{1, 8} {
		for _, policy := range []correlate.FaultPolicy{correlate.Strict, correlate.Lenient} {
			c := correlate.New(g.Inventory(), correlate.Options{Workers: workers, FaultPolicy: policy})
			res, err := c.ProcessDataset(context.Background(), dir)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "result.irs")
			if err := WriteResult(path, res); err != nil {
				t.Fatal(err)
			}
			back, err := ReadResult(path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, back) {
				t.Fatalf("workers=%d policy=%v: loaded result differs from original", workers, policy)
			}
		}
	}
}

func TestResultRoundTripIncremental(t *testing.T) {
	dir, g := makeDataset(t, 62, 5)
	c := correlate.New(g.Inventory(), correlate.Options{Workers: 2})
	inc, err := c.NewIncremental(5)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 5; h++ {
		if _, err := inc.Ingest(context.Background(), dir, h); err != nil {
			t.Fatal(err)
		}
	}
	res := inc.Result()
	path := filepath.Join(t.TempDir(), "result.irs")
	if err := WriteResult(path, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatal("loaded incremental result differs from original")
	}
}

// A damaged dataset under Lenient carries fault records; the store must
// preserve their classification (the wrapped errors are reconstructed, so
// equality is at the export level plus retryability).
func TestResultRoundTripWithFaults(t *testing.T) {
	dir, g := makeDataset(t, 63, 5)
	if err := faultfs.BitFlip(flowtuple.HourPath(dir, 1), 1, 0x10); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(flowtuple.HourPath(dir, 3)); err != nil {
		t.Fatal(err)
	}
	c := correlate.New(g.Inventory(), correlate.Options{Workers: 2, FaultPolicy: correlate.Lenient})
	res, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ingest.Faults) == 0 {
		t.Fatal("expected recorded faults")
	}
	path := filepath.Join(t.TempDir(), "result.irs")
	if err := WriteResult(path, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Export(), back.Export()) {
		t.Fatal("export forms diverged through the store")
	}
	for i := range res.Ingest.Faults {
		w, g := res.Ingest.Faults[i], back.Ingest.Faults[i]
		if correlate.IsRetryable(w.Err) != correlate.IsRetryable(g.Err) {
			t.Fatalf("fault %d retryability lost in store round trip", i)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir, g := makeDataset(t, 64, 6)
	c := correlate.New(g.Inventory(), correlate.Options{Workers: 2})
	inc, err := c.NewIncremental(6)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 3; h++ {
		if _, err := inc.Ingest(context.Background(), dir, h); err != nil {
			t.Fatal(err)
		}
	}
	cp := inc.Export()
	path := filepath.Join(t.TempDir(), "checkpoint.irs")
	if err := WriteCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, back) {
		t.Fatal("checkpoint differs after store round trip")
	}

	// The stored checkpoint restores and finishes to the batch result.
	resumed, err := c.RestoreIncremental(back)
	if err != nil {
		t.Fatal(err)
	}
	for h := 3; h < 6; h++ {
		if _, err := resumed.Ingest(context.Background(), dir, h); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	got, want := resumed.Result(), batch
	if !reflect.DeepEqual(want.Devices, got.Devices) ||
		!reflect.DeepEqual(want.Hourly, got.Hourly) ||
		!reflect.DeepEqual(want.UDPPorts, got.UDPPorts) ||
		!reflect.DeepEqual(want.TCPScanPorts, got.TCPScanPorts) ||
		!reflect.DeepEqual(want.TCPPortHour, got.TCPPortHour) ||
		want.Background != got.Background {
		t.Fatal("resumed-from-store result differs from cold batch run")
	}
}

func TestVerifyInfo(t *testing.T) {
	dir, g := makeDataset(t, 65, 4)
	c := correlate.New(g.Inventory(), correlate.Options{Workers: 2})
	res, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	rpath := filepath.Join(tmp, "result.irs")
	if err := WriteResult(rpath, res); err != nil {
		t.Fatal(err)
	}
	info, err := Verify(rpath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != KindResult || info.Version != Version || info.Hours != 4 || info.Sections != 7 {
		t.Fatalf("result info = %+v", info)
	}

	inc, err := c.NewIncremental(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Ingest(context.Background(), dir, 0); err != nil {
		t.Fatal(err)
	}
	cpath := filepath.Join(tmp, "checkpoint.irs")
	if err := WriteCheckpoint(cpath, inc.Export()); err != nil {
		t.Fatal(err)
	}
	info, err = Verify(cpath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != KindCheckpoint || info.Sections != 8 {
		t.Fatalf("checkpoint info = %+v", info)
	}

	// Kind confusion is permanent, not retryable: a result loader must not
	// swallow a checkpoint and vice versa.
	if _, err := ReadResult(cpath); err == nil || IsRetryable(err) {
		t.Fatalf("ReadResult(checkpoint) = %v", err)
	}
	if _, err := ReadCheckpoint(rpath); err == nil || IsRetryable(err) {
		t.Fatalf("ReadCheckpoint(result) = %v", err)
	}
}

// Writes are atomic and deterministic: no .tmp residue, re-writing the
// same state produces identical bytes, and overwriting an existing store
// replaces it whole.
func TestWriteAtomicDeterministic(t *testing.T) {
	dir, g := makeDataset(t, 66, 3)
	c := correlate.New(g.Inventory(), correlate.Options{Workers: 2})
	res, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	path := filepath.Join(tmp, "result.irs")
	if err := WriteResult(path, res); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteResult(path, res); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("same result encoded to different bytes")
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "result.irs" {
			t.Fatalf("unexpected residue %q", e.Name())
		}
	}
}
