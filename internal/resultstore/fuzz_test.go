package resultstore

import (
	"errors"
	"io/fs"
	"reflect"
	"testing"

	"iotscope/internal/classify"
	"iotscope/internal/correlate"
)

// seedExport builds a small synthetic export covering every section shape:
// devices with and without backscatter, UDP and TCP ports with asymmetric
// device lists, port-hour cells, and one fault of each classification.
func seedExport() *correlate.ResultExport {
	re := &correlate.ResultExport{
		Hours:             2,
		Hourly:            make([]correlate.HourStats, 2),
		Background:        correlate.BackgroundStats{Records: 7, Packets: 21, Sources: 3},
		IngestOK:          2,
		IngestRetried:     1,
		IngestQuarantined: 1,
	}
	for i := range re.Hourly {
		re.Hourly[i].Hour = i
		re.Hourly[i].RecordsIoT = uint64(10 * (i + 1))
		for ci := range re.Hourly[i].PerCat {
			for k := 0; k < classify.NumClasses; k++ {
				re.Hourly[i].PerCat[ci].Packets[k] = uint64(i*100 + ci*10 + k)
			}
			re.Hourly[i].PerCat[ci].ActiveDevices = i + ci
		}
	}
	re.Devices = []correlate.DeviceExport{
		{ID: 3, FirstSeen: 0, Records: 12, DayMask: 1},
		{ID: 9, FirstSeen: 1, Records: 4, DayMask: 1,
			Backscatter: []correlate.HourCount{{Hour: 0, Count: 2}, {Hour: 1, Count: 5}}},
	}
	re.UDPPorts = []correlate.PortExport{
		{Port: 53, Packets: 40, Devices: []int32{3, 9}},
	}
	re.TCPScanPorts = []correlate.TCPPortExport{
		{Port: 23, Packets: 80, PacketsConsumer: 60, DevicesConsumer: []int32{3}, DevicesCPS: []int32{9}},
		{Port: 2323, Packets: 5, DevicesCPS: []int32{3}},
	}
	re.TCPPortHour = []correlate.PortHourExport{
		{Port: 23, Hour: 0, Packets: 50},
		{Port: 23, Hour: 1, Packets: 30},
	}
	re.Faults = []correlate.FaultExport{
		{Hour: 0, Attempts: 2, Retryable: true, Truncated: true, BadFormat: true, Message: "truncated hour"},
		{Hour: 1, Attempts: 1, Retryable: false, BadFormat: true, Message: "bit rot"},
	}
	return re
}

func seedCheckpoint(re *correlate.ResultExport) *correlate.CheckpointExport {
	return &correlate.CheckpointExport{
		MaxHours:      re.Hours,
		IngestedHours: []int32{0, 1},
		BGPrecision:   4,
		BGRegisters:   make([]uint8, 16),
		Result:        re,
	}
}

// FuzzResultStore hammers the decoder with mutated store images. The
// contract under fuzzing: never panic, never allocate unboundedly, reject
// everything invalid with an error inside the package taxonomy, and for
// every accepted image, re-encoding the decoded state must round-trip to
// equal state (the codec has one canonical interpretation per file).
func FuzzResultStore(f *testing.F) {
	re := seedExport()
	f.Add(encode(KindResult, re, nil))
	f.Add(encode(KindCheckpoint, re, seedCheckpoint(re)))
	// A few hand-damaged variants steer the fuzzer toward the guards.
	valid := encode(KindResult, re, nil)
	short := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(short)
	flipped := append([]byte(nil), valid...)
	flipped[headerLen+12] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		gotRE, gotCP, _, err := decode(data, 0)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) && !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("error outside taxonomy: %v", err)
			}
			return
		}
		kind := KindResult
		if gotCP != nil {
			kind = KindCheckpoint
		}
		reencoded := encode(kind, gotRE, gotCP)
		re2, cp2, _, err := decode(reencoded, kind)
		if err != nil {
			t.Fatalf("re-encoded store rejected: %v", err)
		}
		if !reflect.DeepEqual(gotRE, re2) {
			t.Fatal("result export changed across re-encode")
		}
		if !reflect.DeepEqual(gotCP, cp2) {
			t.Fatal("checkpoint changed across re-encode")
		}
	})
}
