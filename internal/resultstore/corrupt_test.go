package resultstore

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"iotscope/internal/correlate"
	"iotscope/internal/faultfs"
)

// The corruption table: every injected fault must land in the same
// retryable-vs-permanent taxonomy flowtuple.Verify uses — a file that ends
// early (possibly still being written) or does not exist yet is retryable,
// structural damage is permanent — and ReadResult and Verify must classify
// identically.
func TestCorruptionTaxonomy(t *testing.T) {
	dir, g := makeDataset(t, 71, 4)
	c := correlate.New(g.Inventory(), correlate.Options{Workers: 2})
	res, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name          string
		corrupt       func(path string, size int64) error
		wantRetryable bool
		wantNotExist  bool
	}{
		{
			// The producer's write was cut mid-stream: the last section (or
			// the footer) is missing its tail. Retryable — a non-atomic
			// producer may still be appending.
			name:          "truncated tail",
			corrupt:       func(p string, size int64) error { return faultfs.TruncateTail(p, 30) },
			wantRetryable: true,
		},
		{
			name:          "truncated to header",
			corrupt:       func(p string, size int64) error { return faultfs.TruncateTail(p, size-headerLen) },
			wantRetryable: true,
		},
		{
			name:          "truncated mid-header",
			corrupt:       func(p string, size int64) error { return faultfs.TruncateTail(p, size-6) },
			wantRetryable: true,
		},
		{
			// A bit flip inside a section payload: the frame arrived whole
			// but its CRC disagrees. Permanent.
			name:          "bit flip in payload",
			corrupt:       func(p string, size int64) error { return faultfs.BitFlip(p, headerLen+9+3, 0x40) },
			wantRetryable: false,
		},
		{
			// A bit flip in the footer digest. Permanent.
			name:          "bit flip in footer digest",
			corrupt:       func(p string, size int64) error { return faultfs.BitFlip(p, -2, 0x01) },
			wantRetryable: false,
		},
		{
			name:          "mangled magic",
			corrupt:       func(p string, size int64) error { return faultfs.Overwrite(p, 0, []byte("JUNK")) },
			wantRetryable: false,
		},
		{
			// A future codec version: well-formed but unreadable by this
			// build. Permanent — waiting will not teach us the format.
			name:          "version from the future",
			corrupt:       func(p string, size int64) error { return faultfs.Overwrite(p, 4, []byte{0x7f}) },
			wantRetryable: false,
		},
		{
			name:          "mangled kind",
			corrupt:       func(p string, size int64) error { return faultfs.Overwrite(p, 5, []byte{0x09}) },
			wantRetryable: false,
		},
		{
			name:          "reserved header bits set",
			corrupt:       func(p string, size int64) error { return faultfs.Overwrite(p, 6, []byte{0x01}) },
			wantRetryable: false,
		},
		{
			name:          "trailing junk after footer",
			corrupt:       func(p string, size int64) error { return faultfs.AppendTail(p, []byte{0xde, 0xad}) },
			wantRetryable: false,
		},
		{
			name:          "missing file",
			corrupt:       func(p string, size int64) error { return os.Remove(p) },
			wantRetryable: true,
			wantNotExist:  true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "result.irs")
			if err := WriteResult(path, res); err != nil {
				t.Fatal(err)
			}
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.corrupt(path, info.Size()); err != nil {
				t.Fatal(err)
			}
			_, readErr := ReadResult(path)
			_, verifyErr := Verify(path)
			for _, err := range []error{readErr, verifyErr} {
				if err == nil {
					t.Fatal("corrupt store accepted")
				}
				if got := IsRetryable(err); got != tc.wantRetryable {
					t.Fatalf("IsRetryable = %v, want %v (err: %v)", got, tc.wantRetryable, err)
				}
				if tc.wantNotExist {
					if !errors.Is(err, fs.ErrNotExist) {
						t.Fatalf("want fs.ErrNotExist, got %v", err)
					}
					continue
				}
				if !errors.Is(err, ErrBadFormat) {
					t.Fatalf("error does not wrap ErrBadFormat: %v", err)
				}
				if got := errors.Is(err, ErrTruncated); got != tc.wantRetryable {
					t.Fatalf("ErrTruncated = %v, want %v (err: %v)", got, tc.wantRetryable, err)
				}
			}
		})
	}
}

// Every single-byte truncation point of a valid store must be rejected as
// retryable truncation or permanent damage — never accepted, never an
// unclassified error, never a panic.
func TestTruncationSweep(t *testing.T) {
	dir, g := makeDataset(t, 72, 2)
	c := correlate.New(g.Inventory(), correlate.Options{Workers: 1})
	res, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "result.irs")
	if err := WriteResult(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep a byte-granular sample of prefixes (every 97th keeps the test
	// fast while still crossing every kind of boundary in a small file).
	for n := 0; n < len(data); n += 97 {
		_, _, _, err := decode(data[:n], KindResult)
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(data))
		}
		if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("prefix %d: unclassified error %v", n, err)
		}
	}
}
