package resultstore

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"iotscope/internal/correlate"
)

// The sharded correlation's byte-identity claim, proved at the codec
// level: the store encoding of a merged sharded run must be bit-for-bit
// identical to the encoding of the unsharded oracle — Workers 1/8 ×
// strict/lenient × exact/sketch, shard counts 1, 2, 4, 8. The encoder is
// deterministic (TestWriteAtomicDeterministic), so equal bytes here means
// the two Results are indistinguishable to every downstream consumer.
func TestShardedResultBytesIdentical(t *testing.T) {
	dir, g := makeDataset(t, 73, 6)
	for _, workers := range []int{1, 8} {
		for _, policy := range []correlate.FaultPolicy{correlate.Strict, correlate.Lenient} {
			for _, sketches := range []bool{false, true} {
				oracle := correlate.New(g.Inventory(), correlate.Options{
					Workers: workers, FaultPolicy: policy, UseSketches: sketches,
				})
				want, err := oracle.ProcessDataset(context.Background(), dir)
				if err != nil {
					t.Fatal(err)
				}
				wantPath := filepath.Join(t.TempDir(), "oracle.irs")
				if err := WriteResult(wantPath, want); err != nil {
					t.Fatal(err)
				}
				wantBytes, err := os.ReadFile(wantPath)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{1, 2, 4, 8} {
					c := correlate.New(g.Inventory(), correlate.Options{
						Workers: workers, FaultPolicy: policy, UseSketches: sketches, Shards: shards,
					})
					got, _, err := c.ProcessDatasetSharded(context.Background(), dir)
					if err != nil {
						t.Fatalf("workers=%d policy=%v sketches=%v shards=%d: %v",
							workers, policy, sketches, shards, err)
					}
					gotPath := filepath.Join(t.TempDir(), "sharded.irs")
					if err := WriteResult(gotPath, got); err != nil {
						t.Fatal(err)
					}
					gotBytes, err := os.ReadFile(gotPath)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(wantBytes, gotBytes) {
						t.Fatalf("workers=%d policy=%v sketches=%v shards=%d: store bytes diverged (%d vs %d bytes)",
							workers, policy, sketches, shards, len(wantBytes), len(gotBytes))
					}
				}
			}
		}
	}
}
