package wgen

import (
	"testing"

	"iotscope/internal/classify"
	"iotscope/internal/devicedb"
	"iotscope/internal/flowtuple"
	"iotscope/internal/netx"
)

const testScale = 0.002

func testGenerator(t testing.TB, scale float64, seed uint64) *Generator {
	t.Helper()
	sc := Default(scale, seed)
	g, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	sc := Default(0, 1)
	if _, err := New(sc); err == nil {
		t.Error("scale 0 accepted")
	}
	sc = Default(2, 1)
	if _, err := New(sc); err == nil {
		t.Error("scale 2 accepted")
	}
	sc = Default(0.01, 1)
	sc.Hours = 0
	if _, err := New(sc); err == nil {
		t.Error("0 hours accepted")
	}
}

func TestCompromisedPopulationShape(t *testing.T) {
	g := testGenerator(t, 0.01, 42)
	truth := g.Truth()

	wantTotal := scaleCount(26881, 0.01)
	if got := len(truth.Compromised); got != wantTotal {
		t.Fatalf("compromised %d want %d", got, wantTotal)
	}

	// Realm split ~57/43.
	var cons, cps int
	byCountry := make(map[string]int)
	for _, id := range truth.Compromised {
		d := g.Inventory().At(id)
		if d.Category == devicedb.Consumer {
			cons++
		} else {
			cps++
		}
		byCountry[d.Country]++
	}
	consShare := float64(cons) / float64(cons+cps)
	if consShare < 0.52 || consShare > 0.62 {
		t.Errorf("consumer share %v want ~0.57", consShare)
	}

	// Russia must lead compromised countries (Fig. 1b) even though the US
	// leads deployment (Fig. 1a).
	if byCountry["RU"] <= byCountry["US"] {
		t.Errorf("RU %d should exceed US %d among compromised", byCountry["RU"], byCountry["US"])
	}
	ruShare := float64(byCountry["RU"]) / float64(len(truth.Compromised))
	if ruShare < 0.18 || ruShare > 0.31 {
		t.Errorf("RU compromised share %v want ~0.245", ruShare)
	}
}

func TestConsumerCompromisedTypeMix(t *testing.T) {
	g := testGenerator(t, 0.01, 7)
	byType := make(map[devicedb.DeviceType]int)
	total := 0
	for _, id := range g.Truth().Compromised {
		d := g.Inventory().At(id)
		if d.Category != devicedb.Consumer {
			continue
		}
		byType[d.Type]++
		total++
	}
	routerShare := float64(byType[devicedb.TypeRouter]) / float64(total)
	if routerShare < 0.42 || routerShare > 0.64 {
		t.Errorf("router share %v want ~0.524", routerShare)
	}
	if !(byType[devicedb.TypeRouter] > byType[devicedb.TypeIPCamera] &&
		byType[devicedb.TypeIPCamera] > byType[devicedb.TypePrinter] &&
		byType[devicedb.TypePrinter] > byType[devicedb.TypeStorage]) {
		t.Errorf("type ordering %v", byType)
	}
}

func TestBehaviourPopulations(t *testing.T) {
	g := testGenerator(t, 0.01, 11)
	truth := g.Truth()

	nScan := len(truth.TCPScanners)
	if want := scaleCount(12363, 0.01); nScan < want-5 || nScan > want+5 {
		t.Errorf("TCP scanners %d want ~%d", nScan, want)
	}
	// Nearly all compromised devices probe UDP (ensureAllEmit also adds a
	// trickle, so probers can exceed the configured population).
	if nProbe := len(truth.UDPProbers); nProbe < scaleCount(25242, 0.01) {
		t.Errorf("UDP probers %d", nProbe)
	}
	nVict := len(truth.Victims)
	wantVict := scaleCount(839, 0.01)
	if nVict < wantVict-2 || nVict > wantVict+len(g.Scenario().Backscatter.Events)+2 {
		t.Errorf("victims %d want ~%d", nVict, wantVict)
	}
	if len(truth.ICMPScanners) == 0 {
		t.Error("no ICMP scanners assigned")
	}

	// Event victims resolved.
	for _, ev := range g.Scenario().Backscatter.Events {
		if _, ok := truth.EventVictims[ev.Name]; !ok {
			t.Errorf("event %q has no victim", ev.Name)
		}
	}
}

func TestOnsetDistribution(t *testing.T) {
	g := testGenerator(t, 0.01, 13)
	day1 := 0
	total := 0
	for _, h := range g.Truth().OnsetHour {
		if h < 24 {
			day1++
		}
		if h < 0 || h >= g.Scenario().Hours {
			t.Fatalf("onset %d out of window", h)
		}
		total++
	}
	frac := float64(day1) / float64(total)
	// Scripted events pull a few onsets into day one beyond the 46 %.
	if frac < 0.36 || frac > 0.60 {
		t.Errorf("day-1 onset fraction %v want ~0.46", frac)
	}
}

func TestEmitHourDeterministic(t *testing.T) {
	collect := func(seed uint64) []flowtuple.Record {
		g := testGenerator(t, testScale, seed)
		var recs []flowtuple.Record
		if err := g.EmitHour(10, func(r flowtuple.Record) { recs = append(recs, r) }); err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := collect(99), collect(99)
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c := collect(100)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traffic")
		}
	}
}

func TestEmitHourBounds(t *testing.T) {
	g := testGenerator(t, testScale, 1)
	if err := g.EmitHour(-1, func(flowtuple.Record) {}); err == nil {
		t.Error("negative hour accepted")
	}
	if err := g.EmitHour(g.Scenario().Hours, func(flowtuple.Record) {}); err == nil {
		t.Error("hour beyond window accepted")
	}
}

func TestTrafficComposition(t *testing.T) {
	g := testGenerator(t, 0.005, 21)
	inv := g.Inventory()

	classPkts := make(map[classify.Class]uint64)
	var iotPkts, bgPkts uint64
	synToDark := 0
	// Sample a few mid-window hours.
	for _, h := range []int{30, 31, 60, 61, 100} {
		err := g.EmitHour(h, func(rec flowtuple.Record) {
			if !g.Scenario().DarkPrefix().Contains(netx.Addr(rec.DstIP)) {
				t.Fatalf("record destined outside darknet: %v", rec)
			}
			synToDark++
			cls := classify.Record(rec)
			if _, isIoT := inv.LookupIP(netx.Addr(rec.SrcIP)); isIoT {
				iotPkts += uint64(rec.Packets)
				classPkts[cls] += uint64(rec.Packets)
			} else {
				bgPkts += uint64(rec.Packets)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if iotPkts == 0 || bgPkts == 0 {
		t.Fatalf("iot=%d bg=%d packets", iotPkts, bgPkts)
	}
	// TCP scanning dominates IoT traffic (paper: ~71 %).
	scanShare := float64(classPkts[classify.ScanTCP]) / float64(iotPkts)
	if scanShare < 0.45 || scanShare > 0.92 {
		t.Errorf("TCP scan share %v", scanShare)
	}
	if classPkts[classify.UDP] == 0 {
		t.Error("no UDP traffic")
	}
	if classPkts[classify.Other] == 0 {
		t.Error("no other traffic")
	}
}

func TestScriptedBackscatterSpike(t *testing.T) {
	g := testGenerator(t, 0.005, 23)
	inv := g.Inventory()

	backscatter := func(hour int) uint64 {
		var total uint64
		err := g.EmitHour(hour, func(rec flowtuple.Record) {
			if _, isIoT := inv.LookupIP(netx.Addr(rec.SrcIP)); !isIoT {
				return
			}
			if classify.Record(rec) == classify.Backscatter {
				total += uint64(rec.Packets)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	spike := backscatter(7)   // inside cn-ethip-1 event
	quiet := backscatter(110) // no scripted event
	if spike < 4*quiet || spike == 0 {
		t.Errorf("event-hour backscatter %d not dominating quiet hour %d", spike, quiet)
	}
}

func TestScriptedEventVictimService(t *testing.T) {
	g := testGenerator(t, 0.01, 29)
	id, ok := g.Truth().EventVictims["cn-ethip-1"]
	if !ok {
		t.Fatal("cn-ethip-1 unresolved")
	}
	d := g.Inventory().At(id)
	if d.Category != devicedb.CPS {
		t.Errorf("event victim category %v", d.Category)
	}
	// Country and service honored when candidates exist at this scale.
	if d.Country != "CN" {
		t.Logf("event victim relaxed to country %s (acceptable at small scale)", d.Country)
	}
}

func TestBackroomNetRamp(t *testing.T) {
	g := testGenerator(t, 0.005, 31)
	count3387 := func(hour int) int {
		n := 0
		err := g.EmitHour(hour, func(rec flowtuple.Record) {
			if rec.Protocol == flowtuple.ProtoTCP && rec.DstPort == 3387 &&
				rec.TCPFlags == flowtuple.FlagSYN {
				n += int(rec.Packets)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	before := count3387(50)
	after := count3387(120)
	if after < 10*maxInt(before, 1) {
		t.Errorf("BackroomNet scanning before=%d after=%d; expected surge after hour 113", before, after)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestPortSpikeEvent(t *testing.T) {
	g := testGenerator(t, 0.005, 37)
	ports := make(map[uint16]bool)
	spikeHour := g.Scenario().TCPScan.PortSpikeHour
	err := g.EmitHour(spikeHour, func(rec flowtuple.Record) {
		if rec.Protocol == flowtuple.ProtoTCP && rec.TCPFlags == flowtuple.FlagSYN {
			ports[rec.DstPort] = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) < 5000 {
		t.Errorf("unique scanned ports at spike hour = %d, want thousands", len(ports))
	}
}

func TestRunWritesDataset(t *testing.T) {
	sc := Default(testScale, 51)
	sc.Hours = 6 // keep the test fast
	g, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	stats, err := g.Run(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hours != 6 || stats.Collector.HoursWritten != 6 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.Collector.PacketsDropped != 0 {
		t.Errorf("%d packets leaked outside darknet", stats.Collector.PacketsDropped)
	}
	hours, err := flowtuple.DatasetHours(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hours) != 6 {
		t.Fatalf("hours %v", hours)
	}
	// Files readable and non-empty overall.
	var total uint64
	for _, h := range hours {
		if err := flowtuple.WalkHour(dir, h, func(rec flowtuple.Record) error {
			total += uint64(rec.Packets)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if total != stats.Collector.PacketsObserved {
		t.Fatalf("persisted %d packets, observed %d", total, stats.Collector.PacketsObserved)
	}
}

func TestAllCompromisedEventuallyEmit(t *testing.T) {
	// Over the full window every compromised device must appear at least
	// once (its onset hour forces activity).
	sc := Default(testScale, 61)
	sc.Hours = 48
	g, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]bool)
	for h := 0; h < sc.Hours; h++ {
		if err := g.EmitHour(h, func(rec flowtuple.Record) {
			seen[rec.SrcIP] = true
		}); err != nil {
			t.Fatal(err)
		}
	}
	missing := 0
	for _, id := range g.Truth().Compromised {
		d := g.Inventory().At(id)
		if g.Truth().OnsetHour[id] < sc.Hours && !seen[uint32(d.IP)] {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d compromised devices with onset inside the window never emitted", missing)
	}
}

func BenchmarkEmitHour(b *testing.B) {
	g := testGenerator(b, 0.005, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.EmitHour(i%g.Scenario().Hours, func(flowtuple.Record) {}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewGenerator(b *testing.B) {
	sc := Default(0.005, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i)
		if _, err := New(sc); err != nil {
			b.Fatal(err)
		}
	}
}
