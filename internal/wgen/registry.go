package wgen

import (
	"fmt"
	"sort"
)

// Registered actor kinds. Each kind names a generator: a parameter block
// type plus the emission logic it drives. Scenario files compose these
// instead of editing Go.
const (
	KindTCPScan           = "tcp-scan"
	KindUDPProbe          = "udp-probe"
	KindICMP              = "icmp"
	KindBackscatter       = "backscatter"
	KindOther             = "other"
	KindBackground        = "background"
	KindMiraiWave         = "mirai-wave"
	KindUDPAmplification  = "udp-amplification"
	KindStealthScan       = "stealth-scan"
	KindCPSCampaign       = "cps-campaign"
	KindDiurnalBackground = "diurnal-background"
)

// Block is one actor block's parameter set: it validates itself and knows
// how to apply itself to a Scenario. Parameter types live in this package;
// external packages compose blocks through scenario files.
type Block interface {
	// Kind returns the registered kind name the block parameterizes.
	Kind() string
	apply(sc *Scenario)
	validate(path string, bad *badConfig)
}

// KindSpec describes one registered generator kind.
type KindSpec struct {
	Kind string
	// Version is the generator's behaviour version; it is recorded in every
	// run manifest so a dataset can name the exact generator code paths
	// that produced it.
	Version int
	// About is a one-line description for listings.
	About string
	// New allocates an empty parameter block for decoding.
	New func() Block
}

var kindRegistry = map[string]KindSpec{}

func registerKind(s KindSpec) {
	if s.Kind == "" || s.New == nil {
		panic("wgen: incomplete kind spec")
	}
	if _, dup := kindRegistry[s.Kind]; dup {
		panic(fmt.Sprintf("wgen: duplicate actor kind %q", s.Kind))
	}
	kindRegistry[s.Kind] = s
}

// LookupKind returns the spec for a registered actor kind.
func LookupKind(kind string) (KindSpec, bool) {
	s, ok := kindRegistry[kind]
	return s, ok
}

// Kinds lists every registered generator kind, sorted by name.
func Kinds() []KindSpec {
	out := make([]KindSpec, 0, len(kindRegistry))
	for _, s := range kindRegistry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// GeneratorVersions maps each actor kind used by the config to its
// registered generator version — the provenance record a run manifest
// carries so replays can detect generator drift.
func GeneratorVersions(c *Config) map[string]int {
	out := make(map[string]int, len(c.Actors))
	for _, a := range c.Actors {
		if s, ok := kindRegistry[a.Kind]; ok {
			out[a.Kind] = s.Version
		}
	}
	return out
}

func init() {
	registerKind(KindSpec{Kind: KindTCPScan, Version: 1,
		About: "TCP service scanners (Table V), random-port sweeps, scripted SSH/Backroom/port-spike events",
		New:   func() Block { return new(TCPScanConfig) }})
	registerKind(KindSpec{Kind: KindUDPProbe, Version: 1,
		About: "UDP port-group probers (Table IV) with Zipf tail and CPS bursts",
		New:   func() Block { return new(UDPProbeConfig) }})
	registerKind(KindSpec{Kind: KindICMP, Version: 1,
		About: "ICMP echo-request scanners",
		New:   func() Block { return new(ICMPScanConfig) }})
	registerKind(KindSpec{Kind: KindBackscatter, Version: 1,
		About: "DoS-victim backscatter with heavy-tailed totals and scripted events",
		New:   func() Block { return new(BackscatterConfig) }})
	registerKind(KindSpec{Kind: KindOther, Version: 1,
		About: "residual ACK/FIN misconfiguration noise from compromised devices",
		New:   func() Block { return new(OtherTrafficConfig) }})
	registerKind(KindSpec{Kind: KindBackground, Version: 1,
		About: "uniform non-IoT darknet noise from sources outside the inventory",
		New:   func() Block { return new(BackgroundConfig) }})
	registerKind(KindSpec{Kind: KindMiraiWave, Version: 1,
		About: "Mirai-style propagation wave: logistic infection ramp, telnet floods, per-bot lifetime churn",
		New:   func() Block { return new(MiraiWaveConfig) }})
	registerKind(KindSpec{Kind: KindUDPAmplification, Version: 1,
		About: "UDP amplification backscatter from reflectors answering on NTP/DNS/SSDP source ports",
		New:   func() Block { return new(UDPAmplificationConfig) }})
	registerKind(KindSpec{Kind: KindStealthScan, Version: 1,
		About: "slow sub-threshold scan: a few SYNs per device-hour against one port",
		New:   func() Block { return new(StealthScanConfig) }})
	registerKind(KindSpec{Kind: KindCPSCampaign, Version: 1,
		About: "windowed Modbus/BACnet campaign by CPS devices",
		New:   func() Block { return new(CPSCampaignConfig) }})
	registerKind(KindSpec{Kind: KindDiurnalBackground, Version: 1,
		About: "smart-home diurnal background noise from non-inventory sources with a day/night cycle",
		New:   func() Block { return new(DiurnalBackgroundConfig) }})
}

// --- Block implementations for the six paper kinds. Applying a block
// overwrites the scenario's corresponding sub-config wholesale, so a config
// is self-contained: what is not in the file is not in the run.

// Kind returns "tcp-scan".
func (c *TCPScanConfig) Kind() string     { return KindTCPScan }
func (c *TCPScanConfig) apply(sc *Scenario) { sc.TCPScan = *c }
func (c *TCPScanConfig) validate(path string, bad *badConfig) {
	if c.TotalScanners < 0 {
		bad.addf(path+".TotalScanners", "%d must be non-negative", c.TotalScanners)
	}
	if c.ConsumerFrac < 0 || c.ConsumerFrac > 1 {
		bad.addf(path+".ConsumerFrac", "%v outside [0, 1]", c.ConsumerFrac)
	}
	for i, svc := range c.Services {
		p := fmt.Sprintf("%s.Services[%d]", path, i)
		if svc.Name == "" {
			bad.addf(p+".Name", "empty")
		}
		if len(svc.Ports) == 0 {
			bad.addf(p+".Ports", "empty")
		}
		for j, port := range svc.Ports {
			if port == 0 {
				bad.addf(fmt.Sprintf("%s.Ports[%d]", p, j), "port 0")
			}
		}
		if svc.PacketShare < 0 || svc.PacketShare > 100 {
			bad.addf(p+".PacketShare", "%v outside [0, 100]", svc.PacketShare)
		}
		if svc.ConsumerPacketFrac < 0 || svc.ConsumerPacketFrac > 1 {
			bad.addf(p+".ConsumerPacketFrac", "%v outside [0, 1]", svc.ConsumerPacketFrac)
		}
	}
	if c.RandomPortShare < 0 || c.RandomPortShare > 100 {
		bad.addf(path+".RandomPortShare", "%v outside [0, 100]", c.RandomPortShare)
	}
	if c.RandomPortCPSFrac < 0 || c.RandomPortCPSFrac > 1 {
		bad.addf(path+".RandomPortCPSFrac", "%v outside [0, 1]", c.RandomPortCPSFrac)
	}
	for i, m := range c.SSHSpike.Members {
		if m.PacketFrac < 0 || m.PacketFrac > 1 {
			bad.addf(fmt.Sprintf("%s.SSHSpike.Members[%d].PacketFrac", path, i), "%v outside [0, 1]", m.PacketFrac)
		}
	}
}

// Kind returns "udp-probe".
func (c *UDPProbeConfig) Kind() string     { return KindUDPProbe }
func (c *UDPProbeConfig) apply(sc *Scenario) { sc.UDPProbe = *c }
func (c *UDPProbeConfig) validate(path string, bad *badConfig) {
	if c.TotalProbers < 0 {
		bad.addf(path+".TotalProbers", "%d must be non-negative", c.TotalProbers)
	}
	if c.ConsumerFrac < 0 || c.ConsumerFrac > 1 {
		bad.addf(path+".ConsumerFrac", "%v outside [0, 1]", c.ConsumerFrac)
	}
	if c.ConsumerPacketShare < 0 || c.ConsumerPacketShare > 1 {
		bad.addf(path+".ConsumerPacketShare", "%v outside [0, 1]", c.ConsumerPacketShare)
	}
	total := 0.0
	for i, pg := range c.PortGroups {
		p := fmt.Sprintf("%s.PortGroups[%d]", path, i)
		if pg.Port == 0 {
			bad.addf(p+".Port", "port 0")
		}
		if pg.PacketShare < 0 {
			bad.addf(p+".PacketShare", "%v must be non-negative", pg.PacketShare)
		}
		total += pg.PacketShare
	}
	if total > 100.0001 {
		bad.addf(path+".PortGroups", "packet shares sum to %.4g%% (> 100%%)", total)
	}
	if c.TailZipfExponent < 0 || c.TailZipfExponent >= 1 {
		bad.addf(path+".TailZipfExponent", "%v outside [0, 1)", c.TailZipfExponent)
	}
	if c.CPSBurstProb < 0 || c.CPSBurstProb > 1 {
		bad.addf(path+".CPSBurstProb", "%v outside [0, 1]", c.CPSBurstProb)
	}
}

// Kind returns "icmp".
func (c *ICMPScanConfig) Kind() string     { return KindICMP }
func (c *ICMPScanConfig) apply(sc *Scenario) { sc.ICMPScan = *c }
func (c *ICMPScanConfig) validate(path string, bad *badConfig) {
	if c.TotalScanners < 0 {
		bad.addf(path+".TotalScanners", "%d must be non-negative", c.TotalScanners)
	}
	if c.ConsumerScanners < 0 {
		bad.addf(path+".ConsumerScanners", "%d must be non-negative", c.ConsumerScanners)
	}
	if c.ConsumerPacketShare < 0 || c.ConsumerPacketShare > 1 {
		bad.addf(path+".ConsumerPacketShare", "%v outside [0, 1]", c.ConsumerPacketShare)
	}
}

// Kind returns "backscatter".
func (c *BackscatterConfig) Kind() string     { return KindBackscatter }
func (c *BackscatterConfig) apply(sc *Scenario) { sc.Backscatter = *c }
func (c *BackscatterConfig) validate(path string, bad *badConfig) {
	if c.TotalVictims < 0 {
		bad.addf(path+".TotalVictims", "%d must be non-negative", c.TotalVictims)
	}
	if c.CPSFrac < 0 || c.CPSFrac > 1 {
		bad.addf(path+".CPSFrac", "%v outside [0, 1]", c.CPSFrac)
	}
	validateShares(path+".CountryShares", c.CountryShares, bad)
	if c.SmallFrac < 0 || c.SmallFrac > 1 {
		bad.addf(path+".SmallFrac", "%v outside [0, 1]", c.SmallFrac)
	}
	if c.TotalVictims > 0 {
		if c.SmallXm <= 0 || c.SmallAlpha <= 0 {
			bad.addf(path+".SmallXm", "Pareto(%v, %v) needs positive xm and alpha", c.SmallXm, c.SmallAlpha)
		}
		if c.HeavyXm <= 0 || c.HeavyAlpha <= 0 {
			bad.addf(path+".HeavyXm", "Pareto(%v, %v) needs positive xm and alpha", c.HeavyXm, c.HeavyAlpha)
		}
		if c.MaxVictimTotal <= 0 {
			bad.addf(path+".MaxVictimTotal", "%v must be positive", c.MaxVictimTotal)
		}
	}
	for i, ev := range c.Events {
		p := fmt.Sprintf("%s.Events[%d]", path, i)
		if ev.Name == "" {
			bad.addf(p+".Name", "empty")
		}
		if len(ev.Hours) == 0 {
			bad.addf(p+".Hours", "empty")
		}
		for j, h := range ev.Hours {
			if h < 0 {
				bad.addf(fmt.Sprintf("%s.Hours[%d]", p, j), "negative hour %d", h)
			}
		}
		if ev.PacketsPerHour <= 0 {
			bad.addf(p+".PacketsPerHour", "%v must be positive", ev.PacketsPerHour)
		}
	}
}

// Kind returns "other".
func (c *OtherTrafficConfig) Kind() string     { return KindOther }
func (c *OtherTrafficConfig) apply(sc *Scenario) { sc.Other = *c }
func (c *OtherTrafficConfig) validate(path string, bad *badConfig) {
	if c.HourlyPackets < 0 {
		bad.addf(path+".HourlyPackets", "%v must be non-negative", c.HourlyPackets)
	}
	if c.CPSFrac < 0 || c.CPSFrac > 1 {
		bad.addf(path+".CPSFrac", "%v outside [0, 1]", c.CPSFrac)
	}
	if c.EmitterFrac < 0 || c.EmitterFrac > 1 {
		bad.addf(path+".EmitterFrac", "%v outside [0, 1]", c.EmitterFrac)
	}
}

// Kind returns "background".
func (c *BackgroundConfig) Kind() string     { return KindBackground }
func (c *BackgroundConfig) apply(sc *Scenario) { sc.Background = *c }
func (c *BackgroundConfig) validate(path string, bad *badConfig) {
	if c.HourlyPackets < 0 {
		bad.addf(path+".HourlyPackets", "%v must be non-negative", c.HourlyPackets)
	}
	if c.HourlyPackets > 0 && c.Sources <= 0 {
		bad.addf(path+".Sources", "%d must be positive when HourlyPackets > 0", c.Sources)
	}
}
