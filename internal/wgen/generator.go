package wgen

import (
	"fmt"
	"math"
	"sort"

	"iotscope/internal/devicedb"
	"iotscope/internal/geo"
	"iotscope/internal/rng"
)

// GroundTruth records what the generator planted, for validation only —
// the analysis pipeline never reads it.
type GroundTruth struct {
	Compromised  []int // device IDs, ascending
	Victims      []int
	TCPScanners  []int
	UDPProbers   []int
	ICMPScanners []int
	OnsetHour    map[int]int
	EventVictims map[string]int // DoS event name -> device ID
	// Cohorts maps each extension actor kind (mirai-wave, stealth-scan,
	// ...) to its enrolled device IDs, ascending — the truth surface the
	// scenario-library e2e fixtures assert against.
	Cohorts map[string][]int
	// ActivityWeight is each device's relative traffic intensity, used by
	// the threat-intelligence and malware-database generators to bias
	// flags toward loud devices the way real intel sources do.
	ActivityWeight map[int]float64
}

// Generator owns the synthetic world: registry, inventory, and the actor
// population with its behaviours.
type Generator struct {
	sc  Scenario
	reg *geo.Registry
	inv *devicedb.Inventory

	actors      []*actor
	byID        map[int]*actor
	bgPool      []uint32 // background source addresses (non-inventory)
	diurnalPool []uint32 // smart-home diurnal sources (non-inventory)
	truth       GroundTruth
	root        *rng.Source
	haveGen     bool
}

// actor is one compromised device with its assigned behaviours.
type actor struct {
	id        int
	dev       devicedb.Device
	onset     int
	dayProb   float64
	hourDuty  float64
	rateMult  float64
	tcpSvcs   []svcMembership
	tcpRandom float64 // mean random-port scan pkts per active hour
	udpGroups []groupMembership
	udpTail   float64 // mean tail-port UDP pkts per active hour
	icmpRate  float64
	otherRate float64
	victim    *victimState
	scripted  []scriptedEvent
	ext       *extBehaviour
}

type svcMembership struct {
	svc  int // index into Scenario.TCPScan.Services
	rate float64
}

type groupMembership struct {
	port uint16
	rate float64
}

type victimState struct {
	schedule map[int]float64 // hour -> backscatter packets
	srcPort  uint16
}

type scriptedKind uint8

const (
	scriptBackroom scriptedKind = iota + 1
	scriptSSHSpike
	scriptPortSpike
)

type scriptedEvent struct {
	kind         scriptedKind
	hours        map[int]bool // nil for scriptBackroom (uses fromHour)
	fromHour     int
	packetsPerHr float64
	port         uint16
	ports        int // port-spike sweep width
	dests        int
}

// New builds the world for a scenario: geo registry, inventory, compromised
// selection, behaviour assignment, and scripted events, all deterministic
// from sc.Seed.
func New(sc Scenario) (*Generator, error) {
	if sc.Scale <= 0 || sc.Scale > 1 {
		return nil, fmt.Errorf("wgen: scale %v out of (0, 1]", sc.Scale)
	}
	if sc.Hours <= 0 {
		return nil, fmt.Errorf("wgen: hours %d must be positive", sc.Hours)
	}
	reg, err := geo.Build(sc.Geo, sc.Seed)
	if err != nil {
		return nil, fmt.Errorf("wgen: build registry: %w", err)
	}
	invSize := scaleCount(sc.InventorySize, sc.Scale)
	inv, err := devicedb.Generate(devicedb.DefaultGenConfig(invSize), reg, sc.Seed)
	if err != nil {
		return nil, fmt.Errorf("wgen: build inventory: %w", err)
	}
	g := &Generator{
		sc:   sc,
		reg:  reg,
		inv:  inv,
		byID: make(map[int]*actor),
		root: rng.New(sc.Seed).Derive("wgen"),
	}
	if err := g.selectCompromised(); err != nil {
		return nil, err
	}
	g.assignBehaviours()
	g.assignOnsets()
	// Scripted events may pull actor onsets earlier; baseline victim
	// schedules are laid out afterwards against final onsets.
	if err := g.assignScripted(); err != nil {
		return nil, err
	}
	g.assignVictims(g.root.Derive("victims"))
	g.ensureAllEmit()
	g.buildBackgroundPool()
	// Extension cohorts join last, from freshly-labelled streams, so the
	// baseline population above is identical with or without them.
	if err := g.applyExtensions(); err != nil {
		return nil, err
	}
	g.finalizeTruth()
	g.haveGen = true
	return g, nil
}

// Registry exposes the synthetic Internet registry.
func (g *Generator) Registry() *geo.Registry { return g.reg }

// Inventory exposes the device inventory.
func (g *Generator) Inventory() *devicedb.Inventory { return g.inv }

// Truth exposes the planted ground truth (for validation only).
func (g *Generator) Truth() GroundTruth { return g.truth }

// Scenario returns the generating scenario.
func (g *Generator) Scenario() Scenario { return g.sc }

// scaleCount scales a full-scale population, keeping non-zero populations
// alive at small scales.
func scaleCount(n int, scale float64) int {
	if n <= 0 {
		return 0
	}
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// activeFraction is the expected fraction of post-onset hours an actor is
// active, used to convert aggregate hourly targets into per-device rates.
func (g *Generator) activeFraction() float64 {
	meanDuty := (g.sc.HourDutyMin + g.sc.HourDutyMax) / 2
	return g.sc.DayActiveProb * meanDuty
}

// selectCompromised picks the compromised device population, stratified by
// country (Sec. III-B) and consumer type (Fig. 3).
func (g *Generator) selectCompromised() error {
	sc := g.sc
	r := g.root.Derive("select")
	nComp := scaleCount(sc.CompromisedTotal, sc.Scale)
	nCons := int(float64(nComp)*sc.ConsumerCompromisedShare + 0.5)
	nCPS := nComp - nCons

	// Bucket inventory by (category, country, type), shuffled.
	consBuckets := make(map[string]map[devicedb.DeviceType][]int)
	cpsBuckets := make(map[string][]int)
	for i, d := range g.inv.All() {
		if d.Category == devicedb.Consumer {
			m := consBuckets[d.Country]
			if m == nil {
				m = make(map[devicedb.DeviceType][]int)
				consBuckets[d.Country] = m
			}
			m[d.Type] = append(m[d.Type], i)
		} else {
			cpsBuckets[d.Country] = append(cpsBuckets[d.Country], i)
		}
	}
	// Shuffle each bucket with its own derived stream so results do not
	// depend on map iteration order.
	for code, m := range consBuckets {
		for typ, list := range m {
			shuffleInts(r.Derive("bucket", code, typ.String()), list)
		}
	}
	for code, list := range cpsBuckets {
		shuffleInts(r.Derive("bucket", code), list)
	}

	taken := make(map[int]bool, nComp)

	// Consumer selection: country apportionment, then type apportionment.
	codes, shares := expandShares(sc.ConsumerCountryShares, g.reg)
	counts := devicedb.Apportion(nCons, shares)
	typeWeights := make([]float64, len(sc.ConsumerTypeShares))
	for i, tw := range sc.ConsumerTypeShares {
		typeWeights[i] = tw.Weight
	}
	var consumerLeftover int
	for ci, code := range codes {
		need := counts[ci]
		if need == 0 {
			continue
		}
		perType := devicedb.Apportion(need, typeWeights)
		for ti, tn := range perType {
			typ := sc.ConsumerTypeShares[ti].Type
			got := takeFrom(consBuckets[code][typ], taken, tn)
			missing := tn - len(got)
			g.addCompromised(got)
			if missing > 0 {
				// Fallback 1: same country, any type (fixed type order so
				// the walk is deterministic).
				for _, ft := range devicedb.ConsumerTypes() {
					if missing == 0 {
						break
					}
					extra := takeFrom(consBuckets[code][ft], taken, missing)
					g.addCompromised(extra)
					missing -= len(extra)
				}
			}
			consumerLeftover += missing
		}
	}
	// Fallback 2: any country.
	if consumerLeftover > 0 {
		g.fillAnywhere(r, devicedb.Consumer, taken, consumerLeftover)
	}

	// CPS selection.
	codes, shares = expandShares(sc.CPSCountryShares, g.reg)
	counts = devicedb.Apportion(nCPS, shares)
	var cpsLeftover int
	for ci, code := range codes {
		need := counts[ci]
		if need == 0 {
			continue
		}
		got := takeFrom(cpsBuckets[code], taken, need)
		g.addCompromised(got)
		cpsLeftover += need - len(got)
	}
	if cpsLeftover > 0 {
		g.fillAnywhere(r, devicedb.CPS, taken, cpsLeftover)
	}

	if len(g.actors) == 0 {
		return fmt.Errorf("wgen: no compromised devices selected")
	}

	// Per-actor rate profile. Heavy emitters are persistently active (a
	// Mirai-style bot scans around the clock); without this coupling a
	// single big-multiplier device would hold most of a small group's
	// packet budget while being active only a handful of random hours,
	// making aggregate realm splits swing wildly between seeds.
	or := g.root.Derive("profile")
	for _, a := range g.actors {
		a.hourDuty = sc.HourDutyMin + or.Float64()*(sc.HourDutyMax-sc.HourDutyMin)
		a.dayProb = sc.DayActiveProb
		sigma := sc.RateSpreadSigma
		a.rateMult = or.LogNormal(-sigma*sigma/2, sigma)
		if a.rateMult > 1 {
			boost := math.Log1p(a.rateMult)
			a.dayProb = math.Min(0.97, a.dayProb+0.25*boost)
			a.hourDuty = math.Min(0.92, a.hourDuty*(1+0.5*boost))
		}
		// The heaviest emitters never pause at all: their hour-to-hour
		// variation comes solely from volume jitter, decoupling hourly scan
		// volume from the fluctuating count of active light devices
		// (Sec. IV-C reports r ~ 0 between the two).
		if a.rateMult > 2.5 {
			a.dayProb = 1
			a.hourDuty = 1
		}
	}
	return nil
}

// assignOnsets places first-appearance hours after behaviours are known.
// TCP scanners all onset during day one — they are 46 % of the population,
// which *is* the paper's day-one discovery cohort (Fig. 2: ~12 K devices on
// day one, ~2.9 K newly discovered per later day) — and keeping the
// scanning population stationary also reproduces the paper's r ~ 0 between
// hourly scanner counts and scan volume. Non-scanners trickle in over the
// remaining days.
func (g *Generator) assignOnsets() {
	sc := g.sc
	or := g.root.Derive("onset")
	day1Hours := 24
	if sc.Hours < 24 {
		day1Hours = sc.Hours
	}
	for _, a := range g.actors {
		// ICMP scanners and the heaviest emitters belong to the same
		// always-running campaigns as the TCP scanners.
		isScanner := len(a.tcpSvcs) > 0 || a.tcpRandom > 0 ||
			a.icmpRate > 0 || a.rateMult > 2.5
		switch {
		case isScanner:
			// Ongoing campaigns predate the capture window: scanners are
			// all visible within the first hours, keeping the hourly
			// scanning-device count stationary (the Fig. 2 curve is daily,
			// so the intra-day-one spread is immaterial).
			a.onset = or.Intn(minInt(3, day1Hours))
		case sc.Hours <= day1Hours || or.Bool(sc.Day1Fraction):
			a.onset = or.Intn(day1Hours)
		default:
			a.onset = day1Hours + or.Intn(sc.Hours-day1Hours)
		}
	}
}

func (g *Generator) addCompromised(ids []int) {
	for _, id := range ids {
		a := &actor{id: id, dev: g.inv.At(id)}
		g.actors = append(g.actors, a)
		g.byID[id] = a
	}
}

// fillAnywhere tops up the compromised set with any unused device of the
// category.
func (g *Generator) fillAnywhere(r *rng.Source, cat devicedb.Category, taken map[int]bool, need int) {
	if need <= 0 {
		return
	}
	var pool []int
	for i, d := range g.inv.All() {
		if d.Category == cat && !taken[i] {
			pool = append(pool, i)
		}
	}
	shuffleInts(r, pool)
	if need > len(pool) {
		need = len(pool)
	}
	got := takeFrom(pool[:need], taken, need)
	g.addCompromised(got)
}

// takeFrom removes up to n untaken IDs from list, marking them taken.
func takeFrom(list []int, taken map[int]bool, n int) []int {
	var out []int
	for _, id := range list {
		if len(out) == n {
			break
		}
		if taken[id] {
			continue
		}
		taken[id] = true
		out = append(out, id)
	}
	return out
}

func shuffleInts(r *rng.Source, xs []int) {
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// expandShares resolves configured country shares against the registry,
// spreading the residual uniformly over unlisted countries.
func expandShares(listed []Share, reg *geo.Registry) (codes []string, weights []float64) {
	m := make(map[string]float64, len(listed))
	total := 0.0
	for _, s := range listed {
		m[s.Code] = s.Share
		total += s.Share
	}
	residual := 0.0
	if total < 100 {
		residual = 100 - total
	}
	nUnlisted := 0
	for _, c := range reg.Countries {
		if _, ok := m[c.Code]; !ok {
			nUnlisted++
		}
	}
	per := 0.0
	if nUnlisted > 0 {
		per = residual / float64(nUnlisted)
	}
	for _, c := range reg.Countries {
		codes = append(codes, c.Code)
		if w, ok := m[c.Code]; ok {
			weights = append(weights, w)
		} else {
			weights = append(weights, per)
		}
	}
	return codes, weights
}

// assignBehaviours distributes scanning, probing, ICMP, backscatter, and
// noise roles over the compromised population, with per-device rates
// derived from the scenario's full-scale hourly targets.
func (g *Generator) assignBehaviours() {
	sc := g.sc
	r := g.root.Derive("behaviours")

	consumer, cps := g.splitActors()

	// --- TCP scanners (Sec. IV-C / Table V).
	nScan := scaleCount(sc.TCPScan.TotalScanners, sc.Scale)
	nScanCons := int(float64(nScan)*sc.TCPScan.ConsumerFrac + 0.5)
	nScanCPS := nScan - nScanCons
	scanCons := samplePool(r, consumer, nScanCons)
	scanCPS := samplePool(r, cps, nScanCPS)

	totalScanPkts := (sc.TCPScan.HourlyPacketsConsumer + sc.TCPScan.HourlyPacketsCPS) * sc.Scale
	for si, svc := range sc.TCPScan.Services {
		if svc.PacketShare <= 0 {
			continue
		}
		svcPkts := svc.PacketShare / 100 * totalScanPkts
		g.addSvcMembers(r, scanCons, scaleCount(svc.ConsumerDevices, sc.Scale), si,
			svcPkts*svc.ConsumerPacketFrac, svc.ConsumerDevices > 0)
		g.addSvcMembers(r, scanCPS, scaleCount(svc.CPSDevices, sc.Scale), si,
			svcPkts*(1-svc.ConsumerPacketFrac), svc.CPSDevices > 0)
	}
	// Random-port scanning, CPS-heavy (drives Fig. 9's port-width gap).
	tailPkts := sc.TCPScan.RandomPortShare / 100 * totalScanPkts
	g.assignNormalized(scanCPS, tailPkts*sc.TCPScan.RandomPortCPSFrac,
		func(a *actor, rate float64) { a.tcpRandom = rate })
	g.assignNormalized(scanCons, tailPkts*(1-sc.TCPScan.RandomPortCPSFrac),
		func(a *actor, rate float64) { a.tcpRandom = rate })

	// --- UDP probers (Sec. IV-A / Table IV).
	nProbe := scaleCount(sc.UDPProbe.TotalProbers, sc.Scale)
	nProbeCons := int(float64(nProbe)*sc.UDPProbe.ConsumerFrac + 0.5)
	probeCons := samplePool(r, consumer, nProbeCons)
	probeCPS := samplePool(r, cps, nProbe-nProbeCons)

	udpTotal := sc.UDPProbe.HourlyPackets * sc.Scale
	groupShareSum := 0.0
	for _, pg := range sc.UDPProbe.PortGroups {
		groupShareSum += pg.PacketShare
	}
	for _, pg := range sc.UDPProbe.PortGroups {
		pkts := pg.PacketShare / 100 * udpTotal
		members := scaleCount(pg.Devices, sc.Scale)
		// Membership split follows the prober pools (60/40).
		mCons := int(float64(members)*sc.UDPProbe.ConsumerFrac + 0.5)
		burstE := 1 + sc.UDPProbe.CPSBurstProb*(sc.UDPProbe.CPSBurstFactor-1)
		g.addGroupMembers(r, probeCons, mCons, pg.Port, pkts*sc.UDPProbe.ConsumerPacketShare, 1)
		g.addGroupMembers(r, probeCPS, members-mCons, pg.Port, pkts*(1-sc.UDPProbe.ConsumerPacketShare), burstE)
	}
	tailUDP := (100 - groupShareSum) / 100 * udpTotal
	tailBurstE := 1 + sc.UDPProbe.CPSBurstProb*(sc.UDPProbe.CPSBurstFactor-1)
	g.assignNormalized(probeCons, tailUDP*sc.UDPProbe.ConsumerPacketShare,
		func(a *actor, rate float64) { a.udpTail = rate })
	g.assignNormalized(probeCPS, tailUDP*(1-sc.UDPProbe.ConsumerPacketShare)/tailBurstE,
		func(a *actor, rate float64) { a.udpTail = rate })

	// --- ICMP scanners.
	nICMP := scaleCount(sc.ICMPScan.TotalScanners, sc.Scale)
	nICMPCons := scaleCount(sc.ICMPScan.ConsumerScanners, sc.Scale)
	if nICMPCons > nICMP {
		nICMPCons = nICMP
	}
	icmpCons := samplePool(r, consumer, nICMPCons)
	icmpCPS := samplePool(r, cps, nICMP-nICMPCons)
	icmpTotal := sc.ICMPScan.HourlyPackets * sc.Scale
	g.assignNormalized(icmpCons, icmpTotal*sc.ICMPScan.ConsumerPacketShare,
		func(a *actor, rate float64) { a.icmpRate = rate })
	g.assignNormalized(icmpCPS, icmpTotal*(1-sc.ICMPScan.ConsumerPacketShare),
		func(a *actor, rate float64) { a.icmpRate = rate })

	// --- Other-traffic emitters.
	nOther := int(float64(len(g.actors))*sc.Other.EmitterFrac + 0.5)
	otherActors := samplePool(r, g.actors, nOther)
	otherTotal := sc.Other.HourlyPackets * sc.Scale
	var oCons, oCPS []*actor
	for _, a := range otherActors {
		if a.dev.Category == devicedb.Consumer {
			oCons = append(oCons, a)
		} else {
			oCPS = append(oCPS, a)
		}
	}
	g.assignNormalized(oCPS, otherTotal*sc.Other.CPSFrac,
		func(a *actor, rate float64) { a.otherRate = rate })
	g.assignNormalized(oCons, otherTotal*(1-sc.Other.CPSFrac),
		func(a *actor, rate float64) { a.otherRate = rate })
}

// splitActors partitions the compromised set by realm.
func (g *Generator) splitActors() (consumer, cps []*actor) {
	for _, a := range g.actors {
		if a.dev.Category == devicedb.Consumer {
			consumer = append(consumer, a)
		} else {
			cps = append(cps, a)
		}
	}
	return consumer, cps
}

// samplePool draws up to n distinct actors from pool.
func samplePool(r *rng.Source, pool []*actor, n int) []*actor {
	if n >= len(pool) {
		return append([]*actor(nil), pool...)
	}
	if n <= 0 {
		return nil
	}
	idx := r.SampleK(len(pool), n)
	out := make([]*actor, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// actorWeight is the actor's expected per-hour activity contribution: its
// rate multiplier scaled by how often it is active and how much of the
// window follows its onset. Normalizing group budgets by the sum of these
// weights makes every group's expected output match its packet target for
// the *realized* population — at small scales a handful of log-normal
// multiplier or late-onset draws would otherwise swing the Table IV/V
// shares wildly.
func (g *Generator) actorWeight(a *actor) float64 {
	// Onset is deliberately not compensated for: a late-arriving device
	// simply contributes less, as in reality. Heavy devices onset on day
	// one, so group budgets remain nearly exact where it matters.
	return a.rateMult * a.dayProb * a.hourDuty
}

// rateUnit converts a per-hour group packet budget into the rate multiplied
// by each member's rateMult at emission time. The unit is clamped so no
// single member can burst beyond twice the whole group's hourly
// budget — tiny groups with unlucky weight draws degrade gracefully
// (under-deliver) instead of emitting absurd hourly spikes.
func (g *Generator) rateUnit(members []*actor, pkts float64) float64 {
	var wsum, maxMult float64
	for _, a := range members {
		wsum += g.actorWeight(a)
		if a.rateMult > maxMult {
			maxMult = a.rateMult
		}
	}
	if wsum <= 0 {
		return 0
	}
	unit := pkts / wsum
	if maxMult > 0 && unit*maxMult > 2*pkts {
		unit = 2 * pkts / maxMult
	}
	return unit
}

// assignNormalized spreads a per-hour packet budget over members via set.
func (g *Generator) assignNormalized(members []*actor, pkts float64, set func(*actor, float64)) {
	if pkts <= 0 || len(members) == 0 {
		return
	}
	unit := g.rateUnit(members, pkts)
	for _, a := range members {
		set(a, unit)
	}
}

// addSvcMembers enrolls count members from pool into TCP service si with a
// shared packet budget.
func (g *Generator) addSvcMembers(r *rng.Source, pool []*actor, count, si int, pkts float64, wanted bool) {
	if !wanted || pkts <= 0 || len(pool) == 0 {
		return
	}
	members := samplePool(r, pool, count)
	if len(members) == 0 {
		return
	}
	unit := g.rateUnit(members, pkts)
	for _, a := range members {
		a.tcpSvcs = append(a.tcpSvcs, svcMembership{svc: si, rate: unit})
	}
}

// addGroupMembers enrolls count members from pool into a UDP port group.
// burstE discounts the rate by the expected burst inflation so CPS bursts
// do not blow the UDP budget.
func (g *Generator) addGroupMembers(r *rng.Source, pool []*actor, count int, port uint16, pkts, burstE float64) {
	if pkts <= 0 || count <= 0 || len(pool) == 0 {
		return
	}
	if burstE < 1 {
		burstE = 1
	}
	members := samplePool(r, pool, count)
	unit := g.rateUnit(members, pkts) / burstE
	for _, a := range members {
		a.udpGroups = append(a.udpGroups, groupMembership{port: port, rate: unit})
	}
}

// victimCPSBias adjusts the CPS fraction of victims per country (Fig. 8a:
// CN and US victims are CPS-heavy, SG and ID consumer-heavy).
var victimCPSBias = map[string]float64{
	"CN": 0.75, "US": 0.65, "SG": 0.15, "ID": 0.15,
}

// assignVictims places the baseline (non-scripted) DoS victims.
func (g *Generator) assignVictims(r *rng.Source) {
	sc := g.sc
	nVict := scaleCount(sc.Backscatter.TotalVictims, sc.Scale)
	codes, weights := expandShares(sc.Backscatter.CountryShares, g.reg)
	counts := devicedb.Apportion(nVict, weights)

	byCountryCat := make(map[string]map[devicedb.Category][]*actor)
	for _, a := range g.actors {
		m := byCountryCat[a.dev.Country]
		if m == nil {
			m = make(map[devicedb.Category][]*actor)
			byCountryCat[a.dev.Country] = m
		}
		m[a.dev.Category] = append(m[a.dev.Category], a)
	}
	var leftovers int
	for ci, code := range codes {
		need := counts[ci]
		if need == 0 {
			continue
		}
		cpsFrac := sc.Backscatter.CPSFrac
		if bias, ok := victimCPSBias[code]; ok {
			cpsFrac = bias
		}
		for k := 0; k < need; k++ {
			cat := devicedb.Consumer
			if r.Bool(cpsFrac) {
				cat = devicedb.CPS
			}
			a := pickVictim(r, byCountryCat[code], cat)
			if a == nil {
				leftovers++
				continue
			}
			g.makeBaselineVictim(r, a)
		}
	}
	// Spill leftovers anywhere.
	for leftovers > 0 {
		a := g.actors[r.Intn(len(g.actors))]
		if a.victim == nil {
			g.makeBaselineVictim(r, a)
			leftovers--
			continue
		}
		// Dense victim population already; give up gracefully.
		break
	}
}

func pickVictim(r *rng.Source, m map[devicedb.Category][]*actor, want devicedb.Category) *actor {
	if m == nil {
		return nil
	}
	for _, cat := range []devicedb.Category{want, otherCategory(want)} {
		pool := m[cat]
		if len(pool) == 0 {
			continue
		}
		start := r.Intn(len(pool))
		for i := 0; i < len(pool); i++ {
			a := pool[(start+i)%len(pool)]
			if a.victim == nil {
				return a
			}
		}
	}
	return nil
}

func otherCategory(c devicedb.Category) devicedb.Category {
	if c == devicedb.Consumer {
		return devicedb.CPS
	}
	return devicedb.Consumer
}

// makeBaselineVictim gives the actor a heavy-tailed backscatter schedule.
// Per-victim volumes are deliberately NOT scaled: populations scale, device
// behaviour does not, so the Fig. 6 CDF holds at any scale.
func (g *Generator) makeBaselineVictim(r *rng.Source, a *actor) {
	bc := g.sc.Backscatter
	var total float64
	if r.Bool(bc.SmallFrac) {
		total = r.Pareto(bc.SmallXm, bc.SmallAlpha)
	} else {
		total = r.Pareto(bc.HeavyXm, bc.HeavyAlpha)
	}
	if a.dev.Category == devicedb.CPS && bc.CPSVolumeFactor > 0 {
		total *= bc.CPSVolumeFactor
	}
	if total > bc.MaxVictimTotal {
		// Jitter clamped totals so they do not pile on one CDF point.
		total = bc.MaxVictimTotal * (0.5 + 0.5*r.Float64())
	}
	if total < 1 {
		total = 1
	}
	// Victims draw fire throughout the window (Fig. 7 shows backscatter in
	// every interval), so a victim's first appearance lands on day one
	// even when its own probing starts later.
	if day1 := minInt(24, g.sc.Hours); a.onset >= day1 {
		a.onset = r.Intn(day1)
	}
	// CPS devices are "attacked more often and with higher intensity"
	// (Sec. IV-B1): near-continuous harassment, while consumer victims see
	// short bursts.
	hours := 5 + r.Intn(10)
	if a.dev.Category == devicedb.CPS {
		hours = 50 + r.Intn(50)
	}
	schedule := make(map[int]float64, hours)
	span := g.sc.Hours - a.onset
	if span < 1 {
		span = 1
	}
	for i := 0; i < hours; i++ {
		h := a.onset + r.Intn(span)
		schedule[h] += total / float64(hours)
	}
	a.victim = &victimState{schedule: schedule, srcPort: devicePort(a.dev)}
}

// devicePort maps a device to the service port its backscatter carries
// (the port the paper used to identify victims' exposed services).
func devicePort(d devicedb.Device) uint16 {
	if d.Category == devicedb.CPS {
		if len(d.Services) > 0 {
			if p, ok := cpsServicePorts[d.Services[0]]; ok {
				return p
			}
		}
		return 502
	}
	switch d.Type {
	case devicedb.TypeRouter:
		return 7547
	case devicedb.TypeIPCamera:
		return 554
	case devicedb.TypePrinter:
		return 9100
	case devicedb.TypeStorage:
		return 445
	case devicedb.TypeDVR:
		return 8000
	default:
		return 80
	}
}

// cpsServicePorts maps CPS services to representative ports. Ethernet/IP's
// 44818 is load-bearing: the paper identifies the big DoS victims by it.
var cpsServicePorts = map[string]uint16{
	"Ethernet/IP":              44818,
	"Modbus TCP":               502,
	"BACnet/IP":                47808,
	"Telvent OASyS DNA":        5050,
	"SNC GENe":                 38000,
	"MQ Telemetry Transport":   1883,
	"Niagara Fox":              1911,
	"ABB Ranger":               10307,
	"Siemens Spectrum PowerTG": 8090,
	"Foxboro/Invensys Foxboro": 55555,
	"Foundation Fieldbus HSE":  1089,
}

// assignScripted wires the paper's narrated events to concrete devices.
func (g *Generator) assignScripted() error {
	sc := g.sc
	r := g.root.Derive("scripted")
	g.truth.EventVictims = make(map[string]int)
	used := make(map[int]bool)

	// DoS events, each on a distinct device.
	for _, ev := range sc.Backscatter.Events {
		a := g.findActor(r, ev.Country, ev.Category, ev.Service, ev.DeviceType, used)
		if a == nil {
			return fmt.Errorf("wgen: no candidate device for DoS event %q", ev.Name)
		}
		used[a.id] = true
		if a.victim == nil {
			a.victim = &victimState{
				schedule: make(map[int]float64),
				srcPort:  devicePort(a.dev),
			}
		}
		for _, h := range ev.Hours {
			if h < g.sc.Hours {
				a.victim.schedule[h] += ev.PacketsPerHour * sc.Scale
			}
			if h < a.onset {
				a.onset = h
			}
		}
		g.truth.EventVictims[ev.Name] = a.id
	}

	// SSH spike members.
	spike := sc.TCPScan.SSHSpike
	for _, m := range spike.Members {
		a := g.findActor(r, m.Country, m.Category, "", 0, used)
		if a == nil {
			continue
		}
		used[a.id] = true
		ev := scriptedEvent{
			kind:         scriptSSHSpike,
			hours:        make(map[int]bool, len(spike.Hours)),
			packetsPerHr: spike.PacketsPerHour * sc.Scale * m.PacketFrac,
			port:         22,
		}
		for _, h := range spike.Hours {
			ev.hours[h] = true
			if h < a.onset {
				a.onset = h
			}
		}
		a.scripted = append(a.scripted, ev)
	}

	// BackroomNet scanner: a single CPS device.
	if sc.TCPScan.BackroomPacketsPerHour > 0 {
		a := g.findActor(r, sc.TCPScan.BackroomCountry, devicedb.CPS,
			sc.TCPScan.BackroomService, 0, used)
		if a == nil {
			a = g.findActor(r, "", devicedb.CPS, "", 0, used)
		}
		if a != nil {
			used[a.id] = true
			a.scripted = append(a.scripted, scriptedEvent{
				kind:         scriptBackroom,
				fromHour:     sc.TCPScan.BackroomStartHour,
				packetsPerHr: sc.TCPScan.BackroomPacketsPerHour * sc.Scale,
				port:         3387,
			})
			if sc.TCPScan.BackroomStartHour < a.onset {
				a.onset = sc.TCPScan.BackroomStartHour
			}
		}
	}

	// Port-spike camera.
	if sc.TCPScan.PortSpikePorts > 0 && sc.TCPScan.PortSpikeHour < sc.Hours {
		a := g.findConsumerOfType(r, sc.TCPScan.PortSpikeCountry, devicedb.TypeIPCamera, used)
		if a != nil {
			used[a.id] = true
			a.scripted = append(a.scripted, scriptedEvent{
				kind:  scriptPortSpike,
				hours: map[int]bool{sc.TCPScan.PortSpikeHour: true},
				ports: sc.TCPScan.PortSpikePorts,
				dests: sc.TCPScan.PortSpikeDests,
			})
			if sc.TCPScan.PortSpikeHour < a.onset {
				a.onset = sc.TCPScan.PortSpikeHour
			}
		}
	}
	return nil
}

// findActor locates a compromised device matching the selector, relaxing
// constraints country -> service/type -> category as needed.
func (g *Generator) findActor(r *rng.Source, country string, cat devicedb.Category,
	service string, typ devicedb.DeviceType, used map[int]bool) *actor {

	match := func(a *actor, needCountry, needSvc, needType bool) bool {
		if used != nil && used[a.id] {
			return false
		}
		if a.dev.Category != cat {
			return false
		}
		if needCountry && country != "" && a.dev.Country != country {
			return false
		}
		if needSvc && service != "" && !hasService(a.dev, service) {
			return false
		}
		if needType && typ != 0 && a.dev.Type != typ {
			return false
		}
		return true
	}
	relaxations := []struct{ country, svc, typ bool }{
		{true, true, true},
		{false, true, true},
		{true, false, false},
		{false, false, false},
	}
	for _, rx := range relaxations {
		start := r.Intn(len(g.actors))
		for i := 0; i < len(g.actors); i++ {
			a := g.actors[(start+i)%len(g.actors)]
			if match(a, rx.country, rx.svc, rx.typ) {
				return a
			}
		}
	}
	return nil
}

func (g *Generator) findConsumerOfType(r *rng.Source, country string,
	typ devicedb.DeviceType, used map[int]bool) *actor {
	return g.findActor(r, country, devicedb.Consumer, "", typ, used)
}

func hasService(d devicedb.Device, svc string) bool {
	for _, s := range d.Services {
		if s == svc {
			return true
		}
	}
	return false
}

// ensureAllEmit guarantees every compromised device produces at least some
// darknet traffic (the paper defines "compromised" by appearance at the
// telescope), assigning a trickle UDP tail to silent devices.
func (g *Generator) ensureAllEmit() {
	for _, a := range g.actors {
		if len(a.tcpSvcs) == 0 && a.tcpRandom == 0 && len(a.udpGroups) == 0 &&
			a.udpTail == 0 && a.icmpRate == 0 && a.otherRate == 0 &&
			a.victim == nil && len(a.scripted) == 0 {
			a.udpTail = 2 // a couple of packets per active hour
		}
	}
}

// buildBackgroundPool pre-draws the non-IoT source population.
func (g *Generator) buildBackgroundPool() {
	r := g.root.Derive("background")
	n := scaleCount(g.sc.Background.Sources, g.sc.Scale)
	g.bgPool = make([]uint32, 0, n)
	nISPs := len(g.reg.ISPs)
	for len(g.bgPool) < n {
		a := g.reg.RandomAddr(r, r.Intn(nISPs))
		if _, inInv := g.inv.LookupIP(a); inInv {
			continue
		}
		g.bgPool = append(g.bgPool, uint32(a))
	}
}

// finalizeTruth snapshots the planted ground truth.
func (g *Generator) finalizeTruth() {
	t := &g.truth
	t.OnsetHour = make(map[int]int, len(g.actors))
	t.ActivityWeight = make(map[int]float64, len(g.actors))
	for _, a := range g.actors {
		t.Compromised = append(t.Compromised, a.id)
		t.OnsetHour[a.id] = a.onset
		t.ActivityWeight[a.id] = g.actorWeight(a)
		if a.victim != nil {
			t.Victims = append(t.Victims, a.id)
		}
		if len(a.tcpSvcs) > 0 || a.tcpRandom > 0 {
			t.TCPScanners = append(t.TCPScanners, a.id)
		}
		if len(a.udpGroups) > 0 || a.udpTail > 0 {
			t.UDPProbers = append(t.UDPProbers, a.id)
		}
		if a.icmpRate > 0 {
			t.ICMPScanners = append(t.ICMPScanners, a.id)
		}
	}
	sort.Ints(t.Compromised)
	sort.Ints(t.Victims)
	sort.Ints(t.TCPScanners)
	sort.Ints(t.UDPProbers)
	sort.Ints(t.ICMPScanners)
	for _, ids := range t.Cohorts {
		sort.Ints(ids)
	}
}

// expectedHourlyPackets returns a rough expectation of total IoT packets
// per hour at the scenario scale, used by tests as a sanity envelope.
func (g *Generator) expectedHourlyPackets() float64 {
	sc := g.sc
	return (sc.TCPScan.HourlyPacketsConsumer + sc.TCPScan.HourlyPacketsCPS +
		sc.UDPProbe.HourlyPackets + sc.ICMPScan.HourlyPackets +
		sc.Other.HourlyPackets) * sc.Scale
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
