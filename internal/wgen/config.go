package wgen

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"iotscope/internal/devicedb"
	"iotscope/internal/geo"
)

// ConfigFormat is the scenario-file format version this build reads and
// writes. Files carrying any other Format are rejected before field
// decoding so future formats can change shape freely.
const ConfigFormat = 1

// ErrBadScenario is wrapped by every scenario-config validation and decode
// failure, so callers can distinguish "the file is wrong" from I/O errors
// with a single errors.Is check.
var ErrBadScenario = errors.New("invalid scenario config")

// FieldError pins a validation failure to the config field that caused it,
// using a JSON-ish path like "Actors[2].Params.Services[0].Ports".
type FieldError struct {
	Path string
	Msg  string
}

func (e *FieldError) Error() string { return "wgen: " + e.Path + ": " + e.Msg }

// Unwrap makes every field error match ErrBadScenario.
func (e *FieldError) Unwrap() error { return ErrBadScenario }

// Population is the declarative form of the scenario's compromised-device
// population shape (Sec. III-B): who exists, who is compromised, and the
// activity envelope every actor draws from.
type Population struct {
	InventorySize            int
	CompromisedTotal         int
	ConsumerCompromisedShare float64
	ConsumerCountryShares    []Share
	CPSCountryShares         []Share
	ConsumerTypeShares       []devicedb.TypeWeight
	Day1Fraction             float64
	DayActiveProb            float64
	HourDutyMin              float64
	HourDutyMax              float64
	RateSpreadSigma          float64
}

// Config is one declarative, versioned scenario: a population plus a list
// of composable actor blocks, each handled by a registered generator kind.
// It deliberately excludes the run-time inputs (scale, seed): those are
// supplied at resolve time and recorded in the run manifest, so one config
// reproduces at any scale.
type Config struct {
	// Format is the file-format version (must equal ConfigFormat).
	Format int
	// Name identifies the scenario; Version is bumped on any semantic
	// change so runs can pin "name@version".
	Name    string
	Version int
	// Description is free-form documentation.
	Description string
	// Hours is the capture-window length.
	Hours int
	// Telescope overrides the registry/darknet geometry; nil means the
	// paper's 44.0.0.0/8 default.
	Telescope  *geo.Config
	Population Population
	// Actors composes the workload out of registered generator kinds.
	Actors []ActorBlock
}

// ActorBlock pairs a registered generator kind with its parameters.
type ActorBlock struct {
	Kind   string
	Params Block
}

// MarshalJSON encodes the block as {"Kind": ..., "Params": {...}}.
func (b ActorBlock) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Kind   string
		Params Block
	}{b.Kind, b.Params})
}

// UnmarshalJSON decodes the kind name and defers parameter decoding to the
// registered kind's parameter type, rejecting unknown fields.
func (b *ActorBlock) UnmarshalJSON(data []byte) error {
	var wire struct {
		Kind   string
		Params json.RawMessage
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return err
	}
	spec, ok := LookupKind(wire.Kind)
	if !ok {
		return &FieldError{Path: "Kind", Msg: fmt.Sprintf("unknown actor kind %q", wire.Kind)}
	}
	block := spec.New()
	if len(wire.Params) > 0 && !bytes.Equal(wire.Params, []byte("null")) {
		pdec := json.NewDecoder(bytes.NewReader(wire.Params))
		pdec.DisallowUnknownFields()
		if err := pdec.Decode(block); err != nil {
			return fmt.Errorf("Params: %w", err)
		}
	}
	b.Kind = wire.Kind
	b.Params = block
	return nil
}

// DecodeConfig parses a scenario file, sniffing the format: JSON when the
// first non-space byte is '{', TOML otherwise. The returned config is
// validated; any failure wraps ErrBadScenario.
func DecodeConfig(data []byte) (*Config, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		return DecodeConfigJSON(data)
	}
	return DecodeConfigTOML(data)
}

// DecodeConfigJSON parses and validates a JSON scenario config.
func DecodeConfigJSON(data []byte) (*Config, error) {
	// Probe the format version first: a future-format file must fail with
	// "unsupported format", not an unknown-field complaint about a field
	// this build has never heard of.
	var probe struct{ Format int }
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadScenario, err)
	}
	if probe.Format != ConfigFormat {
		return nil, &FieldError{Path: "Format",
			Msg: fmt.Sprintf("unsupported scenario format %d (this build reads format %d)", probe.Format, ConfigFormat)}
	}
	var c Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadScenario, err)
	}
	// Reject trailing garbage after the top-level object.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after config object", ErrBadScenario)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// DecodeConfigTOML parses and validates a TOML scenario config (the subset
// documented in docs/SCENARIOS.md). The TOML tree is normalized to JSON and
// decoded through the same strict typed path, so both formats share one
// schema and produce the same canonical hash for the same content.
func DecodeConfigTOML(data []byte) (*Config, error) {
	tree, err := parseTOML(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadScenario, err)
	}
	js, err := json.Marshal(tree)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadScenario, err)
	}
	return DecodeConfigJSON(js)
}

// CanonicalJSON renders the config in its canonical on-disk form: indented
// JSON with the struct's fixed key order and a trailing newline. Decoding a
// config and re-encoding it canonically is a normalization: key order,
// whitespace, and the source format (JSON vs TOML) all wash out.
func (c *Config) CanonicalJSON() ([]byte, error) {
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// configHashDomain separates scenario-config hashes from any other SHA-256
// use in the system.
const configHashDomain = "iotscope-scenario-config/v1\n"

// Hash returns the canonical config hash ("sha256:<hex>"): SHA-256 over a
// domain prefix plus the compact canonical encoding. Two files with the
// same semantic content hash identically regardless of key order, layout,
// or source format; any semantic field change produces a new hash.
func (c *Config) Hash() (string, error) {
	compact, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(configHashDomain))
	h.Write(compact)
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}

// badConfig collects field-path validation failures.
type badConfig struct{ errs []error }

func (b *badConfig) addf(path, format string, args ...any) {
	b.errs = append(b.errs, &FieldError{Path: path, Msg: fmt.Sprintf(format, args...)})
}

func (b *badConfig) err() error {
	if len(b.errs) == 0 {
		return nil
	}
	return errors.Join(b.errs...)
}

// Validate checks the config's schema, reporting every violation with its
// field path. All failures wrap ErrBadScenario.
func (c *Config) Validate() error {
	var bad badConfig
	if c.Format != ConfigFormat {
		bad.addf("Format", "unsupported scenario format %d (this build reads format %d)", c.Format, ConfigFormat)
	}
	if c.Name == "" {
		bad.addf("Name", "empty")
	} else if !validScenarioName(c.Name) {
		bad.addf("Name", "%q must be lowercase letters, digits, and dashes", c.Name)
	}
	if c.Version < 1 {
		bad.addf("Version", "%d must be >= 1", c.Version)
	}
	if c.Hours <= 0 {
		bad.addf("Hours", "%d must be positive", c.Hours)
	}
	if t := c.Telescope; t != nil {
		if t.DarkPrefix.Bits() < 1 || t.DarkPrefix.Bits() > 30 {
			bad.addf("Telescope.DarkPrefix", "%s is not a usable telescope prefix", t.DarkPrefix)
		}
		if t.ISPsPerCountryMin < 1 || t.ISPsPerCountryMax < t.ISPsPerCountryMin {
			bad.addf("Telescope.ISPsPerCountryMin", "bad ISP bounds [%d, %d]", t.ISPsPerCountryMin, t.ISPsPerCountryMax)
		}
		if t.PrefixBits < 8 || t.PrefixBits > 24 {
			bad.addf("Telescope.PrefixBits", "%d outside [8, 24]", t.PrefixBits)
		}
		if t.PrefixesPerISP < 1 {
			bad.addf("Telescope.PrefixesPerISP", "%d must be positive", t.PrefixesPerISP)
		}
		if t.FillerCountries < 0 {
			bad.addf("Telescope.FillerCountries", "%d must be non-negative", t.FillerCountries)
		}
	}
	c.Population.validate("Population", &bad)
	seen := make(map[string]int, len(c.Actors))
	for i, a := range c.Actors {
		path := fmt.Sprintf("Actors[%d]", i)
		if a.Params == nil {
			bad.addf(path+".Kind", "unknown or missing actor kind %q", a.Kind)
			continue
		}
		if a.Kind != a.Params.Kind() {
			bad.addf(path+".Kind", "%q does not match block kind %q", a.Kind, a.Params.Kind())
		}
		if prev, dup := seen[a.Kind]; dup {
			bad.addf(path+".Kind", "duplicate actor kind %q (first at Actors[%d])", a.Kind, prev)
		}
		seen[a.Kind] = i
		a.Params.validate(path+".Params", &bad)
	}
	return bad.err()
}

func (p *Population) validate(path string, bad *badConfig) {
	if p.InventorySize <= 0 {
		bad.addf(path+".InventorySize", "%d must be positive", p.InventorySize)
	}
	if p.CompromisedTotal <= 0 {
		bad.addf(path+".CompromisedTotal", "%d must be positive", p.CompromisedTotal)
	}
	if p.ConsumerCompromisedShare < 0 || p.ConsumerCompromisedShare > 1 {
		bad.addf(path+".ConsumerCompromisedShare", "%v outside [0, 1]", p.ConsumerCompromisedShare)
	}
	validateShares(path+".ConsumerCountryShares", p.ConsumerCountryShares, bad)
	validateShares(path+".CPSCountryShares", p.CPSCountryShares, bad)
	typeTotal := 0.0
	for i, tw := range p.ConsumerTypeShares {
		if tw.Weight < 0 {
			bad.addf(fmt.Sprintf("%s.ConsumerTypeShares[%d].Weight", path, i), "%v must be non-negative", tw.Weight)
		}
		typeTotal += tw.Weight
	}
	if p.ConsumerCompromisedShare > 0 && typeTotal <= 0 {
		bad.addf(path+".ConsumerTypeShares", "no positive type weights for a consumer population")
	}
	if p.Day1Fraction < 0 || p.Day1Fraction > 1 {
		bad.addf(path+".Day1Fraction", "%v outside [0, 1]", p.Day1Fraction)
	}
	if p.DayActiveProb <= 0 || p.DayActiveProb > 1 {
		bad.addf(path+".DayActiveProb", "%v outside (0, 1]", p.DayActiveProb)
	}
	if p.HourDutyMin <= 0 || p.HourDutyMin > 1 {
		bad.addf(path+".HourDutyMin", "%v outside (0, 1]", p.HourDutyMin)
	}
	if p.HourDutyMax < p.HourDutyMin || p.HourDutyMax > 1 {
		bad.addf(path+".HourDutyMax", "%v outside [HourDutyMin, 1]", p.HourDutyMax)
	}
	if p.RateSpreadSigma < 0 {
		bad.addf(path+".RateSpreadSigma", "%v must be non-negative", p.RateSpreadSigma)
	}
}

func validateShares(path string, shares []Share, bad *badConfig) {
	total := 0.0
	for i, s := range shares {
		if s.Code == "" {
			bad.addf(fmt.Sprintf("%s[%d].Code", path, i), "empty country code")
		}
		if s.Share < 0 {
			bad.addf(fmt.Sprintf("%s[%d].Share", path, i), "%v must be non-negative", s.Share)
		}
		total += s.Share
	}
	if total > 100.0001 {
		bad.addf(path, "shares sum to %.4g%% (> 100%%)", total)
	}
}

func validScenarioName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '-' && i > 0 && i < len(name)-1:
		default:
			return false
		}
	}
	return true
}

// Scenario resolves the declarative config into a runnable Scenario at the
// given scale and seed: defaults are filled, then each actor block applies
// its parameters. The config is validated first.
func (c *Config) Scenario(scale float64, seed uint64) (Scenario, error) {
	if err := c.Validate(); err != nil {
		return Scenario{}, err
	}
	sc := Scenario{
		Seed:  seed,
		Hours: c.Hours,
		Scale: scale,

		Geo:           geo.DefaultConfig(),
		InventorySize: c.Population.InventorySize,

		CompromisedTotal:         c.Population.CompromisedTotal,
		ConsumerCompromisedShare: c.Population.ConsumerCompromisedShare,
		ConsumerCountryShares:    c.Population.ConsumerCountryShares,
		CPSCountryShares:         c.Population.CPSCountryShares,
		ConsumerTypeShares:       c.Population.ConsumerTypeShares,
		Day1Fraction:             c.Population.Day1Fraction,
		DayActiveProb:            c.Population.DayActiveProb,
		HourDutyMin:              c.Population.HourDutyMin,
		HourDutyMax:              c.Population.HourDutyMax,
		RateSpreadSigma:          c.Population.RateSpreadSigma,
	}
	if c.Telescope != nil {
		sc.Geo = *c.Telescope
	}
	for _, a := range c.Actors {
		a.Params.apply(&sc)
	}
	return sc, nil
}

// ConfigFromScenario lifts a programmatic Scenario into its declarative
// form. It is the exact inverse of Config.Scenario: resolving the returned
// config at (sc.Scale, sc.Seed) reproduces sc field for field, which is how
// the bundled paper-default file is pinned byte-identical to
// wgen.Default().
func ConfigFromScenario(sc Scenario, name string, version int, description string) *Config {
	g := sc.Geo
	c := &Config{
		Format:      ConfigFormat,
		Name:        name,
		Version:     version,
		Description: description,
		Hours:       sc.Hours,
		Telescope:   &g,
		Population: Population{
			InventorySize:            sc.InventorySize,
			CompromisedTotal:         sc.CompromisedTotal,
			ConsumerCompromisedShare: sc.ConsumerCompromisedShare,
			ConsumerCountryShares:    sc.ConsumerCountryShares,
			CPSCountryShares:         sc.CPSCountryShares,
			ConsumerTypeShares:       sc.ConsumerTypeShares,
			Day1Fraction:             sc.Day1Fraction,
			DayActiveProb:            sc.DayActiveProb,
			HourDutyMin:              sc.HourDutyMin,
			HourDutyMax:              sc.HourDutyMax,
			RateSpreadSigma:          sc.RateSpreadSigma,
		},
	}
	tcp, udp, icmp, bsc, other, bg := sc.TCPScan, sc.UDPProbe, sc.ICMPScan, sc.Backscatter, sc.Other, sc.Background
	c.Actors = []ActorBlock{
		{Kind: KindTCPScan, Params: &tcp},
		{Kind: KindUDPProbe, Params: &udp},
		{Kind: KindICMP, Params: &icmp},
		{Kind: KindBackscatter, Params: &bsc},
		{Kind: KindOther, Params: &other},
		{Kind: KindBackground, Params: &bg},
	}
	if sc.MiraiWave != nil {
		v := *sc.MiraiWave
		c.Actors = append(c.Actors, ActorBlock{Kind: KindMiraiWave, Params: &v})
	}
	if sc.UDPAmplification != nil {
		v := *sc.UDPAmplification
		c.Actors = append(c.Actors, ActorBlock{Kind: KindUDPAmplification, Params: &v})
	}
	if sc.StealthScan != nil {
		v := *sc.StealthScan
		c.Actors = append(c.Actors, ActorBlock{Kind: KindStealthScan, Params: &v})
	}
	if sc.CPSCampaign != nil {
		v := *sc.CPSCampaign
		c.Actors = append(c.Actors, ActorBlock{Kind: KindCPSCampaign, Params: &v})
	}
	if sc.DiurnalBackground != nil {
		v := *sc.DiurnalBackground
		c.Actors = append(c.Actors, ActorBlock{Kind: KindDiurnalBackground, Params: &v})
	}
	return c
}
