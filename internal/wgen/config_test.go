package wgen

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// testConfig returns a small valid config exercising both a core and an
// extension block.
func testConfig() *Config {
	cfg := ConfigFromScenario(Default(1, 0), "test-config", 3, "hash fixture")
	cfg.Hours = 12
	cfg.Actors = append(cfg.Actors, ActorBlock{
		Kind: KindStealthScan,
		Params: &StealthScanConfig{
			Scanners:       100,
			Port:           8291,
			PacketsPerHour: 3,
		},
	})
	return cfg
}

// The config model is the exact declarative form of the hand-built default:
// exporting the scenario and resolving the export reproduces it field for
// field. This is the structural half of the paper-default byte-identity
// pin (the rendered half lives in internal/scenario).
func TestConfigRoundTripsDefaultScenario(t *testing.T) {
	want := Default(0.37, 99)
	cfg := ConfigFromScenario(want, "round-trip", 1, "x")
	if err := cfg.Validate(); err != nil {
		t.Fatalf("exported default does not validate: %v", err)
	}
	got, err := cfg.Scenario(0.37, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("config round trip does not reproduce Default()")
	}
}

// Canonical-JSON round trip: decode(encode(cfg)) is cfg.
func TestCanonicalJSONRoundTrip(t *testing.T) {
	cfg := testConfig()
	data, err := cfg.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, cfg) {
		t.Fatal("canonical JSON round trip changed the config")
	}
}

// The hash is canonical: reordering keys, reformatting, or re-encoding via
// a different syntax must not change it; changing a semantic field must.
func TestConfigHashStability(t *testing.T) {
	cfg := testConfig()
	h1, err := cfg.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(h1, "sha256:") {
		t.Fatalf("hash %q lacks algorithm prefix", h1)
	}

	// Shuffle key order by bouncing the JSON through a generic map (Go
	// marshals map keys sorted, i.e. in a different order than the struct).
	canon, err := cfg.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var tree map[string]any
	if err := json.Unmarshal(canon, &tree); err != nil {
		t.Fatal(err)
	}
	shuffled, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	if string(shuffled) == string(canon) {
		t.Fatal("test vacuous: map re-marshal did not change the byte form")
	}
	cfg2, err := DecodeConfig(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := cfg2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h1 {
		t.Fatalf("key reordering changed the hash: %s vs %s", h1, h2)
	}

	// A semantic change must change the hash.
	cfg3 := testConfig()
	cfg3.Hours = 13
	h3, err := cfg3.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("semantic change did not change the hash")
	}
}

// A scenario written in TOML hashes identically to the same scenario in
// JSON: the hash is over the decoded config, not the bytes.
func TestTOMLAndJSONHashIdentically(t *testing.T) {
	const asTOML = `
Format = 1
Name = "codec-parity"
Version = 2
Hours = 6

[Population]
InventorySize = 10_000
CompromisedTotal = 500
ConsumerCompromisedShare = 0.5
Day1Fraction = 0.1
DayActiveProb = 0.5
HourDutyMin = 0.2
HourDutyMax = 0.6
RateSpreadSigma = 1.0
ConsumerCountryShares = [{ Code = "RU", Share = 60 }, { Code = "US", Share = 40 }]
CPSCountryShares = [{ Code = "CN", Share = 100 }]
ConsumerTypeShares = [{ Type = 1, Weight = 100 }]

[[Actors]]
Kind = "stealth-scan"

[Actors.Params]
Scanners = 50
Port = 8291
PacketsPerHour = 2
`
	tomlCfg, err := DecodeConfig([]byte(asTOML))
	if err != nil {
		t.Fatal(err)
	}
	jsonBytes, err := tomlCfg.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	jsonCfg, err := DecodeConfig(jsonBytes)
	if err != nil {
		t.Fatal(err)
	}
	ht, err := tomlCfg.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hj, err := jsonCfg.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ht != hj {
		t.Fatalf("TOML and JSON forms hash differently: %s vs %s", ht, hj)
	}
}

func TestDecodeConfigFaults(t *testing.T) {
	valid, err := testConfig().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func() []byte
		wantSub string
	}{
		{
			"unknown top-level field",
			func() []byte {
				return []byte(strings.Replace(string(valid), `"Hours"`, `"Bogus"`, 1))
			},
			"Bogus",
		},
		{
			"unknown params field",
			func() []byte {
				return []byte(strings.Replace(string(valid), `"Scanners"`, `"Scannerz"`, 1))
			},
			"Scannerz",
		},
		{
			"future format version",
			func() []byte {
				return []byte(strings.Replace(string(valid), `"Format": 1`, `"Format": 99`, 1))
			},
			"unsupported scenario format 99",
		},
		{
			"unknown actor kind",
			func() []byte {
				return []byte(strings.Replace(string(valid), `"Kind": "stealth-scan"`, `"Kind": "warp-drive"`, 1))
			},
			"warp-drive",
		},
		{
			"trailing data",
			func() []byte { return append(append([]byte{}, valid...), []byte(`{"again": true}`)...) },
			"after top-level value",
		},
		{
			"truncated",
			func() []byte { return valid[:len(valid)/2] },
			"",
		},
		{
			"empty",
			func() []byte { return nil },
			"",
		},
		{
			"toml syntax error",
			func() []byte { return []byte("Format = 1\nName =\n") },
			"line 2",
		},
		{
			"toml duplicate key",
			func() []byte { return []byte("Format = 1\nName = \"a\"\nName = \"b\"\n") },
			"duplicate key",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeConfig(tc.mutate())
			if err == nil {
				t.Fatal("corrupt config accepted")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// Validation failures carry ErrBadScenario and a field path.
func TestValidateFieldPaths(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*Config)
		wantPath string
	}{
		{"bad name", func(c *Config) { c.Name = "Bad Name!" }, "Name"},
		{"bad version", func(c *Config) { c.Version = 0 }, "Version"},
		{"bad hours", func(c *Config) { c.Hours = 0 }, "Hours"},
		{"bad population", func(c *Config) { c.Population.InventorySize = 0 }, "Population.InventorySize"},
		{"duplicate kind", func(c *Config) {
			c.Actors = append(c.Actors, ActorBlock{Kind: KindBackground, Params: &BackgroundConfig{HourlyPackets: 1, Sources: 1}})
		}, "Actors[7]"},
		{"bad block field", func(c *Config) {
			c.Actors[6].Params.(*StealthScanConfig).Port = 0
		}, "Actors[6].Params.Port"},
		{"bad telescope", func(c *Config) { c.Telescope.PrefixBits = 2 }, "Telescope.PrefixBits"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mutate(cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !errors.Is(err, ErrBadScenario) {
				t.Fatalf("error %q does not wrap ErrBadScenario", err)
			}
			if !strings.Contains(err.Error(), tc.wantPath) {
				t.Fatalf("error %q does not carry field path %q", err, tc.wantPath)
			}
		})
	}
}

// Every registered kind is constructible, self-describing, and versioned.
func TestKindRegistry(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 11 {
		t.Fatalf("expected 11 registered kinds, got %d: %v", len(kinds), kinds)
	}
	for _, spec := range kinds {
		got, ok := LookupKind(spec.Kind)
		if !ok {
			t.Fatalf("Kinds() lists %q but LookupKind misses it", spec.Kind)
		}
		if got.Version < 1 {
			t.Errorf("kind %q has no version", spec.Kind)
		}
		if got.About == "" {
			t.Errorf("kind %q has no description", spec.Kind)
		}
		blk := got.New()
		if blk.Kind() != spec.Kind {
			t.Errorf("kind %q constructs a block reporting kind %q", spec.Kind, blk.Kind())
		}
	}
	ver := GeneratorVersions(testConfig())
	if len(ver) != 7 {
		t.Fatalf("GeneratorVersions: expected 7 kinds, got %v", ver)
	}
	if ver[KindStealthScan] != 1 {
		t.Fatalf("stealth-scan generator version = %d", ver[KindStealthScan])
	}
}

// FuzzScenarioDecode: no input may panic the decoder, and any input that
// decodes must re-encode canonically to an equal config with a stable hash.
func FuzzScenarioDecode(f *testing.F) {
	if seed, err := testConfig().CanonicalJSON(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"Format":1}`))
	f.Add([]byte("Format = 1\nName = \"x\"\n"))
	f.Add([]byte("[[Actors]]\nKind = \"tcp-scan\"\n"))
	f.Add([]byte(`{"Format":1,"Name":"a","Version":1,"Hours":1}`))
	f.Add([]byte("not a config at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := DecodeConfig(data)
		if err != nil {
			return
		}
		h1, err := cfg.Hash()
		if err != nil {
			t.Fatalf("decoded config does not hash: %v", err)
		}
		canon, err := cfg.CanonicalJSON()
		if err != nil {
			t.Fatalf("decoded config does not re-encode: %v", err)
		}
		back, err := DecodeConfig(canon)
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		h2, err := back.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("hash not stable across canonical round trip: %s vs %s", h1, h2)
		}
	})
}
