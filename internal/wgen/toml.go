package wgen

import (
	"fmt"
	"strconv"
	"strings"
)

// parseTOML reads the TOML subset scenario files may use — tables,
// arrays of tables, dotted keys, strings, integers, floats, booleans,
// (multi-line) arrays, and inline tables — into the same generic tree a
// JSON decode would produce, so both formats share one typed schema. It is
// a deliberate subset: no dates, no multi-line or literal strings, no
// exotic escapes. Scenario files do not need them, and a second full
// config-language dependency is not worth carrying for the ones that
// would.
func parseTOML(data []byte) (map[string]any, error) {
	p := &tomlParser{data: data, line: 1}
	root := map[string]any{}
	current := root
	for {
		p.skipSpaceAndComments(true)
		if p.done() {
			return root, nil
		}
		if p.peek() == '[' {
			tbl, err := p.header(root)
			if err != nil {
				return nil, err
			}
			current = tbl
			continue
		}
		if err := p.assignment(current); err != nil {
			return nil, err
		}
	}
}

type tomlParser struct {
	data []byte
	pos  int
	line int
}

func (p *tomlParser) done() bool  { return p.pos >= len(p.data) }
func (p *tomlParser) peek() byte  { return p.data[p.pos] }
func (p *tomlParser) errf(format string, args ...any) error {
	return fmt.Errorf("toml line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// skipSpaceAndComments advances over spaces, tabs, comments, and — when
// newlines is true — line breaks.
func (p *tomlParser) skipSpaceAndComments(newlines bool) {
	for !p.done() {
		switch c := p.peek(); {
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '\n':
			if !newlines {
				return
			}
			p.pos++
			p.line++
		case c == '#':
			for !p.done() && p.peek() != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

// header parses [path] and [[path]] lines, returning the table that
// subsequent assignments land in.
func (p *tomlParser) header(root map[string]any) (map[string]any, error) {
	p.pos++ // consume '['
	array := false
	if !p.done() && p.peek() == '[' {
		array = true
		p.pos++
	}
	path, err := p.keyPath()
	if err != nil {
		return nil, err
	}
	if p.done() || p.peek() != ']' {
		return nil, p.errf("unterminated table header")
	}
	p.pos++
	if array {
		if p.done() || p.peek() != ']' {
			return nil, p.errf("unterminated array-of-tables header")
		}
		p.pos++
	}
	parent := root
	for _, seg := range path[:len(path)-1] {
		next, err := p.descend(parent, seg)
		if err != nil {
			return nil, err
		}
		parent = next
	}
	last := path[len(path)-1]
	if array {
		list, _ := parent[last].([]any)
		if parent[last] != nil && list == nil {
			return nil, p.errf("key %q is not an array of tables", last)
		}
		tbl := map[string]any{}
		parent[last] = append(list, any(tbl))
		return tbl, nil
	}
	switch v := parent[last].(type) {
	case nil:
		tbl := map[string]any{}
		parent[last] = tbl
		return tbl, nil
	case map[string]any:
		return v, nil
	default:
		return nil, p.errf("table %q conflicts with an existing value", last)
	}
}

// descend resolves one intermediate path segment, creating tables as
// needed and entering the last element of arrays of tables.
func (p *tomlParser) descend(parent map[string]any, seg string) (map[string]any, error) {
	switch v := parent[seg].(type) {
	case nil:
		tbl := map[string]any{}
		parent[seg] = tbl
		return tbl, nil
	case map[string]any:
		return v, nil
	case []any:
		if len(v) == 0 {
			return nil, p.errf("array of tables %q is empty", seg)
		}
		tbl, ok := v[len(v)-1].(map[string]any)
		if !ok {
			return nil, p.errf("array %q does not hold tables", seg)
		}
		return tbl, nil
	default:
		return nil, p.errf("key %q is not a table", seg)
	}
}

// assignment parses one `key = value` line into tbl.
func (p *tomlParser) assignment(tbl map[string]any) error {
	path, err := p.keyPath()
	if err != nil {
		return err
	}
	p.skipSpaceAndComments(false)
	if p.done() || p.peek() != '=' {
		return p.errf("expected '=' after key %q", strings.Join(path, "."))
	}
	p.pos++
	p.skipSpaceAndComments(false)
	val, err := p.value()
	if err != nil {
		return err
	}
	for _, seg := range path[:len(path)-1] {
		next, err := p.descend(tbl, seg)
		if err != nil {
			return err
		}
		tbl = next
	}
	last := path[len(path)-1]
	if _, dup := tbl[last]; dup {
		return p.errf("duplicate key %q", last)
	}
	tbl[last] = val
	// Only spaces and a comment may follow the value on the line.
	p.skipSpaceAndComments(false)
	if !p.done() && p.peek() != '\n' {
		return p.errf("unexpected trailing characters after value for %q", last)
	}
	return nil
}

// keyPath parses a (possibly dotted, possibly quoted) key.
func (p *tomlParser) keyPath() ([]string, error) {
	var path []string
	for {
		p.skipSpaceAndComments(false)
		if p.done() {
			return nil, p.errf("unexpected end of input in key")
		}
		var seg string
		if p.peek() == '"' {
			s, err := p.basicString()
			if err != nil {
				return nil, err
			}
			seg = s
		} else {
			start := p.pos
			for !p.done() && isBareKeyChar(p.peek()) {
				p.pos++
			}
			if p.pos == start {
				return nil, p.errf("expected a key, found %q", string(p.peek()))
			}
			seg = string(p.data[start:p.pos])
		}
		path = append(path, seg)
		p.skipSpaceAndComments(false)
		if !p.done() && p.peek() == '.' {
			p.pos++
			continue
		}
		return path, nil
	}
}

func isBareKeyChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-'
}

// value parses one TOML value.
func (p *tomlParser) value() (any, error) {
	if p.done() {
		return nil, p.errf("expected a value")
	}
	switch c := p.peek(); {
	case c == '"':
		return p.basicString()
	case c == '[':
		return p.array()
	case c == '{':
		return p.inlineTable()
	default:
		return p.scalar()
	}
}

func (p *tomlParser) basicString() (string, error) {
	p.pos++ // consume opening quote
	var b strings.Builder
	for !p.done() {
		c := p.peek()
		p.pos++
		switch c {
		case '"':
			return b.String(), nil
		case '\n':
			return "", p.errf("newline inside string")
		case '\\':
			if p.done() {
				return "", p.errf("dangling escape")
			}
			e := p.peek()
			p.pos++
			switch e {
			case '"', '\\', '/':
				b.WriteByte(e)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			default:
				return "", p.errf("unsupported escape \\%c", e)
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", p.errf("unterminated string")
}

// array parses [v, v, ...]; newlines and comments are allowed inside.
func (p *tomlParser) array() (any, error) {
	p.pos++ // consume '['
	out := []any{}
	for {
		p.skipSpaceAndComments(true)
		if p.done() {
			return nil, p.errf("unterminated array")
		}
		if p.peek() == ']' {
			p.pos++
			return out, nil
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		p.skipSpaceAndComments(true)
		if p.done() {
			return nil, p.errf("unterminated array")
		}
		switch p.peek() {
		case ',':
			p.pos++
		case ']':
		default:
			return nil, p.errf("expected ',' or ']' in array")
		}
	}
}

// inlineTable parses {k = v, ...}.
func (p *tomlParser) inlineTable() (any, error) {
	p.pos++ // consume '{'
	tbl := map[string]any{}
	p.skipSpaceAndComments(true)
	if !p.done() && p.peek() == '}' {
		p.pos++
		return tbl, nil
	}
	for {
		p.skipSpaceAndComments(true)
		path, err := p.keyPath()
		if err != nil {
			return nil, err
		}
		p.skipSpaceAndComments(false)
		if p.done() || p.peek() != '=' {
			return nil, p.errf("expected '=' in inline table")
		}
		p.pos++
		p.skipSpaceAndComments(false)
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		target := tbl
		for _, seg := range path[:len(path)-1] {
			next, err := p.descend(target, seg)
			if err != nil {
				return nil, err
			}
			target = next
		}
		last := path[len(path)-1]
		if _, dup := target[last]; dup {
			return nil, p.errf("duplicate key %q", last)
		}
		target[last] = v
		p.skipSpaceAndComments(true)
		if p.done() {
			return nil, p.errf("unterminated inline table")
		}
		switch p.peek() {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return tbl, nil
		default:
			return nil, p.errf("expected ',' or '}' in inline table")
		}
	}
}

// scalar parses booleans and numbers.
func (p *tomlParser) scalar() (any, error) {
	start := p.pos
	for !p.done() {
		c := p.peek()
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' ||
			c == ',' || c == ']' || c == '}' || c == '#' {
			break
		}
		p.pos++
	}
	tok := string(p.data[start:p.pos])
	switch tok {
	case "":
		return nil, p.errf("expected a value")
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	// TOML permits underscores as digit separators.
	numTok := strings.ReplaceAll(tok, "_", "")
	if i, err := strconv.ParseInt(numTok, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(numTok, 64); err == nil {
		return f, nil
	}
	return nil, p.errf("unsupported value %q", tok)
}
