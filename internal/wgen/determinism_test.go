package wgen

import (
	"bytes"
	"crypto/sha256"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// hashDir hashes every file in a dataset directory, in name order.
func hashDir(t *testing.T, dir string) [32]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		io.WriteString(h, e.Name())
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(h, f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// The headline reproducibility claim: identical (scale, seed) produce
// byte-identical datasets, including the gzip-compressed hour files.
func TestRunByteIdentical(t *testing.T) {
	render := func() [32]byte {
		sc := Default(0.002, 1234)
		sc.Hours = 8
		g, err := New(sc)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if _, err := g.Run(dir); err != nil {
			t.Fatal(err)
		}
		return hashDir(t, dir)
	}
	a, b := render(), render()
	if !bytes.Equal(a[:], b[:]) {
		t.Fatal("identical seeds produced different datasets")
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	render := func(seed uint64) [32]byte {
		sc := Default(0.002, seed)
		sc.Hours = 4
		g, err := New(sc)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if _, err := g.Run(dir); err != nil {
			t.Fatal(err)
		}
		return hashDir(t, dir)
	}
	if a, b := render(10), render(11); bytes.Equal(a[:], b[:]) {
		t.Fatal("different seeds produced identical datasets")
	}
}

// Truth is stable across generator constructions with the same scenario.
func TestTruthDeterministic(t *testing.T) {
	sc := Default(0.003, 55)
	a, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := a.Truth(), b.Truth()
	if len(ta.Compromised) != len(tb.Compromised) {
		t.Fatal("compromised counts differ")
	}
	for i := range ta.Compromised {
		if ta.Compromised[i] != tb.Compromised[i] {
			t.Fatalf("compromised[%d] differs", i)
		}
	}
	for id, h := range ta.OnsetHour {
		if tb.OnsetHour[id] != h {
			t.Fatalf("onset of %d differs", id)
		}
	}
	for name, id := range ta.EventVictims {
		if tb.EventVictims[name] != id {
			t.Fatalf("event victim %q differs", name)
		}
	}
	for id, w := range ta.ActivityWeight {
		if tb.ActivityWeight[id] != w {
			t.Fatalf("weight of %d differs", id)
		}
	}
}
