package wgen

import (
	"fmt"
	"math"

	"iotscope/internal/devicedb"
	"iotscope/internal/flowtuple"
	"iotscope/internal/netx"
	"iotscope/internal/rng"
	"iotscope/internal/telescope"
)

// EmitHour generates all telescope-visible traffic for one hour, invoking
// emit for every flow. Output is deterministic in (scenario seed, hour).
func (g *Generator) EmitHour(hour int, emit func(flowtuple.Record)) error {
	if !g.haveGen {
		return fmt.Errorf("wgen: generator not initialized")
	}
	if hour < 0 || hour >= g.sc.Hours {
		return fmt.Errorf("wgen: hour %d outside window [0, %d)", hour, g.sc.Hours)
	}
	dark := g.sc.DarkPrefix()
	for _, a := range g.actors {
		g.emitActorHour(a, hour, dark, emit)
	}
	g.emitBackground(hour, dark, emit)
	g.emitDiurnal(hour, dark, emit)
	return nil
}

// emitActorHour renders one actor's traffic for the hour.
func (g *Generator) emitActorHour(a *actor, hour int, dark netx.Prefix, outerEmit func(flowtuple.Record)) {
	// Track emissions so the onset hour can guarantee a first appearance
	// even when every Poisson draw lands on zero.
	emitted := false
	emit := func(rec flowtuple.Record) {
		emitted = true
		outerEmit(rec)
	}
	if hour == a.onset {
		defer func() {
			if !emitted {
				fallback := g.root.DeriveN("onset-fallback", uint64(a.id))
				outerEmit(flowtuple.Record{
					SrcIP:    uint32(a.dev.IP),
					DstIP:    uint32(randDark(dark, fallback)),
					SrcPort:  ephemeralPort(fallback),
					DstPort:  tailPort(fallback, g.sc.UDPProbe.TailZipfExponent),
					Protocol: flowtuple.ProtoUDP,
					TTL:      uint8(34 + fallback.Intn(94)),
					IPLen:    uint16(28 + fallback.Intn(60)),
					Packets:  1,
				})
			}
		}()
	}

	// Scripted behaviour ignores duty cycles: the narrative events happen.
	r := g.root.DeriveN("actor-hour", uint64(a.id)<<20|uint64(hour))
	for _, ev := range a.scripted {
		g.emitScripted(a, ev, hour, dark, r, emit)
	}
	if a.victim != nil {
		if v := a.victim.schedule[hour]; v > 0 {
			g.emitBackscatter(a, v, dark, r, emit)
		}
	}
	// Extension behaviours (mirai-wave, stealth-scan, ...) carry their own
	// active windows and, like scripted events, ignore the duty cycle.
	if a.ext != nil {
		g.emitExt(a, hour, dark, r, emit)
	}

	if hour < a.onset {
		return
	}
	// Regular behaviour gated by the two-level duty cycle; the onset hour
	// is always active so first appearance matches the planted onset.
	if hour != a.onset {
		day := hour / 24
		dayR := g.root.DeriveN("day", uint64(a.id)<<12|uint64(day))
		if !dayR.Bool(a.dayProb) {
			return
		}
		if !r.Bool(a.hourDuty) {
			return
		}
	}

	ttl := uint8(34 + r.Intn(94))

	// TCP service scanning. The per-hour log-normal jitter (mean 1) makes
	// scan volume fluctuate independently of how many devices are active —
	// the paper's r ~ 0 between hourly scanner counts and scan packets.
	jitter := r.LogNormal(-0.5, 1.0)
	for _, m := range a.tcpSvcs {
		svc := g.sc.TCPScan.Services[m.svc]
		mean := m.rate * a.rateMult * jitter * g.httpRamp(svc.Name, hour)
		g.emitSYNs(a, r.Poisson(mean), svc.Ports, ttl, dark, r, emit)
	}
	// Random-port scanning tail. CPS scanners sweep the whole port space
	// (wide hourly port counts, Fig. 9a); consumer scanners concentrate on
	// a Zipf-popular tail (narrow hourly port counts, Fig. 9b).
	if a.tcpRandom > 0 {
		n := r.Poisson(a.tcpRandom * a.rateMult * jitter)
		for i := 0; i < n; i++ {
			var port uint16
			if a.dev.Category == devicedb.CPS {
				port = avoidScriptedPort(uint16(1 + r.Intn(65535)))
			} else {
				// Per-device salt: a consumer scanner concentrates on its
				// own small port set, but the sets are not shared across
				// devices (Table V's tail shows no cross-device random-port
				// cohorts).
				port = avoidScriptedPort(saltedTailPort(r, 0.85, uint32(a.id)))
			}
			emit(flowtuple.Record{
				SrcIP:    uint32(a.dev.IP),
				DstIP:    uint32(randDark(dark, r)),
				SrcPort:  ephemeralPort(r),
				DstPort:  port,
				Protocol: flowtuple.ProtoTCP,
				TCPFlags: flowtuple.FlagSYN,
				TTL:      ttl,
				IPLen:    uint16(40 + r.Intn(20)),
				Packets:  1,
			})
		}
	}

	// UDP probing.
	if len(a.udpGroups) > 0 || a.udpTail > 0 {
		g.emitUDP(a, ttl, dark, r, emit)
	}

	// ICMP echo-request scanning.
	if a.icmpRate > 0 {
		n := r.Poisson(a.icmpRate * a.rateMult)
		for i := 0; i < n; i++ {
			emit(flowtuple.Record{
				SrcIP:    uint32(a.dev.IP),
				DstIP:    uint32(randDark(dark, r)),
				SrcPort:  uint16(flowtuple.ICMPEchoRequest),
				Protocol: flowtuple.ProtoICMP,
				TTL:      ttl,
				IPLen:    84,
				Packets:  1,
			})
		}
	}

	// Misconfiguration / residual noise.
	if a.otherRate > 0 {
		n := r.Poisson(a.otherRate * a.rateMult)
		for n > 0 {
			chunk := uint32(1 + r.Intn(2))
			if uint32(n) < chunk {
				chunk = uint32(n)
			}
			flags := flowtuple.FlagACK
			if r.Bool(0.3) {
				flags = flowtuple.FlagFIN
			}
			emit(flowtuple.Record{
				SrcIP:    uint32(a.dev.IP),
				DstIP:    uint32(randDark(dark, r)),
				SrcPort:  ephemeralPort(r),
				DstPort:  uint16(1 + r.Intn(65535)),
				Protocol: flowtuple.ProtoTCP,
				TCPFlags: flags,
				TTL:      ttl,
				IPLen:    uint16(40 + r.Intn(1200)),
				Packets:  chunk,
			})
			n -= int(chunk)
		}
	}
}

// httpRamp returns the HTTP growth factor after the ramp start (Fig. 10's
// gradual organized increase past interval 92).
func (g *Generator) httpRamp(svcName string, hour int) float64 {
	cfg := g.sc.TCPScan
	if svcName != "HTTP" || hour <= cfg.HTTPRampStartHour || cfg.HTTPRampFactor <= 1 {
		return 1
	}
	span := g.sc.Hours - cfg.HTTPRampStartHour
	if span <= 0 {
		return 1
	}
	progress := float64(hour-cfg.HTTPRampStartHour) / float64(span)
	return 1 + (cfg.HTTPRampFactor-1)*progress
}

// emitSYNs sends n TCP SYN probes to random dark destinations on the given
// port set.
func (g *Generator) emitSYNs(a *actor, n int, ports []uint16, ttl uint8,
	dark netx.Prefix, r *rng.Source, emit func(flowtuple.Record)) {
	if len(ports) == 0 {
		return
	}
	for i := 0; i < n; i++ {
		port := ports[0]
		if len(ports) > 1 {
			// First port dominates (Telnet 23 vs 2323/23231).
			if r.Bool(0.25) {
				port = ports[1+r.Intn(len(ports)-1)]
			}
		}
		emit(flowtuple.Record{
			SrcIP:    uint32(a.dev.IP),
			DstIP:    uint32(randDark(dark, r)),
			SrcPort:  ephemeralPort(r),
			DstPort:  port,
			Protocol: flowtuple.ProtoTCP,
			TCPFlags: flowtuple.FlagSYN,
			TTL:      ttl,
			IPLen:    uint16(40 + r.Intn(20)),
			Packets:  1,
		})
	}
}

// emitUDP renders the actor's UDP probing for the hour. Consumer probers
// spray one packet per destination across many destinations; CPS probers
// hammer fewer destinations with more packets and occasionally burst
// across many ports (Fig. 5).
func (g *Generator) emitUDP(a *actor, ttl uint8, dark netx.Prefix,
	r *rng.Source, emit func(flowtuple.Record)) {

	cfg := g.sc.UDPProbe
	burst := 1.0
	if a.dev.Category == devicedb.CPS && r.Bool(cfg.CPSBurstProb) {
		burst = cfg.CPSBurstFactor
	}

	// Draw the hour's packet budget per port first.
	type portBudget struct {
		port uint16
		pkts int
	}
	var plan []portBudget
	total := 0
	for _, m := range a.udpGroups {
		if n := r.Poisson(m.rate * a.rateMult * burst); n > 0 {
			plan = append(plan, portBudget{m.port, n})
			total += n
		}
	}
	if a.udpTail > 0 {
		n := r.Poisson(a.udpTail * a.rateMult * burst)
		for n > 0 {
			pkts := 1
			// CPSPacketsPerDest is zero when the scenario carries no
			// udp-probe block; trickle devices then send one packet per
			// destination instead of a burst.
			if a.dev.Category == devicedb.CPS && cfg.CPSPacketsPerDest > 0 {
				pkts = 1 + r.Intn(2*cfg.CPSPacketsPerDest)
				if pkts > n {
					pkts = n
				}
			}
			plan = append(plan, portBudget{tailPort(r, cfg.TailZipfExponent), pkts})
			total += pkts
			n -= pkts
		}
	}
	if total == 0 {
		return
	}

	if a.dev.Category == devicedb.Consumer {
		// Consumer probers spray one packet per (fresh) destination.
		for _, pb := range plan {
			for i := 0; i < pb.pkts; i++ {
				emit(flowtuple.Record{
					SrcIP:    uint32(a.dev.IP),
					DstIP:    uint32(randDark(dark, r)),
					SrcPort:  ephemeralPort(r),
					DstPort:  pb.port,
					Protocol: flowtuple.ProtoUDP,
					TTL:      ttl,
					IPLen:    uint16(28 + r.Intn(120)),
					Packets:  1,
				})
			}
		}
		return
	}

	// CPS probers hammer a small shared destination pool so their hourly
	// packets-per-destination ratio stays high (Fig. 5a).
	perDest := cfg.CPSPacketsPerDest
	if perDest < 1 {
		perDest = 1
	}
	nDests := (total + perDest - 1) / perDest
	if nDests < 1 {
		nDests = 1
	}
	dests := make([]uint32, nDests)
	for i := range dests {
		dests[i] = uint32(randDark(dark, r))
	}
	di := 0
	for _, pb := range plan {
		pkts := pb.pkts
		for pkts > 0 {
			chunk := perDest
			if pkts < chunk {
				chunk = pkts
			}
			emit(flowtuple.Record{
				SrcIP:    uint32(a.dev.IP),
				DstIP:    dests[di%len(dests)],
				SrcPort:  ephemeralPort(r),
				DstPort:  pb.port,
				Protocol: flowtuple.ProtoUDP,
				TTL:      ttl,
				IPLen:    uint16(28 + r.Intn(120)),
				Packets:  uint32(chunk),
			})
			di++
			pkts -= chunk
		}
	}
}

// tailPort draws a destination port from a Zipf(s) distribution over 65535
// ranks via inverse-CDF (valid for s < 1: CDF(k) ~ (k/N)^(1-s)), mapping
// ranks through a multiplicative hash so tail heavy-hitters are shared
// across devices yet spread over the whole port space. At s = 0.5 the top
// rank draws only ~0.4 % of packets — the long tail of Table IV.
func tailPort(r *rng.Source, s float64) uint16 {
	return saltedTailPort(r, s, 0)
}

// saltedTailPort is tailPort with a per-caller salt so a device can have a
// private concentrated port set instead of the globally shared tail.
func saltedTailPort(r *rng.Source, s float64, salt uint32) uint16 {
	if s >= 0.99 {
		s = 0.99
	}
	u := r.Float64()
	rank := int(65535*math.Pow(u, 1/(1-s))) + 1
	if rank > 65535 {
		rank = 65535
	}
	return uint16(1 + (uint32(rank)*2654435761+salt*2246822519)%65535)
}

// emitBackscatter renders one hour of a victim's reply spray: SYN-ACKs,
// RSTs, and ICMP replies to spoofed (dark) clients, sourced from the
// victim's service port.
func (g *Generator) emitBackscatter(a *actor, pkts float64, dark netx.Prefix,
	r *rng.Source, emit func(flowtuple.Record)) {

	n := r.Poisson(pkts)
	ttl := uint8(40 + r.Intn(80))
	for n > 0 {
		chunk := uint32(1 + r.Intn(4))
		if uint32(n) < chunk {
			chunk = uint32(n)
		}
		rec := flowtuple.Record{
			SrcIP:   uint32(a.dev.IP),
			DstIP:   uint32(randDark(dark, r)),
			TTL:     ttl,
			IPLen:   uint16(40 + r.Intn(24)),
			Packets: chunk,
		}
		switch draw := r.Float64(); {
		case draw < 0.70:
			rec.Protocol = flowtuple.ProtoTCP
			rec.TCPFlags = flowtuple.FlagSYN | flowtuple.FlagACK
			rec.SrcPort = a.victim.srcPort
			rec.DstPort = ephemeralPort(r)
		case draw < 0.90:
			rec.Protocol = flowtuple.ProtoTCP
			rec.TCPFlags = flowtuple.FlagRST | flowtuple.FlagACK
			rec.SrcPort = a.victim.srcPort
			rec.DstPort = ephemeralPort(r)
		default:
			rec.Protocol = flowtuple.ProtoICMP
			rec.SrcPort = uint16(backscatterICMP[r.Intn(len(backscatterICMP))])
			rec.IPLen = 56
		}
		emit(rec)
		n -= int(chunk)
	}
}

var backscatterICMP = []uint8{
	flowtuple.ICMPEchoReply,
	flowtuple.ICMPDestUnreach,
	flowtuple.ICMPSourceQuench,
	flowtuple.ICMPRedirect,
	flowtuple.ICMPTimeExceeded,
	flowtuple.ICMPParamProblem,
	flowtuple.ICMPTimestampReply,
}

// emitScripted renders the narrated scan events.
func (g *Generator) emitScripted(a *actor, ev scriptedEvent, hour int,
	dark netx.Prefix, r *rng.Source, emit func(flowtuple.Record)) {

	switch ev.kind {
	case scriptBackroom:
		if hour < ev.fromHour {
			return
		}
		n := r.Poisson(ev.packetsPerHr)
		g.emitSYNs(a, n, []uint16{ev.port}, uint8(50+r.Intn(40)), dark, r, emit)
	case scriptSSHSpike:
		if !ev.hours[hour] {
			return
		}
		n := r.Poisson(ev.packetsPerHr)
		g.emitSYNs(a, n, []uint16{ev.port}, uint8(50+r.Intn(40)), dark, r, emit)
	case scriptPortSpike:
		if !ev.hours[hour] {
			return
		}
		dests := make([]netx.Addr, ev.dests)
		for i := range dests {
			dests[i] = randDark(dark, r)
		}
		ports := r.SampleK(65535, ev.ports)
		ttl := uint8(60 + r.Intn(30))
		for i, p := range ports {
			emit(flowtuple.Record{
				SrcIP:    uint32(a.dev.IP),
				DstIP:    uint32(dests[i%len(dests)]),
				SrcPort:  ephemeralPort(r),
				DstPort:  avoidScriptedPort(uint16(p + 1)),
				Protocol: flowtuple.ProtoTCP,
				TCPFlags: flowtuple.FlagSYN,
				TTL:      ttl,
				IPLen:    44,
				Packets:  1,
			})
		}
	}
}

// emitBackground renders non-IoT darknet noise the correlator must discard:
// third-party scanners, DDoS victims outside the inventory, and junk.
func (g *Generator) emitBackground(hour int, dark netx.Prefix, emit func(flowtuple.Record)) {
	if len(g.bgPool) == 0 || g.sc.Background.HourlyPackets <= 0 {
		return
	}
	r := g.root.DeriveN("bg", uint64(hour))
	n := r.Poisson(g.sc.Background.HourlyPackets * g.sc.Scale)
	for n > 0 {
		chunk := uint32(1 + r.Intn(3))
		if uint32(n) < chunk {
			chunk = uint32(n)
		}
		rec := flowtuple.Record{
			SrcIP:   g.bgPool[r.Intn(len(g.bgPool))],
			DstIP:   uint32(randDark(dark, r)),
			TTL:     uint8(30 + r.Intn(100)),
			Packets: chunk,
		}
		switch draw := r.Float64(); {
		case draw < 0.55: // scanners
			rec.Protocol = flowtuple.ProtoTCP
			rec.TCPFlags = flowtuple.FlagSYN
			rec.SrcPort = ephemeralPort(r)
			rec.DstPort = uint16(1 + r.Intn(65535))
			rec.IPLen = uint16(40 + r.Intn(20))
		case draw < 0.75: // UDP probes
			rec.Protocol = flowtuple.ProtoUDP
			rec.SrcPort = ephemeralPort(r)
			rec.DstPort = uint16(1 + r.Intn(65535))
			rec.IPLen = uint16(28 + r.Intn(400))
		case draw < 0.90: // non-IoT DoS backscatter
			rec.Protocol = flowtuple.ProtoTCP
			rec.TCPFlags = flowtuple.FlagSYN | flowtuple.FlagACK
			rec.SrcPort = 80
			rec.DstPort = ephemeralPort(r)
			rec.IPLen = 44
		default: // misconfiguration junk
			rec.Protocol = flowtuple.ProtoTCP
			rec.TCPFlags = flowtuple.FlagACK
			rec.SrcPort = ephemeralPort(r)
			rec.DstPort = uint16(1 + r.Intn(65535))
			rec.IPLen = uint16(40 + r.Intn(1000))
		}
		emit(rec)
		n -= int(chunk)
	}
}

// avoidScriptedPort steers incidental random-port probes off port 3387 so
// the BackroomNet row keeps the paper's single-device signature.
func avoidScriptedPort(p uint16) uint16 {
	if p == 3387 {
		return 3388
	}
	return p
}

func randDark(dark netx.Prefix, r *rng.Source) netx.Addr {
	return dark.Nth(r.Uint64n(dark.NumAddrs()))
}

func ephemeralPort(r *rng.Source) uint16 {
	return uint16(1024 + r.Intn(64512))
}

// RunStats summarizes a full dataset render.
type RunStats struct {
	Collector telescope.CollectorStats
	Hours     int
}

// Run renders the full scenario window into dir as hourly flowtuple files.
func (g *Generator) Run(dir string) (RunStats, error) {
	tel := telescope.New(g.sc.DarkPrefix())
	col := telescope.NewCollector(tel, dir)
	var emitErr error
	emit := func(rec flowtuple.Record) {
		if emitErr == nil {
			emitErr = col.Observe(rec)
		}
	}
	for h := 0; h < g.sc.Hours; h++ {
		if err := col.BeginHour(h); err != nil {
			return RunStats{}, err
		}
		if err := g.EmitHour(h, emit); err != nil {
			return RunStats{}, err
		}
		if emitErr != nil {
			return RunStats{}, emitErr
		}
		if err := col.EndHour(); err != nil {
			return RunStats{}, err
		}
	}
	return RunStats{Collector: col.Stats(), Hours: g.sc.Hours}, nil
}
