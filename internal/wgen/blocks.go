package wgen

import "fmt"

// The paper's workload is one fixed 143-hour trace; the blocks below open
// workload shapes from related work so the pipeline can be tested against
// behaviours the paper never exercised. All populations and aggregate
// volumes are full-scale (multiplied by Scenario.Scale at resolve time);
// per-device behaviour is scale-invariant, matching the rest of wgen.

// MiraiWaveConfig scripts a Mirai-style worm propagation wave (Choi et
// al., PAPERS.md): infections follow a logistic ramp, each bot floods
// telnet-style ports for a bounded lifetime, then churns out — the
// endpoint-churn pattern real IoT botnets show.
type MiraiWaveConfig struct {
	// Devices is the full-scale infected population.
	Devices int
	// StartHour is when patient zero appears; RampHours is how long the
	// logistic infection ramp takes to saturate.
	StartHour int
	RampHours int
	// LifetimeMinHours/MaxHours bound each bot's active lifetime before it
	// churns out (reboot, disinfection, re-NAT).
	LifetimeMinHours int
	LifetimeMaxHours int
	// PacketsPerHour is each bot's scan intensity while alive
	// (scale-invariant, like all per-device behaviour).
	PacketsPerHour float64
	// Ports are the scanned ports; the first dominates (telnet 23).
	Ports []uint16
}

// Kind returns "mirai-wave".
func (c *MiraiWaveConfig) Kind() string { return KindMiraiWave }
func (c *MiraiWaveConfig) apply(sc *Scenario) {
	v := *c
	sc.MiraiWave = &v
}
func (c *MiraiWaveConfig) validate(path string, bad *badConfig) {
	if c.Devices <= 0 {
		bad.addf(path+".Devices", "%d must be positive", c.Devices)
	}
	if c.StartHour < 0 {
		bad.addf(path+".StartHour", "%d must be non-negative", c.StartHour)
	}
	if c.RampHours <= 0 {
		bad.addf(path+".RampHours", "%d must be positive", c.RampHours)
	}
	if c.LifetimeMinHours <= 0 || c.LifetimeMaxHours < c.LifetimeMinHours {
		bad.addf(path+".LifetimeMinHours", "bad lifetime bounds [%d, %d]", c.LifetimeMinHours, c.LifetimeMaxHours)
	}
	if c.PacketsPerHour <= 0 {
		bad.addf(path+".PacketsPerHour", "%v must be positive", c.PacketsPerHour)
	}
	if len(c.Ports) == 0 {
		bad.addf(path+".Ports", "empty")
	}
	for i, p := range c.Ports {
		if p == 0 {
			bad.addf(fmt.Sprintf("%s.Ports[%d]", path, i), "port 0")
		}
	}
}

// AmplificationService is one reflector protocol in a UDP amplification
// attack: the source port identifies the abused service.
type AmplificationService struct {
	Name string
	// Port is the reflector's UDP source port (NTP 123, DNS 53, SSDP 1900).
	Port uint16
	// Share is the service's share of reflected packets (%).
	Share float64
}

// UDPAmplificationConfig models the victim-side view of a UDP
// amplification attack: compromised devices abused as reflectors spray
// large UDP responses whose spoofed targets partially land in the
// telescope. Distinct from BackscatterConfig: these are UDP payloads from
// well-known service source ports, not TCP SYN-ACK/RST replies.
type UDPAmplificationConfig struct {
	// Reflectors is the full-scale abused-device population.
	Reflectors int
	// HourlyPackets is the full-scale aggregate reflected volume per hour.
	HourlyPackets float64
	Services      []AmplificationService
	// MinLen/MaxLen bound the amplified payload sizes (bytes).
	MinLen int
	MaxLen int
}

// Kind returns "udp-amplification".
func (c *UDPAmplificationConfig) Kind() string { return KindUDPAmplification }
func (c *UDPAmplificationConfig) apply(sc *Scenario) {
	v := *c
	sc.UDPAmplification = &v
}
func (c *UDPAmplificationConfig) validate(path string, bad *badConfig) {
	if c.Reflectors <= 0 {
		bad.addf(path+".Reflectors", "%d must be positive", c.Reflectors)
	}
	if c.HourlyPackets <= 0 {
		bad.addf(path+".HourlyPackets", "%v must be positive", c.HourlyPackets)
	}
	if len(c.Services) == 0 {
		bad.addf(path+".Services", "empty")
	}
	total := 0.0
	for i, s := range c.Services {
		p := fmt.Sprintf("%s.Services[%d]", path, i)
		if s.Name == "" {
			bad.addf(p+".Name", "empty")
		}
		if s.Port == 0 {
			bad.addf(p+".Port", "port 0")
		}
		if s.Share <= 0 {
			bad.addf(p+".Share", "%v must be positive", s.Share)
		}
		total += s.Share
	}
	if len(c.Services) > 0 && (total < 99.999 || total > 100.001) {
		bad.addf(path+".Services", "shares sum to %.4g%% (must be 100%%)", total)
	}
	if c.MinLen < 28 || c.MaxLen < c.MinLen {
		bad.addf(path+".MinLen", "bad payload bounds [%d, %d]", c.MinLen, c.MaxLen)
	}
}

// StealthScanConfig plants a slow, deliberately sub-threshold scan: a
// small cohort probes one port at a handful of packets per hour — visible
// to the correlator, but below any evidence-bundle notification floor. The
// fixture for "the pipeline correctly ignores what it should".
type StealthScanConfig struct {
	// Scanners is the full-scale cohort size.
	Scanners int
	// Port is the single scanned port.
	Port uint16
	// PacketsPerHour is each scanner's intensity (scale-invariant; keep it
	// low — that is the point).
	PacketsPerHour float64
}

// Kind returns "stealth-scan".
func (c *StealthScanConfig) Kind() string { return KindStealthScan }
func (c *StealthScanConfig) apply(sc *Scenario) {
	v := *c
	sc.StealthScan = &v
}
func (c *StealthScanConfig) validate(path string, bad *badConfig) {
	if c.Scanners <= 0 {
		bad.addf(path+".Scanners", "%d must be positive", c.Scanners)
	}
	if c.Port == 0 {
		bad.addf(path+".Port", "port 0")
	}
	if c.PacketsPerHour <= 0 {
		bad.addf(path+".PacketsPerHour", "%v must be positive", c.PacketsPerHour)
	}
}

// CPSCampaignService is one industrial protocol in a CPS campaign.
type CPSCampaignService struct {
	Name string
	Port uint16
	// Share is the service's share of campaign packets (%).
	Share float64
}

// CPSCampaignConfig scripts a coordinated industrial-protocol scanning
// campaign (Modbus 502, BACnet/IP 47808) carried out by CPS devices inside
// a bounded window — the protocol-specific campaign shape the paper's
// BackroomNet narrative hints at, generalized.
type CPSCampaignConfig struct {
	// Devices is the full-scale participating CPS population.
	Devices int
	// StartHour/DurationHours bound the campaign window; DurationHours 0
	// means "until the end of the capture".
	StartHour     int
	DurationHours int
	// HourlyPackets is the full-scale aggregate campaign volume per hour.
	HourlyPackets float64
	Services      []CPSCampaignService
}

// Kind returns "cps-campaign".
func (c *CPSCampaignConfig) Kind() string { return KindCPSCampaign }
func (c *CPSCampaignConfig) apply(sc *Scenario) {
	v := *c
	sc.CPSCampaign = &v
}
func (c *CPSCampaignConfig) validate(path string, bad *badConfig) {
	if c.Devices <= 0 {
		bad.addf(path+".Devices", "%d must be positive", c.Devices)
	}
	if c.StartHour < 0 {
		bad.addf(path+".StartHour", "%d must be non-negative", c.StartHour)
	}
	if c.DurationHours < 0 {
		bad.addf(path+".DurationHours", "%d must be non-negative", c.DurationHours)
	}
	if c.HourlyPackets <= 0 {
		bad.addf(path+".HourlyPackets", "%v must be positive", c.HourlyPackets)
	}
	if len(c.Services) == 0 {
		bad.addf(path+".Services", "empty")
	}
	total := 0.0
	for i, s := range c.Services {
		p := fmt.Sprintf("%s.Services[%d]", path, i)
		if s.Name == "" {
			bad.addf(p+".Name", "empty")
		}
		if s.Port == 0 {
			bad.addf(p+".Port", "port 0")
		}
		if s.Share <= 0 {
			bad.addf(p+".Share", "%v must be positive", s.Share)
		}
		total += s.Share
	}
	if len(c.Services) > 0 && (total < 99.999 || total > 100.001) {
		bad.addf(path+".Services", "shares sum to %.4g%% (must be 100%%)", total)
	}
}

// DiurnalBackgroundConfig adds smart-home background chatter (Mainuddin et
// al., PAPERS.md) from sources OUTSIDE the device inventory, modulated by a
// day/night cycle: mDNS/SSDP-style discovery noise that leaks toward the
// telescope and that correlation must keep discarding even though its
// volume breathes with the hour of day.
type DiurnalBackgroundConfig struct {
	// HourlyPackets is the full-scale volume at the diurnal peak.
	HourlyPackets float64
	// Sources is the full-scale distinct source population.
	Sources int
	// PeakHour is the hour-of-day (0..23) of maximum volume.
	PeakHour int
	// MinFactor is the trough volume as a fraction of the peak, in [0, 1].
	MinFactor float64
	// Ports are the destination ports the chatter lands on (mDNS 5353,
	// SSDP 1900, WS-Discovery 3702).
	Ports []uint16
}

// Kind returns "diurnal-background".
func (c *DiurnalBackgroundConfig) Kind() string { return KindDiurnalBackground }
func (c *DiurnalBackgroundConfig) apply(sc *Scenario) {
	v := *c
	sc.DiurnalBackground = &v
}
func (c *DiurnalBackgroundConfig) validate(path string, bad *badConfig) {
	if c.HourlyPackets <= 0 {
		bad.addf(path+".HourlyPackets", "%v must be positive", c.HourlyPackets)
	}
	if c.Sources <= 0 {
		bad.addf(path+".Sources", "%d must be positive", c.Sources)
	}
	if c.PeakHour < 0 || c.PeakHour > 23 {
		bad.addf(path+".PeakHour", "%d outside [0, 23]", c.PeakHour)
	}
	if c.MinFactor < 0 || c.MinFactor > 1 {
		bad.addf(path+".MinFactor", "%v outside [0, 1]", c.MinFactor)
	}
	if len(c.Ports) == 0 {
		bad.addf(path+".Ports", "empty")
	}
	for i, p := range c.Ports {
		if p == 0 {
			bad.addf(fmt.Sprintf("%s.Ports[%d]", path, i), "port 0")
		}
	}
}
