// Package wgen synthesizes the darknet workload: it decides which inventory
// devices are compromised, assigns them attacker behaviours (TCP/ICMP
// scanning, UDP probing, DoS-victim backscatter, misconfiguration noise),
// and emits their telescope-visible traffic hour by hour.
//
// Every knob in the Scenario is lifted from the paper's evaluation
// (Secs. III-V): country shares, device-type mixes, the port tables
// (Tables IV and V), hourly volume targets (Figs. 5, 7, 9, 10), and the
// scripted events the paper narrates (DoS spikes at intervals 6-8, 49,
// 53-56, 81, 94, 99, and 127; SSH scan surges at 32 and 69; the BACnet
// device scanning BackroomNet from interval 113; the Dominican IP camera
// sweeping 10,249 ports at interval 119). The analysis pipeline must then
// recover these plants without ever reading the ground truth.
package wgen

import (
	"iotscope/internal/devicedb"
	"iotscope/internal/geo"
	"iotscope/internal/netx"
)

// Share is a (country code, percentage) pair.
type Share struct {
	Code  string
	Share float64
}

// ScanService parameterizes one row of Table V.
type ScanService struct {
	Name string
	// Ports scanned for this service (e.g. Telnet 23/2323/23231).
	Ports []uint16
	// PacketShare is the service's share of all TCP scanning packets (%).
	PacketShare float64
	// ConsumerPacketFrac splits the service's packets between realms.
	ConsumerPacketFrac float64
	// ConsumerDevices / CPSDevices are full-scale scanner populations.
	ConsumerDevices int
	CPSDevices      int
}

// UDPPortGroup parameterizes one row of Table IV.
type UDPPortGroup struct {
	Port uint16
	// PacketShare is the port's share of all UDP packets (%).
	PacketShare float64
	// Devices is the full-scale number of probers targeting the port.
	Devices int
}

// DoSEvent is one scripted denial-of-service episode against a single
// victim device (Sec. IV-B1).
type DoSEvent struct {
	Name  string
	Hours []int
	// PacketsPerHour is the victim's full-scale backscatter intensity.
	PacketsPerHour float64
	// Victim selector.
	Country    string
	Category   devicedb.Category
	Service    string              // required CPS service, if Category == CPS
	DeviceType devicedb.DeviceType // required type, if Category == Consumer
}

// SpikeEvent is a scripted scanning surge by a small device group.
type SpikeEvent struct {
	Hours          []int
	PacketsPerHour float64 // full scale, split across the group
	// Group selectors: (country, category) per participating device.
	Members []SpikeMember
}

// SpikeMember selects one scripted scanner.
type SpikeMember struct {
	Country  string
	Category devicedb.Category
	// PacketFrac is the member's share of the spike packets.
	PacketFrac float64
}

// TCPScanConfig shapes Sec. IV-C.
type TCPScanConfig struct {
	TotalScanners         int     // full scale: 12,363
	ConsumerFrac          float64 // 0.55
	HourlyPacketsConsumer float64 // full scale: 382,000
	HourlyPacketsCPS      float64 // full scale: 318,000
	Services              []ScanService
	// RandomPortShare is the packet share scanned outside Table V (%).
	RandomPortShare float64
	// RandomPortCPSFrac gives CPS scanners the bulk of the wide-port
	// scanning (Fig. 9: CPS sweeps ~576 ports per hour vs consumer ~246).
	RandomPortCPSFrac float64
	// HTTPRampStartHour makes HTTP scanning grow linearly afterwards.
	HTTPRampStartHour int
	HTTPRampFactor    float64 // multiplier reached by the final hour
	// SSHSpike scripts the interval 32/69 surges.
	SSHSpike SpikeEvent
	// Backroom scripts the single BACnet device scanning port 3387.
	BackroomStartHour      int
	BackroomPacketsPerHour float64
	BackroomCountry        string
	BackroomService        string
	// PortSpike scripts the interval-119 camera port sweep.
	PortSpikeHour    int
	PortSpikePorts   int
	PortSpikeDests   int
	PortSpikeCountry string
}

// UDPProbeConfig shapes Sec. IV-A.
type UDPProbeConfig struct {
	TotalProbers        int     // full scale: 25,242
	ConsumerFrac        float64 // 0.60
	ConsumerPacketShare float64 // 0.63
	HourlyPackets       float64 // full scale: ~91,000 (13M over 143 h)
	PortGroups          []UDPPortGroup
	// TailZipfExponent spreads the residual packets over the port space.
	TailZipfExponent float64
	// CPSBurstProb triggers the recurring CPS port-burst spikes (Fig. 5a).
	CPSBurstProb   float64
	CPSBurstFactor float64
	// CPSPacketsPerDest makes CPS probers hammer fewer destinations.
	CPSPacketsPerDest int
}

// ICMPScanConfig shapes the echo-request scanners (Sec. IV-C).
type ICMPScanConfig struct {
	TotalScanners       int     // full scale: 56
	ConsumerScanners    int     // full scale: 32
	ConsumerPacketShare float64 // 0.93
	HourlyPackets       float64 // full scale: ~2,300
}

// BackscatterConfig shapes Sec. IV-B. Per-victim volumes are
// scale-invariant (populations scale, behaviour does not): a two-component
// Pareto mixture puts half the victims under a couple hundred packets while
// ~15 % exceed 10 K (Fig. 6).
type BackscatterConfig struct {
	TotalVictims  int     // full scale: 839
	CPSFrac       float64 // 0.53
	CountryShares []Share // Fig. 8a victim placement
	// SmallFrac of victims draw totals from Pareto(SmallXm, SmallAlpha);
	// the rest from Pareto(HeavyXm, HeavyAlpha).
	SmallFrac  float64
	SmallXm    float64
	SmallAlpha float64
	HeavyXm    float64
	HeavyAlpha float64
	// CPSVolumeFactor inflates CPS victims' totals (the paper: CPS devices
	// generate 73 % of backscatter from 53 % of victims).
	CPSVolumeFactor float64
	MaxVictimTotal  float64
	Events          []DoSEvent
}

// OtherTrafficConfig shapes the residual IoT noise (ACK/FIN junk and
// misconfiguration) that keeps the taxonomy honest.
type OtherTrafficConfig struct {
	HourlyPackets float64 // full scale
	CPSFrac       float64 // CPS share of the noise
	EmitterFrac   float64 // fraction of compromised devices that emit it
}

// BackgroundConfig shapes non-IoT darknet traffic from sources outside the
// inventory, which the correlation step must discard.
type BackgroundConfig struct {
	HourlyPackets float64 // full scale
	Sources       int     // full-scale distinct source population
}

// Scenario is the complete generation configuration.
type Scenario struct {
	Seed  uint64
	Hours int
	// Scale multiplies device populations and aggregate volumes together,
	// preserving per-device behaviour. 1.0 reproduces paper magnitudes.
	Scale float64

	Geo           geo.Config
	InventorySize int // full scale: 331,000

	// Compromised-population shape (Sec. III-B).
	CompromisedTotal         int     // full scale: 26,881
	ConsumerCompromisedShare float64 // 0.57
	ConsumerCountryShares    []Share // Sec. III-B1
	CPSCountryShares         []Share // Sec. III-B2
	ConsumerTypeShares       []devicedb.TypeWeight
	// Day1Fraction of devices first appear during day one (Fig. 2).
	Day1Fraction float64
	// DayActiveProb and mean hourly duty drive the ~10.9 K daily actives.
	DayActiveProb float64
	HourDutyMin   float64
	HourDutyMax   float64
	// RateSpreadSigma is the per-device log-normal rate multiplier spread
	// producing the Figs. 6/11 heavy-tailed per-device totals.
	RateSpreadSigma float64

	TCPScan     TCPScanConfig
	UDPProbe    UDPProbeConfig
	ICMPScan    ICMPScanConfig
	Backscatter BackscatterConfig
	Other       OtherTrafficConfig
	Background  BackgroundConfig

	// Extension actor kinds (blocks.go), nil when absent. They are
	// pointers, and every code path they drive derives fresh rng labels, so
	// scenarios without them — the paper default above all — generate
	// byte-identical output to builds that predate the blocks.
	MiraiWave         *MiraiWaveConfig
	UDPAmplification  *UDPAmplificationConfig
	StealthScan       *StealthScanConfig
	CPSCampaign       *CPSCampaignConfig
	DiurnalBackground *DiurnalBackgroundConfig
}

// DarkPrefix returns the telescope space of the scenario.
func (s Scenario) DarkPrefix() netx.Prefix { return s.Geo.DarkPrefix }

// Default returns the paper-calibrated scenario at the given scale
// (0 < scale <= 1) and seed. Scale 0.02 is used by the experiment harness;
// tests run smaller.
func Default(scale float64, seed uint64) Scenario {
	return Scenario{
		Seed:  seed,
		Hours: 143,
		Scale: scale,

		Geo:           geo.DefaultConfig(),
		InventorySize: 331000,

		CompromisedTotal:         26881,
		ConsumerCompromisedShare: 0.57,
		ConsumerCountryShares: []Share{
			{"RU", 32.0}, {"US", 9.0}, {"ID", 4.3}, {"TH", 4.2}, {"KR", 3.5},
			{"CN", 3.2}, {"BR", 3.0}, {"VN", 2.8}, {"TR", 2.6}, {"UA", 2.5},
			{"IN", 2.4}, {"TW", 2.2}, {"SG", 2.0}, {"PH", 2.0}, {"GB", 1.8},
			{"MX", 1.5}, {"DE", 1.4}, {"FR", 1.3}, {"IT", 1.2}, {"NL", 1.0},
		},
		CPSCountryShares: []Share{
			{"CN", 17.0}, {"RU", 14.8}, {"KR", 8.3}, {"US", 6.9}, {"TR", 4.0},
			{"TW", 3.8}, {"UA", 3.6}, {"TH", 3.4}, {"IN", 3.2}, {"BR", 3.0},
			{"SG", 2.6}, {"ID", 2.4}, {"VN", 2.2}, {"FR", 2.0}, {"DE", 1.8},
			{"CA", 1.6}, {"GB", 1.4}, {"CH", 1.0}, {"JP", 1.0}, {"ZA", 0.8},
		},
		ConsumerTypeShares: []devicedb.TypeWeight{
			// Fig. 3.
			{Type: devicedb.TypeRouter, Weight: 52.4},
			{Type: devicedb.TypeIPCamera, Weight: 25.2},
			{Type: devicedb.TypePrinter, Weight: 18.0},
			{Type: devicedb.TypeStorage, Weight: 3.6},
			{Type: devicedb.TypeDVR, Weight: 0.5},
			{Type: devicedb.TypeHub, Weight: 0.1},
		},
		// TCP scanners (46 % of compromised devices) always onset on day
		// one — they are the paper's day-one discovery cohort; this is the
		// extra day-one probability for non-scanners.
		Day1Fraction:    0.08,
		DayActiveProb:   0.50,
		HourDutyMin:     0.10,
		HourDutyMax:     0.60,
		RateSpreadSigma: 1.3,

		TCPScan: TCPScanConfig{
			TotalScanners:         12363,
			ConsumerFrac:          0.55,
			HourlyPacketsConsumer: 382000,
			HourlyPacketsCPS:      318000,
			Services: []ScanService{
				// Table V (CP = 93.3 %).
				{Name: "Telnet", Ports: []uint16{23, 2323, 23231}, PacketShare: 50.2,
					ConsumerPacketFrac: 0.634, ConsumerDevices: 643, CPSDevices: 553},
				{Name: "HTTP", Ports: []uint16{80, 8080, 81}, PacketShare: 9.4,
					ConsumerPacketFrac: 0.945, ConsumerDevices: 1418, CPSDevices: 345},
				{Name: "SSH", Ports: []uint16{22}, PacketShare: 7.7,
					ConsumerPacketFrac: 0.337, ConsumerDevices: 64, CPSDevices: 80},
				{Name: "BackroomNet", Ports: []uint16{3387}, PacketShare: 0,
					ConsumerPacketFrac: 0, ConsumerDevices: 0, CPSDevices: 0}, // scripted
				{Name: "CWMP", Ports: []uint16{7547}, PacketShare: 4.5,
					ConsumerPacketFrac: 0.448, ConsumerDevices: 169, CPSDevices: 244},
				{Name: "WSDAPI-S", Ports: []uint16{5358}, PacketShare: 4.1,
					ConsumerPacketFrac: 0.59, ConsumerDevices: 94, CPSDevices: 48},
				{Name: "MSSQLServer", Ports: []uint16{1433}, PacketShare: 3.3,
					ConsumerPacketFrac: 0.362, ConsumerDevices: 8, CPSDevices: 13},
				{Name: "Kerberos", Ports: []uint16{88}, PacketShare: 2.7,
					ConsumerPacketFrac: 0.99, ConsumerDevices: 1061, CPSDevices: 23},
				{Name: "MS DS", Ports: []uint16{445}, PacketShare: 2.5,
					ConsumerPacketFrac: 0.453, ConsumerDevices: 43, CPSDevices: 330},
				{Name: "EthernetIP-IO", Ports: []uint16{2222}, PacketShare: 0.7,
					ConsumerPacketFrac: 0.416, ConsumerDevices: 50, CPSDevices: 65},
				{Name: "iRDMI", Ports: []uint16{8000}, PacketShare: 0.7,
					ConsumerPacketFrac: 0.985, ConsumerDevices: 1055, CPSDevices: 18},
				{Name: "Unassigned-21677", Ports: []uint16{21677}, PacketShare: 0.6,
					ConsumerPacketFrac: 0, ConsumerDevices: 1, CPSDevices: 87},
				{Name: "RDP", Ports: []uint16{3389}, PacketShare: 0.5,
					ConsumerPacketFrac: 0.468, ConsumerDevices: 42, CPSDevices: 61},
				{Name: "FTP", Ports: []uint16{21}, PacketShare: 0.3,
					ConsumerPacketFrac: 0.46, ConsumerDevices: 20, CPSDevices: 33},
			},
			RandomPortShare:   6.7,
			RandomPortCPSFrac: 0.70,
			HTTPRampStartHour: 92,
			HTTPRampFactor:    1.8,
			SSHSpike: SpikeEvent{
				Hours:          []int{32, 69},
				PacketsPerHour: 400000,
				Members: []SpikeMember{
					// Sec. IV-C: two routers (RU, AU) + three CPS (CN, CN, BR);
					// the CPS trio generates ~80 % at interval 32 and ~90 % at 69.
					{Country: "RU", Category: devicedb.Consumer, PacketFrac: 0.07},
					{Country: "AU", Category: devicedb.Consumer, PacketFrac: 0.06},
					{Country: "CN", Category: devicedb.CPS, PacketFrac: 0.30},
					{Country: "CN", Category: devicedb.CPS, PacketFrac: 0.28},
					{Country: "BR", Category: devicedb.CPS, PacketFrac: 0.29},
				},
			},
			BackroomStartHour:      113,
			BackroomPacketsPerHour: 200000,
			BackroomCountry:        "CA",
			BackroomService:        "BACnet/IP",
			PortSpikeHour:          119,
			PortSpikePorts:         10249,
			PortSpikeDests:         55,
			PortSpikeCountry:       "DO",
		},

		UDPProbe: UDPProbeConfig{
			TotalProbers:        25242,
			ConsumerFrac:        0.60,
			ConsumerPacketShare: 0.63,
			// Pre-compensated above the paper's ~91 K/h: light probers
			// trickle in over the window (Fig. 2) and under-deliver their
			// budgets, landing the delivered share at the paper's ~10 %.
			HourlyPackets: 115000,
			PortGroups: []UDPPortGroup{
				// Table IV.
				{Port: 37547, PacketShare: 2.52, Devices: 10115},
				{Port: 137, PacketShare: 2.06, Devices: 144},
				{Port: 53413, PacketShare: 2.05, Devices: 91},
				{Port: 32124, PacketShare: 1.08, Devices: 9488},
				{Port: 28183, PacketShare: 0.94, Devices: 9710},
				{Port: 5353, PacketShare: 0.76, Devices: 165},
				{Port: 4605, PacketShare: 0.38, Devices: 150},
				{Port: 53, PacketShare: 0.33, Devices: 158},
				{Port: 3544, PacketShare: 0.26, Devices: 226},
				{Port: 1194, PacketShare: 0.26, Devices: 96},
			},
			TailZipfExponent:  0.5,
			CPSBurstProb:      0.08,
			CPSBurstFactor:    6,
			CPSPacketsPerDest: 6,
		},

		ICMPScan: ICMPScanConfig{
			TotalScanners:       56,
			ConsumerScanners:    32,
			ConsumerPacketShare: 0.93,
			HourlyPackets:       2300,
		},

		Backscatter: BackscatterConfig{
			TotalVictims: 839,
			CPSFrac:      0.53,
			CountryShares: []Share{
				// Fig. 8a: CN, SG, US lead; SG/ID victims are consumer-heavy.
				{"CN", 18.0}, {"US", 10.0}, {"SG", 8.5}, {"ID", 6.5},
				{"KR", 5.0}, {"TW", 4.0}, {"VN", 3.5}, {"TH", 3.0},
				{"RU", 3.0}, {"IN", 2.5}, {"BR", 2.0}, {"GB", 1.2},
				{"FR", 1.2}, {"DE", 1.2}, {"MY", 1.1}, {"CH", 0.5}, {"AR", 0.6},
			},
			SmallFrac:       0.5,
			SmallXm:         20,
			SmallAlpha:      1.5,
			HeavyXm:         500,
			HeavyAlpha:      0.4,
			CPSVolumeFactor: 2.2,
			// Only the scripted event victims exceed ~100 K packets
			// (Fig. 6: just 7 devices above 100 K, all event-driven).
			MaxVictimTotal: 25000,
			Events: []DoSEvent{
				// Sec. IV-B1 narrative.
				{Name: "cn-ethip-1", Hours: []int{6, 7, 8, 53, 54, 55, 56},
					PacketsPerHour: 800000, Country: "CN",
					Category: devicedb.CPS, Service: "Ethernet/IP"},
				{Name: "cn-ethip-2", Hours: []int{99, 127},
					PacketsPerHour: 700000, Country: "CN",
					Category: devicedb.CPS, Service: "Ethernet/IP"},
				{Name: "ch-telvent", Hours: []int{94},
					PacketsPerHour: 500000, Country: "CH",
					Category: devicedb.CPS, Service: "Telvent OASyS DNA"},
				{Name: "nl-printer", Hours: []int{49},
					PacketsPerHour: 150000, Country: "NL",
					Category: devicedb.Consumer, DeviceType: devicedb.TypePrinter},
				{Name: "gb-printer", Hours: []int{81},
					PacketsPerHour: 250000, Country: "GB",
					Category: devicedb.Consumer, DeviceType: devicedb.TypePrinter},
			},
		},

		Other: OtherTrafficConfig{
			// Sized so the realm totals land at Fig. 4's CPS 52.9 % vs
			// consumer 47.2 % despite consumer-heavy scanning: CPS devices
			// carry the bulk of the steady ACK/FIN residue.
			HourlyPackets: 220000,
			CPSFrac:       0.85,
			EmitterFrac:   0.30,
		},

		Background: BackgroundConfig{
			HourlyPackets: 700000,
			Sources:       80000,
		},
	}
}
