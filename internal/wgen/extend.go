package wgen

import (
	"fmt"
	"math"

	"iotscope/internal/devicedb"
	"iotscope/internal/flowtuple"
	"iotscope/internal/netx"
	"iotscope/internal/rng"
)

// extBehaviour is the behaviour record for an extension-kind actor: a
// bounded active window and a per-hour emission model selected by kind.
// Extension actors bypass the two-level duty cycle the way scripted events
// do — their temporal shape IS the behaviour under test.
type extBehaviour struct {
	kind string
	// [from, to) is the active window in capture hours.
	from int
	to   int
	// rate is the mean packets per active hour for this device.
	rate float64
	// ports: scanned ports for mirai-wave (first dominates) and the single
	// stealth-scan port.
	ports []uint16
	// svcPorts/svcCum: service port choices with cumulative probabilities
	// for udp-amplification and cps-campaign.
	svcPorts []uint16
	svcCum   []float64
	// minLen/maxLen bound amplification payload sizes.
	minLen int
	maxLen int
}

// applyExtensions enrolls the extension-kind cohorts. It runs after the
// baseline population is fully built and draws only freshly-labelled rng
// streams, so scenarios without extension blocks — the paper default —
// are bit-for-bit unaffected.
func (g *Generator) applyExtensions() error {
	sc := g.sc
	if c := sc.MiraiWave; c != nil {
		if err := g.applyMiraiWave(c); err != nil {
			return err
		}
	}
	if c := sc.UDPAmplification; c != nil {
		if err := g.applyUDPAmplification(c); err != nil {
			return err
		}
	}
	if c := sc.StealthScan; c != nil {
		if err := g.applyStealthScan(c); err != nil {
			return err
		}
	}
	if c := sc.CPSCampaign; c != nil {
		if err := g.applyCPSCampaign(c); err != nil {
			return err
		}
	}
	if c := sc.DiurnalBackground; c != nil {
		g.buildDiurnalPool(c)
	}
	return nil
}

// extPool draws n not-yet-compromised devices of the category,
// deterministically from the kind's own stream.
func (g *Generator) extPool(kind string, cat devicedb.Category, n int) ([]int, error) {
	var free []int
	for i, d := range g.inv.All() {
		if d.Category == cat && g.byID[i] == nil {
			free = append(free, i)
		}
	}
	if len(free) == 0 {
		return nil, fmt.Errorf("wgen: %s: no %s devices left to enroll", kind, cat)
	}
	shuffleInts(g.root.Derive("ext-pool", kind), free)
	if n > len(free) {
		n = len(free)
	}
	return free[:n], nil
}

// addExtActor enrolls one device with an extension behaviour, recording it
// in the kind's cohort. Duty parameters are pinned to 1 so the actor's
// ActivityWeight is representative and nothing in the regular emission
// path fires (it has no baseline rates).
func (g *Generator) addExtActor(id int, ext *extBehaviour) {
	a := &actor{
		id:       id,
		dev:      g.inv.At(id),
		onset:    ext.from,
		dayProb:  1,
		hourDuty: 1,
		rateMult: 1,
		ext:      ext,
	}
	g.actors = append(g.actors, a)
	g.byID[id] = a
	if g.truth.Cohorts == nil {
		g.truth.Cohorts = make(map[string][]int)
	}
	g.truth.Cohorts[ext.kind] = append(g.truth.Cohorts[ext.kind], id)
}

// applyMiraiWave plants the propagation wave: consumer devices are
// infected along a logistic ramp and scan for a bounded lifetime.
func (g *Generator) applyMiraiWave(c *MiraiWaveConfig) error {
	n := scaleCount(c.Devices, g.sc.Scale)
	pool, err := g.extPool(KindMiraiWave, devicedb.Consumer, n)
	if err != nil {
		return err
	}
	r := g.root.Derive("ext", KindMiraiWave)
	// Steepness 8/RampHours puts ~96 % of infections inside the ramp.
	k := 8.0 / float64(c.RampHours)
	mid := float64(c.StartHour) + float64(c.RampHours)/2
	for i, id := range pool {
		// Quantile of the logistic CDF, jittered so infection times do not
		// land on a lattice.
		u := (float64(i) + 0.5) / float64(len(pool))
		t := mid + math.Log(u/(1-u))/k + r.Float64() - 0.5
		infect := int(math.Round(t))
		if infect < c.StartHour {
			infect = c.StartHour
		}
		if infect >= g.sc.Hours {
			// Infected after the capture window closes: invisible, skip.
			continue
		}
		life := c.LifetimeMinHours + r.Intn(c.LifetimeMaxHours-c.LifetimeMinHours+1)
		to := infect + life
		if to > g.sc.Hours {
			to = g.sc.Hours
		}
		g.addExtActor(id, &extBehaviour{
			kind:  KindMiraiWave,
			from:  infect,
			to:    to,
			rate:  c.PacketsPerHour,
			ports: c.Ports,
		})
	}
	if len(g.truth.Cohorts[KindMiraiWave]) == 0 {
		return fmt.Errorf("wgen: %s: every infection fell outside the %d-hour window", KindMiraiWave, g.sc.Hours)
	}
	return nil
}

// applyUDPAmplification enrolls the reflector cohort: always-on consumer
// devices answering on well-known service source ports.
func (g *Generator) applyUDPAmplification(c *UDPAmplificationConfig) error {
	n := scaleCount(c.Reflectors, g.sc.Scale)
	pool, err := g.extPool(KindUDPAmplification, devicedb.Consumer, n)
	if err != nil {
		return err
	}
	ports, cum := serviceTable(len(c.Services), func(i int) (uint16, float64) {
		return c.Services[i].Port, c.Services[i].Share
	})
	rate := c.HourlyPackets * g.sc.Scale / float64(len(pool))
	r := g.root.Derive("ext", KindUDPAmplification)
	for _, id := range pool {
		// Reflectors come under fire at staggered points of day one.
		from := r.Intn(minInt(24, g.sc.Hours))
		g.addExtActor(id, &extBehaviour{
			kind:     KindUDPAmplification,
			from:     from,
			to:       g.sc.Hours,
			rate:     rate,
			svcPorts: ports,
			svcCum:   cum,
			minLen:   c.MinLen,
			maxLen:   c.MaxLen,
		})
	}
	return nil
}

// applyStealthScan enrolls the slow scanners.
func (g *Generator) applyStealthScan(c *StealthScanConfig) error {
	n := scaleCount(c.Scanners, g.sc.Scale)
	pool, err := g.extPool(KindStealthScan, devicedb.Consumer, n)
	if err != nil {
		return err
	}
	r := g.root.Derive("ext", KindStealthScan)
	for _, id := range pool {
		from := r.Intn(minInt(24, g.sc.Hours))
		g.addExtActor(id, &extBehaviour{
			kind:  KindStealthScan,
			from:  from,
			to:    g.sc.Hours,
			rate:  c.PacketsPerHour,
			ports: []uint16{c.Port},
		})
	}
	return nil
}

// applyCPSCampaign enrolls CPS devices into the windowed industrial
// campaign.
func (g *Generator) applyCPSCampaign(c *CPSCampaignConfig) error {
	if c.StartHour >= g.sc.Hours {
		return fmt.Errorf("wgen: %s: StartHour %d outside the %d-hour window", KindCPSCampaign, c.StartHour, g.sc.Hours)
	}
	n := scaleCount(c.Devices, g.sc.Scale)
	pool, err := g.extPool(KindCPSCampaign, devicedb.CPS, n)
	if err != nil {
		return err
	}
	to := g.sc.Hours
	if c.DurationHours > 0 && c.StartHour+c.DurationHours < to {
		to = c.StartHour + c.DurationHours
	}
	ports, cum := serviceTable(len(c.Services), func(i int) (uint16, float64) {
		return c.Services[i].Port, c.Services[i].Share
	})
	rate := c.HourlyPackets * g.sc.Scale / float64(len(pool))
	for _, id := range pool {
		g.addExtActor(id, &extBehaviour{
			kind:     KindCPSCampaign,
			from:     c.StartHour,
			to:       to,
			rate:     rate,
			svcPorts: ports,
			svcCum:   cum,
		})
	}
	return nil
}

// serviceTable builds the (port, cumulative probability) lookup for
// share-weighted service draws.
func serviceTable(n int, at func(i int) (uint16, float64)) ([]uint16, []float64) {
	ports := make([]uint16, n)
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		var share float64
		ports[i], share = at(i)
		total += share
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return ports, cum
}

func drawService(r *rng.Source, ports []uint16, cum []float64) uint16 {
	u := r.Float64()
	for i, c := range cum {
		if u <= c {
			return ports[i]
		}
	}
	return ports[len(ports)-1]
}

// emitExt renders one extension actor's traffic for the hour. It shares
// the actor-hour stream with the rest of emitActorHour, which is safe:
// extension actors never existed in scenarios without extension blocks, so
// no pre-existing stream is perturbed.
func (g *Generator) emitExt(a *actor, hour int, dark netx.Prefix,
	r *rng.Source, emit func(flowtuple.Record)) {

	ext := a.ext
	if hour < ext.from || hour >= ext.to {
		return
	}
	switch ext.kind {
	case KindMiraiWave, KindStealthScan:
		ttl := uint8(34 + r.Intn(94))
		g.emitSYNs(a, r.Poisson(ext.rate), ext.ports, ttl, dark, r, emit)
	case KindCPSCampaign:
		ttl := uint8(40 + r.Intn(60))
		n := r.Poisson(ext.rate)
		for i := 0; i < n; i++ {
			emit(flowtuple.Record{
				SrcIP:    uint32(a.dev.IP),
				DstIP:    uint32(randDark(dark, r)),
				SrcPort:  ephemeralPort(r),
				DstPort:  drawService(r, ext.svcPorts, ext.svcCum),
				Protocol: flowtuple.ProtoTCP,
				TCPFlags: flowtuple.FlagSYN,
				TTL:      ttl,
				IPLen:    uint16(40 + r.Intn(20)),
				Packets:  1,
			})
		}
	case KindUDPAmplification:
		ttl := uint8(40 + r.Intn(80))
		n := r.Poisson(ext.rate)
		for n > 0 {
			chunk := uint32(1 + r.Intn(3))
			if uint32(n) < chunk {
				chunk = uint32(n)
			}
			emit(flowtuple.Record{
				SrcIP:    uint32(a.dev.IP),
				DstIP:    uint32(randDark(dark, r)),
				SrcPort:  drawService(r, ext.svcPorts, ext.svcCum),
				DstPort:  ephemeralPort(r),
				Protocol: flowtuple.ProtoUDP,
				TTL:      ttl,
				IPLen:    uint16(ext.minLen + r.Intn(ext.maxLen-ext.minLen+1)),
				Packets:  chunk,
			})
			n -= int(chunk)
		}
	}
}

// buildDiurnalPool pre-draws the smart-home source population — outside
// the inventory, like the flat background pool, but emitted with a
// day/night cycle.
func (g *Generator) buildDiurnalPool(c *DiurnalBackgroundConfig) {
	r := g.root.Derive("ext", KindDiurnalBackground, "pool")
	n := scaleCount(c.Sources, g.sc.Scale)
	g.diurnalPool = make([]uint32, 0, n)
	nISPs := len(g.reg.ISPs)
	for len(g.diurnalPool) < n {
		a := g.reg.RandomAddr(r, r.Intn(nISPs))
		if _, inInv := g.inv.LookupIP(a); inInv {
			continue
		}
		g.diurnalPool = append(g.diurnalPool, uint32(a))
	}
}

// diurnalFactor is the day/night volume modulation: 1 at PeakHour, falling
// on a cosine to MinFactor twelve hours away.
func diurnalFactor(c *DiurnalBackgroundConfig, hour int) float64 {
	phase := 2 * math.Pi * float64(hour%24-c.PeakHour) / 24
	return c.MinFactor + (1-c.MinFactor)*(0.5*(1+math.Cos(phase)))
}

// emitDiurnal renders one hour of smart-home discovery chatter: short UDP
// datagrams to mDNS/SSDP-style ports from non-inventory sources. The
// correlator must discard all of it, at every point of the cycle.
func (g *Generator) emitDiurnal(hour int, dark netx.Prefix, emit func(flowtuple.Record)) {
	c := g.sc.DiurnalBackground
	if c == nil || len(g.diurnalPool) == 0 {
		return
	}
	r := g.root.DeriveN("ext-diurnal-hour", uint64(hour))
	mean := c.HourlyPackets * g.sc.Scale * diurnalFactor(c, hour)
	n := r.Poisson(mean)
	for i := 0; i < n; i++ {
		emit(flowtuple.Record{
			SrcIP:    g.diurnalPool[r.Intn(len(g.diurnalPool))],
			DstIP:    uint32(randDark(dark, r)),
			SrcPort:  ephemeralPort(r),
			DstPort:  c.Ports[r.Intn(len(c.Ports))],
			Protocol: flowtuple.ProtoUDP,
			TTL:      uint8(30 + r.Intn(100)),
			IPLen:    uint16(60 + r.Intn(240)),
			Packets:  1,
		})
	}
}
