//go:build race

package correlate

// raceEnabled reports whether the race detector is compiled in. Under
// race, sync.Pool.Put deliberately drops a random fraction of entries
// (runtime behaviour, not a leak), so pool-recycling assertions that
// demand zero fresh constructions cannot hold.
const raceEnabled = true
