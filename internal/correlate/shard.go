package correlate

import (
	"context"
	"fmt"
	"io"
	"math/bits"
	"slices"
	"sort"
	"sync"

	"iotscope/internal/classify"
	"iotscope/internal/flowtuple"
	"iotscope/internal/sketch"
)

// This file is the distribution seam: the source-IP space is partitioned by
// top-bits prefix into N independent shards, each correlating into its own
// dense tables, sketches, and scratch pool behind its own merger goroutine —
// shards never contend on shared mutable state. Hour files are still decoded
// exactly once (decompression dominates the pipeline; see
// docs/PERFORMANCE.md): an hour worker routes each record to its shard's
// scratch by prefix, then hands one finished scratch per shard to that
// shard's merger. The per-shard outputs are self-contained ShardPartials;
// MergeShards is the merge plane recombining them into one canonical Result,
// proved byte-identical (through the Export encoding) to an unsharded run.
//
// Every per-device and per-port statistic is shard-local or additive across
// shards, because a source IP — and therefore a device — lives in exactly
// one shard. The only cross-shard state is the unique-destination surfaces
// (different shards' devices can probe the same destination), so each
// partial carries the raw mergeable form of those counters: sorted distinct
// values in exact mode, HLL registers in sketch mode. Register-wise max over
// a partition equals the register state of the unpartitioned stream, which
// is what makes the sharded estimates identical, not merely close.

// ShardOf returns the shard owning a source address: the top log2(shards)
// bits of the IP. shards must be a power of two; 1 maps everything to
// shard 0. With shards = 256 this is exactly a /8 partition of the
// telescope's address space.
func ShardOf(srcIP uint32, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(srcIP >> (32 - uint(bits.TrailingZeros(uint(shards)))))
}

// CatSurface is the raw unique-destination state of one (hour, category)
// cell of one shard — the mergeable form behind the CatHour estimates.
// Exactly one of the IP representations is populated: sorted distinct
// destination addresses in exact mode, HLL registers in sketch mode (nil
// when the cell saw no traffic). Ports are always exact and ascending.
type CatSurface struct {
	UDPDstIPs     []uint32
	UDPDstIPRegs  []uint8
	ScanDstIPs    []uint32
	ScanDstIPRegs []uint8
	UDPDstPorts   []uint16
	ScanDstPorts  []uint16
}

// HourSurface carries both category cells of one ingested hour.
type HourSurface struct {
	Hour   int32
	PerCat [2]CatSurface
}

// bytes returns the retained payload size, the unit of the shard memory
// ceiling's runtime accounting.
func (h *HourSurface) bytes() uint64 {
	var b uint64
	for ci := range h.PerCat {
		c := &h.PerCat[ci]
		b += 4 * uint64(len(c.UDPDstIPs)+len(c.ScanDstIPs))
		b += uint64(len(c.UDPDstIPRegs) + len(c.ScanDstIPRegs))
		b += 2 * uint64(len(c.UDPDstPorts)+len(c.ScanDstPorts))
	}
	return b
}

// ShardPartial is one shard's complete, self-contained output: the shard's
// canonical ResultExport plus the raw surface payloads and the
// background-sources HLL registers the merge plane needs. It reuses the
// exact serialization surface internal/resultstore encodes, so a partial
// can cross a process or machine boundary — this is the unit a future
// multi-machine coordinator ships home.
type ShardPartial struct {
	Shard           int
	Shards          int
	SketchPrecision int
	Sketches        bool
	Export          *ResultExport
	// Surfaces has one entry per ingested hour, ascending.
	Surfaces    []HourSurface
	BGRegisters []uint8
}

// ShardReport summarizes one shard's run for observability (surfaced as
// per-shard StageMetrics through internal/pipeline).
type ShardReport struct {
	Shard      int
	Records    uint64 // records routed to the shard, incl. background
	RecordsIoT uint64
	Devices    int
	// RetainedBytes is the shard's modeled resident footprint: fixed
	// tables and scratches plus retained surface payloads — the quantity
	// the memory ceiling bounds.
	RetainedBytes uint64
}

// ErrShardMemory is the sentinel behind ShardMemoryError.
var ErrShardMemory = fmt.Errorf("correlate: shard memory budget exceeded")

// ShardMemoryError is the fail-fast diagnostic of the per-shard memory
// ceiling. There is no spill path: a run that cannot fit aborts with the
// numbers needed to size the budget or the shard count.
type ShardMemoryError struct {
	// Shard is the shard that overran, or -1 when the pre-flight estimate
	// already exceeds the budget (every shard would overrun).
	Shard int
	// Hour is the hour being merged when the ceiling was hit, -1 at
	// startup.
	Hour     int
	Budget   uint64
	Required uint64
}

func (e *ShardMemoryError) Error() string {
	if e.Shard < 0 {
		return fmt.Sprintf(
			"correlate: shard memory budget %d B below fixed footprint %d B (raise the budget, lower Workers, or use more shards)",
			e.Budget, e.Required)
	}
	return fmt.Sprintf(
		"correlate: shard %d exceeded memory budget %d B at hour %d (requires %d B; raise the budget or use more shards)",
		e.Shard, e.Budget, e.Hour, e.Required)
}

func (e *ShardMemoryError) Unwrap() error { return ErrShardMemory }

const portSlots = 1 << 16

// estimateScratchBytes models one hourScratch's resident footprint — the
// dominant term of a shard's fixed memory. The model counts the dense
// arrays exactly and the hash sets and slices at their initial capacity
// (they grow with traffic; the runtime surface accounting picks up the
// retained side of that growth).
func (c *Correlator) estimateScratchBytes() uint64 {
	n := uint64(c.inv.Len())
	const deviceStatsBytes = 8*8 + 8*classify.NumClasses // fixed fields + Packets
	b := n * deviceStatsBytes                            // devs
	b += n * (8 + 1 + 4 + 4 + 4)                         // bsPkts, devFlags, scanPorts, scanDests, touched
	b += 3 * portSlots * 8                               // udpPkts, tcpPkts, tcpPktsCon
	b += 6 * portSlots / 8                               // udpMark, tcpMark, 4 surface bitsets
	b += 5 * 8192 * 8                                    // devPort, devDest, udpPortDev, tcpDevCon, tcpDevCPS
	b += flowtuple.BatchSize * 24                        // batch (in-memory Record)
	b += 1 << uint(c.opts.SketchPrecision)               // bgSrcHLL
	if c.opts.UseSketches {
		b += 4 << uint(c.opts.SketchPrecision) // 4 HLL destination counters
	} else {
		b += 4 * 2048 * 8 // 4 exact counters at initial capacity
	}
	return b
}

// shardFixedFootprint models one shard's fixed resident bytes: scratches
// in flight (each hour worker holds one scratch per shard, plus one being
// merged or pooled), the merger's dense tables, and the shard Result's
// hourly rows. Retained surface payloads come on top and are accounted at
// run time.
func (c *Correlator) shardFixedFootprint(hours int) uint64 {
	scratch := c.estimateScratchBytes()
	inflight := uint64(c.opts.Workers) + 1
	merge := uint64(c.inv.Len())*8 + 2*portSlots*8 + 3*8192*8
	const hourStatsBytes = 2*8 + 2*(8*classify.NumClasses+6*8)
	return scratch*inflight + merge + uint64(hours)*hourStatsBytes
}

// checkShardBudget is the fail-fast pre-flight: if the fixed footprint
// alone exceeds the per-shard budget, no hour could ever merge, so the run
// refuses to start.
func (c *Correlator) checkShardBudget(hours int) error {
	if c.opts.ShardMemoryBudget == 0 {
		return nil
	}
	if need := c.shardFixedFootprint(hours); need > c.opts.ShardMemoryBudget {
		return &ShardMemoryError{Shard: -1, Hour: -1, Budget: c.opts.ShardMemoryBudget, Required: need}
	}
	return nil
}

// shardPool recycles hourScratch instances within one shard — each shard
// owns its pool, so shards never exchange (or contend on) scratch memory.
type shardPool struct{ pool sync.Pool }

func (p *shardPool) get(c *Correlator) (*hourScratch, error) {
	if v := p.pool.Get(); v != nil {
		return v.(*hourScratch), nil
	}
	return c.newScratch()
}

func (p *shardPool) put(s *hourScratch) {
	s.reset()
	p.pool.Put(s)
}

// extractSurface captures the hour's raw unique-destination state before
// the scratch is recycled. Exact IP sets come out sorted (canonical form);
// all-zero HLL registers compact to nil so empty cells cost nothing.
func (s *hourScratch) extractSurface(hour int) HourSurface {
	hs := HourSurface{Hour: int32(hour)}
	for ci := range hs.PerCat {
		cs := &hs.PerCat[ci]
		cs.UDPDstIPs = sortU32(s.udpDstIPs[ci].appendIPs(nil))
		cs.UDPDstIPRegs = compactRegs(s.udpDstIPs[ci].appendRegisters(nil))
		cs.ScanDstIPs = sortU32(s.scanDstIPs[ci].appendIPs(nil))
		cs.ScanDstIPRegs = compactRegs(s.scanDstIPs[ci].appendRegisters(nil))
		cs.UDPDstPorts = s.udpDstPorts[ci].appendPorts(nil)
		cs.ScanDstPorts = s.scanDstPorts[ci].appendPorts(nil)
	}
	return hs
}

func sortU32(v []uint32) []uint32 {
	slices.Sort(v)
	return v
}

func compactRegs(regs []uint8) []uint8 {
	for _, r := range regs {
		if r != 0 {
			return regs
		}
	}
	return nil
}

// shardRun is one shard's private engine state: its parts channel, merger
// goroutine, dense tables, background HLL, scratch pool, and retained
// surfaces. Only the merger goroutine touches the mutable fields until
// done closes.
type shardRun struct {
	shard        int
	parts        chan *hourScratch
	done         chan struct{}
	res          *Result
	st           *mergeState
	bg           *sketch.HLL
	pool         shardPool
	surfaces     []HourSurface
	surfaceBytes uint64
	memErr       *ShardMemoryError
}

// ProcessDatasetSharded correlates every hourly file in dir across
// Options.Shards prefix-partitioned shards and recombines the partials
// through MergeShards. Semantics match ProcessDataset exactly — same
// strict/lenient fault handling, same cancellation contract, byte-identical
// Result — plus per-shard reports and the per-shard memory ceiling.
// With Shards <= 1 it delegates to the single-merger path, so the
// abstraction costs nothing when unused.
func (c *Correlator) ProcessDatasetSharded(ctx context.Context, dir string) (*Result, []ShardReport, error) {
	n := c.opts.Shards
	if n > 1 && bits.OnesCount(uint(n)) != 1 {
		return nil, nil, fmt.Errorf("correlate: shard count %d is not a power of two", n)
	}
	if n > 1<<16 {
		return nil, nil, fmt.Errorf("correlate: shard count %d exceeds 65536", n)
	}
	hours, err := flowtuple.DatasetHours(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(hours) == 0 {
		return nil, nil, fmt.Errorf("correlate: no hourly files in %s", dir)
	}
	maxHour := hours[len(hours)-1]
	if err := c.checkShardBudget(maxHour + 1); err != nil {
		return nil, nil, err
	}
	if n <= 1 {
		res, err := c.processDatasetSingle(ctx, dir)
		if err != nil {
			return nil, nil, err
		}
		return res, []ShardReport{singleShardReport(res, c.shardFixedFootprint(res.Hours))}, nil
	}

	shift := 32 - uint(bits.TrailingZeros(uint(n)))
	fixed := c.shardFixedFootprint(maxHour + 1)
	budget := c.opts.ShardMemoryBudget

	runs := make([]*shardRun, n)
	for k := range runs {
		bg, err := sketch.NewHLL(c.opts.SketchPrecision)
		if err != nil {
			return nil, nil, err
		}
		runs[k] = &shardRun{
			shard: k,
			parts: make(chan *hourScratch, c.opts.Workers),
			done:  make(chan struct{}),
			res:   newResult(maxHour + 1),
			st:    newMergeState(),
			bg:    bg,
		}
	}
	for _, r := range runs {
		go func(r *shardRun) {
			defer close(r.done)
			for s := range r.parts {
				if r.memErr != nil {
					r.pool.put(s) // fail fast: stop merging, keep draining
					continue
				}
				hs := s.extractSurface(s.hour)
				need := fixed + r.surfaceBytes + hs.bytes()
				if budget > 0 && need > budget {
					r.memErr = &ShardMemoryError{
						Shard: r.shard, Hour: s.hour, Budget: budget, Required: need,
					}
					r.pool.put(s)
					continue
				}
				r.surfaceBytes += hs.bytes()
				r.surfaces = append(r.surfaces, hs)
				mergeDense(r.res, s, r.bg, r.st)
				r.pool.put(s)
			}
		}(r)
	}

	// Ingest bookkeeping happens once per hour at the coordinator — an hour
	// decodes once, so its success or failure is shared by every shard.
	var (
		wg      sync.WaitGroup
		sem     = make(chan struct{}, c.opts.Workers)
		mu      sync.Mutex
		ingest  IngestStats
		errHour = -1
		hourErr error
	)
	for _, hour := range hours {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(hour int) {
			defer wg.Done()
			defer func() { <-sem }()
			scrs, err := c.processHourShards(ctx, dir, hour, runs, shift)
			if err != nil {
				if isCtxErr(err) {
					return
				}
				mu.Lock()
				if c.opts.FaultPolicy == Lenient {
					ingest.noteFailure(hour, err, IsRetryable(err))
					ingest.HoursQuarantined++
				} else if errHour == -1 || hour < errHour {
					errHour, hourErr = hour, err
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			ingest.HoursOK++
			mu.Unlock()
			for k, s := range scrs {
				runs[k].parts <- s
			}
		}(hour)
	}
	wg.Wait()
	for _, r := range runs {
		close(r.parts)
	}
	for _, r := range runs {
		<-r.done
	}
	if hourErr != nil {
		return nil, nil, hourErr
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	for _, r := range runs {
		if r.memErr != nil {
			return nil, nil, r.memErr
		}
	}

	partials := make([]*ShardPartial, n)
	reports := make([]ShardReport, n)
	for k, r := range runs {
		// Hours arrive at the merger out of order; the partial's canonical
		// form is ascending.
		sort.Slice(r.surfaces, func(i, j int) bool { return r.surfaces[i].Hour < r.surfaces[j].Hour })
		r.st.finalizeResult(r.res)
		r.res.Background.Sources = r.bg.Estimate()
		r.res.Ingest = ingest
		r.res.Ingest.Faults = append([]HourFault(nil), ingest.Faults...)
		partials[k] = &ShardPartial{
			Shard:           k,
			Shards:          n,
			SketchPrecision: c.opts.SketchPrecision,
			Sketches:        c.opts.UseSketches,
			Export:          r.res.Export(),
			Surfaces:        r.surfaces,
			BGRegisters:     r.bg.AppendRegisters(nil),
		}
		var iot uint64
		for i := range r.res.Hourly {
			iot += r.res.Hourly[i].RecordsIoT
		}
		reports[k] = ShardReport{
			Shard:         k,
			Records:       r.res.Background.Records + iot,
			RecordsIoT:    iot,
			Devices:       len(r.res.Devices),
			RetainedBytes: fixed + r.surfaceBytes,
		}
	}
	merged, err := MergeShards(partials)
	if err != nil {
		return nil, nil, err
	}
	return merged, reports, nil
}

func singleShardReport(res *Result, retained uint64) ShardReport {
	var iot uint64
	for i := range res.Hourly {
		iot += res.Hourly[i].RecordsIoT
	}
	return ShardReport{
		Shard:         0,
		Records:       res.Background.Records + iot,
		RecordsIoT:    iot,
		Devices:       len(res.Devices),
		RetainedBytes: retained,
	}
}

// processHourShards decodes one hour file exactly once and routes every
// record to its shard's scratch by source-IP prefix. On success the caller
// owns all N finalized scratches; on any error — including cancellation,
// checked between record batches — every scratch has been reset and
// returned to its shard's pool.
func (c *Correlator) processHourShards(ctx context.Context, dir string, hour int, runs []*shardRun, shift uint) ([]*hourScratch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scrs := make([]*hourScratch, len(runs))
	recycle := func() {
		for k, s := range scrs {
			if s != nil {
				runs[k].pool.put(s)
			}
		}
	}
	for k, r := range runs {
		s, err := r.pool.get(c)
		if err != nil {
			recycle()
			return nil, err
		}
		s.hour = hour
		s.stats.Hour = hour
		scrs[k] = s
	}
	rd, err := flowtuple.Open(flowtuple.HourPath(dir, hour))
	if err != nil {
		recycle()
		return nil, err
	}
	defer rd.Close()
	batch := scrs[0].batch
	for {
		if err := ctx.Err(); err != nil {
			recycle()
			return nil, err
		}
		n, err := rd.NextBatch(batch)
		for i := 0; i < n; i++ {
			rec := &batch[i]
			c.accumulate(scrs[rec.SrcIP>>shift], hour, rec)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			recycle()
			return nil, err
		}
	}
	for _, s := range scrs {
		s.finalize(hour)
	}
	return scrs, nil
}

// MergeShards is the merge plane: it recombines a complete set of shard
// partials into one canonical Result, byte-identical (through the Export
// encoding) to an unsharded run over the same dataset. Per-device and
// per-port state concatenates (device index spaces are disjoint across
// shards), packet counters add, and the unique-destination surfaces union
// — exact sets by sorted dedup, sketches by register-wise max via
// sketch.Merge semantics. Structural violations are ErrBadFormat-family
// errors.
func MergeShards(partials []*ShardPartial) (*Result, error) {
	ordered, err := orderPartials(partials)
	if err != nil {
		return nil, err
	}
	base := ordered[0]
	hours := base.Export.Hours
	out := &ResultExport{
		Hours:             hours,
		Hourly:            make([]HourStats, hours),
		IngestOK:          base.Export.IngestOK,
		IngestRetried:     base.Export.IngestRetried,
		IngestQuarantined: base.Export.IngestQuarantined,
		Faults:            append([]FaultExport(nil), base.Export.Faults...),
	}
	for i := range out.Hourly {
		out.Hourly[i].Hour = i
	}

	// Additive hourly fields; the four surface estimates are recomputed
	// from the union'd payloads below, never summed.
	for _, p := range ordered {
		out.Background.Records += p.Export.Background.Records
		out.Background.Packets += p.Export.Background.Packets
		for i := range p.Export.Hourly {
			src := &p.Export.Hourly[i]
			dst := &out.Hourly[i]
			dst.RecordsIoT += src.RecordsIoT
			for ci := range dst.PerCat {
				d, s := &dst.PerCat[ci], &src.PerCat[ci]
				for cl := range d.Packets {
					d.Packets[cl] += s.Packets[cl]
				}
				d.ActiveDevices += s.ActiveDevices
				d.UDPDevices += s.UDPDevices
				d.ScanDevices += s.ScanDevices
			}
		}
	}

	if err := mergeSurfaces(out, ordered); err != nil {
		return nil, err
	}
	if err := mergeDevices(out, ordered); err != nil {
		return nil, err
	}
	if err := mergePorts(out, ordered); err != nil {
		return nil, err
	}
	mergePortHours(out, ordered)

	sources, err := mergeBGSources(ordered)
	if err != nil {
		return nil, err
	}
	out.Background.Sources = sources
	return out.Result()
}

// orderPartials validates the partial set — complete, mutually consistent,
// one per shard — and returns it ordered by shard id.
func orderPartials(partials []*ShardPartial) ([]*ShardPartial, error) {
	if len(partials) == 0 {
		return nil, badf("no shard partials to merge")
	}
	n := partials[0].Shards
	if len(partials) != n {
		return nil, badf("have %d shard partials, want %d", len(partials), n)
	}
	ordered := make([]*ShardPartial, n)
	for _, p := range partials {
		if p == nil || p.Export == nil {
			return nil, badf("nil shard partial")
		}
		if p.Shards != n {
			return nil, badf("shard %d claims %d shards, want %d", p.Shard, p.Shards, n)
		}
		if p.Shard < 0 || p.Shard >= n {
			return nil, badf("shard id %d outside [0, %d)", p.Shard, n)
		}
		if ordered[p.Shard] != nil {
			return nil, badf("duplicate partial for shard %d", p.Shard)
		}
		ordered[p.Shard] = p
	}
	base := ordered[0]
	for _, p := range ordered[1:] {
		if p.Export.Hours != base.Export.Hours {
			return nil, badf("shard %d spans %d hours, shard 0 spans %d", p.Shard, p.Export.Hours, base.Export.Hours)
		}
		if p.SketchPrecision != base.SketchPrecision || p.Sketches != base.Sketches {
			return nil, badf("shard %d sketch configuration diverges from shard 0", p.Shard)
		}
		if p.Export.IngestOK != base.Export.IngestOK ||
			p.Export.IngestRetried != base.Export.IngestRetried ||
			p.Export.IngestQuarantined != base.Export.IngestQuarantined ||
			len(p.Export.Faults) != len(base.Export.Faults) {
			return nil, badf("shard %d ingest bookkeeping diverges from shard 0", p.Shard)
		}
		if len(p.Surfaces) != len(base.Surfaces) {
			return nil, badf("shard %d carries %d hour surfaces, shard 0 carries %d",
				p.Shard, len(p.Surfaces), len(base.Surfaces))
		}
		for j := range p.Surfaces {
			if p.Surfaces[j].Hour != base.Surfaces[j].Hour {
				return nil, badf("shard %d surface %d is hour %d, shard 0 has hour %d",
					p.Shard, j, p.Surfaces[j].Hour, base.Surfaces[j].Hour)
			}
		}
	}
	return ordered, nil
}

// mergeSurfaces unions the raw unique-destination payloads of every
// (hour, category) cell and writes the recomputed estimates into out.
func mergeSurfaces(out *ResultExport, ordered []*ShardPartial) error {
	base := ordered[0]
	ips := make([]uint32, 0, 1024)
	ports := make([]uint16, 0, 256)
	var regs []uint8
	for j := range base.Surfaces {
		hour := int(base.Surfaces[j].Hour)
		if hour < 0 || hour >= out.Hours {
			return badf("surface hour %d outside [0, %d)", hour, out.Hours)
		}
		for ci := 0; ci < 2; ci++ {
			cell := &out.Hourly[hour].PerCat[ci]
			for _, kind := range [2]bool{true, false} { // UDP, then scan
				var count uint64
				var err error
				if base.Sketches {
					count, err = unionRegs(ordered, j, ci, kind, base.SketchPrecision, &regs)
				} else {
					count, err = unionIPs(ordered, j, ci, kind, &ips)
				}
				if err != nil {
					return err
				}
				pcount := unionPorts(ordered, j, ci, kind, &ports)
				if kind {
					cell.UDPDstIPs = count
					cell.UDPDstPorts = pcount
				} else {
					cell.ScanDstIPs = count
					cell.ScanDstPorts = pcount
				}
			}
		}
	}
	return nil
}

// unionIPs counts the distinct destination addresses of one cell across
// shards (exact mode): concatenate, sort, dedup.
func unionIPs(ordered []*ShardPartial, j, ci int, udp bool, buf *[]uint32) (uint64, error) {
	v := (*buf)[:0]
	for _, p := range ordered {
		cs := &p.Surfaces[j].PerCat[ci]
		if udp {
			v = append(v, cs.UDPDstIPs...)
		} else {
			v = append(v, cs.ScanDstIPs...)
		}
	}
	*buf = v
	slices.Sort(v)
	var n uint64
	for i := range v {
		if i == 0 || v[i] != v[i-1] {
			n++
		}
	}
	return n, nil
}

// unionRegs folds one cell's HLL registers across shards by register-wise
// max — identical to the registers an unpartitioned HLL would hold — and
// estimates the union cardinality from the merged state.
func unionRegs(ordered []*ShardPartial, j, ci int, udp bool, precision int, buf *[]uint8) (uint64, error) {
	want := 1 << uint(precision)
	merged := (*buf)[:0]
	for _, p := range ordered {
		cs := &p.Surfaces[j].PerCat[ci]
		regs := cs.UDPDstIPRegs
		if !udp {
			regs = cs.ScanDstIPRegs
		}
		if regs == nil {
			continue // empty cell in this shard
		}
		if len(regs) != want {
			return 0, badf("shard %d surface %d has %d HLL registers, want %d", p.Shard, j, len(regs), want)
		}
		if len(merged) == 0 {
			merged = append(merged, regs...)
			continue
		}
		for i, r := range regs {
			if r > merged[i] {
				merged[i] = r
			}
		}
	}
	*buf = merged
	if len(merged) == 0 {
		return 0, nil
	}
	h, err := sketch.RestoreHLL(precision, merged)
	if err != nil {
		return 0, badf("restore surface HLL: %v", err)
	}
	return h.Estimate(), nil
}

// unionPorts counts the distinct destination ports of one cell across
// shards.
func unionPorts(ordered []*ShardPartial, j, ci int, udp bool, buf *[]uint16) uint64 {
	v := (*buf)[:0]
	for _, p := range ordered {
		cs := &p.Surfaces[j].PerCat[ci]
		if udp {
			v = append(v, cs.UDPDstPorts...)
		} else {
			v = append(v, cs.ScanDstPorts...)
		}
	}
	*buf = v
	slices.Sort(v)
	var n uint64
	for i := range v {
		if i == 0 || v[i] != v[i-1] {
			n++
		}
	}
	return n
}

// mergeDevices concatenates the shards' device tables. Index spaces are
// disjoint by construction (a device's IP lives in one shard); overlap is
// corruption.
func mergeDevices(out *ResultExport, ordered []*ShardPartial) error {
	total := 0
	for _, p := range ordered {
		total += len(p.Export.Devices)
	}
	devs := make([]DeviceExport, 0, total)
	for _, p := range ordered {
		devs = append(devs, p.Export.Devices...)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i].ID < devs[j].ID })
	for i := 1; i < len(devs); i++ {
		if devs[i].ID == devs[i-1].ID {
			return badf("device %d appears in more than one shard", devs[i].ID)
		}
	}
	out.Devices = devs
	return nil
}

// mergePorts coalesces the per-port aggregates: packets add, device lists
// concatenate (disjoint across shards) and re-sort ascending.
func mergePorts(out *ResultExport, ordered []*ShardPartial) error {
	{
		var all []PortExport
		for _, p := range ordered {
			all = append(all, p.Export.UDPPorts...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Port < all[j].Port })
		merged := make([]PortExport, 0, len(all))
		for lo := 0; lo < len(all); {
			hi := lo + 1
			for hi < len(all) && all[hi].Port == all[lo].Port {
				hi++
			}
			pe := PortExport{Port: all[lo].Port}
			var devs []int32
			for _, e := range all[lo:hi] {
				pe.Packets += e.Packets
				devs = append(devs, e.Devices...)
			}
			var err error
			if pe.Devices, err = sortDisjoint(devs, "UDP", pe.Port); err != nil {
				return err
			}
			merged = append(merged, pe)
			lo = hi
		}
		out.UDPPorts = merged
	}
	var all []TCPPortExport
	for _, p := range ordered {
		all = append(all, p.Export.TCPScanPorts...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Port < all[j].Port })
	merged := make([]TCPPortExport, 0, len(all))
	for lo := 0; lo < len(all); {
		hi := lo + 1
		for hi < len(all) && all[hi].Port == all[lo].Port {
			hi++
		}
		pe := TCPPortExport{Port: all[lo].Port}
		var con, cps []int32
		for _, e := range all[lo:hi] {
			pe.Packets += e.Packets
			pe.PacketsConsumer += e.PacketsConsumer
			con = append(con, e.DevicesConsumer...)
			cps = append(cps, e.DevicesCPS...)
		}
		var err error
		if pe.DevicesConsumer, err = sortDisjoint(con, "TCP", pe.Port); err != nil {
			return err
		}
		if pe.DevicesCPS, err = sortDisjoint(cps, "TCP", pe.Port); err != nil {
			return err
		}
		merged = append(merged, pe)
		lo = hi
	}
	out.TCPScanPorts = merged
	return nil
}

// sortDisjoint sorts a concatenation of per-shard device lists and rejects
// duplicates (shard device spaces are disjoint, so a repeat is corruption).
// Empty stays nil, matching the export convention.
func sortDisjoint(devs []int32, proto string, port uint16) ([]int32, error) {
	if len(devs) == 0 {
		return nil, nil
	}
	slices.Sort(devs)
	for i := 1; i < len(devs); i++ {
		if devs[i] == devs[i-1] {
			return nil, badf("%s port %d lists device %d in more than one shard", proto, port, devs[i])
		}
	}
	return devs, nil
}

// mergePortHours sums the (port, hour) cells across shards, port-major.
func mergePortHours(out *ResultExport, ordered []*ShardPartial) {
	var all []PortHourExport
	for _, p := range ordered {
		all = append(all, p.Export.TCPPortHour...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Port != all[j].Port {
			return all[i].Port < all[j].Port
		}
		return all[i].Hour < all[j].Hour
	})
	merged := make([]PortHourExport, 0, len(all))
	for _, e := range all {
		if n := len(merged); n > 0 && merged[n-1].Port == e.Port && merged[n-1].Hour == e.Hour {
			merged[n-1].Packets += e.Packets
			continue
		}
		merged = append(merged, e)
	}
	out.TCPPortHour = merged
}

// mergeBGSources folds the background-sources HLL registers across shards
// and estimates the union of non-IoT sources.
func mergeBGSources(ordered []*ShardPartial) (uint64, error) {
	prec := ordered[0].SketchPrecision
	want := 1 << uint(prec)
	merged := make([]uint8, 0, want)
	for _, p := range ordered {
		if len(p.BGRegisters) != want {
			return 0, badf("shard %d background HLL has %d registers, want %d", p.Shard, len(p.BGRegisters), want)
		}
		if len(merged) == 0 {
			merged = append(merged, p.BGRegisters...)
			continue
		}
		for i, r := range p.BGRegisters {
			if r > merged[i] {
				merged[i] = r
			}
		}
	}
	h, err := sketch.RestoreHLL(prec, merged)
	if err != nil {
		return 0, badf("restore background HLL: %v", err)
	}
	return h.Estimate(), nil
}
