package correlate

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"iotscope/internal/classify"
	"iotscope/internal/devicedb"
	"iotscope/internal/flowtuple"
	"iotscope/internal/netx"
	"iotscope/internal/sketch"
)

// Options tunes the correlator.
type Options struct {
	// Workers bounds concurrent hour files (default: GOMAXPROCS).
	Workers int
	// UseSketches switches the per-hour unique-destination counters from
	// exact sets to HyperLogLogs — the telescope-scale mode.
	UseSketches bool
	// SketchPrecision is the HLL precision (default 14).
	SketchPrecision int
	// FaultPolicy selects strict (fail fast, the default) or lenient
	// (quarantine unreadable hours and continue) ingestion.
	FaultPolicy FaultPolicy
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SketchPrecision == 0 {
		o.SketchPrecision = 14
	}
	return o
}

// Correlator joins darknet traffic against an inventory.
type Correlator struct {
	inv  *devicedb.Inventory
	opts Options
}

// New returns a correlator over the inventory.
func New(inv *devicedb.Inventory, opts Options) *Correlator {
	return &Correlator{inv: inv, opts: opts.withDefaults()}
}

// ProcessDataset correlates every hourly file in dir.
func (c *Correlator) ProcessDataset(dir string) (*Result, error) {
	hours, err := flowtuple.DatasetHours(dir)
	if err != nil {
		return nil, err
	}
	if len(hours) == 0 {
		return nil, fmt.Errorf("correlate: no hourly files in %s", dir)
	}
	maxHour := hours[len(hours)-1]
	res := newResult(maxHour + 1)

	var (
		mu      sync.Mutex
		errHour = -1
		hourErr error
		wg      sync.WaitGroup
	)
	sem := make(chan struct{}, c.opts.Workers)
	bgSources, err := sketch.NewHLL(c.opts.SketchPrecision)
	if err != nil {
		return nil, err
	}
	for _, hour := range hours {
		wg.Add(1)
		sem <- struct{}{}
		go func(hour int) {
			defer wg.Done()
			defer func() { <-sem }()
			part, err := c.processHourFile(dir, hour)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				// Lenient: the hour's partial aggregate is dropped whole
				// (nothing was merged), the fault recorded, the rest of
				// the dataset still ingested. Strict: remember the
				// lowest-hour error for a deterministic failure.
				if c.opts.FaultPolicy == Lenient {
					res.Ingest.noteFailure(hour, err, IsRetryable(err))
					res.Ingest.HoursQuarantined++
					return
				}
				if errHour == -1 || hour < errHour {
					errHour, hourErr = hour, err
				}
				return
			}
			res.Ingest.HoursOK++
			mergePartial(res, part, bgSources)
		}(hour)
	}
	wg.Wait()
	if hourErr != nil {
		return nil, hourErr
	}
	res.Background.Sources = bgSources.Estimate()
	return res, nil
}

// ProcessHour correlates a single hour file into a fresh partial Result —
// useful for incremental pipelines and tests.
func (c *Correlator) ProcessHour(dir string, hour int) (*Result, error) {
	part, err := c.processHourFile(dir, hour)
	if err != nil {
		return nil, err
	}
	res := newResult(hour + 1)
	bg, err := sketch.NewHLL(c.opts.SketchPrecision)
	if err != nil {
		return nil, err
	}
	res.Ingest.HoursOK = 1
	mergePartial(res, part, bg)
	res.Background.Sources = bg.Estimate()
	return res, nil
}

func newResult(hours int) *Result {
	res := &Result{
		Hours:        hours,
		Devices:      make(map[int]*DeviceStats),
		Hourly:       make([]HourStats, hours),
		UDPPorts:     make(map[uint16]*PortAgg),
		TCPScanPorts: make(map[uint16]*TCPPortAgg),
		TCPPortHour:  make(map[PortHour]uint64),
	}
	for i := range res.Hourly {
		res.Hourly[i].Hour = i
	}
	return res
}

// hourPartial is the commutative partial aggregate for one hour file.
type hourPartial struct {
	hour       int
	stats      HourStats
	devices    map[int]*DeviceStats
	udpPorts   map[uint16]*PortAgg
	tcpPorts   map[uint16]*TCPPortAgg
	portHour   map[PortHour]uint64
	bgRecords  uint64
	bgPackets  uint64
	bgSrcHLL   *sketch.HLL
	perDevPort map[int]map[uint16]struct{} // per-device TCP scan ports this hour
	perDevDest map[int]map[netx.Addr]struct{}
}

// destCounter counts unique destinations exactly or approximately.
type destCounter interface {
	add(v uint32)
	estimate() uint64
}

type exactCounter struct{ m map[uint32]struct{} }

func newExactCounter() *exactCounter { return &exactCounter{m: make(map[uint32]struct{}, 1024)} }

func (e *exactCounter) add(v uint32)     { e.m[v] = struct{}{} }
func (e *exactCounter) estimate() uint64 { return uint64(len(e.m)) }

type hllCounter struct{ h *sketch.HLL }

func (h hllCounter) add(v uint32)     { h.h.AddAddr(v) }
func (h hllCounter) estimate() uint64 { return h.h.Estimate() }

func (c *Correlator) newDestCounter() destCounter {
	if c.opts.UseSketches {
		h, err := sketch.NewHLL(c.opts.SketchPrecision)
		if err == nil {
			return hllCounter{h}
		}
	}
	return newExactCounter()
}

// portBitset tracks unique 16-bit ports in 8 KiB.
type portBitset [65536 / 64]uint64

func (b *portBitset) add(p uint16) {
	b[p>>6] |= 1 << (p & 63)
}

func (b *portBitset) count() uint64 {
	var n uint64
	for _, w := range b {
		n += uint64(popcount(w))
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// processHourFile streams one hour file into a partial aggregate.
func (c *Correlator) processHourFile(dir string, hour int) (*hourPartial, error) {
	part := &hourPartial{
		hour:       hour,
		stats:      HourStats{Hour: hour},
		devices:    make(map[int]*DeviceStats),
		udpPorts:   make(map[uint16]*PortAgg),
		tcpPorts:   make(map[uint16]*TCPPortAgg),
		portHour:   make(map[PortHour]uint64),
		perDevPort: make(map[int]map[uint16]struct{}),
		perDevDest: make(map[int]map[netx.Addr]struct{}),
	}
	var err error
	part.bgSrcHLL, err = sketch.NewHLL(c.opts.SketchPrecision)
	if err != nil {
		return nil, err
	}

	// Per-category scratch counters.
	var (
		active       [2]map[int]struct{}
		udpDevs      [2]map[int]struct{}
		scanDevs     [2]map[int]struct{}
		udpDstIPs    [2]destCounter
		udpDstPorts  [2]*portBitset
		scanDstIPs   [2]destCounter
		scanDstPorts [2]*portBitset
	)
	for i := 0; i < 2; i++ {
		active[i] = make(map[int]struct{}, 1024)
		udpDevs[i] = make(map[int]struct{}, 1024)
		scanDevs[i] = make(map[int]struct{}, 1024)
		udpDstIPs[i] = c.newDestCounter()
		udpDstPorts[i] = &portBitset{}
		scanDstIPs[i] = c.newDestCounter()
		scanDstPorts[i] = &portBitset{}
	}

	rd, err := flowtuple.Open(flowtuple.HourPath(dir, hour))
	if err != nil {
		return nil, err
	}
	defer rd.Close()

	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		devIdx, isIoT := c.inv.LookupIP(netx.Addr(rec.SrcIP))
		if !isIoT {
			part.bgRecords++
			part.bgPackets += uint64(rec.Packets)
			part.bgSrcHLL.AddAddr(rec.SrcIP)
			continue
		}
		dev := c.inv.At(devIdx)
		cls := classify.Record(rec)
		ci := int(dev.Category) - 1
		pkts := uint64(rec.Packets)

		part.stats.RecordsIoT++
		cat := &part.stats.PerCat[ci]
		cat.Packets[cls.Index()] += pkts
		active[ci][devIdx] = struct{}{}

		ds := part.devices[devIdx]
		if ds == nil {
			ds = &DeviceStats{ID: devIdx, FirstSeen: hour}
			if day := hour / 24; day < 64 {
				ds.DayMask = 1 << day
			}
			part.devices[devIdx] = ds
		}
		ds.Records++
		ds.Packets[cls.Index()] += pkts

		switch cls {
		case classify.UDP:
			udpDevs[ci][devIdx] = struct{}{}
			udpDstIPs[ci].add(rec.DstIP)
			udpDstPorts[ci].add(rec.DstPort)
			pa := part.udpPorts[rec.DstPort]
			if pa == nil {
				pa = &PortAgg{Devices: make(map[int]struct{}, 4)}
				part.udpPorts[rec.DstPort] = pa
			}
			pa.Packets += pkts
			pa.Devices[devIdx] = struct{}{}
		case classify.Backscatter:
			if ds.BackscatterHourly == nil {
				ds.BackscatterHourly = make(map[int]uint64, 4)
			}
			ds.BackscatterHourly[hour] += pkts
		case classify.ScanTCP:
			scanDevs[ci][devIdx] = struct{}{}
			scanDstIPs[ci].add(rec.DstIP)
			scanDstPorts[ci].add(rec.DstPort)
			ta := part.tcpPorts[rec.DstPort]
			if ta == nil {
				ta = &TCPPortAgg{
					DevicesConsumer: make(map[int]struct{}, 4),
					DevicesCPS:      make(map[int]struct{}, 4),
				}
				part.tcpPorts[rec.DstPort] = ta
			}
			ta.Packets += pkts
			if dev.Category == devicedb.Consumer {
				ta.PacketsConsumer += pkts
				ta.DevicesConsumer[devIdx] = struct{}{}
			} else {
				ta.DevicesCPS[devIdx] = struct{}{}
			}
			part.portHour[PortHour{Port: rec.DstPort, Hour: uint16(hour)}] += pkts

			dp := part.perDevPort[devIdx]
			if dp == nil {
				dp = make(map[uint16]struct{}, 8)
				part.perDevPort[devIdx] = dp
			}
			dp[rec.DstPort] = struct{}{}
			dd := part.perDevDest[devIdx]
			if dd == nil {
				dd = make(map[netx.Addr]struct{}, 8)
				part.perDevDest[devIdx] = dd
			}
			dd[netx.Addr(rec.DstIP)] = struct{}{}
		}
	}

	for i := 0; i < 2; i++ {
		cat := &part.stats.PerCat[i]
		cat.ActiveDevices = len(active[i])
		cat.UDPDevices = len(udpDevs[i])
		cat.ScanDevices = len(scanDevs[i])
		cat.UDPDstIPs = udpDstIPs[i].estimate()
		cat.UDPDstPorts = udpDstPorts[i].count()
		cat.ScanDstIPs = scanDstIPs[i].estimate()
		cat.ScanDstPorts = scanDstPorts[i].count()
	}
	// Fold per-device port sweeps into running maxima.
	for devIdx, ports := range part.perDevPort {
		ds := part.devices[devIdx]
		if n := len(ports); n > ds.MaxScanPorts {
			ds.MaxScanPorts = n
			ds.MaxScanPortsHour = hour
			ds.MaxScanDests = len(part.perDevDest[devIdx])
		}
	}
	return part, nil
}

// mergePartial folds an hour partial into the global result. All operations
// commute, so merge order (and thus worker scheduling) cannot change the
// outcome.
func mergePartial(res *Result, part *hourPartial, bgSources *sketch.HLL) {
	res.Hourly[part.hour] = part.stats
	res.Background.Records += part.bgRecords
	res.Background.Packets += part.bgPackets
	bgSources.Merge(part.bgSrcHLL) //nolint:errcheck // same precision by construction

	for id, d := range part.devices {
		g := res.Devices[id]
		if g == nil {
			res.Devices[id] = d
			continue
		}
		if d.FirstSeen < g.FirstSeen {
			g.FirstSeen = d.FirstSeen
		}
		g.Records += d.Records
		g.DayMask |= d.DayMask
		for i := range g.Packets {
			g.Packets[i] += d.Packets[i]
		}
		if d.BackscatterHourly != nil {
			if g.BackscatterHourly == nil {
				g.BackscatterHourly = d.BackscatterHourly
			} else {
				for h, v := range d.BackscatterHourly {
					g.BackscatterHourly[h] += v
				}
			}
		}
		if d.MaxScanPorts > g.MaxScanPorts {
			g.MaxScanPorts = d.MaxScanPorts
			g.MaxScanPortsHour = d.MaxScanPortsHour
			g.MaxScanDests = d.MaxScanDests
		}
	}
	for port, pa := range part.udpPorts {
		g := res.UDPPorts[port]
		if g == nil {
			res.UDPPorts[port] = pa
			continue
		}
		g.Packets += pa.Packets
		for id := range pa.Devices {
			g.Devices[id] = struct{}{}
		}
	}
	for port, ta := range part.tcpPorts {
		g := res.TCPScanPorts[port]
		if g == nil {
			res.TCPScanPorts[port] = ta
			continue
		}
		g.Packets += ta.Packets
		g.PacketsConsumer += ta.PacketsConsumer
		for id := range ta.DevicesConsumer {
			g.DevicesConsumer[id] = struct{}{}
		}
		for id := range ta.DevicesCPS {
			g.DevicesCPS[id] = struct{}{}
		}
	}
	for ph, v := range part.portHour {
		res.TCPPortHour[ph] += v
	}
}
