package correlate

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"iotscope/internal/devicedb"
	"iotscope/internal/flowtuple"
	"iotscope/internal/sketch"
)

// Options tunes the correlator.
type Options struct {
	// Workers bounds concurrent hour files (default: GOMAXPROCS).
	Workers int
	// UseSketches switches the per-hour unique-destination counters from
	// exact sets to HyperLogLogs — the telescope-scale mode.
	UseSketches bool
	// SketchPrecision is the HLL precision (default 14).
	SketchPrecision int
	// FaultPolicy selects strict (fail fast, the default) or lenient
	// (quarantine unreadable hours and continue) ingestion.
	FaultPolicy FaultPolicy
	// Shards partitions the source-IP space by top-bits prefix into this
	// many independent shards (power of two), each with its own dense
	// accumulators, sketches, scratch pool, and merger — see shard.go.
	// 0 or 1 keeps the single-merger path.
	Shards int
	// ShardMemoryBudget bounds one shard's estimated resident bytes
	// (scratches in flight, merge tables, retained merge-plane surfaces).
	// There is no spill: a run that would exceed the budget fails fast
	// with a ShardMemoryError. 0 means unlimited.
	ShardMemoryBudget uint64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SketchPrecision == 0 {
		o.SketchPrecision = 14
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

// Correlator joins darknet traffic against an inventory.
type Correlator struct {
	inv  *devicedb.Inventory
	opts Options

	// Hot-path copies of the inventory: a flat IP→index hash table for the
	// per-record join and a dense category array, so the inner loop never
	// copies a Device value or queries a generic map.
	ips    ipIndex
	devCat []uint8

	// scratch recycles hourScratch instances across hours; see dense.go.
	scratch sync.Pool
	// scratchAllocs counts fresh hourScratch constructions — the
	// observable face of pool health (a leak shows up as growth here).
	scratchAllocs atomic.Int64
}

// New returns a correlator over the inventory.
func New(inv *devicedb.Inventory, opts Options) *Correlator {
	c := &Correlator{inv: inv, opts: opts.withDefaults()}
	devs := inv.All()
	c.devCat = make([]uint8, len(devs))
	for i := range devs {
		c.devCat[i] = uint8(devs[i].Category)
	}
	c.ips = buildIPIndex(devs)
	return c
}

// hourOutcome is what a worker hands the merger: a completed dense partial
// or the error that stopped the hour.
type hourOutcome struct {
	hour int
	s    *hourScratch
	err  error
}

// isCtxErr reports whether err is the context's own cancellation or
// deadline error — never a dataset fault, so it must not reach the
// quarantine/retry bookkeeping.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ProcessDataset correlates every hourly file in dir. Hour files are
// decoded by a bounded worker pool; completed partials flow through a
// channel to a single merger goroutine, so workers never contend on the
// global result and no merge lock exists.
//
// Cancelling ctx stops the run promptly: workers check ctx between record
// batches, no further hours are dispatched, in-flight partials are drained
// and recycled (the scratch pool stays clean), and ProcessDataset returns
// ctx.Err() — cancellation is never recorded as an ingest fault or
// quarantine, even under the Lenient policy.
//
// With Options.Shards > 1 the run is partitioned by source-IP prefix and
// recombined through the merge plane (see shard.go); the result is
// byte-identical either way.
func (c *Correlator) ProcessDataset(ctx context.Context, dir string) (*Result, error) {
	if c.opts.Shards > 1 {
		res, _, err := c.ProcessDatasetSharded(ctx, dir)
		return res, err
	}
	return c.processDatasetSingle(ctx, dir)
}

// processDatasetSingle is the unsharded engine: one merger goroutine over
// one set of dense tables.
func (c *Correlator) processDatasetSingle(ctx context.Context, dir string) (*Result, error) {
	hours, err := flowtuple.DatasetHours(dir)
	if err != nil {
		return nil, err
	}
	if len(hours) == 0 {
		return nil, fmt.Errorf("correlate: no hourly files in %s", dir)
	}
	maxHour := hours[len(hours)-1]
	res := newResult(maxHour + 1)
	bgSources, err := sketch.NewHLL(c.opts.SketchPrecision)
	if err != nil {
		return nil, err
	}

	var (
		wg      sync.WaitGroup
		sem     = make(chan struct{}, c.opts.Workers)
		parts   = make(chan hourOutcome, c.opts.Workers)
		done    = make(chan struct{})
		errHour = -1
		hourErr error
		st      = newMergeState()
	)
	// The merger: sole owner of res until done closes.
	go func() {
		defer close(done)
		for o := range parts {
			if o.err != nil {
				// A worker stopped by cancellation produced no partial and
				// no dataset fault; ctx.Err() is surfaced after the drain.
				if isCtxErr(o.err) {
					continue
				}
				// Lenient: the hour's partial aggregate was dropped whole
				// (nothing reaches the merge), the fault recorded, the rest
				// of the dataset still ingested. Strict: remember the
				// lowest-hour error for a deterministic failure.
				if c.opts.FaultPolicy == Lenient {
					res.Ingest.noteFailure(o.hour, o.err, IsRetryable(o.err))
					res.Ingest.HoursQuarantined++
					continue
				}
				if errHour == -1 || o.hour < errHour {
					errHour, hourErr = o.hour, o.err
				}
				continue
			}
			res.Ingest.HoursOK++
			mergeDense(res, o.s, bgSources, st)
			c.putScratch(o.s)
		}
	}()
	for _, hour := range hours {
		if ctx.Err() != nil {
			break // stop dispatching; drained below
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(hour int) {
			defer wg.Done()
			defer func() { <-sem }()
			s, err := c.processHourDense(ctx, dir, hour)
			parts <- hourOutcome{hour: hour, s: s, err: err}
		}(hour)
	}
	wg.Wait()
	close(parts)
	<-done
	if hourErr != nil {
		return nil, hourErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st.finalizeResult(res)
	res.Background.Sources = bgSources.Estimate()
	return res, nil
}

// ProcessHour correlates a single hour file into a fresh partial Result —
// useful for incremental pipelines and tests.
func (c *Correlator) ProcessHour(ctx context.Context, dir string, hour int) (*Result, error) {
	s, err := c.processHourDense(ctx, dir, hour)
	if err != nil {
		return nil, err
	}
	res := newResult(hour + 1)
	bg, err := sketch.NewHLL(c.opts.SketchPrecision)
	if err != nil {
		c.putScratch(s)
		return nil, err
	}
	res.Ingest.HoursOK = 1
	st := newMergeState()
	mergeDense(res, s, bg, st)
	c.putScratch(s)
	st.finalizeResult(res)
	res.Background.Sources = bg.Estimate()
	return res, nil
}

func newResult(hours int) *Result {
	res := &Result{
		Hours:        hours,
		Devices:      make(map[int]*DeviceStats),
		Hourly:       make([]HourStats, hours),
		UDPPorts:     make(map[uint16]*PortAgg),
		TCPScanPorts: make(map[uint16]*TCPPortAgg),
		TCPPortHour:  make(map[PortHour]uint64),
	}
	for i := range res.Hourly {
		res.Hourly[i].Hour = i
	}
	return res
}

// destCounter counts unique destinations exactly or approximately. The two
// append methods expose the counter's mergeable raw state to the shard
// merge plane: an exact counter exports its distinct values, an HLL its
// registers; each returns dst unchanged for the mode it doesn't implement.
type destCounter interface {
	add(v uint32)
	estimate() uint64
	reset()
	appendIPs(dst []uint32) []uint32
	appendRegisters(dst []uint8) []uint8
}

// exactCounter is the exact mode, backed by the same open-addressed set the
// rest of the dense path uses.
type exactCounter struct{ s u64set }

func newExactCounter() *exactCounter {
	e := &exactCounter{}
	e.s.init(1024)
	return e
}

func (e *exactCounter) add(v uint32)     { e.s.add(uint64(v)) }
func (e *exactCounter) estimate() uint64 { return uint64(e.s.used) }
func (e *exactCounter) reset()           { e.s.reset() }

func (e *exactCounter) appendIPs(dst []uint32) []uint32 {
	for _, k := range e.s.slots {
		if k != 0 {
			dst = append(dst, uint32(k-1))
		}
	}
	return dst
}

func (e *exactCounter) appendRegisters(dst []uint8) []uint8 { return dst }

type hllCounter struct{ h *sketch.HLL }

func (h hllCounter) add(v uint32)     { h.h.AddAddr(v) }
func (h hllCounter) estimate() uint64 { return h.h.Estimate() }
func (h hllCounter) reset()           { h.h.Reset() }

func (h hllCounter) appendIPs(dst []uint32) []uint32 { return dst }

func (h hllCounter) appendRegisters(dst []uint8) []uint8 {
	return h.h.AppendRegisters(dst)
}

func (c *Correlator) newDestCounter() destCounter {
	if c.opts.UseSketches {
		h, err := sketch.NewHLL(c.opts.SketchPrecision)
		if err == nil {
			return hllCounter{h}
		}
	}
	return newExactCounter()
}

// portBitset tracks unique 16-bit ports in 8 KiB.
type portBitset [65536 / 64]uint64

func (b *portBitset) add(p uint16) {
	b[p>>6] |= 1 << (p & 63)
}

func (b *portBitset) has(p uint16) bool {
	return b[p>>6]&(1<<(p&63)) != 0
}

func (b *portBitset) clear() {
	*b = portBitset{}
}

func (b *portBitset) count() uint64 {
	var n uint64
	for _, w := range b {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// appendPorts appends every set port to dst, ascending.
func (b *portBitset) appendPorts(dst []uint16) []uint16 {
	for wi, w := range b {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			dst = append(dst, uint16(wi<<6|bit))
			w &^= 1 << bit
		}
	}
	return dst
}
