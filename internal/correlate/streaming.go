package correlate

import (
	"fmt"
	"sort"

	"iotscope/internal/classify"
	"iotscope/internal/flowtuple"
)

// This file is the streaming face of the incremental correlator: the same
// per-hour dense accumulation Ingest performs, split into an explicit
// open → feed → seal lifecycle so a live collector can push record batches
// as they arrive instead of waiting for a complete hour file. A sealed
// window goes through exactly the sequence Ingest runs after a successful
// read — finalize, fresh-device detection, dense merge, bookkeeping — so
// feeding a complete hour through a Window is byte-identical (through
// Export) to ingesting the finished file.
//
// Windows are not safe for concurrent use; the stream collector drives
// them from a single ingest goroutine, mirroring the single-merger design
// of the batch path.

// Window is one in-flight event-time hour being accumulated record batch
// by record batch. It holds a pooled scratch; every Window must end in
// exactly one Seal or Abort, or the scratch leaks from the pool.
type Window struct {
	inc     *Incremental
	s       *hourScratch
	hour    int
	records uint64
	done    bool
}

// WindowStats summarizes one sealed window, cheap enough to compute per
// seal (no Result finalization): the alerting layer reads backscatter and
// fresh devices straight from here.
type WindowStats struct {
	Hour        int
	Records     uint64 // records fed, including non-IoT background
	RecordsIoT  uint64
	IoTPackets  uint64 // all traffic classes, both device categories
	Backscatter uint64 // backscatter-class packets (the DoS signal)
	Fresh       []int  // device IDs seen for the first time, ascending
}

// OpenWindow starts accumulating the given event-time hour. The same
// guards as Ingest apply: the hour must be in range, not yet ingested and
// not quarantined.
func (inc *Incremental) OpenWindow(hour int) (*Window, error) {
	if hour < 0 || hour >= len(inc.res.Hourly) {
		return nil, fmt.Errorf("correlate: hour %d outside [0, %d)", hour, len(inc.res.Hourly))
	}
	if inc.hours[hour] {
		return nil, fmt.Errorf("correlate: hour %d already ingested", hour)
	}
	if inc.quarantined[hour] {
		return nil, fmt.Errorf("correlate: hour %d quarantined", hour)
	}
	s, err := inc.c.getScratch()
	if err != nil {
		return nil, err
	}
	s.hour = hour
	s.stats.Hour = hour
	return &Window{inc: inc, s: s, hour: hour}, nil
}

// Hour returns the window's event-time hour.
func (w *Window) Hour() int { return w.hour }

// Records returns how many records have been fed so far.
func (w *Window) Records() uint64 { return w.records }

// Feed folds a batch of records into the window. The batch is read, never
// retained, so callers may reuse the backing slice.
func (w *Window) Feed(batch []flowtuple.Record) error {
	if w.done {
		return fmt.Errorf("correlate: window for hour %d already sealed", w.hour)
	}
	for i := range batch {
		w.inc.c.accumulate(w.s, w.hour, &batch[i])
	}
	w.records += uint64(len(batch))
	return nil
}

// Seal completes the window: the hour's accumulators are finalized and
// merged into the running result exactly as Ingest would have, and the
// hour becomes ingested. The returned stats carry the fresh-device list
// and the hour's traffic surface for the alerting layer.
func (w *Window) Seal() (WindowStats, error) {
	if w.done {
		return WindowStats{}, fmt.Errorf("correlate: window for hour %d already sealed", w.hour)
	}
	w.done = true
	inc, s := w.inc, w.s
	s.finalize(w.hour)

	var fresh []int
	for _, idx := range s.touched {
		if !inc.st.knownDevice(idx) {
			fresh = append(fresh, int(idx))
		}
	}
	sort.Ints(fresh)

	st := WindowStats{
		Hour:       w.hour,
		Records:    w.records,
		RecordsIoT: s.stats.RecordsIoT,
		Fresh:      fresh,
	}
	bsIdx := classify.Backscatter.Index()
	for ci := range s.stats.PerCat {
		for _, v := range s.stats.PerCat[ci].Packets {
			st.IoTPackets += v
		}
		st.Backscatter += s.stats.PerCat[ci].Packets[bsIdx]
	}

	mergeDense(inc.res, s, inc.bg, inc.st)
	inc.c.putScratch(s)
	w.s = nil
	inc.hours[w.hour] = true
	inc.res.Ingest.noteSuccess(w.hour)
	return st, nil
}

// Abort discards the window whole — nothing fed so far reaches the
// running result, exactly like a failed Ingest — and recycles the
// scratch. The hour stays eligible for a later window or Ingest.
// Idempotent after Seal or a prior Abort.
func (w *Window) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.inc.c.putScratch(w.s)
	w.s = nil
}

// FailHour records an hour-level ingest fault with Ingest's exact lenient
// semantics: the fault lands in the running IngestStats, and permanent
// corruption quarantines the hour while retryable damage leaves it open.
// Under the Strict policy (or for context errors) it records nothing,
// matching Ingest. The streaming collector calls this when a tailed file
// turns out corrupt mid-stream, after aborting the hour's window.
func (inc *Incremental) FailHour(hour int, err error) {
	if inc.c.opts.FaultPolicy != Lenient || isCtxErr(err) {
		return
	}
	if inc.hours[hour] || inc.quarantined[hour] {
		return
	}
	retryable := IsRetryable(err)
	inc.res.Ingest.noteFailure(hour, err, retryable)
	if !retryable {
		inc.quarantined[hour] = true
		inc.res.Ingest.HoursQuarantined++
	}
}

// Ingested reports whether the hour has been folded into the result.
func (inc *Incremental) Ingested(hour int) bool { return inc.hours[hour] }

// QuarantinedHours returns the abandoned hours, ascending.
func (inc *Incremental) QuarantinedHours() []int {
	out := make([]int, 0, len(inc.quarantined))
	for h := range inc.quarantined {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// MaxHours returns the hour-slot capacity the incremental was sized for.
func (inc *Incremental) MaxHours() int { return len(inc.res.Hourly) }
