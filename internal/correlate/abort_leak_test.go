package correlate

import (
	"io"
	"runtime"
	"runtime/debug"
	"testing"

	"iotscope/internal/flowtuple"
	"iotscope/internal/wgen"
)

// Abort's contract is that the window's pooled scratch goes back to the
// pool, not to the floor: a collector that opens and abandons windows all
// day (late data, upstream resets) must not grow the correlator's memory or
// leak goroutines. scratchAllocs counts fresh scratch constructions, so
// with the GC disabled (a sync.Pool may legitimately shed entries on GC)
// any Abort leak shows up as the counter climbing across cycles.
func TestWindowAbortRecyclesScratch(t *testing.T) {
	sc := wgen.Default(0.002, 707)
	sc.Hours = 2
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}

	c := New(g.Inventory(), Options{Workers: 1})
	inc, err := c.NewIncremental(2)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := flowtuple.Open(flowtuple.HourPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]flowtuple.Record, 512)
	n, err := rd.NextBatch(batch)
	rd.Close()
	if n == 0 || (err != nil && err != io.EOF) {
		t.Fatalf("no records to feed: n=%d err=%v", n, err)
	}
	batch = batch[:n]

	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// Warm the pool: the first cycle legitimately constructs one scratch.
	w, err := inc.OpenWindow(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Feed(batch); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	w.Abort() // idempotent: the second call must not double-put

	goroutines := runtime.NumGoroutine()
	allocs := c.scratchAllocs.Load()
	for i := 0; i < 1000; i++ {
		w, err := inc.OpenWindow(0)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := w.Feed(batch); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		w.Abort()
	}
	// Under the race detector sync.Pool.Put drops a random fraction of
	// entries by design, so the zero-growth assertion only holds without
	// it; the goroutine and reuse checks below still apply either way.
	if grew := c.scratchAllocs.Load() - allocs; grew != 0 && !raceEnabled {
		t.Fatalf("1000 open/abort cycles constructed %d fresh scratches; Abort is leaking the pool", grew)
	}
	if now := runtime.NumGoroutine(); now > goroutines {
		t.Fatalf("goroutines grew across open/abort cycles: %d -> %d", goroutines, now)
	}

	// The aborted hour stayed open: it can still be sealed for real.
	w, err = inc.OpenWindow(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Feed(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Seal(); err != nil {
		t.Fatal(err)
	}
}
