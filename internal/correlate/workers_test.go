package correlate

import (
	"context"
	"os"
	"reflect"
	"testing"

	"iotscope/internal/flowtuple"
	"iotscope/internal/wgen"
)

// Worker-count invariance: merges are commutative, so 1 worker and many
// workers must produce identical results down to every counter.
func TestWorkerCountInvariance(t *testing.T) {
	sc := wgen.Default(0.002, 321)
	sc.Hours = 10
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}

	serial, err := New(g.Inventory(), Options{Workers: 1}).ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(g.Inventory(), Options{Workers: 8}).ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.Devices) != len(parallel.Devices) {
		t.Fatalf("device counts differ: %d vs %d", len(serial.Devices), len(parallel.Devices))
	}
	for id, a := range serial.Devices {
		b := parallel.Devices[id]
		if b == nil {
			t.Fatalf("device %d missing in parallel run", id)
		}
		if a.FirstSeen != b.FirstSeen || a.Records != b.Records ||
			a.Packets != b.Packets || a.DayMask != b.DayMask ||
			a.MaxScanPorts != b.MaxScanPorts {
			t.Fatalf("device %d diverged:\n serial  %+v\n parallel %+v", id, a, b)
		}
		if !reflect.DeepEqual(a.BackscatterHourly, b.BackscatterHourly) {
			t.Fatalf("device %d backscatter hourly diverged", id)
		}
	}
	if !reflect.DeepEqual(serial.Hourly, parallel.Hourly) {
		t.Fatal("hourly aggregates diverged")
	}
	if !reflect.DeepEqual(serial.TCPPortHour, parallel.TCPPortHour) {
		t.Fatal("port-hour series diverged")
	}
	for port, a := range serial.UDPPorts {
		b := parallel.UDPPorts[port]
		if b == nil || a.Packets != b.Packets || len(a.Devices) != len(b.Devices) {
			t.Fatalf("UDP port %d diverged", port)
		}
	}
	for port, a := range serial.TCPScanPorts {
		b := parallel.TCPScanPorts[port]
		if b == nil || a.Packets != b.Packets || a.PacketsConsumer != b.PacketsConsumer ||
			len(a.DevicesConsumer) != len(b.DevicesConsumer) ||
			len(a.DevicesCPS) != len(b.DevicesCPS) {
			t.Fatalf("TCP port %d diverged", port)
		}
	}
	if serial.Background.Records != parallel.Background.Records ||
		serial.Background.Packets != parallel.Background.Packets {
		t.Fatal("background diverged")
	}
}

// A dataset with a gap (missing hour file in the middle) still processes:
// present hours are analyzed, the gap hour stays zero (the paper itself
// dropped the incomplete April 18 data).
func TestMissingHourTolerated(t *testing.T) {
	sc := wgen.Default(0.002, 322)
	sc.Hours = 6
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	// Remove hour 3.
	if err := removeHour(dir, 3); err != nil {
		t.Fatal(err)
	}
	res, err := New(g.Inventory(), Options{}).ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hours != 6 {
		t.Fatalf("hours %d", res.Hours)
	}
	h3 := res.Hourly[3]
	if h3.RecordsIoT != 0 {
		t.Fatal("gap hour has records")
	}
	if res.Hourly[2].RecordsIoT == 0 || res.Hourly[4].RecordsIoT == 0 {
		t.Fatal("adjacent hours empty")
	}
}

func removeHour(dir string, hour int) error {
	return os.Remove(flowtuple.HourPath(dir, hour))
}

// Sketch mode must track exact unique-destination counts within HLL error
// at realistic per-hour cardinalities.
func TestSketchAccuracyAtScale(t *testing.T) {
	sc := wgen.Default(0.01, 323)
	sc.Hours = 6
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	exact, err := New(g.Inventory(), Options{}).ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := New(g.Inventory(), Options{UseSketches: true}).ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	for h := range exact.Hourly {
		for ci := 0; ci < 2; ci++ {
			e := exact.Hourly[h].PerCat[ci]
			a := approx.Hourly[h].PerCat[ci]
			checkClose := func(name string, ev, av uint64) {
				if ev < 100 {
					return // linear-counting regime handled elsewhere
				}
				diff := float64(av) - float64(ev)
				if diff < 0 {
					diff = -diff
				}
				if diff/float64(ev) > 0.05 {
					t.Errorf("hour %d cat %d %s: exact %d approx %d (>5%% error)",
						h, ci, name, ev, av)
				}
			}
			checkClose("scanDstIPs", e.ScanDstIPs, a.ScanDstIPs)
			checkClose("udpDstIPs", e.UDPDstIPs, a.UDPDstIPs)
			// Packet counters must be untouched by sketch mode.
			if e.Packets != a.Packets {
				t.Fatalf("hour %d cat %d packets diverged in sketch mode", h, ci)
			}
		}
	}
}
