package correlate

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"

	"iotscope/internal/classify"
	"iotscope/internal/flowtuple"
	"iotscope/internal/sketch"
)

// This file defines the explicit serialization surface of the correlation
// output: flat, deterministically ordered slices instead of the maps and
// shared-backing lists a live Result carries. ResultExport (and its
// incremental sibling CheckpointExport) is what internal/resultstore
// encodes; Export/Result convert between the two without perturbing the
// dense hot path — maps are only rebuilt at import time, exactly as
// finalizeResult builds them after a merge.

// ErrBadFormat flags a structurally invalid export, checkpoint, or shard
// partial: unsorted or duplicate keys, out-of-range hours, inconsistent
// counts. It is the correlate-level member of the repo-wide bad-format
// taxonomy (flowtuple and resultstore each carry their own sentinel for
// their layer), so callers classify validation failures with
// errors.Is(err, correlate.ErrBadFormat) instead of matching messages.
var ErrBadFormat = errors.New("correlate: bad export format")

// badf builds an ErrBadFormat-wrapped validation error, mirroring the
// resultstore idiom.
func badf(format string, args ...any) error {
	return fmt.Errorf("correlate: "+format+": %w", append(args, ErrBadFormat)...)
}

// HourCount is one sparse (hour, count) cell, the export form of the
// per-device BackscatterHourly map.
type HourCount struct {
	Hour  int32
	Count uint64
}

// DeviceExport is the flat form of one DeviceStats entry.
type DeviceExport struct {
	ID               int32
	FirstSeen        int32
	Records          uint64
	Packets          [classify.NumClasses]uint64
	DayMask          uint64
	MaxScanPorts     int32
	MaxScanPortsHour int32
	MaxScanDests     int32
	// Backscatter is ascending by hour; empty means nil map.
	Backscatter []HourCount
}

// PortExport is the flat form of one UDP port aggregate.
type PortExport struct {
	Port    uint16
	Packets uint64
	Devices []int32 // ascending, empty means nil list
}

// TCPPortExport is the flat form of one TCP scan port aggregate.
type TCPPortExport struct {
	Port            uint16
	Packets         uint64
	PacketsConsumer uint64
	DevicesConsumer []int32 // ascending, empty means nil list
	DevicesCPS      []int32 // ascending, empty means nil list
}

// PortHourExport is one (port, hour) → packets cell of the TCP scanning
// time series.
type PortHourExport struct {
	Port    uint16
	Hour    uint16
	Packets uint64
}

// FaultExport carries one HourFault with its error flattened to a message
// plus the sentinel classification needed to keep IsRetryable and
// errors.Is working after a round trip (the original wrapped error cannot
// itself be serialized).
type FaultExport struct {
	Hour      int32
	Attempts  int32
	Retryable bool
	Truncated bool
	BadFormat bool
	NotExist  bool
	Message   string
}

// ResultExport is the serializable form of a Result: every map flattened
// to a slice in a canonical order (devices and ports ascending, port-hour
// cells port-major), so encoding the same Result twice yields identical
// bytes.
type ResultExport struct {
	Hours        int
	Devices      []DeviceExport
	Hourly       []HourStats
	UDPPorts     []PortExport
	TCPScanPorts []TCPPortExport
	TCPPortHour  []PortHourExport
	Background   BackgroundStats

	IngestOK          int
	IngestRetried     int
	IngestQuarantined int
	Faults            []FaultExport
}

// Export flattens the Result into its canonical serializable form. The
// Result must be finalized (as every Result handed to a caller is); the
// export shares no mutable state with it.
func (r *Result) Export() *ResultExport {
	e := &ResultExport{
		Hours:             r.Hours,
		Hourly:            append([]HourStats(nil), r.Hourly...),
		Background:        r.Background,
		IngestOK:          r.Ingest.HoursOK,
		IngestRetried:     r.Ingest.HoursRetried,
		IngestQuarantined: r.Ingest.HoursQuarantined,
	}

	e.Devices = make([]DeviceExport, 0, len(r.Devices))
	for _, d := range r.Devices {
		de := DeviceExport{
			ID:               int32(d.ID),
			FirstSeen:        int32(d.FirstSeen),
			Records:          d.Records,
			Packets:          d.Packets,
			DayMask:          d.DayMask,
			MaxScanPorts:     int32(d.MaxScanPorts),
			MaxScanPortsHour: int32(d.MaxScanPortsHour),
			MaxScanDests:     int32(d.MaxScanDests),
		}
		if len(d.BackscatterHourly) > 0 {
			de.Backscatter = make([]HourCount, 0, len(d.BackscatterHourly))
			for h, n := range d.BackscatterHourly {
				de.Backscatter = append(de.Backscatter, HourCount{Hour: int32(h), Count: n})
			}
			sort.Slice(de.Backscatter, func(i, j int) bool {
				return de.Backscatter[i].Hour < de.Backscatter[j].Hour
			})
		}
		e.Devices = append(e.Devices, de)
	}
	sort.Slice(e.Devices, func(i, j int) bool { return e.Devices[i].ID < e.Devices[j].ID })

	e.UDPPorts = make([]PortExport, 0, len(r.UDPPorts))
	for p, a := range r.UDPPorts {
		e.UDPPorts = append(e.UDPPorts, PortExport{Port: p, Packets: a.Packets, Devices: a.Devices})
	}
	sort.Slice(e.UDPPorts, func(i, j int) bool { return e.UDPPorts[i].Port < e.UDPPorts[j].Port })

	e.TCPScanPorts = make([]TCPPortExport, 0, len(r.TCPScanPorts))
	for p, a := range r.TCPScanPorts {
		e.TCPScanPorts = append(e.TCPScanPorts, TCPPortExport{
			Port:            p,
			Packets:         a.Packets,
			PacketsConsumer: a.PacketsConsumer,
			DevicesConsumer: a.DevicesConsumer,
			DevicesCPS:      a.DevicesCPS,
		})
	}
	sort.Slice(e.TCPScanPorts, func(i, j int) bool { return e.TCPScanPorts[i].Port < e.TCPScanPorts[j].Port })

	e.TCPPortHour = make([]PortHourExport, 0, len(r.TCPPortHour))
	for k, pkts := range r.TCPPortHour {
		e.TCPPortHour = append(e.TCPPortHour, PortHourExport{Port: k.Port, Hour: k.Hour, Packets: pkts})
	}
	sort.Slice(e.TCPPortHour, func(i, j int) bool {
		a, b := e.TCPPortHour[i], e.TCPPortHour[j]
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.Hour < b.Hour
	})

	if len(r.Ingest.Faults) > 0 {
		e.Faults = make([]FaultExport, 0, len(r.Ingest.Faults))
		for _, f := range r.Ingest.Faults {
			e.Faults = append(e.Faults, FaultExport{
				Hour:      int32(f.Hour),
				Attempts:  int32(f.Attempts),
				Retryable: f.Retryable,
				Truncated: errors.Is(f.Err, flowtuple.ErrTruncated),
				BadFormat: errors.Is(f.Err, flowtuple.ErrBadFormat),
				NotExist:  errors.Is(f.Err, fs.ErrNotExist),
				Message:   f.Err.Error(),
			})
		}
	}
	return e
}

// storedFault is the reconstructed form of an ingest fault's error: the
// original message plus sentinel classification flags, so errors.Is
// against flowtuple.ErrBadFormat / flowtuple.ErrTruncated / fs.ErrNotExist
// — and therefore IsRetryable — behave exactly as they did before the
// round trip.
type storedFault struct {
	msg       string
	truncated bool
	badFormat bool
	notExist  bool
}

func (f *storedFault) Error() string { return f.msg }

// Is implements the errors.Is interface check for the preserved sentinels.
func (f *storedFault) Is(target error) bool {
	switch target {
	case flowtuple.ErrTruncated:
		return f.truncated
	case flowtuple.ErrBadFormat:
		return f.badFormat
	case fs.ErrNotExist:
		return f.notExist
	}
	return false
}

// Result rebuilds a live Result from the export. The rebuilt value obeys
// every invariant of a correlator-produced Result: non-nil maps, Hourly
// indexed by hour, ascending nil-when-empty device lists (carved from one
// shared backing per section, like finalizeResult). Structural violations
// in the export — wrong hour indexing, unsorted or duplicate keys,
// out-of-range values — are rejected with an error rather than producing
// a subtly wrong Result.
func (e *ResultExport) Result() (*Result, error) {
	if e.Hours <= 0 {
		return nil, badf("export hours %d must be positive", e.Hours)
	}
	if len(e.Hourly) != e.Hours {
		return nil, badf("export has %d hourly rows, want %d", len(e.Hourly), e.Hours)
	}
	for i := range e.Hourly {
		if e.Hourly[i].Hour != i {
			return nil, badf("hourly row %d labeled hour %d", i, e.Hourly[i].Hour)
		}
	}
	res := newResult(e.Hours)
	copy(res.Hourly, e.Hourly)
	res.Background = e.Background
	res.Ingest.HoursOK = e.IngestOK
	res.Ingest.HoursRetried = e.IngestRetried
	res.Ingest.HoursQuarantined = e.IngestQuarantined

	// The entry counts are known up front, so size every map once (no
	// incremental rehash) and slab-allocate the per-entry structs — map
	// growth dominated the load profile before this.
	res.Devices = make(map[int]*DeviceStats, len(e.Devices))
	res.UDPPorts = make(map[uint16]*PortAgg, len(e.UDPPorts))
	res.TCPScanPorts = make(map[uint16]*TCPPortAgg, len(e.TCPScanPorts))
	res.TCPPortHour = make(map[PortHour]uint64, len(e.TCPPortHour))
	devSlab := make([]DeviceStats, len(e.Devices))

	prevID := int32(-1)
	for i := range e.Devices {
		de := &e.Devices[i]
		if de.ID <= prevID {
			return nil, badf("device list not ascending at ID %d", de.ID)
		}
		prevID = de.ID
		d := &devSlab[i]
		*d = DeviceStats{
			ID:               int(de.ID),
			FirstSeen:        int(de.FirstSeen),
			Records:          de.Records,
			Packets:          de.Packets,
			DayMask:          de.DayMask,
			MaxScanPorts:     int(de.MaxScanPorts),
			MaxScanPortsHour: int(de.MaxScanPortsHour),
			MaxScanDests:     int(de.MaxScanDests),
		}
		if len(de.Backscatter) > 0 {
			d.BackscatterHourly = make(map[int]uint64, len(de.Backscatter))
			prevH := int32(-1)
			for _, hc := range de.Backscatter {
				if hc.Hour <= prevH || int(hc.Hour) >= e.Hours {
					return nil, badf("device %d backscatter hour %d invalid", de.ID, hc.Hour)
				}
				prevH = hc.Hour
				d.BackscatterHourly[int(hc.Hour)] = hc.Count
			}
		}
		res.Devices[d.ID] = d
	}
	// Device-list membership is validated against a dense ID bitmap: the
	// per-element map probe was a measurable share of the load profile.
	valid := make([]bool, int(prevID)+1)
	for i := range e.Devices {
		valid[e.Devices[i].ID] = true
	}

	var udpLists int
	prevPort := -1
	for i := range e.UDPPorts {
		pe := &e.UDPPorts[i]
		if int(pe.Port) <= prevPort {
			return nil, badf("UDP port list not ascending at %d", pe.Port)
		}
		prevPort = int(pe.Port)
		udpLists += len(pe.Devices)
	}
	udpBacking := make([]int32, 0, udpLists)
	udpSlab := make([]PortAgg, len(e.UDPPorts))
	for i := range e.UDPPorts {
		pe := &e.UDPPorts[i]
		devs, err := carveList(&udpBacking, pe.Devices, valid, "UDP", pe.Port)
		if err != nil {
			return nil, err
		}
		udpSlab[i] = PortAgg{Packets: pe.Packets, Devices: devs}
		res.UDPPorts[pe.Port] = &udpSlab[i]
	}

	var tcpLists int
	prevPort = -1
	for i := range e.TCPScanPorts {
		pe := &e.TCPScanPorts[i]
		if int(pe.Port) <= prevPort {
			return nil, badf("TCP port list not ascending at %d", pe.Port)
		}
		prevPort = int(pe.Port)
		tcpLists += len(pe.DevicesConsumer) + len(pe.DevicesCPS)
	}
	tcpBacking := make([]int32, 0, tcpLists)
	tcpSlab := make([]TCPPortAgg, len(e.TCPScanPorts))
	for i := range e.TCPScanPorts {
		pe := &e.TCPScanPorts[i]
		con, err := carveList(&tcpBacking, pe.DevicesConsumer, valid, "TCP", pe.Port)
		if err != nil {
			return nil, err
		}
		cps, err := carveList(&tcpBacking, pe.DevicesCPS, valid, "TCP", pe.Port)
		if err != nil {
			return nil, err
		}
		tcpSlab[i] = TCPPortAgg{
			Packets:         pe.Packets,
			PacketsConsumer: pe.PacketsConsumer,
			DevicesConsumer: con,
			DevicesCPS:      cps,
		}
		res.TCPScanPorts[pe.Port] = &tcpSlab[i]
	}

	prevKey := -1
	for _, ph := range e.TCPPortHour {
		key := int(ph.Port)<<16 | int(ph.Hour)
		if key <= prevKey {
			return nil, badf("port-hour list not ascending at %d/%d", ph.Port, ph.Hour)
		}
		prevKey = key
		if int(ph.Hour) >= e.Hours {
			return nil, badf("port-hour cell %d/%d outside %d hours", ph.Port, ph.Hour, e.Hours)
		}
		res.TCPPortHour[PortHour{Port: ph.Port, Hour: ph.Hour}] = ph.Packets
	}

	prevHour := int32(-1)
	for _, fe := range e.Faults {
		if fe.Hour <= prevHour {
			return nil, badf("fault list not ascending at hour %d", fe.Hour)
		}
		prevHour = fe.Hour
		res.Ingest.Faults = append(res.Ingest.Faults, HourFault{
			Hour:      int(fe.Hour),
			Attempts:  int(fe.Attempts),
			Retryable: fe.Retryable,
			Err: &storedFault{
				msg:       fe.Message,
				truncated: fe.Truncated,
				badFormat: fe.BadFormat,
				notExist:  fe.NotExist,
			},
		})
	}
	return res, nil
}

// carveList copies one ascending device list into the shared backing array
// and returns the carved slice (nil when empty), validating order and that
// every listed device exists in the result.
func carveList(backing *[]int32, devs []int32, known []bool, proto string, port uint16) ([]int32, error) {
	if len(devs) == 0 {
		return nil, nil
	}
	prev := int32(-1)
	for _, id := range devs {
		if id <= prev {
			return nil, badf("%s port %d device list not ascending at %d", proto, port, id)
		}
		prev = id
		if id < 0 || int(id) >= len(known) || !known[id] {
			return nil, badf("%s port %d lists unknown device %d", proto, port, id)
		}
	}
	lo := len(*backing)
	*backing = append(*backing, devs...)
	return (*backing)[lo : lo+len(devs) : lo+len(devs)], nil
}

// CheckpointExport is the serializable form of an Incremental correlator's
// complete state: the finalized running Result plus the per-hour
// bookkeeping and the background-sources HLL registers. Restoring it and
// continuing to ingest is indistinguishable from never having stopped.
type CheckpointExport struct {
	MaxHours         int
	IngestedHours    []int32 // ascending
	QuarantinedHours []int32 // ascending
	BGPrecision      uint8
	BGRegisters      []uint8
	Result           *ResultExport
}

// Export captures the incremental correlator's complete state. The running
// result is finalized first, so the export is taken at a consistent point;
// further Ingest calls on the receiver remain valid.
func (inc *Incremental) Export() *CheckpointExport {
	res := inc.Result()
	cp := &CheckpointExport{
		MaxHours:         len(inc.res.Hourly),
		IngestedHours:    sortedHourList(inc.hours),
		QuarantinedHours: sortedHourList(inc.quarantined),
		BGPrecision:      uint8(inc.bg.Precision()),
		BGRegisters:      inc.bg.AppendRegisters(nil),
		Result:           res.Export(),
	}
	return cp
}

func sortedHourList(set map[int]bool) []int32 {
	if len(set) == 0 {
		return nil
	}
	out := make([]int32, 0, len(set))
	for h := range set {
		out = append(out, int32(h))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IngestedHours returns the hours folded in so far, ascending.
func (inc *Incremental) IngestedHours() []int {
	out := make([]int, 0, len(inc.hours))
	for h := range inc.hours {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// RestoreIncremental rebuilds an incremental correlator from a checkpoint
// previously captured with Export. The correlator must be configured
// compatibly with the one that wrote the checkpoint: same inventory (device
// indices are validated against it) and same sketch precision (the running
// HLL must merge with per-hour sketches). The restored instance's future
// behavior — fresh-device notifications, merged statistics, Result — is
// identical to the original's had it never stopped.
func (c *Correlator) RestoreIncremental(cp *CheckpointExport) (*Incremental, error) {
	if cp == nil || cp.Result == nil {
		return nil, badf("checkpoint missing result")
	}
	if cp.MaxHours <= 0 {
		return nil, badf("checkpoint maxHours %d must be positive", cp.MaxHours)
	}
	if cp.Result.Hours != cp.MaxHours {
		return nil, badf("checkpoint result spans %d hours, want %d", cp.Result.Hours, cp.MaxHours)
	}
	if int(cp.BGPrecision) != c.opts.SketchPrecision {
		return nil, fmt.Errorf("correlate: checkpoint sketch precision %d, correlator uses %d",
			cp.BGPrecision, c.opts.SketchPrecision)
	}
	res, err := cp.Result.Result()
	if err != nil {
		return nil, err
	}
	for id := range res.Devices {
		if id < 0 || id >= c.inv.Len() {
			return nil, fmt.Errorf("correlate: checkpoint device %d outside inventory of %d", id, c.inv.Len())
		}
	}
	bg, err := sketch.RestoreHLL(int(cp.BGPrecision), cp.BGRegisters)
	if err != nil {
		return nil, err
	}
	hours, err := restoreHourSet(cp.IngestedHours, cp.MaxHours, "ingested")
	if err != nil {
		return nil, err
	}
	quarantined, err := restoreHourSet(cp.QuarantinedHours, cp.MaxHours, "quarantined")
	if err != nil {
		return nil, err
	}
	for h := range quarantined {
		if hours[h] {
			return nil, badf("checkpoint hour %d both ingested and quarantined", h)
		}
	}
	if res.Ingest.HoursOK != len(hours) {
		return nil, badf("checkpoint counts %d hours ok but lists %d ingested",
			res.Ingest.HoursOK, len(hours))
	}
	return &Incremental{
		c:           c,
		res:         res,
		bg:          bg,
		st:          newMergeStateFromResult(res, c.inv.Len()),
		hours:       hours,
		quarantined: quarantined,
	}, nil
}

func restoreHourSet(list []int32, maxHours int, what string) (map[int]bool, error) {
	set := make(map[int]bool, len(list))
	prev := int32(-1)
	for _, h := range list {
		if h <= prev {
			return nil, badf("checkpoint %s hours not ascending at %d", what, h)
		}
		prev = h
		if int(h) >= maxHours {
			return nil, badf("checkpoint %s hour %d outside [0, %d)", what, h, maxHours)
		}
		set[int(h)] = true
	}
	return set, nil
}
