// Package correlate implements the paper's inference engine (Sec. III-B):
// it streams the telescope's hourly flowtuple files, joins every source
// address against the IoT inventory, classifies the traffic, and
// accumulates the per-device, per-hour, and per-port statistics every
// downstream table and figure is computed from.
//
// Hour files are independent, so the correlator processes them with a
// bounded worker pool and merges commutative partial aggregates — the
// streaming design the paper needs at 5 TB scale (an ablation bench
// compares it against batch loading).
package correlate

import (
	"fmt"

	"iotscope/internal/classify"
	"iotscope/internal/devicedb"
)

// DeviceStats accumulates one inferred device's unsolicited activity.
type DeviceStats struct {
	ID        int
	FirstSeen int // hour index of first appearance
	Records   uint64
	Packets   [classify.NumClasses]uint64
	// DayMask has bit d set when the device was seen during day d
	// (windows up to 64 days; the paper's is 6).
	DayMask uint64
	// BackscatterHourly is kept per hour (sparse) to support the DoS spike
	// attribution of Sec. IV-B1.
	BackscatterHourly map[int]uint64
	// MaxScanPorts tracks the device's widest single-hour TCP port sweep
	// (the Sec. IV-C interval-119 investigation).
	MaxScanPorts     int
	MaxScanPortsHour int
	MaxScanDests     int
}

// TotalPackets sums the device's packets across classes.
func (d *DeviceStats) TotalPackets() uint64 {
	var total uint64
	for _, v := range d.Packets {
		total += v
	}
	return total
}

// CatHour aggregates one (category, hour) cell.
type CatHour struct {
	Packets       [classify.NumClasses]uint64
	ActiveDevices int
	// UDP probing surface (Fig. 5).
	UDPDstIPs   uint64
	UDPDstPorts uint64
	UDPDevices  int
	// TCP scanning surface (Fig. 9).
	ScanDstIPs   uint64
	ScanDstPorts uint64
	ScanDevices  int
}

// HourStats aggregates one hour across categories.
type HourStats struct {
	Hour       int
	RecordsIoT uint64
	// PerCat is indexed by devicedb.Category - 1.
	PerCat [2]CatHour
}

// Cat returns the category cell.
func (h *HourStats) Cat(c devicedb.Category) *CatHour {
	return &h.PerCat[int(c)-1]
}

// PortAgg aggregates one UDP destination port (Table IV). Devices lists the
// distinct device indices that probed the port, ascending; it is nil when
// empty and may share backing storage with other ports' lists, so treat it
// as read-only.
type PortAgg struct {
	Packets uint64
	Devices []int32
}

// TCPPortAgg aggregates one TCP-scanned destination port with realm splits
// (Table V). The device lists follow the same contract as PortAgg.Devices:
// ascending, nil when empty, possibly shared backing — read-only.
type TCPPortAgg struct {
	Packets         uint64
	PacketsConsumer uint64
	DevicesConsumer []int32
	DevicesCPS      []int32
}

// PortHour keys the TCP scanning time series per (port, hour) for Fig. 10.
type PortHour struct {
	Port uint16
	Hour uint16
}

// MarshalText renders the key as "port/hour" so maps keyed by PortHour are
// JSON-serializable (encoding/json requires text-marshalable map keys, and
// sorts them, so serialized results are deterministic).
func (ph PortHour) MarshalText() ([]byte, error) {
	return fmt.Appendf(nil, "%d/%d", ph.Port, ph.Hour), nil
}

// UnmarshalText parses the "port/hour" form produced by MarshalText.
func (ph *PortHour) UnmarshalText(text []byte) error {
	_, err := fmt.Sscanf(string(text), "%d/%d", &ph.Port, &ph.Hour)
	return err
}

// BackgroundStats counts traffic from sources outside the inventory, which
// the correlation discards.
type BackgroundStats struct {
	Records uint64
	Packets uint64
	Sources uint64 // approximate unique non-IoT sources
}

// Result is the full correlation output.
type Result struct {
	Hours        int
	Devices      map[int]*DeviceStats
	Hourly       []HourStats
	UDPPorts     map[uint16]*PortAgg
	TCPScanPorts map[uint16]*TCPPortAgg
	TCPPortHour  map[PortHour]uint64
	Background   BackgroundStats
	// Ingest reports ingestion health: hours ingested, retried, and
	// quarantined, with per-hour wrapped errors (see FaultPolicy).
	Ingest IngestStats
}

// TotalIoTPackets sums packets attributed to inferred devices.
func (r *Result) TotalIoTPackets() uint64 {
	var total uint64
	for _, h := range r.Hourly {
		for ci := range h.PerCat {
			for _, v := range h.PerCat[ci].Packets {
				total += v
			}
		}
	}
	return total
}

// ClassPackets sums IoT packets for one class, optionally one category
// (pass 0 for both).
func (r *Result) ClassPackets(cls classify.Class, cat devicedb.Category) uint64 {
	var total uint64
	for _, h := range r.Hourly {
		for ci := range h.PerCat {
			if cat != 0 && ci != int(cat)-1 {
				continue
			}
			total += h.PerCat[ci].Packets[cls.Index()]
		}
	}
	return total
}

// HourlyClassSeries extracts a per-hour packet series for one class and
// category (0 = both).
func (r *Result) HourlyClassSeries(cls classify.Class, cat devicedb.Category) []float64 {
	out := make([]float64, r.Hours)
	for i := range r.Hourly {
		h := &r.Hourly[i]
		for ci := range h.PerCat {
			if cat != 0 && ci != int(cat)-1 {
				continue
			}
			out[i] += float64(h.PerCat[ci].Packets[cls.Index()])
		}
	}
	return out
}

// HourlyTotalSeries extracts per-hour total IoT packets for a category
// (0 = both).
func (r *Result) HourlyTotalSeries(cat devicedb.Category) []float64 {
	out := make([]float64, r.Hours)
	for i := range r.Hourly {
		h := &r.Hourly[i]
		for ci := range h.PerCat {
			if cat != 0 && ci != int(cat)-1 {
				continue
			}
			for _, v := range h.PerCat[ci].Packets {
				out[i] += float64(v)
			}
		}
	}
	return out
}
