package correlate

import (
	"context"
	"reflect"
	"testing"

	"iotscope/internal/flowtuple"
	"iotscope/internal/wgen"
)

// The dense path must be observationally identical to the historical map
// path (reference_test.go) — same Result bytes, same errors, same fault
// bookkeeping — at every worker count and fault policy the old code
// supported. These tests are the proof.

func cleanDataset(t *testing.T, seed uint64, hours int) (string, *wgen.Generator) {
	t.Helper()
	sc := wgen.Default(0.002, seed)
	sc.Hours = hours
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	return dir, g
}

// requireIdentical demands byte-identical Results, including ingestion
// bookkeeping, and reports the first field that diverged.
func requireIdentical(t *testing.T, want, got *Result) {
	t.Helper()
	if reflect.DeepEqual(want, got) {
		return
	}
	if !reflect.DeepEqual(want.Devices, got.Devices) {
		for id, w := range want.Devices {
			if g := got.Devices[id]; g == nil || !reflect.DeepEqual(w, g) {
				t.Fatalf("device %d diverged:\n reference %+v\n dense     %+v", id, w, got.Devices[id])
			}
		}
		t.Fatalf("dense path has %d devices, reference %d", len(got.Devices), len(want.Devices))
	}
	if !reflect.DeepEqual(want.Hourly, got.Hourly) {
		for h := range want.Hourly {
			if !reflect.DeepEqual(want.Hourly[h], got.Hourly[h]) {
				t.Fatalf("hour %d diverged:\n reference %+v\n dense     %+v", h, want.Hourly[h], got.Hourly[h])
			}
		}
	}
	if !reflect.DeepEqual(want.UDPPorts, got.UDPPorts) {
		t.Fatal("UDP port tables diverged")
	}
	if !reflect.DeepEqual(want.TCPScanPorts, got.TCPScanPorts) {
		t.Fatal("TCP scan port tables diverged")
	}
	if !reflect.DeepEqual(want.TCPPortHour, got.TCPPortHour) {
		t.Fatal("port-hour series diverged")
	}
	if want.Background != got.Background {
		t.Fatalf("background diverged: reference %+v dense %+v", want.Background, got.Background)
	}
	if !reflect.DeepEqual(want.Ingest, got.Ingest) {
		t.Fatalf("ingest stats diverged:\n reference %+v\n dense     %+v", want.Ingest, got.Ingest)
	}
	t.Fatalf("results diverged:\n reference %+v\n dense     %+v", want, got)
}

// Strict policy, clean dataset: the dense path reproduces the map path's
// Result exactly at one worker and at eight.
func TestDenseMatchesReferenceStrict(t *testing.T) {
	dir, g := cleanDataset(t, 41, 8)
	for _, workers := range []int{1, 8} {
		c := New(g.Inventory(), Options{Workers: workers})
		want, err := refProcessDataset(c, dir)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ProcessDataset(context.Background(), dir)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, want, got)
	}
}

// Lenient policy over a damaged dataset: both paths must quarantine the
// same hours with the same fault records and agree on everything the
// healthy hours contributed.
func TestDenseMatchesReferenceLenient(t *testing.T) {
	dir, g := damagedDataset(t)
	for _, workers := range []int{1, 8} {
		c := New(g.Inventory(), Options{Workers: workers, FaultPolicy: Lenient})
		want, err := refProcessDataset(c, dir)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ProcessDataset(context.Background(), dir)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, want, got)
	}
}

// Strict policy over a damaged dataset: both paths fail, with the same
// deterministic lowest-hour error.
func TestDenseMatchesReferenceStrictError(t *testing.T) {
	dir, g := damagedDataset(t)
	for _, workers := range []int{1, 8} {
		c := New(g.Inventory(), Options{Workers: workers})
		_, wantErr := refProcessDataset(c, dir)
		_, gotErr := c.ProcessDataset(context.Background(), dir)
		if wantErr == nil || gotErr == nil {
			t.Fatalf("workers=%d: damaged dataset accepted (ref=%v dense=%v)", workers, wantErr, gotErr)
		}
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("workers=%d error diverged:\n reference %v\n dense     %v", workers, wantErr, gotErr)
		}
	}
}

// Sketch mode: HLL merges are commutative max-folds, so the dense path must
// still match the reference estimate for estimate.
func TestDenseMatchesReferenceSketches(t *testing.T) {
	dir, g := cleanDataset(t, 42, 6)
	for _, workers := range []int{1, 8} {
		c := New(g.Inventory(), Options{Workers: workers, UseSketches: true})
		want, err := refProcessDataset(c, dir)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ProcessDataset(context.Background(), dir)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, want, got)
	}
}

// The incremental path shares the dense engine; hour-at-a-time ingestion
// must land on the reference batch result.
func TestDenseIncrementalMatchesReference(t *testing.T) {
	dir, g := cleanDataset(t, 43, 6)
	c := New(g.Inventory(), Options{Workers: 1})
	want, err := refProcessDataset(c, dir)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := c.NewIncremental(6)
	if err != nil {
		t.Fatal(err)
	}
	hours, err := flowtuple.DatasetHours(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hours {
		if _, err := inc.Ingest(context.Background(), dir, h); err != nil {
			t.Fatalf("hour %d: %v", h, err)
		}
	}
	sameData(t, want, inc.Result())
}

// Scratch recycling must not leak one hour's state into the next: running
// the same correlator over two different datasets back to back (pool warm)
// still matches fresh reference runs.
func TestScratchReuseIsClean(t *testing.T) {
	dir, g := cleanDataset(t, 44, 4)
	c := New(g.Inventory(), Options{Workers: 2})
	// First pass warms the scratch pool; the reference path never touches
	// it, so any state leaking across recycled scratches shows up as a
	// divergence on the second pass.
	if _, err := c.ProcessDataset(context.Background(), dir); err != nil {
		t.Fatal(err)
	}
	want, err := refProcessDataset(c, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got)
}
