package correlate

import (
	"context"
	"io"
	"math/bits"
	"slices"

	"iotscope/internal/classify"
	"iotscope/internal/devicedb"
	"iotscope/internal/flowtuple"
	"iotscope/internal/sketch"
)

// This file implements the dense hot path: one hour file is streamed in
// record batches (flowtuple.NextBatch) into a pool-recycled hourScratch
// whose accumulators are flat arrays indexed by device index or port — the
// inventory is dense and its length is known up front, so nothing on the
// per-record path touches a Go map or allocates. A completed scratch is
// folded into the global Result by a single merger goroutine (see
// ProcessDataset), which then resets and recycles it.

const fibMult = 0x9E3779B97F4A7C15 // 2^64 / golden ratio, for index hashing

// u64set is an open-addressed, linear-probing hash set of uint64 keys — the
// dense replacement for the per-hour map[...]struct{} accumulators. Keys
// are stored biased by +1 so an all-zero table means empty, which makes
// reset a memclr; keys must therefore fit in 63 bits, which every layout
// used here (device<<16|port, device<<32|addr, port<<32|device) does.
type u64set struct {
	slots  []uint64
	used   int
	growAt int
	shift  uint
	mask   uint64
}

func (s *u64set) init(capHint int) {
	size := 1024
	for size < capHint*2 {
		size <<= 1
	}
	s.slots = make([]uint64, size)
	s.shift = uint(64 - bits.Len(uint(size-1)))
	s.mask = uint64(size - 1)
	s.growAt = size * 3 / 4
	s.used = 0
}

// add inserts key and reports whether it was absent.
func (s *u64set) add(key uint64) bool {
	if s.used >= s.growAt {
		s.grow()
	}
	k := key + 1
	i := (key * fibMult) >> s.shift
	for {
		v := s.slots[i]
		if v == 0 {
			s.slots[i] = k
			s.used++
			return true
		}
		if v == k {
			return false
		}
		i = (i + 1) & s.mask
	}
}

func (s *u64set) grow() {
	old := s.slots
	s.slots = make([]uint64, len(old)*2)
	s.shift--
	s.mask = uint64(len(s.slots) - 1)
	s.growAt = len(s.slots) * 3 / 4
	for _, k := range old {
		if k != 0 {
			i := ((k - 1) * fibMult) >> s.shift
			for s.slots[i] != 0 {
				i = (i + 1) & s.mask
			}
			s.slots[i] = k
		}
	}
}

// reset empties the set, keeping capacity.
func (s *u64set) reset() {
	if s.used > 0 {
		clear(s.slots)
		s.used = 0
	}
}

// forEach visits every key, in table order.
func (s *u64set) forEach(fn func(key uint64)) {
	for _, k := range s.slots {
		if k != 0 {
			fn(k - 1)
		}
	}
}

// appendKeys appends every key to dst and returns it.
func (s *u64set) appendKeys(dst []uint64) []uint64 {
	for _, k := range s.slots {
		if k != 0 {
			dst = append(dst, k-1)
		}
	}
	return dst
}

// ipIndex is a fixed open-addressed hash table joining a source address to
// its inventory index — the query issued once per flowtuple. It replaces
// the inventory's generic map on the hot path: flat arrays, one multiply
// for the hash, no per-lookup overhead beyond the probe itself.
type ipIndex struct {
	keys  []uint32
	vals  []int32 // -1 = empty slot
	shift uint
	mask  uint32
}

func buildIPIndex(devs []devicedb.Device) ipIndex {
	size := 256
	for size < len(devs)*2 {
		size <<= 1
	}
	ix := ipIndex{
		keys:  make([]uint32, size),
		vals:  make([]int32, size),
		shift: uint(64 - bits.Len(uint(size-1))),
		mask:  uint32(size - 1),
	}
	for i := range ix.vals {
		ix.vals[i] = -1
	}
	for idx, d := range devs {
		ip := uint32(d.IP)
		i := uint32((uint64(ip) * fibMult) >> ix.shift)
		for ix.vals[i] >= 0 {
			i = (i + 1) & ix.mask
		}
		ix.keys[i], ix.vals[i] = ip, int32(idx)
	}
	return ix
}

func (ix *ipIndex) lookup(ip uint32) (int32, bool) {
	i := uint32((uint64(ip) * fibMult) >> ix.shift)
	for {
		v := ix.vals[i]
		if v < 0 {
			return 0, false
		}
		if ix.keys[i] == ip {
			return v, true
		}
		i = (i + 1) & ix.mask
	}
}

// Per-device flag bits for the per-hour unique-device counters.
const (
	devFlagUDP uint8 = 1 << iota
	devFlagScan
)

// hourScratch holds every accumulator needed to process one hour file.
// Instances are recycled through the correlator's sync.Pool: after the
// merger folds a scratch into the global Result it is reset (touched lists
// bound the clearing cost) and reused, so steady-state correlation
// allocates nothing per record and almost nothing per hour.
type hourScratch struct {
	hour      int
	stats     HourStats
	bgRecords uint64
	bgPackets uint64
	bgSrcHLL  *sketch.HLL

	// Dense per-device accumulators, indexed by inventory device index.
	devs      []DeviceStats // Records == 0 ⇒ untouched this hour
	touched   []int32       // touched device indices, first-touch order
	bsPkts    []uint64      // backscatter packets this hour
	devFlags  []uint8       // devFlagUDP / devFlagScan markers
	scanPorts []uint32      // unique TCP scan ports this hour
	scanDests []uint32      // unique TCP scan destinations this hour

	// (device, port) and (device, destination) dedup sets feeding the
	// per-device sweep counters above.
	devPort u64set
	devDest u64set

	// Dense per-port accumulators (65536 slots each); the touched lists
	// and mark bitsets bound the reset cost to the ports actually seen.
	udpPkts    []uint64
	tcpPkts    []uint64
	tcpPktsCon []uint64
	udpTouched []uint16
	tcpTouched []uint16
	udpMark    portBitset
	tcpMark    portBitset

	// Per-(port, device) membership feeding the Result's port→device sets.
	udpPortDev u64set
	tcpDevCon  u64set
	tcpDevCPS  u64set

	// Per-category hour surface counters (CatHour).
	activeN      [2]int
	udpDevN      [2]int
	scanDevN     [2]int
	udpDstIPs    [2]destCounter
	scanDstIPs   [2]destCounter
	udpDstPorts  [2]portBitset
	scanDstPorts [2]portBitset

	batch []flowtuple.Record
}

func (c *Correlator) newScratch() (*hourScratch, error) {
	c.scratchAllocs.Add(1)
	n := c.inv.Len()
	s := &hourScratch{
		devs:       make([]DeviceStats, n),
		bsPkts:     make([]uint64, n),
		devFlags:   make([]uint8, n),
		scanPorts:  make([]uint32, n),
		scanDests:  make([]uint32, n),
		udpPkts:    make([]uint64, 1<<16),
		tcpPkts:    make([]uint64, 1<<16),
		tcpPktsCon: make([]uint64, 1<<16),
		batch:      make([]flowtuple.Record, flowtuple.BatchSize),
	}
	s.devPort.init(4096)
	s.devDest.init(4096)
	s.udpPortDev.init(4096)
	s.tcpDevCon.init(4096)
	s.tcpDevCPS.init(4096)
	var err error
	if s.bgSrcHLL, err = sketch.NewHLL(c.opts.SketchPrecision); err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		s.udpDstIPs[i] = c.newDestCounter()
		s.scanDstIPs[i] = c.newDestCounter()
	}
	return s, nil
}

// reset clears the scratch for reuse, touching only what the last hour
// dirtied.
func (s *hourScratch) reset() {
	for _, idx := range s.touched {
		s.devs[idx] = DeviceStats{}
		s.bsPkts[idx] = 0
		s.devFlags[idx] = 0
		s.scanPorts[idx] = 0
		s.scanDests[idx] = 0
	}
	s.touched = s.touched[:0]
	for _, p := range s.udpTouched {
		s.udpPkts[p] = 0
	}
	s.udpTouched = s.udpTouched[:0]
	for _, p := range s.tcpTouched {
		s.tcpPkts[p] = 0
		s.tcpPktsCon[p] = 0
	}
	s.tcpTouched = s.tcpTouched[:0]
	s.udpMark.clear()
	s.tcpMark.clear()
	s.devPort.reset()
	s.devDest.reset()
	s.udpPortDev.reset()
	s.tcpDevCon.reset()
	s.tcpDevCPS.reset()
	s.stats = HourStats{}
	s.bgRecords, s.bgPackets = 0, 0
	s.bgSrcHLL.Reset()
	s.activeN = [2]int{}
	s.udpDevN = [2]int{}
	s.scanDevN = [2]int{}
	for i := 0; i < 2; i++ {
		s.udpDstIPs[i].reset()
		s.scanDstIPs[i].reset()
		s.udpDstPorts[i].clear()
		s.scanDstPorts[i].clear()
	}
}

func (c *Correlator) getScratch() (*hourScratch, error) {
	if v := c.scratch.Get(); v != nil {
		return v.(*hourScratch), nil
	}
	return c.newScratch()
}

func (c *Correlator) putScratch(s *hourScratch) {
	s.reset()
	c.scratch.Put(s)
}

// processHourDense streams one hour file into a dense scratch aggregate.
// On success the caller owns the scratch and must return it with putScratch
// once merged; on error — including cancellation, checked between record
// batches — the scratch has already been reset and recycled, so the pool
// never sees partial state.
func (c *Correlator) processHourDense(ctx context.Context, dir string, hour int) (*hourScratch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := c.getScratch()
	if err != nil {
		return nil, err
	}
	s.hour = hour
	s.stats.Hour = hour
	rd, err := flowtuple.Open(flowtuple.HourPath(dir, hour))
	if err != nil {
		c.putScratch(s)
		return nil, err
	}
	defer rd.Close()
	for {
		if err := ctx.Err(); err != nil {
			c.putScratch(s)
			return nil, err
		}
		n, err := rd.NextBatch(s.batch)
		for i := 0; i < n; i++ {
			c.accumulate(s, hour, &s.batch[i])
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			c.putScratch(s)
			return nil, err
		}
	}
	s.finalize(hour)
	return s, nil
}

// accumulate folds one record into the scratch — the innermost loop of the
// whole pipeline. Every data structure it touches is a flat array.
func (c *Correlator) accumulate(s *hourScratch, hour int, rec *flowtuple.Record) {
	devIdx, isIoT := c.ips.lookup(rec.SrcIP)
	if !isIoT {
		s.bgRecords++
		s.bgPackets += uint64(rec.Packets)
		s.bgSrcHLL.AddAddr(rec.SrcIP)
		return
	}
	idx := int(devIdx)
	cls := classify.Record(*rec)
	ci := int(c.devCat[idx]) - 1
	pkts := uint64(rec.Packets)

	s.stats.RecordsIoT++
	s.stats.PerCat[ci].Packets[cls.Index()] += pkts

	d := &s.devs[idx]
	if d.Records == 0 {
		d.ID = idx
		d.FirstSeen = hour
		if day := hour / 24; day < 64 {
			d.DayMask = 1 << day
		}
		s.touched = append(s.touched, devIdx)
		s.activeN[ci]++
	}
	d.Records++
	d.Packets[cls.Index()] += pkts

	switch cls {
	case classify.UDP:
		if s.devFlags[idx]&devFlagUDP == 0 {
			s.devFlags[idx] |= devFlagUDP
			s.udpDevN[ci]++
		}
		s.udpDstIPs[ci].add(rec.DstIP)
		s.udpDstPorts[ci].add(rec.DstPort)
		p := rec.DstPort
		if !s.udpMark.has(p) {
			s.udpMark.add(p)
			s.udpTouched = append(s.udpTouched, p)
		}
		s.udpPkts[p] += pkts
		s.udpPortDev.add(uint64(p)<<32 | uint64(uint32(devIdx)))
	case classify.Backscatter:
		s.bsPkts[idx] += pkts
	case classify.ScanTCP:
		if s.devFlags[idx]&devFlagScan == 0 {
			s.devFlags[idx] |= devFlagScan
			s.scanDevN[ci]++
		}
		s.scanDstIPs[ci].add(rec.DstIP)
		s.scanDstPorts[ci].add(rec.DstPort)
		p := rec.DstPort
		if !s.tcpMark.has(p) {
			s.tcpMark.add(p)
			s.tcpTouched = append(s.tcpTouched, p)
		}
		s.tcpPkts[p] += pkts
		if c.devCat[idx] == uint8(devicedb.Consumer) {
			s.tcpPktsCon[p] += pkts
			s.tcpDevCon.add(uint64(p)<<32 | uint64(uint32(devIdx)))
		} else {
			s.tcpDevCPS.add(uint64(p)<<32 | uint64(uint32(devIdx)))
		}
		if s.devPort.add(uint64(uint32(devIdx))<<16 | uint64(p)) {
			s.scanPorts[idx]++
		}
		if s.devDest.add(uint64(uint32(devIdx))<<32 | uint64(rec.DstIP)) {
			s.scanDests[idx]++
		}
	}
}

// finalize computes the hour's CatHour surface counters and folds the
// per-device port sweeps into running maxima, mirroring the epilogue of the
// historical map-based path.
func (s *hourScratch) finalize(hour int) {
	for ci := 0; ci < 2; ci++ {
		cat := &s.stats.PerCat[ci]
		cat.ActiveDevices = s.activeN[ci]
		cat.UDPDevices = s.udpDevN[ci]
		cat.ScanDevices = s.scanDevN[ci]
		cat.UDPDstIPs = s.udpDstIPs[ci].estimate()
		cat.UDPDstPorts = s.udpDstPorts[ci].count()
		cat.ScanDstIPs = s.scanDstIPs[ci].estimate()
		cat.ScanDstPorts = s.scanDstPorts[ci].count()
	}
	for _, idx := range s.touched {
		d := &s.devs[idx]
		if n := int(s.scanPorts[idx]); n > d.MaxScanPorts {
			d.MaxScanPorts = n
			d.MaxScanPortsHour = hour
			d.MaxScanDests = int(s.scanDests[idx])
		}
	}
}

// deviceSlab hands out DeviceStats in blocks, so the global result performs
// one allocation per slabBlock new devices instead of one each.
type deviceSlab struct{ buf []DeviceStats }

const slabBlock = 256

func (sl *deviceSlab) new(v DeviceStats) *DeviceStats {
	if len(sl.buf) == 0 {
		sl.buf = make([]DeviceStats, slabBlock)
	}
	d := &sl.buf[0]
	sl.buf = sl.buf[1:]
	*d = v
	return d
}

// portHourPkts is one (port, hour) cell buffered for the deferred
// TCPPortHour build: each cell is produced by exactly one hour's merge, so
// the merger appends instead of inserting into a growing map.
type portHourPkts struct {
	key  PortHour
	pkts uint64
}

// mergeState is the merger's private accumulation state across hours: slabs
// amortizing the Result's pointer allocations, dense by-index/by-port pointer
// tables replacing every map the merge loop used to probe, and the global
// (port, device) membership sets behind the Result's per-port device lists.
// The Result's maps and lists are only materialized by finalizeResult —
// per-hour merges are pure array indexing.
type mergeState struct {
	slab    deviceSlab
	udpSlab []PortAgg
	tcpSlab []TCPPortAgg

	// Dense lookup tables: device index → stats, port → aggregate. The
	// port tables are full 65536-slot arrays; the touched lists record
	// first-use order so finalizeResult can presize the Result's maps.
	devByIdx  []*DeviceStats
	devCount  int
	udpByPort []*PortAgg
	tcpByPort []*TCPPortAgg
	udpList   []uint16
	tcpList   []uint16
	portHours []portHourPkts

	udp      u64set // port<<32 | device, UDP probes
	con      u64set // port<<32 | device, TCP scans from consumer devices
	cps      u64set // port<<32 | device, TCP scans from CPS devices
	keyBuf   []uint64
	unlisted bool // merged state not yet materialized into res
}

func newMergeState() *mergeState {
	st := &mergeState{}
	st.udp.init(4096)
	st.con.init(4096)
	st.cps.init(4096)
	return st
}

// knownDevice reports whether the device index has already been merged —
// the incremental path's first-seen test, replacing a Result map probe.
func (st *mergeState) knownDevice(idx int32) bool {
	return st.devByIdx != nil && st.devByIdx[idx] != nil
}

func (st *mergeState) newPortAgg() *PortAgg {
	if len(st.udpSlab) == 0 {
		st.udpSlab = make([]PortAgg, slabBlock)
	}
	a := &st.udpSlab[0]
	st.udpSlab = st.udpSlab[1:]
	return a
}

func (st *mergeState) newTCPPortAgg() *TCPPortAgg {
	if len(st.tcpSlab) == 0 {
		st.tcpSlab = make([]TCPPortAgg, slabBlock)
	}
	a := &st.tcpSlab[0]
	st.tcpSlab = st.tcpSlab[1:]
	return a
}

// finalizeResult materializes the Result's reader-facing views from the
// merger's dense state: the device and port maps are built once, presized
// from the touched lists, and the per-port device lists come from dumping
// and sorting each membership set — the uint64 order (port major, device
// minor) is exactly the grouping needed — with every port's ascending list
// carved from one shared backing array. Idempotent and cheap to re-run;
// callers invoke it before handing res to a reader.
func (st *mergeState) finalizeResult(res *Result) {
	if !st.unlisted {
		return
	}
	res.Devices = make(map[int]*DeviceStats, st.devCount)
	for idx, g := range st.devByIdx {
		if g != nil {
			res.Devices[idx] = g
		}
	}
	res.UDPPorts = make(map[uint16]*PortAgg, len(st.udpList))
	for _, p := range st.udpList {
		res.UDPPorts[p] = st.udpByPort[p]
	}
	res.TCPScanPorts = make(map[uint16]*TCPPortAgg, len(st.tcpList))
	for _, p := range st.tcpList {
		res.TCPScanPorts[p] = st.tcpByPort[p]
	}
	res.TCPPortHour = make(map[PortHour]uint64, len(st.portHours))
	for _, e := range st.portHours {
		res.TCPPortHour[e.key] += e.pkts
	}
	st.fillLists(&st.udp, func(p uint16, devs []int32) {
		st.udpByPort[p].Devices = devs
	})
	st.fillLists(&st.con, func(p uint16, devs []int32) {
		st.tcpByPort[p].DevicesConsumer = devs
	})
	st.fillLists(&st.cps, func(p uint16, devs []int32) {
		st.tcpByPort[p].DevicesCPS = devs
	})
	st.unlisted = false
}

func (st *mergeState) fillLists(set *u64set, assign func(port uint16, devs []int32)) {
	keys := set.appendKeys(st.keyBuf[:0])
	st.keyBuf = keys
	slices.Sort(keys)
	backing := make([]int32, len(keys))
	for i, k := range keys {
		backing[i] = int32(uint32(k))
	}
	for lo := 0; lo < len(keys); {
		port := uint16(keys[lo] >> 32)
		hi := lo + 1
		for hi < len(keys) && uint16(keys[hi]>>32) == port {
			hi++
		}
		assign(port, backing[lo:hi:hi])
		lo = hi
	}
}

// newMergeStateFromResult rebuilds the merger's dense accumulation state
// from a finalized Result — the restore half of incremental checkpointing.
// The dense tables point at the Result's own aggregates (exactly as they
// would after finalizeResult), so subsequent mergeDense calls mutate the
// same objects an uninterrupted run would have.
func newMergeStateFromResult(res *Result, invLen int) *mergeState {
	st := newMergeState()
	st.devByIdx = make([]*DeviceStats, invLen)
	for id, d := range res.Devices {
		st.devByIdx[id] = d
	}
	st.devCount = len(res.Devices)
	st.udpByPort = make([]*PortAgg, 1<<16)
	st.tcpByPort = make([]*TCPPortAgg, 1<<16)
	for p, a := range res.UDPPorts {
		st.udpByPort[p] = a
		st.udpList = append(st.udpList, p)
		for _, dev := range a.Devices {
			st.udp.add(uint64(p)<<32 | uint64(uint32(dev)))
		}
	}
	for p, a := range res.TCPScanPorts {
		st.tcpByPort[p] = a
		st.tcpList = append(st.tcpList, p)
		for _, dev := range a.DevicesConsumer {
			st.con.add(uint64(p)<<32 | uint64(uint32(dev)))
		}
		for _, dev := range a.DevicesCPS {
			st.cps.add(uint64(p)<<32 | uint64(uint32(dev)))
		}
	}
	for k, pkts := range res.TCPPortHour {
		st.portHours = append(st.portHours, portHourPkts{key: k, pkts: pkts})
	}
	// The Result already carries the materialized views, so nothing is
	// pending; the next merge flips unlisted and finalizeResult rebuilds.
	st.unlisted = false
	return st
}

// mergeDense folds a completed hour scratch into the global result. All
// operations commute, so merge order (and thus worker scheduling) cannot
// change the outcome. Only the merger goroutine calls this, so it needs no
// locking.
func mergeDense(res *Result, s *hourScratch, bgSources *sketch.HLL, st *mergeState) {
	res.Hourly[s.hour] = s.stats
	res.Background.Records += s.bgRecords
	res.Background.Packets += s.bgPackets
	bgSources.Merge(s.bgSrcHLL) //nolint:errcheck // same precision by construction

	if st.devByIdx == nil {
		st.devByIdx = make([]*DeviceStats, len(s.devs))
		st.udpByPort = make([]*PortAgg, 1<<16)
		st.tcpByPort = make([]*TCPPortAgg, 1<<16)
	}

	for _, idx := range s.touched {
		d := &s.devs[idx]
		g := st.devByIdx[idx]
		if g == nil {
			g = st.slab.new(*d)
			if s.bsPkts[idx] > 0 {
				g.BackscatterHourly = map[int]uint64{s.hour: s.bsPkts[idx]}
			}
			st.devByIdx[idx] = g
			st.devCount++
			continue
		}
		if d.FirstSeen < g.FirstSeen {
			g.FirstSeen = d.FirstSeen
		}
		g.Records += d.Records
		g.DayMask |= d.DayMask
		for i := range g.Packets {
			g.Packets[i] += d.Packets[i]
		}
		if s.bsPkts[idx] > 0 {
			if g.BackscatterHourly == nil {
				g.BackscatterHourly = make(map[int]uint64, 4)
			}
			g.BackscatterHourly[s.hour] += s.bsPkts[idx]
		}
		// Ties go to the earlier hour so the result is independent of the
		// order partials reach the merger.
		if d.MaxScanPorts > g.MaxScanPorts ||
			(d.MaxScanPorts == g.MaxScanPorts && d.MaxScanPorts > 0 &&
				d.MaxScanPortsHour < g.MaxScanPortsHour) {
			g.MaxScanPorts = d.MaxScanPorts
			g.MaxScanPortsHour = d.MaxScanPortsHour
			g.MaxScanDests = d.MaxScanDests
		}
	}

	for _, p := range s.udpTouched {
		g := st.udpByPort[p]
		if g == nil {
			g = st.newPortAgg()
			st.udpByPort[p] = g
			st.udpList = append(st.udpList, p)
		}
		g.Packets += s.udpPkts[p]
	}
	for _, p := range s.tcpTouched {
		g := st.tcpByPort[p]
		if g == nil {
			g = st.newTCPPortAgg()
			st.tcpByPort[p] = g
			st.tcpList = append(st.tcpList, p)
		}
		g.Packets += s.tcpPkts[p]
		g.PacketsConsumer += s.tcpPktsCon[p]
		st.portHours = append(st.portHours,
			portHourPkts{key: PortHour{Port: p, Hour: uint16(s.hour)}, pkts: s.tcpPkts[p]})
	}
	// Per-port device membership folds into the merger's global sets; the
	// Result's lists are carved out later by finalizeResult.
	s.udpPortDev.forEach(func(key uint64) { st.udp.add(key) })
	s.tcpDevCon.forEach(func(key uint64) { st.con.add(key) })
	s.tcpDevCPS.forEach(func(key uint64) { st.cps.add(key) })
	st.unlisted = true
}
