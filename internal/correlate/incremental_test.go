package correlate

import (
	"context"
	"testing"

	"iotscope/internal/classify"
	"iotscope/internal/devicedb"
	"iotscope/internal/wgen"
)

func TestIncrementalMatchesBatch(t *testing.T) {
	sc := wgen.Default(0.002, 404)
	sc.Hours = 12
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	c := New(g.Inventory(), Options{})
	batch, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}

	inc, err := c.NewIncremental(sc.Hours)
	if err != nil {
		t.Fatal(err)
	}
	totalFresh := 0
	for h := 0; h < sc.Hours; h++ {
		fresh, err := inc.Ingest(context.Background(), dir, h)
		if err != nil {
			t.Fatal(err)
		}
		totalFresh += len(fresh)
		// Every "fresh" device must have this hour as its first-seen.
		for _, id := range fresh {
			if got := inc.Result().Devices[id].FirstSeen; got != h {
				t.Fatalf("device %d reported fresh at hour %d but first seen %d", id, h, got)
			}
		}
	}
	live := inc.Result()
	if totalFresh != len(batch.Devices) {
		t.Fatalf("fresh notifications %d != batch devices %d", totalFresh, len(batch.Devices))
	}
	if len(live.Devices) != len(batch.Devices) {
		t.Fatalf("incremental devices %d != batch %d", len(live.Devices), len(batch.Devices))
	}
	for id, b := range batch.Devices {
		l := live.Devices[id]
		if l == nil {
			t.Fatalf("device %d missing from incremental", id)
		}
		if l.FirstSeen != b.FirstSeen || l.Records != b.Records || l.Packets != b.Packets {
			t.Fatalf("device %d diverged: %+v vs %+v", id, l, b)
		}
	}
	if live.TotalIoTPackets() != batch.TotalIoTPackets() {
		t.Fatalf("packet totals diverged: %d vs %d",
			live.TotalIoTPackets(), batch.TotalIoTPackets())
	}
	if got := live.ClassPackets(classify.ScanTCP, 0); got != batch.ClassPackets(classify.ScanTCP, 0) {
		t.Fatal("scan totals diverged")
	}
	if live.Background.Packets != batch.Background.Packets {
		t.Fatal("background diverged")
	}
	if inc.HoursIngested() != sc.Hours {
		t.Fatalf("hours ingested %d", inc.HoursIngested())
	}
}

func TestIncrementalOutOfOrder(t *testing.T) {
	sc := wgen.Default(0.002, 405)
	sc.Hours = 6
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	c := New(g.Inventory(), Options{})
	batch, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := c.NewIncremental(sc.Hours)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse order: merges are commutative, first-seen still via min.
	for h := sc.Hours - 1; h >= 0; h-- {
		if _, err := inc.Ingest(context.Background(), dir, h); err != nil {
			t.Fatal(err)
		}
	}
	live := inc.Result()
	for id, b := range batch.Devices {
		if live.Devices[id] == nil || live.Devices[id].FirstSeen != b.FirstSeen {
			t.Fatalf("device %d first-seen diverged under out-of-order ingest", id)
		}
	}
}

func TestIncrementalGuards(t *testing.T) {
	inv := fixtureInventory(t)
	c := New(inv, Options{})
	if _, err := c.NewIncremental(0); err == nil {
		t.Fatal("maxHours 0 accepted")
	}
	inc, err := c.NewIncremental(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Ingest(context.Background(), t.TempDir(), 9); err == nil {
		t.Fatal("hour beyond window accepted")
	}
	if _, err := inc.Ingest(context.Background(), t.TempDir(), 1); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestIncrementalDuplicateHour(t *testing.T) {
	dir, inv := buildTinyDataset(t)
	c := New(inv, Options{})
	inc, err := c.NewIncremental(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Ingest(context.Background(), dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Ingest(context.Background(), dir, 0); err == nil {
		t.Fatal("duplicate hour accepted")
	}
}

func fixtureInventory(t *testing.T) *devicedb.Inventory {
	t.Helper()
	_, inv := buildTinyDataset(t)
	return inv
}
