package correlate

import (
	"context"
	"encoding/json"
	"errors"
	"io/fs"
	"reflect"
	"testing"

	"iotscope/internal/flowtuple"
)

// The export layer must be a lossless, deterministic projection of the
// analyzed state: Result → Export → Result is byte-identical (DeepEqual
// against the original, which itself is proven against the map-based
// oracle in reference_test.go), and a restored incremental checkpoint
// behaves exactly like the original had it never stopped.

func TestExportRoundTripBatch(t *testing.T) {
	dir, g := cleanDataset(t, 51, 6)
	for _, workers := range []int{1, 8} {
		for _, policy := range []FaultPolicy{Strict, Lenient} {
			c := New(g.Inventory(), Options{Workers: workers, FaultPolicy: policy})
			res, err := c.ProcessDataset(context.Background(), dir)
			if err != nil {
				t.Fatal(err)
			}
			back, err := res.Export().Result()
			if err != nil {
				t.Fatalf("workers=%d policy=%v: import: %v", workers, policy, err)
			}
			requireIdentical(t, res, back)
		}
	}
}

// Export is deterministic: two exports of the same Result are DeepEqual
// (the map flattening is canonically ordered, not map-iteration ordered).
func TestExportDeterministic(t *testing.T) {
	dir, g := cleanDataset(t, 52, 4)
	c := New(g.Inventory(), Options{Workers: 4})
	res, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Export(), res.Export()) {
		t.Fatal("two exports of the same result differ")
	}
}

// A damaged dataset under the Lenient policy carries fault records whose
// wrapped errors cannot survive serialization as-is; the export preserves
// the sentinel classification so errors.Is and IsRetryable answer the same
// after a round trip, and everything else stays byte-identical.
func TestExportRoundTripLenientFaults(t *testing.T) {
	dir, g := damagedDataset(t)
	c := New(g.Inventory(), Options{Workers: 2, FaultPolicy: Lenient})
	res, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ingest.Faults) == 0 {
		t.Fatal("damaged dataset produced no faults")
	}
	back, err := res.Export().Result()
	if err != nil {
		t.Fatal(err)
	}
	sameData(t, res, back)
	if !reflect.DeepEqual(res.Export(), back.Export()) {
		t.Fatal("export forms diverged after round trip")
	}
	if len(back.Ingest.Faults) != len(res.Ingest.Faults) {
		t.Fatalf("fault count %d != %d", len(back.Ingest.Faults), len(res.Ingest.Faults))
	}
	for i, want := range res.Ingest.Faults {
		got := back.Ingest.Faults[i]
		if got.Hour != want.Hour || got.Retryable != want.Retryable || got.Attempts != want.Attempts {
			t.Fatalf("fault %d bookkeeping diverged: %+v vs %+v", i, got, want)
		}
		if got.Err.Error() != want.Err.Error() {
			t.Fatalf("fault %d message %q != %q", i, got.Err.Error(), want.Err.Error())
		}
		for _, sentinel := range []error{flowtuple.ErrBadFormat, flowtuple.ErrTruncated, fs.ErrNotExist} {
			if errors.Is(got.Err, sentinel) != errors.Is(want.Err, sentinel) {
				t.Fatalf("fault %d sentinel %v classification diverged", i, sentinel)
			}
		}
		if IsRetryable(got.Err) != IsRetryable(want.Err) {
			t.Fatalf("fault %d retryability diverged", i)
		}
	}
}

// Structurally invalid exports must be rejected, never imported into a
// subtly wrong Result.
func TestImportRejectsInvalid(t *testing.T) {
	dir, g := cleanDataset(t, 53, 3)
	c := New(g.Inventory(), Options{Workers: 1})
	res, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(e *ResultExport){
		"zero hours":          func(e *ResultExport) { e.Hours = 0 },
		"hourly count":        func(e *ResultExport) { e.Hourly = e.Hourly[:len(e.Hourly)-1] },
		"hourly label":        func(e *ResultExport) { e.Hourly[1].Hour = 2 },
		"device order":        func(e *ResultExport) { e.Devices[0], e.Devices[1] = e.Devices[1], e.Devices[0] },
		"unknown port device": func(e *ResultExport) { e.UDPPorts[0].Devices = []int32{1 << 30} },
		"port-hour range": func(e *ResultExport) {
			e.TCPPortHour = append(e.TCPPortHour, PortHourExport{Port: 65535, Hour: uint16(e.Hours)})
		},
	}
	for name, mutate := range mutations {
		e := res.Export()
		mutate(e)
		if _, err := e.Result(); err == nil {
			t.Errorf("%s: corrupted export imported cleanly", name)
		}
	}
}

// Checkpoint → restore → keep ingesting is indistinguishable from never
// stopping: identical fresh-device notifications for the remaining hours
// and an identical final Result (which in turn equals a cold batch run).
func TestCheckpointResumeIdentical(t *testing.T) {
	dir, g := cleanDataset(t, 54, 6)
	c := New(g.Inventory(), Options{Workers: 2})

	uninterrupted, err := c.NewIncremental(6)
	if err != nil {
		t.Fatal(err)
	}
	var wantFresh [][]int
	for h := 0; h < 6; h++ {
		fresh, err := uninterrupted.Ingest(context.Background(), dir, h)
		if err != nil {
			t.Fatal(err)
		}
		wantFresh = append(wantFresh, fresh)
	}

	first, err := c.NewIncremental(6)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 3; h++ {
		if _, err := first.Ingest(context.Background(), dir, h); err != nil {
			t.Fatal(err)
		}
	}
	cp := first.Export()
	// Exporting must not disturb the exporter: it can keep ingesting.
	if _, err := first.Ingest(context.Background(), dir, 3); err != nil {
		t.Fatalf("ingest after export: %v", err)
	}

	resumed, err := c.RestoreIncremental(cp)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.HoursIngested(); got != 3 {
		t.Fatalf("restored instance reports %d hours, want 3", got)
	}
	for h := 3; h < 6; h++ {
		fresh, err := resumed.Ingest(context.Background(), dir, h)
		if err != nil {
			t.Fatalf("resumed ingest hour %d: %v", h, err)
		}
		if !reflect.DeepEqual(fresh, wantFresh[h]) {
			t.Fatalf("hour %d fresh devices %v, uninterrupted run saw %v", h, fresh, wantFresh[h])
		}
	}
	requireIdentical(t, uninterrupted.Result(), resumed.Result())

	batch, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	sameData(t, batch, resumed.Result())
}

// Re-ingesting an hour the checkpoint already covers must be rejected, and
// the quarantine set must survive the round trip.
func TestCheckpointBookkeepingSurvives(t *testing.T) {
	dir, g := damagedDataset(t) // hour 2 corrupt (permanent), hour 3 truncated
	c := New(g.Inventory(), Options{Workers: 1, FaultPolicy: Lenient})
	inc, err := c.NewIncremental(6)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 6; h++ {
		inc.Ingest(context.Background(), dir, h) //nolint:errcheck // faults recorded in stats
	}
	resumed, err := c.RestoreIncremental(inc.Export())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Ingest(context.Background(), dir, 0); err == nil {
		t.Fatal("re-ingest of checkpointed hour accepted")
	}
	if !resumed.Quarantined(2) {
		t.Fatal("quarantine of hour 2 lost in round trip")
	}
	if resumed.Quarantined(3) {
		t.Fatal("retryable hour 3 must stay open after restore")
	}
	// The fault errors are reconstructed values, so compare the stats in
	// their JSON form (which flattens errors to messages).
	wantJSON, _ := json.Marshal(inc.Stats())
	gotJSON, _ := json.Marshal(resumed.Stats())
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("ingest stats diverged:\n restored %s\n original %s", gotJSON, wantJSON)
	}
}

func TestRestoreIncrementalRejects(t *testing.T) {
	dir, g := cleanDataset(t, 55, 3)
	c := New(g.Inventory(), Options{Workers: 1})
	inc, err := c.NewIncremental(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Ingest(context.Background(), dir, 0); err != nil {
		t.Fatal(err)
	}
	good := inc.Export()

	cases := map[string]func(cp *CheckpointExport){
		"nil result":      func(cp *CheckpointExport) { cp.Result = nil },
		"hours mismatch":  func(cp *CheckpointExport) { cp.MaxHours = 4 },
		"hour range":      func(cp *CheckpointExport) { cp.IngestedHours = []int32{7} },
		"hour order":      func(cp *CheckpointExport) { cp.IngestedHours = []int32{0, 0} },
		"count mismatch":  func(cp *CheckpointExport) { cp.IngestedHours = nil },
		"both states":     func(cp *CheckpointExport) { cp.QuarantinedHours = []int32{0} },
		"precision":       func(cp *CheckpointExport) { cp.BGPrecision++ },
		"register length": func(cp *CheckpointExport) { cp.BGRegisters = cp.BGRegisters[:10] },
	}
	for name, mutate := range cases {
		cp := *good
		cp.IngestedHours = append([]int32(nil), good.IngestedHours...)
		cp.QuarantinedHours = append([]int32(nil), good.QuarantinedHours...)
		mutate(&cp)
		if _, err := c.RestoreIncremental(&cp); err == nil {
			t.Errorf("%s: invalid checkpoint restored cleanly", name)
		}
	}
	// Device index outside the inventory.
	cp := *good
	bad := *good.Result
	bad.Devices = append([]DeviceExport(nil), good.Result.Devices...)
	if len(bad.Devices) == 0 {
		t.Fatal("expected at least one device")
	}
	bad.Devices[len(bad.Devices)-1].ID = int32(c.inv.Len() + 5)
	cp.Result = &bad
	if _, err := c.RestoreIncremental(&cp); err == nil {
		t.Error("out-of-inventory device restored cleanly")
	}

	if _, err := c.RestoreIncremental(good); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
}

// Corrupt hour sets must surface as ErrBadFormat-family errors — the
// signal a resuming collector uses to discard the checkpoint and rebuild —
// never as a panic or an unclassified error.
func TestRestoreIncrementalBadHourSets(t *testing.T) {
	dir, g := cleanDataset(t, 56, 3)
	c := New(g.Inventory(), Options{Workers: 1})
	inc, err := c.NewIncremental(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Ingest(context.Background(), dir, 0); err != nil {
		t.Fatal(err)
	}
	good := inc.Export()

	cases := map[string]func(cp *CheckpointExport){
		"hour at maxHours":     func(cp *CheckpointExport) { cp.IngestedHours = []int32{3} },
		"hour beyond maxHours": func(cp *CheckpointExport) { cp.IngestedHours = []int32{12} },
		"negative hour":        func(cp *CheckpointExport) { cp.IngestedHours = []int32{-1} },
		"duplicate hours":      func(cp *CheckpointExport) { cp.IngestedHours = []int32{0, 0} },
		"descending hours":     func(cp *CheckpointExport) { cp.IngestedHours = []int32{2, 0} },
		"quarantined dup": func(cp *CheckpointExport) {
			cp.QuarantinedHours = []int32{1, 1}
		},
		"quarantined range": func(cp *CheckpointExport) {
			cp.QuarantinedHours = []int32{5}
		},
	}
	for name, mutate := range cases {
		cp := *good
		cp.IngestedHours = append([]int32(nil), good.IngestedHours...)
		cp.QuarantinedHours = append([]int32(nil), good.QuarantinedHours...)
		mutate(&cp)
		_, err := func() (inc *Incremental, err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: RestoreIncremental panicked: %v", name, r)
				}
			}()
			return c.RestoreIncremental(&cp)
		}()
		if !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: got %v, want ErrBadFormat", name, err)
		}
	}
}
