package correlate

// Clone returns a deep copy of the result: every map, slice, and nested
// accumulator is duplicated, so the copy can be published to concurrent
// readers (e.g. a serving snapshot) while the original keeps mutating.
func (r *Result) Clone() *Result {
	cp := &Result{
		Hours:      r.Hours,
		Background: r.Background,
		Devices:    make(map[int]*DeviceStats, len(r.Devices)),
	}
	for id, ds := range r.Devices {
		d := *ds
		if ds.BackscatterHourly != nil {
			d.BackscatterHourly = make(map[int]uint64, len(ds.BackscatterHourly))
			for h, v := range ds.BackscatterHourly {
				d.BackscatterHourly[h] = v
			}
		}
		cp.Devices[id] = &d
	}
	cp.Hourly = append([]HourStats(nil), r.Hourly...)
	if r.UDPPorts != nil {
		cp.UDPPorts = make(map[uint16]*PortAgg, len(r.UDPPorts))
		for port, agg := range r.UDPPorts {
			a := &PortAgg{Packets: agg.Packets, Devices: make(map[int]struct{}, len(agg.Devices))}
			for id := range agg.Devices {
				a.Devices[id] = struct{}{}
			}
			cp.UDPPorts[port] = a
		}
	}
	if r.TCPScanPorts != nil {
		cp.TCPScanPorts = make(map[uint16]*TCPPortAgg, len(r.TCPScanPorts))
		for port, agg := range r.TCPScanPorts {
			a := &TCPPortAgg{
				Packets:         agg.Packets,
				PacketsConsumer: agg.PacketsConsumer,
				DevicesConsumer: make(map[int]struct{}, len(agg.DevicesConsumer)),
				DevicesCPS:      make(map[int]struct{}, len(agg.DevicesCPS)),
			}
			for id := range agg.DevicesConsumer {
				a.DevicesConsumer[id] = struct{}{}
			}
			for id := range agg.DevicesCPS {
				a.DevicesCPS[id] = struct{}{}
			}
			cp.TCPScanPorts[port] = a
		}
	}
	if r.TCPPortHour != nil {
		cp.TCPPortHour = make(map[PortHour]uint64, len(r.TCPPortHour))
		for k, v := range r.TCPPortHour {
			cp.TCPPortHour[k] = v
		}
	}
	cp.Ingest = r.Ingest
	cp.Ingest.Faults = append([]HourFault(nil), r.Ingest.Faults...)
	return cp
}

// Snapshot exports an immutable copy of the running incremental result —
// the hook a long-running server uses to publish near-real-time state to
// consumers while ingestion continues. Unlike Result(), the returned
// value is fully detached: later Ingest calls never mutate it.
func (inc *Incremental) Snapshot() *Result {
	cp := inc.res.Clone()
	cp.Background.Sources = inc.bg.Estimate()
	return cp
}
