package correlate

// Clone returns a deep copy of the result: every map, slice, and nested
// accumulator is duplicated, so the copy can be published to concurrent
// readers (e.g. a serving snapshot) while the original keeps mutating.
func (r *Result) Clone() *Result {
	cp := &Result{
		Hours:      r.Hours,
		Background: r.Background,
		Devices:    make(map[int]*DeviceStats, len(r.Devices)),
	}
	for id, ds := range r.Devices {
		d := *ds
		if ds.BackscatterHourly != nil {
			d.BackscatterHourly = make(map[int]uint64, len(ds.BackscatterHourly))
			for h, v := range ds.BackscatterHourly {
				d.BackscatterHourly[h] = v
			}
		}
		cp.Devices[id] = &d
	}
	cp.Hourly = append([]HourStats(nil), r.Hourly...)
	if r.UDPPorts != nil {
		// The aggregates and their device lists are carved from fresh slabs
		// (one allocation each), mirroring how the merger builds them.
		aggs := make([]PortAgg, len(r.UDPPorts))
		total := 0
		for _, agg := range r.UDPPorts {
			total += len(agg.Devices)
		}
		backing := make([]int32, 0, total)
		cp.UDPPorts = make(map[uint16]*PortAgg, len(r.UDPPorts))
		i := 0
		for port, agg := range r.UDPPorts {
			a := &aggs[i]
			i++
			a.Packets = agg.Packets
			a.Devices = carve(&backing, agg.Devices)
			cp.UDPPorts[port] = a
		}
	}
	if r.TCPScanPorts != nil {
		aggs := make([]TCPPortAgg, len(r.TCPScanPorts))
		total := 0
		for _, agg := range r.TCPScanPorts {
			total += len(agg.DevicesConsumer) + len(agg.DevicesCPS)
		}
		backing := make([]int32, 0, total)
		cp.TCPScanPorts = make(map[uint16]*TCPPortAgg, len(r.TCPScanPorts))
		i := 0
		for port, agg := range r.TCPScanPorts {
			a := &aggs[i]
			i++
			a.Packets = agg.Packets
			a.PacketsConsumer = agg.PacketsConsumer
			a.DevicesConsumer = carve(&backing, agg.DevicesConsumer)
			a.DevicesCPS = carve(&backing, agg.DevicesCPS)
			cp.TCPScanPorts[port] = a
		}
	}
	if r.TCPPortHour != nil {
		cp.TCPPortHour = make(map[PortHour]uint64, len(r.TCPPortHour))
		for k, v := range r.TCPPortHour {
			cp.TCPPortHour[k] = v
		}
	}
	cp.Ingest = r.Ingest
	cp.Ingest.Faults = append([]HourFault(nil), r.Ingest.Faults...)
	return cp
}

// carve copies src into the shared backing array and returns the copy as a
// capacity-clamped sub-slice (nil stays nil).
func carve(backing *[]int32, src []int32) []int32 {
	if len(src) == 0 {
		return nil
	}
	lo := len(*backing)
	*backing = append(*backing, src...)
	return (*backing)[lo:len(*backing):len(*backing)]
}

// Snapshot exports an immutable copy of the running incremental result —
// the hook a long-running server uses to publish near-real-time state to
// consumers while ingestion continues. Unlike Result(), the returned
// value is fully detached: later Ingest calls never mutate it.
func (inc *Incremental) Snapshot() *Result {
	inc.st.finalizeResult(inc.res)
	cp := inc.res.Clone()
	cp.Background.Sources = inc.bg.Estimate()
	return cp
}
