package correlate

import (
	"context"
	"errors"
	"os"
	"reflect"
	"testing"

	"iotscope/internal/faultfs"
	"iotscope/internal/flowtuple"
	"iotscope/internal/wgen"
)

// damagedDataset generates a 6-hour dataset and injects the three
// operational failure modes of a live telescope feed: hour 2 bit-flipped
// (permanent corruption), hour 3 cleanly cut with no footer (in-progress
// shape, retryable), hour 4 missing entirely.
func damagedDataset(t *testing.T) (dir string, g *wgen.Generator) {
	t.Helper()
	sc := wgen.Default(0.002, 606)
	sc.Hours = 6
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir = t.TempDir()
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	// Hour 2: flip a bit inside the gzip stream — permanent corruption.
	if err := faultfs.BitFlip(flowtuple.HourPath(dir, 2), 1, 0x10); err != nil {
		t.Fatal(err)
	}
	// Hour 3: keep a clean prefix with no footer — retryable truncation.
	n, err := faultfs.UncompressedLen(flowtuple.HourPath(dir, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.RecompressPrefix(flowtuple.HourPath(dir, 3), n/2); err != nil {
		t.Fatal(err)
	}
	// Hour 4: never arrived.
	if err := os.Remove(flowtuple.HourPath(dir, 4)); err != nil {
		t.Fatal(err)
	}
	return dir, g
}

// sameData compares everything a downstream consumer reads, ignoring the
// ingestion bookkeeping (which legitimately differs between one-shot batch
// and retried incremental runs).
func sameData(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Hours != b.Hours {
		t.Fatalf("hours %d != %d", a.Hours, b.Hours)
	}
	if !reflect.DeepEqual(a.Devices, b.Devices) {
		t.Fatal("device stats diverged")
	}
	if !reflect.DeepEqual(a.Hourly, b.Hourly) {
		t.Fatal("hourly stats diverged")
	}
	if !reflect.DeepEqual(a.UDPPorts, b.UDPPorts) {
		t.Fatal("UDP port tables diverged")
	}
	if !reflect.DeepEqual(a.TCPScanPorts, b.TCPScanPorts) {
		t.Fatal("TCP port tables diverged")
	}
	if !reflect.DeepEqual(a.TCPPortHour, b.TCPPortHour) {
		t.Fatal("port-hour series diverged")
	}
	if a.Background != b.Background {
		t.Fatalf("background diverged: %+v vs %+v", a.Background, b.Background)
	}
}

func TestStrictFailsFastDeterministically(t *testing.T) {
	dir, g := damagedDataset(t)
	c := New(g.Inventory(), Options{Workers: 3})
	for i := 0; i < 3; i++ {
		_, err := c.ProcessDataset(context.Background(), dir)
		if err == nil {
			t.Fatal("strict mode accepted damaged dataset")
		}
		if !errors.Is(err, flowtuple.ErrBadFormat) {
			t.Fatalf("strict error does not wrap ErrBadFormat: %v", err)
		}
		// Deterministic: always the lowest damaged hour regardless of
		// worker scheduling — hour 2's permanent corruption, never hour
		// 3's truncation.
		if errors.Is(err, flowtuple.ErrTruncated) {
			t.Fatalf("strict error should be hour 2's permanent corruption, got %v", err)
		}
	}
}

func TestLenientBatchQuarantinesAndContinues(t *testing.T) {
	dir, g := damagedDataset(t)
	c := New(g.Inventory(), Options{Workers: 3, FaultPolicy: Lenient})
	res, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Ingest
	if st.HoursOK != 3 {
		t.Fatalf("hours ok %d, want 3 (hours 0, 1, 5)", st.HoursOK)
	}
	if st.HoursQuarantined != 2 {
		t.Fatalf("hours quarantined %d, want 2", st.HoursQuarantined)
	}
	if len(st.Faults) != 2 || st.Faults[0].Hour != 2 || st.Faults[1].Hour != 3 {
		t.Fatalf("faults %+v", st.Faults)
	}
	for _, f := range st.Faults {
		if !errors.Is(f.Err, flowtuple.ErrBadFormat) {
			t.Fatalf("hour %d fault does not wrap ErrBadFormat: %v", f.Hour, f.Err)
		}
	}
	if st.Faults[0].Retryable {
		t.Fatal("bit-flipped hour classified retryable")
	}
	if !st.Faults[1].Retryable {
		t.Fatal("truncated in-progress hour classified permanent")
	}
	// The damaged hours contributed nothing; the healthy ones everything.
	for _, h := range []int{2, 3, 4} {
		if res.Hourly[h].RecordsIoT != 0 {
			t.Fatalf("quarantined hour %d leaked records into the result", h)
		}
	}
	if res.TotalIoTPackets() == 0 {
		t.Fatal("healthy hours missing from lenient result")
	}
}

// The acceptance scenario: lenient batch and lenient incremental (with
// retries and an eventual quarantine) agree exactly on the valid hours.
func TestLenientBatchIncrementalEquivalence(t *testing.T) {
	dir, g := damagedDataset(t)
	c := New(g.Inventory(), Options{FaultPolicy: Lenient})
	batch, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}

	inc, err := c.NewIncremental(6)
	if err != nil {
		t.Fatal(err)
	}
	hours, err := flowtuple.DatasetHours(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hours) != 5 {
		t.Fatalf("present hours %v", hours)
	}
	for _, h := range hours {
		_, err := inc.Ingest(context.Background(), dir, h)
		switch h {
		case 2:
			if err == nil || IsRetryable(err) {
				t.Fatalf("hour 2: want permanent error, got %v", err)
			}
			if !inc.Quarantined(2) {
				t.Fatal("permanent fault did not auto-quarantine")
			}
			// A second attempt is rejected outright.
			if _, err := inc.Ingest(context.Background(), dir, 2); err == nil {
				t.Fatal("quarantined hour re-ingested")
			}
		case 3:
			if err == nil || !IsRetryable(err) {
				t.Fatalf("hour 3: want retryable error, got %v", err)
			}
			// Retry twice (file never completes), then give up.
			for i := 0; i < 2; i++ {
				if _, err := inc.Ingest(context.Background(), dir, 3); err == nil || !IsRetryable(err) {
					t.Fatalf("hour 3 retry %d: %v", i, err)
				}
			}
			inc.Quarantine(3, err)
		default:
			if err != nil {
				t.Fatalf("healthy hour %d: %v", h, err)
			}
		}
	}
	live := inc.Result()
	sameData(t, batch, live)

	st := inc.Stats()
	if st.HoursOK != 3 || st.HoursQuarantined != 2 || st.HoursRetried != 0 {
		t.Fatalf("incremental stats %+v", st)
	}
	if len(st.Faults) != 2 || st.Faults[1].Attempts != 3 {
		t.Fatalf("faults %+v", st.Faults)
	}
	if inc.HoursIngested() != 3 {
		t.Fatalf("hours ingested %d", inc.HoursIngested())
	}
}

// An hour that fails while being written and succeeds once the writer
// finishes counts as retried, and its fault entry clears.
func TestIncrementalRetrySucceeds(t *testing.T) {
	sc := wgen.Default(0.002, 607)
	sc.Hours = 2
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	// Stash the complete hour 1, then publish an in-progress cut of it.
	path := flowtuple.HourPath(dir, 1)
	complete, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := faultfs.UncompressedLen(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.RecompressPrefix(path, n/3); err != nil {
		t.Fatal(err)
	}

	c := New(g.Inventory(), Options{FaultPolicy: Lenient})
	inc, err := c.NewIncremental(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Ingest(context.Background(), dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Ingest(context.Background(), dir, 1); err == nil || !IsRetryable(err) {
		t.Fatalf("in-progress hour: %v", err)
	}
	// The writer finishes; the retry succeeds.
	if err := os.WriteFile(path, complete, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Ingest(context.Background(), dir, 1); err != nil {
		t.Fatalf("retry after completion: %v", err)
	}
	st := inc.Stats()
	if st.HoursOK != 2 || st.HoursRetried != 1 || st.HoursQuarantined != 0 || len(st.Faults) != 0 {
		t.Fatalf("stats %+v", st)
	}

	// The final state matches a batch run over the completed dataset.
	batch, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	sameData(t, batch, inc.Result())
}

func TestStrictIncrementalRecordsNothing(t *testing.T) {
	dir, g := damagedDataset(t)
	c := New(g.Inventory(), Options{}) // strict
	inc, err := c.NewIncremental(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Ingest(context.Background(), dir, 2); err == nil {
		t.Fatal("corrupt hour accepted")
	}
	if inc.Quarantined(2) {
		t.Fatal("strict mode quarantined an hour")
	}
	st := inc.Stats()
	if st.HoursQuarantined != 0 || len(st.Faults) != 0 {
		t.Fatalf("strict mode recorded faults: %+v", st)
	}
	// Strict callers may still retry manually: the hour stays open.
	if _, err := inc.Ingest(context.Background(), dir, 2); err == nil {
		t.Fatal("corrupt hour accepted on retry")
	}
}
