package correlate

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// The sharded path's contract is byte-identity: for any power-of-two shard
// count, the merged Result's canonical Export must equal the unsharded
// oracle's, under both fault policies, both counter modes, and any worker
// count. These tests are the proof; internal/resultstore carries the
// companion test that the identity survives the on-disk codec.

// requireSameExport compares two Results through the canonical Export
// encoding — the exact surface resultstore serializes.
func requireSameExport(t *testing.T, want, got *Result) {
	t.Helper()
	we, ge := want.Export(), got.Export()
	if reflect.DeepEqual(we, ge) {
		return
	}
	if !reflect.DeepEqual(we.Hourly, ge.Hourly) {
		for h := range we.Hourly {
			if !reflect.DeepEqual(we.Hourly[h], ge.Hourly[h]) {
				t.Fatalf("hour %d diverged:\n oracle  %+v\n sharded %+v", h, we.Hourly[h], ge.Hourly[h])
			}
		}
	}
	if !reflect.DeepEqual(we.Devices, ge.Devices) {
		t.Fatalf("device exports diverged (oracle %d devices, sharded %d)", len(we.Devices), len(ge.Devices))
	}
	if !reflect.DeepEqual(we.UDPPorts, ge.UDPPorts) {
		t.Fatal("UDP port exports diverged")
	}
	if !reflect.DeepEqual(we.TCPScanPorts, ge.TCPScanPorts) {
		t.Fatal("TCP scan port exports diverged")
	}
	if !reflect.DeepEqual(we.TCPPortHour, ge.TCPPortHour) {
		t.Fatal("port-hour exports diverged")
	}
	if we.Background != ge.Background {
		t.Fatalf("background diverged: oracle %+v sharded %+v", we.Background, ge.Background)
	}
	if !reflect.DeepEqual(we.Faults, ge.Faults) {
		t.Fatalf("fault exports diverged:\n oracle  %+v\n sharded %+v", we.Faults, ge.Faults)
	}
	t.Fatalf("exports diverged:\n oracle  %+v\n sharded %+v", we, ge)
}

func TestShardOf(t *testing.T) {
	cases := []struct {
		ip     uint32
		shards int
		want   int
	}{
		{0xFFFFFFFF, 1, 0},
		{0xFFFFFFFF, 2, 1},
		{0x7FFFFFFF, 2, 0},
		{0xFFFFFFFF, 4, 3},
		{0x40000000, 4, 1},
		{0x0A000001, 256, 0x0A},
		{0xC0A80101, 256, 0xC0},
	}
	for _, c := range cases {
		if got := ShardOf(c.ip, c.shards); got != c.want {
			t.Errorf("ShardOf(%#x, %d) = %d, want %d", c.ip, c.shards, got, c.want)
		}
	}
}

// Strict policy, clean dataset, exact counters: every power-of-two shard
// count reproduces the unsharded oracle exactly, at one worker and eight.
func TestShardedMatchesOracleStrict(t *testing.T) {
	dir, g := cleanDataset(t, 97, 6)
	oracle, err := New(g.Inventory(), Options{Workers: 4}).ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		for _, shards := range []int{1, 2, 4, 8} {
			c := New(g.Inventory(), Options{Workers: workers, Shards: shards})
			got, reports, err := c.ProcessDatasetSharded(context.Background(), dir)
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
			}
			requireSameExport(t, oracle, got)
			if len(reports) != shards {
				t.Fatalf("workers=%d shards=%d: %d reports", workers, shards, len(reports))
			}
			devs := 0
			var iot uint64
			for _, r := range reports {
				devs += r.Devices
				iot += r.RecordsIoT
				if r.RetainedBytes == 0 {
					t.Fatalf("shard %d reports zero retained bytes", r.Shard)
				}
			}
			if devs != len(got.Devices) {
				t.Fatalf("reports count %d devices, result has %d", devs, len(got.Devices))
			}
			var wantIoT uint64
			for i := range got.Hourly {
				wantIoT += got.Hourly[i].RecordsIoT
			}
			if iot != wantIoT {
				t.Fatalf("reports count %d IoT records, result has %d", iot, wantIoT)
			}
		}
	}
}

// Lenient policy over a damaged dataset: the sharded run quarantines the
// same hours with the same fault records and matches the oracle on
// everything the healthy hours contributed.
func TestShardedMatchesOracleLenient(t *testing.T) {
	dir, g := damagedDataset(t)
	oracle, err := New(g.Inventory(), Options{Workers: 4, FaultPolicy: Lenient}).
		ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 8} {
		c := New(g.Inventory(), Options{Workers: 4, FaultPolicy: Lenient, Shards: shards})
		got, _, err := c.ProcessDatasetSharded(context.Background(), dir)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		requireSameExport(t, oracle, got)
		if got.Ingest.HoursOK != 3 || got.Ingest.HoursQuarantined != 2 {
			t.Fatalf("shards=%d: ingest %+v", shards, got.Ingest)
		}
	}
}

// Sketch mode: HLL register-wise max across shards must reproduce the
// unpartitioned registers, hence identical estimates.
func TestShardedMatchesOracleSketches(t *testing.T) {
	dir, g := cleanDataset(t, 98, 5)
	oracle, err := New(g.Inventory(), Options{Workers: 4, UseSketches: true, SketchPrecision: 12}).
		ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	c := New(g.Inventory(), Options{Workers: 4, UseSketches: true, SketchPrecision: 12, Shards: 4})
	got, _, err := c.ProcessDatasetSharded(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	requireSameExport(t, oracle, got)
}

// Strict policy over a damaged dataset: the sharded coordinator fails with
// the same deterministic lowest-hour error as the single path.
func TestShardedStrictError(t *testing.T) {
	dir, g := damagedDataset(t)
	_, wantErr := New(g.Inventory(), Options{Workers: 4}).ProcessDataset(context.Background(), dir)
	if wantErr == nil {
		t.Fatal("oracle unexpectedly succeeded on damaged dataset")
	}
	c := New(g.Inventory(), Options{Workers: 4, Shards: 4})
	_, _, err := c.ProcessDatasetSharded(context.Background(), dir)
	if err == nil {
		t.Fatal("sharded run unexpectedly succeeded on damaged dataset")
	}
	if err.Error() != wantErr.Error() {
		t.Fatalf("sharded error %q, oracle error %q", err, wantErr)
	}
}

// The incremental engine is an independent second oracle: ingest the same
// hours one by one and demand the sharded batch run agrees on every
// downstream surface.
func TestShardedMatchesIncremental(t *testing.T) {
	dir, g := cleanDataset(t, 99, 5)
	c := New(g.Inventory(), Options{Workers: 2})
	inc, err := c.NewIncremental(5)
	if err != nil {
		t.Fatal(err)
	}
	for hour := 0; hour < 5; hour++ {
		if _, err := inc.Ingest(context.Background(), dir, hour); err != nil {
			t.Fatal(err)
		}
	}
	want := inc.Result()
	cs := New(g.Inventory(), Options{Workers: 2, Shards: 4})
	got, _, err := cs.ProcessDatasetSharded(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	sameData(t, want, got)
}

func TestShardedRejectsNonPowerOfTwo(t *testing.T) {
	dir, g := cleanDataset(t, 100, 2)
	c := New(g.Inventory(), Options{Workers: 2, Shards: 3})
	_, err := c.ProcessDataset(context.Background(), dir)
	if err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("got %v, want power-of-two rejection", err)
	}
}

// A budget below the fixed footprint fails fast at startup, before any
// hour is read, with the sentinel and the sizing numbers.
func TestShardMemoryBudgetStartup(t *testing.T) {
	dir, g := cleanDataset(t, 101, 3)
	c := New(g.Inventory(), Options{Workers: 2, Shards: 4, ShardMemoryBudget: 1024})
	_, _, err := c.ProcessDatasetSharded(context.Background(), dir)
	if !errors.Is(err, ErrShardMemory) {
		t.Fatalf("got %v, want ErrShardMemory", err)
	}
	var me *ShardMemoryError
	if !errors.As(err, &me) {
		t.Fatalf("got %T, want *ShardMemoryError", err)
	}
	if me.Shard != -1 || me.Hour != -1 {
		t.Fatalf("startup failure should carry Shard=-1 Hour=-1, got %+v", me)
	}
	if me.Required <= me.Budget {
		t.Fatalf("diagnostic says required %d <= budget %d", me.Required, me.Budget)
	}
	// The single-merger path honors the same pre-flight ceiling.
	c1 := New(g.Inventory(), Options{Workers: 2, Shards: 1, ShardMemoryBudget: 1024})
	if _, _, err := c1.ProcessDatasetSharded(context.Background(), dir); !errors.Is(err, ErrShardMemory) {
		t.Fatalf("single-shard path: got %v, want ErrShardMemory", err)
	}
}

// A budget that admits the fixed footprint but not the retained surfaces
// trips at run time, naming the shard and hour that overran.
func TestShardMemoryBudgetRuntime(t *testing.T) {
	dir, g := cleanDataset(t, 102, 4)
	probe := New(g.Inventory(), Options{Workers: 2, Shards: 2})
	budget := probe.shardFixedFootprint(4) + 8
	c := New(g.Inventory(), Options{Workers: 2, Shards: 2, ShardMemoryBudget: budget})
	_, _, err := c.ProcessDatasetSharded(context.Background(), dir)
	if !errors.Is(err, ErrShardMemory) {
		t.Fatalf("got %v, want ErrShardMemory", err)
	}
	var me *ShardMemoryError
	if !errors.As(err, &me) {
		t.Fatalf("got %T, want *ShardMemoryError", err)
	}
	if me.Shard < 0 || me.Shard >= 2 || me.Hour < 0 {
		t.Fatalf("runtime failure should name shard and hour, got %+v", me)
	}
	// The pool must still be clean: a follow-up unlimited run succeeds.
	c2 := New(g.Inventory(), Options{Workers: 2, Shards: 2})
	if _, _, err := c2.ProcessDatasetSharded(context.Background(), dir); err != nil {
		t.Fatalf("follow-up run after budget trip: %v", err)
	}
}

// Cancellation surfaces ctx.Err() and records no faults, exactly like the
// single-merger path.
func TestShardedCancellation(t *testing.T) {
	dir, g := cleanDataset(t, 103, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(g.Inventory(), Options{Workers: 2, Shards: 4, FaultPolicy: Lenient})
	_, _, err := c.ProcessDatasetSharded(ctx, dir)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// MergeShards rejects incomplete or inconsistent partial sets with
// ErrBadFormat-family errors.
func TestMergeShardsValidation(t *testing.T) {
	mk := func(shard, shards int) *ShardPartial {
		return &ShardPartial{Shard: shard, Shards: shards, Export: &ResultExport{Hours: 1}}
	}
	cases := map[string][]*ShardPartial{
		"empty":        {},
		"short set":    {mk(0, 2)},
		"nil partial":  {mk(0, 2), nil},
		"nil export":   {mk(0, 2), {Shard: 1, Shards: 2}},
		"duplicate id": {mk(0, 2), mk(0, 2)},
		"id range":     {mk(0, 2), mk(5, 2)},
		"shard count":  {mk(0, 2), {Shard: 1, Shards: 4, Export: &ResultExport{Hours: 1}}},
		"hour span": {mk(0, 2), {
			Shard: 1, Shards: 2, Export: &ResultExport{Hours: 3},
		}},
	}
	for name, partials := range cases {
		if _, err := MergeShards(partials); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: got %v, want ErrBadFormat", name, err)
		}
	}
}
