package correlate

import (
	"context"
	"os"
	"reflect"
	"testing"

	"iotscope/internal/wgen"
)

// buildSnapshotWorld renders a small dataset for snapshot tests.
func buildSnapshotWorld(t *testing.T) (string, *Correlator, int) {
	t.Helper()
	dir, err := os.MkdirTemp("", "corr-snap-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	sc := wgen.Default(0.002, 77)
	sc.Hours = 6
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	return dir, New(g.Inventory(), Options{}), sc.Hours
}

func TestSnapshotIsDetached(t *testing.T) {
	dir, c, hours := buildSnapshotWorld(t)
	inc, err := c.NewIncremental(hours)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 3; h++ {
		if _, err := inc.Ingest(context.Background(), dir, h); err != nil {
			t.Fatal(err)
		}
	}
	snap := inc.Snapshot()
	devs := len(snap.Devices)
	pkts := snap.TotalIoTPackets()
	if devs == 0 || pkts == 0 {
		t.Fatal("empty snapshot after 3 ingested hours")
	}

	// Further ingestion must not leak into the exported snapshot.
	for h := 3; h < hours; h++ {
		if _, err := inc.Ingest(context.Background(), dir, h); err != nil {
			t.Fatal(err)
		}
	}
	if len(snap.Devices) != devs || snap.TotalIoTPackets() != pkts {
		t.Fatalf("snapshot mutated by later ingest: devices %d->%d packets %d->%d",
			devs, len(snap.Devices), pkts, snap.TotalIoTPackets())
	}
	live := inc.Result()
	if live.TotalIoTPackets() <= pkts {
		t.Fatal("live result did not grow past the snapshot")
	}

	// Mutating the snapshot must not reach the live result either.
	for _, d := range snap.Devices {
		d.Records += 1 << 40
		for h := range d.BackscatterHourly {
			d.BackscatterHourly[h] += 1 << 40
		}
		break
	}
	for _, d := range live.Devices {
		if d.Records >= 1<<40 {
			t.Fatal("snapshot mutation visible in live result")
		}
	}
}

func TestCloneEqualsOriginal(t *testing.T) {
	dir, c, hours := buildSnapshotWorld(t)
	inc, err := c.NewIncremental(hours)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < hours; h++ {
		if _, err := inc.Ingest(context.Background(), dir, h); err != nil {
			t.Fatal(err)
		}
	}
	orig := inc.Result()
	cp := orig.Clone()
	if !reflect.DeepEqual(orig.Devices, cp.Devices) {
		t.Fatal("device stats differ after clone")
	}
	if !reflect.DeepEqual(orig.Hourly, cp.Hourly) {
		t.Fatal("hourly stats differ after clone")
	}
	if !reflect.DeepEqual(orig.UDPPorts, cp.UDPPorts) ||
		!reflect.DeepEqual(orig.TCPScanPorts, cp.TCPScanPorts) ||
		!reflect.DeepEqual(orig.TCPPortHour, cp.TCPPortHour) {
		t.Fatal("port aggregates differ after clone")
	}
	if orig.TotalIoTPackets() != cp.TotalIoTPackets() {
		t.Fatal("packet totals differ after clone")
	}
	// Shared pointers would make the copies equal but not detached.
	for id := range orig.Devices {
		if orig.Devices[id] == cp.Devices[id] {
			t.Fatal("clone shares DeviceStats pointers")
		}
	}
}
