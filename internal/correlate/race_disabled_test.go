//go:build !race

package correlate

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
