package correlate

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// Cancellation contract (see ProcessDataset and Incremental.Ingest): a
// canceled context surfaces as ctx.Err() promptly, spawns no leaked
// goroutines, records no fault or quarantine, and leaves the pooled hour
// scratch clean enough that the very next run over the same correlator
// state is byte-identical to a fresh one.

// TestProcessDatasetPreCanceled: an already-canceled context returns
// context.Canceled before any hour is processed.
func TestProcessDatasetPreCanceled(t *testing.T) {
	dir, g := cleanDataset(t, 47, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		c := New(g.Inventory(), Options{Workers: workers})
		res, err := c.ProcessDataset(ctx, dir)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Fatalf("workers=%d: partial result %+v leaked past cancellation", workers, res)
		}
	}
}

// TestProcessDatasetCancelMidRun: cancelling while workers are mid-dataset
// returns context.Canceled within a tight bound, leaks no goroutines, and
// the correlator remains reusable — a follow-up uncancelled run produces
// the same Result as a never-cancelled correlator (the scratch pool was
// not poisoned by partially-filled hour accumulators).
func TestProcessDatasetCancelMidRun(t *testing.T) {
	dir, g := cleanDataset(t, 48, 12)

	ref := New(g.Inventory(), Options{Workers: 4})
	want, err := ref.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}

	c := New(g.Inventory(), Options{Workers: 4})
	baseline := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i)*200*time.Microsecond)
		start := time.Now()
		res, err := c.ProcessDataset(ctx, dir)
		elapsed := time.Since(start)
		cancel()
		if err == nil {
			// The dataset is small; a generous deadline can win the race.
			// That is the success path, already covered elsewhere.
			requireIdentical(t, want, res)
			continue
		}
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			t.Fatalf("iter %d: err = %v, want a context error", i, err)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("iter %d: cancellation took %v, want prompt return", i, elapsed)
		}
	}

	// Give any straggler goroutines a moment to exit, then demand the
	// count has settled back to (about) where it started.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked across cancelled runs: %d -> %d\n%s",
			baseline, n, buf[:runtime.Stack(buf, true)])
	}

	// The same correlator instance — and therefore the same scratch pool
	// that absorbed every cancelled run's buffers — must still produce a
	// byte-identical Result.
	got, err := c.ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, got)
}

// TestIngestCancelNoFault: a canceled Ingest is not a fault — nothing is
// recorded in IngestStats, the hour is not quarantined, and the hour can
// be ingested successfully afterwards.
func TestIngestCancelNoFault(t *testing.T) {
	dir, g := cleanDataset(t, 49, 4)
	inc, err := New(g.Inventory(), Options{FaultPolicy: Lenient}).NewIncremental(4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inc.Ingest(ctx, dir, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := inc.Stats()
	if st.HoursRetried != 0 || st.HoursQuarantined != 0 || len(st.Faults) != 0 {
		t.Fatalf("cancellation was booked as a fault: %+v", st)
	}
	if inc.Quarantined(2) {
		t.Fatal("cancelled hour was quarantined")
	}
	if _, err := inc.Ingest(context.Background(), dir, 2); err != nil {
		t.Fatalf("hour unusable after cancelled attempt: %v", err)
	}
	if inc.HoursIngested() != 1 {
		t.Fatalf("HoursIngested = %d, want 1", inc.HoursIngested())
	}
}
