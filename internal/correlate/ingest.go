package correlate

import (
	"encoding/json"
	"errors"
	"io/fs"
	"sort"

	"iotscope/internal/flowtuple"
)

// FaultPolicy selects how the correlator reacts to unreadable hour files.
type FaultPolicy int

const (
	// Strict aborts on the first unreadable hour file (the default, and
	// the right mode for reproducing published numbers: a silent gap would
	// skew every table downstream).
	Strict FaultPolicy = iota
	// Lenient quarantines unreadable hours and keeps going — the
	// operational mode for a live telescope feed, where hour files arrive
	// late, partially written, or corrupted. A quarantined hour's partial
	// accumulators are discarded atomically (nothing is merged until the
	// whole file has read cleanly), the fault is recorded in
	// Result.Ingest, and every healthy hour is still ingested.
	Lenient
)

func (p FaultPolicy) String() string {
	if p == Lenient {
		return "lenient"
	}
	return "strict"
}

// HourFault records one hour file that failed to ingest. Err preserves the
// wrapped cause (errors.Is against flowtuple.ErrBadFormat and
// flowtuple.ErrTruncated work); the JSON form carries its message.
type HourFault struct {
	Hour      int
	Err       error
	Retryable bool
	Attempts  int
}

// MarshalJSON flattens the wrapped error into its message.
func (f HourFault) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Hour      int    `json:"hour"`
		Error     string `json:"error"`
		Retryable bool   `json:"retryable"`
		Attempts  int    `json:"attempts,omitempty"`
	}{f.Hour, f.Err.Error(), f.Retryable, f.Attempts})
}

// IngestStats summarizes ingestion health across a dataset's hour files.
type IngestStats struct {
	// HoursOK counts hours ingested successfully.
	HoursOK int `json:"hoursOk"`
	// HoursRetried counts hours that failed at least one retryable
	// attempt before eventually ingesting successfully.
	HoursRetried int `json:"hoursRetried"`
	// HoursQuarantined counts hours abandoned permanently.
	HoursQuarantined int `json:"hoursQuarantined"`
	// Faults holds one entry per hour that is currently failed or
	// quarantined, ascending by hour. An hour that recovers on retry is
	// removed (and counted under HoursRetried).
	Faults []HourFault `json:"faults,omitempty"`
}

func (s *IngestStats) fault(hour int) *HourFault {
	for i := range s.Faults {
		if s.Faults[i].Hour == hour {
			return &s.Faults[i]
		}
	}
	return nil
}

// noteFailure records or refreshes the fault entry for an hour.
func (s *IngestStats) noteFailure(hour int, err error, retryable bool) {
	if f := s.fault(hour); f != nil {
		f.Err = err
		f.Retryable = retryable
		f.Attempts++
		return
	}
	s.Faults = append(s.Faults, HourFault{Hour: hour, Err: err, Retryable: retryable, Attempts: 1})
	sort.Slice(s.Faults, func(i, j int) bool { return s.Faults[i].Hour < s.Faults[j].Hour })
}

// noteQuarantine marks an hour abandoned without counting an attempt: it
// keeps the attempt tally from prior failures, creating an entry only if
// the hour has none (e.g. quarantined by policy before any ingest).
func (s *IngestStats) noteQuarantine(hour int, err error, retryable bool) {
	if s.fault(hour) == nil {
		s.Faults = append(s.Faults, HourFault{Hour: hour, Err: err, Retryable: retryable})
		sort.Slice(s.Faults, func(i, j int) bool { return s.Faults[i].Hour < s.Faults[j].Hour })
	}
	s.HoursQuarantined++
}

// noteSuccess clears any pending fault for the hour and updates counters.
func (s *IngestStats) noteSuccess(hour int) {
	s.HoursOK++
	for i := range s.Faults {
		if s.Faults[i].Hour == hour {
			s.Faults = append(s.Faults[:i], s.Faults[i+1:]...)
			s.HoursRetried++
			return
		}
	}
}

// IsRetryable reports whether an ingest error may resolve on its own: the
// hour file ends early (a non-atomic producer may still be writing it) or
// does not exist yet. Structural corruption — bad magic, checksum
// failures, framing damage — is permanent.
func IsRetryable(err error) bool {
	return errors.Is(err, flowtuple.ErrTruncated) || errors.Is(err, fs.ErrNotExist)
}
