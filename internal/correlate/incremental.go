package correlate

import (
	"fmt"
	"sort"

	"iotscope/internal/sketch"
)

// Incremental is the near-real-time mode the paper's Discussion targets
// ("automate the devised methodologies to index, in near real-time,
// unsolicited Internet-scale IoT devices"): hour files are ingested as they
// arrive, the running Result stays queryable between hours, and each
// ingest reports the devices discovered for the first time.
type Incremental struct {
	c     *Correlator
	res   *Result
	bg    *sketch.HLL
	hours map[int]bool
}

// NewIncremental returns an incremental correlator sized for up to
// maxHours hour slots.
func (c *Correlator) NewIncremental(maxHours int) (*Incremental, error) {
	if maxHours <= 0 {
		return nil, fmt.Errorf("correlate: maxHours %d must be positive", maxHours)
	}
	bg, err := sketch.NewHLL(c.opts.SketchPrecision)
	if err != nil {
		return nil, err
	}
	return &Incremental{
		c:     c,
		res:   newResult(maxHours),
		bg:    bg,
		hours: make(map[int]bool, maxHours),
	}, nil
}

// Ingest processes one newly arrived hour file and returns the IDs of
// devices seen for the first time (the near-real-time notification feed),
// ascending. Ingesting the same hour twice is rejected.
func (inc *Incremental) Ingest(dir string, hour int) ([]int, error) {
	if hour < 0 || hour >= len(inc.res.Hourly) {
		return nil, fmt.Errorf("correlate: hour %d outside [0, %d)", hour, len(inc.res.Hourly))
	}
	if inc.hours[hour] {
		return nil, fmt.Errorf("correlate: hour %d already ingested", hour)
	}
	part, err := inc.c.processHourFile(dir, hour)
	if err != nil {
		return nil, err
	}
	var fresh []int
	for id := range part.devices {
		if _, known := inc.res.Devices[id]; !known {
			fresh = append(fresh, id)
		}
	}
	sort.Ints(fresh)
	mergePartial(inc.res, part, inc.bg)
	inc.hours[hour] = true
	return fresh, nil
}

// HoursIngested returns how many hour files have been folded in.
func (inc *Incremental) HoursIngested() int { return len(inc.hours) }

// Result returns the live running result. The caller must not retain it
// across Ingest calls if it needs a stable snapshot.
func (inc *Incremental) Result() *Result {
	inc.res.Background.Sources = inc.bg.Estimate()
	return inc.res
}
