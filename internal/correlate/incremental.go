package correlate

import (
	"context"
	"fmt"
	"sort"

	"iotscope/internal/sketch"
)

// Incremental is the near-real-time mode the paper's Discussion targets
// ("automate the devised methodologies to index, in near real-time,
// unsolicited Internet-scale IoT devices"): hour files are ingested as they
// arrive, the running Result stays queryable between hours, and each
// ingest reports the devices discovered for the first time.
//
// Under Options.FaultPolicy == Lenient, Ingest distinguishes retryable
// failures (the file ends early — a non-atomic producer may still be
// writing it — or does not exist yet) from permanent corruption: permanent
// faults quarantine the hour immediately, retryable ones leave it eligible
// for another Ingest, and the caller decides when to give up via
// Quarantine. Either way a failed hour contributes nothing to the running
// result: partial accumulators are discarded whole.
type Incremental struct {
	c           *Correlator
	res         *Result
	bg          *sketch.HLL
	st          *mergeState
	hours       map[int]bool
	quarantined map[int]bool
}

// NewIncremental returns an incremental correlator sized for up to
// maxHours hour slots.
func (c *Correlator) NewIncremental(maxHours int) (*Incremental, error) {
	if maxHours <= 0 {
		return nil, fmt.Errorf("correlate: maxHours %d must be positive", maxHours)
	}
	bg, err := sketch.NewHLL(c.opts.SketchPrecision)
	if err != nil {
		return nil, err
	}
	return &Incremental{
		c:           c,
		res:         newResult(maxHours),
		bg:          bg,
		st:          newMergeState(),
		hours:       make(map[int]bool, maxHours),
		quarantined: make(map[int]bool),
	}, nil
}

// Ingest processes one newly arrived hour file and returns the IDs of
// devices seen for the first time (the near-real-time notification feed),
// ascending. Ingesting the same hour twice is rejected, as is an hour that
// has been quarantined.
//
// On failure the hour's partial accumulators are discarded atomically and
// the returned error wraps the cause (test with IsRetryable and
// flowtuple.ErrBadFormat). Under the Lenient policy the fault is also
// recorded in the running IngestStats, and permanent corruption
// quarantines the hour; retryable failures leave it open for another try.
//
// Cancelling ctx mid-ingest returns ctx.Err() without recording a fault or
// quarantining the hour — it stays eligible for a later Ingest, and the
// partial accumulators are discarded whole exactly as on a fault.
func (inc *Incremental) Ingest(ctx context.Context, dir string, hour int) ([]int, error) {
	if hour < 0 || hour >= len(inc.res.Hourly) {
		return nil, fmt.Errorf("correlate: hour %d outside [0, %d)", hour, len(inc.res.Hourly))
	}
	if inc.hours[hour] {
		return nil, fmt.Errorf("correlate: hour %d already ingested", hour)
	}
	if inc.quarantined[hour] {
		return nil, fmt.Errorf("correlate: hour %d quarantined", hour)
	}
	part, err := inc.c.processHourDense(ctx, dir, hour)
	if err != nil {
		if inc.c.opts.FaultPolicy == Lenient && !isCtxErr(err) {
			retryable := IsRetryable(err)
			inc.res.Ingest.noteFailure(hour, err, retryable)
			if !retryable {
				inc.quarantined[hour] = true
				inc.res.Ingest.HoursQuarantined++
			}
		}
		return nil, err
	}
	var fresh []int
	for _, idx := range part.touched {
		if !inc.st.knownDevice(idx) {
			fresh = append(fresh, int(idx))
		}
	}
	sort.Ints(fresh)
	mergeDense(inc.res, part, inc.bg, inc.st)
	inc.c.putScratch(part)
	inc.hours[hour] = true
	inc.res.Ingest.noteSuccess(hour)
	return fresh, nil
}

// Quarantine abandons an hour permanently — typically after the caller has
// exhausted retries on a retryable fault. It is idempotent and a no-op for
// hours already ingested.
func (inc *Incremental) Quarantine(hour int, err error) {
	if inc.hours[hour] || inc.quarantined[hour] {
		return
	}
	inc.quarantined[hour] = true
	inc.res.Ingest.noteQuarantine(hour, err, IsRetryable(err))
}

// Quarantined reports whether the hour has been abandoned.
func (inc *Incremental) Quarantined(hour int) bool { return inc.quarantined[hour] }

// Stats returns a snapshot of the running ingestion statistics.
func (inc *Incremental) Stats() IngestStats {
	s := inc.res.Ingest
	s.Faults = append([]HourFault(nil), inc.res.Ingest.Faults...)
	return s
}

// HoursIngested returns how many hour files have been folded in.
func (inc *Incremental) HoursIngested() int { return len(inc.hours) }

// Result returns the live running result. The caller must not retain it
// across Ingest calls if it needs a stable snapshot. The per-port device
// lists are materialized here (not per Ingest), so ingestion itself stays
// allocation-light.
func (inc *Incremental) Result() *Result {
	inc.st.finalizeResult(inc.res)
	inc.res.Background.Sources = inc.bg.Estimate()
	return inc.res
}
