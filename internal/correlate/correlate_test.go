package correlate

import (
	"context"
	"testing"

	"iotscope/internal/classify"
	"iotscope/internal/devicedb"
	"iotscope/internal/flowtuple"
	"iotscope/internal/netx"
	"iotscope/internal/telescope"
	"iotscope/internal/wgen"
)

// buildTinyDataset writes a handcrafted 2-hour dataset with one consumer
// device, one CPS device, and one background source.
func buildTinyDataset(t *testing.T) (dir string, inv *devicedb.Inventory) {
	t.Helper()
	dir = t.TempDir()
	consumerIP := netx.MustParseAddr("1.2.3.4")
	cpsIP := netx.MustParseAddr("5.6.7.8")
	bgIP := netx.MustParseAddr("9.9.9.9")
	var err error
	inv, err = devicedb.NewInventory([]devicedb.Device{
		{ID: 0, IP: consumerIP, Category: devicedb.Consumer, Type: devicedb.TypeRouter, Country: "RU"},
		{ID: 1, IP: cpsIP, Category: devicedb.CPS, Type: devicedb.TypeCPS, Country: "CN",
			Services: []string{"Ethernet/IP"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	tel := telescope.New(netx.MustParsePrefix("44.0.0.0/8"))
	col := telescope.NewCollector(tel, dir)
	dark1 := uint32(netx.MustParseAddr("44.0.0.1"))
	dark2 := uint32(netx.MustParseAddr("44.0.0.2"))

	// Hour 0: consumer scans Telnet on two destinations; CPS sends UDP.
	if err := col.BeginHour(0); err != nil {
		t.Fatal(err)
	}
	obs := func(rec flowtuple.Record) {
		t.Helper()
		if err := col.Observe(rec); err != nil {
			t.Fatal(err)
		}
	}
	obs(flowtuple.Record{SrcIP: uint32(consumerIP), DstIP: dark1, SrcPort: 4000, DstPort: 23,
		Protocol: flowtuple.ProtoTCP, TCPFlags: flowtuple.FlagSYN, Packets: 2})
	obs(flowtuple.Record{SrcIP: uint32(consumerIP), DstIP: dark2, SrcPort: 4000, DstPort: 2323,
		Protocol: flowtuple.ProtoTCP, TCPFlags: flowtuple.FlagSYN, Packets: 1})
	obs(flowtuple.Record{SrcIP: uint32(cpsIP), DstIP: dark1, SrcPort: 5000, DstPort: 37547,
		Protocol: flowtuple.ProtoUDP, Packets: 5})
	obs(flowtuple.Record{SrcIP: uint32(bgIP), DstIP: dark1, SrcPort: 1, DstPort: 80,
		Protocol: flowtuple.ProtoTCP, TCPFlags: flowtuple.FlagSYN, Packets: 7})
	if err := col.EndHour(); err != nil {
		t.Fatal(err)
	}

	// Hour 1: CPS emits backscatter (it is a DoS victim).
	if err := col.BeginHour(1); err != nil {
		t.Fatal(err)
	}
	obs(flowtuple.Record{SrcIP: uint32(cpsIP), DstIP: dark2, SrcPort: 44818, DstPort: 6000,
		Protocol: flowtuple.ProtoTCP, TCPFlags: flowtuple.FlagSYN | flowtuple.FlagACK, Packets: 10})
	obs(flowtuple.Record{SrcIP: uint32(consumerIP), DstIP: dark1, SrcPort: 4001, DstPort: 23,
		Protocol: flowtuple.ProtoTCP, TCPFlags: flowtuple.FlagSYN, Packets: 3})
	if err := col.EndHour(); err != nil {
		t.Fatal(err)
	}
	return dir, inv
}

func TestProcessDatasetTiny(t *testing.T) {
	dir, inv := buildTinyDataset(t)
	res, err := New(inv, Options{Workers: 2}).ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hours != 2 {
		t.Fatalf("hours %d", res.Hours)
	}
	if len(res.Devices) != 2 {
		t.Fatalf("inferred %d devices", len(res.Devices))
	}

	consumer := res.Devices[0]
	if consumer.FirstSeen != 0 || consumer.Records != 3 {
		t.Fatalf("consumer stats %+v", consumer)
	}
	if got := consumer.Packets[classify.ScanTCP.Index()]; got != 6 {
		t.Fatalf("consumer scan packets %d", got)
	}

	cps := res.Devices[1]
	if got := cps.Packets[classify.UDP.Index()]; got != 5 {
		t.Fatalf("cps UDP packets %d", got)
	}
	if got := cps.Packets[classify.Backscatter.Index()]; got != 10 {
		t.Fatalf("cps backscatter packets %d", got)
	}
	if cps.BackscatterHourly[1] != 10 {
		t.Fatalf("cps hourly backscatter %v", cps.BackscatterHourly)
	}

	// Background fully excluded and counted.
	if res.Background.Packets != 7 || res.Background.Records != 1 {
		t.Fatalf("background %+v", res.Background)
	}
	if res.Background.Sources == 0 {
		t.Fatal("background sources not estimated")
	}

	// Port tables.
	if res.UDPPorts[37547].Packets != 5 || len(res.UDPPorts[37547].Devices) != 1 {
		t.Fatalf("UDP port agg %+v", res.UDPPorts[37547])
	}
	telnet := res.TCPScanPorts[23]
	if telnet.Packets != 5 || telnet.PacketsConsumer != 5 || len(telnet.DevicesConsumer) != 1 {
		t.Fatalf("telnet agg %+v", telnet)
	}
	if res.TCPScanPorts[2323].Packets != 1 {
		t.Fatalf("2323 agg %+v", res.TCPScanPorts[2323])
	}

	// Hourly series.
	if got := res.Hourly[0].Cat(devicedb.Consumer).ScanDstIPs; got != 2 {
		t.Fatalf("hour 0 consumer scan dst IPs %d", got)
	}
	if got := res.Hourly[0].Cat(devicedb.Consumer).ScanDstPorts; got != 2 {
		t.Fatalf("hour 0 consumer scan dst ports %d", got)
	}
	if got := res.Hourly[0].Cat(devicedb.CPS).UDPDstIPs; got != 1 {
		t.Fatalf("hour 0 cps UDP dst IPs %d", got)
	}
	if got := res.Hourly[0].Cat(devicedb.Consumer).ActiveDevices; got != 1 {
		t.Fatalf("hour 0 consumer active %d", got)
	}
	// Per-hour time series of port 23.
	if res.TCPPortHour[PortHour{Port: 23, Hour: 0}] != 2 ||
		res.TCPPortHour[PortHour{Port: 23, Hour: 1}] != 3 {
		t.Fatalf("port-hour series %v", res.TCPPortHour)
	}
}

func TestResultHelpers(t *testing.T) {
	dir, inv := buildTinyDataset(t)
	res, err := New(inv, Options{}).ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TotalIoTPackets(); got != 21 {
		t.Fatalf("total IoT packets %d", got)
	}
	if got := res.ClassPackets(classify.ScanTCP, 0); got != 6 {
		t.Fatalf("scan packets %d", got)
	}
	if got := res.ClassPackets(classify.ScanTCP, devicedb.CPS); got != 0 {
		t.Fatalf("cps scan packets %d", got)
	}
	series := res.HourlyClassSeries(classify.Backscatter, devicedb.CPS)
	if series[0] != 0 || series[1] != 10 {
		t.Fatalf("backscatter series %v", series)
	}
	total := res.HourlyTotalSeries(0)
	if total[0] != 8 || total[1] != 13 {
		t.Fatalf("total series %v", total)
	}
	dev := res.Devices[1]
	if dev.TotalPackets() != 15 {
		t.Fatalf("device total %d", dev.TotalPackets())
	}
}

func TestProcessHourSingle(t *testing.T) {
	dir, inv := buildTinyDataset(t)
	res, err := New(inv, Options{}).ProcessHour(context.Background(), dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Devices) != 2 {
		t.Fatalf("devices %d", len(res.Devices))
	}
	if res.Devices[1].Packets[classify.Backscatter.Index()] != 10 {
		t.Fatal("hour-1 backscatter missing")
	}
}

func TestProcessDatasetEmptyDir(t *testing.T) {
	inv, _ := devicedb.NewInventory(nil)
	if _, err := New(inv, Options{}).ProcessDataset(context.Background(), t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestPortBitset(t *testing.T) {
	var b portBitset
	if b.count() != 0 {
		t.Fatal("fresh bitset not empty")
	}
	b.add(0)
	b.add(65535)
	b.add(23)
	b.add(23)
	if got := b.count(); got != 3 {
		t.Fatalf("count %d", got)
	}
}

func TestSketchModeClose(t *testing.T) {
	dir, inv := buildTinyDataset(t)
	exact, err := New(inv, Options{}).ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := New(inv, Options{UseSketches: true}).ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	// At tiny cardinalities the HLL linear-counting regime is exact.
	for h := 0; h < 2; h++ {
		for ci := 0; ci < 2; ci++ {
			e, a := exact.Hourly[h].PerCat[ci], approx.Hourly[h].PerCat[ci]
			if e.ScanDstIPs != a.ScanDstIPs || e.UDPDstIPs != a.UDPDstIPs {
				t.Fatalf("hour %d cat %d: exact %+v approx %+v", h, ci, e, a)
			}
		}
	}
}

// End-to-end with the workload generator: ground truth must be recovered.
func TestRecoverGroundTruth(t *testing.T) {
	sc := wgen.Default(0.002, 77)
	sc.Hours = 30
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	res, err := New(g.Inventory(), Options{Workers: 2}).ProcessDataset(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	truth := g.Truth()

	// Every inferred device must be in the ground truth (no false
	// positives: background sources are outside the inventory, and
	// non-compromised inventory devices never emit).
	truthSet := make(map[int]bool, len(truth.Compromised))
	for _, id := range truth.Compromised {
		truthSet[id] = true
	}
	for id := range res.Devices {
		if !truthSet[id] {
			t.Fatalf("inferred device %d not in ground truth", id)
		}
	}

	// Every planted device with onset within the window must be recovered.
	expected := 0
	for _, id := range truth.Compromised {
		if truth.OnsetHour[id] < sc.Hours {
			expected++
			if _, ok := res.Devices[id]; !ok {
				t.Errorf("planted device %d (onset %d) not inferred",
					id, truth.OnsetHour[id])
			}
		}
	}
	if len(res.Devices) != expected {
		t.Fatalf("inferred %d devices, expected %d", len(res.Devices), expected)
	}

	// First-seen must match the planted onset for devices seen.
	mismatches := 0
	for id, ds := range res.Devices {
		if ds.FirstSeen != truth.OnsetHour[id] {
			mismatches++
		}
	}
	if mismatches > 0 {
		t.Errorf("%d devices with first-seen != planted onset", mismatches)
	}
}

func BenchmarkProcessDataset(b *testing.B) {
	sc := wgen.Default(0.002, 1)
	sc.Hours = 10
	g, err := wgen.New(sc)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if _, err := g.Run(dir); err != nil {
		b.Fatal(err)
	}
	c := New(g.Inventory(), Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ProcessDataset(context.Background(), dir); err != nil {
			b.Fatal(err)
		}
	}
}
