package correlate

import (
	"context"
	"errors"
	"io"
	"reflect"
	"testing"

	"iotscope/internal/flowtuple"
	"iotscope/internal/wgen"
)

// feedHour pushes one complete hour file through a Window in batches of
// batchLen records, returning the seal stats.
func feedHour(t *testing.T, inc *Incremental, dir string, hour, batchLen int) WindowStats {
	t.Helper()
	w, err := inc.OpenWindow(hour)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := flowtuple.Open(flowtuple.HourPath(dir, hour))
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	buf := make([]flowtuple.Record, batchLen)
	for {
		n, err := rd.NextBatch(buf)
		if n > 0 {
			if err := w.Feed(buf[:n]); err != nil {
				t.Fatal(err)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	st, err := w.Seal()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestWindowMatchesIngest proves the streaming lifecycle — OpenWindow,
// Feed in arbitrary batch sizes, Seal — reaches canonically identical
// state to Ingest on the same hours: same fresh-device notifications per
// hour and deeply equal checkpoint exports (the exact struct the result
// store encodes deterministically).
func TestWindowMatchesIngest(t *testing.T) {
	sc := wgen.Default(0.002, 411)
	sc.Hours = 8
	g, err := wgen.New(sc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := g.Run(dir); err != nil {
		t.Fatal(err)
	}
	c1 := New(g.Inventory(), Options{FaultPolicy: Lenient})
	c2 := New(g.Inventory(), Options{FaultPolicy: Lenient})
	batch, err := c1.NewIncremental(sc.Hours)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := c2.NewIncremental(sc.Hours)
	if err != nil {
		t.Fatal(err)
	}
	// Odd batch length so window boundaries never align with the reader's
	// internal framing.
	const batchLen = 17
	for h := 0; h < sc.Hours; h++ {
		fresh, err := batch.Ingest(context.Background(), dir, h)
		if err != nil {
			t.Fatal(err)
		}
		st := feedHour(t, streamed, dir, h, batchLen)
		if !reflect.DeepEqual(st.Fresh, fresh) {
			t.Fatalf("hour %d fresh devices diverged: window %v vs ingest %v", h, st.Fresh, fresh)
		}
		if st.Hour != h || st.Records == 0 || st.RecordsIoT == 0 {
			t.Fatalf("hour %d implausible window stats: %+v", h, st)
		}
		res := batch.Result()
		var wantIoT uint64
		for ci := range res.Hourly[h].PerCat {
			for _, v := range res.Hourly[h].PerCat[ci].Packets {
				wantIoT += v
			}
		}
		if st.IoTPackets != wantIoT {
			t.Fatalf("hour %d IoT packets %d, ingest says %d", h, st.IoTPackets, wantIoT)
		}
	}
	got, want := streamed.Export(), batch.Export()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streaming export diverged from ingest export")
	}
}

// TestWindowAbortDiscardsWhole proves an aborted window contributes
// nothing: after Abort the hour re-opens cleanly and the final state
// matches a run that never aborted.
func TestWindowAbortDiscardsWhole(t *testing.T) {
	dir, inv := buildTinyDataset(t)
	c1, c2 := New(inv, Options{}), New(inv, Options{})
	clean, err := c1.NewIncremental(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Ingest(context.Background(), dir, 0); err != nil {
		t.Fatal(err)
	}
	inc, err := c2.NewIncremental(4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := inc.OpenWindow(0)
	if err != nil {
		t.Fatal(err)
	}
	// Feed a little, then abandon the window entirely.
	if err := w.Feed([]flowtuple.Record{{SrcIP: 1, Packets: 9}}); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	w.Abort() // idempotent
	if _, err := w.Seal(); err == nil {
		t.Fatal("seal after abort accepted")
	}
	if inc.Ingested(0) {
		t.Fatal("aborted hour marked ingested")
	}
	feedHour(t, inc, dir, 0, 5)
	if !reflect.DeepEqual(inc.Export(), clean.Export()) {
		t.Fatal("abort leaked state into the result")
	}
}

func TestWindowGuards(t *testing.T) {
	dir, inv := buildTinyDataset(t)
	inc, err := New(inv, Options{FaultPolicy: Lenient}).NewIncremental(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.OpenWindow(-1); err == nil {
		t.Fatal("negative hour accepted")
	}
	if _, err := inc.OpenWindow(4); err == nil {
		t.Fatal("hour beyond capacity accepted")
	}
	feedHour(t, inc, dir, 0, 3)
	if _, err := inc.OpenWindow(0); err == nil {
		t.Fatal("already-ingested hour accepted")
	}
	inc.Quarantine(1, errors.New("given up"))
	if _, err := inc.OpenWindow(1); err == nil {
		t.Fatal("quarantined hour accepted")
	}
	w, err := inc.OpenWindow(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := w.Feed(nil); err == nil {
		t.Fatal("feed after seal accepted")
	}
	if !inc.Ingested(2) {
		t.Fatal("sealed empty window not marked ingested")
	}
}

// TestFailHour pins the lenient fault bookkeeping: permanent corruption
// quarantines, retryable damage leaves the hour open, strict mode and
// context errors record nothing — mirroring Ingest's own error path.
func TestFailHour(t *testing.T) {
	_, inv := buildTinyDataset(t)
	lenient, err := New(inv, Options{FaultPolicy: Lenient}).NewIncremental(8)
	if err != nil {
		t.Fatal(err)
	}
	lenient.FailHour(0, flowtuple.ErrTruncated) // retryable: no quarantine
	if lenient.Quarantined(0) {
		t.Fatal("retryable fault quarantined the hour")
	}
	if st := lenient.Stats(); len(st.Faults) != 1 || st.Faults[0].Attempts != 1 {
		t.Fatalf("retryable fault not recorded: %+v", lenient.Stats())
	}
	lenient.FailHour(1, flowtuple.ErrBadFormat) // permanent: quarantine
	if !lenient.Quarantined(1) {
		t.Fatal("permanent fault did not quarantine")
	}
	if got := lenient.QuarantinedHours(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("QuarantinedHours = %v", got)
	}
	lenient.FailHour(1, flowtuple.ErrBadFormat) // idempotent once quarantined
	if st := lenient.Stats(); st.HoursQuarantined != 1 {
		t.Fatalf("quarantine double-counted: %+v", st)
	}
	lenient.FailHour(2, context.Canceled) // ctx error records nothing
	if st := lenient.Stats(); len(st.Faults) != 2 {
		t.Fatalf("context error recorded a fault: %+v", st)
	}

	strict, err := New(inv, Options{}).NewIncremental(8)
	if err != nil {
		t.Fatal(err)
	}
	strict.FailHour(0, flowtuple.ErrBadFormat)
	if st := strict.Stats(); len(st.Faults) != 0 || st.HoursQuarantined != 0 {
		t.Fatalf("strict policy recorded a fault: %+v", st)
	}
}
