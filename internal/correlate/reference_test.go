package correlate

// The historical map-based correlator, preserved verbatim as the oracle the
// dense path is proven against (TestDenseMatchesReference*). It is the
// implementation that shipped before the batched-decode/dense-accumulator
// rework: per-hour map partials merged under a mutex. Any behavioral drift
// between the two paths is a bug in the dense path.

import (
	"io"
	"slices"
	"sync"

	"iotscope/internal/classify"
	"iotscope/internal/devicedb"
	"iotscope/internal/flowtuple"
	"iotscope/internal/netx"
	"iotscope/internal/sketch"
)

// refPortAgg and refTCPPortAgg are the map-backed port aggregates the old
// implementation stored directly in the Result; the public schema has since
// moved to sorted []int32 device lists, so the oracle keeps the maps
// internally and materializes lists at the end of refProcessDataset.
type refPortAgg struct {
	Packets uint64
	Devices map[int]struct{}
}

type refTCPPortAgg struct {
	Packets         uint64
	PacketsConsumer uint64
	DevicesConsumer map[int]struct{}
	DevicesCPS      map[int]struct{}
}

// refPortSets carries the global per-port device memberships across merges.
type refPortSets struct {
	udp map[uint16]map[int]struct{}
	con map[uint16]map[int]struct{}
	cps map[uint16]map[int]struct{}
}

func newRefPortSets() *refPortSets {
	return &refPortSets{
		udp: make(map[uint16]map[int]struct{}),
		con: make(map[uint16]map[int]struct{}),
		cps: make(map[uint16]map[int]struct{}),
	}
}

func (ps *refPortSets) add(table map[uint16]map[int]struct{}, port uint16, ids map[int]struct{}) {
	set := table[port]
	if set == nil {
		set = make(map[int]struct{}, len(ids))
		table[port] = set
	}
	for id := range ids {
		set[id] = struct{}{}
	}
}

// refList materializes a membership set as the public sorted list form:
// ascending device indices, nil when empty.
func refList(set map[int]struct{}) []int32 {
	if len(set) == 0 {
		return nil
	}
	out := make([]int32, 0, len(set))
	for id := range set {
		out = append(out, int32(id))
	}
	slices.Sort(out)
	return out
}

// refPartial is the old commutative map-based partial aggregate.
type refPartial struct {
	hour       int
	stats      HourStats
	devices    map[int]*DeviceStats
	udpPorts   map[uint16]*refPortAgg
	tcpPorts   map[uint16]*refTCPPortAgg
	portHour   map[PortHour]uint64
	bgRecords  uint64
	bgPackets  uint64
	bgSrcHLL   *sketch.HLL
	perDevPort map[int]map[uint16]struct{}
	perDevDest map[int]map[netx.Addr]struct{}
}

type refExactCounter struct{ m map[uint32]struct{} }

func (e *refExactCounter) add(v uint32)     { e.m[v] = struct{}{} }
func (e *refExactCounter) estimate() uint64 { return uint64(len(e.m)) }
func (e *refExactCounter) reset()           { clear(e.m) }

func (e *refExactCounter) appendIPs(dst []uint32) []uint32 {
	for v := range e.m {
		dst = append(dst, v)
	}
	return dst
}

func (e *refExactCounter) appendRegisters(dst []uint8) []uint8 { return dst }

func refDestCounter(c *Correlator) destCounter {
	if c.opts.UseSketches {
		h, err := sketch.NewHLL(c.opts.SketchPrecision)
		if err == nil {
			return hllCounter{h}
		}
	}
	return &refExactCounter{m: make(map[uint32]struct{}, 1024)}
}

// refProcessHourFile streams one hour file into a map partial, one record
// at a time through Reader.Next.
func refProcessHourFile(c *Correlator, dir string, hour int) (*refPartial, error) {
	part := &refPartial{
		hour:       hour,
		stats:      HourStats{Hour: hour},
		devices:    make(map[int]*DeviceStats),
		udpPorts:   make(map[uint16]*refPortAgg),
		tcpPorts:   make(map[uint16]*refTCPPortAgg),
		portHour:   make(map[PortHour]uint64),
		perDevPort: make(map[int]map[uint16]struct{}),
		perDevDest: make(map[int]map[netx.Addr]struct{}),
	}
	var err error
	part.bgSrcHLL, err = sketch.NewHLL(c.opts.SketchPrecision)
	if err != nil {
		return nil, err
	}

	var (
		active       [2]map[int]struct{}
		udpDevs      [2]map[int]struct{}
		scanDevs     [2]map[int]struct{}
		udpDstIPs    [2]destCounter
		udpDstPorts  [2]*portBitset
		scanDstIPs   [2]destCounter
		scanDstPorts [2]*portBitset
	)
	for i := 0; i < 2; i++ {
		active[i] = make(map[int]struct{}, 1024)
		udpDevs[i] = make(map[int]struct{}, 1024)
		scanDevs[i] = make(map[int]struct{}, 1024)
		udpDstIPs[i] = refDestCounter(c)
		udpDstPorts[i] = &portBitset{}
		scanDstIPs[i] = refDestCounter(c)
		scanDstPorts[i] = &portBitset{}
	}

	rd, err := flowtuple.Open(flowtuple.HourPath(dir, hour))
	if err != nil {
		return nil, err
	}
	defer rd.Close()

	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		devIdx, isIoT := c.inv.LookupIP(netx.Addr(rec.SrcIP))
		if !isIoT {
			part.bgRecords++
			part.bgPackets += uint64(rec.Packets)
			part.bgSrcHLL.AddAddr(rec.SrcIP)
			continue
		}
		dev := c.inv.At(devIdx)
		cls := classify.Record(rec)
		ci := int(dev.Category) - 1
		pkts := uint64(rec.Packets)

		part.stats.RecordsIoT++
		cat := &part.stats.PerCat[ci]
		cat.Packets[cls.Index()] += pkts
		active[ci][devIdx] = struct{}{}

		ds := part.devices[devIdx]
		if ds == nil {
			ds = &DeviceStats{ID: devIdx, FirstSeen: hour}
			if day := hour / 24; day < 64 {
				ds.DayMask = 1 << day
			}
			part.devices[devIdx] = ds
		}
		ds.Records++
		ds.Packets[cls.Index()] += pkts

		switch cls {
		case classify.UDP:
			udpDevs[ci][devIdx] = struct{}{}
			udpDstIPs[ci].add(rec.DstIP)
			udpDstPorts[ci].add(rec.DstPort)
			pa := part.udpPorts[rec.DstPort]
			if pa == nil {
				pa = &refPortAgg{Devices: make(map[int]struct{}, 4)}
				part.udpPorts[rec.DstPort] = pa
			}
			pa.Packets += pkts
			pa.Devices[devIdx] = struct{}{}
		case classify.Backscatter:
			if ds.BackscatterHourly == nil {
				ds.BackscatterHourly = make(map[int]uint64, 4)
			}
			ds.BackscatterHourly[hour] += pkts
		case classify.ScanTCP:
			scanDevs[ci][devIdx] = struct{}{}
			scanDstIPs[ci].add(rec.DstIP)
			scanDstPorts[ci].add(rec.DstPort)
			ta := part.tcpPorts[rec.DstPort]
			if ta == nil {
				ta = &refTCPPortAgg{
					DevicesConsumer: make(map[int]struct{}, 4),
					DevicesCPS:      make(map[int]struct{}, 4),
				}
				part.tcpPorts[rec.DstPort] = ta
			}
			ta.Packets += pkts
			if dev.Category == devicedb.Consumer {
				ta.PacketsConsumer += pkts
				ta.DevicesConsumer[devIdx] = struct{}{}
			} else {
				ta.DevicesCPS[devIdx] = struct{}{}
			}
			part.portHour[PortHour{Port: rec.DstPort, Hour: uint16(hour)}] += pkts

			dp := part.perDevPort[devIdx]
			if dp == nil {
				dp = make(map[uint16]struct{}, 8)
				part.perDevPort[devIdx] = dp
			}
			dp[rec.DstPort] = struct{}{}
			dd := part.perDevDest[devIdx]
			if dd == nil {
				dd = make(map[netx.Addr]struct{}, 8)
				part.perDevDest[devIdx] = dd
			}
			dd[netx.Addr(rec.DstIP)] = struct{}{}
		}
	}

	for i := 0; i < 2; i++ {
		cat := &part.stats.PerCat[i]
		cat.ActiveDevices = len(active[i])
		cat.UDPDevices = len(udpDevs[i])
		cat.ScanDevices = len(scanDevs[i])
		cat.UDPDstIPs = udpDstIPs[i].estimate()
		cat.UDPDstPorts = udpDstPorts[i].count()
		cat.ScanDstIPs = scanDstIPs[i].estimate()
		cat.ScanDstPorts = scanDstPorts[i].count()
	}
	for devIdx, ports := range part.perDevPort {
		ds := part.devices[devIdx]
		if n := len(ports); n > ds.MaxScanPorts {
			ds.MaxScanPorts = n
			ds.MaxScanPortsHour = hour
			ds.MaxScanDests = len(part.perDevDest[devIdx])
		}
	}
	return part, nil
}

// refMergePartial is the old merge, fold-into-maps under the caller's lock.
// Device memberships accumulate in sets (held outside the Result) and are
// materialized as sorted lists once the whole dataset has merged.
func refMergePartial(res *Result, part *refPartial, bgSources *sketch.HLL, sets *refPortSets) {
	res.Hourly[part.hour] = part.stats
	res.Background.Records += part.bgRecords
	res.Background.Packets += part.bgPackets
	bgSources.Merge(part.bgSrcHLL) //nolint:errcheck // same precision

	for id, d := range part.devices {
		g := res.Devices[id]
		if g == nil {
			res.Devices[id] = d
			continue
		}
		if d.FirstSeen < g.FirstSeen {
			g.FirstSeen = d.FirstSeen
		}
		g.Records += d.Records
		g.DayMask |= d.DayMask
		for i := range g.Packets {
			g.Packets[i] += d.Packets[i]
		}
		if d.BackscatterHourly != nil {
			if g.BackscatterHourly == nil {
				g.BackscatterHourly = d.BackscatterHourly
			} else {
				for h, v := range d.BackscatterHourly {
					g.BackscatterHourly[h] += v
				}
			}
		}
		if d.MaxScanPorts > g.MaxScanPorts ||
			(d.MaxScanPorts == g.MaxScanPorts && d.MaxScanPorts > 0 &&
				d.MaxScanPortsHour < g.MaxScanPortsHour) {
			g.MaxScanPorts = d.MaxScanPorts
			g.MaxScanPortsHour = d.MaxScanPortsHour
			g.MaxScanDests = d.MaxScanDests
		}
	}
	for port, pa := range part.udpPorts {
		g := res.UDPPorts[port]
		if g == nil {
			g = &PortAgg{}
			res.UDPPorts[port] = g
		}
		g.Packets += pa.Packets
		sets.add(sets.udp, port, pa.Devices)
	}
	for port, ta := range part.tcpPorts {
		g := res.TCPScanPorts[port]
		if g == nil {
			g = &TCPPortAgg{}
			res.TCPScanPorts[port] = g
		}
		g.Packets += ta.Packets
		g.PacketsConsumer += ta.PacketsConsumer
		sets.add(sets.con, port, ta.DevicesConsumer)
		sets.add(sets.cps, port, ta.DevicesCPS)
	}
	for ph, v := range part.portHour {
		res.TCPPortHour[ph] += v
	}
}

// refProcessDataset is the old ProcessDataset: bounded worker pool, merge
// under a global mutex.
func refProcessDataset(c *Correlator, dir string) (*Result, error) {
	hours, err := flowtuple.DatasetHours(dir)
	if err != nil {
		return nil, err
	}
	maxHour := hours[len(hours)-1]
	res := newResult(maxHour + 1)

	var (
		mu      sync.Mutex
		errHour = -1
		hourErr error
		wg      sync.WaitGroup
	)
	sem := make(chan struct{}, c.opts.Workers)
	bgSources, err := sketch.NewHLL(c.opts.SketchPrecision)
	if err != nil {
		return nil, err
	}
	sets := newRefPortSets()
	for _, hour := range hours {
		wg.Add(1)
		sem <- struct{}{}
		go func(hour int) {
			defer wg.Done()
			defer func() { <-sem }()
			part, err := refProcessHourFile(c, dir, hour)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if c.opts.FaultPolicy == Lenient {
					res.Ingest.noteFailure(hour, err, IsRetryable(err))
					res.Ingest.HoursQuarantined++
					return
				}
				if errHour == -1 || hour < errHour {
					errHour, hourErr = hour, err
				}
				return
			}
			res.Ingest.HoursOK++
			refMergePartial(res, part, bgSources, sets)
		}(hour)
	}
	wg.Wait()
	if hourErr != nil {
		return nil, hourErr
	}
	for port, set := range sets.udp {
		res.UDPPorts[port].Devices = refList(set)
	}
	for port, set := range sets.con {
		res.TCPScanPorts[port].DevicesConsumer = refList(set)
	}
	for port, set := range sets.cps {
		res.TCPScanPorts[port].DevicesCPS = refList(set)
	}
	res.Background.Sources = bgSources.Estimate()
	return res, nil
}
