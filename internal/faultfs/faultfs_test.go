package faultfs

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "victim.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBitFlip(t *testing.T) {
	path := writeTemp(t, []byte{0x00, 0xFF, 0x10})
	if err := BitFlip(path, 1, 0x81); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, []byte{0x00, 0x7E, 0x10}) {
		t.Fatalf("after flip: %x", got)
	}
	// Negative offsets count from the end.
	if err := BitFlip(path, -1, 0x01); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if got[2] != 0x11 {
		t.Fatalf("after tail flip: %x", got)
	}
	if err := BitFlip(path, 99, 1); err == nil {
		t.Fatal("out-of-range offset accepted")
	}
	if err := BitFlip(path, 0, 0); err == nil {
		t.Fatal("zero mask accepted")
	}
}

func TestTruncateTail(t *testing.T) {
	path := writeTemp(t, []byte("abcdef"))
	if err := TruncateTail(path, 2); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "abcd" {
		t.Fatalf("after truncate: %q", got)
	}
	if err := TruncateTail(path, 100); err == nil {
		t.Fatal("oversized truncation accepted")
	}
}

func TestRecompressPrefixAndUncompressedLen(t *testing.T) {
	plain := []byte("0123456789abcdefghij")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(plain) //nolint:errcheck
	zw.Close()      //nolint:errcheck
	path := writeTemp(t, buf.Bytes())

	if n, err := UncompressedLen(path); err != nil || n != len(plain) {
		t.Fatalf("UncompressedLen = %d, %v", n, err)
	}
	if err := RecompressPrefix(path, 7); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("cut stream is not clean gzip: %v", err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(gz); err != nil {
		t.Fatalf("cut stream does not read cleanly: %v", err)
	}
	if !bytes.Equal(out.Bytes(), plain[:7]) {
		t.Fatalf("prefix = %q", out.Bytes())
	}
	if err := RecompressPrefix(path, 1000); err == nil {
		t.Fatal("oversized prefix accepted")
	}
}

func TestWriteFileSlowly(t *testing.T) {
	data := bytes.Repeat([]byte("xyz"), 100)
	path := filepath.Join(t.TempDir(), "slow.bin")
	if err := WriteFileSlowly(path, data, 7, 0); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, data) {
		t.Fatalf("slow write mangled data: %d bytes", len(got))
	}
	if err := WriteFileSlowly(path, data, 0, 0); err == nil {
		t.Fatal("zero chunk accepted")
	}
}
