package faultfs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestGrowerSingleSteps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.bin")
	data := []byte("0123456789abcdef")
	g, err := NewGrower(path, data)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); len(got) != 0 {
		t.Fatalf("fresh grower published %d bytes", len(got))
	}
	if g.Done() || g.Remaining() != len(data) {
		t.Fatalf("fresh grower state: done=%v remaining=%d", g.Done(), g.Remaining())
	}
	n, err := g.Grow(5)
	if err != nil || n != 5 {
		t.Fatalf("Grow(5) = %d, %v", n, err)
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, data[:5]) {
		t.Fatalf("published %q", got)
	}
	// Over-asking clamps to what is left.
	n, err = g.Grow(1000)
	if err != nil || n != len(data)-5 {
		t.Fatalf("Grow(1000) = %d, %v", n, err)
	}
	if !g.Done() || g.Offset() != len(data) {
		t.Fatalf("grower not done: off=%d", g.Offset())
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, data) {
		t.Fatalf("final content %q", got)
	}
	// Growing a finished file is a no-op, not an error.
	if n, err := g.Grow(1); err != nil || n != 0 {
		t.Fatalf("Grow past end = %d, %v", n, err)
	}
	if err := g.GrowAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Grow(0); err == nil {
		t.Fatal("Grow(0) accepted")
	}
}

func TestGrowerCorruptPublished(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.bin")
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	g, err := NewGrower(path, append([]byte(nil), data...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Grow(4); err != nil {
		t.Fatal(err)
	}
	// Only the published prefix may be damaged.
	if err := g.CorruptPublished(4, 0xFF); err == nil {
		t.Fatal("corruption beyond the published prefix accepted")
	}
	if err := g.CorruptPublished(-1, 0x80); err != nil { // published byte 3
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, []byte{1, 2, 3, 4 ^ 0x80}) {
		t.Fatalf("published prefix after flip: %v", got)
	}
	// Later growth appends the untouched remainder after the damage —
	// the file stays internally consistent with what a reader saw.
	if err := g.GrowAll(); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got, []byte{1, 2, 3, 4 ^ 0x80, 5, 6, 7, 8}) {
		t.Fatalf("final content after mid-growth flip: %v", got)
	}
}
