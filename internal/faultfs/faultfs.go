// Package faultfs injects deterministic storage faults into dataset files
// so that ingestion failure paths can be exercised by tests: byte-level
// truncation, bit flips, clean mid-stream cuts, slow non-atomic writes
// that emulate a legacy collector caught in the act, and a single-stepped
// Grower that reveals a live file prefix by prefix. Every operation is
// pure byte surgery — nothing here knows the flowtuple framing — which
// keeps the injected faults honest stand-ins for real disk and transfer
// damage.
package faultfs

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"time"
)

// BitFlip XORs mask into the byte at offset. Offsets are resolved from the
// end of the file when negative. A flip inside a gzip member's compressed
// payload models single-bit disk or transfer corruption.
func BitFlip(path string, offset int64, mask byte) error {
	if mask == 0 {
		return fmt.Errorf("faultfs: zero mask flips nothing")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if offset < 0 {
		offset += int64(len(data))
	}
	if offset < 0 || offset >= int64(len(data)) {
		return fmt.Errorf("faultfs: offset %d outside %s (%d bytes)", offset, path, len(data))
	}
	data[offset] ^= mask
	return rewrite(path, data)
}

// Overwrite replaces the bytes at offset with data, in place. Offsets are
// resolved from the end of the file when negative. It models targeted
// metadata damage — a mangled magic, version byte, or reserved field —
// as opposed to BitFlip's random single-bit corruption.
func Overwrite(path string, offset int64, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("faultfs: empty overwrite changes nothing")
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if offset < 0 {
		offset += int64(len(buf))
	}
	if offset < 0 || offset+int64(len(data)) > int64(len(buf)) {
		return fmt.Errorf("faultfs: overwrite [%d, %d) outside %s (%d bytes)",
			offset, offset+int64(len(data)), path, len(buf))
	}
	copy(buf[offset:], data)
	return rewrite(path, buf)
}

// AppendTail appends junk bytes after the file's logical end, modelling a
// partial overwrite or a concatenated stray download.
func AppendTail(path string, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("faultfs: empty append changes nothing")
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TruncateTail drops the last n bytes of the file, modelling a copy or
// write that stopped mid-stream.
func TruncateTail(path string, n int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if n < 0 || n > info.Size() {
		return fmt.Errorf("faultfs: cannot drop %d of %d bytes from %s", n, info.Size(), path)
	}
	return os.Truncate(path, info.Size()-n)
}

// RecompressPrefix decompresses the gzip file at path, keeps only the
// first n uncompressed bytes, and recompresses them in place as a
// complete gzip member. The result is what a buffered, non-atomic writer
// that has flushed its compressor but not yet appended a footer would
// leave on disk: a cleanly cut, incomplete stream.
func RecompressPrefix(path string, n int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("faultfs: %s is not gzip: %w", path, err)
	}
	defer gz.Close()
	plain, err := io.ReadAll(gz)
	if err != nil {
		return fmt.Errorf("faultfs: decompress %s: %w", path, err)
	}
	if n < 0 || n > len(plain) {
		return fmt.Errorf("faultfs: prefix %d outside %s (%d plain bytes)", n, path, len(plain))
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(plain[:n]); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return rewrite(path, buf.Bytes())
}

// UncompressedLen reports the decompressed size of a gzip file, so tests
// can compute frame-boundary cut points for RecompressPrefix.
func UncompressedLen(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return 0, err
	}
	defer gz.Close()
	n, err := io.Copy(io.Discard, gz)
	return int(n), err
}

// WriteFileSlowly writes data to path directly (no atomic rename), chunk
// bytes at a time, sleeping delay between chunks — a deterministic model
// of a legacy collector whose in-progress output is visible to readers.
// It blocks until the file is complete; run it in a goroutine to race a
// reader against it.
func WriteFileSlowly(path string, data []byte, chunk int, delay time.Duration) error {
	if chunk <= 0 {
		return fmt.Errorf("faultfs: chunk must be positive")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := f.Write(data[off:end]); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if delay > 0 && end < len(data) {
			time.Sleep(delay)
		}
	}
	return f.Close()
}

// Grower publishes a file's bytes in increments the test controls — the
// partial-append / slow-grow fault mode for streaming ingestion. Unlike
// WriteFileSlowly it never sleeps: each Grow call appends exactly the
// requested bytes and returns, so a tailer can be single-stepped through
// every intermediate prefix deterministically. The already-published
// prefix can additionally be damaged mid-growth with CorruptPublished,
// modelling a live file whose earlier bytes rot under the reader.
type Grower struct {
	path string
	data []byte
	off  int
}

// NewGrower creates (or truncates) path empty and prepares to reveal data
// through it.
func NewGrower(path string, data []byte) (*Grower, error) {
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		return nil, err
	}
	return &Grower{path: path, data: data}, nil
}

// Path returns the file being grown.
func (g *Grower) Path() string { return g.path }

// Offset reports how many bytes have been published so far.
func (g *Grower) Offset() int { return g.off }

// Remaining reports how many bytes are still unpublished.
func (g *Grower) Remaining() int { return len(g.data) - g.off }

// Done reports whether the file has reached its full content.
func (g *Grower) Done() bool { return g.off >= len(g.data) }

// Grow appends the next min(n, Remaining()) bytes and syncs, returning
// how many were actually published.
func (g *Grower) Grow(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("faultfs: grow %d bytes grows nothing", n)
	}
	if n > g.Remaining() {
		n = g.Remaining()
	}
	if n == 0 {
		return 0, nil
	}
	f, err := os.OpenFile(g.path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(g.data[g.off : g.off+n]); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	g.off += n
	return n, f.Close()
}

// GrowAll publishes everything still unrevealed.
func (g *Grower) GrowAll() error {
	if g.Remaining() == 0 {
		return nil
	}
	_, err := g.Grow(g.Remaining())
	return err
}

// CorruptPublished flips mask into an already-published byte (negative
// offsets resolve from the published end), so a test can damage the live
// prefix a tailer has potentially already read.
func (g *Grower) CorruptPublished(offset int64, mask byte) error {
	if offset < 0 {
		offset += int64(g.off)
	}
	if offset < 0 || offset >= int64(g.off) {
		return fmt.Errorf("faultfs: offset %d outside published prefix of %d bytes", offset, g.off)
	}
	g.data[offset] ^= mask
	return BitFlip(g.path, offset, mask)
}

func rewrite(path string, data []byte) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, info.Mode().Perm())
}
