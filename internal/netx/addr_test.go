package netx

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	tests := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.0.2.1", 0xc0000201, true},
		{"10.0.0.1", 0x0a000001, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"-1.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
	}
	for _, tc := range tests {
		got, err := ParseAddr(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseAddr(%q) err = %v, ok want %v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseAddr(%q) = %v want %v", tc.in, uint32(got), uint32(tc.want))
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		a := Addr(u)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrOctet(t *testing.T) {
	a := MustParseAddr("1.2.3.4")
	for i, want := range []byte{1, 2, 3, 4} {
		if got := a.Octet(i); got != want {
			t.Errorf("Octet(%d) = %d want %d", i, got, want)
		}
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParseAddr("nope")
}

func TestParsePrefix(t *testing.T) {
	tests := []struct {
		in   string
		want string
		ok   bool
	}{
		{"10.0.0.0/8", "10.0.0.0/8", true},
		{"10.1.2.3/8", "10.0.0.0/8", true}, // host bits zeroed
		{"192.0.2.1/32", "192.0.2.1/32", true},
		{"0.0.0.0/0", "0.0.0.0/0", true},
		{"10.0.0.0/33", "", false},
		{"10.0.0.0/-1", "", false},
		{"10.0.0.0", "", false},
		{"bad/8", "", false},
	}
	for _, tc := range tests {
		got, err := ParsePrefix(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParsePrefix(%q) err = %v", tc.in, err)
			continue
		}
		if tc.ok && got.String() != tc.want {
			t.Errorf("ParsePrefix(%q) = %v want %v", tc.in, got, tc.want)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if !p.Contains(MustParseAddr("10.255.1.2")) {
		t.Error("10/8 should contain 10.255.1.2")
	}
	if p.Contains(MustParseAddr("11.0.0.0")) {
		t.Error("10/8 should not contain 11.0.0.0")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(0) || !all.Contains(0xffffffff) {
		t.Error("/0 must contain everything")
	}
	host := MustParsePrefix("192.0.2.7/32")
	if !host.Contains(MustParseAddr("192.0.2.7")) || host.Contains(MustParseAddr("192.0.2.8")) {
		t.Error("/32 containment wrong")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"10.0.0.0/8", "10.1.0.0/16", true},
		{"10.1.0.0/16", "10.0.0.0/8", true},
		{"10.0.0.0/8", "11.0.0.0/8", false},
		{"0.0.0.0/0", "203.0.113.0/24", true},
		{"192.0.2.0/24", "192.0.2.128/25", true},
		{"192.0.2.0/25", "192.0.2.128/25", false},
	}
	for _, tc := range tests {
		a, b := MustParsePrefix(tc.a), MustParsePrefix(tc.b)
		if got := a.Overlaps(b); got != tc.want {
			t.Errorf("%s overlaps %s = %v want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPrefixNumAddrsAndNth(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	if p.NumAddrs() != 256 {
		t.Fatalf("NumAddrs = %d", p.NumAddrs())
	}
	if got := p.Nth(0); got != MustParseAddr("192.0.2.0") {
		t.Errorf("Nth(0) = %v", got)
	}
	if got := p.Nth(255); got != MustParseAddr("192.0.2.255") {
		t.Errorf("Nth(255) = %v", got)
	}
	if MustParsePrefix("0.0.0.0/0").NumAddrs() != 1<<32 {
		t.Error("/0 NumAddrs wrong")
	}
}

func TestPrefixNthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParsePrefix("192.0.2.0/24").Nth(256)
}

func TestNewPrefixPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPrefix(0, 40)
}

// Property: every address within a prefix is Contained, per Nth.
func TestPrefixNthContainedProperty(t *testing.T) {
	f := func(u uint32, bits uint8, off uint32) bool {
		b := int(bits % 33)
		p := NewPrefix(Addr(u), b)
		n := uint64(off) % p.NumAddrs()
		return p.Contains(p.Nth(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
