package netx

import (
	"testing"

	"iotscope/internal/rng"
)

func TestSetAddContainsRemove(t *testing.T) {
	s := NewSet(0)
	a := MustParseAddr("192.0.2.1")
	if s.Contains(a) {
		t.Fatal("empty set contains")
	}
	if !s.Add(a) {
		t.Fatal("first add not new")
	}
	if s.Add(a) {
		t.Fatal("duplicate add reported new")
	}
	if !s.Contains(a) || s.Len() != 1 {
		t.Fatal("membership after add wrong")
	}
	if !s.Remove(a) {
		t.Fatal("remove existing failed")
	}
	if s.Remove(a) {
		t.Fatal("double remove succeeded")
	}
	if s.Contains(a) || s.Len() != 0 {
		t.Fatal("membership after remove wrong")
	}
}

func TestSetAddrsSorted(t *testing.T) {
	s := NewSet(4)
	for _, a := range []string{"10.0.0.3", "10.0.0.1", "10.0.0.2"} {
		s.Add(MustParseAddr(a))
	}
	addrs := s.Addrs()
	for i := 1; i < len(addrs); i++ {
		if addrs[i-1] >= addrs[i] {
			t.Fatalf("Addrs not strictly sorted: %v", addrs)
		}
	}
}

func TestFrozenSetDedup(t *testing.T) {
	f := NewFrozenSet([]Addr{5, 3, 5, 1, 3})
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	for _, a := range []Addr{1, 3, 5} {
		if !f.Contains(a) {
			t.Errorf("missing %d", a)
		}
	}
	for _, a := range []Addr{0, 2, 4, 6} {
		if f.Contains(a) {
			t.Errorf("spurious %d", a)
		}
	}
}

func TestFrozenSetDoesNotAliasInput(t *testing.T) {
	in := []Addr{9, 8, 7}
	f := NewFrozenSet(in)
	in[0] = 1
	if !f.Contains(9) {
		t.Fatal("frozen set aliased caller slice")
	}
}

func TestFreezeMatchesSet(t *testing.T) {
	r := rng.New(3)
	s := NewSet(0)
	for i := 0; i < 2000; i++ {
		s.Add(Addr(r.Uint32() % 5000))
	}
	f := s.Freeze()
	if f.Len() != s.Len() {
		t.Fatalf("frozen len %d != %d", f.Len(), s.Len())
	}
	for probe := Addr(0); probe < 5000; probe++ {
		if f.Contains(probe) != s.Contains(probe) {
			t.Fatalf("divergence at %d", probe)
		}
	}
}

func TestEmptyFrozenSet(t *testing.T) {
	f := NewFrozenSet(nil)
	if f.Len() != 0 || f.Contains(0) {
		t.Fatal("empty frozen set misbehaves")
	}
}

func BenchmarkFrozenSetContains(b *testing.B) {
	r := rng.New(1)
	addrs := make([]Addr, 100000)
	for i := range addrs {
		addrs[i] = Addr(r.Uint32())
	}
	f := NewFrozenSet(addrs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(addrs[i%len(addrs)])
	}
}

func BenchmarkSetAdd(b *testing.B) {
	r := rng.New(1)
	s := NewSet(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(Addr(r.Uint32()))
	}
}
