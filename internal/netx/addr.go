// Package netx provides compact IPv4 address types tuned for telescope-scale
// traffic analysis: a 4-byte address value, CIDR prefixes, a longest-prefix-
// match radix trie for registry lookups, and exact address sets.
//
// Darknet analysis performs one or two prefix lookups per flowtuple (source
// geolocation, inventory membership), so Addr is a plain uint32 wrapper and
// the hot paths allocate nothing.
package netx

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// ParseAddr parses dotted-quad notation ("192.0.2.1").
func ParseAddr(s string) (Addr, error) {
	var a uint32
	rest := s
	for i := 0; i < 4; i++ {
		part := rest
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netx: invalid IPv4 address %q", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		}
		v, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("netx: invalid IPv4 address %q", s)
		}
		a = a<<8 | uint32(v)
	}
	return Addr(a), nil
}

// MustParseAddr is ParseAddr that panics on error, for tests and constants.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String formats the address in dotted-quad notation.
func (a Addr) String() string {
	var buf [15]byte
	b := buf[:0]
	for shift := 24; shift >= 0; shift -= 8 {
		b = strconv.AppendUint(b, uint64(a>>uint(shift)&0xff), 10)
		if shift > 0 {
			b = append(b, '.')
		}
	}
	return string(b)
}

// Octet returns the i-th octet (0 = most significant).
func (a Addr) Octet(i int) byte {
	return byte(a >> uint(24-8*i))
}

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	addr Addr
	bits uint8
}

// NewPrefix returns the prefix addr/bits with host bits zeroed.
// It panics if bits > 32.
func NewPrefix(addr Addr, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("netx: invalid prefix length %d", bits))
	}
	return Prefix{addr: addr & mask(bits), bits: uint8(bits)}
}

// ParsePrefix parses CIDR notation ("10.0.0.0/8").
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netx: missing '/' in prefix %q", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netx: invalid prefix length in %q", s)
	}
	return NewPrefix(addr, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func mask(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << uint(32-bits))
}

// Addr returns the network address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// Contains reports whether a is inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a&mask(int(p.bits)) == p.addr
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 {
	return 1 << uint(32-p.bits)
}

// Nth returns the n-th address in the prefix (0 is the network address).
// It panics if n is out of range.
func (p Prefix) Nth(n uint64) Addr {
	if n >= p.NumAddrs() {
		panic(fmt.Sprintf("netx: offset %d out of %s", n, p))
	}
	return p.addr + Addr(n)
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// MarshalText encodes the prefix as CIDR notation (JSON, flags, configs).
func (p Prefix) MarshalText() ([]byte, error) {
	return []byte(p.String()), nil
}

// UnmarshalText parses CIDR notation.
func (p *Prefix) UnmarshalText(text []byte) error {
	parsed, err := ParsePrefix(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// MarshalText encodes the address in dotted-quad notation.
func (a Addr) MarshalText() ([]byte, error) {
	return []byte(a.String()), nil
}

// UnmarshalText parses dotted-quad notation.
func (a *Addr) UnmarshalText(text []byte) error {
	parsed, err := ParseAddr(string(text))
	if err != nil {
		return err
	}
	*a = parsed
	return nil
}
