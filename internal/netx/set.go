package netx

import "sort"

// Set is a mutable set of IPv4 addresses. The characterization pipeline uses
// sets to count unique destinations and unique sources per hour; at full
// telescope scale the approximate counters in internal/sketch take over, and
// Set remains the exact reference implementation.
type Set struct {
	m map[Addr]struct{}
}

// NewSet returns an empty set with room for hint addresses.
func NewSet(hint int) *Set {
	return &Set{m: make(map[Addr]struct{}, hint)}
}

// Add inserts a, reporting whether it was newly added.
func (s *Set) Add(a Addr) bool {
	if _, dup := s.m[a]; dup {
		return false
	}
	s.m[a] = struct{}{}
	return true
}

// Contains reports membership.
func (s *Set) Contains(a Addr) bool {
	_, ok := s.m[a]
	return ok
}

// Remove deletes a, reporting whether it was present.
func (s *Set) Remove(a Addr) bool {
	if _, ok := s.m[a]; !ok {
		return false
	}
	delete(s.m, a)
	return true
}

// Len returns the number of addresses in the set.
func (s *Set) Len() int { return len(s.m) }

// Addrs returns the members in ascending order.
func (s *Set) Addrs() []Addr {
	out := make([]Addr, 0, len(s.m))
	for a := range s.m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Freeze returns an immutable, memory-compact snapshot of the set.
func (s *Set) Freeze() FrozenSet {
	return FrozenSet{addrs: s.Addrs()}
}

// FrozenSet is an immutable sorted-slice address set: half the memory of a
// map and cache-friendly for the read-only membership tests the correlator
// performs per tuple.
type FrozenSet struct {
	addrs []Addr
}

// NewFrozenSet builds a frozen set from addrs (copied, deduplicated).
func NewFrozenSet(addrs []Addr) FrozenSet {
	dup := make([]Addr, len(addrs))
	copy(dup, addrs)
	sort.Slice(dup, func(i, j int) bool { return dup[i] < dup[j] })
	out := dup[:0]
	for i, a := range dup {
		if i == 0 || a != dup[i-1] {
			out = append(out, a)
		}
	}
	return FrozenSet{addrs: out}
}

// Contains reports membership via binary search.
func (f FrozenSet) Contains(a Addr) bool {
	i := sort.Search(len(f.addrs), func(i int) bool { return f.addrs[i] >= a })
	return i < len(f.addrs) && f.addrs[i] == a
}

// Len returns the number of addresses.
func (f FrozenSet) Len() int { return len(f.addrs) }

// Addrs returns the members in ascending order. The returned slice is shared;
// callers must not modify it.
func (f FrozenSet) Addrs() []Addr { return f.addrs }
