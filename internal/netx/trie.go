package netx

// Trie is a binary radix trie mapping CIDR prefixes to values with
// longest-prefix-match lookup. It backs the synthetic Internet registry
// (IP -> country/ISP) and the inventory prefix index; a lookup walks at most
// 32 nodes and allocates nothing.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	value V
	set   bool
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] {
	return &Trie[V]{root: &trieNode[V]{}}
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Insert associates value with prefix, replacing any existing value for the
// exact same prefix. It reports whether the prefix was newly inserted.
func (t *Trie[V]) Insert(p Prefix, value V) bool {
	n := t.root
	a := uint32(p.Addr())
	for depth := 0; depth < p.Bits(); depth++ {
		bit := a >> uint(31-depth) & 1
		if n.child[bit] == nil {
			n.child[bit] = &trieNode[V]{}
		}
		n = n.child[bit]
	}
	isNew := !n.set
	n.value, n.set = value, true
	if isNew {
		t.size++
	}
	return isNew
}

// Lookup returns the value of the longest prefix containing a.
func (t *Trie[V]) Lookup(a Addr) (value V, ok bool) {
	n := t.root
	u := uint32(a)
	for depth := 0; ; depth++ {
		if n.set {
			value, ok = n.value, true
		}
		if depth == 32 {
			return value, ok
		}
		n = n.child[u>>uint(31-depth)&1]
		if n == nil {
			return value, ok
		}
	}
}

// Get returns the value stored for exactly prefix p.
func (t *Trie[V]) Get(p Prefix) (value V, ok bool) {
	n := t.root
	a := uint32(p.Addr())
	for depth := 0; depth < p.Bits(); depth++ {
		n = n.child[a>>uint(31-depth)&1]
		if n == nil {
			return value, false
		}
	}
	return n.value, n.set
}

// Delete removes the exact prefix p, reporting whether it was present.
// Interior nodes are left in place; at registry scale (thousands of
// prefixes, deletions rare) compaction is not worth the bookkeeping.
func (t *Trie[V]) Delete(p Prefix) bool {
	n := t.root
	a := uint32(p.Addr())
	for depth := 0; depth < p.Bits(); depth++ {
		n = n.child[a>>uint(31-depth)&1]
		if n == nil {
			return false
		}
	}
	if !n.set {
		return false
	}
	var zero V
	n.value, n.set = zero, false
	t.size--
	return true
}

// Walk visits every stored (prefix, value) pair in address order, stopping
// early if fn returns false.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	t.walk(t.root, 0, 0, fn)
}

func (t *Trie[V]) walk(n *trieNode[V], addr uint32, depth int, fn func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set && !fn(NewPrefix(Addr(addr), depth), n.value) {
		return false
	}
	if depth == 32 {
		return true
	}
	if !t.walk(n.child[0], addr, depth+1, fn) {
		return false
	}
	return t.walk(n.child[1], addr|1<<uint(31-depth), depth+1, fn)
}
