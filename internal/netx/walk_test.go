package netx

import (
	"testing"
	"testing/quick"

	"iotscope/internal/rng"
)

// Property: Walk visits exactly the stored prefixes, each once, in address
// order, for arbitrary insert sets.
func TestTrieWalkCompleteProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		tr := NewTrie[int]()
		want := make(map[Prefix]int)
		for i := 0; i < int(n)%40+1; i++ {
			p := NewPrefix(Addr(r.Uint32()), r.Intn(33))
			tr.Insert(p, i)
			want[p] = i
		}
		got := make(map[Prefix]int)
		var prev Prefix
		first := true
		ordered := true
		tr.Walk(func(p Prefix, v int) bool {
			got[p] = v
			if !first {
				if prev.Addr() > p.Addr() ||
					(prev.Addr() == p.Addr() && prev.Bits() > p.Bits()) {
					ordered = false
				}
			}
			prev, first = p, false
			return true
		})
		if !ordered || len(got) != len(want) {
			return false
		}
		for p, v := range want {
			if got[p] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: after deleting a prefix, Lookup falls back to the next-longest
// covering prefix (or none).
func TestTrieDeleteFallbackProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		tr := NewTrie[string]()
		outer := NewPrefix(Addr(r.Uint32()), 8+r.Intn(8))
		innerOff := r.Uint64n(outer.NumAddrs())
		inner := NewPrefix(outer.Nth(innerOff), outer.Bits()+4+r.Intn(8))
		tr.Insert(outer, "outer")
		tr.Insert(inner, "inner")

		probe := inner.Nth(r.Uint64n(inner.NumAddrs()))
		if v, ok := tr.Lookup(probe); !ok || v != "inner" {
			return false
		}
		tr.Delete(inner)
		v, ok := tr.Lookup(probe)
		return ok && v == "outer"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: FrozenSet matches map-set membership on arbitrary inputs.
func TestFrozenSetMembershipProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		var addrs []Addr
		truth := make(map[Addr]bool)
		for i := 0; i < int(n); i++ {
			a := Addr(r.Uint32() % 500)
			addrs = append(addrs, a)
			truth[a] = true
		}
		fs := NewFrozenSet(addrs)
		if fs.Len() != len(truth) {
			return false
		}
		for probe := Addr(0); probe < 500; probe += 7 {
			if fs.Contains(probe) != truth[probe] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
