package netx

import (
	"testing"

	"iotscope/internal/rng"
)

func TestTrieBasic(t *testing.T) {
	tr := NewTrie[string]()
	if tr.Len() != 0 {
		t.Fatal("new trie not empty")
	}
	if !tr.Insert(MustParsePrefix("10.0.0.0/8"), "ten") {
		t.Fatal("first insert not new")
	}
	if tr.Insert(MustParsePrefix("10.0.0.0/8"), "ten2") {
		t.Fatal("re-insert reported new")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	v, ok := tr.Lookup(MustParseAddr("10.1.2.3"))
	if !ok || v != "ten2" {
		t.Fatalf("Lookup = %q, %v", v, ok)
	}
	if _, ok := tr.Lookup(MustParseAddr("11.0.0.0")); ok {
		t.Fatal("lookup outside prefix matched")
	}
}

func TestTrieLongestPrefixWins(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "coarse")
	tr.Insert(MustParsePrefix("10.20.0.0/16"), "mid")
	tr.Insert(MustParsePrefix("10.20.30.0/24"), "fine")

	tests := []struct {
		addr string
		want string
	}{
		{"10.20.30.40", "fine"},
		{"10.20.99.1", "mid"},
		{"10.99.0.1", "coarse"},
	}
	for _, tc := range tests {
		v, ok := tr.Lookup(MustParseAddr(tc.addr))
		if !ok || v != tc.want {
			t.Errorf("Lookup(%s) = %q, %v want %q", tc.addr, v, ok, tc.want)
		}
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParsePrefix("0.0.0.0/0"), 1)
	tr.Insert(MustParsePrefix("203.0.113.0/24"), 2)
	if v, _ := tr.Lookup(MustParseAddr("8.8.8.8")); v != 1 {
		t.Errorf("default route lookup = %d", v)
	}
	if v, _ := tr.Lookup(MustParseAddr("203.0.113.9")); v != 2 {
		t.Errorf("specific lookup = %d", v)
	}
}

func TestTrieHostRoute(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParsePrefix("192.0.2.7/32"), 7)
	if v, ok := tr.Lookup(MustParseAddr("192.0.2.7")); !ok || v != 7 {
		t.Fatalf("host route lookup = %d, %v", v, ok)
	}
	if _, ok := tr.Lookup(MustParseAddr("192.0.2.8")); ok {
		t.Fatal("adjacent address matched host route")
	}
}

func TestTrieGetExact(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 8)
	tr.Insert(MustParsePrefix("10.0.0.0/16"), 16)
	if v, ok := tr.Get(MustParsePrefix("10.0.0.0/8")); !ok || v != 8 {
		t.Errorf("Get /8 = %d, %v", v, ok)
	}
	if v, ok := tr.Get(MustParsePrefix("10.0.0.0/16")); !ok || v != 16 {
		t.Errorf("Get /16 = %d, %v", v, ok)
	}
	if _, ok := tr.Get(MustParsePrefix("10.0.0.0/12")); ok {
		t.Error("Get on absent intermediate prefix matched")
	}
}

func TestTrieDelete(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 8)
	tr.Insert(MustParsePrefix("10.20.0.0/16"), 16)
	if !tr.Delete(MustParsePrefix("10.20.0.0/16")) {
		t.Fatal("delete existing failed")
	}
	if tr.Delete(MustParsePrefix("10.20.0.0/16")) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
	// Lookup now falls back to the /8.
	if v, ok := tr.Lookup(MustParseAddr("10.20.1.1")); !ok || v != 8 {
		t.Fatalf("fallback lookup = %d, %v", v, ok)
	}
}

func TestTrieWalkOrderAndEarlyStop(t *testing.T) {
	tr := NewTrie[int]()
	for i, p := range []string{"10.0.0.0/8", "9.0.0.0/8", "10.1.0.0/16", "172.16.0.0/12"} {
		tr.Insert(MustParsePrefix(p), i)
	}
	var got []string
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16", "172.16.0.0/12"}
	if len(got) != len(want) {
		t.Fatalf("walked %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order %v want %v", got, want)
		}
	}
	count := 0
	tr.Walk(func(Prefix, int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

// Property: trie LPM agrees with a brute-force scan over the prefix list.
func TestTrieMatchesBruteForce(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		tr := NewTrie[int]()
		type entry struct {
			p Prefix
			v int
		}
		var entries []entry
		n := 1 + r.Intn(60)
		for i := 0; i < n; i++ {
			p := NewPrefix(Addr(r.Uint32()), r.Intn(33))
			if _, dup := tr.Get(p); dup {
				continue
			}
			tr.Insert(p, i)
			entries = append(entries, entry{p, i})
		}
		for probe := 0; probe < 500; probe++ {
			var a Addr
			if r.Bool(0.5) && len(entries) > 0 {
				// Bias probes into stored prefixes so matches are exercised.
				e := entries[r.Intn(len(entries))]
				a = e.p.Nth(r.Uint64n(e.p.NumAddrs()))
			} else {
				a = Addr(r.Uint32())
			}
			bestBits, bestVal, found := -1, 0, false
			for _, e := range entries {
				if e.p.Contains(a) && e.p.Bits() > bestBits {
					bestBits, bestVal, found = e.p.Bits(), e.v, true
				}
			}
			v, ok := tr.Lookup(a)
			if ok != found || (ok && v != bestVal) {
				t.Fatalf("trial %d: Lookup(%v) = (%d,%v) want (%d,%v)",
					trial, a, v, ok, bestVal, found)
			}
		}
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	r := rng.New(1)
	tr := NewTrie[int]()
	for i := 0; i < 5000; i++ {
		tr.Insert(NewPrefix(Addr(r.Uint32()), 8+r.Intn(17)), i)
	}
	addrs := make([]Addr, 1024)
	for i := range addrs {
		addrs[i] = Addr(r.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i&1023])
	}
}
