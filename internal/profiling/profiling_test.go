package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i * i
	}
	_ = sink
	buf := make([][]byte, 64)
	for i := range buf {
		buf[i] = make([]byte, 1024)
	}
	_ = buf
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "c.pprof"), ""); err == nil {
		t.Fatal("unwritable cpu profile path accepted")
	}
}
