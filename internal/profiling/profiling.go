// Package profiling wires pprof capture into the CLIs. A command exposes
// -cpuprofile/-memprofile flags, calls Start with their values, and defers
// the returned stop function; the profiles land wherever the operator
// pointed them, ready for `go tool pprof`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges a heap profile into
// memPath; either path may be empty to skip that profile. The returned stop
// flushes and closes everything and must run exactly once, after the
// workload — typically via defer. When both paths are empty, Start is free
// and stop is a no-op.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("profiling: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("profiling: %w", err)
				}
				return firstErr
			}
			runtime.GC() // fold transient garbage out of the heap picture
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("profiling: write heap profile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("profiling: close heap profile: %w", err)
			}
		}
		return firstErr
	}, nil
}
