package abusecontact

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"iotscope/internal/geo"
	"iotscope/internal/netx"
)

func smallGeo(t *testing.T, seed uint64) *geo.Registry {
	t.Helper()
	cfg := geo.Config{
		DarkPrefix:        netx.MustParsePrefix("44.0.0.0/8"),
		FillerCountries:   6,
		ISPsPerCountryMin: 2,
		ISPsPerCountryMax: 5,
		PrefixBits:        16,
		PrefixesPerISP:    2,
	}
	g, err := geo.Build(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The registry is a pure function of (geo registry, seed): two independent
// derivations agree contact for contact, and a different seed moves the
// coverage holes.
func TestDeriveDeterminism(t *testing.T) {
	g1, g2 := smallGeo(t, 42), smallGeo(t, 42)
	a, b := Derive(g1, 42), Derive(g2, 42)
	if !reflect.DeepEqual(a.primary, b.primary) {
		t.Fatal("primary registry diverged across identical derivations")
	}
	if !reflect.DeepEqual(a.byASN, b.byASN) {
		t.Fatal("ASN registry diverged across identical derivations")
	}
	if !reflect.DeepEqual(a.catchal, b.catchal) {
		t.Fatal("country catch-all diverged across identical derivations")
	}

	c := Derive(g1, 43)
	if reflect.DeepEqual(a.primary, c.primary) && reflect.DeepEqual(a.byASN, c.byASN) {
		t.Fatal("different seed produced an identical registry")
	}
}

// Coverage is patchy by design — some operators lack a primary mailbox —
// but the country catch-all is complete, so every operator resolves when no
// tier is failed.
func TestCoverageShape(t *testing.T) {
	g := smallGeo(t, 7)
	reg := Derive(g, 7)
	if reg.PrimaryCoverage() == reg.NumISPs() {
		t.Fatal("no coverage holes: fallback tiers untestable")
	}
	if reg.PrimaryCoverage() == 0 {
		t.Fatal("empty primary registry")
	}
	r := NewResolver(reg)
	for i := 0; i < reg.NumISPs(); i++ {
		c, err := r.Resolve(i)
		if err != nil {
			t.Fatalf("ISP %d unresolved with healthy chain: %v", i, err)
		}
		if c.Email == "" || !strings.Contains(c.Email, "@") {
			t.Fatalf("ISP %d resolved to malformed mailbox %q", i, c.Email)
		}
		if c.ASN != g.ISPs[i].ASN || c.Country != g.ISPs[i].Country {
			t.Fatalf("ISP %d contact metadata mismatch: %+v", i, c)
		}
	}
	st := r.Stats()
	if st.Unresolved != 0 {
		t.Fatalf("healthy chain recorded %d unresolved", st.Unresolved)
	}
	if st.Registry.Resolved != reg.PrimaryCoverage() {
		t.Fatalf("registry tier resolved %d, coverage is %d",
			st.Registry.Resolved, reg.PrimaryCoverage())
	}
	if st.ASN.Resolved+st.Country.Resolved != reg.NumISPs()-reg.PrimaryCoverage() {
		t.Fatalf("fallback tiers resolved %d+%d, want %d",
			st.ASN.Resolved, st.Country.Resolved, reg.NumISPs()-reg.PrimaryCoverage())
	}
}

// Failing tiers degrades the chain one level at a time; failing all three
// leaves a retryable ErrUnresolved.
func TestFallbackChainDegradation(t *testing.T) {
	g := smallGeo(t, 11)
	reg := Derive(g, 11)
	boom := errors.New("backend down")

	r := NewResolver(reg)
	r.FailTier(TierRegistry, boom)
	c, err := r.Resolve(0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Tier == TierRegistry {
		t.Fatal("failed registry tier still resolved")
	}

	r.FailTier(TierASN, boom)
	c, err = r.Resolve(0)
	if err != nil || c.Tier != TierCountry {
		t.Fatalf("want country catch-all, got tier %v err %v", c.Tier, err)
	}

	r.FailTier(TierCountry, boom)
	_, err = r.Resolve(0)
	if !errors.Is(err, ErrUnresolved) {
		t.Fatalf("fully failed chain returned %v", err)
	}
	if !IsRetryable(err) {
		t.Fatal("tier failures should make the resolution retryable")
	}
	st := r.Stats()
	if st.Unresolved != 1 || st.Registry.Failures != 3 || st.Country.Failures != 1 {
		t.Fatalf("degradation stats off: %+v", st)
	}

	// Clearing the faults restores resolution.
	for tier := TierRegistry; tier < numTiers; tier++ {
		r.FailTier(tier, nil)
	}
	if _, err := r.Resolve(0); err != nil {
		t.Fatalf("cleared faults, still failing: %v", err)
	}
}

// A clean miss on every tier (no injected errors) must NOT be retryable —
// waiting will not create a record. Build the case by resolving against a
// country code absent from the catch-all via an out-of-range index guard
// and a doctored registry.
func TestUnresolvedMissIsPermanent(t *testing.T) {
	g := smallGeo(t, 13)
	reg := Derive(g, 13)
	// Doctor a registry with no record of operator 0 at any tier.
	delete(reg.primary, 0)
	delete(reg.byASN, reg.isps[0].ASN)
	delete(reg.catchal, reg.isps[0].Country)
	r := NewResolver(reg)
	_, err := r.Resolve(0)
	if !errors.Is(err, ErrUnresolved) {
		t.Fatalf("want ErrUnresolved, got %v", err)
	}
	if IsRetryable(err) {
		t.Fatal("clean misses must be permanent")
	}

	if _, err := r.Resolve(-1); !errors.Is(err, ErrUnknownISP) {
		t.Fatalf("want ErrUnknownISP, got %v", err)
	}
	if _, err := r.Resolve(reg.NumISPs()); !errors.Is(err, ErrUnknownISP) {
		t.Fatalf("want ErrUnknownISP, got %v", err)
	}
}

// The resolver is shared by parallel pipeline stages; hammer it from many
// goroutines under the race detector.
func TestResolverConcurrency(t *testing.T) {
	g := smallGeo(t, 17)
	r := NewResolver(Derive(g, 17))
	n := r.reg.NumISPs()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if w == 0 && i%50 == 0 {
					r.FailTier(TierRegistry, errors.New("flap"))
					r.FailTier(TierRegistry, nil)
				}
				_, _ = r.Resolve((w*97 + i) % n)
			}
		}(w)
	}
	wg.Wait()
	st := r.Stats()
	if st.Registry.Queries == 0 {
		t.Fatal("no queries recorded")
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"JSC ER-Telecom": "jsc-er-telecom",
		"Korea Telecom":  "korea-telecom",
		"X00-Net-3":      "x00-net-3",
		"  odd--name  ":  "odd-name",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

// FuzzResolve: arbitrary operator indices and fault masks never panic, and
// every outcome is either a well-formed contact or an error inside the
// package taxonomy with consistent stats.
func FuzzResolve(f *testing.F) {
	f.Add(0, uint8(0))
	f.Add(3, uint8(1))
	f.Add(-1, uint8(7))
	f.Add(1<<20, uint8(5))
	g, err := geo.Build(geo.Config{
		DarkPrefix:        netx.MustParsePrefix("44.0.0.0/8"),
		FillerCountries:   2,
		ISPsPerCountryMin: 1,
		ISPsPerCountryMax: 3,
		PrefixBits:        16,
		PrefixesPerISP:    1,
	}, 23)
	if err != nil {
		f.Fatal(err)
	}
	reg := Derive(g, 23)
	f.Fuzz(func(t *testing.T, isp int, faults uint8) {
		r := NewResolver(reg)
		for tier := TierRegistry; tier < numTiers; tier++ {
			if faults&(1<<uint(tier)) != 0 {
				r.FailTier(tier, fmt.Errorf("injected %v", tier))
			}
		}
		c, err := r.Resolve(isp)
		if err != nil {
			if !errors.Is(err, ErrUnknownISP) && !errors.Is(err, ErrUnresolved) {
				t.Fatalf("error outside taxonomy: %v", err)
			}
			return
		}
		if !strings.Contains(c.Email, "@") || c.Source != c.Tier.String() {
			t.Fatalf("malformed contact %+v", c)
		}
		if faults&(1<<uint(c.Tier)) != 0 {
			t.Fatalf("contact resolved by a failed tier: %+v", c)
		}
	})
}
