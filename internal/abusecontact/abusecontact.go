// Package abusecontact resolves the abuse mailbox responsible for an
// operator's address space — the lookup a production notifier performs
// against RDAP, RIPEstat, and Abusix before a complaint can be delivered.
// Our synthetic substrate derives the contact registry deterministically
// from the geo registry's ISP allocations, so the same scenario seed always
// yields the same contacts, and models the real world's patchy coverage:
// not every operator publishes an abuse mailbox, so resolution walks a
// three-tier fallback chain
//
//	primary registry (per-ISP mailbox)
//	→ ASN-level fallback (per-AS mailbox)
//	→ country catch-all (national CERT mailbox, always present)
//
// mirroring the RDAP → RIPEstat → Abusix chain. Each tier can be failed
// with an injected error (tests exercise chain degradation), and the
// resolver keeps per-tier statistics so a pipeline stage can report where
// its contacts actually came from.
package abusecontact

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"iotscope/internal/geo"
	"iotscope/internal/rng"
)

// Tier identifies one level of the fallback chain.
type Tier int

const (
	// TierRegistry is the per-ISP mailbox published in the primary registry.
	TierRegistry Tier = iota
	// TierASN is the AS-level fallback mailbox.
	TierASN
	// TierCountry is the national CERT catch-all.
	TierCountry
	numTiers
)

func (t Tier) String() string {
	switch t {
	case TierRegistry:
		return "registry"
	case TierASN:
		return "asn"
	case TierCountry:
		return "country"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// Coverage fractions of the synthetic registry: roughly 1 in 6 operators
// publishes no per-ISP mailbox, and 1 in 10 ASes lacks an AS-level record,
// so a realistic share of resolutions has to fall through the chain. The
// country catch-all is complete by construction.
const (
	registryCoverage = 0.84
	asnCoverage      = 0.90
)

// Contact is a resolved abuse mailbox.
type Contact struct {
	Email   string `json:"email"`
	Tier    Tier   `json:"-"`
	Source  string `json:"source"` // Tier.String(), kept denormalized for JSON
	ISP     string `json:"isp"`
	ASN     uint32 `json:"asn"`
	Country string `json:"country"`
}

// Registry is the deterministic contact database derived from a geo
// registry. It is immutable after Derive and safe for concurrent readers.
type Registry struct {
	primary map[int]string    // ISP index → mailbox (holes modeled)
	byASN   map[uint32]string // ASN → mailbox (holes modeled)
	catchal map[string]string // country code → CERT mailbox (complete)
	isps    []geo.ISP
}

// Derive builds the contact registry for the geo registry's allocations.
// The same (registry, seed) pair always yields the same contacts: each
// ISP's coverage is drawn from a per-ISP substream, so the outcome for
// operator i never depends on how many operators precede it.
func Derive(g *geo.Registry, seed uint64) *Registry {
	r := rng.New(seed).Derive("abusecontact")
	reg := &Registry{
		primary: make(map[int]string),
		byASN:   make(map[uint32]string),
		catchal: make(map[string]string),
		isps:    append([]geo.ISP(nil), g.ISPs...),
	}
	for i, isp := range reg.isps {
		s := r.DeriveN("isp", uint64(i))
		if s.Bool(registryCoverage) {
			reg.primary[i] = "abuse@" + slug(isp.Name) + ".example.net"
		}
		if s.Bool(asnCoverage) {
			reg.byASN[isp.ASN] = fmt.Sprintf("abuse@as%d.example.net", isp.ASN)
		}
	}
	for _, c := range g.Countries {
		reg.catchal[c.Code] = "abuse@cert-" + strings.ToLower(c.Code) + ".example.org"
	}
	return reg
}

// slug folds an ISP display name into a mailbox-safe host label.
func slug(name string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

// NumISPs returns how many operators the registry covers.
func (r *Registry) NumISPs() int { return len(r.isps) }

// PrimaryCoverage reports how many operators have a per-ISP mailbox.
func (r *Registry) PrimaryCoverage() int { return len(r.primary) }

// ErrUnknownISP marks a resolution against an operator index outside the
// registry — a caller wiring error, never retryable.
var ErrUnknownISP = errors.New("abusecontact: unknown ISP index")

// ErrUnresolved marks a resolution in which no tier produced a contact.
// Whether it is worth retrying depends on why: IsRetryable distinguishes
// tier lookups that errored (transient backend trouble) from a chain that
// genuinely has no record.
var ErrUnresolved = errors.New("abusecontact: no tier resolved a contact")

// retryableErr wraps ErrUnresolved when at least one tier failed with an
// injected/transient error rather than a clean miss.
type retryableErr struct{ err error }

func (e retryableErr) Error() string { return e.err.Error() }
func (e retryableErr) Unwrap() error { return e.err }

// IsRetryable reports whether a Resolve failure may succeed on a later
// attempt: at least one tier errored instead of cleanly missing.
func IsRetryable(err error) bool {
	var r retryableErr
	return errors.As(err, &r)
}

// TierStats counts one tier's resolution outcomes.
type TierStats struct {
	Queries  int `json:"queries"`
	Resolved int `json:"resolved"`
	Misses   int `json:"misses"`
	Failures int `json:"failures"`
}

// Stats is the per-tier resolution record of one Resolver.
type Stats struct {
	Registry TierStats `json:"registry"`
	ASN      TierStats `json:"asn"`
	Country  TierStats `json:"country"`
	// Unresolved counts resolutions in which every tier missed or failed.
	Unresolved int `json:"unresolved"`
}

func (s *Stats) tier(t Tier) *TierStats {
	switch t {
	case TierRegistry:
		return &s.Registry
	case TierASN:
		return &s.ASN
	default:
		return &s.Country
	}
}

// String renders the stats as a compact one-line summary for stage notes.
func (s Stats) String() string {
	return fmt.Sprintf("registry %d/%d, asn %d/%d, country %d/%d, unresolved %d",
		s.Registry.Resolved, s.Registry.Queries,
		s.ASN.Resolved, s.ASN.Queries,
		s.Country.Resolved, s.Country.Queries, s.Unresolved)
}

// Resolver walks the fallback chain against a registry, counting per-tier
// outcomes. It is safe for concurrent use.
type Resolver struct {
	reg *Registry

	mu     sync.Mutex
	faults [numTiers]error
	stats  Stats
}

// NewResolver returns a resolver over the registry.
func NewResolver(reg *Registry) *Resolver { return &Resolver{reg: reg} }

// FailTier injects err into every lookup against the tier (nil clears the
// fault). This is the chain-degradation test hook: a failed tier counts a
// failure and resolution falls through to the next tier.
func (r *Resolver) FailTier(t Tier, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t >= 0 && t < numTiers {
		r.faults[t] = err
	}
}

// Stats snapshots the per-tier counters.
func (r *Resolver) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Resolve walks the chain for operator isp: the first tier holding a
// contact wins; a tier that misses or fails falls through. When the whole
// chain comes up empty the error is ErrUnresolved, retryable iff some tier
// failed rather than missed.
func (r *Resolver) Resolve(isp int) (Contact, error) {
	if isp < 0 || isp >= len(r.reg.isps) {
		return Contact{}, fmt.Errorf("%w: %d of %d", ErrUnknownISP, isp, len(r.reg.isps))
	}
	meta := r.reg.isps[isp]

	r.mu.Lock()
	defer r.mu.Unlock()
	var tierErrs []error
	for t := TierRegistry; t < numTiers; t++ {
		ts := r.stats.tier(t)
		ts.Queries++
		if err := r.faults[t]; err != nil {
			ts.Failures++
			tierErrs = append(tierErrs, fmt.Errorf("%s: %w", t, err))
			continue
		}
		email, ok := r.lookup(t, isp, meta)
		if !ok {
			ts.Misses++
			continue
		}
		ts.Resolved++
		return Contact{
			Email:   email,
			Tier:    t,
			Source:  t.String(),
			ISP:     meta.Name,
			ASN:     meta.ASN,
			Country: meta.Country,
		}, nil
	}
	r.stats.Unresolved++
	err := fmt.Errorf("%w for %s (AS%d, %s)", ErrUnresolved, meta.Name, meta.ASN, meta.Country)
	if len(tierErrs) > 0 {
		err = retryableErr{fmt.Errorf("%w: %w", err, errors.Join(tierErrs...))}
	}
	return Contact{}, err
}

func (r *Resolver) lookup(t Tier, isp int, meta geo.ISP) (string, bool) {
	switch t {
	case TierRegistry:
		email, ok := r.reg.primary[isp]
		return email, ok
	case TierASN:
		email, ok := r.reg.byASN[meta.ASN]
		return email, ok
	default:
		email, ok := r.reg.catchal[meta.Country]
		return email, ok
	}
}
