package report

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"

	"iotscope/internal/core"
)

func TestComma(t *testing.T) {
	tests := []struct {
		in   uint64
		want string
	}{
		{0, "0"}, {7, "7"}, {999, "999"}, {1000, "1,000"},
		{26881, "26,881"}, {141300000, "141,300,000"},
	}
	for _, tc := range tests {
		if got := Comma(tc.in); got != tc.want {
			t.Errorf("Comma(%d) = %q want %q", tc.in, got, tc.want)
		}
	}
	if got := CommaInt(-1234); got != "-1,234" {
		t.Errorf("CommaInt(-1234) = %q", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(52.44); got != "52.4%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "T",
		Headers: []string{"a", "bb"},
		Footer:  "footer",
	}
	tbl.AddRow("xxx", "1")
	tbl.AddRow("y", "22")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T\n", "a    bb", "xxx  1", "y    22", "footer"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty sparkline %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3}, 4)
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline %q", s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline endpoints %q", s)
	}
	// Downsampling preserves spikes (column max).
	series := make([]float64, 100)
	series[50] = 100
	wide := []rune(Sparkline(series, 10))
	found := false
	for _, r := range wide {
		if r == '█' {
			found = true
		}
	}
	if !found {
		t.Error("spike lost in downsampling")
	}
	// Constant series renders at the floor.
	flat := Sparkline([]float64{5, 5, 5}, 3)
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series %q", flat)
		}
	}
}

func TestSeriesRender(t *testing.T) {
	var buf bytes.Buffer
	if err := Series(&buf, "name", []float64{1, 2, 3}, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "min=1 mean=2 max=3") {
		t.Errorf("series stats missing: %q", buf.String())
	}
	buf.Reset()
	if err := Series(&buf, "empty", nil, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(empty)") {
		t.Errorf("empty series: %q", buf.String())
	}
}

var (
	rptOnce sync.Once
	rptErr  error
	rptDS   *core.Dataset
	rptRes  *core.Results
)

func loadFixture(t *testing.T) (*core.Dataset, *core.Results) {
	t.Helper()
	rptOnce.Do(func() {
		dir, err := os.MkdirTemp("", "report-*")
		if err != nil {
			rptErr = err
			return
		}
		cfg := core.DefaultConfig(0.003, 99)
		cfg.Hours = 48
		rptDS, rptErr = core.Generate(cfg, dir)
		if rptErr != nil {
			return
		}
		rptRes, rptErr = rptDS.Analyze(cfg)
	})
	if rptErr != nil {
		t.Fatal(rptErr)
	}
	return rptDS, rptRes
}

func TestWriteAll(t *testing.T) {
	ds, res := loadFixture(t)
	var buf bytes.Buffer
	if err := WriteAll(&buf, res, ds); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantSections := []string{
		"Headline inference",
		"Fig. 1a", "Fig. 1b", "Fig. 2", "Fig. 3",
		"Table I ", "Table II ", "Table III",
		"Fig. 4", "Fig. 5", "Table IV", "Fig. 6", "Fig. 7",
		"Fig. 8a", "Fig. 8b", "Fig. 9", "Table V ", "Fig. 10",
		"Fig. 11", "Table VI", "Table VII",
		"Mann-Whitney", "Pearson",
		"Telnet", "JSC ER-Telecom",
	}
	for _, want := range wantSections {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 3000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}
