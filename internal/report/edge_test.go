package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableEmptyRows(t *testing.T) {
	tbl := Table{Title: "empty", Headers: []string{"a", "b"}}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a  b") {
		t.Fatalf("header missing: %q", buf.String())
	}
}

func TestTableRaggedRows(t *testing.T) {
	// Rows wider than the header set must not panic and must render.
	tbl := Table{Headers: []string{"only"}}
	tbl.AddRow("x")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x") {
		t.Fatal("row lost")
	}
}

func TestSparklineSingleValue(t *testing.T) {
	s := Sparkline([]float64{42}, 10)
	if len([]rune(s)) != 1 {
		t.Fatalf("single-point sparkline %q", s)
	}
}

func TestSparklineNegativeWidth(t *testing.T) {
	if got := Sparkline([]float64{1, 2}, 0); got != "" {
		t.Fatalf("zero width produced %q", got)
	}
}

func TestCommaBoundaries(t *testing.T) {
	tests := []struct {
		in   uint64
		want string
	}{
		{9, "9"}, {99, "99"}, {100, "100"}, {1001, "1,001"},
		{10000, "10,000"}, {100000, "100,000"}, {1000000, "1,000,000"},
		{18446744073709551615, "18,446,744,073,709,551,615"},
	}
	for _, tc := range tests {
		if got := Comma(tc.in); got != tc.want {
			t.Errorf("Comma(%d) = %q want %q", tc.in, got, tc.want)
		}
	}
}

func TestSeriesLargeDownsample(t *testing.T) {
	series := make([]float64, 10000)
	for i := range series {
		series[i] = float64(i)
	}
	var buf bytes.Buffer
	if err := Series(&buf, "big", series, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "max=9,999") {
		t.Fatalf("stats wrong: %q", out)
	}
	// One line only.
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("multi-line series: %q", out)
	}
}
