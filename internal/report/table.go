// Package report renders the reproduced tables and figures as aligned text
// — the output surface of cmd/iotreport and the benchmark harness. Tables
// are fixed-width aligned; figure series render as sparklines with
// min/mean/max annotations so spike locations and trends are visible in a
// terminal.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a generic aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Footer  string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Footer != "" {
		b.WriteString(t.Footer)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Comma formats an integer with thousands separators.
func Comma(v uint64) string {
	s := strconv.FormatUint(v, 10)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}

// CommaInt is Comma for signed values.
func CommaInt(v int) string {
	if v < 0 {
		return "-" + Comma(uint64(-v))
	}
	return Comma(uint64(v))
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// sparkRunes are the sparkline glyph levels.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as one line of block glyphs, downsampling to
// width columns by taking column maxima (so spikes survive downsampling).
func Sparkline(series []float64, width int) string {
	if len(series) == 0 || width <= 0 {
		return ""
	}
	cols := make([]float64, width)
	if len(series) <= width {
		cols = cols[:len(series)]
		copy(cols, series)
	} else {
		per := float64(len(series)) / float64(width)
		for c := 0; c < width; c++ {
			lo := int(float64(c) * per)
			hi := int(float64(c+1) * per)
			if hi > len(series) {
				hi = len(series)
			}
			max := series[lo]
			for _, v := range series[lo:hi] {
				if v > max {
					max = v
				}
			}
			cols[c] = max
		}
	}
	min, max := cols[0], cols[0]
	for _, v := range cols {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range cols {
		level := 0
		if max > min {
			level = int((v - min) / (max - min) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[level])
	}
	return b.String()
}

// Series renders a named series: sparkline plus min/mean/max stats.
func Series(w io.Writer, name string, series []float64, width int) error {
	if len(series) == 0 {
		_, err := fmt.Fprintf(w, "%-24s (empty)\n", name)
		return err
	}
	min, max, sum := series[0], series[0], 0.0
	for _, v := range series {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	_, err := fmt.Fprintf(w, "%-24s %s  min=%s mean=%s max=%s\n",
		name, Sparkline(series, width),
		Comma(uint64(min)), Comma(uint64(sum/float64(len(series)))), Comma(uint64(max)))
	return err
}
