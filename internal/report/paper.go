package report

import (
	"fmt"
	"io"
	"strconv"

	"iotscope/internal/analysis"
	"iotscope/internal/classify"
	"iotscope/internal/core"
	"iotscope/internal/devicedb"
)

const sparkWidth = 72

// Fig1a renders the deployment-by-country figure.
func Fig1a(w io.Writer, an *analysis.Analyzer) error {
	rows, cum := an.DeployedByCountry(15)
	t := Table{
		Title:   "Fig. 1a — Top 15 countries hosting deployed IoT devices",
		Headers: []string{"Country", "Consumer", "CPS", "Total"},
		Footer:  fmt.Sprintf("cumulative share of inventory: %s (paper: 69.3%%)", Pct(100*cum)),
	}
	for _, r := range rows {
		t.AddRow(r.Code, CommaInt(r.Consumer), CommaInt(r.CPS), CommaInt(r.Total()))
	}
	return t.Render(w)
}

// Fig1b renders the compromised-by-country figure.
func Fig1b(w io.Writer, an *analysis.Analyzer) error {
	rows := an.CompromisedByCountry(15)
	t := Table{
		Title:   "Fig. 1b — Top 15 countries hosting compromised IoT devices",
		Headers: []string{"Country", "Consumer", "CPS", "Total", "% compromised"},
	}
	for _, r := range rows {
		t.AddRow(r.Code, CommaInt(r.Consumer), CommaInt(r.CPS),
			CommaInt(r.Total()), Pct(r.PctCompromised))
	}
	return t.Render(w)
}

// Fig2 renders the cumulative discovery timeline.
func Fig2(w io.Writer, an *analysis.Analyzer) error {
	t := Table{
		Title:   "Fig. 2 — Cumulative daily discovered compromised IoT devices",
		Headers: []string{"Day", "New", "Cumulative", "Consumer", "CPS"},
	}
	for _, d := range an.DiscoveryTimeline() {
		t.AddRow(strconv.Itoa(d.Day+1), CommaInt(d.NewDevices),
			CommaInt(d.CumulativeAll), CommaInt(d.CumulativeConsumer), CommaInt(d.CumulativeCPS))
	}
	return t.Render(w)
}

// Fig3 renders the compromised consumer type mix.
func Fig3(w io.Writer, an *analysis.Analyzer) error {
	t := Table{
		Title:   "Fig. 3 — Compromised consumer IoT devices by type",
		Headers: []string{"Type", "Devices", "Share"},
	}
	for _, r := range an.ConsumerTypeMix() {
		t.AddRow(r.Type.String(), CommaInt(r.Devices), Pct(r.Pct))
	}
	return t.Render(w)
}

// Table1 renders the top consumer ISPs.
func Table1(w io.Writer, an *analysis.Analyzer) error {
	return ispTable(w, an, devicedb.Consumer,
		"Table I — Top 5 ISPs hosting compromised consumer IoT devices")
}

// Table2 renders the top CPS ISPs.
func Table2(w io.Writer, an *analysis.Analyzer) error {
	return ispTable(w, an, devicedb.CPS,
		"Table II — Top 5 ISPs hosting compromised CPS IoT devices")
}

func ispTable(w io.Writer, an *analysis.Analyzer, cat devicedb.Category, title string) error {
	t := Table{
		Title:   title,
		Headers: []string{"ISP", "Country", "Devices", "%"},
	}
	for _, r := range an.TopISPs(cat, 5) {
		t.AddRow(r.Name, r.Country, CommaInt(r.Devices), Pct(r.Pct))
	}
	return t.Render(w)
}

// Table3 renders the compromised CPS services.
func Table3(w io.Writer, an *analysis.Analyzer) error {
	t := Table{
		Title:   "Table III — Top 10 CPS realms hosting compromised IoT devices",
		Headers: []string{"Service/Protocol", "Devices", "%"},
	}
	for _, r := range an.CPSServices(10) {
		t.AddRow(r.Service, CommaInt(r.Devices), Pct(r.Pct))
	}
	return t.Render(w)
}

// Fig4 renders the protocol mix.
func Fig4(w io.Writer, an *analysis.Analyzer) error {
	mix := an.ProtocolBreakdown()
	t := Table{
		Title:   "Fig. 4 — Protocol share of IoT packets (percent of all IoT traffic)",
		Headers: []string{"Protocol", "CPS", "Consumer"},
	}
	t.AddRow("TCP", Pct(mix.TCPCPS), Pct(mix.TCPConsumer))
	t.AddRow("UDP", Pct(mix.UDPCPS), Pct(mix.UDPConsumer))
	t.AddRow("ICMP", Pct(mix.ICMPCPS), Pct(mix.ICMPConsumer))
	return t.Render(w)
}

// Fig5 renders the hourly UDP surfaces.
func Fig5(w io.Writer, an *analysis.Analyzer) error {
	if _, err := fmt.Fprintln(w, "Fig. 5 — Hourly UDP probing surface"); err != nil {
		return err
	}
	for _, cat := range []devicedb.Category{devicedb.CPS, devicedb.Consumer} {
		s := an.UDPSurface(cat)
		prefix := "(a) CPS      "
		if cat == devicedb.Consumer {
			prefix = "(b) consumer "
		}
		if err := Series(w, prefix+"packets", s.Packets, sparkWidth); err != nil {
			return err
		}
		if err := Series(w, prefix+"dst IPs", s.DstIPs, sparkWidth); err != nil {
			return err
		}
		if err := Series(w, prefix+"dst ports", s.DstPorts, sparkWidth); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Table4 renders the top UDP ports.
func Table4(w io.Writer, an *analysis.Analyzer) error {
	t := Table{
		Title:   "Table IV — Top 10 targeted UDP protocols/ports",
		Headers: []string{"Port", "Packets", "%", "Devices"},
	}
	for _, r := range an.TopUDPPorts(10) {
		t.AddRow(strconv.Itoa(int(r.Port)), Comma(r.Packets), Pct(r.Pct), CommaInt(r.Devices))
	}
	return t.Render(w)
}

// Fig6 renders the scanning/backscatter per-device CDFs.
func Fig6(w io.Writer, an *analysis.Analyzer) error {
	if _, err := fmt.Fprintln(w, "Fig. 6 — CDF of per-device scanning and backscatter packets"); err != nil {
		return err
	}
	t := Table{
		Headers: []string{"<= packets", "scanning CDF", "backscatter CDF"},
	}
	scan := analysis.CDF(an.ScannerTotals())
	bs := analysis.CDF(an.VictimTotals())
	scanFrac := scan.CumFraction()
	bsFrac := bs.CumFraction()
	for i, edge := range scan.Edges {
		t.AddRow(Comma(uint64(edge)),
			fmt.Sprintf("%.3f", scanFrac[i]), fmt.Sprintf("%.3f", bsFrac[i]))
	}
	return t.Render(w)
}

// Fig7 renders the backscatter series and spike attribution.
func Fig7(w io.Writer, res *core.Results, ds *core.Dataset) error {
	an := res.Analyzer
	if _, err := fmt.Fprintln(w, "Fig. 7 — Hourly backscatter packets and DoS spike attribution"); err != nil {
		return err
	}
	cps := an.Result().HourlyClassSeries(classify.Backscatter, devicedb.CPS)
	cons := an.Result().HourlyClassSeries(classify.Backscatter, devicedb.Consumer)
	if err := Series(w, "CPS backscatter", cps, sparkWidth); err != nil {
		return err
	}
	if err := Series(w, "consumer backscatter", cons, sparkWidth); err != nil {
		return err
	}
	t := Table{
		Title:   "Detected DoS episodes (single-victim attribution)",
		Headers: []string{"Hours", "Packets", "Victim device", "Country", "Realm", "Share"},
	}
	for _, sp := range an.DetectDoSSpikes(8) {
		d := ds.Inventory.At(sp.TopDevice)
		t.AddRow(fmt.Sprintf("%d-%d", sp.StartHour, sp.EndHour), Comma(sp.Packets),
			strconv.Itoa(sp.TopDevice), d.Country, d.Category.String(),
			fmt.Sprintf("%.0f%%", 100*sp.TopShare))
	}
	return t.Render(w)
}

// Fig8 renders victim countries.
func Fig8(w io.Writer, an *analysis.Analyzer) error {
	t := Table{
		Title:   "Fig. 8a — Top 15 countries by DoS IoT victims",
		Headers: []string{"Country", "Victims", "Consumer", "CPS"},
	}
	for _, r := range an.VictimsByCountry(15, false) {
		t.AddRow(r.Code, CommaInt(r.Victims), CommaInt(r.ConsumerVictims), CommaInt(r.CPSVictims))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	t2 := Table{
		Title:   "Fig. 8b — Top 15 countries by backscatter packets",
		Headers: []string{"Country", "Packets", "Victims"},
	}
	for _, r := range an.VictimsByCountry(15, true) {
		t2.AddRow(r.Code, Comma(r.Packets), CommaInt(r.Victims))
	}
	return t2.Render(w)
}

// Fig9 renders the hourly TCP scanning surfaces plus the port-sweep
// investigation.
func Fig9(w io.Writer, res *core.Results, ds *core.Dataset) error {
	an := res.Analyzer
	if _, err := fmt.Fprintln(w, "Fig. 9 — Hourly TCP scanning surface"); err != nil {
		return err
	}
	for _, cat := range []devicedb.Category{devicedb.CPS, devicedb.Consumer} {
		s := an.ScanSurface(cat)
		prefix := "(a) CPS      "
		if cat == devicedb.Consumer {
			prefix = "(b) consumer "
		}
		if err := Series(w, prefix+"packets", s.Packets, sparkWidth); err != nil {
			return err
		}
		if err := Series(w, prefix+"dst IPs", s.DstIPs, sparkWidth); err != nil {
			return err
		}
		if err := Series(w, prefix+"dst ports", s.DstPorts, sparkWidth); err != nil {
			return err
		}
	}
	if finding, ok := an.WidestPortSweep(); ok {
		d := ds.Inventory.At(finding.Device)
		fmt.Fprintf(w, "widest single-hour port sweep: device %d (%s, %s) at hour %d: %s ports on %s destinations\n",
			finding.Device, d.Type, d.Country, finding.Hour,
			CommaInt(finding.Ports), CommaInt(finding.Dests))
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Table5 renders the top scanned services.
func Table5(w io.Writer, an *analysis.Analyzer) error {
	t := Table{
		Title:   "Table V — Top 14 protocols/ports by TCP scanning packets",
		Headers: []string{"Service", "Packets", "%", "Cons %", "Cons IP", "CPS %", "CPS IP"},
	}
	for _, r := range an.TopScanServices(analysis.DefaultScanServices()) {
		t.AddRow(r.Service, Comma(r.Packets), Pct(r.Pct),
			Pct(r.ConsumerPct), CommaInt(r.ConsumerDevices),
			Pct(r.CPSPct), CommaInt(r.CPSDevices))
	}
	return t.Render(w)
}

// Fig10 renders the per-service scanning series.
func Fig10(w io.Writer, an *analysis.Analyzer) error {
	if _, err := fmt.Fprintln(w, "Fig. 10 — Hourly TCP scanning by top service"); err != nil {
		return err
	}
	for _, def := range analysis.DefaultScanServices()[:5] {
		if err := Series(w, def.Name, an.ServiceHourlySeries(def), sparkWidth); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Fig11 renders the explored-vs-flagged CDF.
func Fig11(w io.Writer, res *core.Results) error {
	inv := res.Threat
	if _, err := fmt.Fprintf(w,
		"Fig. 11 — CDF of packets: explored devices (N=%d) vs threat-flagged (N=%d)\n",
		inv.Explored, len(inv.Flagged)); err != nil {
		return err
	}
	t := Table{Headers: []string{"<= packets", "explored CDF", "flagged CDF"}}
	all := analysis.CDF(inv.ExploredTotals)
	flagged := analysis.CDF(inv.FlaggedTotals)
	af, ff := all.CumFraction(), flagged.CumFraction()
	for i, edge := range all.Edges {
		t.AddRow(Comma(uint64(edge)), fmt.Sprintf("%.3f", af[i]), fmt.Sprintf("%.3f", ff[i]))
	}
	return t.Render(w)
}

// Table6 renders the threat-category summary.
func Table6(w io.Writer, res *core.Results) error {
	t := Table{
		Title:   "Table VI — Identified threats (not mutually exclusive)",
		Headers: []string{"Threat category", "IoT devices", "%"},
		Footer: fmt.Sprintf("flagged %d of %d explored devices (%.1f%%)",
			len(res.Threat.Flagged), res.Threat.Explored,
			100*float64(len(res.Threat.Flagged))/maxF(float64(res.Threat.Explored), 1)),
	}
	for _, r := range res.Threat.ByCategory {
		t.AddRow(r.Category.Description(), CommaInt(r.Devices), Pct(r.Pct))
	}
	return t.Render(w)
}

// Table7 renders the malware families.
func Table7(w io.Writer, res *core.Results) error {
	t := Table{
		Title:   "Table VII — Identified malware families exploiting IoT devices",
		Headers: []string{"Malware family", "Hashes"},
		Footer: fmt.Sprintf("%d unique hashes, %d domains, %d matched devices",
			len(res.Malware.Hashes), len(res.Malware.Domains), len(res.Malware.MatchedDevices)),
	}
	for _, fam := range res.Malware.Families {
		t.AddRow(fam, CommaInt(res.Malware.PerFamilyHashes[fam]))
	}
	return t.Render(w)
}

// Headline renders the Sec. III-B / Sec. IV headline numbers and the
// statistical battery.
func Headline(w io.Writer, res *core.Results) error {
	s := res.Summary
	bs := res.Analyzer.Backscatter()
	fmt.Fprintf(w, "Headline inference (Sec. III-B)\n")
	fmt.Fprintf(w, "  compromised IoT devices: %s (consumer %s / CPS %s) across %d countries\n",
		CommaInt(s.Total), CommaInt(s.Consumer), CommaInt(s.CPS), s.Countries)
	fmt.Fprintf(w, "  total IoT packets: %s; mean daily active devices: %s\n",
		Comma(s.PacketsTotal), CommaInt(int(s.MeanDailyActiveDevices)))
	fmt.Fprintf(w, "  DoS victims: %s (consumer %s / CPS %s); backscatter %s pkts (%.1f%% of IoT traffic, %.0f%% from CPS)\n",
		CommaInt(bs.Victims), CommaInt(bs.ConsumerVictims), CommaInt(bs.CPSVictims),
		Comma(bs.Packets), bs.PctOfIoTTraffic, bs.CPSPacketShare)
	st := res.StatTests
	fmt.Fprintf(w, "Statistical battery (Sec. IV)\n")
	fmt.Fprintf(w, "  Mann-Whitney total pkts/hour consumer-vs-CPS:      U=%.0f Z=%+.2f p=%.2g\n",
		st.TotalCPSvsConsumer.U, st.TotalCPSvsConsumer.Z, st.TotalCPSvsConsumer.P)
	fmt.Fprintf(w, "  Mann-Whitney backscatter/hour consumer-vs-CPS:     U=%.0f Z=%+.2f p=%.2g (paper: U=6061, Z=-5.95)\n",
		st.BackscatterCPSvsConsumer.U, st.BackscatterCPSvsConsumer.Z, st.BackscatterCPSvsConsumer.P)
	fmt.Fprintf(w, "  Pearson consumer UDP ports-vs-IPs:                 r=%.3f p=%.2g (paper: r=0.95)\n",
		st.ConsumerUDPPortsVsIPs.R, st.ConsumerUDPPortsVsIPs.P)
	fmt.Fprintf(w, "  Pearson scanners-vs-scan packets:                  r=%.3f p=%.2g (paper: r~0, p>0.05)\n\n",
		st.ScannersVsScanPackets.R, st.ScannersVsScanPackets.P)
	return nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// WriteAll renders the full paper reproduction.
func WriteAll(w io.Writer, res *core.Results, ds *core.Dataset) error {
	if err := Headline(w, res); err != nil {
		return err
	}
	an := res.Analyzer
	steps := []func() error{
		func() error { return Fig1a(w, an) },
		func() error { return Fig1b(w, an) },
		func() error { return Fig2(w, an) },
		func() error { return Fig3(w, an) },
		func() error { return Table1(w, an) },
		func() error { return Table2(w, an) },
		func() error { return Table3(w, an) },
		func() error { return Fig4(w, an) },
		func() error { return Fig5(w, an) },
		func() error { return Table4(w, an) },
		func() error { return Fig6(w, an) },
		func() error { return Fig7(w, res, ds) },
		func() error { return Fig8(w, an) },
		func() error { return Fig9(w, res, ds) },
		func() error { return Table5(w, an) },
		func() error { return Fig10(w, an) },
		func() error { return Fig11(w, res) },
		func() error { return Table6(w, res) },
		func() error { return Table7(w, res) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}
