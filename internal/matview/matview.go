// Package matview materializes the read side of the sharing API. At
// snapshot build time — once per analysis or store load, never per
// request — it precomputes every aggregate the /v1/* endpoints serve:
// pre-encoded response bodies for the parameterless endpoints (summary,
// TCP port table, signatures, campaigns, malware indicators), a sorted
// device index with secondary indexes for every country/category filter
// combination, the full sorted UDP port table (top-K = prefix), per-ISP
// notification bundles, and an inverted per-hour victim index that turns
// DoS-spike attribution from an O(devices × hours) walk into an
// O(episode) lookup.
//
// The resulting Views value is immutable: handlers read it concurrently
// with no locking, and a snapshot swap replaces the whole Views pointer.
// Every precomputation reproduces the corresponding on-demand handler
// computation byte-for-byte (the apiserve equivalence suite pins this),
// so materialization changes request cost — O(answer) instead of
// O(dataset) — without changing a single response byte.
//
// Views also carries the content digest of the correlation result (via
// resultstore.DigestResult), from which the server derives strong ETags:
// two snapshots with identical analyzed state validate each other's
// cached responses even across restarts.
package matview

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"iotscope/internal/analysis"
	"iotscope/internal/campaign"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
	"iotscope/internal/geo"
	"iotscope/internal/malwaredb"
	"iotscope/internal/netx"
	"iotscope/internal/notify"
	"iotscope/internal/resultstore"
	"iotscope/internal/threatintel"
)

// Sources collects the analysis outputs a Views is materialized from.
// Result, Analyzer, Inventory, and Registry are required; Threat is
// optional (nil yields empty threat lookups).
type Sources struct {
	Result    *correlate.Result
	Analyzer  *analysis.Analyzer
	Summary   analysis.CompromisedSummary
	StatTests analysis.StatTests
	Malware   malwaredb.Correlation
	Inventory *devicedb.Inventory
	Registry  *geo.Registry
	Threat    *threatintel.Repository
}

// Views is one snapshot's materialized read side. All fields are written
// once by Build and never mutated; methods are safe for unbounded
// concurrent use.
type Views struct {
	digest   uint32
	buildDur time.Duration

	// Pre-encoded bodies for the parameterless endpoints, byte-identical
	// to encoding the handler's response value with a two-space-indented
	// json.Encoder (trailing newline included).
	summaryBody    []byte
	tcpPortsBody   []byte
	signaturesBody []byte
	campaignsBody  []byte
	malwareBody    []byte

	rows       []Device      // inferred devices, ascending ID
	rowJSON    [][]byte      // per-row pre-rendered array elements
	byID       map[int]int32 // device ID → index into rows
	threatCats [][]string    // per-row corroborating intel categories, never nil
	filters    map[filterKey][]int32

	udpRows []analysis.UDPPortRow // full table, descending packets

	bundles []notify.Bundle // per-ISP reports at MinDevices=1

	spikes spikeIndex

	inv    *devicedb.Inventory
	threat *threatintel.Repository
}

// Signature is a derived IoT attack signature (the paper's contribution
// 2: "the analyzed traffic could be leveraged to design such
// signatures"). It lives here because the signature table is
// materialized; apiserve re-exports it.
type Signature struct {
	Name        string   `json:"name"`
	Protocol    string   `json:"protocol"`
	Ports       []uint16 `json:"ports"`
	PacketShare float64  `json:"packetShare"`
	Devices     int      `json:"devices"`
	Realm       string   `json:"dominantRealm"`
}

// ThreatEvent is the wire shape of one threat-intelligence event.
type ThreatEvent struct {
	Category string `json:"category"`
	Source   string `json:"source"`
	Day      int    `json:"day"`
}

// Build materializes every view from the analysis outputs. It is called
// from the pipeline's materialize stage, so both the analyze path and the
// snapshot-load path pay the build exactly once per swap.
func Build(src Sources) (*Views, error) {
	if src.Result == nil || src.Analyzer == nil || src.Inventory == nil || src.Registry == nil {
		return nil, fmt.Errorf("matview: result, analyzer, inventory, and registry are required")
	}
	start := time.Now()
	v := &Views{inv: src.Inventory, threat: src.Threat}

	digest, err := resultstore.DigestResult(src.Result)
	if err != nil {
		return nil, fmt.Errorf("matview: digest: %w", err)
	}
	v.digest = digest

	if err := v.buildDeviceIndex(src); err != nil {
		return nil, err
	}
	v.buildSpikeIndex(src.Result)
	v.udpRows = src.Analyzer.TopUDPPorts(0)
	v.bundles = notify.Build(src.Result, src.Inventory, src.Registry, src.Threat,
		notify.Config{MinDevices: 1, MinPackets: 1})

	campaigns, err := campaign.Detect(src.Result, campaign.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("matview: campaigns: %w", err)
	}

	scanRows := src.Analyzer.TopScanServices(analysis.DefaultScanServices())
	var sigs []Signature
	for _, row := range scanRows {
		if row.Packets == 0 {
			continue
		}
		realm := "cps"
		if row.ConsumerPct >= 50 {
			realm = "consumer"
		}
		sigs = append(sigs, Signature{
			Name: row.Service, Protocol: "tcp-syn", Ports: row.Ports,
			PacketShare: row.Pct, Devices: row.ConsumerDevices + row.CPSDevices,
			Realm: realm,
		})
	}
	for _, row := range src.Analyzer.TopUDPPorts(10) {
		sigs = append(sigs, Signature{
			Name:     fmt.Sprintf("udp-%d", row.Port),
			Protocol: "udp", Ports: []uint16{row.Port},
			PacketShare: row.Pct, Devices: row.Devices, Realm: "mixed",
		})
	}

	for _, enc := range []struct {
		dst  *[]byte
		body any
	}{
		{&v.summaryBody, map[string]any{
			"summary":     src.Summary,
			"backscatter": src.Analyzer.Backscatter(),
			"statTests":   src.StatTests,
		}},
		{&v.tcpPortsBody, map[string]any{"services": scanRows}},
		{&v.signaturesBody, map[string]any{"signatures": sigs}},
		{&v.campaignsBody, map[string]any{"campaigns": campaigns}},
		{&v.malwareBody, map[string]any{
			"hashes":   src.Malware.Hashes,
			"domains":  src.Malware.Domains,
			"families": src.Malware.Families,
			"devices":  src.Malware.MatchedDevices,
		}},
	} {
		b, err := encodeBody(enc.body)
		if err != nil {
			return nil, fmt.Errorf("matview: encode static body: %w", err)
		}
		*enc.dst = b
	}

	v.buildDur = time.Since(start)
	return v, nil
}

// encodeBody renders v exactly as the serving layer's writeJSON does:
// two-space indent plus the json.Encoder trailing newline.
func encodeBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Digest is the content digest of the underlying correlation result —
// the CRC32 of its resultstore encoding, stable across restarts for
// identical analyzed state.
func (v *Views) Digest() uint32 { return v.digest }

// BuildDuration reports how long materialization took.
func (v *Views) BuildDuration() time.Duration { return v.buildDur }

// SummaryBody is the pre-encoded /v1/summary response.
func (v *Views) SummaryBody() []byte { return v.summaryBody }

// TCPPortsBody is the pre-encoded /v1/ports/tcp response.
func (v *Views) TCPPortsBody() []byte { return v.tcpPortsBody }

// SignaturesBody is the pre-encoded /v1/signatures response.
func (v *Views) SignaturesBody() []byte { return v.signaturesBody }

// CampaignsBody is the pre-encoded /v1/campaigns response.
func (v *Views) CampaignsBody() []byte { return v.campaignsBody }

// MalwareBody is the pre-encoded /v1/malware response.
func (v *Views) MalwareBody() []byte { return v.malwareBody }

// TopUDP returns the first n rows of the materialized UDP port table
// (n <= 0 or beyond the table returns the whole table). The slice aliases
// the immutable view — callers must not mutate it.
func (v *Views) TopUDP(n int) []analysis.UDPPortRow {
	if n <= 0 || n >= len(v.udpRows) {
		return v.udpRows
	}
	return v.udpRows[:n]
}

// Reports returns the per-ISP notification bundles with at least
// minDevices devices. The full table is materialized at MinDevices=1;
// because bundle ordering depends only on bundle contents, filtering the
// sorted table equals building with the larger floor.
func (v *Views) Reports(minDevices int) []notify.Bundle {
	if minDevices <= 1 {
		return v.bundles
	}
	out := make([]notify.Bundle, 0, len(v.bundles))
	for _, b := range v.bundles {
		if len(b.Devices) >= minDevices {
			out = append(out, b)
		}
	}
	return out
}

// ThreatEvents returns the wire-shaped intel events for ip. Never nil.
func (v *Views) ThreatEvents(ip netx.Addr) []ThreatEvent {
	if v.threat == nil {
		return []ThreatEvent{}
	}
	events := v.threat.Query(ip)
	out := make([]ThreatEvent, len(events))
	for i, ev := range events {
		out[i] = ThreatEvent{Category: ev.Category.String(), Source: ev.Source, Day: ev.Day}
	}
	return out
}

// Stats summarizes the materialized tables for observability surfaces
// (/debug/vars, stage reports, docs measurements).
type Stats struct {
	Devices       int     `json:"devices"`
	FilterLists   int     `json:"filterLists"`
	FilterEntries int     `json:"filterEntries"`
	UDPPorts      int     `json:"udpPorts"`
	Bundles       int     `json:"bundles"`
	Hours         int     `json:"hours"`
	VictimEntries int     `json:"victimEntries"`
	StaticBytes   int     `json:"staticBytes"`
	BuildMillis   float64 `json:"buildMillis"`
	Digest        string  `json:"digest"`
}

// Stats reports table sizes and build cost.
func (v *Views) Stats() Stats {
	s := Stats{
		Devices:     len(v.rows),
		FilterLists: len(v.filters),
		UDPPorts:    len(v.udpRows),
		Bundles:     len(v.bundles),
		Hours:       len(v.spikes.series),
		StaticBytes: len(v.summaryBody) + len(v.tcpPortsBody) + len(v.signaturesBody) +
			len(v.campaignsBody) + len(v.malwareBody),
		BuildMillis: float64(v.buildDur.Microseconds()) / 1000,
		Digest:      fmt.Sprintf("%08x", v.digest),
	}
	for _, ids := range v.filters {
		s.FilterEntries += len(ids)
	}
	for _, hv := range v.spikes.victims {
		s.VictimEntries += len(hv)
	}
	return s
}
