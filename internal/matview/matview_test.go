package matview_test

// External test package so the fixture can run the real pipeline through
// internal/core (which itself imports matview for the materialize stage).

import (
	"os"
	"reflect"
	"sync"
	"testing"

	"iotscope/internal/core"
	"iotscope/internal/matview"
	"iotscope/internal/notify"
)

var (
	mvOnce sync.Once
	mvErr  error
	mvDS   *core.Dataset
	mvRes  *core.Results
)

func fixture(t *testing.T) (*core.Dataset, *core.Results, *matview.Views) {
	t.Helper()
	mvOnce.Do(func() {
		dir, err := os.MkdirTemp("", "matview-*")
		if err != nil {
			mvErr = err
			return
		}
		defer os.RemoveAll(dir)
		cfg := core.DefaultConfig(0.004, 515)
		cfg.Hours = 48
		mvDS, mvErr = core.Generate(cfg, dir)
		if mvErr != nil {
			return
		}
		mvRes, mvErr = mvDS.Analyze(cfg)
	})
	if mvErr != nil {
		t.Fatal(mvErr)
	}
	if mvRes.Views == nil {
		t.Fatal("pipeline did not materialize views")
	}
	return mvDS, mvRes, mvRes.Views
}

func TestBuildValidation(t *testing.T) {
	ds, res, _ := fixture(t)
	bad := []matview.Sources{
		{},
		{Analyzer: res.Analyzer, Inventory: ds.Inventory, Registry: ds.Registry},
		{Result: res.Correlate, Inventory: ds.Inventory, Registry: ds.Registry},
		{Result: res.Correlate, Analyzer: res.Analyzer, Registry: ds.Registry},
		{Result: res.Correlate, Analyzer: res.Analyzer, Inventory: ds.Inventory},
	}
	for i, src := range bad {
		if _, err := matview.Build(src); err == nil {
			t.Errorf("case %d: incomplete sources accepted", i)
		}
	}
	// Threat is optional: lookups are empty, not nil panics.
	v, err := matview.Build(matview.Sources{
		Result: res.Correlate, Analyzer: res.Analyzer,
		Summary: res.Summary, StatTests: res.StatTests, Malware: res.Malware,
		Inventory: ds.Inventory, Registry: ds.Registry,
	})
	if err != nil {
		t.Fatalf("build without threat repo: %v", err)
	}
	if ev := v.ThreatEvents(ds.Inventory.At(0).IP); ev == nil || len(ev) != 0 {
		t.Fatalf("threat-less views: events %v", ev)
	}
}

func TestCursorRoundTrip(t *testing.T) {
	cases := []struct {
		country, category string
		afterID           int
	}{
		{"", "", -1}, {"RU", "", 0}, {"", "cps", 42},
		{"US", "consumer", 1 << 30}, {"weird country", "with\x1fsep", 7},
	}
	for _, tc := range cases {
		c := matview.EncodeCursor(tc.country, tc.category, tc.afterID)
		country, category, afterID, err := matview.DecodeCursor(c)
		if tc.category == "with\x1fsep" {
			// A separator inside a field cannot round-trip; it must be
			// rejected, never mis-parsed.
			if err == nil {
				t.Errorf("cursor with embedded separator decoded to %q %q %d", country, category, afterID)
			}
			continue
		}
		if err != nil || country != tc.country || category != tc.category || afterID != tc.afterID {
			t.Errorf("round trip %+v → %q %q %d, %v", tc, country, category, afterID, err)
		}
	}

	for _, bad := range []string{
		"", "!!!", "bm90LWEtY3Vyc29y", // not base64 / not a cursor payload
		"x" + matview.EncodeCursor("US", "cps", 5), // corrupted head: version check fails
	} {
		if _, _, _, err := matview.DecodeCursor(bad); err == nil {
			t.Errorf("bad cursor %q accepted", bad)
		}
	}
}

// Offset paging and cursor paging must enumerate exactly the same rows.
func TestDeviceSliceMatchesDevicesAfter(t *testing.T) {
	ds, _, v := fixture(t)
	if v.NumDevices() == 0 {
		t.Fatal("fixture inferred no devices")
	}
	filters := [][2]string{{"", ""}, {"ZZ", ""}, {"", "consumer"}, {"", "cps"}}
	if d, ok := v.Device(firstDeviceID(v)); ok {
		filters = append(filters, [2]string{d.Country, ""}, [2]string{d.Country, d.Category})
	}
	_ = ds

	for _, f := range filters {
		country, category := f[0], f[1]
		all, total := v.DeviceSlice(country, category, 0, -1)
		if len(all) != total {
			t.Fatalf("filter %v: slice %d rows, total %d", f, len(all), total)
		}

		var walked []matview.Device
		afterID := -1
		for {
			page, cursorTotal, more := v.DevicesAfter(country, category, afterID, 3)
			if cursorTotal != total {
				t.Fatalf("filter %v: cursor total %d, offset total %d", f, cursorTotal, total)
			}
			walked = append(walked, page...)
			if !more {
				break
			}
			if len(page) == 0 {
				t.Fatalf("filter %v: more=true with empty page", f)
			}
			afterID = page[len(page)-1].ID
		}
		if !reflect.DeepEqual(walked, all) && !(len(walked) == 0 && len(all) == 0) {
			t.Fatalf("filter %v: cursor walk %d rows != offset slice %d rows", f, len(walked), len(all))
		}
	}

	// Offset past the end: empty non-nil page, stable total.
	page, total := v.DeviceSlice("", "", v.NumDevices()+100, 10)
	if page == nil || len(page) != 0 || total != v.NumDevices() {
		t.Fatalf("past-end slice: %v total %d", page, total)
	}
}

func firstDeviceID(v *matview.Views) int {
	page, _, _ := v.DevicesAfter("", "", -1, 1)
	if len(page) == 0 {
		return -1
	}
	return page[0].ID
}

func TestTopUDPPrefix(t *testing.T) {
	_, res, v := fixture(t)
	full := v.TopUDP(0)
	if !reflect.DeepEqual(full, res.Analyzer.TopUDPPorts(0)) {
		t.Fatal("materialized UDP table diverges from the analyzer's")
	}
	if len(full) > 3 {
		if got := v.TopUDP(3); !reflect.DeepEqual(got, full[:3]) {
			t.Fatal("TopUDP(3) is not the 3-row prefix")
		}
	}
	if got := v.TopUDP(len(full) + 50); !reflect.DeepEqual(got, full) {
		t.Fatal("oversized n does not return the full table")
	}
	if got := v.TopUDP(-1); !reflect.DeepEqual(got, full) {
		t.Fatal("negative n does not return the full table")
	}
}

// Filtering the MinDevices=1 table must equal building with the larger
// floor — the property the /v1/reports materialization depends on.
func TestReportsMatchesNotifyBuild(t *testing.T) {
	ds, res, v := fixture(t)
	for _, min := range []int{1, 2, 3, 10} {
		want := notify.Build(res.Correlate, ds.Inventory, ds.Registry, ds.Threat,
			notify.Config{MinDevices: min, MinPackets: 1})
		got := v.Reports(min)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("minDevices=%d: materialized reports diverge (%d vs %d bundles)",
				min, len(got), len(want))
		}
	}
}

// The inverted victim index must attribute spikes exactly like the
// analyzer's per-episode device walk.
func TestDoSSpikesMatchesAnalysis(t *testing.T) {
	ds, res, v := fixture(t)
	for _, threshold := range []float64{1.5, 2.5, 8, 100} {
		want := res.Analyzer.DetectDoSSpikes(threshold)
		got := v.DoSSpikes(threshold)
		if len(got) != len(want) {
			t.Fatalf("threshold %v: %d spikes, analyzer %d", threshold, len(got), len(want))
		}
		for i, sp := range want {
			g := got[i]
			d := ds.Inventory.At(sp.TopDevice)
			if g.StartHour != sp.StartHour || g.EndHour != sp.EndHour ||
				g.Packets != sp.Packets || g.Victim != sp.TopDevice ||
				g.Share != sp.TopShare || g.Country != d.Country ||
				g.Category != d.Category.String() {
				t.Fatalf("threshold %v spike %d: %+v vs analyzer %+v", threshold, i, g, sp)
			}
		}
	}
}

func TestStatsSanity(t *testing.T) {
	_, _, v := fixture(t)
	st := v.Stats()
	if st.Devices != v.NumDevices() || st.Devices == 0 {
		t.Fatalf("stats devices %d, views %d", st.Devices, v.NumDevices())
	}
	if st.StaticBytes == 0 || st.FilterLists == 0 || st.Digest == "" {
		t.Fatalf("stats look empty: %+v", st)
	}
	// Every device appears in exactly 4 filter lists.
	if st.FilterEntries != 4*st.Devices {
		t.Fatalf("filter entries %d, want %d", st.FilterEntries, 4*st.Devices)
	}
}
