package matview

import (
	"encoding/base64"
	"errors"
	"strconv"
	"strings"
)

// ErrBadCursor is returned for any cursor the server did not mint:
// undecodable, wrong version, wrong field count, or a non-numeric
// position. Clients must treat cursors as opaque.
var ErrBadCursor = errors.New("matview: bad cursor")

const (
	cursorVersion = "v1"
	cursorSep     = "\x1f"
)

// EncodeCursor mints the opaque pagination cursor for /v1/devices: the
// filter combination it was issued under plus the last device ID of the
// page. Binding the filters in lets the server reject a cursor replayed
// against different query parameters instead of silently returning a
// page from another result set.
func EncodeCursor(country, category string, afterID int) string {
	raw := strings.Join([]string{cursorVersion, country, category, strconv.Itoa(afterID)}, cursorSep)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// DecodeCursor reverses EncodeCursor.
func DecodeCursor(s string) (country, category string, afterID int, err error) {
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return "", "", 0, ErrBadCursor
	}
	parts := strings.Split(string(b), cursorSep)
	if len(parts) != 4 || parts[0] != cursorVersion {
		return "", "", 0, ErrBadCursor
	}
	afterID, err = strconv.Atoi(parts[3])
	if err != nil {
		return "", "", 0, ErrBadCursor
	}
	return parts[1], parts[2], afterID, nil
}
