package matview

import (
	"iotscope/internal/classify"
	"iotscope/internal/correlate"
	"iotscope/internal/stats"
)

// Spike is the wire shape of one detected DoS episode.
type Spike struct {
	StartHour int     `json:"startHour"`
	EndHour   int     `json:"endHour"`
	Packets   uint64  `json:"packets"`
	Victim    int     `json:"victimDevice"`
	Share     float64 `json:"victimShare"`
	Country   string  `json:"country"`
	Category  string  `json:"category"`
}

// spikeIndex precomputes everything DoS-spike detection needs that does
// not depend on the caller's threshold: the hourly backscatter series,
// the median of its positive hours, and an inverted per-hour victim
// index. Detection for any threshold then touches only the episode's own
// hours instead of every device × every hour.
type spikeIndex struct {
	series  []float64 // per-hour backscatter packets
	median  float64   // median of the positive hours
	any     bool      // whether any hour saw backscatter
	victims [][]victimHour
}

type victimHour struct {
	id   int
	pkts uint64
}

func (v *Views) buildSpikeIndex(res *correlate.Result) {
	si := &v.spikes
	si.series = res.HourlyClassSeries(classify.Backscatter, 0)
	var positive []float64
	for _, x := range si.series {
		if x > 0 {
			positive = append(positive, x)
		}
	}
	si.any = len(positive) > 0
	if si.any {
		si.median = stats.Quantile(positive, 0.5)
	}
	si.victims = make([][]victimHour, len(si.series))
	for id, ds := range res.Devices {
		for h, pkts := range ds.BackscatterHourly {
			if pkts > 0 && h >= 0 && h < len(si.victims) {
				si.victims[h] = append(si.victims[h], victimHour{id: id, pkts: pkts})
			}
		}
	}
}

// DoSSpikes detects DoS episodes at the given threshold over the
// materialized index, reproducing analysis.DetectDoSSpikes exactly: hours
// whose backscatter exceeds threshold × the median positive hour, grouped
// into consecutive episodes, each attributed to the victim with the most
// packets in the episode (ties to the lowest device ID). Never nil.
func (v *Views) DoSSpikes(threshold float64) []Spike {
	if threshold <= 1 {
		threshold = 5
	}
	out := []Spike{}
	si := &v.spikes
	if !si.any {
		return out
	}
	median := si.median
	if median <= 0 {
		median = 1
	}
	cut := median * threshold

	inSpike := false
	for h := 0; h <= len(si.series); h++ {
		hot := h < len(si.series) && si.series[h] > cut
		switch {
		case hot && !inSpike:
			out = append(out, Spike{StartHour: h, EndHour: h})
			inSpike = true
		case hot && inSpike:
			out[len(out)-1].EndHour = h
		case !hot && inSpike:
			inSpike = false
		}
	}
	for i := range out {
		sp := &out[i]
		perDevice := make(map[int]uint64)
		for h := sp.StartHour; h <= sp.EndHour && h < len(si.victims); h++ {
			for _, vh := range si.victims[h] {
				perDevice[vh.id] += vh.pkts
				sp.Packets += vh.pkts
			}
		}
		var bestID int
		var bestPkts uint64
		for id, pkts := range perDevice {
			if pkts > bestPkts || (pkts == bestPkts && id < bestID) {
				bestID, bestPkts = id, pkts
			}
		}
		sp.Victim = bestID
		if sp.Packets > 0 {
			sp.Share = float64(bestPkts) / float64(sp.Packets)
		}
		d := v.inv.At(sp.Victim)
		sp.Country = d.Country
		sp.Category = d.Category.String()
	}
	return out
}
