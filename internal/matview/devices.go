package matview

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"iotscope/internal/classify"
)

// Device is the device wire shape served by /v1/devices and
// /v1/devices/{id}. Field order is part of the API contract.
type Device struct {
	ID          int      `json:"id"`
	IP          string   `json:"ip"`
	Category    string   `json:"category"`
	Type        string   `json:"type"`
	Country     string   `json:"country"`
	ISP         string   `json:"isp"`
	Services    []string `json:"services,omitempty"`
	FirstSeen   int      `json:"firstSeenHour"`
	Packets     uint64   `json:"packets"`
	Scanning    uint64   `json:"scanningPackets"`
	Backscatter uint64   `json:"backscatterPackets"`
	UDP         uint64   `json:"udpPackets"`
}

// filterKey addresses one secondary index: the empty string means "no
// filter" on that axis, so {"",""} is the full sorted device list.
type filterKey struct {
	country  string
	category string
}

// buildDeviceIndex materializes the sorted device rows, the ID lookup,
// the per-filter secondary indexes (every country/category combination
// that occurs), and the per-device corroborating intel categories.
func (v *Views) buildDeviceIndex(src Sources) error {
	ids := make([]int, 0, len(src.Result.Devices))
	for id := range src.Result.Devices {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	v.rows = make([]Device, len(ids))
	v.rowJSON = make([][]byte, len(ids))
	v.byID = make(map[int]int32, len(ids))
	v.threatCats = make([][]string, len(ids))
	v.filters = make(map[filterKey][]int32)
	for i, id := range ids {
		d := src.Inventory.At(id)
		st := src.Result.Devices[id]
		row := Device{
			ID: id, IP: d.IP.String(),
			Category: d.Category.String(), Type: d.Type.String(),
			Country: d.Country, ISP: src.Registry.ISPs[d.ISP].Name,
			Services: d.Services,
		}
		if st != nil {
			row.FirstSeen = st.FirstSeen
			row.Packets = st.TotalPackets()
			row.Scanning = st.Packets[classify.ScanTCP.Index()] + st.Packets[classify.ScanICMP.Index()]
			row.Backscatter = st.Packets[classify.Backscatter.Index()]
			row.UDP = st.Packets[classify.UDP.Index()]
		}
		pos := int32(i)
		v.rows[i] = row
		// Pre-render the row exactly as a "devices" array element of the
		// two-space-indented response: MarshalIndent with the element's
		// line prefix ("    " = envelope + array depth). Page responses
		// are then assembled by concatenation instead of re-encoding.
		rj, err := json.MarshalIndent(row, "    ", "  ")
		if err != nil {
			return fmt.Errorf("matview: encode device %d: %w", id, err)
		}
		v.rowJSON[i] = rj
		v.byID[id] = pos

		cats := []string{}
		if src.Threat != nil {
			for _, c := range src.Threat.CategoriesOf(d.IP) {
				cats = append(cats, c.String())
			}
		}
		v.threatCats[i] = cats

		// ids are ascending, so every filter list is born sorted.
		for _, k := range []filterKey{
			{"", ""},
			{row.Country, ""},
			{"", row.Category},
			{row.Country, row.Category},
		} {
			v.filters[k] = append(v.filters[k], pos)
		}
	}
	if len(ids) == 0 {
		// The unfiltered list must exist even when nothing was inferred.
		v.filters[filterKey{}] = nil
	}
	return nil
}

// NumDevices reports the number of inferred devices.
func (v *Views) NumDevices() int { return len(v.rows) }

// Device returns the row for one device ID.
func (v *Views) Device(id int) (Device, bool) {
	pos, ok := v.byID[id]
	if !ok {
		return Device{}, false
	}
	return v.rows[pos], true
}

// ThreatCategories returns the corroborating intel categories for one
// inferred device. The second result reports whether the device exists;
// the slice is never nil for an existing device.
func (v *Views) ThreatCategories(id int) ([]string, bool) {
	pos, ok := v.byID[id]
	if !ok {
		return nil, false
	}
	return v.threatCats[pos], true
}

// DeviceSlice answers offset pagination over one filter combination:
// rows [offset, offset+limit) of the matching devices in ascending-ID
// order, plus the total match count. An offset past the end yields an
// empty (non-nil) page.
func (v *Views) DeviceSlice(country, category string, offset, limit int) ([]Device, int) {
	ids := v.filters[filterKey{country, category}]
	total := len(ids)
	if offset > total {
		offset = total
	}
	ids = ids[offset:]
	if limit >= 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]Device, len(ids))
	for i, pos := range ids {
		out[i] = v.rows[pos]
	}
	return out, total
}

// AppendDeviceSliceBody appends the complete /v1/devices offset-mode
// response body to buf from the pre-encoded rows — byte-identical to
// encoding {"devices": …, "offset": …, "total": …} with a
// two-space-indented json.Encoder, at concatenation cost. The echoed
// offset is clamped to total, matching the pre-materialization handler.
// Appending into a caller-owned (typically pooled) buffer keeps the hot
// list endpoint free of per-request body allocations.
func (v *Views) AppendDeviceSliceBody(buf *bytes.Buffer, country, category string, offset, limit int) {
	ids := v.filters[filterKey{country, category}]
	total := len(ids)
	if offset > total {
		offset = total
	}
	page := ids[offset:]
	if limit >= 0 && len(page) > limit {
		page = page[:limit]
	}
	v.growForPage(buf, len(page))
	buf.WriteString("{\n  \"devices\": ")
	v.appendRowArray(buf, page)
	fmt.Fprintf(buf, ",\n  \"offset\": %d,\n  \"total\": %d\n}\n", offset, total)
}

// AppendDevicesAfterBody appends the complete /v1/devices cursor-mode
// response body ({"devices": …, "nextCursor"?: …, "total": …}) to buf
// from the pre-encoded rows. nextCursor is present iff matches remain
// past the page.
func (v *Views) AppendDevicesAfterBody(buf *bytes.Buffer, country, category string, afterID, limit int) {
	ids := v.filters[filterKey{country, category}]
	total := len(ids)
	lo := sort.Search(len(ids), func(i int) bool { return v.rows[ids[i]].ID > afterID })
	page := ids[lo:]
	more := false
	if limit >= 0 && len(page) > limit {
		page = page[:limit]
		more = true
	}
	v.growForPage(buf, len(page))
	buf.WriteString("{\n  \"devices\": ")
	v.appendRowArray(buf, page)
	if more {
		last := v.rows[page[len(page)-1]].ID
		// The cursor alphabet (base64url) needs no JSON escaping.
		fmt.Fprintf(buf, ",\n  \"nextCursor\": %q", EncodeCursor(country, category, last))
	}
	fmt.Fprintf(buf, ",\n  \"total\": %d\n}\n", total)
}

// growForPage pre-sizes the page buffer: envelope plus n rows at the
// first row's size (rows are near-uniform).
func (v *Views) growForPage(buf *bytes.Buffer, n int) {
	size := 96
	if n > 0 && len(v.rowJSON) > 0 {
		size += n * (len(v.rowJSON[0]) + 8)
	}
	buf.Grow(size)
}

// appendRowArray writes the "devices" array value from pre-encoded rows,
// matching json.Encoder's rendering of a non-nil []Device at depth 1.
func (v *Views) appendRowArray(buf *bytes.Buffer, page []int32) {
	if len(page) == 0 {
		buf.WriteString("[]")
		return
	}
	buf.WriteString("[\n")
	for i, pos := range page {
		if i > 0 {
			buf.WriteString(",\n")
		}
		buf.WriteString("    ")
		buf.Write(v.rowJSON[pos])
	}
	buf.WriteString("\n  ]")
}

// DevicesAfter answers cursor pagination: up to limit matching devices
// with ID strictly greater than afterID, in ascending-ID order. more
// reports whether matches remain past the returned page. The position is
// found by binary search, so resuming deep into a large list costs
// O(log n + page), not O(offset).
func (v *Views) DevicesAfter(country, category string, afterID, limit int) (out []Device, total int, more bool) {
	ids := v.filters[filterKey{country, category}]
	total = len(ids)
	lo := sort.Search(len(ids), func(i int) bool { return v.rows[ids[i]].ID > afterID })
	page := ids[lo:]
	if limit >= 0 && len(page) > limit {
		page = page[:limit]
		more = true
	}
	out = make([]Device, len(page))
	for i, pos := range page {
		out[i] = v.rows[pos]
	}
	return out, total, more
}
