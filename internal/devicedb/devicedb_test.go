package devicedb

import (
	"bytes"
	"strings"
	"testing"

	"iotscope/internal/geo"
	"iotscope/internal/netx"
)

func TestCategoryRoundTrip(t *testing.T) {
	for _, c := range []Category{Consumer, CPS} {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Errorf("round trip %v: %v, %v", c, got, err)
		}
	}
	if _, err := ParseCategory("bogus"); err == nil {
		t.Error("bogus category parsed")
	}
}

func TestDeviceTypeRoundTrip(t *testing.T) {
	for _, d := range append(ConsumerTypes(), TypeCPS) {
		got, err := ParseDeviceType(d.String())
		if err != nil || got != d {
			t.Errorf("round trip %v: %v, %v", d, got, err)
		}
	}
	if _, err := ParseDeviceType("bogus"); err == nil {
		t.Error("bogus type parsed")
	}
}

func TestCPSServiceTable(t *testing.T) {
	if len(CPSServices) != 31 {
		t.Fatalf("CPS services = %d, want the paper's 31", len(CPSServices))
	}
	if CPSServices[0].Name != "Telvent OASyS DNA" {
		t.Errorf("top service %q", CPSServices[0].Name)
	}
	if i := CPSServiceIndex("Modbus TCP"); i < 0 || CPSServices[i].Name != "Modbus TCP" {
		t.Errorf("Modbus TCP index %d", i)
	}
	if CPSServiceIndex("nope") != -1 {
		t.Error("unknown service found")
	}
}

func TestNewInventoryRejectsDuplicateIPs(t *testing.T) {
	_, err := NewInventory([]Device{
		{ID: 0, IP: 1, Category: Consumer, Type: TypeRouter},
		{ID: 1, IP: 1, Category: CPS, Type: TypeCPS},
	})
	if err == nil {
		t.Fatal("duplicate IPs accepted")
	}
}

func TestInventoryLookup(t *testing.T) {
	inv, err := NewInventory([]Device{
		{ID: 0, IP: netx.MustParseAddr("1.2.3.4"), Category: Consumer, Type: TypeRouter, Country: "US"},
		{ID: 1, IP: netx.MustParseAddr("5.6.7.8"), Category: CPS, Type: TypeCPS, Country: "RU"},
	})
	if err != nil {
		t.Fatal(err)
	}
	i, ok := inv.LookupIP(netx.MustParseAddr("5.6.7.8"))
	if !ok || inv.At(i).Country != "RU" {
		t.Fatalf("lookup failed: %d %v", i, ok)
	}
	if _, ok := inv.LookupIP(netx.MustParseAddr("9.9.9.9")); ok {
		t.Fatal("phantom lookup")
	}
	counts := inv.CountByCategory()
	if counts[Consumer] != 1 || counts[CPS] != 1 {
		t.Fatalf("counts %v", counts)
	}
}

func testRegistry(t testing.TB) *geo.Registry {
	t.Helper()
	cfg := geo.DefaultConfig()
	reg, err := geo.Build(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestGenerateShape(t *testing.T) {
	reg := testRegistry(t)
	cfg := DefaultGenConfig(20000)
	inv, err := Generate(cfg, reg, 99)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Len() != 20000 {
		t.Fatalf("generated %d devices", inv.Len())
	}

	byCountry := make(map[string]int)
	byCat := make(map[Category]int)
	byType := make(map[DeviceType]int)
	for _, d := range inv.All() {
		byCountry[d.Country]++
		byCat[d.Category]++
		if d.Category == Consumer {
			byType[d.Type]++
			if d.Services != nil {
				t.Fatal("consumer device has CPS services")
			}
		} else {
			if len(d.Services) < 1 || len(d.Services) > 3 {
				t.Fatalf("CPS device has %d services", len(d.Services))
			}
		}
	}

	// Deployment shares (US should lead at ~25 %).
	usShare := float64(byCountry["US"]) / float64(inv.Len())
	if usShare < 0.23 || usShare > 0.27 {
		t.Errorf("US share %v want ~0.25", usShare)
	}
	for _, code := range []string{"GB", "RU", "CN"} {
		if byCountry["US"] <= byCountry[code] {
			t.Errorf("US (%d) should exceed %s (%d)", byCountry["US"], code, byCountry[code])
		}
	}

	// Global category split ~55/45.
	consumerShare := float64(byCat[Consumer]) / float64(inv.Len())
	if consumerShare < 0.50 || consumerShare > 0.60 {
		t.Errorf("consumer share %v", consumerShare)
	}

	// Consumer type mix: routers > printers > cameras > storage.
	if !(byType[TypeRouter] > byType[TypePrinter] &&
		byType[TypePrinter] > byType[TypeIPCamera] &&
		byType[TypeIPCamera] > byType[TypeStorage]) {
		t.Errorf("type mix %v", byType)
	}
}

func TestGenerateCPSBias(t *testing.T) {
	reg := testRegistry(t)
	inv, err := Generate(DefaultGenConfig(30000), reg, 3)
	if err != nil {
		t.Fatal(err)
	}
	count := func(code string, cat Category) int {
		n := 0
		for _, d := range inv.All() {
			if d.Country == code && d.Category == cat {
				n++
			}
		}
		return n
	}
	// CN is CPS-biased; US is not.
	if count("CN", CPS) <= count("CN", Consumer) {
		t.Errorf("CN CPS %d <= consumer %d", count("CN", CPS), count("CN", Consumer))
	}
	if count("US", Consumer) <= count("US", CPS) {
		t.Errorf("US consumer %d <= CPS %d", count("US", Consumer), count("US", CPS))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	reg := testRegistry(t)
	a, err := Generate(DefaultGenConfig(3000), reg, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultGenConfig(3000), reg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := 0; i < a.Len(); i++ {
		da, db := a.At(i), b.At(i)
		if da.IP != db.IP || da.Country != db.Country || da.Type != db.Type {
			t.Fatalf("device %d differs: %+v vs %+v", i, da, db)
		}
	}
}

func TestGenerateCountryISPConsistentWithRegistry(t *testing.T) {
	reg := testRegistry(t)
	inv, err := Generate(DefaultGenConfig(2000), reg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range inv.All() {
		info, ok := reg.Lookup(d.IP)
		if !ok {
			t.Fatalf("device IP %v not in registry", d.IP)
		}
		if info.Country != d.Country || info.ISP != d.ISP {
			t.Fatalf("device %d metadata (%s/%d) disagrees with registry (%s/%d)",
				d.ID, d.Country, d.ISP, info.Country, info.ISP)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	reg := testRegistry(t)
	bad := DefaultGenConfig(0)
	if _, err := Generate(bad, reg, 1); err == nil {
		t.Error("zero devices accepted")
	}
	bad = DefaultGenConfig(10)
	bad.ConsumerFraction = 1.5
	if _, err := Generate(bad, reg, 1); err == nil {
		t.Error("bad consumer fraction accepted")
	}
	bad = DefaultGenConfig(10)
	bad.ServicesPerCPSMin = 0
	if _, err := Generate(bad, reg, 1); err == nil {
		t.Error("bad service range accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	reg := testRegistry(t)
	inv, err := Generate(DefaultGenConfig(500), reg, 11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := inv.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != inv.Len() {
		t.Fatalf("loaded %d devices, want %d", back.Len(), inv.Len())
	}
	for i := 0; i < inv.Len(); i++ {
		a, b := inv.At(i), back.At(i)
		if a.ID != b.ID || a.IP != b.IP || a.Category != b.Category ||
			a.Type != b.Type || a.Country != b.Country || a.ISP != b.ISP ||
			len(a.Services) != len(b.Services) {
			t.Fatalf("device %d: %+v != %+v", i, a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		`{"id":0,"ip":"999.1.1.1","category":"consumer","type":"router"}`,
		`{"id":0,"ip":"1.1.1.1","category":"weird","type":"router"}`,
		`{"id":0,"ip":"1.1.1.1","category":"consumer","type":"weird"}`,
		`not json`,
	} {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	reg := testRegistry(t)
	inv, err := Generate(DefaultGenConfig(100), reg, 13)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/inv.jsonl"
	if err := inv.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 100 {
		t.Fatalf("loaded %d", back.Len())
	}
}

func TestApportion(t *testing.T) {
	got := Apportion(10, []float64{1, 1, 2})
	if got[0]+got[1]+got[2] != 10 {
		t.Fatalf("sum %v", got)
	}
	if got[2] != 5 {
		t.Fatalf("heaviest part %v", got)
	}
	got = Apportion(7, []float64{1, 1, 1})
	sum := got[0] + got[1] + got[2]
	if sum != 7 {
		t.Fatalf("sum %d", sum)
	}
	// Zero and negative weights get nothing.
	got = Apportion(5, []float64{0, -3, 1})
	if got[0] != 0 || got[1] != 0 || got[2] != 5 {
		t.Fatalf("zero-weight apportion %v", got)
	}
	// Degenerate inputs.
	if out := Apportion(0, []float64{1}); out[0] != 0 {
		t.Error("total 0")
	}
	if out := Apportion(5, nil); len(out) != 0 {
		t.Error("empty weights")
	}
	if out := Apportion(5, []float64{0, 0}); out[0] != 0 || out[1] != 0 {
		t.Error("all-zero weights")
	}
}

func TestApportionExactShares(t *testing.T) {
	// Largest remainder must keep each part within 1 of the exact share.
	weights := []float64{25, 6, 5.9, 5, 58.1}
	total := 12345
	parts := Apportion(total, weights)
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	got := 0
	for i, p := range parts {
		exact := float64(total) * weights[i] / sum
		if float64(p) < exact-1 || float64(p) > exact+1 {
			t.Errorf("part %d = %d, exact %v", i, p, exact)
		}
		got += p
	}
	if got != total {
		t.Fatalf("sum %d != %d", got, total)
	}
}

func BenchmarkGenerate(b *testing.B) {
	reg := testRegistry(b)
	cfg := DefaultGenConfig(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg, reg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupIP(b *testing.B) {
	reg := testRegistry(b)
	inv, err := Generate(DefaultGenConfig(50000), reg, 1)
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]netx.Addr, 1024)
	for i := range addrs {
		addrs[i] = inv.At(i * 37 % inv.Len()).IP
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inv.LookupIP(addrs[i&1023])
	}
}
