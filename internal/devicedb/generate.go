package devicedb

import (
	"fmt"
	"sort"

	"iotscope/internal/geo"
	"iotscope/internal/netx"
	"iotscope/internal/rng"
)

// CountryShare assigns a deployment share (fraction of all devices) to a
// country, with an optional CPS bias (Fig. 1a reports CPS outnumbering
// consumer devices in CN, FR, CA, VN, TW, ES).
type CountryShare struct {
	Code    string
	Share   float64
	CPSBias bool
}

// TypeWeight is a deployment weight for one consumer device type.
type TypeWeight struct {
	Type   DeviceType
	Weight float64
}

// GenConfig controls inventory synthesis.
type GenConfig struct {
	// TotalDevices is the inventory size (the paper: 331 000).
	TotalDevices int
	// ConsumerFraction is the global consumer share (the paper: 181/331).
	ConsumerFraction float64
	// BiasedConsumerFraction applies to CPSBias countries.
	BiasedConsumerFraction float64
	// CountryShares lists per-country deployment shares; the remainder is
	// spread uniformly over every registry country not listed.
	CountryShares []CountryShare
	// ConsumerTypeWeights shapes Fig. 3's deployed type mix.
	ConsumerTypeWeights []TypeWeight
	// ServicesPerCPSMin/Max bound how many protocols a CPS device runs.
	ServicesPerCPSMin int
	ServicesPerCPSMax int
	// ISPZipfExponent skews consumer devices onto each country's leading
	// ISPs (Table I: ER-Telecom holds 27.6 % of compromised consumer
	// devices).
	ISPZipfExponent float64
	// CPSISPZipfExponent spreads CPS devices more evenly over operators
	// (Table II's leader holds only 4.5 %), with per-country overrides for
	// the operators the paper names (RU's Rostelecom).
	CPSISPZipfExponent    float64
	CPSISPCountryExponent map[string]float64
}

// DefaultGenConfig mirrors the paper's Sec. III-A1 deployment statistics at
// the given inventory size.
func DefaultGenConfig(totalDevices int) GenConfig {
	return GenConfig{
		TotalDevices:           totalDevices,
		ConsumerFraction:       181.0 / 331.0,
		BiasedConsumerFraction: 0.40,
		CountryShares: []CountryShare{
			// Fig. 1a top 15 (cumulative 69.3 %).
			{Code: "US", Share: 25.0}, {Code: "GB", Share: 6.0},
			{Code: "RU", Share: 5.9}, {Code: "CN", Share: 5.0, CPSBias: true},
			{Code: "KR", Share: 4.8}, {Code: "FR", Share: 4.4, CPSBias: true},
			{Code: "IT", Share: 3.9}, {Code: "DE", Share: 3.5},
			{Code: "CA", Share: 3.1, CPSBias: true}, {Code: "AU", Share: 2.8},
			{Code: "VN", Share: 2.5, CPSBias: true}, {Code: "TW", Share: 2.3, CPSBias: true},
			{Code: "BR", Share: 2.2}, {Code: "ES", Share: 2.1, CPSBias: true},
			{Code: "MX", Share: 1.8},
			// Countries outside the deployment top 15 that appear in the
			// compromised top 15 (Fig. 1b): modest deployment, so their high
			// compromise counts come from high per-country compromise rates.
			{Code: "TH", Share: 1.6}, {Code: "ID", Share: 1.6},
			{Code: "SG", Share: 1.0}, {Code: "TR", Share: 1.3},
			{Code: "UA", Share: 0.8}, {Code: "IN", Share: 1.5},
			{Code: "PH", Share: 0.9}, {Code: "NL", Share: 1.2},
			{Code: "CH", Share: 0.8}, {Code: "AR", Share: 0.7},
			{Code: "JP", Share: 1.6}, {Code: "DO", Share: 0.3},
			{Code: "ZA", Share: 0.6}, {Code: "MY", Share: 0.7},
			{Code: "PL", Share: 1.0}, {Code: "SE", Share: 0.9},
		},
		ConsumerTypeWeights: []TypeWeight{
			// Sec. III-A1: routers 46.9 %, printers 29.1 %, cameras 18.3 %,
			// storage 4.6 %, remainder 1.1 %.
			{TypeRouter, 46.9}, {TypePrinter, 29.1}, {TypeIPCamera, 18.3},
			{TypeStorage, 4.6}, {TypeDVR, 0.9}, {TypeHub, 0.2},
		},
		ServicesPerCPSMin:     1,
		ServicesPerCPSMax:     2,
		ISPZipfExponent:       1.6,
		CPSISPZipfExponent:    1.0,
		CPSISPCountryExponent: map[string]float64{"RU": 1.6},
	}
}

// Generate synthesizes an inventory over the registry, deterministically
// from seed.
func Generate(cfg GenConfig, reg *geo.Registry, seed uint64) (*Inventory, error) {
	if cfg.TotalDevices <= 0 {
		return nil, fmt.Errorf("devicedb: total devices %d must be positive", cfg.TotalDevices)
	}
	if cfg.ConsumerFraction < 0 || cfg.ConsumerFraction > 1 {
		return nil, fmt.Errorf("devicedb: consumer fraction %v out of [0,1]", cfg.ConsumerFraction)
	}
	if cfg.ServicesPerCPSMin < 1 || cfg.ServicesPerCPSMax < cfg.ServicesPerCPSMin {
		return nil, fmt.Errorf("devicedb: invalid services-per-CPS range")
	}
	r := rng.New(seed).Derive("devicedb")

	countries, shares, biased := expandCountryShares(cfg, reg)
	countryCounts := Apportion(cfg.TotalDevices, shares)

	typeWeights := make([]float64, len(cfg.ConsumerTypeWeights))
	for i, tw := range cfg.ConsumerTypeWeights {
		typeWeights[i] = tw.Weight
	}

	serviceWeights := make([]float64, len(CPSServices))
	for i, s := range CPSServices {
		serviceWeights[i] = s.Weight
	}
	serviceDist := rng.NewCategorical(serviceWeights)

	used := make(map[netx.Addr]struct{}, cfg.TotalDevices)
	devices := make([]Device, 0, cfg.TotalDevices)

	for ci, code := range countries {
		n := countryCounts[ci]
		if n == 0 {
			continue
		}
		isps := reg.ISPsIn(code)
		if len(isps) == 0 {
			return nil, fmt.Errorf("devicedb: country %q has no ISPs", code)
		}
		consumerFrac := cfg.ConsumerFraction
		if biased[ci] {
			consumerFrac = cfg.BiasedConsumerFraction
		}
		nConsumer := int(float64(n)*consumerFrac + 0.5)
		nCPS := n - nConsumer
		cr := r.Derive("country", code)

		// Consumer devices, exact type apportionment.
		typeCounts := Apportion(nConsumer, typeWeights)
		for ti, tc := range typeCounts {
			typ := cfg.ConsumerTypeWeights[ti].Type
			for k := 0; k < tc; k++ {
				isp := pickISP(cr, isps, cfg.ISPZipfExponent, 0)
				ip, err := uniqueAddr(cr, reg, isp, used)
				if err != nil {
					return nil, err
				}
				devices = append(devices, Device{
					IP: ip, Category: Consumer, Type: typ,
					Country: code, ISP: isp,
				})
			}
		}
		// CPS devices. The ISP preference order is rotated by one so a
		// country's business operator differs from its consumer leader
		// (Table I vs Table II: ER-Telecom vs Rostelecom), and the skew is
		// flatter except where the paper names a dominant operator.
		cpsExp := cfg.CPSISPZipfExponent
		if cpsExp == 0 {
			cpsExp = cfg.ISPZipfExponent
		}
		if v, ok := cfg.CPSISPCountryExponent[code]; ok {
			cpsExp = v
		}
		for k := 0; k < nCPS; k++ {
			isp := pickISP(cr, isps, cpsExp, 1)
			ip, err := uniqueAddr(cr, reg, isp, used)
			if err != nil {
				return nil, err
			}
			nsvc := cfg.ServicesPerCPSMin
			if cfg.ServicesPerCPSMax > cfg.ServicesPerCPSMin {
				nsvc += cr.Intn(cfg.ServicesPerCPSMax - cfg.ServicesPerCPSMin + 1)
			}
			svcs := sampleServices(cr, serviceDist, nsvc)
			devices = append(devices, Device{
				IP: ip, Category: CPS, Type: TypeCPS,
				Country: code, ISP: isp, Services: svcs,
			})
		}
	}

	// Shuffle so device IDs carry no country ordering, then assign IDs.
	r.Shuffle(len(devices), func(i, j int) { devices[i], devices[j] = devices[j], devices[i] })
	for i := range devices {
		devices[i].ID = i
	}
	return NewInventory(devices)
}

// expandCountryShares resolves the configured shares against the registry
// country list, spreading the residual share uniformly over unlisted
// countries.
func expandCountryShares(cfg GenConfig, reg *geo.Registry) (codes []string, shares []float64, biased []bool) {
	listed := make(map[string]CountryShare, len(cfg.CountryShares))
	total := 0.0
	for _, cs := range cfg.CountryShares {
		listed[cs.Code] = cs
		total += cs.Share
	}
	var unlisted []string
	for _, c := range reg.Countries {
		if _, ok := listed[c.Code]; !ok {
			unlisted = append(unlisted, c.Code)
		}
	}
	residual := 0.0
	if total < 100 {
		residual = 100 - total
	}
	per := 0.0
	if len(unlisted) > 0 {
		per = residual / float64(len(unlisted))
	}
	for _, c := range reg.Countries {
		if cs, ok := listed[c.Code]; ok {
			codes = append(codes, c.Code)
			shares = append(shares, cs.Share)
			biased = append(biased, cs.CPSBias)
		} else {
			codes = append(codes, c.Code)
			shares = append(shares, per)
			biased = append(biased, false)
		}
	}
	return codes, shares, biased
}

// pickISP samples an ISP index with Zipf-skewed preference, rotating the
// preference order by rotate positions.
func pickISP(r *rng.Source, isps []int, exponent float64, rotate int) int {
	if len(isps) == 1 {
		return isps[0]
	}
	z := rng.NewZipf(len(isps), exponent)
	rank := z.Sample(r) - 1
	return isps[(rank+rotate)%len(isps)]
}

// uniqueAddr draws an unused address from the ISP's space.
func uniqueAddr(r *rng.Source, reg *geo.Registry, isp int, used map[netx.Addr]struct{}) (netx.Addr, error) {
	for attempt := 0; attempt < 1000; attempt++ {
		a := reg.RandomAddr(r, isp)
		if _, dup := used[a]; !dup {
			used[a] = struct{}{}
			return a, nil
		}
	}
	return 0, fmt.Errorf("devicedb: ISP %d address space saturated", isp)
}

// sampleServices draws n distinct services from the deployment mix.
func sampleServices(r *rng.Source, dist *rng.Categorical, n int) []string {
	seen := make(map[int]struct{}, n)
	out := make([]string, 0, n)
	for attempt := 0; len(out) < n && attempt < 50; attempt++ {
		i := dist.Sample(r)
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		out = append(out, CPSServices[i].Name)
	}
	sort.Strings(out)
	return out
}

// Apportion splits total into len(weights) integer parts proportional to
// weights using the largest-remainder method, so small-scale runs preserve
// the configured shares exactly rather than multinomially.
func Apportion(total int, weights []float64) []int {
	out := make([]int, len(weights))
	if total <= 0 || len(weights) == 0 {
		return out
	}
	sum := 0.0
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum == 0 {
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, len(weights))
	assigned := 0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		exact := float64(total) * w / sum
		out[i] = int(exact)
		assigned += out[i]
		rems = append(rems, rem{i, exact - float64(out[i])})
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].idx < rems[j].idx
	})
	for k := 0; assigned < total && k < len(rems); k++ {
		out[rems[k].idx]++
		assigned++
	}
	// Degenerate carry (all fractions zero): dump remainder on heaviest.
	for assigned < total {
		out[rems[0].idx]++
		assigned++
	}
	return out
}
