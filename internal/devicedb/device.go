// Package devicedb implements the IoT device inventory that substitutes for
// the paper's Shodan dataset (Sec. III-A1): ~331 K Internet-facing IoT
// devices across consumer and CPS realms, with country, ISP, device-type,
// and service metadata. The generator plants the paper's published marginal
// distributions; the correlation pipeline consumes only the same fields the
// paper obtained from Shodan.
package devicedb

import (
	"fmt"

	"iotscope/internal/netx"
)

// Category splits the inventory into the paper's two realms.
type Category uint8

const (
	// Consumer covers routers, IP cameras, printers, storage, DVRs, hubs.
	Consumer Category = iota + 1
	// CPS covers industrial/control-system devices (PLC, RTU, SCADA, ...).
	CPS
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Consumer:
		return "consumer"
	case CPS:
		return "cps"
	default:
		return fmt.Sprintf("category-%d", uint8(c))
	}
}

// ParseCategory inverts Category.String.
func ParseCategory(s string) (Category, error) {
	switch s {
	case "consumer":
		return Consumer, nil
	case "cps":
		return CPS, nil
	default:
		return 0, fmt.Errorf("devicedb: unknown category %q", s)
	}
}

// DeviceType classifies consumer devices (Fig. 3). CPS devices carry
// TypeCPS and are further described by their Services.
type DeviceType uint8

const (
	TypeRouter DeviceType = iota + 1
	TypeIPCamera
	TypePrinter
	TypeStorage
	TypeDVR
	TypeHub
	TypeCPS
)

var typeNames = map[DeviceType]string{
	TypeRouter:   "router",
	TypeIPCamera: "ip-camera",
	TypePrinter:  "printer",
	TypeStorage:  "network-storage",
	TypeDVR:      "tv-box-dvr",
	TypeHub:      "electric-hub",
	TypeCPS:      "cps",
}

// String implements fmt.Stringer.
func (t DeviceType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("type-%d", uint8(t))
}

// ParseDeviceType inverts DeviceType.String.
func ParseDeviceType(s string) (DeviceType, error) {
	for t, name := range typeNames {
		if name == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("devicedb: unknown device type %q", s)
}

// ConsumerTypes lists the consumer device types in Fig. 3 order.
func ConsumerTypes() []DeviceType {
	return []DeviceType{TypeRouter, TypeIPCamera, TypePrinter, TypeStorage, TypeDVR, TypeHub}
}

// Device is one inventory entry. IPs are unique within an inventory.
type Device struct {
	ID       int
	IP       netx.Addr
	Category Category
	Type     DeviceType
	Country  string   // country code (geo registry)
	ISP      int      // ISP index (geo registry)
	Services []string // CPS services/protocols; nil for consumer devices
}

// CPSServices lists the paper's Table III protocols first (with their
// common applications) followed by synthetic fillers up to the 31
// industrial protocols Sec. III-A1 reports.
var CPSServices = buildCPSServices()

// CPSService describes one industrial protocol.
type CPSService struct {
	Name        string
	Application string
	// Weight is the deployment share used by the generator, shaped after
	// Table III.
	Weight float64
}

func buildCPSServices() []CPSService {
	named := []CPSService{
		{"Telvent OASyS DNA", "Oil and Gas transportation pipelines and distribution networks", 20.0},
		{"SNC GENe", "Control systems", 18.3},
		{"Niagara Fox", "Building automation systems", 13.4},
		{"MQ Telemetry Transport", "IoT communications, sensory networks, safety-critical communications", 12.9},
		{"Ethernet/IP", "Manufacturing automation", 12.8},
		{"ABB Ranger", "Power generating plants, transmission lines, mining, transportation", 9.1},
		{"Siemens Spectrum PowerTG", "Utility networks", 5.9},
		{"Modbus TCP", "Power utilities", 5.5},
		{"Foxboro/Invensys Foxboro", "Plant automation systems, flowmeters, single-loop controllers", 5.1},
		{"Foundation Fieldbus HSE", "Plant and factory automation", 3.0},
		{"BACnet/IP", "Building automation", 2.2},
	}
	for i := len(named); i < 31; i++ {
		named = append(named, CPSService{
			Name:        fmt.Sprintf("ICS-Proto-%02d", i+1),
			Application: "Synthetic industrial protocol",
			Weight:      1.0,
		})
	}
	return named
}

// CPSServiceIndex returns the index of a service by name, or -1.
func CPSServiceIndex(name string) int {
	for i, s := range CPSServices {
		if s.Name == name {
			return i
		}
	}
	return -1
}
