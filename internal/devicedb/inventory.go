package devicedb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"iotscope/internal/netx"
)

// Inventory is an immutable-after-build device database with an IP index —
// the structure the correlation engine queries once per flowtuple source.
type Inventory struct {
	devices []Device
	byIP    map[netx.Addr]int
}

// NewInventory builds an inventory from devices, validating IP uniqueness.
func NewInventory(devices []Device) (*Inventory, error) {
	inv := &Inventory{
		devices: devices,
		byIP:    make(map[netx.Addr]int, len(devices)),
	}
	for i, d := range devices {
		if prev, dup := inv.byIP[d.IP]; dup {
			return nil, fmt.Errorf("devicedb: devices %d and %d share IP %v", prev, i, d.IP)
		}
		inv.byIP[d.IP] = i
	}
	return inv, nil
}

// Len returns the number of devices.
func (inv *Inventory) Len() int { return len(inv.devices) }

// At returns device i.
func (inv *Inventory) At(i int) Device { return inv.devices[i] }

// LookupIP returns the device index owning addr.
func (inv *Inventory) LookupIP(addr netx.Addr) (int, bool) {
	i, ok := inv.byIP[addr]
	return i, ok
}

// All returns the backing device slice. Callers must not modify it.
func (inv *Inventory) All() []Device { return inv.devices }

// CountByCategory tallies devices per category.
func (inv *Inventory) CountByCategory() map[Category]int {
	out := make(map[Category]int, 2)
	for _, d := range inv.devices {
		out[d.Category]++
	}
	return out
}

// deviceJSON is the JSONL persistence shape; enums are serialized as their
// string forms so files diff and grep cleanly.
type deviceJSON struct {
	ID       int      `json:"id"`
	IP       string   `json:"ip"`
	Category string   `json:"category"`
	Type     string   `json:"type"`
	Country  string   `json:"country"`
	ISP      int      `json:"isp"`
	Services []string `json:"services,omitempty"`
}

// Save writes the inventory as JSON lines.
func (inv *Inventory) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for _, d := range inv.devices {
		rec := deviceJSON{
			ID:       d.ID,
			IP:       d.IP.String(),
			Category: d.Category.String(),
			Type:     d.Type.String(),
			Country:  d.Country,
			ISP:      d.ISP,
			Services: d.Services,
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("devicedb: encode device %d: %w", d.ID, err)
		}
	}
	return bw.Flush()
}

// SaveFile writes the inventory to path.
func (inv *Inventory) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := inv.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a JSONL inventory.
func Load(r io.Reader) (*Inventory, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	var devices []Device
	for line := 0; ; line++ {
		var rec deviceJSON
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("devicedb: line %d: %w", line+1, err)
		}
		ip, err := netx.ParseAddr(rec.IP)
		if err != nil {
			return nil, fmt.Errorf("devicedb: line %d: %w", line+1, err)
		}
		cat, err := ParseCategory(rec.Category)
		if err != nil {
			return nil, fmt.Errorf("devicedb: line %d: %w", line+1, err)
		}
		typ, err := ParseDeviceType(rec.Type)
		if err != nil {
			return nil, fmt.Errorf("devicedb: line %d: %w", line+1, err)
		}
		devices = append(devices, Device{
			ID:       rec.ID,
			IP:       ip,
			Category: cat,
			Type:     typ,
			Country:  rec.Country,
			ISP:      rec.ISP,
			Services: rec.Services,
		})
	}
	return NewInventory(devices)
}

// LoadFile reads an inventory from path.
func LoadFile(path string) (*Inventory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
