// Package pipeline is the staged execution engine the paper's methodology
// maps onto: ingest flowtuples → infer compromised devices → characterize
// traffic → investigate maliciousness → report. Each step is a Stage — a
// named, context-aware unit of work over a shared State — and an Engine
// runs a stage list sequentially, instrumenting every stage (wall time,
// records in/out, retries, quarantined hours, error class) into a
// JSON-serializable Report.
//
// The engine is deliberately small: composition (Sequence, Parallel,
// Retry) covers the shapes the tools need, cancellation is first-class
// (a stage that honors its ctx makes the whole pipeline cancellable), and
// observability is free — every cmd that drives an Engine can dump the
// Report with -stage-report.
package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand/v2"
	"os"
	"sync"
	"time"
)

// Stage is one named unit of pipeline work. Run must honor ctx: a stage
// that can block or loop checks ctx.Err() at its natural boundaries
// (between hour files, between record batches) and returns the context's
// error promptly when cancelled, leaving any pooled or shared state
// reusable.
type Stage interface {
	Name() string
	Run(ctx context.Context, st *State) error
}

// State is the keyed blackboard stages communicate through. Most stages
// close over typed values instead; State exists for loosely coupled
// composition (a cmd appending a custom stage after library stages) and is
// safe for concurrent use by Parallel branches.
type State struct {
	mu   sync.RWMutex
	vals map[string]any
}

// NewState returns an empty state.
func NewState() *State { return &State{vals: make(map[string]any)} }

// Put stores a value under key.
func (s *State) Put(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vals[key] = v
}

// Get returns the value stored under key.
func (s *State) Get(key string) (any, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.vals[key]
	return v, ok
}

type funcStage struct {
	name string
	fn   func(ctx context.Context, st *State) error
}

// Func adapts a function to the Stage interface.
func Func(name string, fn func(ctx context.Context, st *State) error) Stage {
	return funcStage{name: name, fn: fn}
}

func (f funcStage) Name() string                             { return f.name }
func (f funcStage) Run(ctx context.Context, st *State) error { return f.fn(ctx, st) }

// Stage status values recorded in StageMetrics.
const (
	StatusOK      = "ok"
	StatusFailed  = "failed"
	StatusSkipped = "skipped"
)

// ErrSkipped, returned by a stage's Run, marks the stage skipped without
// failing the pipeline: the engine records StatusSkipped and continues with
// the next stage. A stage that decides at run time it has nothing to do
// (e.g. a snapshot loader with no store configured, or a verify pass made
// redundant by a loaded store) returns ErrSkipped — optionally wrapped with
// context — and sets Meter(ctx).Note to say why, so the decision is
// surfaced in the report rather than silently absorbed.
var ErrSkipped = errors.New("pipeline: stage skipped")

// StageMetrics is one stage's observability record. Stages fill the
// workload fields through Meter; the engine fills timing and error fields.
type StageMetrics struct {
	Name   string  `json:"name"`
	Status string  `json:"status"`
	WallMS float64 `json:"wallMs"`
	// RecordsIn / RecordsOut count the stage's input and output units in
	// whatever grain the stage documents (flowtuple records, devices,
	// bundles); zero values are omitted.
	RecordsIn  uint64 `json:"recordsIn,omitempty"`
	RecordsOut uint64 `json:"recordsOut,omitempty"`
	// Retries counts retried attempts (the Retry combinator and the watch
	// loop's per-hour backoff both record here).
	Retries int `json:"retries,omitempty"`
	// QuarantinedHours counts hour files abandoned under a lenient fault
	// policy while this stage ran.
	QuarantinedHours int `json:"quarantinedHours,omitempty"`
	// ErrorClass buckets the failure ("canceled", "deadline", "missing",
	// "retryable", "corrupt", "internal"); stages may pre-set it with
	// domain knowledge, otherwise ErrorClass(err) fills it.
	ErrorClass string `json:"errorClass,omitempty"`
	Error      string `json:"error,omitempty"`
	// Note is free-form stage-set context — e.g. which artifact a loader
	// chose, or why a stage skipped itself — surfaced verbatim in the
	// report.
	Note string `json:"note,omitempty"`
}

// Report is the JSON-serializable run record of one Engine.Run: one
// StageMetrics per stage (including nested Sequence/Parallel children), in
// start order.
type Report struct {
	Pipeline  string          `json:"pipeline"`
	StartedAt time.Time       `json:"startedAt"`
	WallMS    float64         `json:"wallMs"`
	Stages    []*StageMetrics `json:"stages"`
	Error     string          `json:"error,omitempty"`

	mu sync.Mutex
}

func (r *Report) add(m *StageMetrics) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.Stages = append(r.Stages, m)
	r.mu.Unlock()
}

// Stage returns the first metrics entry with the given name, or nil.
func (r *Report) Stage(name string) *StageMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.Stages {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// EmitReport writes the report to the destination named by a -stage-report
// flag value: "" is a no-op, "-" writes to stderr, anything else
// creates/truncates that file. A nil report with a non-empty path is an
// error (the run never produced one).
func EmitReport(rep *Report, path string) error {
	if path == "" {
		return nil
	}
	if rep == nil {
		return fmt.Errorf("pipeline: no stage report to emit")
	}
	if path == "-" {
		return rep.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type ctxKey int

const (
	reportKey ctxKey = iota
	meterKey
)

func reportFrom(ctx context.Context) *Report {
	r, _ := ctx.Value(reportKey).(*Report)
	return r
}

// Meter returns the running stage's metrics record so layers below can
// report workload counts without depending on the engine. Outside an
// engine-run stage it returns a detached record that is safe to mutate
// and simply discarded.
func Meter(ctx context.Context) *StageMetrics {
	if m, ok := ctx.Value(meterKey).(*StageMetrics); ok {
		return m
	}
	return &StageMetrics{}
}

// Attach registers and returns an extra named metrics record in the
// running stage's report — the hook a stage uses to surface per-unit
// observability finer than its own row (e.g. the correlate stage attaching
// one record per shard). Records appear in the report in Attach order,
// after the rows already registered. Outside an engine run it returns a
// detached record that is safe to mutate and simply discarded, so library
// code can Attach unconditionally.
func Attach(ctx context.Context, name string) *StageMetrics {
	m := &StageMetrics{Name: name, Status: StatusOK}
	if r := reportFrom(ctx); r != nil {
		r.add(m)
	}
	return m
}

// ErrorClass buckets an error for the report: context cancellation and
// deadlines are distinguished from missing inputs and everything else, and
// errors may override the bucket by implementing ErrorClass() string.
func ErrorClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, fs.ErrNotExist):
		return "missing"
	}
	var classed interface{ ErrorClass() string }
	if errors.As(err, &classed) {
		return classed.ErrorClass()
	}
	return "internal"
}

// runStage executes one stage against a pre-registered metrics record,
// filling timing, status, and error fields.
func runStage(ctx context.Context, st *State, stage Stage, m *StageMetrics) error {
	ctx = context.WithValue(ctx, meterKey, m)
	start := time.Now()
	err := stage.Run(ctx, st)
	m.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	if errors.Is(err, ErrSkipped) {
		m.Status = StatusSkipped
		return nil
	}
	if err != nil {
		m.Status = StatusFailed
		m.Error = err.Error()
		if m.ErrorClass == "" {
			m.ErrorClass = ErrorClass(err)
		}
		return err
	}
	m.Status = StatusOK
	return nil
}

// instrument registers a metrics record for the stage in the run's report
// and executes it.
func instrument(ctx context.Context, st *State, stage Stage) error {
	m := &StageMetrics{Name: stage.Name()}
	reportFrom(ctx).add(m)
	return runStage(ctx, st, stage, m)
}

// skip records a stage as skipped (a prior stage failed or the run was
// cancelled before it started).
func skip(ctx context.Context, stage Stage) {
	reportFrom(ctx).add(&StageMetrics{Name: stage.Name(), Status: StatusSkipped})
}

// Engine runs a named list of stages sequentially.
type Engine struct {
	name   string
	stages []Stage
}

// New returns an engine over the stages.
func New(name string, stages ...Stage) *Engine {
	return &Engine{name: name, stages: stages}
}

// Run executes the stages in order against st (nil allocates a fresh
// State), stopping at the first failure; later stages are recorded as
// skipped. The Report is returned even when Run fails — it describes how
// far the pipeline got and why it stopped.
func (e *Engine) Run(ctx context.Context, st *State) (*Report, error) {
	if st == nil {
		st = NewState()
	}
	rep := &Report{Pipeline: e.name, StartedAt: time.Now().UTC()}
	ctx = context.WithValue(ctx, reportKey, rep)
	start := time.Now()
	err := runSequence(ctx, st, e.stages)
	rep.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		rep.Error = err.Error()
	}
	return rep, err
}

// runSequence is the shared sequential executor behind Engine.Run and
// Sequence: first error stops the run, remaining stages are marked
// skipped, and a context already cancelled before a stage starts skips it
// and surfaces ctx.Err().
func runSequence(ctx context.Context, st *State, stages []Stage) error {
	var firstErr error
	for _, stage := range stages {
		if firstErr == nil {
			firstErr = ctx.Err()
		}
		if firstErr != nil {
			skip(ctx, stage)
			continue
		}
		if err := instrument(ctx, st, stage); err != nil {
			firstErr = err
		}
	}
	return firstErr
}

type seqStage struct {
	name   string
	stages []Stage
}

// Sequence groups stages into one composite stage that runs its children
// in order. Children are instrumented individually in the enclosing run's
// report.
func Sequence(name string, stages ...Stage) Stage {
	return &seqStage{name: name, stages: stages}
}

func (s *seqStage) Name() string { return s.name }
func (s *seqStage) Run(ctx context.Context, st *State) error {
	return runSequence(ctx, st, s.stages)
}

type parStage struct {
	name   string
	stages []Stage
}

// Parallel groups stages into one composite stage that runs its children
// concurrently. The first failure cancels the siblings' context; every
// child still gets its own metrics record, registered in declaration
// order.
func Parallel(name string, stages ...Stage) Stage {
	return &parStage{name: name, stages: stages}
}

func (p *parStage) Name() string { return p.name }
func (p *parStage) Run(ctx context.Context, st *State) error {
	rep := reportFrom(ctx)
	metrics := make([]*StageMetrics, len(p.stages))
	for i, stage := range p.stages {
		metrics[i] = &StageMetrics{Name: stage.Name()}
		rep.add(metrics[i])
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, stage := range p.stages {
		wg.Add(1)
		go func(stage Stage, m *StageMetrics) {
			defer wg.Done()
			if err := runStage(ctx, st, stage, m); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				cancel()
			}
		}(stage, metrics[i])
	}
	wg.Wait()
	return firstErr
}

// RetryPolicy bounds retry-with-backoff behavior for retryable stage
// failures — the policy iotwatch applies per hour file and the Retry
// combinator applies per stage.
type RetryPolicy struct {
	// MaxRetries is the retry budget after the initial attempt.
	MaxRetries int
	// BaseBackoff is the delay before the first retry; it doubles each
	// further retry.
	BaseBackoff time.Duration
	// Retryable classifies errors; nil retries nothing.
	Retryable func(error) bool
}

// Delay returns the deterministic backoff before retry n (1-based):
// BaseBackoff doubling per attempt. Prefer JitteredDelay when several
// retriers can share a failure — identical schedules synchronize them
// into retry storms against whatever just recovered.
func (p RetryPolicy) Delay(retry int) time.Duration {
	if retry < 1 {
		retry = 1
	}
	if retry > 32 {
		retry = 32
	}
	return p.BaseBackoff << (retry - 1)
}

// JitteredDelay returns the backoff before retry n with equal-jitter
// spreading: half of Delay(n) held deterministic so backoff still grows
// exponentially, the other half drawn uniformly at random. Two policies
// with the same base schedule therefore diverge, which is exactly the
// point — concurrent retriers that failed together must not all come
// back at the same instant.
func (p RetryPolicy) JitteredDelay(retry int) time.Duration {
	d := p.Delay(retry)
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(d-half)+1))
}

// Exhausted reports whether the budget allows no further retry after the
// given number of retries already spent.
func (p RetryPolicy) Exhausted(retries int) bool { return retries >= p.MaxRetries }

// ShouldRetry reports whether err warrants another attempt after retries
// already spent. Context cancellation is never retried.
func (p RetryPolicy) ShouldRetry(err error, retries int) bool {
	if err == nil || p.Retryable == nil || p.Exhausted(retries) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return p.Retryable(err)
}

// Sleep waits for d or until ctx is done, returning ctx's error in the
// latter case.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

type retryStage struct {
	inner  Stage
	policy RetryPolicy
}

// Retry wraps a stage with the policy: retryable failures re-run the stage
// after an exponential backoff, each retry recorded in the stage's
// metrics; permanent failures and context cancellation surface
// immediately.
func Retry(inner Stage, policy RetryPolicy) Stage {
	return &retryStage{inner: inner, policy: policy}
}

func (r *retryStage) Name() string { return r.inner.Name() }
func (r *retryStage) Run(ctx context.Context, st *State) error {
	m := Meter(ctx)
	for retries := 0; ; retries++ {
		err := r.inner.Run(ctx, st)
		if err == nil || !r.policy.ShouldRetry(err, retries) {
			return err
		}
		m.Retries++
		if serr := Sleep(ctx, r.policy.JitteredDelay(retries+1)); serr != nil {
			return serr
		}
	}
}
