package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestEngineRunsStagesInOrder(t *testing.T) {
	var order []string
	eng := New("test",
		Func("a", func(ctx context.Context, st *State) error {
			order = append(order, "a")
			st.Put("x", 1)
			return nil
		}),
		Func("b", func(ctx context.Context, st *State) error {
			order = append(order, "b")
			v, ok := st.Get("x")
			if !ok || v.(int) != 1 {
				t.Errorf("state not threaded: %v %v", v, ok)
			}
			return nil
		}),
	)
	rep, err := eng.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := strings.Join(order, ","); got != "a,b" {
		t.Fatalf("order = %q, want a,b", got)
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(rep.Stages))
	}
	for _, m := range rep.Stages {
		if m.Status != StatusOK {
			t.Errorf("stage %s status %q, want ok", m.Name, m.Status)
		}
		if m.WallMS < 0 {
			t.Errorf("stage %s negative wall time", m.Name)
		}
	}
	if rep.Pipeline != "test" || rep.Error != "" {
		t.Fatalf("report header wrong: %+v", rep)
	}
}

func TestEngineSkipsAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	ran := false
	eng := New("test",
		Func("ok", func(ctx context.Context, st *State) error { return nil }),
		Func("fail", func(ctx context.Context, st *State) error { return boom }),
		Func("after", func(ctx context.Context, st *State) error { ran = true; return nil }),
	)
	rep, err := eng.Run(context.Background(), nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran {
		t.Fatal("stage after failure ran")
	}
	want := map[string]string{"ok": StatusOK, "fail": StatusFailed, "after": StatusSkipped}
	for name, status := range want {
		m := rep.Stage(name)
		if m == nil || m.Status != status {
			t.Errorf("stage %s = %+v, want status %s", name, m, status)
		}
	}
	if rep.Stage("fail").ErrorClass != "internal" {
		t.Errorf("fail class = %q, want internal", rep.Stage("fail").ErrorClass)
	}
	if rep.Error != "boom" {
		t.Errorf("report error = %q", rep.Error)
	}
}

func TestEnginePreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	eng := New("test", Func("a", func(ctx context.Context, st *State) error { ran = true; return nil }))
	rep, err := eng.Run(ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if ran {
		t.Fatal("stage ran under cancelled context")
	}
	if m := rep.Stage("a"); m == nil || m.Status != StatusSkipped {
		t.Fatalf("stage a = %+v, want skipped", m)
	}
}

func TestMeterRecordsWorkload(t *testing.T) {
	eng := New("test", Func("work", func(ctx context.Context, st *State) error {
		m := Meter(ctx)
		m.RecordsIn = 100
		m.RecordsOut = 40
		m.QuarantinedHours = 2
		return nil
	}))
	rep, err := eng.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Stage("work")
	if m.RecordsIn != 100 || m.RecordsOut != 40 || m.QuarantinedHours != 2 {
		t.Fatalf("metrics not recorded: %+v", m)
	}
}

func TestMeterOutsideEngineIsDetached(t *testing.T) {
	m := Meter(context.Background())
	if m == nil {
		t.Fatal("nil meter")
	}
	m.RecordsIn = 5 // must not panic; separate instances
	if Meter(context.Background()).RecordsIn != 0 {
		t.Fatal("detached meters share state")
	}
}

func TestAttachRegistersExtraRecords(t *testing.T) {
	eng := New("test", Func("correlate", func(ctx context.Context, st *State) error {
		for i := 0; i < 3; i++ {
			m := Attach(ctx, fmt.Sprintf("correlate/shard-%d", i))
			m.RecordsIn = uint64(10 * (i + 1))
			m.RecordsOut = uint64(i + 1)
		}
		return nil
	}))
	rep, err := eng.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The stage's own row plus the three attached records.
	if len(rep.Stages) != 4 {
		t.Fatalf("report has %d rows, want 4: %+v", len(rep.Stages), rep.Stages)
	}
	for i := 0; i < 3; i++ {
		m := rep.Stage(fmt.Sprintf("correlate/shard-%d", i))
		if m == nil {
			t.Fatalf("shard %d record missing", i)
		}
		if m.Status != StatusOK || m.RecordsIn != uint64(10*(i+1)) || m.RecordsOut != uint64(i+1) {
			t.Fatalf("shard %d record wrong: %+v", i, m)
		}
	}
}

func TestAttachOutsideEngineIsDetached(t *testing.T) {
	m := Attach(context.Background(), "orphan")
	if m == nil {
		t.Fatal("nil record")
	}
	m.RecordsIn = 7 // must not panic, must not share state
	if Attach(context.Background(), "orphan").RecordsIn != 0 {
		t.Fatal("detached records share state")
	}
}

func TestSequenceCompositeRegistersChildren(t *testing.T) {
	eng := New("test", Sequence("outer",
		Func("c1", func(ctx context.Context, st *State) error { return nil }),
		Func("c2", func(ctx context.Context, st *State) error { return nil }),
	))
	rep, err := eng.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, m := range rep.Stages {
		names = append(names, m.Name)
	}
	if got := strings.Join(names, ","); got != "outer,c1,c2" {
		t.Fatalf("stages = %q, want outer,c1,c2", got)
	}
}

func TestParallelRunsAllAndCancelsOnFailure(t *testing.T) {
	boom := errors.New("boom")
	var sawCancel atomic.Bool
	eng := New("test", Parallel("par",
		Func("fails", func(ctx context.Context, st *State) error { return boom }),
		Func("waits", func(ctx context.Context, st *State) error {
			select {
			case <-ctx.Done():
				sawCancel.Store(true)
				return ctx.Err()
			case <-time.After(5 * time.Second):
				return errors.New("sibling cancellation never arrived")
			}
		}),
	))
	rep, err := eng.Run(context.Background(), nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !sawCancel.Load() {
		t.Fatal("sibling did not observe cancellation")
	}
	// Child rows are pre-registered in declaration order.
	var names []string
	for _, m := range rep.Stages {
		names = append(names, m.Name)
	}
	if got := strings.Join(names, ","); got != "par,fails,waits" {
		t.Fatalf("stages = %q, want par,fails,waits", got)
	}
	if rep.Stage("waits").ErrorClass != "canceled" {
		t.Errorf("waits class = %q, want canceled", rep.Stage("waits").ErrorClass)
	}
}

type classedErr struct{}

func (classedErr) Error() string      { return "bad frame" }
func (classedErr) ErrorClass() string { return "corrupt" }

func TestErrorClass(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{context.Canceled, "canceled"},
		{context.DeadlineExceeded, "deadline"},
		{fmt.Errorf("wrap: %w", os.ErrNotExist), "missing"},
		{classedErr{}, "corrupt"},
		{fmt.Errorf("wrap: %w", classedErr{}), "corrupt"},
		{errors.New("plain"), "internal"},
	}
	for _, c := range cases {
		if got := ErrorClass(c.err); got != c.want {
			t.Errorf("ErrorClass(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestStagePresetErrorClassPreserved(t *testing.T) {
	eng := New("test", Func("a", func(ctx context.Context, st *State) error {
		Meter(ctx).ErrorClass = "retryable"
		return errors.New("ends early")
	}))
	rep, _ := eng.Run(context.Background(), nil)
	if rep.Stage("a").ErrorClass != "retryable" {
		t.Fatalf("class = %q, want retryable", rep.Stage("a").ErrorClass)
	}
}

func TestRetryPolicy(t *testing.T) {
	p := RetryPolicy{MaxRetries: 3, BaseBackoff: 10 * time.Millisecond, Retryable: func(err error) bool {
		return strings.Contains(err.Error(), "again")
	}}
	if d := p.Delay(1); d != 10*time.Millisecond {
		t.Errorf("Delay(1) = %v", d)
	}
	if d := p.Delay(3); d != 40*time.Millisecond {
		t.Errorf("Delay(3) = %v", d)
	}
	if p.ShouldRetry(errors.New("fatal"), 0) {
		t.Error("non-retryable retried")
	}
	if !p.ShouldRetry(errors.New("try again"), 2) {
		t.Error("retryable under budget not retried")
	}
	if p.ShouldRetry(errors.New("try again"), 3) {
		t.Error("exhausted budget retried")
	}
	if p.ShouldRetry(context.Canceled, 0) {
		t.Error("cancellation retried")
	}
	if !p.Exhausted(3) || p.Exhausted(2) {
		t.Error("Exhausted wrong")
	}
}

func TestRetryStageRetriesAndRecords(t *testing.T) {
	again := errors.New("again")
	attempts := 0
	stage := Retry(Func("flaky", func(ctx context.Context, st *State) error {
		attempts++
		if attempts < 3 {
			return again
		}
		return nil
	}), RetryPolicy{MaxRetries: 5, BaseBackoff: time.Microsecond, Retryable: func(err error) bool { return errors.Is(err, again) }})
	rep, err := New("test", stage).Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	m := rep.Stage("flaky")
	if m.Retries != 2 || m.Status != StatusOK {
		t.Fatalf("metrics = %+v, want 2 retries ok", m)
	}
}

func TestRetryStageGivesUpOnPermanent(t *testing.T) {
	boom := errors.New("permanent")
	attempts := 0
	stage := Retry(Func("flaky", func(ctx context.Context, st *State) error {
		attempts++
		return boom
	}), RetryPolicy{MaxRetries: 5, BaseBackoff: time.Microsecond, Retryable: func(err error) bool { return false }})
	_, err := New("test", stage).Run(context.Background(), nil)
	if !errors.Is(err, boom) || attempts != 1 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
}

func TestSleepCancellable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Sleep(ctx, 10*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not wake on cancel")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	eng := New("roundtrip",
		Func("ok", func(ctx context.Context, st *State) error {
			Meter(ctx).RecordsIn = 7
			return nil
		}),
		Func("fail", func(ctx context.Context, st *State) error { return context.Canceled }),
	)
	rep, _ := eng.Run(context.Background(), nil)
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Pipeline string          `json:"pipeline"`
		Stages   []*StageMetrics `json:"stages"`
		Error    string          `json:"error"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Pipeline != "roundtrip" || len(decoded.Stages) != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Stages[0].RecordsIn != 7 {
		t.Fatalf("recordsIn lost: %+v", decoded.Stages[0])
	}
	if decoded.Stages[1].ErrorClass != "canceled" {
		t.Fatalf("errorClass lost: %+v", decoded.Stages[1])
	}
	// omitempty: the ok stage's JSON must not carry zero workload fields.
	if strings.Contains(buf.String(), `"retries":0`) {
		t.Fatal("zero retries not omitted")
	}
}

func TestEmitReport(t *testing.T) {
	rep, _ := New("emit", Func("a", func(ctx context.Context, st *State) error { return nil })).Run(context.Background(), nil)

	if err := EmitReport(rep, ""); err != nil {
		t.Fatalf("empty path: %v", err)
	}
	if err := EmitReport(nil, "x.json"); err == nil {
		t.Fatal("nil report with path should error")
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := EmitReport(rep, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("file not valid JSON: %v", err)
	}
	if out.Pipeline != "emit" {
		t.Fatalf("pipeline = %q", out.Pipeline)
	}
}

func TestErrSkippedStage(t *testing.T) {
	ran := false
	eng := New("test",
		Func("opt-out", func(ctx context.Context, st *State) error {
			Meter(ctx).Note = "nothing to do"
			return ErrSkipped
		}),
		Func("wrapped", func(ctx context.Context, st *State) error {
			return fmt.Errorf("no store configured: %w", ErrSkipped)
		}),
		Func("after", func(ctx context.Context, st *State) error {
			ran = true
			return nil
		}),
	)
	rep, err := eng.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("skipped stage failed the pipeline: %v", err)
	}
	if !ran {
		t.Fatal("stage after a skip did not run")
	}
	for _, name := range []string{"opt-out", "wrapped"} {
		m := rep.Stage(name)
		if m == nil || m.Status != StatusSkipped {
			t.Fatalf("stage %q = %+v, want skipped", name, m)
		}
		if m.Error != "" {
			t.Fatalf("skipped stage %q recorded error %q", name, m.Error)
		}
	}
	if rep.Stage("opt-out").Note != "nothing to do" {
		t.Fatalf("note lost: %+v", rep.Stage("opt-out"))
	}
}
