package pipeline

import (
	"testing"
	"time"
)

// TestJitteredDelayDiverges pins the anti-retry-storm property: two
// policies with the same base schedule must not produce the same delay
// sequence. Each jittered delay is drawn independently, so eight draws
// from a half-second jitter range colliding across two policies is
// astronomically unlikely; identical sequences mean the jitter is gone.
func TestJitteredDelayDiverges(t *testing.T) {
	a := RetryPolicy{MaxRetries: 8, BaseBackoff: time.Second}
	b := RetryPolicy{MaxRetries: 8, BaseBackoff: time.Second}
	same := true
	for retry := 1; retry <= 8; retry++ {
		da, db := a.JitteredDelay(retry), b.JitteredDelay(retry)
		if da != db {
			same = false
		}
		// Equal-jitter bounds: the deterministic half keeps exponential
		// growth, the random half stays inside the schedule.
		base := a.Delay(retry)
		for _, d := range []time.Duration{da, db} {
			if d < base/2 || d > base {
				t.Fatalf("retry %d: jittered delay %v outside [%v, %v]", retry, d, base/2, base)
			}
		}
	}
	if same {
		t.Fatal("two policies with the same base schedule produced identical jittered sequences")
	}
}

// TestJitteredDelayDegenerate covers the edges: zero and sub-nanosecond
// backoffs pass through untouched, and the retry clamp still applies.
func TestJitteredDelayDegenerate(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 0}
	if d := p.JitteredDelay(3); d != 0 {
		t.Fatalf("zero backoff jittered to %v", d)
	}
	one := RetryPolicy{BaseBackoff: 1}
	if d := one.JitteredDelay(1); d != 1 {
		t.Fatalf("1ns backoff jittered to %v", d)
	}
	big := RetryPolicy{BaseBackoff: time.Millisecond}
	if d := big.JitteredDelay(100); d > big.Delay(32) {
		t.Fatalf("clamped retry exceeded Delay(32): %v", d)
	}
}
