package analysis

import (
	"context"
	"math"
	"os"
	"sync"
	"testing"

	"iotscope/internal/classify"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
	"iotscope/internal/wgen"
)

// Shared fixture: one full-window dataset at small scale, analyzed once.
var (
	fixtureOnce sync.Once
	fixtureErr  error
	fixture     *Analyzer
	fixtureGen  *wgen.Generator
)

func loadFixture(t *testing.T) (*Analyzer, *wgen.Generator) {
	t.Helper()
	fixtureOnce.Do(func() {
		dir, err := os.MkdirTemp("", "analysis-fixture-*")
		if err != nil {
			fixtureErr = err
			return
		}
		sc := wgen.Default(0.006, 2024)
		g, err := wgen.New(sc)
		if err != nil {
			fixtureErr = err
			return
		}
		if _, err := g.Run(dir); err != nil {
			fixtureErr = err
			return
		}
		res, err := correlate.New(g.Inventory(), correlate.Options{}).ProcessDataset(context.Background(), dir)
		if err != nil {
			fixtureErr = err
			return
		}
		fixture = New(res, g.Inventory(), g.Registry())
		fixtureGen = g
		os.RemoveAll(dir)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixture, fixtureGen
}

func TestSummaryHeadline(t *testing.T) {
	a, g := loadFixture(t)
	s := a.Summary()
	want := len(g.Truth().Compromised)
	if s.Total != want {
		t.Fatalf("inferred %d devices, planted %d", s.Total, want)
	}
	consShare := float64(s.Consumer) / float64(s.Total)
	if consShare < 0.50 || consShare > 0.64 {
		t.Errorf("consumer share %v want ~0.57", consShare)
	}
	if s.Countries < 10 {
		t.Errorf("countries %d", s.Countries)
	}
	if s.PacketsTotal == 0 {
		t.Error("no packets")
	}
	// Daily active should be a substantial fraction of the population
	// (paper: ~40 %), though well below 100 %.
	activeFrac := s.MeanDailyActiveDevices / float64(s.Total)
	if activeFrac < 0.2 || activeFrac > 0.95 {
		t.Errorf("daily active fraction %v", activeFrac)
	}
}

func TestFig1DeploymentVsCompromise(t *testing.T) {
	a, _ := loadFixture(t)
	deployed, cum := a.DeployedByCountry(15)
	if len(deployed) != 15 {
		t.Fatalf("deployment rows %d", len(deployed))
	}
	if deployed[0].Code != "US" {
		t.Errorf("deployment leader %s want US", deployed[0].Code)
	}
	if cum < 0.6 || cum > 0.8 {
		t.Errorf("top-15 cumulative share %v want ~0.693", cum)
	}

	compromised := a.CompromisedByCountry(15)
	if compromised[0].Code != "RU" {
		t.Errorf("compromised leader %s want RU", compromised[0].Code)
	}
	// The paper's contrast: RU compromise rate far above US.
	var ru, us CountryRow
	for _, r := range compromised {
		switch r.Code {
		case "RU":
			ru = r
		case "US":
			us = r
		}
	}
	if ru.PctCompromised == 0 || us.PctCompromised == 0 {
		t.Fatalf("RU %+v US %+v missing from top 15", ru, us)
	}
	if ru.PctCompromised < 4*us.PctCompromised {
		t.Errorf("RU compromise rate %.1f%% should dwarf US %.1f%%",
			ru.PctCompromised, us.PctCompromised)
	}
}

func TestFig2Discovery(t *testing.T) {
	a, g := loadFixture(t)
	tl := a.DiscoveryTimeline()
	if len(tl) != 6 {
		t.Fatalf("days %d", len(tl))
	}
	day1Frac := float64(tl[0].CumulativeAll) / float64(tl[len(tl)-1].CumulativeAll)
	if day1Frac < 0.35 || day1Frac > 0.60 {
		t.Errorf("day-1 discovery fraction %v want ~0.46", day1Frac)
	}
	// Monotone cumulative, ends at the compromised population.
	for i := 1; i < len(tl); i++ {
		if tl[i].CumulativeAll < tl[i-1].CumulativeAll {
			t.Fatal("cumulative discovery not monotone")
		}
	}
	if tl[5].CumulativeAll != len(g.Truth().Compromised) {
		t.Errorf("final cumulative %d != planted %d",
			tl[5].CumulativeAll, len(g.Truth().Compromised))
	}
	if tl[5].CumulativeConsumer+tl[5].CumulativeCPS != tl[5].CumulativeAll {
		t.Error("category cumulative split inconsistent")
	}
}

func TestFig3TypeMix(t *testing.T) {
	a, _ := loadFixture(t)
	rows := a.ConsumerTypeMix()
	if len(rows) == 0 {
		t.Fatal("no type rows")
	}
	if rows[0].Type != devicedb.TypeRouter {
		t.Errorf("top type %v want router", rows[0].Type)
	}
	if rows[0].Pct < 42 || rows[0].Pct > 64 {
		t.Errorf("router pct %v want ~52.4", rows[0].Pct)
	}
	var sum float64
	for _, r := range rows {
		sum += r.Pct
	}
	if math.Abs(sum-100) > 0.5 {
		t.Errorf("type percentages sum %v", sum)
	}
}

func TestTables1And2ISPs(t *testing.T) {
	a, _ := loadFixture(t)
	cons := a.TopISPs(devicedb.Consumer, 5)
	if len(cons) != 5 {
		t.Fatalf("consumer ISP rows %d", len(cons))
	}
	if cons[0].Name != "JSC ER-Telecom" {
		t.Errorf("top consumer ISP %q want JSC ER-Telecom", cons[0].Name)
	}
	if cons[0].Country != "RU" {
		t.Errorf("top consumer ISP country %q", cons[0].Country)
	}

	cps := a.TopISPs(devicedb.CPS, 5)
	if len(cps) != 5 {
		t.Fatalf("CPS ISP rows %d", len(cps))
	}
	// Rostelecom should rank high among CPS (paper: #1).
	foundRostelecom := false
	for _, r := range cps {
		if r.Name == "Rostelecom" {
			foundRostelecom = true
		}
	}
	if !foundRostelecom {
		t.Errorf("Rostelecom not in CPS top 5: %+v", cps)
	}
}

func TestTable3CPSServices(t *testing.T) {
	a, _ := loadFixture(t)
	rows := a.CPSServices(10)
	if len(rows) != 10 {
		t.Fatalf("service rows %d", len(rows))
	}
	// At test scale the top ranks are noisy; Telvent must sit in the top 3
	// (paper: rank 1 at 20 %).
	telventRank := -1
	for i, r := range rows {
		if r.Service == "Telvent OASyS DNA" {
			telventRank = i
			if r.Pct < 10 || r.Pct > 32 {
				t.Errorf("Telvent pct %v want ~20", r.Pct)
			}
		}
	}
	if telventRank < 0 || telventRank > 2 {
		t.Errorf("Telvent rank %d want top 3", telventRank)
	}
	// Descending.
	for i := 1; i < len(rows); i++ {
		if rows[i].Devices > rows[i-1].Devices {
			t.Fatal("service rows not sorted")
		}
	}
}

func TestFig4ProtocolMix(t *testing.T) {
	a, _ := loadFixture(t)
	mix := a.ProtocolBreakdown()
	sum := mix.TCPCPS + mix.TCPConsumer + mix.UDPCPS + mix.UDPConsumer +
		mix.ICMPCPS + mix.ICMPConsumer
	if math.Abs(sum-100) > 0.01 {
		t.Fatalf("protocol mix sums to %v", sum)
	}
	tcp := mix.TCPCPS + mix.TCPConsumer
	udp := mix.UDPCPS + mix.UDPConsumer
	if tcp < 70 {
		t.Errorf("TCP share %v want ~85", tcp)
	}
	if udp < 4 || udp > 20 {
		t.Errorf("UDP share %v want ~10", udp)
	}
	if mix.UDPConsumer <= mix.UDPCPS {
		t.Errorf("UDP should be consumer-heavy: %v vs %v", mix.UDPConsumer, mix.UDPCPS)
	}
}

func TestFig5UDPSurfaces(t *testing.T) {
	a, _ := loadFixture(t)
	cons := a.UDPSurface(devicedb.Consumer)
	cps := a.UDPSurface(devicedb.CPS)
	if len(cons.Packets) != 143 {
		t.Fatalf("series length %d", len(cons.Packets))
	}
	sumSlice := func(xs []float64) float64 {
		s := 0.0
		for _, v := range xs {
			s += v
		}
		return s
	}
	if sumSlice(cons.Packets) <= sumSlice(cps.Packets) {
		t.Errorf("consumer UDP packets %v should exceed CPS %v",
			sumSlice(cons.Packets), sumSlice(cps.Packets))
	}
	// Consumer probers reach more destinations (paper: 48K vs 14.7K).
	if sumSlice(cons.DstIPs) <= sumSlice(cps.DstIPs) {
		t.Errorf("consumer UDP destinations should exceed CPS")
	}
	// Consumer UDP: packets ~ destinations (one packet per destination).
	ratio := sumSlice(cons.Packets) / math.Max(sumSlice(cons.DstIPs), 1)
	if ratio > 1.6 {
		t.Errorf("consumer UDP packets/destinations ratio %v want ~1", ratio)
	}
	// CPS hammers fewer destinations with more packets each.
	cpsRatio := sumSlice(cps.Packets) / math.Max(sumSlice(cps.DstIPs), 1)
	if cpsRatio < 2 {
		t.Errorf("CPS UDP packets/destinations ratio %v want >> 1", cpsRatio)
	}
}

func TestTable4UDPPorts(t *testing.T) {
	a, _ := loadFixture(t)
	rows := a.TopUDPPorts(10)
	if len(rows) != 10 {
		t.Fatalf("rows %d", len(rows))
	}
	// Port 37547 (Netcore backdoor) must rank #1 with a large prober
	// population (paper: 10,115 devices).
	if rows[0].Port != 37547 {
		t.Errorf("top UDP port %d want 37547", rows[0].Port)
	}
	if rows[0].Devices < 10 {
		t.Errorf("port 37547 devices %d", rows[0].Devices)
	}
	// The top-10 cover ~10.7 % of UDP traffic; the rest is a long tail.
	var cum float64
	for _, r := range rows {
		cum += r.Pct
	}
	if cum > 45 {
		t.Errorf("top-10 UDP ports cover %v%%, want a long-tailed ~11%%", cum)
	}
}

func TestFig6CDFs(t *testing.T) {
	a, _ := loadFixture(t)
	scan := a.ScannerTotals()
	bs := a.VictimTotals()
	if len(scan) == 0 || len(bs) == 0 {
		t.Fatal("empty totals")
	}
	h := CDF(bs)
	frac := h.CumFraction()
	// Two-tailed shape: a light cohort under ~1000 packets (the paper has
	// half under 170; at test scale the 5 scripted event victims dominate
	// the tiny census, so only the existence of the cohort is asserted)
	// and a heavy cohort above 10K.
	if frac[3] < 0.1 {
		t.Errorf("victims <=1000 pkts fraction %v, want a light cohort", frac[3])
	}
	if frac[4] > 0.999 {
		t.Errorf("no victims above 10K packets")
	}
}

func TestFig7SpikesAttributed(t *testing.T) {
	a, g := loadFixture(t)
	spikes := a.DetectDoSSpikes(8)
	if len(spikes) < 3 {
		t.Fatalf("detected %d spikes, want >= 3 scripted episodes", len(spikes))
	}
	truth := g.Truth()
	// Every scripted event hour should fall inside some detected spike,
	// and the attributed device must be the planted victim.
	events := map[string][]int{
		"cn-ethip-1": {6, 7, 8, 53, 54, 55, 56},
		"cn-ethip-2": {99, 127},
	}
	for name, hours := range events {
		wantID := truth.EventVictims[name]
		for _, h := range hours {
			found := false
			for _, sp := range spikes {
				if h >= sp.StartHour && h <= sp.EndHour {
					found = true
					if sp.TopDevice != wantID {
						t.Errorf("spike %d-%d attributed to %d want %d (%s)",
							sp.StartHour, sp.EndHour, sp.TopDevice, wantID, name)
					}
					if sp.TopShare < 0.70 {
						t.Errorf("spike %d-%d top share %v want ~1 (single victim)",
							sp.StartHour, sp.EndHour, sp.TopShare)
					}
				}
			}
			if !found {
				t.Errorf("event %s hour %d not inside any detected spike", name, h)
			}
		}
	}
}

func TestFig8VictimCountries(t *testing.T) {
	a, _ := loadFixture(t)
	byVictims := a.VictimsByCountry(15, false)
	if len(byVictims) == 0 {
		t.Fatal("no victim countries")
	}
	if byVictims[0].Code != "CN" {
		t.Errorf("most victims in %s want CN", byVictims[0].Code)
	}
	byPackets := a.VictimsByCountry(15, true)
	if byPackets[0].Code != "CN" {
		t.Errorf("most backscatter from %s want CN (paper: 52%%)", byPackets[0].Code)
	}
	var total, cn uint64
	for _, r := range a.VictimsByCountry(0, true) {
		total += r.Packets
		if r.Code == "CN" {
			cn = r.Packets
		}
	}
	// At test scale the few baseline victims barely dilute the scripted CN
	// events, so the share runs above the paper's 52 %.
	share := float64(cn) / float64(total)
	if share < 0.30 || share > 0.90 {
		t.Errorf("CN backscatter share %v want ~0.5-0.8", share)
	}
}

func TestFig9ScanSurfaces(t *testing.T) {
	a, _ := loadFixture(t)
	cons := a.ScanSurface(devicedb.Consumer)
	cps := a.ScanSurface(devicedb.CPS)
	sum := func(xs []float64) float64 {
		s := 0.0
		for _, v := range xs {
			s += v
		}
		return s
	}
	// Consumer scanning volume exceeds CPS (382K vs 318K per hour).
	if sum(cons.Packets) <= sum(cps.Packets) {
		t.Errorf("consumer scan packets %v should exceed CPS %v",
			sum(cons.Packets), sum(cps.Packets))
	}
	// CPS scans a wider port range per hour (paper: 576 vs 246)...
	meanPorts := func(s HourlySurface) float64 {
		return sum(s.DstPorts) / float64(len(s.DstPorts))
	}
	if meanPorts(cps) <= meanPorts(cons)*0.8 {
		t.Errorf("CPS mean hourly ports %v not above consumer %v",
			meanPorts(cps), meanPorts(cons))
	}
}

func TestFig9PortSweepInvestigation(t *testing.T) {
	a, g := loadFixture(t)
	finding, ok := a.WidestPortSweep()
	if !ok {
		t.Fatal("no port sweep found")
	}
	spikeHour := g.Scenario().TCPScan.PortSpikeHour
	if finding.Hour != spikeHour {
		t.Errorf("widest sweep at hour %d want %d", finding.Hour, spikeHour)
	}
	if finding.Ports < 5000 {
		t.Errorf("sweep width %d want ~10,249", finding.Ports)
	}
	d := a.inv.At(finding.Device)
	if d.Type != devicedb.TypeIPCamera {
		t.Errorf("sweeping device is %v, want ip-camera", d.Type)
	}
}

func TestTable5ScanServices(t *testing.T) {
	a, _ := loadFixture(t)
	rows := a.TopScanServices(DefaultScanServices())
	if len(rows) != 14 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0].Service != "Telnet" {
		t.Errorf("top scanned service %q want Telnet", rows[0].Service)
	}
	if rows[0].Pct < 35 || rows[0].Pct > 65 {
		t.Errorf("Telnet share %v want ~50", rows[0].Pct)
	}
	byName := make(map[string]ScanServiceRow, len(rows))
	for _, r := range rows {
		byName[r.Service] = r
	}
	// Realm splits: HTTP and Kerberos consumer-heavy, SSH CPS-heavy.
	if r := byName["HTTP"]; r.ConsumerPct < 80 {
		t.Errorf("HTTP consumer pct %v want ~94.5", r.ConsumerPct)
	}
	if r := byName["Kerberos"]; r.ConsumerPct < 85 {
		t.Errorf("Kerberos consumer pct %v want ~99", r.ConsumerPct)
	}
	if r := byName["SSH"]; r.ConsumerPct > 60 {
		t.Errorf("SSH consumer pct %v want ~33.7", r.ConsumerPct)
	}
	// BackroomNet: a single CPS device (paper's BACnet box).
	if r := byName["BackroomNet"]; r.CPSDevices != 1 || r.ConsumerDevices != 0 {
		t.Errorf("BackroomNet devices consumer=%d cps=%d want 0/1",
			r.ConsumerDevices, r.CPSDevices)
	}
}

func TestFig10ServiceSeries(t *testing.T) {
	a, g := loadFixture(t)
	defs := DefaultScanServices()
	var telnet, ssh, backroom ScanServiceDef
	for _, d := range defs {
		switch d.Name {
		case "Telnet":
			telnet = d
		case "SSH":
			ssh = d
		case "BackroomNet":
			backroom = d
		}
	}
	// Telnet dominates throughout.
	telnetSeries := a.ServiceHourlySeries(telnet)
	if len(telnetSeries) != 143 {
		t.Fatalf("series length %d", len(telnetSeries))
	}
	// SSH spikes at the scripted hours.
	sshSeries := a.ServiceHourlySeries(ssh)
	base := 0.0
	for _, h := range []int{40, 41, 42, 43} {
		base += sshSeries[h]
	}
	base /= 4
	for _, h := range g.Scenario().TCPScan.SSHSpike.Hours {
		if sshSeries[h] < 5*math.Max(base, 1) {
			t.Errorf("SSH at spike hour %d = %v, baseline %v: no surge", h, sshSeries[h], base)
		}
	}
	// BackroomNet: silent before 113, heavy after.
	brSeries := a.ServiceHourlySeries(backroom)
	var before, after float64
	for h := 0; h < 113; h++ {
		before += brSeries[h]
	}
	for h := 113; h < 143; h++ {
		after += brSeries[h]
	}
	if after < 100*math.Max(before, 1) {
		t.Errorf("BackroomNet before=%v after=%v: no onset at 113", before, after)
	}
}

func TestStatTestBattery(t *testing.T) {
	a, _ := loadFixture(t)
	tests, err := a.RunStatTests(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Backscatter: CPS >> consumer (paper p < 0.0001, Z = -5.95).
	if tests.BackscatterCPSvsConsumer.P > 0.01 {
		t.Errorf("backscatter U-test p = %v want < 0.01", tests.BackscatterCPSvsConsumer.P)
	}
	if tests.BackscatterCPSvsConsumer.Z >= 0 {
		t.Errorf("backscatter Z = %v want negative (consumer < CPS)",
			tests.BackscatterCPSvsConsumer.Z)
	}
	// Consumer UDP ports vs IPs strongly correlated (paper r = 0.95).
	if tests.ConsumerUDPPortsVsIPs.R < 0.6 {
		t.Errorf("consumer UDP ports/IPs r = %v want ~0.95", tests.ConsumerUDPPortsVsIPs.R)
	}
	if tests.ConsumerUDPPortsVsIPs.P > 0.001 {
		t.Errorf("consumer UDP ports/IPs p = %v", tests.ConsumerUDPPortsVsIPs.P)
	}
}

func TestBackscatterSummary(t *testing.T) {
	a, g := loadFixture(t)
	s := a.Backscatter()
	if s.Victims == 0 {
		t.Fatal("no victims")
	}
	planted := len(g.Truth().Victims)
	if s.Victims < planted*8/10 || s.Victims > planted {
		t.Errorf("victims %d planted %d", s.Victims, planted)
	}
	// CPS dominates backscatter volume (paper: 73 %).
	if s.CPSPacketShare < 50 {
		t.Errorf("CPS backscatter share %v want ~73", s.CPSPacketShare)
	}
	if s.PctOfIoTTraffic < 2 || s.PctOfIoTTraffic > 25 {
		t.Errorf("backscatter traffic share %v want ~8.2", s.PctOfIoTTraffic)
	}
}

func TestPerDeviceTotalsSorted(t *testing.T) {
	a, _ := loadFixture(t)
	totals := a.PerDeviceTotals()
	for i := 1; i < len(totals); i++ {
		if totals[i-1] > totals[i] {
			t.Fatal("totals not sorted")
		}
	}
	if len(totals) != len(a.res.Devices) {
		t.Fatal("totals length mismatch")
	}
}

func TestClassPacketConservation(t *testing.T) {
	a, _ := loadFixture(t)
	var byClass uint64
	for _, cls := range classify.Classes() {
		byClass += a.res.ClassPackets(cls, 0)
	}
	if total := a.res.TotalIoTPackets(); byClass != total {
		t.Fatalf("class packets %d != total %d", byClass, total)
	}
	perDevice := uint64(0)
	for _, ds := range a.res.Devices {
		perDevice += ds.TotalPackets()
	}
	if perDevice != a.res.TotalIoTPackets() {
		t.Fatalf("per-device sum %d != hourly sum %d", perDevice, a.res.TotalIoTPackets())
	}
}
