package analysis

import (
	"context"
	"sort"

	"iotscope/internal/classify"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
	"iotscope/internal/stats"
)

// HourlySurface is one Fig. 5 / Fig. 9 panel: per-hour packets, unique
// destination addresses, and unique destination ports for one realm.
type HourlySurface struct {
	Category devicedb.Category
	Packets  []float64
	DstIPs   []float64
	DstPorts []float64
	Devices  []float64
}

// UDPSurface reproduces Fig. 5 for one realm.
func (a *Analyzer) UDPSurface(cat devicedb.Category) HourlySurface {
	return a.surface(cat, classify.UDP)
}

// ScanSurface reproduces Fig. 9 for one realm.
func (a *Analyzer) ScanSurface(cat devicedb.Category) HourlySurface {
	return a.surface(cat, classify.ScanTCP)
}

func (a *Analyzer) surface(cat devicedb.Category, cls classify.Class) HourlySurface {
	n := a.res.Hours
	s := HourlySurface{
		Category: cat,
		Packets:  make([]float64, n),
		DstIPs:   make([]float64, n),
		DstPorts: make([]float64, n),
		Devices:  make([]float64, n),
	}
	for i := range a.res.Hourly {
		ch := a.res.Hourly[i].Cat(cat)
		s.Packets[i] = float64(ch.Packets[cls.Index()])
		switch cls {
		case classify.UDP:
			s.DstIPs[i] = float64(ch.UDPDstIPs)
			s.DstPorts[i] = float64(ch.UDPDstPorts)
			s.Devices[i] = float64(ch.UDPDevices)
		case classify.ScanTCP:
			s.DstIPs[i] = float64(ch.ScanDstIPs)
			s.DstPorts[i] = float64(ch.ScanDstPorts)
			s.Devices[i] = float64(ch.ScanDevices)
		}
	}
	return s
}

// UDPPortRow is one row of Table IV.
type UDPPortRow struct {
	Port    uint16
	Packets uint64
	Pct     float64
	Devices int
}

// TopUDPPorts reproduces Table IV.
func (a *Analyzer) TopUDPPorts(n int) []UDPPortRow {
	var totalUDP uint64
	for _, pa := range a.res.UDPPorts {
		totalUDP += pa.Packets
	}
	rows := make([]UDPPortRow, 0, len(a.res.UDPPorts))
	for port, pa := range a.res.UDPPorts {
		pct := 0.0
		if totalUDP > 0 {
			pct = 100 * float64(pa.Packets) / float64(totalUDP)
		}
		rows = append(rows, UDPPortRow{
			Port: port, Packets: pa.Packets, Pct: pct, Devices: len(pa.Devices),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Packets != rows[j].Packets {
			return rows[i].Packets > rows[j].Packets
		}
		return rows[i].Port < rows[j].Port
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// ScanServiceDef labels a scanned service by its port set, mirroring the
// paper's Table V groupings.
type ScanServiceDef struct {
	Name  string
	Ports []uint16
}

// DefaultScanServices lists the Table V services.
func DefaultScanServices() []ScanServiceDef {
	return []ScanServiceDef{
		{"Telnet", []uint16{23, 2323, 23231}},
		{"HTTP", []uint16{80, 8080, 81}},
		{"SSH", []uint16{22}},
		{"BackroomNet", []uint16{3387}},
		{"CWMP", []uint16{7547}},
		{"WSDAPI-S", []uint16{5358}},
		{"MSSQLServer", []uint16{1433}},
		{"Kerberos", []uint16{88}},
		{"MS DS", []uint16{445}},
		{"EthernetIP-IO", []uint16{2222}},
		{"iRDMI", []uint16{8000}},
		{"Unassigned-21677", []uint16{21677}},
		{"RDP", []uint16{3389}},
		{"FTP", []uint16{21}},
	}
}

// ScanServiceRow is one row of Table V.
type ScanServiceRow struct {
	Service         string
	Ports           []uint16
	Packets         uint64
	Pct             float64 // of all TCP scanning packets
	ConsumerPct     float64 // of the service's packets
	ConsumerDevices int
	CPSDevices      int
	CPSPct          float64
}

// TopScanServices reproduces Table V over the given service definitions.
func (a *Analyzer) TopScanServices(defs []ScanServiceDef) []ScanServiceRow {
	totalScan := a.res.ClassPackets(classify.ScanTCP, 0)
	rows := make([]ScanServiceRow, 0, len(defs))
	for _, def := range defs {
		row := ScanServiceRow{Service: def.Name, Ports: def.Ports}
		consDevs := make(map[int]struct{})
		cpsDevs := make(map[int]struct{})
		var consPkts uint64
		for _, port := range def.Ports {
			pa := a.res.TCPScanPorts[port]
			if pa == nil {
				continue
			}
			row.Packets += pa.Packets
			consPkts += pa.PacketsConsumer
			for _, id := range pa.DevicesConsumer {
				consDevs[int(id)] = struct{}{}
			}
			for _, id := range pa.DevicesCPS {
				cpsDevs[int(id)] = struct{}{}
			}
		}
		row.ConsumerDevices = len(consDevs)
		row.CPSDevices = len(cpsDevs)
		if totalScan > 0 {
			row.Pct = 100 * float64(row.Packets) / float64(totalScan)
		}
		if row.Packets > 0 {
			row.ConsumerPct = 100 * float64(consPkts) / float64(row.Packets)
			row.CPSPct = 100 - row.ConsumerPct
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Packets != rows[j].Packets {
			return rows[i].Packets > rows[j].Packets
		}
		return rows[i].Service < rows[j].Service
	})
	return rows
}

// ServiceHourlySeries reproduces Fig. 10: per-hour TCP scanning packets for
// one service definition.
func (a *Analyzer) ServiceHourlySeries(def ScanServiceDef) []float64 {
	out := make([]float64, a.res.Hours)
	for _, port := range def.Ports {
		for h := 0; h < a.res.Hours; h++ {
			ph := correlate.PortHour{Port: port, Hour: uint16(h)}
			out[h] += float64(a.res.TCPPortHour[ph])
		}
	}
	return out
}

// BackscatterSummary is the Sec. IV-B headline.
type BackscatterSummary struct {
	Victims         int
	ConsumerVictims int
	CPSVictims      int
	Packets         uint64
	CPSPacketShare  float64
	PctOfIoTTraffic float64
	VictimsOver10K  int
	VictimsUnder170 int
}

// Backscatter computes the Sec. IV-B summary.
func (a *Analyzer) Backscatter() BackscatterSummary {
	var s BackscatterSummary
	var cpsPkts uint64
	for id, ds := range a.res.Devices {
		bs := ds.Packets[classify.Backscatter.Index()]
		if bs == 0 {
			continue
		}
		s.Victims++
		s.Packets += bs
		if a.inv.At(id).Category == devicedb.CPS {
			s.CPSVictims++
			cpsPkts += bs
		} else {
			s.ConsumerVictims++
		}
		if bs >= 10000 {
			s.VictimsOver10K++
		}
		if bs < 170 {
			s.VictimsUnder170++
		}
	}
	if s.Packets > 0 {
		s.CPSPacketShare = 100 * float64(cpsPkts) / float64(s.Packets)
	}
	if total := a.res.TotalIoTPackets(); total > 0 {
		s.PctOfIoTTraffic = 100 * float64(s.Packets) / float64(total)
	}
	return s
}

// VictimTotals returns per-victim backscatter totals (Fig. 6 input).
func (a *Analyzer) VictimTotals() []float64 {
	var out []float64
	for _, ds := range a.res.Devices {
		if bs := ds.Packets[classify.Backscatter.Index()]; bs > 0 {
			out = append(out, float64(bs))
		}
	}
	sort.Float64s(out)
	return out
}

// ScannerTotals returns per-device scanning totals (Fig. 6 input).
func (a *Analyzer) ScannerTotals() []float64 {
	var out []float64
	for _, ds := range a.res.Devices {
		scan := ds.Packets[classify.ScanTCP.Index()] + ds.Packets[classify.ScanICMP.Index()]
		if scan > 0 {
			out = append(out, float64(scan))
		}
	}
	sort.Float64s(out)
	return out
}

// DoSSpike is one detected DoS episode (Sec. IV-B1).
type DoSSpike struct {
	StartHour int
	EndHour   int // inclusive
	Packets   uint64
	TopDevice int     // device ID dominating the spike
	TopShare  float64 // its share of the spike packets
}

// DetectDoSSpikes finds hours whose backscatter exceeds threshold times the
// median positive hour, groups consecutive hours into episodes, and
// attributes each to its dominant victim — the paper's investigation that a
// single device generates almost all packets during every spike.
func (a *Analyzer) DetectDoSSpikes(threshold float64) []DoSSpike {
	if threshold <= 1 {
		threshold = 5
	}
	series := a.res.HourlyClassSeries(classify.Backscatter, 0)
	var positive []float64
	for _, v := range series {
		if v > 0 {
			positive = append(positive, v)
		}
	}
	if len(positive) == 0 {
		return nil
	}
	median := stats.Quantile(positive, 0.5)
	if median <= 0 {
		median = 1
	}
	cut := median * threshold

	var spikes []DoSSpike
	inSpike := false
	for h := 0; h <= len(series); h++ {
		hot := h < len(series) && series[h] > cut
		switch {
		case hot && !inSpike:
			spikes = append(spikes, DoSSpike{StartHour: h, EndHour: h})
			inSpike = true
		case hot && inSpike:
			spikes[len(spikes)-1].EndHour = h
		case !hot && inSpike:
			inSpike = false
		}
	}
	// Attribute each spike to its dominant victim.
	for i := range spikes {
		sp := &spikes[i]
		perDevice := make(map[int]uint64)
		for id, ds := range a.res.Devices {
			for h := sp.StartHour; h <= sp.EndHour; h++ {
				if v := ds.BackscatterHourly[h]; v > 0 {
					perDevice[id] += v
					sp.Packets += v
				}
			}
		}
		var bestID int
		var bestPkts uint64
		for id, v := range perDevice {
			if v > bestPkts || (v == bestPkts && id < bestID) {
				bestID, bestPkts = id, v
			}
		}
		sp.TopDevice = bestID
		if sp.Packets > 0 {
			sp.TopShare = float64(bestPkts) / float64(sp.Packets)
		}
	}
	return spikes
}

// VictimCountryRow is one Fig. 8 row.
type VictimCountryRow struct {
	Code            string
	Victims         int
	ConsumerVictims int
	CPSVictims      int
	Packets         uint64
}

// VictimsByCountry reproduces Figs. 8a/8b: victims and backscatter packets
// per country, ordered by the given key ("victims" or "packets").
func (a *Analyzer) VictimsByCountry(n int, byPackets bool) []VictimCountryRow {
	counts := make(map[string]*VictimCountryRow)
	for id, ds := range a.res.Devices {
		bs := ds.Packets[classify.Backscatter.Index()]
		if bs == 0 {
			continue
		}
		d := a.inv.At(id)
		row := counts[d.Country]
		if row == nil {
			row = &VictimCountryRow{Code: d.Country}
			counts[d.Country] = row
		}
		row.Victims++
		row.Packets += bs
		if d.Category == devicedb.Consumer {
			row.ConsumerVictims++
		} else {
			row.CPSVictims++
		}
	}
	rows := make([]VictimCountryRow, 0, len(counts))
	for _, r := range counts {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if byPackets {
			if rows[i].Packets != rows[j].Packets {
				return rows[i].Packets > rows[j].Packets
			}
		} else if rows[i].Victims != rows[j].Victims {
			return rows[i].Victims > rows[j].Victims
		}
		return rows[i].Code < rows[j].Code
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// PortSweepFinding is the Sec. IV-C interval-119 investigation output.
type PortSweepFinding struct {
	Device int
	Hour   int
	Ports  int
	Dests  int
}

// WidestPortSweep finds the device with the widest single-hour TCP port
// sweep (the paper: an IP camera sweeping 10,249 ports on 55 destinations
// at interval 119).
func (a *Analyzer) WidestPortSweep() (PortSweepFinding, bool) {
	var best PortSweepFinding
	found := false
	for id, ds := range a.res.Devices {
		if ds.MaxScanPorts > best.Ports ||
			(ds.MaxScanPorts == best.Ports && found && id < best.Device) {
			best = PortSweepFinding{
				Device: id,
				Hour:   ds.MaxScanPortsHour,
				Ports:  ds.MaxScanPorts,
				Dests:  ds.MaxScanDests,
			}
			found = best.Ports > 0
		}
	}
	return best, found
}

// StatTests bundles the paper's statistical battery.
type StatTests struct {
	// TotalCPSvsConsumer: per-hour total packets, CPS vs consumer
	// (paper: CPS significantly greater, p < 0.0001).
	TotalCPSvsConsumer stats.MannWhitneyResult
	// BackscatterCPSvsConsumer: per-hour backscatter (paper: p < 0.0001,
	// U = 6061, Z = -5.95).
	BackscatterCPSvsConsumer stats.MannWhitneyResult
	// ConsumerUDPPortsVsIPs: Pearson between hourly targeted ports and
	// destination IPs for consumer UDP (paper: r = 0.95, p < 0.0001).
	ConsumerUDPPortsVsIPs stats.PearsonResult
	// ScannersVsScanPackets: Pearson between hourly scanning device count
	// and scan packets (paper: r ~ 0, p > 0.05).
	ScannersVsScanPackets stats.PearsonResult
}

// RunStatTests executes the battery. Cancellation is checked between
// tests; a cancelled run returns ctx.Err() with the partial StatTests.
func (a *Analyzer) RunStatTests(ctx context.Context) (StatTests, error) {
	var out StatTests
	var err error

	if err = ctx.Err(); err != nil {
		return out, err
	}
	cpsTotal := a.res.HourlyTotalSeries(devicedb.CPS)
	consTotal := a.res.HourlyTotalSeries(devicedb.Consumer)
	// Order (consumer, CPS) so a negative Z mirrors the paper's Z = -5.95
	// (consumer below CPS).
	out.TotalCPSvsConsumer, err = stats.MannWhitneyU(consTotal, cpsTotal)
	if err != nil {
		return out, err
	}
	if err = ctx.Err(); err != nil {
		return out, err
	}
	out.BackscatterCPSvsConsumer, err = stats.MannWhitneyU(
		a.res.HourlyClassSeries(classify.Backscatter, devicedb.Consumer),
		a.res.HourlyClassSeries(classify.Backscatter, devicedb.CPS))
	if err != nil {
		return out, err
	}
	if err = ctx.Err(); err != nil {
		return out, err
	}
	udp := a.UDPSurface(devicedb.Consumer)
	out.ConsumerUDPPortsVsIPs, err = stats.Pearson(udp.DstPorts, udp.DstIPs)
	if err != nil {
		return out, err
	}
	if err = ctx.Err(); err != nil {
		return out, err
	}
	scanCons := a.ScanSurface(devicedb.Consumer)
	scanCPS := a.ScanSurface(devicedb.CPS)
	devices := make([]float64, len(scanCons.Devices))
	packets := make([]float64, len(scanCons.Packets))
	for i := range devices {
		devices[i] = scanCons.Devices[i] + scanCPS.Devices[i]
		packets[i] = scanCons.Packets[i] + scanCPS.Packets[i]
	}
	out.ScannersVsScanPackets, err = stats.Pearson(devices, packets)
	return out, err
}
