package analysis

import (
	"testing"

	"iotscope/internal/classify"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
	"iotscope/internal/geo"
	"iotscope/internal/netx"
)

// handWorld builds a tiny fully hand-specified world so the analysis
// algorithms can be checked against pencil-and-paper expectations,
// independent of the workload generator.
func handWorld(t *testing.T) (*Analyzer, *correlate.Result) {
	t.Helper()
	reg, err := geo.Build(geo.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ruISPs := reg.ISPsIn("RU")
	cnISPs := reg.ISPsIn("CN")
	devices := []devicedb.Device{
		{ID: 0, IP: netx.MustParseAddr("1.0.0.1"), Category: devicedb.Consumer,
			Type: devicedb.TypeRouter, Country: "RU", ISP: ruISPs[0]},
		{ID: 1, IP: netx.MustParseAddr("1.0.0.2"), Category: devicedb.Consumer,
			Type: devicedb.TypeIPCamera, Country: "RU", ISP: ruISPs[0]},
		{ID: 2, IP: netx.MustParseAddr("1.0.0.3"), Category: devicedb.CPS,
			Type: devicedb.TypeCPS, Country: "CN", ISP: cnISPs[0],
			Services: []string{"Ethernet/IP"}},
		{ID: 3, IP: netx.MustParseAddr("1.0.0.4"), Category: devicedb.CPS,
			Type: devicedb.TypeCPS, Country: "CN", ISP: cnISPs[1],
			Services: []string{"Ethernet/IP", "Modbus TCP"}},
		// Deployed but never compromised.
		{ID: 4, IP: netx.MustParseAddr("1.0.0.5"), Category: devicedb.Consumer,
			Type: devicedb.TypeRouter, Country: "US", ISP: reg.ISPsIn("US")[0]},
	}
	inv, err := devicedb.NewInventory(devices)
	if err != nil {
		t.Fatal(err)
	}

	res := &correlate.Result{
		Hours:        6,
		Devices:      make(map[int]*correlate.DeviceStats),
		Hourly:       make([]correlate.HourStats, 6),
		UDPPorts:     make(map[uint16]*correlate.PortAgg),
		TCPScanPorts: make(map[uint16]*correlate.TCPPortAgg),
		TCPPortHour:  make(map[correlate.PortHour]uint64),
	}
	// Device 0: scanner, 100 pkts, first seen hour 0.
	res.Devices[0] = &correlate.DeviceStats{ID: 0, FirstSeen: 0, Records: 100, DayMask: 1}
	res.Devices[0].Packets[classify.ScanTCP.Index()] = 100
	// Device 1: UDP prober, 50 pkts, first seen hour 1 (day 0).
	res.Devices[1] = &correlate.DeviceStats{ID: 1, FirstSeen: 1, Records: 50, DayMask: 1}
	res.Devices[1].Packets[classify.UDP.Index()] = 50
	// Device 2: big DoS victim, 1000 backscatter concentrated at hour 3.
	res.Devices[2] = &correlate.DeviceStats{ID: 2, FirstSeen: 2, Records: 10, DayMask: 1,
		BackscatterHourly: map[int]uint64{3: 990, 2: 10}}
	res.Devices[2].Packets[classify.Backscatter.Index()] = 1000
	// Device 3: small victim, 20 backscatter at hour 3 (minority).
	res.Devices[3] = &correlate.DeviceStats{ID: 3, FirstSeen: 3, Records: 2, DayMask: 1,
		BackscatterHourly: map[int]uint64{3: 20}}
	res.Devices[3].Packets[classify.Backscatter.Index()] = 20

	// Hourly series: quiet backscatter except hour 3.
	for h := range res.Hourly {
		res.Hourly[h].Hour = h
	}
	cps := func(h int) *correlate.CatHour { return res.Hourly[h].Cat(devicedb.CPS) }
	cons := func(h int) *correlate.CatHour { return res.Hourly[h].Cat(devicedb.Consumer) }
	cons(0).Packets[classify.ScanTCP.Index()] = 100
	cons(1).Packets[classify.UDP.Index()] = 50
	cps(2).Packets[classify.Backscatter.Index()] = 10
	cps(3).Packets[classify.Backscatter.Index()] = 1010
	cps(4).Packets[classify.Backscatter.Index()] = 8
	cps(5).Packets[classify.Backscatter.Index()] = 12

	return New(res, inv, reg), res
}

func TestUnitSummary(t *testing.T) {
	a, _ := handWorld(t)
	s := a.Summary()
	if s.Total != 4 || s.Consumer != 2 || s.CPS != 2 {
		t.Fatalf("summary %+v", s)
	}
	if s.Countries != 2 {
		t.Fatalf("countries %d", s.Countries)
	}
	if s.PacketsTotal != 100+50+1010+8+12+10 {
		t.Fatalf("packets %d", s.PacketsTotal)
	}
}

func TestUnitCompromisedByCountry(t *testing.T) {
	a, _ := handWorld(t)
	rows := a.CompromisedByCountry(10)
	if len(rows) != 2 {
		t.Fatalf("rows %+v", rows)
	}
	// RU and CN tie at 2; ties break by code: CN first.
	if rows[0].Code != "CN" || rows[1].Code != "RU" {
		t.Fatalf("ordering %+v", rows)
	}
	// Both RU devices compromised of 2 deployed -> 100 %.
	if rows[1].PctCompromised != 100 {
		t.Fatalf("RU pct %v", rows[1].PctCompromised)
	}
}

func TestUnitDeployedByCountry(t *testing.T) {
	a, _ := handWorld(t)
	rows, cum := a.DeployedByCountry(2)
	if len(rows) != 2 || cum <= 0 || cum > 1 {
		t.Fatalf("rows %v cum %v", rows, cum)
	}
	// RU (2) and CN (2) tie ahead of US (1): 4/5 covered.
	if got := cum; got != 0.8 {
		t.Fatalf("cumulative %v", got)
	}
}

func TestUnitDiscoveryTimeline(t *testing.T) {
	a, _ := handWorld(t)
	tl := a.DiscoveryTimeline()
	if len(tl) != 1 { // 6 hours = 1 day
		t.Fatalf("days %d", len(tl))
	}
	if tl[0].NewDevices != 4 || tl[0].CumulativeAll != 4 {
		t.Fatalf("day 0 %+v", tl[0])
	}
}

func TestUnitConsumerTypeMix(t *testing.T) {
	a, _ := handWorld(t)
	rows := a.ConsumerTypeMix()
	if len(rows) != 2 {
		t.Fatalf("rows %+v", rows)
	}
	for _, r := range rows {
		if r.Pct != 50 {
			t.Fatalf("pct %+v", rows)
		}
	}
}

func TestUnitTopISPs(t *testing.T) {
	a, _ := handWorld(t)
	cons := a.TopISPs(devicedb.Consumer, 5)
	if len(cons) != 1 || cons[0].Devices != 2 || cons[0].Pct != 100 {
		t.Fatalf("consumer ISPs %+v", cons)
	}
	cps := a.TopISPs(devicedb.CPS, 5)
	if len(cps) != 2 || cps[0].Devices != 1 {
		t.Fatalf("cps ISPs %+v", cps)
	}
}

func TestUnitCPSServices(t *testing.T) {
	a, _ := handWorld(t)
	rows := a.CPSServices(10)
	if len(rows) != 2 {
		t.Fatalf("rows %+v", rows)
	}
	if rows[0].Service != "Ethernet/IP" || rows[0].Devices != 2 || rows[0].Pct != 100 {
		t.Fatalf("ethernet/ip row %+v", rows[0])
	}
	if rows[1].Service != "Modbus TCP" || rows[1].Pct != 50 {
		t.Fatalf("modbus row %+v", rows[1])
	}
	if rows[0].Application == "" {
		t.Fatal("application text missing")
	}
}

func TestUnitDetectDoSSpikes(t *testing.T) {
	a, _ := handWorld(t)
	spikes := a.DetectDoSSpikes(5)
	// Positive hours: 10, 1010, 8, 12 -> median 12 (sorted 8,10,12,1010 ->
	// index 2). Cut = 60. Only hour 3 exceeds it.
	if len(spikes) != 1 {
		t.Fatalf("spikes %+v", spikes)
	}
	sp := spikes[0]
	if sp.StartHour != 3 || sp.EndHour != 3 {
		t.Fatalf("spike hours %+v", sp)
	}
	if sp.TopDevice != 2 {
		t.Fatalf("attributed to %d", sp.TopDevice)
	}
	// Device 2 contributed 990 of 1010.
	if sp.TopShare < 0.97 || sp.TopShare > 0.99 {
		t.Fatalf("share %v", sp.TopShare)
	}
}

func TestUnitVictimsByCountry(t *testing.T) {
	a, _ := handWorld(t)
	rows := a.VictimsByCountry(5, false)
	if len(rows) != 1 || rows[0].Code != "CN" || rows[0].Victims != 2 {
		t.Fatalf("victim rows %+v", rows)
	}
	if rows[0].CPSVictims != 2 || rows[0].ConsumerVictims != 0 {
		t.Fatalf("victim split %+v", rows[0])
	}
	byPkts := a.VictimsByCountry(5, true)
	if byPkts[0].Packets != 1020 {
		t.Fatalf("victim packets %+v", byPkts[0])
	}
}

func TestUnitBackscatterSummary(t *testing.T) {
	a, _ := handWorld(t)
	s := a.Backscatter()
	if s.Victims != 2 || s.CPSVictims != 2 {
		t.Fatalf("summary %+v", s)
	}
	if s.Packets != 1020 || s.CPSPacketShare != 100 {
		t.Fatalf("packets %+v", s)
	}
	if s.VictimsUnder170 != 1 { // device 3 with 20
		t.Fatalf("under-170 %+v", s)
	}
}

func TestUnitProtocolBreakdownConservation(t *testing.T) {
	a, _ := handWorld(t)
	mix := a.ProtocolBreakdown()
	sum := mix.TCPCPS + mix.TCPConsumer + mix.UDPCPS + mix.UDPConsumer +
		mix.ICMPCPS + mix.ICMPConsumer
	if sum < 99.99 || sum > 100.01 {
		t.Fatalf("mix sums to %v", sum)
	}
}

func TestUnitEmptyResultSafety(t *testing.T) {
	reg, err := geo.Build(geo.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	inv, _ := devicedb.NewInventory(nil)
	res := &correlate.Result{
		Hours:        0,
		Devices:      map[int]*correlate.DeviceStats{},
		UDPPorts:     map[uint16]*correlate.PortAgg{},
		TCPScanPorts: map[uint16]*correlate.TCPPortAgg{},
		TCPPortHour:  map[correlate.PortHour]uint64{},
	}
	a := New(res, inv, reg)
	if s := a.Summary(); s.Total != 0 {
		t.Fatal("empty summary")
	}
	if rows := a.CompromisedByCountry(5); len(rows) != 0 {
		t.Fatal("rows from empty result")
	}
	if tl := a.DiscoveryTimeline(); tl != nil {
		t.Fatal("timeline from empty result")
	}
	if spikes := a.DetectDoSSpikes(5); spikes != nil {
		t.Fatal("spikes from empty result")
	}
	if _, ok := a.WidestPortSweep(); ok {
		t.Fatal("sweep from empty result")
	}
	mix := a.ProtocolBreakdown()
	if mix.TCPCPS != 0 {
		t.Fatal("mix from empty result")
	}
}
