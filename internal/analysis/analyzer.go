// Package analysis computes the paper's evaluation artifacts — every table
// and figure of Secs. III and IV — from a correlation result, the device
// inventory, and the Internet registry. Each exported method corresponds to
// one artifact; internal/report renders them and bench_test.go regenerates
// them per experiment.
package analysis

import (
	"sort"

	"iotscope/internal/classify"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
	"iotscope/internal/geo"
	"iotscope/internal/stats"
)

// Analyzer binds a correlation result to its world metadata.
type Analyzer struct {
	res *correlate.Result
	inv *devicedb.Inventory
	reg *geo.Registry
}

// New returns an analyzer over a correlation result.
func New(res *correlate.Result, inv *devicedb.Inventory, reg *geo.Registry) *Analyzer {
	return &Analyzer{res: res, inv: inv, reg: reg}
}

// Result exposes the underlying correlation result.
func (a *Analyzer) Result() *correlate.Result { return a.res }

// CountryRow is one country's device counts (Figs. 1a/1b).
type CountryRow struct {
	Code           string
	Consumer       int
	CPS            int
	PctCompromised float64 // Fig. 1b secondary axis; zero for deployment rows
}

// Total returns consumer + CPS.
func (c CountryRow) Total() int { return c.Consumer + c.CPS }

// DeployedByCountry reproduces Fig. 1a: the top-n countries hosting
// deployed IoT devices, plus the cumulative share they cover.
func (a *Analyzer) DeployedByCountry(n int) (rows []CountryRow, cumulativeShare float64) {
	counts := make(map[string]*CountryRow)
	total := 0
	for _, d := range a.inv.All() {
		row := counts[d.Country]
		if row == nil {
			row = &CountryRow{Code: d.Country}
			counts[d.Country] = row
		}
		if d.Category == devicedb.Consumer {
			row.Consumer++
		} else {
			row.CPS++
		}
		total++
	}
	rows = topCountryRows(counts, n)
	covered := 0
	for _, r := range rows {
		covered += r.Total()
	}
	if total > 0 {
		cumulativeShare = float64(covered) / float64(total)
	}
	return rows, cumulativeShare
}

// CompromisedByCountry reproduces Fig. 1b: top-n countries hosting inferred
// compromised devices, with the percentage of each country's deployed
// devices that are compromised.
func (a *Analyzer) CompromisedByCountry(n int) []CountryRow {
	deployed := make(map[string]int)
	for _, d := range a.inv.All() {
		deployed[d.Country]++
	}
	counts := make(map[string]*CountryRow)
	for id := range a.res.Devices {
		d := a.inv.At(id)
		row := counts[d.Country]
		if row == nil {
			row = &CountryRow{Code: d.Country}
			counts[d.Country] = row
		}
		if d.Category == devicedb.Consumer {
			row.Consumer++
		} else {
			row.CPS++
		}
	}
	rows := topCountryRows(counts, n)
	for i := range rows {
		if dep := deployed[rows[i].Code]; dep > 0 {
			rows[i].PctCompromised = 100 * float64(rows[i].Total()) / float64(dep)
		}
	}
	return rows
}

func topCountryRows(counts map[string]*CountryRow, n int) []CountryRow {
	rows := make([]CountryRow, 0, len(counts))
	for _, r := range counts {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total() != rows[j].Total() {
			return rows[i].Total() > rows[j].Total()
		}
		return rows[i].Code < rows[j].Code
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// CompromisedSummary is the headline Sec. III-B result.
type CompromisedSummary struct {
	Total, Consumer, CPS   int
	Countries              int
	ConsumerCountries      int
	CPSCountries           int
	ConsumerISPs, CPSISPs  int
	PacketsTotal           uint64
	MeanDailyActiveDevices float64
}

// Summary computes the headline inference numbers.
func (a *Analyzer) Summary() CompromisedSummary {
	var s CompromisedSummary
	countries := make(map[string]bool)
	consCountries := make(map[string]bool)
	cpsCountries := make(map[string]bool)
	consISPs := make(map[int]bool)
	cpsISPs := make(map[int]bool)
	for id := range a.res.Devices {
		d := a.inv.At(id)
		s.Total++
		countries[d.Country] = true
		if d.Category == devicedb.Consumer {
			s.Consumer++
			consCountries[d.Country] = true
			consISPs[d.ISP] = true
		} else {
			s.CPS++
			cpsCountries[d.Country] = true
			cpsISPs[d.ISP] = true
		}
	}
	s.Countries = len(countries)
	s.ConsumerCountries = len(consCountries)
	s.CPSCountries = len(cpsCountries)
	s.ConsumerISPs = len(consISPs)
	s.CPSISPs = len(cpsISPs)
	s.PacketsTotal = a.res.TotalIoTPackets()

	// Mean daily active devices (paper: 10,889), from per-device day masks.
	days := (a.res.Hours + 23) / 24
	if days > 0 {
		perDay := make([]int, days)
		for _, ds := range a.res.Devices {
			for d := 0; d < days && d < 64; d++ {
				if ds.DayMask&(1<<d) != 0 {
					perDay[d]++
				}
			}
		}
		sum := 0
		for _, n := range perDay {
			sum += n
		}
		s.MeanDailyActiveDevices = float64(sum) / float64(days)
	}
	return s
}

// DayDiscovery is one day of Fig. 2's cumulative discovery curve.
type DayDiscovery struct {
	Day                int
	NewDevices         int
	CumulativeAll      int
	CumulativeConsumer int
	CumulativeCPS      int
}

// DiscoveryTimeline reproduces Fig. 2 from per-device first-seen hours.
func (a *Analyzer) DiscoveryTimeline() []DayDiscovery {
	days := (a.res.Hours + 23) / 24
	if days == 0 {
		return nil
	}
	newAll := make([]int, days)
	newCons := make([]int, days)
	newCPS := make([]int, days)
	for id, ds := range a.res.Devices {
		day := ds.FirstSeen / 24
		if day >= days {
			continue
		}
		newAll[day]++
		if a.inv.At(id).Category == devicedb.Consumer {
			newCons[day]++
		} else {
			newCPS[day]++
		}
	}
	out := make([]DayDiscovery, days)
	cumAll, cumCons, cumCPS := 0, 0, 0
	for d := 0; d < days; d++ {
		cumAll += newAll[d]
		cumCons += newCons[d]
		cumCPS += newCPS[d]
		out[d] = DayDiscovery{
			Day: d, NewDevices: newAll[d],
			CumulativeAll: cumAll, CumulativeConsumer: cumCons, CumulativeCPS: cumCPS,
		}
	}
	return out
}

// TypeRow is one slice of Fig. 3's consumer type pie.
type TypeRow struct {
	Type    devicedb.DeviceType
	Devices int
	Pct     float64
}

// ConsumerTypeMix reproduces Fig. 3 over the inferred consumer devices.
func (a *Analyzer) ConsumerTypeMix() []TypeRow {
	counts := make(map[devicedb.DeviceType]int)
	total := 0
	for id := range a.res.Devices {
		d := a.inv.At(id)
		if d.Category != devicedb.Consumer {
			continue
		}
		counts[d.Type]++
		total++
	}
	rows := make([]TypeRow, 0, len(counts))
	for typ, n := range counts {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(n) / float64(total)
		}
		rows = append(rows, TypeRow{Type: typ, Devices: n, Pct: pct})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Devices != rows[j].Devices {
			return rows[i].Devices > rows[j].Devices
		}
		return rows[i].Type < rows[j].Type
	})
	return rows
}

// ISPRow is one row of Tables I/II.
type ISPRow struct {
	Name    string
	Country string
	Devices int
	Pct     float64 // of the category's compromised devices
}

// TopISPs reproduces Table I (consumer) and Table II (CPS).
func (a *Analyzer) TopISPs(cat devicedb.Category, n int) []ISPRow {
	counts := make(map[int]int)
	total := 0
	for id := range a.res.Devices {
		d := a.inv.At(id)
		if d.Category != cat {
			continue
		}
		counts[d.ISP]++
		total++
	}
	rows := make([]ISPRow, 0, len(counts))
	for isp, devices := range counts {
		info := a.reg.ISPs[isp]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(devices) / float64(total)
		}
		rows = append(rows, ISPRow{
			Name: info.Name, Country: info.Country, Devices: devices, Pct: pct,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Devices != rows[j].Devices {
			return rows[i].Devices > rows[j].Devices
		}
		return rows[i].Name < rows[j].Name
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// ServiceRow is one row of Table III.
type ServiceRow struct {
	Service     string
	Application string
	Devices     int
	Pct         float64 // of compromised CPS devices
}

// CPSServices reproduces Table III: services run by the inferred CPS
// devices (not mutually exclusive).
func (a *Analyzer) CPSServices(n int) []ServiceRow {
	counts := make(map[string]int)
	totalCPS := 0
	for id := range a.res.Devices {
		d := a.inv.At(id)
		if d.Category != devicedb.CPS {
			continue
		}
		totalCPS++
		for _, svc := range d.Services {
			counts[svc]++
		}
	}
	rows := make([]ServiceRow, 0, len(counts))
	for svc, devices := range counts {
		app := ""
		if i := devicedb.CPSServiceIndex(svc); i >= 0 {
			app = devicedb.CPSServices[i].Application
		}
		pct := 0.0
		if totalCPS > 0 {
			pct = 100 * float64(devices) / float64(totalCPS)
		}
		rows = append(rows, ServiceRow{Service: svc, Application: app, Devices: devices, Pct: pct})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Devices != rows[j].Devices {
			return rows[i].Devices > rows[j].Devices
		}
		return rows[i].Service < rows[j].Service
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// ProtocolMix reproduces Fig. 4: each (protocol, realm) cell as a
// percentage of all IoT packets.
type ProtocolMix struct {
	// Percent of total IoT packets.
	TCPCPS, TCPConsumer   float64
	UDPCPS, UDPConsumer   float64
	ICMPCPS, ICMPConsumer float64
}

// ProtocolBreakdown computes Fig. 4. TCP covers scanning + TCP backscatter
// + other; ICMP covers echo scanning + ICMP backscatter. Backscatter is
// split by protocol using the per-class protocol composition recorded in
// the flowtuples (approximated here by the class totals: TCP-flag classes
// are TCP by construction; Backscatter mixes both, so it is apportioned by
// the scenario's reply mix which the classifier cannot recover — instead we
// fold all backscatter into the protocol cell it was observed on; since the
// correlator does not retain per-protocol backscatter splits, backscatter
// is reported in TCP, which holds ~90 % of reply packets).
func (a *Analyzer) ProtocolBreakdown() ProtocolMix {
	total := float64(a.res.TotalIoTPackets())
	if total == 0 {
		return ProtocolMix{}
	}
	pct := func(v uint64) float64 { return 100 * float64(v) / total }
	cls := func(c classify.Class, cat devicedb.Category) uint64 {
		return a.res.ClassPackets(c, cat)
	}
	return ProtocolMix{
		TCPCPS: pct(cls(classify.ScanTCP, devicedb.CPS) +
			cls(classify.Backscatter, devicedb.CPS) +
			cls(classify.Other, devicedb.CPS)),
		TCPConsumer: pct(cls(classify.ScanTCP, devicedb.Consumer) +
			cls(classify.Backscatter, devicedb.Consumer) +
			cls(classify.Other, devicedb.Consumer)),
		UDPCPS:       pct(cls(classify.UDP, devicedb.CPS)),
		UDPConsumer:  pct(cls(classify.UDP, devicedb.Consumer)),
		ICMPCPS:      pct(cls(classify.ScanICMP, devicedb.CPS)),
		ICMPConsumer: pct(cls(classify.ScanICMP, devicedb.Consumer)),
	}
}

// PerDeviceTotals returns every inferred device's total packet count —
// input to the Fig. 6/11 CDFs.
func (a *Analyzer) PerDeviceTotals() []float64 {
	out := make([]float64, 0, len(a.res.Devices))
	for _, ds := range a.res.Devices {
		out = append(out, float64(ds.TotalPackets()))
	}
	sort.Float64s(out)
	return out
}

// CDF builds the Fig. 6/11 style log-binned cumulative distribution.
func CDF(values []float64) *stats.LogHistogram {
	h := stats.NewLogHistogram(0, 7) // 1 .. 10M packets
	for _, v := range values {
		h.Observe(v)
	}
	return h
}
