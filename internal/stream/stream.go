// Package stream turns the batch correlator into a long-lived, crash-safe
// streaming collector: it tails arriving flowtuple data and feeds the
// incremental engine record-batch by record-batch, without waiting for
// hour boundaries.
//
// Event time is hour-granular (records carry no timestamps; the hour is
// the file's identity), so the watermark is an hour number: it trails the
// newest observed hour by a configurable lateness allowance. Hours at or
// ahead of the watermark accumulate in open windows; when the watermark
// passes a window it is sealed — finalized into the result, its alerts
// derived and journaled, and a checkpoint written. Records that surface
// behind the watermark are never merged and never silently dropped: they
// land in a bounded late buffer and are counted, and an hour that first
// appears behind the watermark is quarantined.
//
// Crash safety is the seal ordering: seal (in memory) → alert journal
// append (durable, deduplicated by key) → checkpoint write (atomic). A
// crash at any point resumes from the last checkpoint, re-tails the
// unsealed hours, re-derives their alerts deterministically, and the
// journal's key dedup suppresses any alert that already became durable —
// alerts are exactly-once across kill-and-restart, and the resumed
// checkpoint converges to the byte-identical state a never-killed run
// produces. A supervisor restarts a crashed ingest loop under
// pipeline.RetryPolicy with jittered backoff.
package stream

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"iotscope/internal/campaign"
	"iotscope/internal/classify"
	"iotscope/internal/correlate"
	"iotscope/internal/flowtuple"
	"iotscope/internal/pipeline"
	"iotscope/internal/resultstore"
)

// ErrLateArrival marks an hour that first appeared behind the watermark:
// its window has irrevocably closed, so the hour is quarantined. It wraps
// flowtuple.ErrBadFormat (permanent, not retryable) so the incremental
// engine's fault taxonomy treats it like any other unrecoverable hour.
var ErrLateArrival = fmt.Errorf("stream: hour surfaced behind the watermark: %w", flowtuple.ErrBadFormat)

// Config parameterizes a Collector.
type Config struct {
	// Dir is the dataset directory being tailed.
	Dir string
	// CheckpointPath, when set, persists the incremental state there after
	// every sealed window (and every quarantine), atomically.
	CheckpointPath string
	// Poll is the directory sweep interval (default 200ms).
	Poll time.Duration
	// Lateness is how many hours the watermark trails the newest observed
	// hour (default 1). Larger values tolerate more out-of-order arrival;
	// smaller values seal — and alert — sooner.
	Lateness int
	// BatchLen is the record batch size fed to windows (default
	// flowtuple.BatchSize).
	BatchLen int
	// Buffer is the event channel capacity between tailer and ingest loop
	// (default 64 events). This is the backpressure bound: a full channel
	// blocks the tailer, or sheds when Shed is set.
	Buffer int
	// Shed makes a full event channel drop record batches (counted in
	// Stats, re-offered next poll) instead of blocking the tailer.
	Shed bool
	// LateBuffer bounds how many late records are retained for inspection
	// (default 4096); beyond it the oldest are dropped and counted.
	LateBuffer int
	// DoSAlarm is the dos-spike alert threshold as a multiple of the
	// running median backscatter hour (default 8; negative disables).
	DoSAlarm float64
	// Campaigns enables new-campaign alerts (a campaign.Detect pass per
	// sealed window).
	Campaigns bool
	// Drain makes the collector exit cleanly once a full sweep finds
	// nothing new, force-sealing any still-open windows first.
	Drain bool
	// Supervisor governs ingest-loop restarts after a crash. Defaults: 3
	// restarts, 500ms base backoff (jittered, doubling), any error
	// restartable.
	Supervisor pipeline.RetryPolicy
}

func (cfg Config) withDefaults() Config {
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.Lateness <= 0 {
		cfg.Lateness = 1
	}
	if cfg.BatchLen <= 0 {
		cfg.BatchLen = flowtuple.BatchSize
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	if cfg.LateBuffer <= 0 {
		cfg.LateBuffer = 4096
	}
	if cfg.DoSAlarm == 0 {
		cfg.DoSAlarm = 8
	}
	if cfg.Supervisor.MaxRetries == 0 {
		cfg.Supervisor.MaxRetries = 3
	}
	if cfg.Supervisor.BaseBackoff == 0 {
		cfg.Supervisor.BaseBackoff = 500 * time.Millisecond
	}
	if cfg.Supervisor.Retryable == nil {
		cfg.Supervisor.Retryable = func(error) bool { return true }
	}
	return cfg
}

// Opener constructs a fresh Incremental reflecting the current durable
// state — typically core.Dataset.RestoreIncremental from the checkpoint at
// Config.CheckpointPath, or NewIncremental when none exists. It is called
// once per ingest-loop start, so a supervisor restart re-reads whatever
// the crashed loop last checkpointed. The Incremental must be Lenient:
// the collector quarantines corrupt and late hours through the lenient
// fault path.
type Opener func() (*correlate.Incremental, error)

// LateRecord is a record that surfaced behind the watermark, retained in
// the bounded late buffer.
type LateRecord struct {
	Hour int
	Rec  flowtuple.Record
}

// Stats is a snapshot of collector counters. Counters are cumulative
// across supervisor restarts; gauges (OpenWindows, MaxHour, Watermark)
// reflect the current ingest loop.
type Stats struct {
	RecordsIngested    uint64
	BatchesIngested    uint64
	WindowsSealed      int
	WindowsPartial     int
	HoursQuarantined   int
	LateHours          int
	LateRecords        uint64
	LateBuffered       int
	LateDropped        uint64
	LateBytes          int64
	ShedBatches        uint64
	ShedRecords        uint64
	Restarts           int
	AlertsEmitted      uint64
	AlertsSuppressed   uint64
	CheckpointWrites   uint64
	CheckpointFailures uint64
	MaxHour            int
	Watermark          int
	OpenWindows        int
}

// Collector is the streaming ingestion engine: one tailer goroutine
// feeding one ingest-loop goroutine through a bounded channel, supervised
// by Run.
type Collector struct {
	cfg  Config
	open Opener
	hub  *Hub

	mu      sync.Mutex
	stats   Stats
	lateBuf []LateRecord

	// failpoint, when set by a test before Run, is invoked at the named
	// crash points of the seal sequence ("sealed", "alerted",
	// "checkpointed", "quarantined"); a returned error kills the ingest
	// loop there, exactly like a crash, and the supervisor takes over.
	failpoint func(point string, hour int) error
}

// New validates the configuration and builds a Collector. hub may be nil
// for a private, memory-only alert hub.
func New(cfg Config, open Opener, hub *Hub) (*Collector, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("stream: no dataset directory")
	}
	if open == nil {
		return nil, fmt.Errorf("stream: nil opener")
	}
	if hub == nil {
		hub = NewHub(nil)
	}
	return &Collector{cfg: cfg.withDefaults(), open: open, hub: hub}, nil
}

// Hub returns the alert hub serving this collector's alerts.
func (c *Collector) Hub() *Hub { return c.hub }

// Stats returns a snapshot of the collector's counters.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.LateBuffered = len(c.lateBuf)
	return s
}

// Late returns a copy of the late-record buffer (newest last).
func (c *Collector) Late() []LateRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]LateRecord(nil), c.lateBuf...)
}

// Run tails the dataset until ctx is done (clean stop, nil) or — in Drain
// mode — until a sweep finds nothing left to do. A crashed ingest loop
// (error or panic) is restarted under the Supervisor policy with jittered
// backoff, re-opening the incremental state from the checkpoint; when the
// restart budget is exhausted the last error is returned.
func (c *Collector) Run(ctx context.Context) error {
	restarts := 0
	for {
		err := c.runOnce(ctx)
		if ctx.Err() != nil {
			return nil // interrupted: a clean stop, state is checkpointed
		}
		if err == nil {
			return nil // drained
		}
		if !c.cfg.Supervisor.ShouldRetry(err, restarts) {
			return err
		}
		restarts++
		c.mu.Lock()
		c.stats.Restarts++
		c.mu.Unlock()
		fmt.Fprintf(os.Stderr, "stream: ingest loop crashed (%v); restart %d/%d\n",
			err, restarts, c.cfg.Supervisor.MaxRetries)
		if pipeline.Sleep(ctx, c.cfg.Supervisor.JitteredDelay(restarts)) != nil {
			return nil
		}
	}
}

// ingest is the per-run (per-restart) state of the ingest loop.
type ingest struct {
	inc      *correlate.Incremental
	windows  map[int]*correlate.Window
	sealed   map[int]bool // ingested, quarantined, or window sealed
	maxHour  int
	bsHours  []float64 // positive backscatter hours, for the DoS median
	finished bool
}

func (st *ingest) watermark(lateness int) int { return st.maxHour - lateness }

func (c *Collector) runOnce(ctx context.Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("stream: ingest loop panicked: %v", r)
		}
	}()
	inc, err := c.open()
	if err != nil {
		return fmt.Errorf("stream: open incremental: %w", err)
	}
	st := &ingest{
		inc:     inc,
		windows: make(map[int]*correlate.Window),
		sealed:  make(map[int]bool),
		maxHour: -1,
	}
	// Hours settled in the checkpoint are never re-tailed, and the
	// watermark resumes at least past them.
	skip := make(map[int]bool)
	for _, h := range inc.IngestedHours() {
		st.sealed[h], skip[h] = true, true
		if h > st.maxHour {
			st.maxHour = h
		}
	}
	for _, h := range inc.QuarantinedHours() {
		st.sealed[h], skip[h] = true, true
		if h > st.maxHour {
			st.maxHour = h
		}
	}
	st.bsHours = rebuildBsHours(inc)
	c.mu.Lock()
	c.stats.MaxHour = st.maxHour
	c.stats.Watermark = st.watermark(c.cfg.Lateness)
	c.stats.OpenWindows = 0
	c.mu.Unlock()

	tctx, cancel := context.WithCancel(ctx)
	defer cancel()
	events := make(chan event, c.cfg.Buffer)
	tl := newTailer(c.cfg.Dir, c.cfg.BatchLen, c.cfg.Poll, c.cfg.Shed, skip, events, c.noteShed)
	done := make(chan struct{})
	var tailErr error
	go func() {
		defer close(done)
		tailErr = tl.run(tctx)
	}()

	for {
		select {
		case ev := <-events:
			if err := c.handle(st, ev); err != nil {
				cancel()
				<-done
				return err
			}
			if st.finished {
				cancel()
				<-done
				return nil
			}
		case <-done:
			for {
				select {
				case ev := <-events:
					if err := c.handle(st, ev); err != nil {
						return err
					}
					if st.finished {
						return nil
					}
				default:
					return tailErr
				}
			}
		case <-ctx.Done():
			cancel()
			<-done
			return ctx.Err()
		}
	}
}

func (c *Collector) handle(st *ingest, ev event) error {
	switch ev.kind {
	case evRecords:
		if err := c.observeHour(st, ev.hour); err != nil {
			return err
		}
		if st.sealed[ev.hour] || ev.hour < st.watermark(c.cfg.Lateness) {
			return c.late(st, ev.hour, ev.recs)
		}
		w := st.windows[ev.hour]
		if w == nil {
			var err error
			if w, err = st.inc.OpenWindow(ev.hour); err != nil {
				return err
			}
			st.windows[ev.hour] = w
			c.mu.Lock()
			c.stats.OpenWindows = len(st.windows)
			c.mu.Unlock()
		}
		if err := w.Feed(ev.recs); err != nil {
			return err
		}
		c.mu.Lock()
		c.stats.RecordsIngested += uint64(len(ev.recs))
		c.stats.BatchesIngested++
		c.mu.Unlock()
		return nil

	case evComplete:
		if err := c.observeHour(st, ev.hour); err != nil {
			return err
		}
		if st.sealed[ev.hour] {
			return nil // completed after a watermark partial-seal
		}
		w := st.windows[ev.hour]
		if w == nil {
			if ev.hour < st.watermark(c.cfg.Lateness) {
				return c.late(st, ev.hour, nil) // a whole hour arriving late
			}
			var err error
			if w, err = st.inc.OpenWindow(ev.hour); err != nil {
				return err // an empty hour still seals (and checkpoints)
			}
		}
		return c.seal(st, ev.hour, w, false)

	case evCorrupt:
		if err := c.observeHour(st, ev.hour); err != nil {
			return err
		}
		if st.sealed[ev.hour] {
			return nil // damage after the seal; nothing left to protect
		}
		return c.quarantine(st, ev.hour, ev.err)

	case evLateGrowth:
		c.mu.Lock()
		c.stats.LateBytes += ev.bytes
		c.mu.Unlock()
		return nil

	case evSweep:
		if c.cfg.Drain && !ev.progressed {
			for _, h := range sortedHours(st.windows) {
				if err := c.seal(st, h, st.windows[h], true); err != nil {
					return err
				}
			}
			st.finished = true
		}
		return nil
	}
	return fmt.Errorf("stream: unknown event kind %d", ev.kind)
}

// observeHour advances the watermark for a newly seen hour, partial-
// sealing every open window it passes, in hour order.
func (c *Collector) observeHour(st *ingest, h int) error {
	if h <= st.maxHour {
		return nil
	}
	st.maxHour = h
	w := st.watermark(c.cfg.Lateness)
	c.mu.Lock()
	c.stats.MaxHour = h
	c.stats.Watermark = w
	c.mu.Unlock()
	for _, hh := range sortedHours(st.windows) {
		if hh >= w {
			break
		}
		if err := c.seal(st, hh, st.windows[hh], true); err != nil {
			return err
		}
	}
	return nil
}

// seal closes a window with the crash-safe ordering: finalize into the
// result, journal the window's alerts (durable, deduplicated), then
// checkpoint. partial marks a watermark- or drain-forced seal of an hour
// whose file had no footer yet.
func (c *Collector) seal(st *ingest, h int, w *correlate.Window, partial bool) error {
	ws, err := w.Seal()
	if err != nil {
		return err
	}
	delete(st.windows, h)
	st.sealed[h] = true
	c.mu.Lock()
	c.stats.WindowsSealed++
	if partial {
		c.stats.WindowsPartial++
	}
	c.stats.OpenWindows = len(st.windows)
	c.mu.Unlock()
	if err := c.fail("sealed", h); err != nil {
		return err
	}
	if err := c.emitAlerts(st, ws); err != nil {
		return err
	}
	if err := c.fail("alerted", h); err != nil {
		return err
	}
	c.checkpoint(st)
	return c.fail("checkpointed", h)
}

// quarantine abandons an hour through the incremental engine's lenient
// fault path and persists that decision.
func (c *Collector) quarantine(st *ingest, h int, cause error) error {
	if w := st.windows[h]; w != nil {
		w.Abort()
		delete(st.windows, h)
	}
	st.inc.FailHour(h, cause)
	st.sealed[h] = true
	c.mu.Lock()
	c.stats.OpenWindows = len(st.windows)
	if st.inc.Quarantined(h) {
		c.stats.HoursQuarantined++
	}
	c.mu.Unlock()
	c.checkpoint(st)
	return c.fail("quarantined", h)
}

// late handles records (possibly none) for an hour behind the watermark:
// the hour is quarantined on first late appearance, and the records are
// counted and retained in the bounded buffer — never silently dropped.
func (c *Collector) late(st *ingest, h int, recs []flowtuple.Record) error {
	if !st.sealed[h] {
		c.mu.Lock()
		c.stats.LateHours++
		c.mu.Unlock()
		if err := c.quarantine(st, h, ErrLateArrival); err != nil {
			return err
		}
	}
	if len(recs) == 0 {
		return nil
	}
	c.mu.Lock()
	c.stats.LateRecords += uint64(len(recs))
	for _, rec := range recs {
		if len(c.lateBuf) >= c.cfg.LateBuffer {
			drop := len(c.lateBuf) - c.cfg.LateBuffer + 1
			c.lateBuf = c.lateBuf[drop:]
			c.stats.LateDropped += uint64(drop)
		}
		c.lateBuf = append(c.lateBuf, LateRecord{Hour: h, Rec: rec})
	}
	c.mu.Unlock()
	return nil
}

// emitAlerts derives and journals a sealed window's alerts. Derivation is
// deterministic given the checkpointed state, which is what makes resume
// re-derivation + key dedup add up to exactly-once.
func (c *Collector) emitAlerts(st *ingest, ws correlate.WindowStats) error {
	for _, id := range ws.Fresh {
		if err := c.emit(Alert{
			Kind: KindNewDevice, Key: fmt.Sprintf("device/%d", id),
			Hour: ws.Hour, Device: id,
		}); err != nil {
			return err
		}
	}
	if c.cfg.DoSAlarm > 0 && ws.Backscatter > 0 {
		if med := median(st.bsHours); med > 0 && float64(ws.Backscatter) > c.cfg.DoSAlarm*med {
			if err := c.emit(Alert{
				Kind: KindDoSSpike, Key: fmt.Sprintf("dos/h%d", ws.Hour),
				Hour: ws.Hour, Packets: ws.Backscatter,
				Ratio: float64(ws.Backscatter) / med,
			}); err != nil {
				return err
			}
		}
		st.bsHours = append(st.bsHours, float64(ws.Backscatter))
	}
	if c.cfg.Campaigns {
		camps, err := campaign.Detect(st.inc.Result(), campaign.DefaultConfig())
		if err != nil {
			return err
		}
		for _, cp := range camps {
			if err := c.emit(Alert{
				Kind: KindNewCampaign, Key: campaignKey(cp.Ports),
				Hour: ws.Hour, Devices: cp.Devices, Ports: cp.Ports,
				Packets: cp.Packets,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Collector) emit(a Alert) error {
	_, emitted, err := c.hub.Emit(a)
	if err != nil {
		return err // the journal is the durability contract; crash and retry
	}
	c.mu.Lock()
	if emitted {
		c.stats.AlertsEmitted++
	} else {
		c.stats.AlertsSuppressed++
	}
	c.mu.Unlock()
	return nil
}

// checkpoint persists the incremental state atomically. Failures are
// counted and logged, not fatal: the next seal retries, and until one
// lands a crash merely replays more work.
func (c *Collector) checkpoint(st *ingest) {
	if c.cfg.CheckpointPath == "" {
		return
	}
	err := resultstore.WriteCheckpoint(c.cfg.CheckpointPath, st.inc.Export())
	c.mu.Lock()
	if err != nil {
		c.stats.CheckpointFailures++
	} else {
		c.stats.CheckpointWrites++
	}
	c.mu.Unlock()
	if err != nil {
		fmt.Fprintf(os.Stderr, "stream: checkpoint failed: %v\n", err)
	}
}

func (c *Collector) fail(point string, hour int) error {
	if c.failpoint == nil {
		return nil
	}
	return c.failpoint(point, hour)
}

func (c *Collector) noteShed(batches, records int) {
	c.mu.Lock()
	c.stats.ShedBatches += uint64(batches)
	c.stats.ShedRecords += uint64(records)
	c.mu.Unlock()
}

// rebuildBsHours reconstructs the DoS-median history from the checkpointed
// result: one entry per ingested hour with positive backscatter — exactly
// what the live loop appended, so an alarm decision after resume matches
// the uninterrupted run (the median is order-independent).
func rebuildBsHours(inc *correlate.Incremental) []float64 {
	bsIdx := classify.Backscatter.Index()
	res := inc.Result()
	var bs []float64
	for _, h := range inc.IngestedHours() {
		hs := res.Hourly[h]
		var v uint64
		for ci := range hs.PerCat {
			v += hs.PerCat[ci].Packets[bsIdx]
		}
		if v > 0 {
			bs = append(bs, float64(v))
		}
	}
	return bs
}

func sortedHours(windows map[int]*correlate.Window) []int {
	hours := make([]int, 0, len(windows))
	for h := range windows {
		hours = append(hours, h)
	}
	sort.Ints(hours)
	return hours
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	dup := append([]float64(nil), xs...)
	sort.Float64s(dup)
	if n := len(dup); n%2 == 1 {
		return dup[n/2]
	} else {
		return (dup[n/2-1] + dup[n/2]) / 2
	}
}

func campaignKey(ports []uint16) string {
	parts := make([]string, len(ports))
	for i, p := range ports {
		parts[i] = fmt.Sprint(p)
	}
	return "campaign/p" + strings.Join(parts, "-")
}
