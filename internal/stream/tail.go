package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"iotscope/internal/flowtuple"
	"iotscope/internal/pipeline"
)

// evKind classifies tailer events on the (bounded) channel to the ingest
// loop.
type evKind uint8

const (
	// evRecords carries freshly decoded records for one hour.
	evRecords evKind = iota
	// evComplete marks an hour whose footer has been read — the file is
	// finished and every record was delivered.
	evComplete
	// evCorrupt marks an hour with permanent structural damage (or one
	// whose readable prefix shrank beneath records already delivered).
	evCorrupt
	// evLateGrowth reports bytes appended to a file after its footer was
	// observed — junk or a non-atomic late append; never ingestible.
	evLateGrowth
	// evSweep marks the end of one full directory pass, noting whether it
	// made any progress. Drain mode ends on a no-progress sweep.
	evSweep
)

type event struct {
	kind       evKind
	hour       int
	recs       []flowtuple.Record
	err        error
	bytes      int64
	progressed bool
}

// tailer follows the dataset directory, decoding each hour file's newly
// appeared records and streaming them to the ingest loop without waiting
// for hour boundaries. gzip cannot be resumed mid-stream, so every poll of
// a grown file re-opens it and skips the records already delivered (the
// cursor) — the cost of tailing a compressed format; only files whose size
// changed are re-read. With shed enabled, record sends that would block
// are dropped instead (counted via onShed) and the cursor holds, so the
// same records are re-offered next poll: backpressure sheds work, never
// data.
type tailer struct {
	dir      string
	batchLen int
	poll     time.Duration
	shed     bool
	out      chan<- event
	onShed   func(batches, records int)

	skip         map[int]bool   // settled before this run; never read
	cursor       map[int]uint64 // records already delivered per hour
	lastSize     map[int]int64  // size at last read, to skip unchanged files
	pending      map[int]bool   // a shed left undelivered records behind
	finished     map[int]bool   // footer read or hour ruled corrupt
	finishedSize map[int]int64  // size when finished, to spot late growth
}

func newTailer(dir string, batchLen int, poll time.Duration, shed bool, skip map[int]bool, out chan<- event, onShed func(int, int)) *tailer {
	if onShed == nil {
		onShed = func(int, int) {}
	}
	return &tailer{
		dir:          dir,
		batchLen:     batchLen,
		poll:         poll,
		shed:         shed,
		out:          out,
		onShed:       onShed,
		skip:         skip,
		cursor:       make(map[int]uint64),
		lastSize:     make(map[int]int64),
		pending:      make(map[int]bool),
		finished:     make(map[int]bool),
		finishedSize: make(map[int]int64),
	}
}

// run sweeps until ctx is done or the directory listing fails (a fatal
// error the supervisor handles). Each sweep ends with an evSweep event.
func (t *tailer) run(ctx context.Context) error {
	for {
		progressed, err := t.sweep(ctx)
		if err != nil {
			return err
		}
		if !t.send(ctx, event{kind: evSweep, progressed: progressed}) {
			return ctx.Err()
		}
		if err := pipeline.Sleep(ctx, t.poll); err != nil {
			return err
		}
	}
}

func (t *tailer) sweep(ctx context.Context) (bool, error) {
	hours, err := flowtuple.DatasetHours(t.dir)
	if err != nil {
		return false, err
	}
	progressed := false
	for _, h := range hours {
		if err := ctx.Err(); err != nil {
			return progressed, err
		}
		if t.skip[h] {
			continue
		}
		p, err := t.pollHour(ctx, h)
		progressed = progressed || p
		if err != nil {
			return progressed, err
		}
	}
	// Records shed this sweep are still owed: the sweep has not truly
	// stalled, so drain mode must not conclude from it.
	for h, p := range t.pending {
		if p && !t.finished[h] {
			progressed = true
			break
		}
	}
	return progressed, nil
}

func (t *tailer) pollHour(ctx context.Context, h int) (bool, error) {
	path := flowtuple.HourPath(t.dir, h)
	info, err := os.Stat(path)
	if err != nil {
		return false, nil // raced away; the next sweep re-lists
	}
	size := info.Size()
	if t.finished[h] {
		if size == t.finishedSize[h] {
			return false, nil
		}
		delta := size - t.finishedSize[h]
		t.finishedSize[h] = size
		if !t.send(ctx, event{kind: evLateGrowth, hour: h, bytes: delta}) {
			return false, ctx.Err()
		}
		return true, nil
	}
	if size == t.lastSize[h] && !t.pending[h] {
		return false, nil
	}
	t.lastSize[h] = size
	t.pending[h] = false
	return t.readHour(ctx, h, path)
}

func (t *tailer) readHour(ctx context.Context, h int, path string) (bool, error) {
	r, err := flowtuple.Open(path)
	if err != nil {
		switch {
		case errors.Is(err, flowtuple.ErrTruncated):
			return false, nil // header still being written
		case errors.Is(err, flowtuple.ErrBadFormat):
			return true, t.corrupt(ctx, h, path, err)
		default:
			return false, nil // transient I/O; retry next sweep
		}
	}
	defer r.Close()
	batch := make([]flowtuple.Record, t.batchLen)
	// Skip the cursor: records delivered on earlier polls of this file.
	for skipped := uint64(0); skipped < t.cursor[h]; {
		want := t.cursor[h] - skipped
		if want > uint64(len(batch)) {
			want = uint64(len(batch))
		}
		n, err := r.NextBatch(batch[:want])
		if n == 0 {
			// The file no longer yields records it already yielded: the
			// readable prefix shrank or rotted under us. Growth-only is the
			// producer contract, so this is permanent damage.
			return true, t.corrupt(ctx, h, path, fmt.Errorf(
				"stream: hour %d replays %d of %d delivered records (%v): %w",
				h, skipped, t.cursor[h], err, flowtuple.ErrBadFormat))
		}
		skipped += uint64(n)
	}
	progressed := false
	for {
		if err := ctx.Err(); err != nil {
			return progressed, err
		}
		n, err := r.NextBatch(batch)
		if n > 0 {
			recs := make([]flowtuple.Record, n)
			copy(recs, batch[:n])
			sent, aborted := t.sendRecords(ctx, h, recs)
			if aborted {
				return progressed, ctx.Err()
			}
			if !sent {
				// Shed: leave the cursor where it is and mark the hour
				// pending so the next poll re-reads it even if the file has
				// not grown.
				t.pending[h] = true
				return progressed, nil
			}
			t.cursor[h] += uint64(n)
			progressed = true
			continue
		}
		switch {
		case err == io.EOF:
			t.finished[h] = true
			t.finishedSize[h] = t.lastSize[h]
			if fi, statErr := os.Stat(path); statErr == nil {
				t.finishedSize[h] = fi.Size()
			}
			if !t.send(ctx, event{kind: evComplete, hour: h}) {
				return progressed, ctx.Err()
			}
			return true, nil
		case errors.Is(err, flowtuple.ErrTruncated):
			return progressed, nil // still growing; keep the cursor
		default:
			return true, t.corrupt(ctx, h, path, err)
		}
	}
}

// corrupt retires the hour (no further reads) and reports it to the
// ingest loop, which quarantines it.
func (t *tailer) corrupt(ctx context.Context, h int, path string, err error) error {
	t.finished[h] = true
	t.finishedSize[h] = t.lastSize[h]
	if fi, statErr := os.Stat(path); statErr == nil {
		t.finishedSize[h] = fi.Size()
	}
	if !t.send(ctx, event{kind: evCorrupt, hour: h, err: err}) {
		return ctx.Err()
	}
	return nil
}

// sendRecords delivers a record batch: blocking by default, non-blocking
// (shed on a full channel) when shed mode is on.
func (t *tailer) sendRecords(ctx context.Context, h int, recs []flowtuple.Record) (sent, aborted bool) {
	ev := event{kind: evRecords, hour: h, recs: recs}
	if t.shed {
		select {
		case t.out <- ev:
			return true, false
		default:
			t.onShed(1, len(recs))
			return false, false
		}
	}
	select {
	case t.out <- ev:
		return true, false
	case <-ctx.Done():
		return false, true
	}
}

// send delivers a control event; these always block — they are rare and
// losing one would wedge the state machine.
func (t *tailer) send(ctx context.Context, ev event) bool {
	select {
	case t.out <- ev:
		return true
	case <-ctx.Done():
		return false
	}
}
