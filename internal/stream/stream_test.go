package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"maps"
	"os"
	"path/filepath"
	"testing"
	"time"

	"iotscope/internal/core"
	"iotscope/internal/correlate"
	"iotscope/internal/faultfs"
	"iotscope/internal/flowtuple"
	"iotscope/internal/pipeline"
	"iotscope/internal/resultstore"
)

// genDataset generates a synthetic dataset and returns its directory, the
// opened dataset, and a lenient analysis config — the same construction
// the iotwatch CLI uses.
func genDataset(t *testing.T, seed uint64, hours int) (string, *core.Dataset, core.Config) {
	t.Helper()
	dir := t.TempDir()
	gcfg := core.DefaultConfig(0.002, seed)
	gcfg.Hours = hours
	if _, err := core.Generate(gcfg, dir); err != nil {
		t.Fatal(err)
	}
	ds, err := core.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(ds.Scenario.Scale, ds.Scenario.Seed)
	cfg.Lenient = true
	return dir, ds, cfg
}

// checkpointOpener is the production resume discipline: restore from the
// checkpoint when one exists, cold-start otherwise.
func checkpointOpener(ds *core.Dataset, cfg core.Config, ckpt string) Opener {
	return func() (*correlate.Incremental, error) {
		if ckpt != "" {
			cp, err := resultstore.ReadCheckpoint(ckpt)
			if err == nil {
				return ds.RestoreIncremental(cfg, cp)
			}
			if !errors.Is(err, fs.ErrNotExist) {
				return nil, err
			}
		}
		return ds.NewIncremental(cfg)
	}
}

// batchCheckpoint runs the classic hour-at-a-time batch ingest over the
// given hours and returns the resulting checkpoint bytes — the oracle the
// streamed checkpoint must match byte for byte.
func batchCheckpoint(t *testing.T, ds *core.Dataset, cfg core.Config, dir string, hours ...int) []byte {
	t.Helper()
	inc, err := ds.NewIncremental(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hours {
		if _, err := inc.Ingest(context.Background(), dir, h); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "oracle.irs")
	if err := resultstore.WriteCheckpoint(path, inc.Export()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func countRecords(t *testing.T, path string) int {
	t.Helper()
	rd, err := flowtuple.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	buf := make([]flowtuple.Record, flowtuple.BatchSize)
	total := 0
	for {
		n, err := rd.NextBatch(buf)
		total += n
		if err == io.EOF {
			return total
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDrainMatchesBatch: streaming a complete dataset in drain mode must
// converge to a checkpoint byte-identical to the batch pipeline's, with
// exactly one new-device alert per discovered device.
func TestDrainMatchesBatch(t *testing.T) {
	dir, ds, cfg := genDataset(t, 21, 6)
	ckpt := filepath.Join(t.TempDir(), "checkpoint.irs")
	log, err := OpenAlertLog(filepath.Join(t.TempDir(), "alerts.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Dir: dir, CheckpointPath: ckpt, Poll: 2 * time.Millisecond,
		Drain: true, Campaigns: true,
	}, checkpointOpener(ds, cfg, ckpt), NewHub(log))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.WindowsSealed != 6 || st.WindowsPartial != 0 || st.RecordsIngested == 0 {
		t.Fatalf("implausible stream stats: %+v", st)
	}
	got, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if want := batchCheckpoint(t, ds, cfg, dir, 0, 1, 2, 3, 4, 5); !bytes.Equal(got, want) {
		t.Fatal("streamed checkpoint diverged from batch ingest")
	}
	// Exactly one new-device alert per device the batch result knows.
	cp, err := resultstore.ReadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := ds.RestoreIncremental(cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	devAlerts := 0
	for _, a := range log.Since(0) {
		if a.Kind == KindNewDevice {
			devAlerts++
		}
	}
	if want := len(inc.Result().Devices); devAlerts != want {
		t.Fatalf("%d new-device alerts for %d devices", devAlerts, want)
	}
	// Suppressions may legitimately occur (a campaign re-detected in a
	// later window), but everything emitted must be in the journal.
	if st.AlertsEmitted != uint64(log.Len()) {
		t.Fatalf("alert accounting: %+v vs log %d", st, log.Len())
	}
}

// TestChaosKillRestartExactlyOnce is the headline chaos proof: the ingest
// loop is crashed twice at the nastiest points of the seal sequence —
// once after alerts became durable but before the checkpoint, once after
// the in-memory seal but before alerts — and the supervised, resumed run
// must still converge to the byte-identical checkpoint of an uninterrupted
// run with every alert key emitted exactly once.
func TestChaosKillRestartExactlyOnce(t *testing.T) {
	dir, ds, cfg := genDataset(t, 22, 6)

	run := func(failpoint func(string, int) error) (Stats, *AlertLog, []byte, string) {
		t.Helper()
		stateDir := t.TempDir()
		ckpt := filepath.Join(stateDir, "checkpoint.irs")
		alog := filepath.Join(stateDir, "alerts.jsonl")
		log, err := OpenAlertLog(alog)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(Config{
			Dir: dir, CheckpointPath: ckpt, Poll: time.Millisecond, Drain: true,
			Supervisor: pipeline.RetryPolicy{
				MaxRetries:  8,
				BaseBackoff: time.Millisecond,
				Retryable:   func(error) bool { return true },
			},
		}, checkpointOpener(ds, cfg, ckpt), NewHub(log))
		if err != nil {
			t.Fatal(err)
		}
		c.failpoint = failpoint
		if err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		return c.Stats(), log, data, alog
	}

	_, wantLog, wantCkpt, _ := run(nil)

	killed := map[string]bool{}
	st, gotLog, gotCkpt, alogPath := run(func(point string, hour int) error {
		k := fmt.Sprintf("%s/%d", point, hour)
		if (k == "alerted/0" || k == "sealed/3") && !killed[k] {
			killed[k] = true
			return fmt.Errorf("injected crash at %s", k)
		}
		return nil
	})
	if st.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", st.Restarts)
	}
	if st.AlertsSuppressed == 0 {
		t.Fatal("resume re-derived no alerts — the dedup path went unexercised")
	}
	if !bytes.Equal(gotCkpt, wantCkpt) {
		t.Fatal("chaos-run checkpoint diverged from the uninterrupted run")
	}
	keysOf := func(l *AlertLog) map[string]int {
		m := map[string]int{}
		for _, a := range l.Since(0) {
			m[a.Key]++
		}
		return m
	}
	got, want := keysOf(gotLog), keysOf(wantLog)
	for k, n := range got {
		if n != 1 {
			t.Fatalf("alert %q emitted %d times", k, n)
		}
	}
	if !maps.Equal(got, want) {
		t.Fatalf("alert key sets diverged: %d chaos vs %d clean", len(got), len(want))
	}
	// The durable journal replays to the same exactly-once state.
	replayed, err := OpenAlertLog(alogPath)
	if err != nil {
		t.Fatal(err)
	}
	defer replayed.Close()
	if !maps.Equal(keysOf(replayed), want) {
		t.Fatal("journal replay diverged from the live log")
	}
}

// TestLateArrivalQuarantinedNotDropped: an hour that first surfaces behind
// the watermark is quarantined (persisted in the checkpoint) and every one
// of its records is accounted for — buffered or counted as dropped, never
// silently discarded.
func TestLateArrivalQuarantinedNotDropped(t *testing.T) {
	dir, ds, cfg := genDataset(t, 23, 5)
	latePath := flowtuple.HourPath(dir, 1)
	held, err := os.ReadFile(latePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(latePath); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "checkpoint.irs")
	c, err := New(Config{
		Dir: dir, CheckpointPath: ckpt, Poll: time.Millisecond, LateBuffer: 8,
	}, checkpointOpener(ds, cfg, ckpt), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()
	waitFor(t, "present hours to seal", func() bool { return c.Stats().WindowsSealed == 4 })

	// Hour 1 lands only now — behind the watermark (maxHour 4, lateness 1).
	if err := os.WriteFile(latePath, held, 0o644); err != nil {
		t.Fatal(err)
	}
	n := countRecords(t, latePath)
	waitFor(t, "late records to be counted", func() bool {
		s := c.Stats()
		return s.LateHours == 1 && s.LateRecords == uint64(n)
	})
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	s := c.Stats()
	if int(s.LateDropped)+s.LateBuffered != n {
		t.Fatalf("late records leak: dropped %d + buffered %d != %d", s.LateDropped, s.LateBuffered, n)
	}
	if s.LateDropped == 0 || s.LateBuffered != 8 {
		t.Fatalf("late buffer bound not exercised: %+v (hour has %d records)", s, n)
	}
	for _, lr := range c.Late() {
		if lr.Hour != 1 {
			t.Fatalf("late buffer holds hour %d", lr.Hour)
		}
	}
	cp, err := resultstore.ReadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := ds.RestoreIncremental(cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !inc.Quarantined(1) {
		t.Fatal("late hour not quarantined in the checkpoint")
	}
	for _, h := range []int{0, 2, 3, 4} {
		if !inc.Ingested(h) {
			t.Fatalf("hour %d missing from the checkpoint", h)
		}
	}
}

// TestSlowGrowTailing drives the faultfs.Grower fault mode: an hour file
// revealed a few hundred bytes at a time must be ingested incrementally —
// each published prefix read exactly once via the cursor — and still
// converge to the batch-identical checkpoint once the footer lands.
func TestSlowGrowTailing(t *testing.T) {
	dir, ds, cfg := genDataset(t, 24, 2)
	grownPath := flowtuple.HourPath(dir, 1)
	full, err := os.ReadFile(grownPath)
	if err != nil {
		t.Fatal(err)
	}
	g, err := faultfs.NewGrower(grownPath, full)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "checkpoint.irs")
	c, err := New(Config{
		Dir: dir, CheckpointPath: ckpt, Poll: time.Millisecond, BatchLen: 32,
	}, checkpointOpener(ds, cfg, ckpt), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()
	waitFor(t, "the complete hour to seal", func() bool { return c.Stats().WindowsSealed == 1 })

	for !g.Done() {
		if _, err := g.Grow(512); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitFor(t, "the grown hour to seal", func() bool { return c.Stats().WindowsSealed == 2 })
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	total := countRecords(t, flowtuple.HourPath(dir, 0)) + countRecords(t, grownPath)
	if got := c.Stats().RecordsIngested; got != uint64(total) {
		t.Fatalf("ingested %d records, dataset has %d", got, total)
	}
	got, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if want := batchCheckpoint(t, ds, cfg, dir, 0, 1); !bytes.Equal(got, want) {
		t.Fatal("slow-grown checkpoint diverged from batch ingest")
	}
}

// TestCorruptHourQuarantined: permanent structural damage mid-file
// quarantines just that hour; the rest of the dataset streams through and
// the checkpoint matches a lenient batch run over the same damage.
func TestCorruptHourQuarantined(t *testing.T) {
	dir, ds, cfg := genDataset(t, 25, 4)
	// A flipped gzip magic byte is deterministically permanent damage.
	if err := faultfs.BitFlip(flowtuple.HourPath(dir, 2), 1, 0x08); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "checkpoint.irs")
	c, err := New(Config{
		Dir: dir, CheckpointPath: ckpt, Poll: time.Millisecond, Drain: true,
	}, checkpointOpener(ds, cfg, ckpt), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.HoursQuarantined != 1 {
		t.Fatalf("quarantine stats: %+v", st)
	}
	cp, err := resultstore.ReadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := ds.RestoreIncremental(cfg, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !inc.Quarantined(2) {
		t.Fatal("damaged hour not quarantined")
	}
	for _, h := range []int{0, 1, 3} {
		if !inc.Ingested(h) {
			t.Fatalf("healthy hour %d not ingested", h)
		}
	}
}

// TestShedKeepsCursorAndRecovers pins the backpressure contract at the
// tailer level: with shedding on and a full channel, batches are dropped
// and counted, the cursor does not advance past them, and subsequent
// sweeps re-offer the same records so nothing is lost or duplicated.
func TestShedKeepsCursorAndRecovers(t *testing.T) {
	dir, _, _ := genDataset(t, 26, 1)
	total := countRecords(t, flowtuple.HourPath(dir, 0))
	if total <= 16 {
		t.Fatalf("fixture too small to shed: %d records", total)
	}
	out := make(chan event, 1)
	var shedBatches, shedRecords int
	tl := newTailer(dir, 8, 0, true, map[int]bool{}, out,
		func(b, r int) { shedBatches += b; shedRecords += r })
	ctx := context.Background()

	// Deterministic phase: one sweep against a capacity-1 channel delivers
	// exactly one batch, sheds at least one, and parks the cursor.
	if _, err := tl.sweep(ctx); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("%d events queued, want 1", len(out))
	}
	ev := <-out
	if ev.kind != evRecords || len(ev.recs) == 0 || len(ev.recs) > 8 {
		t.Fatalf("first event: kind %d, %d records", ev.kind, len(ev.recs))
	}
	first := len(ev.recs)
	if tl.cursor[0] != uint64(first) || !tl.pending[0] {
		t.Fatalf("cursor %d pending %v after delivering %d", tl.cursor[0], tl.pending[0], first)
	}
	if shedBatches == 0 || shedRecords == 0 {
		t.Fatal("full channel shed nothing")
	}

	// Recovery phase: with a live consumer the re-offered records flow
	// through; the total delivered must be exact — shed loses no data.
	counted := make(chan int)
	go func() {
		n := 0
		for ev := range out {
			switch ev.kind {
			case evRecords:
				n += len(ev.recs)
			case evComplete:
				counted <- n
				return
			}
		}
	}()
	for !tl.finished[0] {
		if _, err := tl.sweep(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if rest := <-counted; first+rest != total {
		t.Fatalf("delivered %d of %d records across shedding", first+rest, total)
	}
}

// TestLateGrowthCounted: bytes appended after a completed footer are
// reported and counted, never ingested.
func TestLateGrowthCounted(t *testing.T) {
	dir, ds, cfg := genDataset(t, 27, 2)
	ckpt := filepath.Join(t.TempDir(), "checkpoint.irs")
	c, err := New(Config{
		Dir: dir, CheckpointPath: ckpt, Poll: time.Millisecond,
	}, checkpointOpener(ds, cfg, ckpt), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()
	waitFor(t, "both hours to seal", func() bool { return c.Stats().WindowsSealed == 2 })
	// The oracle must predate the damage: batch ingest of a junk-trailed
	// file would (rightly) reject it.
	want := batchCheckpoint(t, ds, cfg, dir, 0, 1)
	if err := faultfs.AppendTail(flowtuple.HourPath(dir, 0), []byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "late growth to be counted", func() bool { return c.Stats().LateBytes == 3 })
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("late growth leaked into the checkpoint")
	}
}
