package stream

import (
	"context"
	"os"
	"testing"
	"time"

	"iotscope/internal/correlate"
	"iotscope/internal/flowtuple"
)

// TestMeasureAlertLatency times the path from "hour file lands complete
// on disk" to "alert delivered to a subscriber" — the number quoted in
// docs/STREAMING.md. It is a measurement helper, not an assertion, so it
// only runs when asked:
//
//	MEASURE=1 go test -run TestMeasureAlertLatency -v ./internal/stream
func TestMeasureAlertLatency(t *testing.T) {
	if os.Getenv("MEASURE") == "" {
		t.Skip("measurement helper; set MEASURE=1")
	}
	for _, poll := range []time.Duration{200 * time.Millisecond, 50 * time.Millisecond} {
		dir, ds, cfg := genDataset(t, 31, 3)
		path := flowtuple.HourPath(dir, 1)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		hub := NewHub(nil)
		col, err := New(Config{Dir: dir, Poll: poll}, func() (*correlate.Incremental, error) {
			return ds.NewIncremental(cfg)
		}, hub)
		if err != nil {
			t.Fatal(err)
		}
		ch, unsub := hub.Subscribe(4096)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- col.Run(ctx) }()
		waitFor(t, "present hours sealed", func() bool {
			return col.Stats().WindowsSealed >= 2
		})
	drained:
		for {
			select {
			case <-ch:
			default:
				break drained
			}
		}
		start := time.Now()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		deadline := time.After(15 * time.Second)
	await:
		for {
			select {
			case a := <-ch:
				if a.Hour == 1 {
					t.Logf("poll=%v file-complete-to-alert latency=%v", poll, time.Since(start))
					break await
				}
			case <-deadline:
				t.Fatal("no hour-1 alert")
			}
		}
		cancel()
		<-done
		unsub()
	}
}
