package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"
)

// Alert kinds emitted by the streaming collector.
const (
	// KindNewDevice fires the first time a compromised device is ever
	// observed — the paper's near-real-time notification feed.
	KindNewDevice = "new-device"
	// KindDoSSpike fires when a sealed window's backscatter exceeds the
	// alarm multiple of the running median (a DoS victim inside the
	// telescope's view).
	KindDoSSpike = "dos-spike"
	// KindNewCampaign fires when a coordinated-scan campaign fingerprint
	// is seen for the first time.
	KindNewCampaign = "new-campaign"
)

// Alert is one low-latency detection event. ID is assigned by the alert
// log, monotonically from 1, and doubles as the SSE event id so clients
// resume exactly where they dropped. Key is the dedup identity: the log
// emits each key at most once, ever — the streaming analog of outqueue's
// per-key suppression discipline, with an infinite window because every
// alert kind is a first-occurrence event.
type Alert struct {
	ID      uint64   `json:"id"`
	Kind    string   `json:"kind"`
	Key     string   `json:"key"`
	Hour    int      `json:"hour"`
	Device  int      `json:"device,omitempty"`
	Packets uint64   `json:"packets,omitempty"`
	Ratio   float64  `json:"ratio,omitempty"`
	Devices []int    `json:"devices,omitempty"`
	Ports   []uint16 `json:"ports,omitempty"`
}

// AlertLog is the durable, deduplicating alert journal: a JSONL
// write-ahead log fsynced per append. Replay on open rebuilds the key set
// and the backlog; a partial trailing line (crash mid-append) is
// truncated away, which keeps the exactly-once contract — an alert whose
// append never became durable is re-derived and re-appended when the
// resumed collector re-seals its window, and a key that did become
// durable suppresses the re-derived copy. With an empty path the log is
// memory-only (no durability, same dedup).
type AlertLog struct {
	mu         sync.Mutex
	f          *os.File
	keys       map[string]struct{}
	alerts     []Alert
	nextID     uint64
	suppressed uint64
}

// OpenAlertLog opens (or creates) the journal at path, replaying its
// contents. path "" yields a memory-only log.
func OpenAlertLog(path string) (*AlertLog, error) {
	l := &AlertLog{keys: make(map[string]struct{}), nextID: 1}
	if path == "" {
		return l, nil
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	// A crash mid-append leaves a partial last line; everything before
	// the final newline is intact (appends are single writes + fsync).
	keep := len(data)
	if i := bytes.LastIndexByte(data, '\n'); i < 0 {
		keep = 0
	} else {
		keep = i + 1
	}
	for _, line := range bytes.Split(data[:keep], []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var a Alert
		if err := json.Unmarshal(line, &a); err != nil {
			return nil, fmt.Errorf("stream: alert log %s corrupt: %v", path, err)
		}
		if _, dup := l.keys[a.Key]; dup {
			continue
		}
		l.keys[a.Key] = struct{}{}
		l.alerts = append(l.alerts, a)
		if a.ID >= l.nextID {
			l.nextID = a.ID + 1
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if keep < len(data) {
		if err := f.Truncate(int64(keep)); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(keep), 0); err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	return l, nil
}

// Append journals the alert unless its key was already emitted. The
// returned alert carries the assigned ID; emitted is false for a
// suppressed duplicate. The append is durable (fsync) before it returns —
// publication to live subscribers must happen only after.
func (l *AlertLog) Append(a Alert) (Alert, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.keys[a.Key]; dup {
		l.suppressed++
		return a, false, nil
	}
	a.ID = l.nextID
	if l.f != nil {
		line, err := json.Marshal(a)
		if err != nil {
			return a, false, err
		}
		if _, err := l.f.Write(append(line, '\n')); err != nil {
			return a, false, err
		}
		if err := l.f.Sync(); err != nil {
			return a, false, err
		}
	}
	l.nextID++
	l.keys[a.Key] = struct{}{}
	l.alerts = append(l.alerts, a)
	return a, true, nil
}

// Since returns every alert with ID > id, in emission order.
func (l *AlertLog) Since(id uint64) []Alert {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := len(l.alerts)
	for i > 0 && l.alerts[i-1].ID > id {
		i--
	}
	return append([]Alert(nil), l.alerts[i:]...)
}

// Len reports how many alerts have been emitted.
func (l *AlertLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.alerts)
}

// Suppressed reports how many appends were deduplicated.
func (l *AlertLog) Suppressed() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.suppressed
}

// Close closes the backing file, if any.
func (l *AlertLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Hub fans alerts out to live subscribers (SSE streams, long-pollers) on
// top of the durable log. Emission order is the log's order; a subscriber
// that falls behind its buffer is disconnected and reconnects with its
// last seen ID, replaying the gap from the log — slow clients cost a
// reconnect, never collector backpressure.
type Hub struct {
	log  *AlertLog
	mu   sync.Mutex
	subs map[chan Alert]struct{}
}

// NewHub wraps the log (nil for a private memory-only log).
func NewHub(log *AlertLog) *Hub {
	if log == nil {
		log, _ = OpenAlertLog("")
	}
	return &Hub{log: log, subs: make(map[chan Alert]struct{})}
}

// Log returns the underlying alert log.
func (h *Hub) Log() *AlertLog { return h.log }

// Emit journals the alert (dedup + durable) and, if it was emitted,
// broadcasts it to live subscribers.
func (h *Hub) Emit(a Alert) (Alert, bool, error) {
	a, emitted, err := h.log.Append(a)
	if err != nil || !emitted {
		return a, emitted, err
	}
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- a:
		default:
			// Buffer full: cut the subscriber loose. Its handler sees the
			// closed channel and ends the response; the client reconnects
			// with Last-Event-ID and replays the gap from the log.
			delete(h.subs, ch)
			close(ch)
		}
	}
	h.mu.Unlock()
	return a, true, nil
}

// Since returns every alert after id.
func (h *Hub) Since(id uint64) []Alert { return h.log.Since(id) }

// Subscribe registers a live listener with the given channel buffer and
// returns the channel plus a cancel function. The channel is closed on
// cancel or on overflow.
func (h *Hub) Subscribe(buf int) (<-chan Alert, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Alert, buf)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	cancel := func() {
		h.mu.Lock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
		h.mu.Unlock()
	}
	return ch, cancel
}

// Subscribers reports the live subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// sinceParam resolves the client's resume position: the since query
// parameter, or for SSE reconnects the standard Last-Event-ID header.
func sinceParam(r *http.Request) uint64 {
	if v := r.URL.Query().Get("since"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			return n
		}
	}
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			return n
		}
	}
	return 0
}

// maxLongPoll caps how long ServeList parks a long-poll request.
const maxLongPoll = 60 * time.Second

// ServeList answers GET with the alert backlog after ?since=N. With
// ?wait=DURATION and an empty backlog it long-polls: the response is held
// until an alert arrives, the wait expires, or the client goes away.
func (h *Hub) ServeList(w http.ResponseWriter, r *http.Request) {
	since := sinceParam(r)
	var wait time.Duration
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			http.Error(w, `{"error":"bad wait duration"}`, http.StatusBadRequest)
			return
		}
		wait = min(d, maxLongPoll)
	}
	alerts := h.Since(since)
	if len(alerts) == 0 && wait > 0 {
		ch, cancel := h.Subscribe(1)
		defer cancel()
		// Re-check after subscribing: an alert emitted between the first
		// Since and Subscribe would otherwise park us its whole wait.
		if alerts = h.Since(since); len(alerts) == 0 {
			t := time.NewTimer(wait)
			defer t.Stop()
			select {
			case <-r.Context().Done():
			case <-t.C:
			case <-ch:
			}
			alerts = h.Since(since)
		}
	}
	latest := since
	if n := len(alerts); n > 0 {
		latest = alerts[n-1].ID
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"alerts": alerts, "latest": latest}) //nolint:errcheck // client went away
}

// ServeStream answers GET with a Server-Sent Events stream: the backlog
// after the resume position first, then live alerts as they are emitted.
// Event IDs are alert IDs, so a dropped client reconnects with
// Last-Event-ID and misses nothing.
func (h *Hub) ServeStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, `{"error":"streaming unsupported"}`, http.StatusInternalServerError)
		return
	}
	since := sinceParam(r)
	ch, cancel := h.Subscribe(64)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for _, a := range h.Since(since) {
		writeSSE(w, a)
		since = a.ID
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case a, open := <-ch:
			if !open {
				// Overflowed: end the stream; the client reconnects and
				// replays from its Last-Event-ID.
				return
			}
			if a.ID <= since {
				continue // already replayed from the backlog
			}
			writeSSE(w, a)
			fl.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, a Alert) {
	data, err := json.Marshal(a)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", a.ID, a.Kind, data)
}
