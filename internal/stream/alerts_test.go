package stream

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestAlertLogReplayAndDedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.jsonl")
	log, err := OpenAlertLog(path)
	if err != nil {
		t.Fatal(err)
	}
	a1, ok, err := log.Append(Alert{Kind: KindNewDevice, Key: "device/1", Hour: 0, Device: 1})
	if err != nil || !ok || a1.ID != 1 {
		t.Fatalf("first append: %+v, %v, %v", a1, ok, err)
	}
	if _, ok, err := log.Append(Alert{Kind: KindNewDevice, Key: "device/2", Hour: 1, Device: 2}); err != nil || !ok {
		t.Fatal(err)
	}
	if _, ok, _ := log.Append(Alert{Kind: KindNewDevice, Key: "device/1", Hour: 3, Device: 1}); ok {
		t.Fatal("duplicate key emitted")
	}
	if log.Suppressed() != 1 {
		t.Fatalf("suppressed = %d", log.Suppressed())
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-append leaves a partial trailing line; replay truncates
	// it and the journal stays usable.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":3,"kind":"new-de`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	log, err = OpenAlertLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if log.Len() != 2 {
		t.Fatalf("replayed %d alerts, want 2", log.Len())
	}
	a3, ok, err := log.Append(Alert{Kind: KindDoSSpike, Key: "dos/h4", Hour: 4, Packets: 99})
	if err != nil || !ok || a3.ID != 3 {
		t.Fatalf("post-replay append: %+v, %v, %v", a3, ok, err)
	}
	since := log.Since(1)
	if len(since) != 2 || since[0].Key != "device/2" || since[1].Key != "dos/h4" {
		t.Fatalf("Since(1) = %+v", since)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 3 {
		t.Fatalf("journal has %d complete lines, want 3", lines)
	}
}

func TestHubOverflowClosesSubscriber(t *testing.T) {
	hub := NewHub(nil)
	ch, cancel := hub.Subscribe(1)
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, _, err := hub.Emit(Alert{Kind: KindNewDevice, Key: "device/" + string(rune('a'+i)), Hour: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Buffer 1: the first alert is buffered, the second overflows and the
	// channel closes after it.
	if a, open := <-ch; !open || a.ID != 1 {
		t.Fatalf("first receive: %+v, open %v", a, open)
	}
	if _, open := <-ch; open {
		t.Fatal("overflowed subscription still open")
	}
	if hub.Subscribers() != 0 {
		t.Fatalf("%d subscribers after overflow", hub.Subscribers())
	}
	// The dropped client recovers the gap from the log.
	if missed := hub.Since(1); len(missed) != 2 {
		t.Fatalf("Since(1) = %d alerts, want 2", len(missed))
	}
}

func TestServeListLongPoll(t *testing.T) {
	hub := NewHub(nil)
	srv := httptest.NewServer(http.HandlerFunc(hub.ServeList))
	defer srv.Close()
	if _, _, err := hub.Emit(Alert{Kind: KindNewDevice, Key: "device/7", Hour: 0, Device: 7}); err != nil {
		t.Fatal(err)
	}

	get := func(url string) (alerts []Alert, latest uint64) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Alerts []Alert `json:"alerts"`
			Latest uint64  `json:"latest"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Alerts, body.Latest
	}

	alerts, latest := get(srv.URL + "?since=0")
	if len(alerts) != 1 || alerts[0].Device != 7 || latest != 1 {
		t.Fatalf("backlog: %+v latest %d", alerts, latest)
	}

	// Long-poll: a request past the backlog parks until the next emit.
	type polled struct {
		alerts []Alert
		latest uint64
	}
	got := make(chan polled, 1)
	go func() {
		a, l := get(srv.URL + "?since=1&wait=10s")
		got <- polled{a, l}
	}()
	time.Sleep(50 * time.Millisecond) // let the poller park
	if _, _, err := hub.Emit(Alert{Kind: KindDoSSpike, Key: "dos/h2", Hour: 2, Packets: 10}); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if len(p.alerts) != 1 || p.alerts[0].Kind != KindDoSSpike || p.latest != 2 {
			t.Fatalf("long-poll result: %+v", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke")
	}

	// A bad wait duration is a 400, not a hang.
	resp, err := http.Get(srv.URL + "?wait=forever")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad wait: status %d", resp.StatusCode)
	}
}

func TestServeStreamSSEResume(t *testing.T) {
	hub := NewHub(nil)
	srv := httptest.NewServer(http.HandlerFunc(hub.ServeStream))
	defer srv.Close()
	for i := 1; i <= 2; i++ {
		if _, _, err := hub.Emit(Alert{Kind: KindNewDevice, Key: "device/" + string(rune('0'+i)), Hour: i, Device: i}); err != nil {
			t.Fatal(err)
		}
	}

	// Reconnect with Last-Event-ID 1: event 2 replays from the backlog,
	// event 3 arrives live.
	req, err := http.NewRequest("GET", srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	events := make(chan Alert, 4)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var a Alert
				if json.Unmarshal([]byte(data), &a) == nil {
					events <- a
				}
			}
		}
	}()

	expect := func(id uint64) Alert {
		t.Helper()
		select {
		case a := <-events:
			if a.ID != id {
				t.Fatalf("event id %d, want %d", a.ID, id)
			}
			return a
		case <-time.After(5 * time.Second):
			t.Fatalf("event %d never arrived", id)
			return Alert{}
		}
	}
	expect(2)
	if _, _, err := hub.Emit(Alert{Kind: KindNewCampaign, Key: "campaign/p23", Hour: 3, Ports: []uint16{23}}); err != nil {
		t.Fatal(err)
	}
	if a := expect(3); a.Kind != KindNewCampaign {
		t.Fatalf("live event: %+v", a)
	}
}
