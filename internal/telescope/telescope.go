// Package telescope models the network telescope (darknet) itself: a
// routable but unused /8 address space whose inbound packets are aggregated
// into hourly flowtuple files, mirroring the UCSD telescope pipeline the
// paper consumes (Sec. III-A2).
package telescope

import (
	"fmt"

	"iotscope/internal/flowtuple"
	"iotscope/internal/netx"
	"iotscope/internal/rng"
)

// Telescope is the monitored dark address space.
type Telescope struct {
	prefix netx.Prefix
}

// New returns a telescope over the given prefix (the paper's is a /8 with
// ~16.7 M addresses).
func New(prefix netx.Prefix) *Telescope {
	return &Telescope{prefix: prefix}
}

// Prefix returns the monitored space.
func (t *Telescope) Prefix() netx.Prefix { return t.prefix }

// Contains reports whether addr is a dark address.
func (t *Telescope) Contains(addr netx.Addr) bool { return t.prefix.Contains(addr) }

// RandomAddr draws a uniform dark address, the way a spoofing DoS attacker
// or a random scanner would hit the telescope.
func (t *Telescope) RandomAddr(r *rng.Source) netx.Addr {
	return t.prefix.Nth(r.Uint64n(t.prefix.NumAddrs()))
}

// NumAddrs returns the size of the dark space.
func (t *Telescope) NumAddrs() uint64 { return t.prefix.NumAddrs() }

// CollectorStats summarizes one capture run.
type CollectorStats struct {
	PacketsObserved uint64 // packets accepted into flowtuples
	RecordsWritten  uint64 // aggregated flowtuples persisted
	PacketsDropped  uint64 // packets destined outside the dark space
	HoursWritten    int
}

// Collector aggregates inbound packets into per-hour flowtuple files.
// Usage is hour-synchronous: BeginHour, any number of Observe calls, then
// EndHour, repeated; Close after the final hour.
type Collector struct {
	telescope *Telescope
	dir       string
	stats     CollectorStats

	hour   int
	open   bool
	agg    map[tupleKey]aggVal
	keys   []tupleKey // insertion order for deterministic output
	writer *flowtuple.Writer
}

type tupleKey struct {
	srcIP, dstIP     uint32
	srcPort, dstPort uint16
	proto, flags     uint8
}

type aggVal struct {
	packets uint64
	ttl     uint8
	ipLen   uint16
}

// NewCollector returns a collector writing hourly files into dir.
func NewCollector(t *Telescope, dir string) *Collector {
	return &Collector{telescope: t, dir: dir}
}

// BeginHour starts aggregation for the given hour index.
func (c *Collector) BeginHour(hour int) error {
	if c.open {
		return fmt.Errorf("telescope: hour %d still open", c.hour)
	}
	if hour < 0 {
		return fmt.Errorf("telescope: negative hour %d", hour)
	}
	c.hour = hour
	c.open = true
	c.agg = make(map[tupleKey]aggVal, 1<<12)
	c.keys = c.keys[:0]
	return nil
}

// Observe ingests one flow emission. Packets destined outside the dark
// space are dropped (and counted), exactly as a telescope never sees them.
func (c *Collector) Observe(rec flowtuple.Record) error {
	if !c.open {
		return fmt.Errorf("telescope: Observe outside an open hour")
	}
	if rec.Packets == 0 {
		return nil
	}
	if !c.telescope.Contains(netx.Addr(rec.DstIP)) {
		c.stats.PacketsDropped += uint64(rec.Packets)
		return nil
	}
	k := tupleKey{
		srcIP: rec.SrcIP, dstIP: rec.DstIP,
		srcPort: rec.SrcPort, dstPort: rec.DstPort,
		proto: rec.Protocol, flags: rec.TCPFlags,
	}
	v, exists := c.agg[k]
	if !exists {
		c.keys = append(c.keys, k)
		v = aggVal{ttl: rec.TTL, ipLen: rec.IPLen}
	}
	v.packets += uint64(rec.Packets)
	c.agg[k] = v
	c.stats.PacketsObserved += uint64(rec.Packets)
	return nil
}

// EndHour flushes the hour's aggregates to its flowtuple file.
func (c *Collector) EndHour() error {
	if !c.open {
		return fmt.Errorf("telescope: EndHour without BeginHour")
	}
	w, err := flowtuple.Create(flowtuple.HourPath(c.dir, c.hour), uint32(c.hour))
	if err != nil {
		return err
	}
	for _, k := range c.keys {
		v := c.agg[k]
		for v.packets > 0 {
			chunk := v.packets
			const maxChunk = 1<<32 - 1
			if chunk > maxChunk {
				chunk = maxChunk
			}
			rec := flowtuple.Record{
				SrcIP: k.srcIP, DstIP: k.dstIP,
				SrcPort: k.srcPort, DstPort: k.dstPort,
				Protocol: k.proto, TCPFlags: k.flags,
				TTL: v.ttl, IPLen: v.ipLen,
				Packets: uint32(chunk),
			}
			if err := w.Write(rec); err != nil {
				w.Close()
				return err
			}
			c.stats.RecordsWritten++
			v.packets -= chunk
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	c.stats.HoursWritten++
	c.open = false
	c.agg = nil
	return nil
}

// Stats returns cumulative collection statistics.
func (c *Collector) Stats() CollectorStats { return c.stats }
