package telescope

import (
	"io"
	"testing"

	"iotscope/internal/flowtuple"
	"iotscope/internal/netx"
	"iotscope/internal/rng"
)

func newTestTelescope() *Telescope {
	return New(netx.MustParsePrefix("44.0.0.0/8"))
}

func TestContains(t *testing.T) {
	tel := newTestTelescope()
	if !tel.Contains(netx.MustParseAddr("44.12.34.56")) {
		t.Error("dark address not contained")
	}
	if tel.Contains(netx.MustParseAddr("45.0.0.0")) {
		t.Error("lit address contained")
	}
	if tel.NumAddrs() != 1<<24 {
		t.Errorf("NumAddrs = %d", tel.NumAddrs())
	}
}

func TestRandomAddrInside(t *testing.T) {
	tel := newTestTelescope()
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		if a := tel.RandomAddr(r); !tel.Contains(a) {
			t.Fatalf("random dark address %v outside prefix", a)
		}
	}
}

func TestCollectorAggregates(t *testing.T) {
	tel := newTestTelescope()
	dir := t.TempDir()
	c := NewCollector(tel, dir)
	if err := c.BeginHour(0); err != nil {
		t.Fatal(err)
	}
	base := flowtuple.Record{
		SrcIP: 0x01020304, DstIP: uint32(netx.MustParseAddr("44.1.1.1")),
		SrcPort: 5555, DstPort: 23,
		Protocol: flowtuple.ProtoTCP, TCPFlags: flowtuple.FlagSYN,
		TTL: 64, IPLen: 40, Packets: 2,
	}
	// Same 5-tuple twice, one different tuple.
	if err := c.Observe(base); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(base); err != nil {
		t.Fatal(err)
	}
	other := base
	other.DstPort = 80
	other.Packets = 1
	if err := c.Observe(other); err != nil {
		t.Fatal(err)
	}
	if err := c.EndHour(); err != nil {
		t.Fatal(err)
	}

	var recs []flowtuple.Record
	if err := flowtuple.WalkHour(dir, 0, func(r flowtuple.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("wrote %d records, want 2", len(recs))
	}
	if recs[0].Packets != 4 || recs[0].DstPort != 23 {
		t.Fatalf("aggregated record %+v", recs[0])
	}
	if recs[1].Packets != 1 || recs[1].DstPort != 80 {
		t.Fatalf("second record %+v", recs[1])
	}

	st := c.Stats()
	if st.PacketsObserved != 5 || st.RecordsWritten != 2 || st.HoursWritten != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCollectorDropsLitTraffic(t *testing.T) {
	tel := newTestTelescope()
	c := NewCollector(tel, t.TempDir())
	if err := c.BeginHour(0); err != nil {
		t.Fatal(err)
	}
	lit := flowtuple.Record{
		SrcIP: 1, DstIP: uint32(netx.MustParseAddr("8.8.8.8")), Packets: 7,
		Protocol: flowtuple.ProtoUDP,
	}
	if err := c.Observe(lit); err != nil {
		t.Fatal(err)
	}
	if err := c.EndHour(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.PacketsDropped != 7 || st.PacketsObserved != 0 || st.RecordsWritten != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCollectorZeroPacketIgnored(t *testing.T) {
	tel := newTestTelescope()
	c := NewCollector(tel, t.TempDir())
	c.BeginHour(0)
	rec := flowtuple.Record{DstIP: uint32(netx.MustParseAddr("44.0.0.1")), Packets: 0}
	if err := c.Observe(rec); err != nil {
		t.Fatal(err)
	}
	if err := c.EndHour(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.RecordsWritten != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCollectorProtocol(t *testing.T) {
	tel := newTestTelescope()
	c := NewCollector(tel, t.TempDir())
	if err := c.Observe(flowtuple.Record{}); err == nil {
		t.Error("Observe outside hour accepted")
	}
	if err := c.EndHour(); err == nil {
		t.Error("EndHour without BeginHour accepted")
	}
	if err := c.BeginHour(-1); err == nil {
		t.Error("negative hour accepted")
	}
	if err := c.BeginHour(0); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginHour(1); err == nil {
		t.Error("nested BeginHour accepted")
	}
	if err := c.EndHour(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorMultipleHours(t *testing.T) {
	tel := newTestTelescope()
	dir := t.TempDir()
	c := NewCollector(tel, dir)
	r := rng.New(9)
	for h := 0; h < 3; h++ {
		if err := c.BeginHour(h); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			rec := flowtuple.Record{
				SrcIP:    r.Uint32(),
				DstIP:    uint32(tel.RandomAddr(r)),
				DstPort:  uint16(r.Intn(1024)),
				Protocol: flowtuple.ProtoTCP,
				TCPFlags: flowtuple.FlagSYN,
				Packets:  1,
			}
			if err := c.Observe(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.EndHour(); err != nil {
			t.Fatal(err)
		}
	}
	hours, err := flowtuple.DatasetHours(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hours) != 3 {
		t.Fatalf("hours %v", hours)
	}
	if st := c.Stats(); st.HoursWritten != 3 || st.PacketsObserved != 300 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCollectorDeterministicOrder(t *testing.T) {
	tel := newTestTelescope()
	read := func(seed uint64) []flowtuple.Record {
		dir := t.TempDir()
		c := NewCollector(tel, dir)
		c.BeginHour(0)
		r := rng.New(seed)
		for i := 0; i < 500; i++ {
			c.Observe(flowtuple.Record{
				SrcIP:    uint32(r.Intn(50)),
				DstIP:    uint32(netx.MustParseAddr("44.0.0.1")) + uint32(r.Intn(50)),
				Protocol: flowtuple.ProtoUDP,
				DstPort:  uint16(r.Intn(4)),
				Packets:  1,
			})
		}
		c.EndHour()
		var recs []flowtuple.Record
		flowtuple.WalkHour(dir, 0, func(rec flowtuple.Record) error {
			recs = append(recs, rec)
			return nil
		})
		return recs
	}
	a, b := read(42), read(42)
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// Conservation: packets in equal packets persisted.
func TestCollectorPacketConservation(t *testing.T) {
	tel := newTestTelescope()
	dir := t.TempDir()
	c := NewCollector(tel, dir)
	r := rng.New(77)
	var sent uint64
	c.BeginHour(0)
	for i := 0; i < 2000; i++ {
		p := uint32(1 + r.Intn(100))
		sent += uint64(p)
		c.Observe(flowtuple.Record{
			SrcIP:    uint32(r.Intn(100)),
			DstIP:    uint32(tel.RandomAddr(r)),
			DstPort:  uint16(r.Intn(10)),
			Protocol: flowtuple.ProtoUDP,
			Packets:  p,
		})
	}
	c.EndHour()
	var got uint64
	flowtuple.WalkHour(dir, 0, func(rec flowtuple.Record) error {
		got += uint64(rec.Packets)
		return nil
	})
	if got != sent {
		t.Fatalf("persisted %d packets, sent %d", got, sent)
	}
	if st := c.Stats(); st.PacketsObserved != sent {
		t.Fatalf("stats observed %d, sent %d", st.PacketsObserved, sent)
	}
}

func TestHourFileReadableViaReader(t *testing.T) {
	tel := newTestTelescope()
	dir := t.TempDir()
	c := NewCollector(tel, dir)
	c.BeginHour(5)
	c.Observe(flowtuple.Record{
		DstIP: uint32(netx.MustParseAddr("44.2.3.4")), Protocol: flowtuple.ProtoICMP,
		SrcPort: uint16(flowtuple.ICMPEchoRequest), Packets: 3,
	})
	c.EndHour()
	rd, err := flowtuple.Open(flowtuple.HourPath(dir, 5))
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if rd.Header().Hour != 5 {
		t.Fatalf("hour %d", rd.Header().Hour)
	}
	rec, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.ICMPType() != flowtuple.ICMPEchoRequest || rec.Packets != 3 {
		t.Fatalf("record %+v", rec)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}
