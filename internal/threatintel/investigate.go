package threatintel

import (
	"context"
	"sort"

	"iotscope/internal/classify"
	"iotscope/internal/correlate"
	"iotscope/internal/devicedb"
)

// InvestigateConfig selects the "explored" device set of Sec. V-A: all DoS
// victims plus the top-N loudest scanners/probers per realm.
type InvestigateConfig struct {
	// TopPerCategory is the per-realm cut of loudest devices by scanning +
	// UDP packets (the paper: 4,000 each).
	TopPerCategory int
}

// DefaultInvestigateConfig mirrors Sec. V-A at full scale.
func DefaultInvestigateConfig() InvestigateConfig {
	return InvestigateConfig{TopPerCategory: 4000}
}

// CategoryCount is one Table VI row.
type CategoryCount struct {
	Category Category
	Devices  int
	Pct      float64 // of flagged devices
}

// Finding is one flagged device.
type Finding struct {
	Device     int
	Categories []Category
	Packets    uint64
}

// Investigation is the Sec. V-A output: Table VI plus Fig. 11 inputs.
type Investigation struct {
	Explored       int
	Flagged        []Finding
	ByCategory     []CategoryCount
	ExploredTotals []float64 // per-device packet totals for Fig. 11
	FlaggedTotals  []float64
	// Realm split of malware-flagged devices (Sec. V-A: 91 CPS, 26
	// consumer).
	MalwareCPS      int
	MalwareConsumer int
}

// Investigate correlates the inferred devices against the repository.
// Cancellation is checked between explored devices; a cancelled run
// returns ctx.Err() and a partial Investigation the caller must discard.
func Investigate(ctx context.Context, cfg InvestigateConfig, res *correlate.Result,
	inv *devicedb.Inventory, repo *Repository) (Investigation, error) {

	explored := exploreSet(cfg, res, inv)
	out := Investigation{Explored: len(explored)}

	catCounts := make(map[Category]int)
	for _, id := range explored {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		ds := res.Devices[id]
		total := float64(ds.TotalPackets())
		out.ExploredTotals = append(out.ExploredTotals, total)

		cats := repo.CategoriesOf(inv.At(id).IP)
		if len(cats) == 0 {
			continue
		}
		out.Flagged = append(out.Flagged, Finding{
			Device: id, Categories: cats, Packets: ds.TotalPackets(),
		})
		out.FlaggedTotals = append(out.FlaggedTotals, total)
		for _, c := range cats {
			catCounts[c]++
			if c == Malware {
				if inv.At(id).Category == devicedb.CPS {
					out.MalwareCPS++
				} else {
					out.MalwareConsumer++
				}
			}
		}
	}
	for _, c := range Categories() {
		n := catCounts[c]
		pct := 0.0
		if len(out.Flagged) > 0 {
			pct = 100 * float64(n) / float64(len(out.Flagged))
		}
		out.ByCategory = append(out.ByCategory, CategoryCount{Category: c, Devices: n, Pct: pct})
	}
	sort.Slice(out.ByCategory, func(i, j int) bool {
		if out.ByCategory[i].Devices != out.ByCategory[j].Devices {
			return out.ByCategory[i].Devices > out.ByCategory[j].Devices
		}
		return out.ByCategory[i].Category < out.ByCategory[j].Category
	})
	sort.Float64s(out.ExploredTotals)
	sort.Float64s(out.FlaggedTotals)
	return out, nil
}

// exploreSet picks every backscatter victim plus the loudest
// scanning/probing devices per realm.
func exploreSet(cfg InvestigateConfig, res *correlate.Result, inv *devicedb.Inventory) []int {
	type loud struct {
		id   int
		pkts uint64
	}
	var consumer, cps []loud
	seen := make(map[int]bool)
	var out []int
	for id, ds := range res.Devices {
		if ds.Packets[classify.Backscatter.Index()] > 0 {
			out = append(out, id)
			seen[id] = true
		}
		noise := ds.Packets[classify.ScanTCP.Index()] +
			ds.Packets[classify.ScanICMP.Index()] +
			ds.Packets[classify.UDP.Index()]
		if noise == 0 {
			continue
		}
		entry := loud{id, noise}
		if inv.At(id).Category == devicedb.Consumer {
			consumer = append(consumer, entry)
		} else {
			cps = append(cps, entry)
		}
	}
	take := func(pool []loud) {
		sort.Slice(pool, func(i, j int) bool {
			if pool[i].pkts != pool[j].pkts {
				return pool[i].pkts > pool[j].pkts
			}
			return pool[i].id < pool[j].id
		})
		n := cfg.TopPerCategory
		if n > len(pool) {
			n = len(pool)
		}
		for _, l := range pool[:n] {
			if !seen[l.id] {
				out = append(out, l.id)
				seen[l.id] = true
			}
		}
	}
	take(consumer)
	take(cps)
	sort.Ints(out)
	return out
}
