package threatintel

import (
	"bytes"
	"context"
	"os"
	"strings"
	"sync"
	"testing"

	"iotscope/internal/correlate"
	"iotscope/internal/netx"
	"iotscope/internal/wgen"
)

func TestCategoryRoundTrip(t *testing.T) {
	for _, c := range Categories() {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Errorf("round trip %v: %v %v", c, got, err)
		}
		if c.Description() == "" {
			t.Errorf("%v has no description", c)
		}
	}
	if _, err := ParseCategory("nope"); err == nil {
		t.Error("bogus category parsed")
	}
}

func TestRepositoryIndex(t *testing.T) {
	repo := NewRepository()
	ip := netx.MustParseAddr("1.2.3.4")
	repo.Add(Event{IP: ip, Category: Scanning, Source: "feed", Day: 1})
	repo.Add(Event{IP: ip, Category: Scanning, Source: "feed2", Day: 2})
	repo.Add(Event{IP: ip, Category: Malware, Source: "feed", Day: 3})
	repo.Add(Event{IP: netx.MustParseAddr("5.6.7.8"), Category: Spam, Source: "feed", Day: 1})

	if repo.Len() != 4 || repo.NumIPs() != 2 {
		t.Fatalf("Len=%d NumIPs=%d", repo.Len(), repo.NumIPs())
	}
	evs := repo.Query(ip)
	if len(evs) != 3 {
		t.Fatalf("query returned %d events", len(evs))
	}
	cats := repo.CategoriesOf(ip)
	if len(cats) != 2 || cats[0] != Scanning || cats[1] != Malware {
		t.Fatalf("categories %v", cats)
	}
	if got := repo.Query(netx.MustParseAddr("9.9.9.9")); got != nil {
		t.Fatalf("phantom query %v", got)
	}
	if got := repo.CategoriesOf(netx.MustParseAddr("9.9.9.9")); got != nil {
		t.Fatalf("phantom categories %v", got)
	}
}

func TestRepositorySaveLoad(t *testing.T) {
	repo := NewRepository()
	repo.Add(Event{IP: netx.MustParseAddr("9.8.7.6"), Category: BruteForce, Source: "s", Day: 4, Detail: "ssh"})
	repo.Add(Event{IP: netx.MustParseAddr("1.1.1.1"), Category: Phishing, Source: "t", Day: 0})
	var buf bytes.Buffer
	if err := repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.NumIPs() != 2 {
		t.Fatalf("loaded Len=%d NumIPs=%d", back.Len(), back.NumIPs())
	}
	evs := back.Query(netx.MustParseAddr("9.8.7.6"))
	if len(evs) != 1 || evs[0].Category != BruteForce || evs[0].Detail != "ssh" {
		t.Fatalf("loaded events %+v", evs)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		`{"ip":"bad","category":"scanning","source":"s","day":0}`,
		`{"ip":"1.1.1.1","category":"weird","source":"s","day":0}`,
		`garbage`,
	} {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

// Shared world fixture.
var (
	worldOnce sync.Once
	worldErr  error
	worldGen  *wgen.Generator
	worldRes  *correlate.Result
)

func loadWorld(t *testing.T) (*wgen.Generator, *correlate.Result) {
	t.Helper()
	worldOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ti-world-*")
		if err != nil {
			worldErr = err
			return
		}
		defer os.RemoveAll(dir)
		sc := wgen.Default(0.01, 555)
		sc.Hours = 48
		worldGen, err = wgen.New(sc)
		if err != nil {
			worldErr = err
			return
		}
		if _, err := worldGen.Run(dir); err != nil {
			worldErr = err
			return
		}
		worldRes, worldErr = correlate.New(worldGen.Inventory(), correlate.Options{}).ProcessDataset(context.Background(), dir)
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return worldGen, worldRes
}

func noisePool(g *wgen.Generator, n int) []netx.Addr {
	pool := make([]netx.Addr, 0, n)
	for i := 0; len(pool) < n; i++ {
		a := netx.MustParseAddr("99.0.0.1") + netx.Addr(i*101)
		if _, isIoT := g.Inventory().LookupIP(a); !isIoT {
			pool = append(pool, a)
		}
	}
	return pool
}

func TestGenerateShape(t *testing.T) {
	g, _ := loadWorld(t)
	repo, err := Generate(DefaultGenConfig(), g.Truth(), g.Inventory(), noisePool(g, 100), 7)
	if err != nil {
		t.Fatal(err)
	}
	if repo.Len() == 0 {
		t.Fatal("empty repository")
	}

	flaggedDevices := 0
	scanningFlags := 0
	for _, id := range g.Truth().Compromised {
		cats := repo.CategoriesOf(g.Inventory().At(id).IP)
		if len(cats) == 0 {
			continue
		}
		flaggedDevices++
		for _, c := range cats {
			if c == Scanning {
				scanningFlags++
			}
		}
	}
	frac := float64(flaggedDevices) / float64(len(g.Truth().Compromised))
	if frac < 0.04 || frac > 0.16 {
		t.Errorf("flagged fraction %v want ~0.09", frac)
	}
	// Scanning dominates flags (Table VI: 96.3 %).
	if float64(scanningFlags)/float64(flaggedDevices) < 0.85 {
		t.Errorf("scanning flag share %v", float64(scanningFlags)/float64(flaggedDevices))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g, _ := loadWorld(t)
	np := noisePool(g, 50)
	a, err := Generate(DefaultGenConfig(), g.Truth(), g.Inventory(), np, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultGenConfig(), g.Truth(), g.Inventory(), np, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || a.NumIPs() != b.NumIPs() {
		t.Fatalf("not deterministic: %d/%d vs %d/%d", a.Len(), a.NumIPs(), b.Len(), b.NumIPs())
	}
}

func TestGenerateValidation(t *testing.T) {
	g, _ := loadWorld(t)
	np := noisePool(g, 10)
	bad := DefaultGenConfig()
	bad.FlagFraction = 0
	if _, err := Generate(bad, g.Truth(), g.Inventory(), np, 1); err == nil {
		t.Error("flag fraction 0 accepted")
	}
	bad = DefaultGenConfig()
	bad.EventsPerFlagMin = 0
	if _, err := Generate(bad, g.Truth(), g.Inventory(), np, 1); err == nil {
		t.Error("events-per-flag 0 accepted")
	}
	bad = DefaultGenConfig()
	bad.Days = 0
	if _, err := Generate(bad, g.Truth(), g.Inventory(), np, 1); err == nil {
		t.Error("0 days accepted")
	}
}

func TestInvestigate(t *testing.T) {
	g, res := loadWorld(t)
	repo, err := Generate(DefaultGenConfig(), g.Truth(), g.Inventory(), noisePool(g, 100), 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultInvestigateConfig()
	cfg.TopPerCategory = 60
	inv, err := Investigate(context.Background(), cfg, res, g.Inventory(), repo)
	if err != nil {
		t.Fatal(err)
	}

	if inv.Explored == 0 {
		t.Fatal("nothing explored")
	}
	if inv.Explored > 2*cfg.TopPerCategory+len(g.Truth().Victims) {
		t.Fatalf("explored %d beyond cut", inv.Explored)
	}
	if len(inv.Flagged) == 0 {
		t.Fatal("nothing flagged")
	}
	if len(inv.FlaggedTotals) != len(inv.Flagged) {
		t.Fatal("flagged totals mismatch")
	}
	// Table VI: scanning dominates (paper: 96.3 %); with a handful of
	// flagged devices at test scale, allow rank 2 but require a high share.
	scanningRank := -1
	for i, row := range inv.ByCategory {
		if row.Category == Scanning {
			scanningRank = i
			if row.Pct < 70 {
				t.Errorf("scanning pct %v want ~96", row.Pct)
			}
		}
	}
	if scanningRank < 0 || scanningRank > 1 {
		t.Errorf("scanning rank %d want top 2", scanningRank)
	}
	// Fig. 11: flagged devices skew louder than the explored population.
	median := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		return xs[len(xs)/2]
	}
	if median(inv.FlaggedTotals) < median(inv.ExploredTotals) {
		t.Errorf("flagged median %v below explored median %v",
			median(inv.FlaggedTotals), median(inv.ExploredTotals))
	}
	// Findings carry categories.
	for _, f := range inv.Flagged[:minInt(5, len(inv.Flagged))] {
		if len(f.Categories) == 0 {
			t.Fatalf("finding %d with no categories", f.Device)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
