// Package threatintel implements the cyber-threat-intelligence repository
// that substitutes for the paper's use of Cymon (Sec. V-A): an IP-indexed
// store of threat events across the paper's six categories, a seeded
// generator that plants flags over the synthetic world, and the Sec. V-A
// investigation that correlates inferred devices against the repository to
// produce Table VI and Fig. 11.
package threatintel

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"iotscope/internal/netx"
)

// Category is one of the paper's six amalgamated threat categories
// (Table VI). Categories are not mutually exclusive per IP.
type Category uint8

const (
	Scanning Category = iota + 1
	// Miscellaneous covers web/FTP attacks, DNSBL, malicious domains, VoIP.
	Miscellaneous
	BruteForce
	Spam
	Malware
	Phishing
)

// NumCategories is the category count for dense arrays.
const NumCategories = 6

// Categories lists all categories in Table VI order.
func Categories() []Category {
	return []Category{Scanning, Miscellaneous, BruteForce, Spam, Malware, Phishing}
}

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Scanning:
		return "scanning"
	case Miscellaneous:
		return "miscellaneous"
	case BruteForce:
		return "brute-force"
	case Spam:
		return "spam"
	case Malware:
		return "malware"
	case Phishing:
		return "phishing"
	default:
		return fmt.Sprintf("category-%d", uint8(c))
	}
}

// ParseCategory inverts Category.String.
func ParseCategory(s string) (Category, error) {
	for _, c := range Categories() {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("threatintel: unknown category %q", s)
}

// Description returns the Table VI row label.
func (c Category) Description() string {
	switch c {
	case Scanning:
		return "Scanning"
	case Miscellaneous:
		return "Miscellaneous (Web/FTP attacks, DNSBL, Malicious domains, VoIP)"
	case BruteForce:
		return "Brute force (SSH)"
	case Spam:
		return "Spam (Mail, IMAP)"
	case Malware:
		return "Malware (Virus, Worm, Bot/Botnet, Trojan)"
	case Phishing:
		return "Phishing"
	default:
		return c.String()
	}
}

// Event is one indexed threat observation.
type Event struct {
	IP       netx.Addr
	Category Category
	Source   string // reporting feed name
	Day      int    // observation day within the intel window
	Detail   string
}

// Repository is an IP-indexed threat-event store.
type Repository struct {
	events []Event
	byIP   map[netx.Addr][]int
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{byIP: make(map[netx.Addr][]int)}
}

// Add indexes one event.
func (r *Repository) Add(ev Event) {
	r.byIP[ev.IP] = append(r.byIP[ev.IP], len(r.events))
	r.events = append(r.events, ev)
}

// Len returns the number of indexed events.
func (r *Repository) Len() int { return len(r.events) }

// NumIPs returns the number of distinct flagged IPs.
func (r *Repository) NumIPs() int { return len(r.byIP) }

// Query returns all events recorded for ip.
func (r *Repository) Query(ip netx.Addr) []Event {
	idx := r.byIP[ip]
	if len(idx) == 0 {
		return nil
	}
	out := make([]Event, len(idx))
	for i, j := range idx {
		out[i] = r.events[j]
	}
	return out
}

// CategoriesOf returns the distinct categories flagged for ip, in Table VI
// order.
func (r *Repository) CategoriesOf(ip netx.Addr) []Category {
	var seen [NumCategories + 1]bool
	for _, j := range r.byIP[ip] {
		seen[r.events[j].Category] = true
	}
	var out []Category
	for _, c := range Categories() {
		if seen[c] {
			out = append(out, c)
		}
	}
	return out
}

// eventJSON is the persistence shape.
type eventJSON struct {
	IP       string `json:"ip"`
	Category string `json:"category"`
	Source   string `json:"source"`
	Day      int    `json:"day"`
	Detail   string `json:"detail,omitempty"`
}

// Save writes the repository as JSON lines, ordered by IP then insertion.
func (r *Repository) Save(w io.Writer) error {
	ips := make([]netx.Addr, 0, len(r.byIP))
	for ip := range r.byIP {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for _, ip := range ips {
		for _, j := range r.byIP[ip] {
			ev := r.events[j]
			rec := eventJSON{
				IP: ev.IP.String(), Category: ev.Category.String(),
				Source: ev.Source, Day: ev.Day, Detail: ev.Detail,
			}
			if err := enc.Encode(&rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SaveFile writes the repository to path.
func (r *Repository) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a JSONL repository.
func Load(rd io.Reader) (*Repository, error) {
	repo := NewRepository()
	dec := json.NewDecoder(bufio.NewReaderSize(rd, 1<<16))
	for line := 1; ; line++ {
		var rec eventJSON
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("threatintel: line %d: %w", line, err)
		}
		ip, err := netx.ParseAddr(rec.IP)
		if err != nil {
			return nil, fmt.Errorf("threatintel: line %d: %w", line, err)
		}
		cat, err := ParseCategory(rec.Category)
		if err != nil {
			return nil, fmt.Errorf("threatintel: line %d: %w", line, err)
		}
		repo.Add(Event{IP: ip, Category: cat, Source: rec.Source, Day: rec.Day, Detail: rec.Detail})
	}
	return repo, nil
}

// LoadFile reads a repository from path.
func LoadFile(path string) (*Repository, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
