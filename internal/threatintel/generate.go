package threatintel

import (
	"fmt"
	"math"
	"sort"

	"iotscope/internal/devicedb"
	"iotscope/internal/netx"
	"iotscope/internal/rng"
	"iotscope/internal/wgen"
)

// GenConfig shapes the synthetic intel feed.
type GenConfig struct {
	// FlagFraction is the fraction of compromised devices that appear in
	// the repository (the paper correlates 816 of 8,839 explored, ~9.2 %,
	// against a population of 26,881 -> ~3 % base with heavy bias toward
	// loud devices).
	FlagFraction float64
	// ActivityBias skews flagging toward high-activity devices: the flag
	// probability is proportional to weight^ActivityBias.
	ActivityBias float64
	// CategoryShares gives, per category, the fraction of flagged devices
	// carrying that flag (Table VI; not mutually exclusive; Scanning is
	// treated as the anchor flag).
	CategoryShares map[Category]float64
	// NoiseIPs adds flagged IPs outside the inventory (real repositories
	// are dominated by non-IoT infrastructure).
	NoiseIPs int
	// EventsPerFlag bounds how many events a flag expands to.
	EventsPerFlagMin int
	EventsPerFlagMax int
	// Days is the intel observation window in days.
	Days int
}

// DefaultGenConfig mirrors Sec. V-A/Table VI.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		FlagFraction: 0.055,
		ActivityBias: 0.6,
		CategoryShares: map[Category]float64{
			Scanning:      0.963,
			Miscellaneous: 0.703,
			BruteForce:    0.309,
			Spam:          0.278,
			Malware:       0.143,
			Phishing:      0.006,
		},
		NoiseIPs:         2000,
		EventsPerFlagMin: 1,
		EventsPerFlagMax: 4,
		Days:             30,
	}
}

var feedNames = []string{
	"darklist", "honeyfeed", "abuse-tracker", "botwatch", "spamhaus-like",
	"webattack-log", "ssh-auth-log", "dnsbl-mirror",
}

// Generate builds a repository over the synthetic world. Flags are planted
// on compromised devices with probability increasing in their ground-truth
// activity weight (loud devices get reported), plus non-IoT noise IPs.
func Generate(cfg GenConfig, truth wgen.GroundTruth, inv *devicedb.Inventory,
	noisePool []netx.Addr, seed uint64) (*Repository, error) {

	if cfg.FlagFraction <= 0 || cfg.FlagFraction > 1 {
		return nil, fmt.Errorf("threatintel: flag fraction %v out of (0, 1]", cfg.FlagFraction)
	}
	if cfg.EventsPerFlagMin < 1 || cfg.EventsPerFlagMax < cfg.EventsPerFlagMin {
		return nil, fmt.Errorf("threatintel: invalid events-per-flag range")
	}
	if cfg.Days < 1 {
		return nil, fmt.Errorf("threatintel: days must be >= 1")
	}
	r := rng.New(seed).Derive("threatintel")
	repo := NewRepository()

	// Select flagged devices: weighted sampling without replacement via
	// exponential sort keys (weight^bias).
	type cand struct {
		id  int
		key float64
	}
	cands := make([]cand, 0, len(truth.Compromised))
	for _, id := range truth.Compromised {
		w := truth.ActivityWeight[id]
		if w <= 0 {
			w = 1e-6
		}
		wb := math.Pow(w, cfg.ActivityBias)
		// Efraimidis-Spirakis weighted reservoir key.
		key := math.Pow(r.Float64(), 1/wb)
		cands = append(cands, cand{id, key})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].key != cands[j].key {
			return cands[i].key > cands[j].key
		}
		return cands[i].id < cands[j].id
	})
	nFlag := int(float64(len(cands))*cfg.FlagFraction + 0.5)
	if nFlag < 1 {
		nFlag = 1
	}
	if nFlag > len(cands) {
		nFlag = len(cands)
	}

	addEvents := func(ip netx.Addr, cat Category, dr *rng.Source) {
		n := cfg.EventsPerFlagMin
		if cfg.EventsPerFlagMax > cfg.EventsPerFlagMin {
			n += dr.Intn(cfg.EventsPerFlagMax - cfg.EventsPerFlagMin + 1)
		}
		for i := 0; i < n; i++ {
			repo.Add(Event{
				IP:       ip,
				Category: cat,
				Source:   feedNames[dr.Intn(len(feedNames))],
				Day:      dr.Intn(cfg.Days),
			})
		}
	}

	for _, c := range cands[:nFlag] {
		dev := inv.At(c.id)
		dr := r.DeriveN("flag", uint64(c.id))
		flagged := false
		for _, cat := range Categories() {
			if dr.Bool(cfg.CategoryShares[cat]) {
				addEvents(dev.IP, cat, dr)
				flagged = true
			}
		}
		if !flagged {
			// Ensure at least the anchor category.
			addEvents(dev.IP, Scanning, dr)
		}
	}

	// Non-IoT noise.
	for i := 0; i < cfg.NoiseIPs && len(noisePool) > 0; i++ {
		ip := noisePool[r.Intn(len(noisePool))]
		cat := Categories()[r.Intn(NumCategories)]
		addEvents(ip, cat, r)
	}
	return repo, nil
}
