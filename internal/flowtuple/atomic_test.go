package flowtuple

import (
	"errors"
	"os"
	"testing"
)

func TestCreateIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := HourPath(dir, 5)
	w, err := Create(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{Packets: 1}); err != nil {
		t.Fatal(err)
	}
	// Mid-write: only the .tmp sibling exists, and dataset scans skip it.
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("final path visible mid-write: %v", err)
	}
	if _, err := os.Stat(path + TmpSuffix); err != nil {
		t.Fatalf("tmp sibling missing mid-write: %v", err)
	}
	hours, err := DatasetHours(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hours) != 0 {
		t.Fatalf("in-progress file listed in dataset: %v", hours)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close: final path complete and verified, tmp gone.
	if _, err := os.Stat(path + TmpSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp sibling left after Close: %v", err)
	}
	hdr, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Hour != 5 || hdr.Count != 1 {
		t.Fatalf("header %+v", hdr)
	}
}

func TestAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := HourPath(dir, 2)
	w, err := Create(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{Packets: 3}); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("final path exists after Abort")
	}
	if _, err := os.Stat(path + TmpSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("tmp sibling survives Abort")
	}
	if err := w.Write(Record{Packets: 1}); err == nil {
		t.Fatal("write after Abort accepted")
	}
	if err := w.Close(); err == nil {
		t.Fatal("close after Abort reported success")
	}
}

func TestCloseIdempotentAfterSuccess(t *testing.T) {
	dir := t.TempDir()
	path := HourPath(dir, 1)
	w, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := Verify(path); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	path := HourPath(dir, 4)
	writeHourFile(t, path, 4, []Record{{Packets: 1}, {Packets: 2}})
	if hdr, err := Verify(path); err != nil || hdr.Count != 2 {
		t.Fatalf("verify clean file: %+v, %v", hdr, err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(path); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("verify damaged file: %v", err)
	}
}
