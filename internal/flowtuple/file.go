package flowtuple

import (
	"bufio"
	"compress/gzip"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File format: gzip stream containing a 16-byte header followed by framed
// records and a footer. Each frame starts with a tag byte: tagRecord
// precedes one fixed-size record, tagFooter precedes the 4-byte record
// count and ends the stream. The tag makes the footer unambiguous without
// requiring a seekable stream (gzip is not), and compresses to almost
// nothing.
//
//	magic   [4]byte "FTUP"
//	version uint8   (1)
//	_       [3]byte reserved
//	hour    uint32  hour index within the capture window
//	_       uint32  reserved
var fileMagic = [4]byte{'F', 'T', 'U', 'P'}

const (
	fileVersion   = 1
	fileHeaderLen = 16

	tagRecord byte = 0x01
	tagFooter byte = 0x00

	// TmpSuffix marks in-progress files written by Writer before the
	// atomic rename into place. Dataset scans ignore them.
	TmpSuffix = ".tmp"
)

// ErrBadFormat indicates a corrupt, truncated, or foreign flowtuple file.
var ErrBadFormat = errors.New("flowtuple: bad file format")

// ErrTruncated indicates a file that ends before its footer: the stream is
// intact as far as it goes but incomplete. Against a collector that does
// not write atomically this is the signature of an hour still being
// written, so callers may treat it as retryable; it wraps ErrBadFormat, so
// errors.Is(err, ErrBadFormat) still holds.
var ErrTruncated = fmt.Errorf("truncated: %w", ErrBadFormat)

// readErr classifies a low-level read failure: a clean or unexpected EOF
// means the stream ended early (possibly mid-write), anything else —
// gzip checksum failures, corrupt flate blocks — is structural damage.
func readErr(path, what string, err error) error {
	sentinel := ErrBadFormat
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		sentinel = ErrTruncated
	}
	return fmt.Errorf("flowtuple: %s %s (%v): %w", path, what, err, sentinel)
}

// Header describes one hourly file.
type Header struct {
	Hour  uint32
	Count uint32 // populated by Reader once the footer has been consumed
}

// Writer streams records into one hourly flowtuple file. The records are
// accumulated in a ".tmp" sibling and renamed into place by Close, so a
// reader can never observe an in-progress or abandoned hour: the final
// path either does not exist or holds a complete, footer-terminated file.
type Writer struct {
	f     *os.File
	gz    *gzip.Writer
	bw    *bufio.Writer
	buf   []byte
	count uint32
	path  string // final destination
	tmp   string // in-progress sibling
	err   error  // first fatal error; the temp file has been removed
}

// Create opens path for writing an hourly file. Data goes to a temporary
// sibling; the file appears at path only after a successful Close.
func Create(path string, hour uint32) (*Writer, error) {
	tmp := path + TmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("flowtuple: create %s: %w", tmp, err)
	}
	w := &Writer{f: f, path: path, tmp: tmp}
	w.gz = gzip.NewWriter(f)
	w.bw = bufio.NewWriterSize(w.gz, 1<<16)
	hdr := make([]byte, fileHeaderLen)
	copy(hdr, fileMagic[:])
	hdr[4] = fileVersion
	binary.LittleEndian.PutUint32(hdr[8:], hour)
	if _, err := w.bw.Write(hdr); err != nil {
		return nil, w.fail(err)
	}
	return w, nil
}

// fail records the first fatal error, closes the file, and removes the
// partial temp output so no corrupt hour is ever left on disk.
func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	if w.f != nil {
		w.f.Close()
		os.Remove(w.tmp)
		w.f = nil
	}
	return w.err
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if w.f == nil {
		return fmt.Errorf("flowtuple: write %s: writer closed (%w)", w.path, w.errOrClosed())
	}
	w.buf = append(w.buf[:0], tagRecord)
	w.buf = AppendRecord(w.buf, r)
	if _, err := w.bw.Write(w.buf); err != nil {
		return w.fail(fmt.Errorf("flowtuple: write %s: %w", w.path, err))
	}
	w.count++
	return nil
}

func (w *Writer) errOrClosed() error {
	if w.err != nil {
		return w.err
	}
	return os.ErrClosed
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint32 { return w.count }

// Close writes the footer, syncs the temp file, and atomically renames it
// into place. On any failure the partial output is removed and the final
// path is left untouched. Close after a write failure (or Abort) returns
// the stored error without side effects.
func (w *Writer) Close() error {
	if w.f == nil {
		return w.err
	}
	var footer [5]byte
	footer[0] = tagFooter
	binary.LittleEndian.PutUint32(footer[1:], w.count)
	if _, err := w.bw.Write(footer[:]); err != nil {
		return w.fail(err)
	}
	if err := w.bw.Flush(); err != nil {
		return w.fail(err)
	}
	if err := w.gz.Close(); err != nil {
		return w.fail(err)
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(err)
	}
	f := w.f
	w.f = nil
	if err := f.Close(); err != nil {
		os.Remove(w.tmp)
		w.err = err
		return err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		w.err = err
		return err
	}
	return nil
}

// Abort discards the in-progress file without publishing it. Safe to call
// after Close or a failed Write (no-op).
func (w *Writer) Abort() {
	if w.f != nil {
		w.fail(errors.New("flowtuple: writer aborted"))
	}
}

// Verify reads the file at path end to end and reports whether it is a
// complete, well-formed hour file. On success the returned Header has
// Count populated from the footer. Failures wrap ErrBadFormat, and
// additionally ErrTruncated when the file merely ends early.
func Verify(path string) (Header, error) {
	r, err := Open(path)
	if err != nil {
		return Header{}, err
	}
	defer r.Close()
	for {
		if _, err := r.Next(); err != nil {
			if err == io.EOF {
				return r.Header(), nil
			}
			return Header{}, err
		}
	}
}

// Reader pools. Hour files are opened once per hour per worker, and the
// gzip state (sliding window, huffman tables) plus the two bufio layers
// dominate that cost; recycling them makes steady-state ingestion allocate
// almost nothing per file.
var (
	// inPool holds the compressed-side buffers between the file and gzip;
	// a large buffer keeps read syscalls rare.
	inPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 1<<18) }}
	// outPool holds the decoded-side buffers NextBatch peeks frames out of.
	outPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 1<<16) }}
	// gzPool holds *gzip.Reader values; empty until the first Close.
	gzPool sync.Pool
)

// Reader iterates the records of one hourly file.
type Reader struct {
	f      *os.File
	in     *bufio.Reader
	gz     *gzip.Reader
	br     *bufio.Reader
	header Header
	read   uint32
	buf    [RecordSize]byte
	path   string
}

// Open opens an hourly file and validates its header.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flowtuple: open %s: %w", path, err)
	}
	in := inPool.Get().(*bufio.Reader)
	in.Reset(f)
	var gz *gzip.Reader
	if v := gzPool.Get(); v != nil {
		gz = v.(*gzip.Reader)
		err = gz.Reset(in)
	} else {
		gz, err = gzip.NewReader(in)
	}
	if err != nil {
		if gz != nil {
			gzPool.Put(gz)
		}
		in.Reset(nil)
		inPool.Put(in)
		f.Close()
		return nil, readErr(path, "gzip open", err)
	}
	br := outPool.Get().(*bufio.Reader)
	br.Reset(gz)
	r := &Reader{f: f, in: in, gz: gz, br: br, path: path}
	hdr := make([]byte, fileHeaderLen)
	if _, err := io.ReadFull(r.br, hdr); err != nil {
		r.Close()
		return nil, readErr(path, "short header", err)
	}
	if [4]byte(hdr[:4]) != fileMagic || hdr[4] != fileVersion {
		r.Close()
		return nil, fmt.Errorf("flowtuple: %s bad magic or version: %w", path, ErrBadFormat)
	}
	r.header.Hour = binary.LittleEndian.Uint32(hdr[8:])
	return r, nil
}

// Header returns the file header. Count is only known after io.EOF.
func (r *Reader) Header() Header { return r.header }

// Next returns the next record, or io.EOF after the footer. Corrupt files
// yield an error wrapping ErrBadFormat; files that simply end before the
// footer (e.g. still being written by a non-atomic producer) additionally
// wrap ErrTruncated.
func (r *Reader) Next() (Record, error) {
	var one [1]Record
	if n, err := r.NextBatch(one[:]); n == 0 {
		return Record{}, err
	}
	return one[0], nil
}

// next1 reads one frame the framed way: tag byte, then the record or
// footer. It is the slow path shared by Next and NextBatch, and the sole
// origin of the reader's error taxonomy.
func (r *Reader) next1() (Record, error) {
	tag, err := r.br.ReadByte()
	if err != nil {
		return Record{}, readErr(r.path, "ends before footer", err)
	}
	switch tag {
	case tagFooter:
		var cnt [4]byte
		if _, err := io.ReadFull(r.br, cnt[:]); err != nil {
			return Record{}, readErr(r.path, "truncated footer", err)
		}
		count := binary.LittleEndian.Uint32(cnt[:])
		if count != r.read {
			return Record{}, fmt.Errorf("flowtuple: %s footer count %d, read %d: %w",
				r.path, count, r.read, ErrBadFormat)
		}
		if _, err := r.br.ReadByte(); err != io.EOF {
			return Record{}, fmt.Errorf("flowtuple: %s trailing data: %w", r.path, ErrBadFormat)
		}
		r.header.Count = count
		return Record{}, io.EOF
	case tagRecord:
		if _, err := io.ReadFull(r.br, r.buf[:]); err != nil {
			return Record{}, readErr(r.path, "truncated record", err)
		}
		rec, err := DecodeRecord(r.buf[:])
		if err != nil {
			return Record{}, err
		}
		r.read++
		return rec, nil
	default:
		return Record{}, fmt.Errorf("flowtuple: %s unknown frame tag %#02x: %w",
			r.path, tag, ErrBadFormat)
	}
}

// Close releases the underlying file and returns the pooled buffers,
// propagating the gzip close error (e.g. a checksum failure noticed only at
// stream end) over the file one.
func (r *Reader) Close() error {
	var gzErr error
	if r.gz != nil {
		gzErr = r.gz.Close()
		gzPool.Put(r.gz)
		r.gz = nil
	}
	if r.br != nil {
		r.br.Reset(nil)
		outPool.Put(r.br)
		r.br = nil
	}
	if r.in != nil {
		r.in.Reset(nil)
		inPool.Put(r.in)
		r.in = nil
	}
	var fErr error
	if r.f != nil {
		fErr = r.f.Close()
		r.f = nil
	}
	if gzErr != nil {
		return gzErr
	}
	return fErr
}

// HourPath returns the canonical file name for an hour within dir.
func HourPath(dir string, hour int) string {
	return filepath.Join(dir, fmt.Sprintf("hour-%03d.ft.gz", hour))
}

// parseHourName extracts the hour index from a canonical hour file name
// ("hour-NNN.ft.gz", decimal digits only). ok is false for anything else:
// in-progress ".tmp" siblings, foreign files, and malformed names. Unlike
// the historical Sscanf parse, names past hour 999 (four or more digits)
// are accepted, since HourPath generates them for windows past %03d.
func parseHourName(name string) (int, bool) {
	const prefix, suffix = "hour-", ".ft.gz"
	if len(name) < len(prefix)+1+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if len(digits) > 9 { // bounds the value well inside int range
		return 0, false
	}
	h := 0
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		h = h*10 + int(c-'0')
	}
	return h, true
}

// DatasetHours lists the hour indices present in a dataset directory, in
// ascending order. In-progress ".tmp" siblings and files that do not parse
// as canonical hour names are never matched. A missing directory yields an
// empty listing, matching the historical glob-based behavior.
func DatasetHours(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	hours := make([]int, 0, len(ents))
	for _, ent := range ents {
		if h, ok := parseHourName(ent.Name()); ok {
			hours = append(hours, h)
		}
	}
	sort.Ints(hours)
	return hours, nil
}

// WalkHour opens the given hour file in dir and invokes fn for each record.
func WalkHour(dir string, hour int, fn func(Record) error) error {
	return WalkHourBatch(context.Background(), dir, hour, func(batch []Record) error {
		for i := range batch {
			if err := fn(batch[i]); err != nil {
				return err
			}
		}
		return nil
	})
}
