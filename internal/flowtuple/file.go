package flowtuple

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File format: gzip stream containing a 16-byte header followed by framed
// records and a footer. Each frame starts with a tag byte: tagRecord
// precedes one fixed-size record, tagFooter precedes the 4-byte record
// count and ends the stream. The tag makes the footer unambiguous without
// requiring a seekable stream (gzip is not), and compresses to almost
// nothing.
//
//	magic   [4]byte "FTUP"
//	version uint8   (1)
//	_       [3]byte reserved
//	hour    uint32  hour index within the capture window
//	_       uint32  reserved
var fileMagic = [4]byte{'F', 'T', 'U', 'P'}

const (
	fileVersion   = 1
	fileHeaderLen = 16

	tagRecord byte = 0x01
	tagFooter byte = 0x00
)

// ErrBadFormat indicates a corrupt, truncated, or foreign flowtuple file.
var ErrBadFormat = errors.New("flowtuple: bad file format")

// Header describes one hourly file.
type Header struct {
	Hour  uint32
	Count uint32 // populated by Reader once the footer has been consumed
}

// Writer streams records into one hourly flowtuple file.
type Writer struct {
	f     *os.File
	gz    *gzip.Writer
	bw    *bufio.Writer
	buf   []byte
	count uint32
	path  string
}

// Create opens path for writing an hourly file. The file is only valid
// after a successful Close (which writes the footer).
func Create(path string, hour uint32) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("flowtuple: create %s: %w", path, err)
	}
	w := &Writer{f: f, path: path}
	w.gz = gzip.NewWriter(f)
	w.bw = bufio.NewWriterSize(w.gz, 1<<16)
	hdr := make([]byte, fileHeaderLen)
	copy(hdr, fileMagic[:])
	hdr[4] = fileVersion
	binary.LittleEndian.PutUint32(hdr[8:], hour)
	if _, err := w.bw.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	w.buf = append(w.buf[:0], tagRecord)
	w.buf = AppendRecord(w.buf, r)
	if _, err := w.bw.Write(w.buf); err != nil {
		return fmt.Errorf("flowtuple: write %s: %w", w.path, err)
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint32 { return w.count }

// Close writes the footer and flushes the file.
func (w *Writer) Close() error {
	var footer [5]byte
	footer[0] = tagFooter
	binary.LittleEndian.PutUint32(footer[1:], w.count)
	if _, err := w.bw.Write(footer[:]); err != nil {
		w.f.Close()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.gz.Close(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Reader iterates the records of one hourly file.
type Reader struct {
	f      *os.File
	gz     *gzip.Reader
	br     *bufio.Reader
	header Header
	read   uint32
	buf    [RecordSize]byte
	path   string
}

// Open opens an hourly file and validates its header.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flowtuple: open %s: %w", path, err)
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("flowtuple: %s: %w", path, ErrBadFormat)
	}
	r := &Reader{f: f, gz: gz, br: bufio.NewReaderSize(gz, 1<<16), path: path}
	hdr := make([]byte, fileHeaderLen)
	if _, err := io.ReadFull(r.br, hdr); err != nil {
		r.Close()
		return nil, fmt.Errorf("flowtuple: %s: %w", path, ErrBadFormat)
	}
	if [4]byte(hdr[:4]) != fileMagic || hdr[4] != fileVersion {
		r.Close()
		return nil, fmt.Errorf("flowtuple: %s: %w", path, ErrBadFormat)
	}
	r.header.Hour = binary.LittleEndian.Uint32(hdr[8:])
	return r, nil
}

// Header returns the file header. Count is only known after io.EOF.
func (r *Reader) Header() Header { return r.header }

// Next returns the next record, or io.EOF after the footer. Truncated or
// corrupt files yield an error wrapping ErrBadFormat.
func (r *Reader) Next() (Record, error) {
	tag, err := r.br.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("flowtuple: %s truncated: %w", r.path, ErrBadFormat)
	}
	switch tag {
	case tagFooter:
		var cnt [4]byte
		if _, err := io.ReadFull(r.br, cnt[:]); err != nil {
			return Record{}, fmt.Errorf("flowtuple: %s truncated footer: %w", r.path, ErrBadFormat)
		}
		count := binary.LittleEndian.Uint32(cnt[:])
		if count != r.read {
			return Record{}, fmt.Errorf("flowtuple: %s footer count %d, read %d: %w",
				r.path, count, r.read, ErrBadFormat)
		}
		if _, err := r.br.ReadByte(); err != io.EOF {
			return Record{}, fmt.Errorf("flowtuple: %s trailing data: %w", r.path, ErrBadFormat)
		}
		r.header.Count = count
		return Record{}, io.EOF
	case tagRecord:
		if _, err := io.ReadFull(r.br, r.buf[:]); err != nil {
			return Record{}, fmt.Errorf("flowtuple: %s truncated record: %w", r.path, ErrBadFormat)
		}
		rec, err := DecodeRecord(r.buf[:])
		if err != nil {
			return Record{}, err
		}
		r.read++
		return rec, nil
	default:
		return Record{}, fmt.Errorf("flowtuple: %s unknown frame tag %#02x: %w",
			r.path, tag, ErrBadFormat)
	}
}

// Close releases the underlying file.
func (r *Reader) Close() error {
	if r.gz != nil {
		r.gz.Close()
	}
	return r.f.Close()
}

// HourPath returns the canonical file name for an hour within dir.
func HourPath(dir string, hour int) string {
	return filepath.Join(dir, fmt.Sprintf("hour-%03d.ft.gz", hour))
}

// DatasetHours lists the hour indices present in a dataset directory, in
// ascending order.
func DatasetHours(dir string) ([]int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "hour-*.ft.gz"))
	if err != nil {
		return nil, err
	}
	hours := make([]int, 0, len(matches))
	for _, m := range matches {
		var h int
		if _, err := fmt.Sscanf(filepath.Base(m), "hour-%03d.ft.gz", &h); err == nil {
			hours = append(hours, h)
		}
	}
	sort.Ints(hours)
	return hours, nil
}

// WalkHour opens the given hour file in dir and invokes fn for each record.
func WalkHour(dir string, hour int, fn func(Record) error) error {
	r, err := Open(HourPath(dir, hour))
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}
