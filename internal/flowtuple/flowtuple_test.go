package flowtuple

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordICMPAccessors(t *testing.T) {
	r := Record{Protocol: ProtoICMP, SrcPort: uint16(ICMPEchoReply), DstPort: 3}
	if r.ICMPType() != ICMPEchoReply || r.ICMPCode() != 3 {
		t.Fatalf("type=%d code=%d", r.ICMPType(), r.ICMPCode())
	}
}

func TestHasFlags(t *testing.T) {
	r := Record{TCPFlags: FlagSYN | FlagACK}
	if !r.HasFlags(FlagSYN) || !r.HasFlags(FlagACK) || !r.HasFlags(FlagSYN|FlagACK) {
		t.Error("set flags not detected")
	}
	if r.HasFlags(FlagRST) || r.HasFlags(FlagSYN|FlagRST) {
		t.Error("unset flags detected")
	}
}

func TestProtoName(t *testing.T) {
	tests := []struct {
		p    uint8
		want string
	}{
		{ProtoTCP, "TCP"}, {ProtoUDP, "UDP"}, {ProtoICMP, "ICMP"}, {47, "proto-47"},
	}
	for _, tc := range tests {
		if got := ProtoName(tc.p); got != tc.want {
			t.Errorf("ProtoName(%d) = %q", tc.p, got)
		}
	}
}

func TestRecordString(t *testing.T) {
	r := Record{
		SrcIP: 0x0a000001, DstIP: 0x2c010203,
		SrcPort: 1234, DstPort: 23,
		Protocol: ProtoTCP, TTL: 64, TCPFlags: FlagSYN, IPLen: 40, Packets: 3,
	}
	s := r.String()
	for _, want := range []string{"TCP", "10.0.0.1:1234", "44.1.2.3:23", "pkts=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	r := Record{
		SrcIP: 0xdeadbeef, DstIP: 0x2c000001,
		SrcPort: 65535, DstPort: 1,
		Protocol: ProtoUDP, TTL: 255, TCPFlags: 0, IPLen: 1500, Packets: 1 << 30,
	}
	buf := AppendRecord(nil, r)
	if len(buf) != RecordSize {
		t.Fatalf("encoded size %d", len(buf))
	}
	back, err := DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Fatalf("round trip %+v != %+v", back, r)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := DecodeRecord(make([]byte, RecordSize-1)); err == nil {
		t.Fatal("short decode accepted")
	}
}

func TestAppendRecordReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 2*RecordSize)
	buf = AppendRecord(buf, Record{SrcIP: 1})
	buf = AppendRecord(buf, Record{SrcIP: 2})
	if len(buf) != 2*RecordSize {
		t.Fatalf("len %d", len(buf))
	}
	r0, _ := DecodeRecord(buf)
	r1, _ := DecodeRecord(buf[RecordSize:])
	if r0.SrcIP != 1 || r1.SrcIP != 2 {
		t.Fatal("append corrupted prior records")
	}
}

// Property: codec round-trips arbitrary records.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(srcIP, dstIP, pkts uint32, sp, dp, iplen uint16, proto, ttl, flags uint8) bool {
		r := Record{
			SrcIP: srcIP, DstIP: dstIP,
			SrcPort: sp, DstPort: dp,
			Protocol: proto, TTL: ttl, TCPFlags: flags,
			IPLen: iplen, Packets: pkts,
		}
		back, err := DecodeRecord(AppendRecord(nil, r))
		return err == nil && back == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendRecord(b *testing.B) {
	r := Record{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Protocol: 6, Packets: 5}
	buf := make([]byte, 0, RecordSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendRecord(buf[:0], r)
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	buf := AppendRecord(nil, Record{SrcIP: 1, DstIP: 2, Protocol: 6, Packets: 5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRecord(buf); err != nil {
			b.Fatal(err)
		}
	}
}
