package flowtuple

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"iotscope/internal/faultfs"
	"iotscope/internal/rng"
)

const corruptRecs = 8

// validPlain builds the uncompressed payload of a valid hour file with
// corruptRecs records: 16-byte header, framed records, 5-byte footer.
func validPlain(t *testing.T) []byte {
	t.Helper()
	dir := t.TempDir()
	path := HourPath(dir, 3)
	r := rng.New(99)
	recs := make([]Record, corruptRecs)
	for i := range recs {
		recs[i] = randomRecord(r)
	}
	writeHourFile(t, path, 3, recs)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := fileHeaderLen + corruptRecs*(1+RecordSize) + 5
	if len(plain) != wantLen {
		t.Fatalf("plain payload %d bytes, want %d", len(plain), wantLen)
	}
	return plain
}

// writeGz compresses plain into a fresh hour file and returns its path.
func writeGz(t *testing.T, plain []byte) string {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(plain); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hour-003.ft.gz")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// readAll drains the file, returning the terminal error (nil on clean EOF).
func readAll(path string) error {
	_, err := Verify(path)
	return err
}

// corruptionCase is one damaged-payload shape shared by the classification
// table test and the batch-vs-record equivalence test.
type corruptionCase struct {
	name          string
	mutate        func([]byte) []byte
	wantTruncated bool // else: permanent ErrBadFormat only
}

// corruptionCases enumerates every corruption shape the reader must
// classify: header damage, framing damage, footer damage, and truncation at
// every frame boundary and inside every record.
func corruptionCases() []corruptionCase {
	frame := 1 + RecordSize
	cases := []corruptionCase{
		{"bad magic", func(p []byte) []byte { p[0] ^= 0xFF; return p }, false},
		{"bad version", func(p []byte) []byte { p[4] = 99; return p }, false},
		{"unknown frame tag", func(p []byte) []byte { p[fileHeaderLen] = 0x7F; return p }, false},
		{"footer count mismatch", func(p []byte) []byte {
			off := len(p) - 4
			n := binary.LittleEndian.Uint32(p[off:])
			binary.LittleEndian.PutUint32(p[off:], n+1)
			return p
		}, false},
		{"trailing data", func(p []byte) []byte { return append(p, 0xAA, 0xBB) }, false},
		{"empty payload", func(p []byte) []byte { return p[:0] }, true},
		{"cut mid-header", func(p []byte) []byte { return p[:7] }, true},
		{"cut mid-footer", func(p []byte) []byte { return p[:len(p)-2] }, true},
	}
	// Truncation at every frame boundary, and inside every record.
	for k := 0; k <= corruptRecs; k++ {
		cut := fileHeaderLen + k*frame
		cases = append(cases, corruptionCase{
			"cut at frame " + string(rune('0'+k)),
			func(p []byte) []byte { return p[:cut] }, true})
		if k < corruptRecs {
			mid := cut + 1 + RecordSize/2
			cases = append(cases, corruptionCase{
				"cut inside record " + string(rune('0'+k)),
				func(p []byte) []byte { return p[:mid] }, true})
		}
	}
	return cases
}

func TestCorruptionTable(t *testing.T) {
	for _, tc := range corruptionCases() {
		t.Run(tc.name, func(t *testing.T) {
			plain := tc.mutate(validPlain(t))
			path := writeGz(t, plain)
			err := readAll(path)
			if err == nil {
				t.Fatal("damaged file verified clean")
			}
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("error does not wrap ErrBadFormat: %v", err)
			}
			if got := errors.Is(err, ErrTruncated); got != tc.wantTruncated {
				t.Fatalf("ErrTruncated = %v, want %v (err: %v)", got, tc.wantTruncated, err)
			}
		})
	}
}

// drainNext reads the file one record at a time and returns the records
// before the terminal error (nil for a clean EOF).
func drainNext(t *testing.T, path string) ([]Record, error) {
	t.Helper()
	rd, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	var recs []Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// drainBatch reads the file through NextBatch with the given batch size.
func drainBatch(t *testing.T, path string, size int) ([]Record, error) {
	t.Helper()
	rd, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	var recs []Record
	buf := make([]Record, size)
	for {
		n, err := rd.NextBatch(buf)
		recs = append(recs, buf[:n]...)
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
	}
}

// The batch reader must agree with the record reader on every corruption
// shape: the same prefix of readable records, then an error with the same
// message and the same ErrTruncated/ErrBadFormat classification — a cut
// landing mid-batch must not reclassify or swallow records.
func TestBatchMatchesRecordOnCorruption(t *testing.T) {
	for _, tc := range corruptionCases() {
		t.Run(tc.name, func(t *testing.T) {
			plain := tc.mutate(validPlain(t))
			path := writeGz(t, plain)
			wantRecs, wantErr := drainNext(t, path)
			for _, size := range []int{1, 3, corruptRecs, BatchSize} {
				gotRecs, gotErr := drainBatch(t, path, size)
				if len(gotRecs) != len(wantRecs) {
					t.Fatalf("batch=%d read %d records, record reader %d",
						size, len(gotRecs), len(wantRecs))
				}
				for i := range gotRecs {
					if gotRecs[i] != wantRecs[i] {
						t.Fatalf("batch=%d record %d diverged", size, i)
					}
				}
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("batch=%d error = %v, record reader %v", size, gotErr, wantErr)
				}
				if wantErr == nil {
					continue
				}
				if gotErr.Error() != wantErr.Error() {
					t.Fatalf("batch=%d error message diverged:\n batch  %v\n record %v",
						size, gotErr, wantErr)
				}
				if errors.Is(gotErr, ErrTruncated) != errors.Is(wantErr, ErrTruncated) ||
					!errors.Is(gotErr, ErrBadFormat) {
					t.Fatalf("batch=%d error classification diverged: %v vs %v",
						size, gotErr, wantErr)
				}
			}
		})
	}
}

// Raw compressed-stream truncation at every byte offset must always yield
// an ErrBadFormat-wrapped error — never a clean read, never a panic.
func TestRawTruncationEveryOffset(t *testing.T) {
	full := func() []byte {
		path := writeGz(t, validPlain(t))
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}()
	dir := t.TempDir()
	path := filepath.Join(dir, "hour-003.ft.gz")
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		err := readAll(path)
		if err == nil {
			t.Fatalf("cut at %d/%d verified clean", cut, len(full))
		}
		if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("cut at %d: error does not wrap ErrBadFormat: %v", cut, err)
		}
	}
}

// Bit flips in the compressed stream are permanent corruption: the flip in
// the gzip magic fails at open; a mid-stream flip is caught at the latest
// by the gzip checksum before the footer can report clean EOF.
func TestRawBitFlips(t *testing.T) {
	for _, off := range []int64{1, -40} {
		path := writeGz(t, validPlain(t))
		if err := faultfs.BitFlip(path, off, 0x10); err != nil {
			t.Fatal(err)
		}
		err := readAll(path)
		if err == nil {
			t.Fatalf("flip at %d verified clean", off)
		}
		if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("flip at %d: error does not wrap ErrBadFormat: %v", off, err)
		}
	}
}

// A clean mid-stream cut produced by faultfs.RecompressPrefix — the
// in-progress shape a non-atomic writer leaves behind — must classify as
// retryable truncation, not permanent corruption.
func TestInProgressFileIsRetryable(t *testing.T) {
	path := writeGz(t, validPlain(t))
	cut := fileHeaderLen + 2*(1+RecordSize)
	if err := faultfs.RecompressPrefix(path, cut); err != nil {
		t.Fatal(err)
	}
	err := readAll(path)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("in-progress file error = %v, want ErrTruncated", err)
	}
	// The records before the cut are still readable.
	rd, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	for i := 0; i < 2; i++ {
		if _, err := rd.Next(); err != nil {
			t.Fatalf("record %d before cut unreadable: %v", i, err)
		}
	}
}
