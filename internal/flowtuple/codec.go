package flowtuple

import (
	"encoding/binary"
	"fmt"
)

// RecordSize is the fixed on-disk size of one encoded record in bytes.
const RecordSize = 21

// AppendRecord encodes r and appends it to dst, returning the extended
// slice. Layout (little-endian): SrcIP(4) DstIP(4) SrcPort(2) DstPort(2)
// Protocol(1) TTL(1) TCPFlags(1) IPLen(2) Packets(4).
func AppendRecord(dst []byte, r Record) []byte {
	var buf [RecordSize]byte
	binary.LittleEndian.PutUint32(buf[0:], r.SrcIP)
	binary.LittleEndian.PutUint32(buf[4:], r.DstIP)
	binary.LittleEndian.PutUint16(buf[8:], r.SrcPort)
	binary.LittleEndian.PutUint16(buf[10:], r.DstPort)
	buf[12] = r.Protocol
	buf[13] = r.TTL
	buf[14] = r.TCPFlags
	binary.LittleEndian.PutUint16(buf[15:], r.IPLen)
	binary.LittleEndian.PutUint32(buf[17:], r.Packets)
	return append(dst, buf[:]...)
}

// DecodeRecord decodes one record from the first RecordSize bytes of src.
func DecodeRecord(src []byte) (Record, error) {
	if len(src) < RecordSize {
		return Record{}, fmt.Errorf("flowtuple: short record: %d bytes", len(src))
	}
	var r Record
	decodeInto(&r, src)
	return r, nil
}

// decodeInto decodes one record from src, which the caller guarantees holds
// at least RecordSize bytes. It is the batch decode kernel: no bounds error
// path, no value copies beyond the field stores themselves.
func decodeInto(dst *Record, src []byte) {
	_ = src[RecordSize-1] // one bounds check for the whole record
	dst.SrcIP = binary.LittleEndian.Uint32(src[0:])
	dst.DstIP = binary.LittleEndian.Uint32(src[4:])
	dst.SrcPort = binary.LittleEndian.Uint16(src[8:])
	dst.DstPort = binary.LittleEndian.Uint16(src[10:])
	dst.Protocol = src[12]
	dst.TTL = src[13]
	dst.TCPFlags = src[14]
	dst.IPLen = binary.LittleEndian.Uint16(src[15:])
	dst.Packets = binary.LittleEndian.Uint32(src[17:])
}
