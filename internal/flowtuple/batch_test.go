package flowtuple

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"iotscope/internal/rng"
)

// NextBatch over a healthy file must return exactly the records Next does,
// at every batch size from degenerate to full.
func TestNextBatchEquivalence(t *testing.T) {
	dir := t.TempDir()
	path := HourPath(dir, 5)
	r := rng.New(55)
	recs := make([]Record, 1000)
	for i := range recs {
		recs[i] = randomRecord(r)
	}
	writeHourFile(t, path, 5, recs)

	want, err := drainNext(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(recs) {
		t.Fatalf("record drain read %d records, wrote %d", len(want), len(recs))
	}
	for _, size := range []int{1, 2, 7, 100, BatchSize} {
		got, err := drainBatch(t, path, size)
		if err != nil {
			t.Fatalf("batch=%d: %v", size, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("batch=%d drain diverged from record drain", size)
		}
	}
}

// A zero-length destination slice is a no-op, not an EOF or a panic; the
// stream position is untouched.
func TestNextBatchZeroDst(t *testing.T) {
	dir := t.TempDir()
	path := HourPath(dir, 1)
	r := rng.New(56)
	writeHourFile(t, path, 1, []Record{randomRecord(r), randomRecord(r)})
	rd, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if n, err := rd.NextBatch(nil); n != 0 || err != nil {
		t.Fatalf("NextBatch(nil) = %d, %v", n, err)
	}
	got, err := drainBatch(t, path, 4)
	if err != nil || len(got) != 2 {
		t.Fatalf("drain after zero-dst call: %d records, %v", len(got), err)
	}
}

// NextBatch after Close fails with an ordinary error instead of a panic on
// the recycled buffers.
func TestNextBatchAfterClose(t *testing.T) {
	dir := t.TempDir()
	path := HourPath(dir, 1)
	writeHourFile(t, path, 1, []Record{randomRecord(rng.New(57))})
	rd, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	var buf [4]Record
	if n, err := rd.NextBatch(buf[:]); n != 0 || err == nil {
		t.Fatalf("NextBatch after Close = %d, %v; want 0, error", n, err)
	}
	if _, err := rd.Next(); err == nil {
		t.Fatal("Next after Close succeeded")
	}
}

// WalkHourBatch delivers the same record stream as WalkHour, in the same
// order, reusing its batch buffer between callbacks.
func TestWalkHourBatchEquivalence(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(58)
	recs := make([]Record, 2*BatchSize+17) // forces several full batches plus a tail
	for i := range recs {
		recs[i] = randomRecord(r)
	}
	writeHourFile(t, HourPath(dir, 0), 0, recs)

	var byRecord []Record
	if err := WalkHour(dir, 0, func(rec Record) error {
		byRecord = append(byRecord, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var byBatch []Record
	var prev *Record
	batches := 0
	if err := WalkHourBatch(context.Background(), dir, 0, func(batch []Record) error {
		if batches > 0 && prev != &batch[0] {
			t.Error("batch buffer not reused between callbacks")
		}
		prev = &batch[0]
		batches++
		byBatch = append(byBatch, batch...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byRecord, byBatch) {
		t.Fatalf("walks diverged: %d vs %d records", len(byRecord), len(byBatch))
	}
	if batches < 3 {
		t.Fatalf("expected >= 3 batches for %d records, got %d", len(recs), batches)
	}
}

// DatasetHours must list exactly the canonical hour files, skipping
// in-progress .tmp siblings, foreign files, and malformed names — and,
// unlike the old %03d scan, accept hours past 999.
func TestDatasetHoursSkipsJunk(t *testing.T) {
	dir := t.TempDir()
	touch := func(name string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range []int{0, 3, 12, 1000} {
		touch(HourPath("", h))
	}
	for _, junk := range []string{
		"hour-004.ft.gz.tmp",    // in-progress atomic-rename sibling
		"hour-005.ft.gz.1234",   // stray suffix
		"hour-.ft.gz",           // no digits
		"hour-0x5.ft.gz",        // non-decimal
		"hour--12.ft.gz",        // sign
		"hour-7.gz",             // wrong extension
		"hour-1234567890.ft.gz", // too many digits
		"flow-001.ft.gz",        // wrong prefix
		"README.md",
		"hour-008.ft.gz.quarantine",
	} {
		touch(junk)
	}
	if err := os.Mkdir(filepath.Join(dir, "hour-009.ft.gz"), 0o755); err != nil {
		t.Fatal(err)
	}

	hours, err := DatasetHours(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The hour-009 directory parses as a canonical name; DatasetHours lists
	// by name, and the open fails later with an ordinary error — same as the
	// historical glob. So it is listed here.
	want := []int{0, 3, 9, 12, 1000}
	if !reflect.DeepEqual(hours, want) {
		t.Fatalf("DatasetHours = %v, want %v", hours, want)
	}

	if hs, err := DatasetHours(filepath.Join(dir, "does-not-exist")); err != nil || hs != nil {
		t.Fatalf("missing dir: %v, %v; want nil, nil", hs, err)
	}
}

func TestParseHourName(t *testing.T) {
	cases := []struct {
		name string
		hour int
		ok   bool
	}{
		{"hour-000.ft.gz", 0, true},
		{"hour-042.ft.gz", 42, true},
		{"hour-7.ft.gz", 7, true}, // unpadded still parses
		{"hour-1000.ft.gz", 1000, true},
		{"hour-999999999.ft.gz", 999999999, true},
		{"hour-1234567890.ft.gz", 0, false}, // > 9 digits
		{"hour-.ft.gz", 0, false},
		{"hour-001.ft.gz.tmp", 0, false},
		{"hour-001.ft.gz.quarantine", 0, false},
		{"hour-0 1.ft.gz", 0, false},
		{"hour--01.ft.gz", 0, false},
		{"xhour-001.ft.gz", 0, false},
		{"hour-001.ft.g", 0, false},
		{"", 0, false},
	}
	for _, tc := range cases {
		h, ok := parseHourName(tc.name)
		if ok != tc.ok || (ok && h != tc.hour) {
			t.Errorf("parseHourName(%q) = %d, %v; want %d, %v", tc.name, h, ok, tc.hour, tc.ok)
		}
	}
}
