package flowtuple

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"iotscope/internal/rng"
)

// FuzzReader proves Open/Next/Close never panic on arbitrary bytes: every
// input either reads to clean EOF or fails with an ordinary error. The
// seed corpus is a valid file plus systematic mutations of it.
func FuzzReader(f *testing.F) {
	// Valid file bytes as the mutation base.
	dir := f.TempDir()
	base := HourPath(dir, 7)
	w, err := Create(base, 7)
	if err != nil {
		f.Fatal(err)
	}
	r := rng.New(7)
	for i := 0; i < 32; i++ {
		if err := w.Write(Record{
			SrcIP: r.Uint32(), DstIP: r.Uint32(),
			SrcPort: uint16(r.Uint32()), DstPort: uint16(r.Uint32()),
			Protocol: uint8(r.Intn(256)), TCPFlags: uint8(r.Intn(64)),
			Packets: uint32(1 + r.Intn(1000)),
		}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(base)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not gzip at all"))
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:1])
	for _, off := range []int{0, 1, 3, 10, len(valid) / 2, len(valid) - 5} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x40
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "hour-000.ft.gz")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		rd, err := Open(path)
		if err != nil {
			return // rejected at open: fine
		}
		defer rd.Close()
		// Bound iterations so crafted gzip bombs cannot stall the fuzzer:
		// a tiny compressed input can expand to millions of frames.
		for i := 0; i < 1<<17; i++ {
			if _, err := rd.Next(); err != nil {
				if err == io.EOF {
					return // clean end
				}
				return // ordinary error: fine
			}
		}
	})
}

// FuzzNextBatch proves the batch fast path is a drop-in for Next on
// arbitrary bytes: both drains see the same record prefix and stop with
// errors of the same classification, and neither panics.
func FuzzNextBatch(f *testing.F) {
	dir := f.TempDir()
	base := HourPath(dir, 7)
	w, err := Create(base, 7)
	if err != nil {
		f.Fatal(err)
	}
	r := rng.New(11)
	for i := 0; i < 48; i++ {
		if err := w.Write(randomRecord(r)); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(base)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(valid, uint16(1))
	f.Add(valid, uint16(7))
	f.Add(valid, uint16(BatchSize))
	f.Add(valid[:len(valid)/2], uint16(3))
	f.Add([]byte{}, uint16(4))
	for _, off := range []int{1, 10, len(valid) / 2, len(valid) - 5} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x40
		f.Add(mut, uint16(5))
	}

	f.Fuzz(func(t *testing.T, data []byte, size uint16) {
		batchLen := int(size)%256 + 1
		path := filepath.Join(t.TempDir(), "hour-000.ft.gz")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		ra, errA := Open(path)
		rb, errB := Open(path)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("open disagreement: %v vs %v", errA, errB)
		}
		if errA != nil {
			return
		}
		defer ra.Close()
		defer rb.Close()
		buf := make([]Record, batchLen)
		const maxRecs = 1 << 17 // gzip-bomb bound, as in FuzzReader
		read := 0
		for read < maxRecs {
			n, berr := rb.NextBatch(buf)
			for i := 0; i < n; i++ {
				rec, nerr := ra.Next()
				if nerr != nil {
					t.Fatalf("Next failed (%v) where NextBatch produced record %d", nerr, read+i)
				}
				if rec != buf[i] {
					t.Fatalf("record %d diverged: %+v vs %+v", read+i, rec, buf[i])
				}
			}
			read += n
			if berr != nil {
				_, nerr := ra.Next()
				if nerr == nil {
					t.Fatalf("NextBatch stopped (%v) where Next kept reading", berr)
				}
				if (berr == io.EOF) != (nerr == io.EOF) {
					t.Fatalf("terminal errors diverged: batch %v, record %v", berr, nerr)
				}
				if berr != io.EOF && berr.Error() != nerr.Error() {
					t.Fatalf("terminal messages diverged:\n batch  %v\n record %v", berr, nerr)
				}
				return
			}
		}
	})
}
