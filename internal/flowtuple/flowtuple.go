// Package flowtuple implements the telescope's on-disk traffic
// representation: the "flowtuple" record and the compressed hourly files the
// paper's pipeline consumes (Sec. III-A2).
//
// A flowtuple aggregates the one-way packets of a flow seen at the darknet
// during one hour: source/destination addresses and ports, protocol, TTL,
// TCP flags, IP length, and the number of packets. Following the Corsaro
// convention, ICMP traffic stores its type and code in the port fields.
// A dataset is a directory of gzip-compressed hourly files
// (hour-000.ft.gz ... hour-142.ft.gz for the paper's 143-hour window).
package flowtuple

import "fmt"

// IP protocol numbers used by the telescope.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// TCP flag bits (RFC 793 order, low bit = FIN).
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// ICMP types relevant to backscatter classification (Sec. IV-B).
const (
	ICMPEchoReply      uint8 = 0
	ICMPDestUnreach    uint8 = 3
	ICMPSourceQuench   uint8 = 4
	ICMPRedirect       uint8 = 5
	ICMPEchoRequest    uint8 = 8
	ICMPTimeExceeded   uint8 = 11
	ICMPParamProblem   uint8 = 12
	ICMPTimestampReply uint8 = 14
	ICMPInfoReply      uint8 = 16
	ICMPAddrMaskReply  uint8 = 18
)

// Record is one flowtuple. The zero value is a valid (empty) record.
type Record struct {
	SrcIP    uint32 // source address, host byte order
	DstIP    uint32 // destination (darknet) address
	SrcPort  uint16 // ICMP: type
	DstPort  uint16 // ICMP: code
	Protocol uint8
	TTL      uint8
	TCPFlags uint8  // zero for non-TCP
	IPLen    uint16 // IP datagram length of the representative packet
	Packets  uint32 // packets aggregated into this tuple
}

// ICMPType returns the ICMP type for ICMP records.
func (r Record) ICMPType() uint8 { return uint8(r.SrcPort) }

// ICMPCode returns the ICMP code for ICMP records.
func (r Record) ICMPCode() uint8 { return uint8(r.DstPort) }

// HasFlags reports whether all bits in mask are set in TCPFlags.
func (r Record) HasFlags(mask uint8) bool { return r.TCPFlags&mask == mask }

// ProtoName returns a short protocol mnemonic.
func ProtoName(p uint8) string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto-%d", p)
	}
}

// String renders the record for diagnostics and flowcat output.
func (r Record) String() string {
	return fmt.Sprintf("%s %s:%d > %s:%d ttl=%d flags=%#02x len=%d pkts=%d",
		ProtoName(r.Protocol),
		ipString(r.SrcIP), r.SrcPort,
		ipString(r.DstIP), r.DstPort,
		r.TTL, r.TCPFlags, r.IPLen, r.Packets)
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", ip>>24&0xff, ip>>16&0xff, ip>>8&0xff, ip&0xff)
}
