package flowtuple

import (
	"context"
	"fmt"
	"io"
	"os"
)

// BatchSize is the record capacity WalkHourBatch uses per callback, sized so
// one batch roughly covers one 64 KiB decode buffer's worth of frames.
const BatchSize = 4096

// frameSize is one on-disk frame: a tag byte plus an encoded record.
const frameSize = 1 + RecordSize

// NextBatch decodes up to len(dst) records into dst and returns how many it
// produced. It never returns records and an error together: n > 0 implies
// err == nil, and whatever stopped the batch — the footer's clean io.EOF or
// a corruption error — is returned by the next call. Complete frames are
// decoded in blocks straight out of the reader's buffer, so a batch costs
// no per-record reads and no allocation.
//
// Error semantics are identical to Next: corrupt files yield an error
// wrapping ErrBadFormat, files that end before the footer additionally wrap
// ErrTruncated, and the footer's record-count check is enforced the same
// way (records decoded on the fast path count toward it).
func (r *Reader) NextBatch(dst []Record) (int, error) {
	if r.br == nil {
		return 0, fmt.Errorf("flowtuple: read %s: %w", r.path, os.ErrClosed)
	}
	n := 0
	for n < len(dst) {
		// Fast path: decode every complete record frame already buffered.
		if avail := r.br.Buffered(); avail >= frameSize {
			win, _ := r.br.Peek(avail)
			consumed := 0
			for n < len(dst) && len(win) >= frameSize && win[0] == tagRecord {
				decodeInto(&dst[n], win[1:frameSize])
				win = win[frameSize:]
				consumed += frameSize
				n++
			}
			if consumed > 0 {
				r.read += uint32(consumed / frameSize)
				r.br.Discard(consumed) //nolint:errcheck // only buffered bytes
				continue
			}
		}
		// Slow path: a frame spans the buffer boundary, the footer begins,
		// or the stream is damaged. Surface the records decoded so far
		// first; the next call re-enters here at n == 0, where one framed
		// read classifies the stream state with Next's exact semantics.
		if n > 0 {
			return n, nil
		}
		rec, err := r.next1()
		if err != nil {
			return 0, err
		}
		dst[0] = rec
		n = 1
	}
	return n, nil
}

// WalkHourBatch opens the given hour file in dir and invokes fn with
// successive batches of records. The batch slice is reused between calls
// and is only valid until fn returns; fn must copy any record it retains.
// Cancellation is checked between frames: once ctx is done the walk stops
// before the next batch and returns ctx.Err().
func WalkHourBatch(ctx context.Context, dir string, hour int, fn func(batch []Record) error) error {
	r, err := Open(HourPath(dir, hour))
	if err != nil {
		return err
	}
	defer r.Close()
	buf := make([]Record, BatchSize)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := r.NextBatch(buf)
		if n > 0 {
			if err := fn(buf[:n]); err != nil {
				return err
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}
