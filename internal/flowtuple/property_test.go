package flowtuple

import (
	"io"
	"testing"
	"testing/quick"

	"iotscope/internal/rng"
)

// Property: any sequence of records survives a file round trip in order.
func TestFileRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	seq := 0
	f := func(seed uint64, n uint8) bool {
		seq++
		r := rng.New(seed)
		recs := make([]Record, int(n)%64)
		for i := range recs {
			recs[i] = Record{
				SrcIP:    r.Uint32(),
				DstIP:    r.Uint32(),
				SrcPort:  uint16(r.Uint32()),
				DstPort:  uint16(r.Uint32()),
				Protocol: uint8(r.Intn(256)),
				TTL:      uint8(r.Intn(256)),
				TCPFlags: uint8(r.Intn(256)),
				IPLen:    uint16(r.Uint32()),
				Packets:  r.Uint32(),
			}
		}
		path := HourPath(dir, seq)
		w, err := Create(path, uint32(seq))
		if err != nil {
			return false
		}
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		rd, err := Open(path)
		if err != nil {
			return false
		}
		defer rd.Close()
		for i := 0; ; i++ {
			rec, err := rd.Next()
			if err == io.EOF {
				return i == len(recs)
			}
			if err != nil || i >= len(recs) || rec != recs[i] {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
