package flowtuple

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"iotscope/internal/rng"
)

func randomRecord(r *rng.Source) Record {
	return Record{
		SrcIP:    r.Uint32(),
		DstIP:    r.Uint32(),
		SrcPort:  uint16(r.Uint32()),
		DstPort:  uint16(r.Uint32()),
		Protocol: uint8(r.Intn(256)),
		TTL:      uint8(r.Intn(256)),
		TCPFlags: uint8(r.Intn(64)),
		IPLen:    uint16(40 + r.Intn(1461)),
		Packets:  uint32(1 + r.Intn(10000)),
	}
}

func writeHourFile(t *testing.T, path string, hour uint32, recs []Record) {
	t.Helper()
	w, err := Create(path, hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(1)
	recs := make([]Record, 5000)
	for i := range recs {
		recs[i] = randomRecord(r)
	}
	path := HourPath(dir, 7)
	writeHourFile(t, path, 7, recs)

	rd, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if rd.Header().Hour != 7 {
		t.Fatalf("hour %d", rd.Header().Hour)
	}
	for i := range recs {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got, recs[i])
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("after last record: %v", err)
	}
	if rd.Header().Count != uint32(len(recs)) {
		t.Fatalf("footer count %d", rd.Header().Count)
	}
}

func TestEmptyFile(t *testing.T) {
	dir := t.TempDir()
	path := HourPath(dir, 0)
	writeHourFile(t, path, 0, nil)
	rd, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("empty file Next = %v", err)
	}
}

// Record whose SrcIP bytes coincide with the header magic must not confuse
// the framing.
func TestMagicCollisionRecord(t *testing.T) {
	dir := t.TempDir()
	// "FTUP" little-endian as SrcIP.
	evil := Record{SrcIP: 0x50555446, DstIP: 0x50555446, Packets: 1}
	path := HourPath(dir, 1)
	writeHourFile(t, path, 1, []Record{evil, evil})
	rd, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	n := 0
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec != evil {
			t.Fatalf("record %d mangled: %+v", n, rec)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("read %d records", n)
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope.ft.gz")); err == nil {
		t.Fatal("open missing file succeeded")
	}
}

func TestOpenGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.ft.gz")
	if err := os.WriteFile(path, []byte("this is not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("garbage open err = %v", err)
	}
}

func TestTruncatedFileDetected(t *testing.T) {
	dir := t.TempDir()
	path := HourPath(dir, 2)
	r := rng.New(2)
	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = randomRecord(r)
	}
	// Write without footer by not closing properly: emulate via full write
	// then byte-level truncation of the gzip payload.
	writeHourFile(t, path, 2, recs)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rd, err := Open(path)
	if err != nil {
		// Truncation may already corrupt the gzip header; also acceptable.
		return
	}
	defer rd.Close()
	for {
		_, err := rd.Next()
		if err == io.EOF {
			t.Fatal("truncated file read to clean EOF")
		}
		if err != nil {
			return // detected
		}
	}
}

func TestDatasetHours(t *testing.T) {
	dir := t.TempDir()
	for _, h := range []int{5, 0, 12} {
		writeHourFile(t, HourPath(dir, h), uint32(h), nil)
	}
	// A foreign file should be ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	hours, err := DatasetHours(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 5, 12}
	if len(hours) != len(want) {
		t.Fatalf("hours %v", hours)
	}
	for i := range want {
		if hours[i] != want[i] {
			t.Fatalf("hours %v want %v", hours, want)
		}
	}
}

func TestWalkHour(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(3)
	recs := make([]Record, 50)
	total := uint64(0)
	for i := range recs {
		recs[i] = randomRecord(r)
		total += uint64(recs[i].Packets)
	}
	writeHourFile(t, HourPath(dir, 4), 4, recs)

	got := uint64(0)
	n := 0
	err := WalkHour(dir, 4, func(rec Record) error {
		got += uint64(rec.Packets)
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) || got != total {
		t.Fatalf("walked %d records, %d packets; want %d, %d", n, got, len(recs), total)
	}
}

func TestWalkHourCallbackError(t *testing.T) {
	dir := t.TempDir()
	writeHourFile(t, HourPath(dir, 9), 9, []Record{{Packets: 1}, {Packets: 2}})
	sentinel := errors.New("stop")
	calls := 0
	err := WalkHour(dir, 9, func(Record) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestWriterCount(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(HourPath(dir, 3), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Write(Record{Packets: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 10 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFileWrite(b *testing.B) {
	dir := b.TempDir()
	w, err := Create(HourPath(dir, 0), 0)
	if err != nil {
		b.Fatal(err)
	}
	rec := Record{SrcIP: 1, DstIP: 2, Protocol: ProtoTCP, TCPFlags: FlagSYN, Packets: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.SrcIP = uint32(i)
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w.Close()
}

func BenchmarkFileRead(b *testing.B) {
	dir := b.TempDir()
	const n = 200000
	w, _ := Create(HourPath(dir, 0), 0)
	r := rng.New(1)
	for i := 0; i < n; i++ {
		w.Write(randomRecord(r))
	}
	w.Close()
	b.ResetTimer()
	read := 0
	for read < b.N {
		rd, err := Open(HourPath(dir, 0))
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			read++
			if read >= b.N {
				break
			}
		}
		rd.Close()
	}
}
