package classify

import (
	"testing"
	"testing/quick"

	"iotscope/internal/flowtuple"
)

func tcp(flags uint8) flowtuple.Record {
	return flowtuple.Record{Protocol: flowtuple.ProtoTCP, TCPFlags: flags, Packets: 1}
}

func icmp(typ uint8) flowtuple.Record {
	return flowtuple.Record{Protocol: flowtuple.ProtoICMP, SrcPort: uint16(typ), Packets: 1}
}

func TestTCPClasses(t *testing.T) {
	tests := []struct {
		name  string
		flags uint8
		want  Class
	}{
		{"pure SYN", flowtuple.FlagSYN, ScanTCP},
		{"SYN-ACK", flowtuple.FlagSYN | flowtuple.FlagACK, Backscatter},
		{"RST", flowtuple.FlagRST, Backscatter},
		{"RST-ACK", flowtuple.FlagRST | flowtuple.FlagACK, Backscatter},
		{"bare ACK", flowtuple.FlagACK, Other},
		{"FIN", flowtuple.FlagFIN, Other},
		{"NULL", 0, Other},
		{"Xmas", flowtuple.FlagFIN | flowtuple.FlagPSH | flowtuple.FlagURG, Other},
		{"SYN+PSH", flowtuple.FlagSYN | flowtuple.FlagPSH, ScanTCP},
	}
	for _, tc := range tests {
		if got := Record(tcp(tc.flags)); got != tc.want {
			t.Errorf("%s: %v want %v", tc.name, got, tc.want)
		}
	}
}

func TestICMPClasses(t *testing.T) {
	backscatterTypes := []uint8{
		flowtuple.ICMPEchoReply, flowtuple.ICMPDestUnreach,
		flowtuple.ICMPSourceQuench, flowtuple.ICMPRedirect,
		flowtuple.ICMPTimeExceeded, flowtuple.ICMPParamProblem,
		flowtuple.ICMPTimestampReply, flowtuple.ICMPInfoReply,
		flowtuple.ICMPAddrMaskReply,
	}
	for _, typ := range backscatterTypes {
		if got := Record(icmp(typ)); got != Backscatter {
			t.Errorf("ICMP type %d: %v want Backscatter", typ, got)
		}
	}
	if got := Record(icmp(flowtuple.ICMPEchoRequest)); got != ScanICMP {
		t.Errorf("echo request: %v", got)
	}
	// Timestamp request (13) and other query types are unclassified.
	if got := Record(icmp(13)); got != Other {
		t.Errorf("ICMP type 13: %v want Other", got)
	}
}

func TestUDPAndUnknownProtocols(t *testing.T) {
	udp := flowtuple.Record{Protocol: flowtuple.ProtoUDP, DstPort: 53, Packets: 1}
	if got := Record(udp); got != UDP {
		t.Errorf("UDP: %v", got)
	}
	gre := flowtuple.Record{Protocol: 47, Packets: 1}
	if got := Record(gre); got != Other {
		t.Errorf("GRE: %v", got)
	}
}

func TestClassStringsDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range Classes() {
		s := c.String()
		if seen[s] {
			t.Fatalf("duplicate class string %q", s)
		}
		seen[s] = true
	}
	if Class(0).String() == ScanTCP.String() {
		t.Error("zero class aliases a real class")
	}
}

func TestIsScan(t *testing.T) {
	if !ScanTCP.IsScan() || !ScanICMP.IsScan() {
		t.Error("scan classes not IsScan")
	}
	for _, c := range []Class{Backscatter, UDP, Other} {
		if c.IsScan() {
			t.Errorf("%v reports IsScan", c)
		}
	}
}

// Property: classification is total and lands in a known class — a
// partition of the record space.
func TestClassificationIsPartition(t *testing.T) {
	valid := make(map[Class]bool)
	for _, c := range Classes() {
		valid[c] = true
	}
	f := func(proto, flags, icmpType uint8) bool {
		rec := flowtuple.Record{
			Protocol: proto,
			TCPFlags: flags,
			SrcPort:  uint16(icmpType),
			Packets:  1,
		}
		return valid[Record(rec)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: SYN-ACK and RST always dominate the scan rule.
func TestBackscatterPriorityProperty(t *testing.T) {
	f := func(extra uint8) bool {
		synack := tcp(flowtuple.FlagSYN | flowtuple.FlagACK | extra)
		rst := tcp(flowtuple.FlagRST | extra)
		return Record(synack) == Backscatter && Record(rst) == Backscatter
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkClassify(b *testing.B) {
	recs := []flowtuple.Record{
		tcp(flowtuple.FlagSYN),
		tcp(flowtuple.FlagSYN | flowtuple.FlagACK),
		icmp(flowtuple.ICMPEchoRequest),
		{Protocol: flowtuple.ProtoUDP, Packets: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Record(recs[i&3])
	}
}
